// Package tradeoff_test is the benchmark harness of the reproduction:
// one testing.B per paper artifact (DESIGN.md §3, E1–E12) regenerating
// that table or figure end to end, plus micro-benchmarks for the
// simulation substrate. Run:
//
//	go test -bench=. -benchmem
package tradeoff_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/experiments"
	"tradeoff/internal/linesize"
	"tradeoff/internal/memory"
	"tradeoff/internal/missratio"
	"tradeoff/internal/service"
	"tradeoff/internal/stall"
	"tradeoff/internal/sweep"
	"tradeoff/internal/trace"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := experiments.Options{Fast: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arts, err := experiments.Run(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(arts) == 0 {
			b.Fatal("no artifacts")
		}
	}
}

// E1–E12: one bench per paper artifact.

func BenchmarkTable2StallBounds(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkTable3FeatureRatios(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFigure1StallFactors(b *testing.B)       { benchExperiment(b, "figure1") }
func BenchmarkFigure2BusWidth(b *testing.B)           { benchExperiment(b, "figure2") }
func BenchmarkFigure3Unified(b *testing.B)            { benchExperiment(b, "figure3") }
func BenchmarkFigure4Unified(b *testing.B)            { benchExperiment(b, "figure4") }
func BenchmarkFigure5BNL3(b *testing.B)               { benchExperiment(b, "figure5") }
func BenchmarkFigure6SmithValidation(b *testing.B)    { benchExperiment(b, "figure6") }
func BenchmarkExample1CacheSizeBusWidth(b *testing.B) { benchExperiment(b, "example1") }
func BenchmarkFeatureRanking(b *testing.B)            { benchExperiment(b, "ranking") }
func BenchmarkPipelineCrossover(b *testing.B)         { benchExperiment(b, "crossover") }
func BenchmarkBusWidthLimits(b *testing.B)            { benchExperiment(b, "limits") }

// Substrate micro-benchmarks.

func BenchmarkTraceGeneration(b *testing.B) {
	src := trace.MustProgram(trace.Nasa7, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("trace ended")
		}
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2})
	refs := trace.Collect(trace.MustProgram(trace.Swm256, 1), 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[i&(1<<16-1)]
		c.Access(r.Addr, r.Write)
	}
}

func BenchmarkStallReplayBNL1(b *testing.B) {
	refs := trace.Collect(trace.MustProgram(trace.Swm256, 1), 100_000)
	cfg := stall.Config{
		Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
		Memory:  memory.Config{BetaM: 10, BusWidth: 4},
		Feature: stall.BNL1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stall.Run(cfg, refs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(refs)), "refs/op")
}

func BenchmarkStallReplayWithWriteBuffer(b *testing.B) {
	refs := trace.Collect(trace.MustProgram(trace.Hydro2D, 1), 100_000)
	cfg := stall.Config{
		Cache:            cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
		Memory:           memory.Config{BetaM: 10, BusWidth: 4},
		Feature:          stall.BNL3,
		WriteBufferDepth: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stall.Run(cfg, refs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTradeoffEvaluation(b *testing.B) {
	spec := core.FeatureSpec{Feature: core.FeatureDoubleBus}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FeatureTradeoff(spec, 0.95, 0.5, 32, 4, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineSizeSelection(b *testing.B) {
	m := missratio.DefaultModel()
	cfg := linesize.Config{CacheSize: 16 << 10, BusWidth: 4, LatencyNS: 360, NSPerByte: 15, Lines: []int{8, 16, 32, 64, 128}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linesize.Eq19Optimal(m, cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// E13–E19: extension and ablation benches.

func BenchmarkAblationAlpha(b *testing.B)     { benchExperiment(b, "ablation_alpha") }
func BenchmarkAblationQ(b *testing.B)         { benchExperiment(b, "ablation_q") }
func BenchmarkAblationFillOrder(b *testing.B) { benchExperiment(b, "ablation_fillorder") }
func BenchmarkWriteBufferDepth(b *testing.B)  { benchExperiment(b, "wbuf_depth") }
func BenchmarkPipelinedSim(b *testing.B)      { benchExperiment(b, "pipelined_sim") }
func BenchmarkMultiIssue(b *testing.B)        { benchExperiment(b, "multiissue") }
func BenchmarkWriteAround(b *testing.B)       { benchExperiment(b, "writearound") }

func BenchmarkZipfGeneration(b *testing.B) {
	src := trace.ZipfReuse(trace.ZipfReuseConfig{Seed: 1, Lines: 65536, Theta: 1.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("trace ended")
		}
	}
}

func BenchmarkProfileTradeoff(b *testing.B) {
	w := core.WorkloadProfile{R: 64000, W: 300, Alpha: 0.5, L: 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ProfileTradeoff(core.FeatureSpec{Feature: core.FeatureWriteBuffers}, w, 0.95, 4, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPinArea(b *testing.B) { benchExperiment(b, "pinarea") }

func BenchmarkTraffic(b *testing.B) { benchExperiment(b, "traffic") }

func BenchmarkSplitCache(b *testing.B) { benchExperiment(b, "splitcache") }

func BenchmarkAssociativity(b *testing.B) { benchExperiment(b, "associativity") }

func BenchmarkPrefetch(b *testing.B) { benchExperiment(b, "prefetch") }

func BenchmarkContention(b *testing.B) { benchExperiment(b, "contention") }

func BenchmarkTwoLevel(b *testing.B) { benchExperiment(b, "twolevel") }

func BenchmarkSector(b *testing.B) { benchExperiment(b, "sector") }

func BenchmarkEndToEnd(b *testing.B) { benchExperiment(b, "endtoend") }

func BenchmarkSeeds(b *testing.B) { benchExperiment(b, "seeds") }

func BenchmarkTable1Parameters(b *testing.B) { benchExperiment(b, "table1") }

// Sweep-engine and service benchmarks: the serial-vs-parallel pair
// measures the worker pool's speedup on a simulation-backed space
// (8 points × 20k simulated references each), and the handler bench
// measures a memoized /v1/tradeoff round trip.

func benchSweepEngine(b *testing.B, workers int) {
	cfg := sweep.Config{
		CacheKB: []int{4, 8, 16, 32}, LineBytes: []int{16, 32}, BusBits: []int{32},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		HitSource: "sim:zipf", SimRefs: 20_000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := sweep.Run(context.Background(), cfg, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) != 8 {
			b.Fatalf("designs = %d, want 8", len(ds))
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweepEngine(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweepEngine(b, 0) }

// benchSweep64 sweeps the 64-point grid (8 cache sizes × 4 line sizes
// × 2 bus widths) under the given hit source. The Sim/MRC pair measures
// the tentpole claim of internal/mrc: re-simulation pays one trace pass
// per design point, the miss-ratio-curve sources pay one pass per line
// size (4 here) and answer the remaining 60 points from the curves.
// The analytic source ("an:ear") pays no trace passes at all — every
// point is priced from internal/model's closed forms.
// Each iteration uses a fresh curve cache (sweep.Run owns one per
// call), so the profiling cost is inside the measurement.
func benchSweep64(b *testing.B, source string) {
	cfg := sweep.Config{
		CacheKB:   []int{1, 2, 4, 8, 16, 32, 64, 128},
		LineBytes: []int{16, 32, 64, 128},
		BusBits:   []int{32, 64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		HitSource: source, SimRefs: 20_000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := sweep.Run(context.Background(), cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) != 64 {
			b.Fatalf("designs = %d, want 64", len(ds))
		}
	}
}

func BenchmarkSweepSim(b *testing.B)        { benchSweep64(b, "sim:ear") }
func BenchmarkSweepMRC(b *testing.B)        { benchSweep64(b, "mrc:ear") }
func BenchmarkSweepMRCSampled(b *testing.B) { benchSweep64(b, "mrc~:ear") }
func BenchmarkSweepModel(b *testing.B)      { benchSweep64(b, "an:ear") }

func BenchmarkTradeoffHandlerCached(b *testing.B) {
	s := service.New(service.Options{})
	h := s.Handler()
	body := []byte(`{"feature":"bus","hit_ratio":0.95,"l":32,"d":4,"beta_m":10}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/tradeoff", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	b.StopTimer()
	if b.N > 1 && s.CacheHits() == 0 {
		b.Fatal("repeated identical requests never hit the LRU")
	}
}
