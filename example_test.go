package tradeoff_test

import (
	"fmt"

	"tradeoff"
)

// Price a doubled external data bus in cache hit ratio at a typical
// design point: 32-byte lines, 32-bit bus, 10-cycle memory.
func ExamplePrice() {
	tr, err := tradeoff.Price(
		tradeoff.Spec{Feature: tradeoff.DoubleBus},
		tradeoff.DesignPoint{HitRatio: 0.95, Alpha: 0.5, L: 32, D: 4, BetaM: 10},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r = %.4f\n", tr.R)
	fmt.Printf("hit ratio traded = %.4f\n", tr.DeltaHR)
	fmt.Printf("equivalent hit ratio = %.4f\n", tr.NewHR)
	// Output:
	// r = 2.0169
	// hit ratio traded = 0.0508
	// equivalent hit ratio = 0.8992
}

// The §4.1 design-limit identity: at L = 2D and βm = 2, doubling the
// bus compensates a hit-ratio drop from HR to 2.5·HR − 1.5.
func ExamplePrice_designLimit() {
	tr, _ := tradeoff.Price(
		tradeoff.Spec{Feature: tradeoff.DoubleBus},
		tradeoff.DesignPoint{HitRatio: 0.95, Alpha: 0.5, L: 8, D: 4, BetaM: 2},
	)
	fmt.Printf("0.95 -> %.3f\n", tr.NewHR)
	// Output:
	// 0.95 -> 0.875
}

// Rank the four features of the unified comparison at one design
// point (§5.3): pipelined memory wins beyond its crossover, then bus
// doubling, write buffers, and the bus-not-locked cache.
func ExampleRank() {
	ranked, err := tradeoff.Rank(
		tradeoff.DesignPoint{HitRatio: 0.95, Alpha: 0.5, L: 32, D: 4, BetaM: 10},
		7.5, // measured BNL1 stalling factor
		2,   // pipeline readiness interval q
	)
	if err != nil {
		panic(err)
	}
	for _, tr := range ranked {
		fmt.Printf("%-28s %.2f%%\n", tr.Feature, 100*tr.DeltaHR)
	}
	// Output:
	// pipelined memory             12.00%
	// doubling bus width           5.08%
	// read-bypassing write buffers 2.53%
	// partially-stalling cache     0.22%
}

// The pipelined-memory crossover of §5.3: for q = 2 and L/D = 8,
// pipelining out-trades bus doubling once βm reaches ~4.7 cycles; for
// L = 2D it never does.
func ExamplePipelineCrossover() {
	x, _ := tradeoff.PipelineCrossover(2, 32, 4)
	fmt.Printf("L/D=8: beta_m >= %.2f\n", x)
	never, _ := tradeoff.PipelineCrossover(2, 8, 4)
	fmt.Printf("L/D=2: %v\n", never)
	// Output:
	// L/D=8: beta_m >= 4.67
	// L/D=2: +Inf
}

// Eq. (9): a pipelined memory fills a 32-byte line through a 4-byte
// bus in βm + q·(L/D−1) cycles instead of (L/D)·βm.
func ExampleBetaP() {
	fmt.Println(tradeoff.BetaP(10, 2, 32, 4))
	// Output:
	// 24
}
