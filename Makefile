# Convenience targets for the tradeoff reproduction.

GO ?= go

.PHONY: all build vet lint lint-fast test test-short race bench bench-smoke bench-stall bench-mrc bench-record trace-smoke flight-smoke obs-smoke figures figures-fast report examples serve clean

all: build lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# Full static analysis: go vet + gofmt (the vet target) plus the
# repo's own nine-analyzer tradeoffvet suite (parameter domains, float
# discipline, context propagation, error handling, metric hygiene,
# span lifecycle, locking discipline, deterministic output order,
# hot-path allocation budgets).
lint: vet
	$(GO) run ./cmd/tradeoffvet ./...

# Just the tradeoffvet suite — skips go vet and gofmt for a fast
# inner-loop check while iterating on analyzer findings.
lint-fast:
	$(GO) run ./cmd/tradeoffvet ./...

# -shuffle=on randomizes test (and subtest) execution order so hidden
# inter-test coupling — shared caches, package-level state — surfaces
# in CI instead of in production; the failure log prints the seed.
test:
	$(GO) test -shuffle=on ./...

test-short:
	$(GO) test -short -shuffle=on ./...

# Race-detector pass over every package (the concurrent subsystems —
# sweep pool + service — are where it bites, but regressions can creep
# in anywhere).
race:
	$(GO) test -race ./...

# Run the HTTP evaluation service on :8080.
serve:
	$(GO) run ./cmd/tradeoffd

bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke-run the serial-vs-parallel benchmark pairs that sit on the
# shared engine.Map pool (design-space sweep, trace-replay stall sweep,
# cached service handler) with a single iteration; CI uses this to keep
# them compiling and executable without paying for real measurement.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkSweepSerial|BenchmarkSweepParallel|BenchmarkTradeoffHandlerCached' -benchtime=1x .
	$(GO) test -run=NONE -bench='BenchmarkStallSweep' -benchtime=1x ./internal/simjob
	$(GO) test -run=NONE -bench='BenchmarkSweepSim$$|BenchmarkSweepMRC' -benchtime=1x .

# Back-compat alias for the stall-sweep half of bench-smoke.
bench-stall:
	$(GO) test -run=NONE -bench='BenchmarkStallSweep' -benchtime=1x ./internal/simjob

# Race the 64-point sweep grid under re-simulation ("sim:ear", one
# trace pass per point) against the miss-ratio-curve sources ("mrc:ear"
# and "mrc~:ear", one pass per line size): the internal/mrc headline
# numbers.
bench-mrc:
	$(GO) test -run=NONE -bench='BenchmarkSweepSim$$|BenchmarkSweepMRC' -benchmem .

# Re-measure the headline benchmarks and refresh the committed
# baseline; CI diffs against it with `benchjson -compare`
# (non-blocking).
bench-record:
	$(GO) run ./cmd/benchjson -o BENCH_sweep.json

# Smoke-run the span exporter: sweep the example design space with
# -trace and validate the resulting Chrome trace_event JSON with
# cmd/tracecheck (well-formed array, one span per evaluated point; the
# example grid has 30). CI runs this non-blocking, like bench-smoke.
trace-smoke:
	mkdir -p out
	$(GO) run ./cmd/sweep -example > out/trace-smoke-space.json
	$(GO) run ./cmd/sweep -config out/trace-smoke-space.json -o out/trace-smoke.csv -trace out/trace-smoke.json
	$(GO) run ./cmd/tracecheck -min 30 out/trace-smoke.json

# Boot tradeoffd, drive traffic, dump the always-on flight recorder
# and validate the B/E trace_event JSON with cmd/tracecheck.
flight-smoke:
	sh scripts/obs_smoke.sh flight

# The full observability smoke: flight-smoke plus /metrics/history,
# /debug/slow, /debug/dash and the tradeoffd_slo_* gauges, all against
# a live server. CI runs this non-blocking, like bench-smoke.
obs-smoke:
	sh scripts/obs_smoke.sh

# Regenerate every paper artifact into out/ (full scale; minutes).
figures:
	$(GO) run ./cmd/figures -print=false -out out

# Same, at test scale (seconds).
figures-fast:
	$(GO) run ./cmd/figures -fast -print=false -out out

# One markdown report of every artifact.
report:
	$(GO) run ./cmd/report -o REPORT.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/buswidth
	$(GO) run ./examples/pipelined
	$(GO) run ./examples/linesize
	$(GO) run ./examples/stallfeatures
	$(GO) run ./examples/designspace
	$(GO) run ./examples/hierarchy

clean:
	rm -rf out
