#!/bin/sh
# obs_smoke.sh boots tradeoffd with the SLO layer on, drives real
# traffic, and validates every always-on observability surface end to
# end: the flight recorder's dump (via cmd/tracecheck), the
# metrics-history JSON, the slow-request exemplar store, the live
# dashboard page, and the tradeoffd_slo_* Prometheus gauges.
#
# Run as `make obs-smoke` (or `make flight-smoke` for just the flight
# half). CI runs it non-blocking, like bench-smoke and trace-smoke.
set -eu

PORT="${OBS_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
OUT="${OBS_SMOKE_OUT:-out}"
ONLY="${1:-all}" # "flight" validates just the recorder dump

mkdir -p "$OUT"
go build -o "$OUT/tradeoffd" ./cmd/tradeoffd
go build -o "$OUT/tracecheck" ./cmd/tracecheck

"$OUT/tradeoffd" -addr "127.0.0.1:$PORT" -history-interval 500ms \
  -slo 'tradeoff:p99<250ms,err<1%' 2>"$OUT/obs-smoke-tradeoffd.log" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true' EXIT

ready=0
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "obs-smoke: tradeoffd never became ready" >&2; exit 1; }

# Enough traffic that every surface has data: past the exemplar
# warm-up gate, across two endpoints, with one bad request for the
# error counters.
for _ in $(seq 1 40); do
  curl -fsS -X POST -d '{"feature":"bus"}' "$BASE/v1/tradeoff" >/dev/null
done
curl -sS -X POST -d '{"feature":"nope"}' "$BASE/v1/tradeoff" >/dev/null

# Flight recorder: the dump must be a balanced B/E trace_event array
# holding at least the 41 request spans.
curl -fsS "$BASE/debug/flight?last=5m" >"$OUT/obs-smoke-flight.json"
"$OUT/tracecheck" -min 41 "$OUT/obs-smoke-flight.json"

if [ "$ONLY" = "flight" ]; then
  echo "flight-smoke: ok"
  exit 0
fi

# Metrics history: wait out one snapshot tick, then the requested
# series must hold samples reflecting the traffic.
sleep 1
curl -fsS "$BASE/metrics/history?series=requests_total,errors_total&window=5m" \
  | jq -e '(.interval_ms > 0)
           and (.series.requests_total | length >= 1)
           and (.series.requests_total[-1].v >= 41)
           and (.series.errors_total[-1].v >= 1)' >/dev/null

# Exemplar store: a valid document; captures depend on timing, so only
# the shape is asserted.
curl -fsS "$BASE/debug/slow" | jq -e '.kept >= 0 and (.exemplars | type == "array")' >/dev/null

# Dashboard page (the SSE half is covered by the service tests).
# grep without -q drains the pipe, so curl never sees a closed body.
curl -fsS "$BASE/debug/dash" | grep 'tradeoffd live' >/dev/null

# SLO layer: burn-rate gauges on the Prometheus exposition and the slo
# document on expvar.
curl -fsS "$BASE/metrics?format=prom" | grep '^tradeoffd_slo_burning' >/dev/null
curl -fsS "$BASE/metrics" | jq -e '.slo | type == "array" and length == 1' >/dev/null

echo "obs-smoke: ok"
