// Stallfeatures: measure the stalling factor φ of every cache stalling
// discipline on a workload, then feed the measurement into the analytic
// model to see what each discipline is worth in cache hit ratio — the
// full measurement-to-methodology loop of the paper.
//
//	go run ./examples/stallfeatures
package main

import (
	"fmt"
	"log"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/memory"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

func main() {
	const (
		betaM  = 10
		baseHR = 0.95
		alpha  = 0.5
	)
	refs := trace.Collect(trace.MustProgram(trace.Swm256, 7), 300_000)

	fmt.Printf("workload: swm256 model, %d refs; 8K 2-way write-allocate, L=32, D=4, beta_m=%d\n\n", len(refs), betaM)
	fmt.Println("feature  phi     % of L/D   hit ratio it trades vs full stalling")
	for _, f := range stall.Features() {
		cfg := stall.Config{
			Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
			Memory:  memory.Config{BetaM: betaM, BusWidth: 4},
			Feature: f,
		}
		res, err := stall.Run(cfg, refs)
		if err != nil {
			log.Fatal(err)
		}
		// Price the measured φ with the partially-stalling tradeoff.
		// FS is the baseline (trades nothing by definition); NB can
		// measure below φ=1, outside the BL/BNL pricing domain.
		worth := "—  (baseline)"
		if f != stall.FS {
			phi := res.Phi
			if phi < 1 {
				phi = 1 // Table 2's floor for the partial-stall pricing
			}
			tr, err := core.FeatureTradeoff(
				core.FeatureSpec{Feature: core.FeaturePartialStall, Phi: phi},
				baseHR, alpha, 32, 4, betaM)
			if err != nil {
				log.Fatal(err)
			}
			worth = fmt.Sprintf("%.2f%%", 100*tr.DeltaHR)
		}
		fmt.Printf("%-8s %-7.3f %-10.1f %s\n", f, res.Phi, 100*res.PhiFraction, worth)
	}

	fmt.Println("\nNon-blocking with more outstanding misses (MSHRs):")
	for _, mshrs := range []int{1, 2, 4} {
		cfg := stall.Config{
			Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
			Memory:  memory.Config{BetaM: betaM, BusWidth: 4},
			Feature: stall.NB,
			MSHRs:   mshrs,
		}
		res, err := stall.Run(cfg, refs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d MSHR(s): phi = %.3f (%.1f%% of L/D)\n", mshrs, res.Phi, 100*res.PhiFraction)
	}
	fmt.Println("\nReading: even NB stalls heavily here because consecutive accesses")
	fmt.Println("land on the missing line (the paper's §5.3 observation); extra MSHRs")
	fmt.Println("help only the second-miss case, not same-line consumers.")
}
