// Pipelined: when should a memory-system designer pipeline the memory
// instead of widening the bus?
//
// Reproduces the §5.3/§6 crossover study: the pipelined system's value
// grows with the memory cycle time while bus doubling's value is flat,
// and the crossover lands near βm = 5–6 for q = 2 and L/D = 8. Run:
//
//	go run ./examples/pipelined
package main

import (
	"fmt"
	"log"
	"math"

	"tradeoff/internal/core"
)

func main() {
	const (
		baseHR = 0.95
		alpha  = 0.5
		d      = 4.0
		q      = 2.0
	)

	for _, l := range []float64{8, 32} {
		x, err := core.PipelineCrossover(q, l, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%g (L/D=%g), q=%g:\n", l, l/d, q)
		if math.IsInf(x, 1) {
			fmt.Println("  pipelining NEVER beats doubling the bus (a 2-transfer line cannot pipeline past a 1-transfer one)")
		} else {
			fmt.Printf("  pipelining beats doubling the bus once beta_m >= %.2f clocks\n", x)
		}
		fmt.Println("  beta_m   pipelined    doubling bus   winner")
		for _, betaM := range []float64{2, 4, 6, 10, 16, 20} {
			pipe, err := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: q}, baseHR, alpha, l, d, betaM)
			if err != nil {
				log.Fatal(err)
			}
			bus, err := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeatureDoubleBus}, baseHR, alpha, l, d, betaM)
			if err != nil {
				log.Fatal(err)
			}
			winner := "doubling bus"
			if pipe.DeltaHR > bus.DeltaHR {
				winner = "pipelined"
			}
			fmt.Printf("  %6g   %6.2f%%      %6.2f%%        %s\n",
				betaM, 100*pipe.DeltaHR, 100*bus.DeltaHR, winner)
		}
		fmt.Println()
	}

	fmt.Println("Reading: the pipelined column starts at zero (beta_m = q) and grows")
	fmt.Println("without bound; it trades a large hit ratio — i.e. a large cache —")
	fmt.Println("which is why the paper says pipelined memory 'should be seriously")
	fmt.Println("considered in the design of microprocessor systems'.")
}
