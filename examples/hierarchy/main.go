// Hierarchy: price the levels of a multi-level cache in the paper's
// single currency. The methodology reduces every architectural
// alternative to an equivalent change in L1 hit ratio; here the
// alternatives are cache levels themselves. A three-level hierarchy is
// replayed on a synthetic workload, each level's local hit ratio is
// measured, and each level is priced by removing it from the delay
// recurrence: the worth of level i is the extra L1 hit ratio a
// two-level system would need to match the deeper one. Run with:
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/trace"
)

func main() {
	// A small L1 backed by two progressively larger, slower levels.
	// Latencies are in CPU cycles: L1 hits in 1, L2 in 3, L3 in 8,
	// memory in 30.
	cfgs := []cache.Config{
		{Size: 8 << 10, LineSize: 32, Assoc: 2},
		{Size: 64 << 10, LineSize: 32, Assoc: 4},
		{Size: 512 << 10, LineSize: 64, Assoc: 8},
	}
	times := []float64{1, 3, 8}
	const tMem = 30.0

	h, err := cache.NewHierarchy(cfgs...)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range trace.Collect(trace.MustWorkload("ear", 1994), 200_000) {
		h.Access(r.Addr, r.Write)
	}
	s := h.Stats()

	specs := make([]core.LevelSpec, len(cfgs))
	for i := range cfgs {
		specs[i] = core.LevelSpec{HitRatio: s.LocalHitRatio(i), Time: times[i]}
	}
	delay, err := core.HierarchyDelay(specs, tMem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("three-level hierarchy on the ear workload (200k refs):")
	for i := range cfgs {
		fmt.Printf("  L%d %4dK %2dB-lines: local hit %.4f in %g cycles\n",
			i+1, cfgs[i].Size>>10, cfgs[i].LineSize, specs[i].HitRatio, specs[i].Time)
	}
	fmt.Printf("  global hit ratio %.4f, mean delay %.4f cycles/ref\n\n", s.GlobalHitRatio(), delay)

	// Price each deeper level: how much L1 hit ratio is it worth?
	fmt.Println("per-level worth in the unified currency (equivalent ΔHR at L1):")
	for i := 1; i < len(specs); i++ {
		w, err := core.PriceLevel(specs, i, tMem)
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if !w.Achievable {
			mark = "  (beyond any achievable L1)"
		}
		fmt.Printf("  L%d is worth ΔHR = %+.4f%s\n", i+1, w.DeltaHR, mark)
	}
}
