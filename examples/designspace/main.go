// Designspace: explore a microprocessor memory-system design space the
// way §5.2 of the paper frames it — performance (mean memory delay)
// against cost (chip area in register-bit equivalents and package
// pins) — and print the Pareto-efficient designs.
//
// The sweep crosses cache size × line size × bus width on the
// design-target miss-ratio surface, evaluates Eq. (2)-style delay at a
// fixed memory technology, and keeps the designs no other design
// dominates. Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"sort"

	"tradeoff/internal/area"
	"tradeoff/internal/core"
	"tradeoff/internal/missratio"
)

type design struct {
	cacheKB  int
	line     int
	busBits  int
	delay    float64 // mean memory delay per reference (cycles)
	areaRBE  float64
	pins     int
	hitRatio float64
}

func main() {
	const (
		latencyNS     = 360 // memory access latency
		nsPerTransfer = 60  // one bus transfer, regardless of width (the paper's
		//                     premise: βm is per D-byte transfer, so a wider bus
		//                     moves more bytes per memory cycle)
		cpuNS = 30 // processor cycle time: a 33 MHz part of the era
	)
	m := missratio.DefaultModel()

	var designs []design
	for _, kb := range []int{4, 8, 16, 32, 64} {
		for _, line := range []int{16, 32, 64} {
			for _, busBits := range []int{32, 64} {
				d := busBits / 8
				if line < 2*d {
					continue
				}
				hr := 1 - m.MissRatio(kb<<10, line)
				// Normalized fill model: c cycles latency + β per
				// D-byte transfer.
				c := 1 + float64(latencyNS)/cpuNS
				beta := float64(nsPerTransfer) / cpuNS
				delay := core.MeanDelayPerRef(hr, c, beta, float64(line), float64(d))
				rbe, err := area.RBE(area.CacheGeometry{Size: kb << 10, LineSize: line, Assoc: 2})
				if err != nil {
					log.Fatal(err)
				}
				pins := area.Pins{DataBits: busBits, AddrBits: 32, Control: 40}
				designs = append(designs, design{
					cacheKB: kb, line: line, busBits: busBits,
					delay: delay, areaRBE: rbe, pins: pins.Total(), hitRatio: hr,
				})
			}
		}
	}

	pareto := paretoFront(designs)
	sort.Slice(pareto, func(i, j int) bool { return pareto[i].delay < pareto[j].delay })

	fmt.Printf("%d designs swept, %d Pareto-efficient (delay vs area vs pins):\n\n", len(designs), len(pareto))
	fmt.Println("cache  line  bus    hit     delay/ref   area (rbe)  pins")
	for _, d := range pareto {
		fmt.Printf("%4dK  %3dB  %2d-bit %.4f  %8.3f  %10.0f  %4d\n",
			d.cacheKB, d.line, d.busBits, d.hitRatio, d.delay, d.areaRBE, d.pins)
	}

	fmt.Println("\nReading: every design off this list is strictly worse on all three")
	fmt.Println("axes than something on it. The unified methodology is what makes the")
	fmt.Println("delay column comparable across bus widths and line sizes.")
}

// paretoFront keeps designs not dominated in (delay, area, pins).
func paretoFront(ds []design) []design {
	var out []design
	for i, a := range ds {
		dominated := false
		for j, b := range ds {
			if i == j {
				continue
			}
			if b.delay <= a.delay && b.areaRBE <= a.areaRBE && b.pins <= a.pins &&
				(b.delay < a.delay || b.areaRBE < a.areaRBE || b.pins < a.pins) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}
