// Package examples_test smoke-tests the runnable examples: each one
// must build and exit 0. The examples print to stdout only, so this is
// a build-and-run check, not an output check; it keeps `go test
// -short ./...` honest about the directories that used to report
// "[no test files]".
package examples_test

import (
	"os"
	"os/exec"
	"testing"
	"time"
)

// exampleDirs lists every example, mirroring the Makefile's
// `examples` target.
var exampleDirs = []string{
	"quickstart",
	"buswidth",
	"pipelined",
	"linesize",
	"stallfeatures",
	"designspace",
	"hierarchy",
}

func TestExamplesRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	for _, dir := range exampleDirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("example directory missing: %v", err)
			}
			cmd := exec.Command("go", "run", "./examples/"+dir)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s printed nothing", dir)
			}
		})
	}
}

// TestExamplesListedInMakefile fails when a new example directory is
// added without wiring it into this smoke test.
func TestExamplesListedInMakefile(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[string]bool, len(exampleDirs))
	for _, d := range exampleDirs {
		known[d] = true
	}
	for _, e := range entries {
		if e.IsDir() && !known[e.Name()] {
			t.Errorf("example %s not covered by the smoke test", e.Name())
		}
	}
}

// TestMain keeps a sane upper bound on a wedged example.
func TestMain(m *testing.M) {
	timer := time.AfterFunc(5*time.Minute, func() {
		panic("examples smoke test wedged")
	})
	defer timer.Stop()
	os.Exit(m.Run())
}
