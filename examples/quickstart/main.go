// Quickstart: price one architectural feature in cache hit ratio.
//
// The unified tradeoff methodology answers questions like: "my cache
// hits 95% of the time — how much hit ratio (i.e. how much cache) is a
// 64-bit external bus worth over a 32-bit one?" Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tradeoff/internal/core"
)

func main() {
	const (
		baseHR = 0.95 // hit ratio of the current design
		alpha  = 0.5  // half the replaced lines are dirty (the paper's default)
		l      = 32.0 // 32-byte cache lines
		d      = 4.0  // 32-bit external data bus
		betaM  = 10.0 // a memory cycle moves D bytes in 10 CPU clocks
	)

	// How much hit ratio does each feature buy at this design point?
	specs := []core.FeatureSpec{
		{Feature: core.FeatureDoubleBus},
		{Feature: core.FeatureWriteBuffers},
		{Feature: core.FeaturePipelinedMemory, Q: 2},
		{Feature: core.FeaturePartialStall, Phi: 7.5}, // a measured BNL1 factor
	}
	fmt.Printf("design point: L=%g B lines, D=%g B bus, beta_m=%g clocks, HR=%.0f%%\n\n", l, d, betaM, 100*baseHR)
	for _, spec := range specs {
		tr, err := core.FeatureTradeoff(spec, baseHR, alpha, l, d, betaM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s worth %5.2f%% hit ratio (r = %.3f): a %.1f%% cache matches the base %.0f%%\n",
			tr.Feature, 100*tr.DeltaHR, tr.R, 100*tr.NewHR, 100*baseHR)
	}

	// The headline identity of §4.1: doubling the bus lets a blocking
	// cache drop from HR to between 2HR−1 and 2.5HR−1.5.
	fmt.Println()
	for _, betaM := range []float64{2, 1e6} {
		r, err := core.MissRatioOfCaches(core.FeatureSpec{Feature: core.FeatureDoubleBus}, alpha, 8, 4, betaM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=2D, beta_m=%-7g: doubling the bus compensates HR -> %.4g*HR - %.4g\n",
			betaM, r, r-1)
	}
}
