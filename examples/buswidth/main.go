// Buswidth: the paper's Example 1 as a design study — should a
// microprocessor spend pins (a wider external data bus) or die area (a
// bigger on-chip cache)?
//
// The example reproduces §5.2 with the Short & Levy hit ratios, then
// re-derives the same exchange from this repository's own cache
// simulator running the Zipf general-workload model, whose measured
// size/hit-ratio curve lands on the Short & Levy numbers. Run with:
//
//	go run ./examples/buswidth
package main

import (
	"fmt"
	"log"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/trace"
)

func main() {
	const (
		alpha = 0.5
		l     = 32.0
		d     = 4.0 // the narrow (32-bit) bus
		betaM = 10.0
	)

	// Part 1: the paper's numbers. A 64-bit-bus processor with an 8K
	// cache (91% hits) should match a 32-bit-bus processor with a 32K
	// cache (95.5% hits).
	eq, err := core.ExampleOne(core.ShortLevyHR8K, core.ShortLevyHR32K, alpha, l, d, betaM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 1 (Short & Levy hit ratios):")
	fmt.Printf("  8K cache on a 64-bit bus hits %.1f%%\n", 100*eq.SmallHR)
	fmt.Printf("  doubling the bus is worth %.2f%% hit ratio here (r' = %.3f)\n", 100*eq.DeltaHR, eq.RInv)
	fmt.Printf("  so a 32-bit bus needs a cache hitting %.2f%% — the 32K cache's %.1f%% covers it: %v\n\n",
		100*eq.NeededHR, 100*eq.LargeHR, eq.LargeHR >= eq.NeededHR-0.005)

	// Part 2: the same study on simulated hit ratios. Sweep cache
	// sizes, find the size equivalent to doubling the bus at 8K.
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: 42, Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), 600_000)
	warm, measured := refs[:300_000], refs[300_000:]
	fmt.Println("Same study on simulated hit ratios (Zipf general workload):")
	type pt struct {
		size int
		hr   float64
	}
	var pts []pt
	for _, size := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		c, err := cache.New(cache.Config{Size: size, LineSize: int(l), Assoc: 2})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range warm {
			c.Access(r.Addr, r.Write)
		}
		c.ResetStats()
		p := cache.Measure(c, measured)
		pts = append(pts, pt{size, p.HitRatio})
		fmt.Printf("  %4dK cache: hit ratio %.4f\n", size>>10, p.HitRatio)
	}
	base := pts[0]
	eq2, err := core.ExampleOne(base.hr, base.hr, alpha, l, d, betaM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  at %dK (%.2f%%), doubling the bus is worth %.2f%% -> need %.2f%%\n",
		base.size>>10, 100*base.hr, 100*eq2.DeltaHR, 100*eq2.NeededHR)
	for _, p := range pts[1:] {
		if p.hr >= eq2.NeededHR {
			fmt.Printf("  => a %dK cache on the 32-bit bus matches an %dK cache on the 64-bit bus\n",
				p.size>>10, base.size>>10)
			fmt.Printf("     (spend ~%dx the cache area, or double the pins — same performance)\n",
				p.size/base.size)
			return
		}
	}
	fmt.Println("  => no swept size covers it; widen the sweep")
}
