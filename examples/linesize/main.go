// Linesize: pick the optimal cache line size for a memory system, and
// see the Eq. (19) criterion agree with Smith's classic method.
//
// Reproduces the §5.4 study on one of Figure 6's design points and on
// miss ratios measured by this repository's own cache simulator. Run:
//
//	go run ./examples/linesize
package main

import (
	"fmt"
	"log"

	"tradeoff/internal/cache"
	"tradeoff/internal/linesize"
	"tradeoff/internal/missratio"
	"tradeoff/internal/trace"
)

func main() {
	lines := []int{8, 16, 32, 64, 128}

	// Part 1: the design-target surface on Figure 6(a): a 16K cache,
	// 32-bit bus, 360 ns latency + 15 ns/byte memory.
	cfg := linesize.Config{CacheSize: 16 << 10, BusWidth: 4, LatencyNS: 360, NSPerByte: 15, Lines: lines}
	m := missratio.DefaultModel()
	fmt.Println("16K cache, D=4, memory 360ns + 15ns/byte (Figure 6a):")
	fmt.Println("  beta   Smith's pick   Eq.19's pick   reduced delay of the pick (x1e4)")
	for _, beta := range []float64{1, 2, 4, 8} {
		smith, err := linesize.SmithOptimal(m, cfg, beta)
		if err != nil {
			log.Fatal(err)
		}
		eq19, err := linesize.Eq19Optimal(m, cfg, beta)
		if err != nil {
			log.Fatal(err)
		}
		pts, err := linesize.ReducedDelays(m, cfg, beta)
		if err != nil {
			log.Fatal(err)
		}
		var rd float64
		for _, p := range pts {
			if p.Line == eq19 {
				rd = p.Reduced
			}
		}
		fmt.Printf("  %4g   %6dB        %6dB        %8.2f\n", beta, smith, eq19, 1e4*rd)
	}

	// Part 2: the same selection on miss ratios measured from the
	// simulator — sweep line sizes on the hydro2d model at 8K.
	fmt.Println("\n8K cache, miss ratios measured on the hydro2d model:")
	refs := trace.Collect(trace.MustProgram(trace.Hydro2D, 7), 300_000)
	tab := missratio.NewTable()
	for _, ls := range lines {
		c, err := cache.New(cache.Config{Size: 8 << 10, LineSize: ls, Assoc: 2})
		if err != nil {
			log.Fatal(err)
		}
		p := cache.Measure(c, refs)
		tab.Set(8<<10, ls, 1-p.HitRatio)
		fmt.Printf("  L=%3dB: miss ratio %.4f\n", ls, 1-p.HitRatio)
	}
	simCfg := linesize.Config{CacheSize: 8 << 10, BusWidth: 8, LatencyNS: 360, NSPerByte: 15, Lines: lines}
	fmt.Println("  beta   optimal line (Smith = Eq.19)")
	for _, beta := range []float64{1, 2, 4, 8} {
		smith, err := linesize.SmithOptimal(tab, simCfg, beta)
		if err != nil {
			log.Fatal(err)
		}
		eq19, err := linesize.Eq19Optimal(tab, simCfg, beta)
		if err != nil {
			log.Fatal(err)
		}
		agree := "AGREE"
		if smith != eq19 {
			agree = "DISAGREE"
		}
		fmt.Printf("  %4g   %dB (%s)\n", beta, eq19, agree)
	}
}
