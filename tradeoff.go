// Package tradeoff is the public API of the unified architectural
// tradeoff methodology (Chen & Somani, ISCA 1994).
//
// The methodology prices architectural features — external data-bus
// width, processor stalling disciplines, read-bypassing write buffers,
// pipelined memory systems, and cache line size — in a single
// currency: cache hit ratio. Two systems that differ in one feature
// perform identically exactly when their mean memory delay per
// reference is equal; solving that equality yields the hit-ratio
// difference ΔHR the feature is worth, and hence the cache size (chip
// area) it can replace.
//
// # Pricing a feature
//
//	tr, err := tradeoff.Price(tradeoff.Spec{Feature: tradeoff.DoubleBus},
//	    tradeoff.DesignPoint{HitRatio: 0.95, Alpha: 0.5, L: 32, D: 4, BetaM: 10})
//	// tr.DeltaHR: the hit ratio a doubled bus is worth (≈5.1% here)
//
// # Measuring a workload
//
// The package also exposes the simulation substrate the paper's
// evaluation used: synthetic workload models, a cache simulator, and a
// cycle-level stall engine. MeasureWorkload runs a named workload model
// through a cache and returns the {R, W, α, hit ratio} application
// profile of the paper's Table 1; SimulatePhi measures the stalling
// factor φ of a partially-stalling cache (Table 2, Eq. 8), which feeds
// back into Price via Spec.Phi.
//
// The subpackages under internal/ carry the full implementation; this
// package is the stable surface. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package tradeoff

import (
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/linesize"
	"tradeoff/internal/memory"
	"tradeoff/internal/missratio"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// Feature identifies an architectural feature to price against a
// full-blocking, non-pipelined, unbuffered base system.
type Feature = core.Feature

// The four features of the paper's unified comparison (Table 3).
const (
	// DoubleBus doubles the external data-bus width D → 2D (§4.1).
	DoubleBus = core.FeatureDoubleBus
	// PartialStall replaces the full-stalling cache with a BL/BNL one
	// of measured stalling factor φ (§4.2).
	PartialStall = core.FeaturePartialStall
	// WriteBuffers adds ideal read-bypassing write buffers (§4.3).
	WriteBuffers = core.FeatureWriteBuffers
	// PipelinedMemory pipelines the memory with readiness interval q
	// (§4.4, Eq. 9).
	PipelinedMemory = core.FeaturePipelinedMemory
)

// Spec selects a feature and its feature-specific knobs.
type Spec struct {
	Feature Feature
	Phi     float64 // PartialStall: stalling factor φ ∈ [1, L/D]
	Q       float64 // PipelinedMemory: readiness interval q ≥ 1
}

// DesignPoint fixes the shared hardware parameters and the base
// system's hit ratio.
type DesignPoint struct {
	HitRatio float64 // base system data-cache hit ratio, in (0, 1)
	Alpha    float64 // flush ratio α ∈ [0, 1] (the paper uses 0.5)
	L        float64 // cache line size in bytes
	D        float64 // external data-bus width in bytes
	BetaM    float64 // memory cycle time per D-byte transfer, in clocks
}

// Result is a priced tradeoff: the hit ratio the feature is worth.
type Result = core.Tradeoff

// Price returns the hit ratio the feature is worth at the design
// point: the base system at dp.HitRatio performs like the improved
// system at dp.HitRatio − Result.DeltaHR (Eq. 6). Result.Valid is
// false when the implied hit ratio falls out of the physical range.
func Price(spec Spec, dp DesignPoint) (Result, error) {
	return core.FeatureTradeoff(core.FeatureSpec{
		Feature: spec.Feature, Phi: spec.Phi, Q: spec.Q,
	}, dp.HitRatio, dp.Alpha, dp.L, dp.D, dp.BetaM)
}

// PriceAt is Price at an issue width above one — the paper's §6
// future-work extension. issue = 1 matches Price exactly.
func PriceAt(spec Spec, dp DesignPoint, issue float64) (Result, error) {
	return core.MultiIssueTradeoff(core.FeatureSpec{
		Feature: spec.Feature, Phi: spec.Phi, Q: spec.Q,
	}, dp.HitRatio, dp.Alpha, dp.L, dp.D, dp.BetaM, issue)
}

// Rank prices all four features at the design point and returns them
// ordered by the hit ratio each trades, largest first (§5.3). phi is
// the measured stalling factor used for PartialStall and q the
// readiness interval for PipelinedMemory.
func Rank(dp DesignPoint, phi, q float64) ([]Result, error) {
	return core.RankFeatures(dp.HitRatio, dp.Alpha, dp.L, dp.D, dp.BetaM, phi, q)
}

// PipelineCrossover returns the memory cycle time βm beyond which a
// pipelined memory system (readiness q) out-trades a doubled bus —
// about five cycles for q=2, L/D=8; +Inf for L = 2D (§5.3, §6).
func PipelineCrossover(q, l, d float64) (float64, error) {
	return core.PipelineCrossover(q, l, d)
}

// BetaP evaluates Eq. (9): the pipelined line-fill time
// βp = βm + q·(L/D − 1).
func BetaP(betaM, q, l, d float64) float64 { return core.BetaP(betaM, q, l, d) }

// StallFeature identifies a processor stalling discipline (Table 2).
type StallFeature = stall.Feature

// The stalling features of Table 2.
const (
	FS   = stall.FS   // full stalling: wait for the entire line
	BL   = stall.BL   // bus-locked: any access during a fill waits
	BNL1 = stall.BNL1 // bus-not-locked: same-line accesses wait for the fill
	BNL2 = stall.BNL2 // like BNL1, but already-arrived words proceed
	BNL3 = stall.BNL3 // accesses wait only for the word they need
	NB   = stall.NB   // non-blocking: the missing access itself proceeds
)

// Workload names a built-in synthetic workload model.
type Workload string

// The six SPEC92-like workload models of Figure 1 (see DESIGN.md §4
// for the substitution rationale) plus the Zipf general-purpose model.
const (
	Nasa7   Workload = trace.Nasa7
	Swm256  Workload = trace.Swm256
	Wave5   Workload = trace.Wave5
	Ear     Workload = trace.Ear
	Doduc   Workload = trace.Doduc
	Hydro2D Workload = trace.Hydro2D
	// ZipfGeneral is a general-purpose workload whose hit-ratio-vs-
	// size curve lands on the Short & Levy numbers of Example 1.
	ZipfGeneral Workload = "zipf"
)

// Workloads lists the built-in workload model names.
func Workloads() []Workload {
	out := make([]Workload, 0, 7)
	for _, p := range trace.Programs() {
		out = append(out, Workload(p))
	}
	return append(out, ZipfGeneral)
}

// CacheSpec describes a cache for workload measurement.
type CacheSpec struct {
	Size      int  // bytes (power of two)
	LineSize  int  // bytes (power of two)
	Assoc     int  // ways; 0 = fully associative
	WriteBack bool // false = write-through
	Allocate  bool // false = write-around on write misses
}

func (cs CacheSpec) config() cache.Config {
	cfg := cache.Config{Size: cs.Size, LineSize: cs.LineSize, Assoc: cs.Assoc}
	if !cs.WriteBack {
		cfg.Write = cache.WriteThrough
	}
	if !cs.Allocate {
		cfg.WriteMiss = cache.WriteAround
	}
	return cfg
}

// Profile is the measured application characterization {E, R, W, α,
// hit ratio} of the paper's Table 1.
type Profile = cache.AppProfile

// MeasureWorkload replays n references of the named workload model
// (seeded deterministically) through the cache and returns the
// application profile.
func MeasureWorkload(w Workload, seed uint64, n int, cs CacheSpec) (Profile, error) {
	src, err := workloadSource(w, seed)
	if err != nil {
		return Profile{}, err
	}
	c, err := cache.New(cs.config())
	if err != nil {
		return Profile{}, err
	}
	return cache.MeasureSource(c, src, n), nil
}

// PhiResult is a measured stalling factor.
type PhiResult struct {
	Phi      float64 // stalling factor φ (Table 2)
	Fraction float64 // φ / (L/D), Figure 1's y-axis
	Misses   uint64  // line fills observed
}

// SimulatePhi measures the stalling factor of the given stalling
// discipline for a workload on the cache/memory design point, using
// the cycle-level replay engine (Eq. 8 semantics).
func SimulatePhi(w Workload, seed uint64, n int, cs CacheSpec, feature StallFeature, betaM int64, busWidth int) (PhiResult, error) {
	src, err := workloadSource(w, seed)
	if err != nil {
		return PhiResult{}, err
	}
	res, err := stall.RunSource(stall.Config{
		Cache:   cs.config(),
		Memory:  memory.Config{BetaM: betaM, BusWidth: busWidth},
		Feature: feature,
	}, src, n)
	if err != nil {
		return PhiResult{}, err
	}
	return PhiResult{Phi: res.Phi, Fraction: res.PhiFraction, Misses: res.Misses}, nil
}

func workloadSource(w Workload, seed uint64) (trace.Source, error) {
	if w == ZipfGeneral {
		return trace.ZipfReuse(trace.ZipfReuseConfig{
			Seed: seed, Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
		}), nil
	}
	return trace.NewProgram(string(w), seed)
}

// L2Worth prices a second-level cache in L1 hit ratio (see
// core.PriceL2 and docs/DERIVATIONS.md §9).
type L2Worth = core.L2Worth

// PriceL2 returns the increase in L1 hit ratio that would match adding
// an L2 with the given local hit ratio, L2 access time and memory
// line-fill time (both in cycles).
func PriceL2(l1HitRatio, l2LocalHitRatio, tL2, tMem float64) (L2Worth, error) {
	return core.PriceL2(l1HitRatio, l2LocalHitRatio, tL2, tMem)
}

// LevelSpec describes one level of an N-deep hierarchy for the delay
// model: its local hit ratio and access time in cycles.
type LevelSpec = core.LevelSpec

// LevelWorth prices any cache level in equivalent L1 hit ratio; the
// two-level L2Worth is an alias of it.
type LevelWorth = core.LevelWorth

// HierarchyDelay returns the mean memory delay per reference of an
// N-level hierarchy: a reference pays level i's access time where it
// first hits and the tMem line-fill when every level misses. The
// two-level case reduces exactly to the classic
// HR1 + (1−HR1)·(HR2·tL2 + (1−HR2)·tMem).
func HierarchyDelay(levels []LevelSpec, tMem float64) (float64, error) {
	return core.HierarchyDelay(levels, tMem)
}

// PriceLevel returns what level i (0-indexed, i ≥ 1) of the hierarchy
// is worth in equivalent L1 hit ratio — the paper's feature-pricing
// currency applied to whole cache levels.
func PriceLevel(levels []LevelSpec, i int, tMem float64) (LevelWorth, error) {
	return core.PriceLevel(levels, i, tMem)
}

// LineSizeConfig describes an optimal-line-size question: the cache,
// the bus, the memory timing of the paper's Figure 6 subcaptions
// (latency + per-byte transfer time), and the candidate line sizes
// (ascending; the first is the comparison base).
type LineSizeConfig struct {
	CacheSize int     // bytes
	BusWidth  int     // bytes
	LatencyNS float64 // constant memory access latency
	NSPerByte float64 // transfer time per byte
	Lines     []int   // candidates, ascending
}

// OptimalLineSize selects the line size minimizing mean memory delay
// per reference at normalized bus speed beta, using the calibrated
// design-target miss-ratio surface. By the Eq. (19) identity this is
// simultaneously Smith's choice and the paper's (docs/DERIVATIONS.md
// §8).
func OptimalLineSize(cfg LineSizeConfig, beta float64) (int, error) {
	return linesize.SmithOptimal(missratio.DefaultModel(), linesize.Config{
		CacheSize: cfg.CacheSize,
		BusWidth:  cfg.BusWidth,
		LatencyNS: cfg.LatencyNS,
		NSPerByte: cfg.NSPerByte,
		Lines:     cfg.Lines,
	}, beta)
}
