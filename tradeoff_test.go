package tradeoff_test

import (
	"math"
	"testing"

	"tradeoff"
)

func dp95() tradeoff.DesignPoint {
	return tradeoff.DesignPoint{HitRatio: 0.95, Alpha: 0.5, L: 32, D: 4, BetaM: 10}
}

func TestPriceMatchesPaperHeadline(t *testing.T) {
	// L = 2D at the design limit: HR → 2.5·HR − 1.5.
	tr, err := tradeoff.Price(tradeoff.Spec{Feature: tradeoff.DoubleBus},
		tradeoff.DesignPoint{HitRatio: 0.95, Alpha: 0.5, L: 8, D: 4, BetaM: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.NewHR-0.875) > 1e-12 {
		t.Fatalf("NewHR = %v, want 0.875", tr.NewHR)
	}
}

func TestPriceAllFeatures(t *testing.T) {
	specs := []tradeoff.Spec{
		{Feature: tradeoff.DoubleBus},
		{Feature: tradeoff.PartialStall, Phi: 7},
		{Feature: tradeoff.WriteBuffers},
		{Feature: tradeoff.PipelinedMemory, Q: 2},
	}
	for _, s := range specs {
		tr, err := tradeoff.Price(s, dp95())
		if err != nil {
			t.Fatalf("%v: %v", s.Feature, err)
		}
		if tr.DeltaHR <= 0 || !tr.Valid {
			t.Fatalf("%v: tradeoff %+v", s.Feature, tr)
		}
	}
}

func TestPriceRejectsBadDesignPoint(t *testing.T) {
	if _, err := tradeoff.Price(tradeoff.Spec{Feature: tradeoff.DoubleBus},
		tradeoff.DesignPoint{HitRatio: 1.5, Alpha: 0.5, L: 32, D: 4, BetaM: 10}); err == nil {
		t.Fatal("hit ratio above 1 accepted")
	}
}

func TestPriceAtIssueOneMatchesPrice(t *testing.T) {
	spec := tradeoff.Spec{Feature: tradeoff.WriteBuffers}
	a, err := tradeoff.Price(spec, dp95())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tradeoff.PriceAt(spec, dp95(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeltaHR != b.DeltaHR {
		t.Fatalf("PriceAt(1) %v != Price %v", b.DeltaHR, a.DeltaHR)
	}
}

func TestRankOrdering(t *testing.T) {
	ranked, err := tradeoff.Rank(dp95(), 7.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d features, want 4", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].DeltaHR > ranked[i-1].DeltaHR {
			t.Fatal("ranking not descending")
		}
	}
}

func TestPipelineCrossoverPublic(t *testing.T) {
	x, err := tradeoff.PipelineCrossover(2, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-14.0/3) > 1e-12 {
		t.Fatalf("crossover %v, want 14/3", x)
	}
	if got := tradeoff.BetaP(10, 2, 32, 4); got != 24 {
		t.Fatalf("BetaP = %v, want 24", got)
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := tradeoff.Workloads()
	if len(ws) != 7 {
		t.Fatalf("%d workloads, want 7", len(ws))
	}
	if ws[len(ws)-1] != tradeoff.ZipfGeneral {
		t.Fatal("zipf workload missing")
	}
}

func TestMeasureWorkload(t *testing.T) {
	cs := tradeoff.CacheSpec{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteBack: true, Allocate: true}
	p, err := tradeoff.MeasureWorkload(tradeoff.Swm256, 1, 50000, cs)
	if err != nil {
		t.Fatal(err)
	}
	if p.HitRatio <= 0.5 || p.HitRatio >= 1 {
		t.Fatalf("hit ratio %v implausible", p.HitRatio)
	}
	if p.W != 0 {
		t.Fatalf("write-allocate W = %d, want 0", p.W)
	}
	// Zipf lands on the Short & Levy curve at 8K (≈0.91 before warm-up).
	z, err := tradeoff.MeasureWorkload(tradeoff.ZipfGeneral, 1, 200000, cs)
	if err != nil {
		t.Fatal(err)
	}
	if z.HitRatio < 0.88 || z.HitRatio > 0.94 {
		t.Fatalf("zipf 8K hit ratio %.3f, want ≈0.91", z.HitRatio)
	}
}

func TestMeasureWorkloadErrors(t *testing.T) {
	good := tradeoff.CacheSpec{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteBack: true, Allocate: true}
	if _, err := tradeoff.MeasureWorkload("gcc", 1, 100, good); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad := good
	bad.Size = 999
	if _, err := tradeoff.MeasureWorkload(tradeoff.Ear, 1, 100, bad); err == nil {
		t.Fatal("invalid cache accepted")
	}
}

func TestSimulatePhiFeedsPrice(t *testing.T) {
	cs := tradeoff.CacheSpec{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteBack: true, Allocate: true}
	phi, err := tradeoff.SimulatePhi(tradeoff.Nasa7, 1, 50000, cs, tradeoff.BNL1, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if phi.Phi < 1 || phi.Phi > 8 {
		t.Fatalf("BNL1 φ = %v outside Table 2 bounds", phi.Phi)
	}
	tr, err := tradeoff.Price(tradeoff.Spec{Feature: tradeoff.PartialStall, Phi: phi.Phi}, dp95())
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeltaHR < 0 {
		t.Fatalf("measured-φ tradeoff negative: %+v", tr)
	}
}

func TestSimulatePhiErrors(t *testing.T) {
	cs := tradeoff.CacheSpec{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteBack: true, Allocate: true}
	if _, err := tradeoff.SimulatePhi("gcc", 1, 100, cs, tradeoff.FS, 10, 4); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := tradeoff.SimulatePhi(tradeoff.Ear, 1, 100, cs, tradeoff.FS, 10, 5); err == nil {
		t.Fatal("invalid bus width accepted")
	}
}

func TestCacheSpecPolicies(t *testing.T) {
	// Write-around must report W > 0 on a write-heavy workload.
	cs := tradeoff.CacheSpec{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteBack: true, Allocate: false}
	p, err := tradeoff.MeasureWorkload(tradeoff.Doduc, 1, 50000, cs)
	if err != nil {
		t.Fatal(err)
	}
	if p.W == 0 {
		t.Fatal("write-around measured no bypassed writes")
	}
}

func TestPriceL2Public(t *testing.T) {
	w, err := tradeoff.PriceL2(0.90, 0.80, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Achievable || w.DeltaHR <= 0 {
		t.Fatalf("L2 worth %+v", w)
	}
	if _, err := tradeoff.PriceL2(0.90, 0.80, 0.5, 80); err == nil {
		t.Fatal("bad tL2 accepted")
	}
}

func TestOptimalLineSizePublic(t *testing.T) {
	// Figure 6(a): 16K, D=4, 360ns + 15ns/byte → 32-byte lines.
	got, err := tradeoff.OptimalLineSize(tradeoff.LineSizeConfig{
		CacheSize: 16 << 10, BusWidth: 4, LatencyNS: 360, NSPerByte: 15,
		Lines: []int{8, 16, 32, 64, 128},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("optimal line %d, want 32", got)
	}
	if _, err := tradeoff.OptimalLineSize(tradeoff.LineSizeConfig{}, 2); err == nil {
		t.Fatal("empty config accepted")
	}
}
