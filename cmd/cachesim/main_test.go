package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestRunProfileMode(t *testing.T) {
	if err := run(input{program: "swm256"}, 20000, 1, 8<<10, 32, 2, "allocate", "", "", 10, 4, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunStallMode(t *testing.T) {
	for _, f := range []string{"FS", "BL", "BNL1", "BNL2", "BNL3", "NB"} {
		if err := run(input{program: "ear"}, 10000, 1, 8<<10, 32, 2, "around", "", f, 5, 4, 2, 0, ""); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(input{program: "nope"}, 100, 1, 8<<10, 32, 2, "allocate", "", "", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("unknown program accepted")
	}
	if err := run(input{program: "ear"}, 100, 1, 8<<10, 32, 2, "sideways", "", "", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("unknown write policy accepted")
	}
	if err := run(input{program: "ear"}, 100, 1, 8<<10, 32, 2, "allocate", "", "WARP", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("unknown feature accepted")
	}
	if err := run(input{program: "ear"}, 100, 1, 999, 32, 2, "allocate", "", "", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("invalid cache size accepted")
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	native := dir + "/t.trace"
	if err := os.WriteFile(native, []byte("0 0x1000 4 R\n3 0x1020 4 W\n7 0x1000 4 R\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(input{traceFile: native}, 100, 1, 8<<10, 32, 2, "allocate", "", "", 10, 4, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	din := dir + "/t.din"
	if err := os.WriteFile(din, []byte("0 1000\n1 1004\n2 400\n0 2000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(input{traceFile: din, dinero: true}, 100, 1, 8<<10, 32, 2, "allocate", "", "BNL3", 10, 4, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(input{traceFile: dir + "/missing"}, 100, 1, 8<<10, 32, 2, "allocate", "", "", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := run(input{traceFile: din}, 100, 1, 8<<10, 32, 2, "allocate", "", "", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("dinero file parsed as native format")
	}
}

// TestRunWritesTrace checks -trace: a multi-feature replay records one
// "sim_feature" span per feature; a profile-only run still writes a
// well-formed (empty) event array.
func TestRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/trace.json"
	if err := run(input{program: "ear"}, 5000, 1, 8<<10, 32, 2, "allocate", "", "FS,BNL3", 10, 4, 0, 2, tracePath); err != nil {
		t.Fatal(err)
	}
	events := readTrace(t, tracePath)
	if len(events) != 2 {
		t.Fatalf("trace spans = %d, want 2 (one per feature)", len(events))
	}
	for _, ev := range events {
		if ev.Name != "sim_feature" || ev.Ph != "X" {
			t.Fatalf("unexpected event %+v", ev)
		}
	}

	empty := dir + "/empty.json"
	if err := run(input{program: "ear"}, 1000, 1, 8<<10, 32, 2, "allocate", "", "", 10, 4, 0, 0, empty); err != nil {
		t.Fatal(err)
	}
	if events := readTrace(t, empty); len(events) != 0 {
		t.Fatalf("profile-only trace has %d spans, want 0", len(events))
	}
}

func readTrace(t *testing.T, path string) []struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
} {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace not a JSON event array: %v\n%s", err, data)
	}
	return events
}

func TestInputTruncatesToRefs(t *testing.T) {
	dir := t.TempDir()
	p := dir + "/t.trace"
	if err := os.WriteFile(p, []byte("0 0x0 4 R\n1 0x20 4 R\n2 0x40 4 R\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, err := input{traceFile: p}.load(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("loaded %d refs, want truncation to 2", len(refs))
	}
}

func TestRunMultiFeature(t *testing.T) {
	// A comma list and "all" replay every feature over one shared trace
	// on the pool and render the comparison table.
	if err := run(input{program: "ear"}, 5000, 1, 8<<10, 32, 2, "allocate", "", "FS,BNL3", 10, 4, 0, 2, ""); err != nil {
		t.Fatalf("feature list: %v", err)
	}
	if err := run(input{program: "ear"}, 5000, 1, 8<<10, 32, 2, "allocate", "", "all", 10, 4, 0, 0, ""); err != nil {
		t.Fatalf("feature all: %v", err)
	}
	if err := run(input{program: "ear"}, 100, 1, 8<<10, 32, 2, "allocate", "", "FS,WARP", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("bad feature in list accepted")
	}
}

func TestRunHierarchyMode(t *testing.T) {
	if err := run(input{program: "ear"}, 5000, 1, 8<<10, 32, 2, "allocate", "64K:4:32,256K:8:64", "", 10, 4, 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// -levels and -feature are mutually exclusive.
	if err := run(input{program: "ear"}, 100, 1, 8<<10, 32, 2, "allocate", "64K:4:32", "FS", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("-levels with -feature accepted")
	}
	// Shrinking level sizes violate hierarchy monotonicity.
	if err := run(input{program: "ear"}, 100, 1, 8<<10, 32, 2, "allocate", "4K:4:32", "", 10, 4, 0, 0, ""); err == nil {
		t.Fatal("L2 smaller than L1 accepted")
	}
}

func TestParseLevels(t *testing.T) {
	cfgs, err := parseLevels("64K:4:32, 1M:0:64")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Size != 64<<10 || cfgs[0].Assoc != 4 || cfgs[0].LineSize != 32 ||
		cfgs[1].Size != 1<<20 || cfgs[1].Assoc != 0 || cfgs[1].LineSize != 64 {
		t.Fatalf("parsed %+v", cfgs)
	}
	for _, bad := range []string{"", "64K:4", "64K:4:32:1", "x:4:32", "64K:-1:32", "64K:4:zero", "0:4:32"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
