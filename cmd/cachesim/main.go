// Command cachesim runs the trace-driven cache and stall simulator on
// a built-in workload model or a trace file, and reports the
// application profile {E, R, W, α, hit ratio} of the paper's Table 1
// plus, when a stalling feature is selected, the measured stalling
// factor φ and the bus traffic.
//
// Usage:
//
//	cachesim [-program nasa7] [-refs 400000] [-seed 1]
//	         [-replay file [-dinero]]
//	         [-size 8192] [-line 32] [-assoc 2] [-write allocate|around]
//	         [-levels "size:assoc:line,..."]
//	         [-feature FS|BL|BNL1|BNL2|BNL3|NB] [-beta 10] [-bus 4]
//	         [-wbuf 0] [-workers 0] [-trace out.json]
//
// -feature also accepts a comma-separated list or "all"; the listed
// features replay concurrently on a simjob worker pool (-workers) over
// one shared trace and report as a comparison table.
//
// -levels appends deeper cache levels below the L1 the -size/-line/
// -assoc flags describe and replays the trace through the resulting
// hierarchy, reporting each level's local and global hit ratio. Each
// comma-separated level is size:assoc:line (assoc 0 = fully
// associative; sizes take an optional K or M suffix), e.g.
//
//	cachesim -program ear -levels "64K:4:32,256K:8:64"
//
// Levels must not shrink: each level's size and line must be at least
// its upper neighbor's. -levels is a profiling mode and combines with
// -feature only when -feature is empty (the stall features model an
// L1-only system).
//
// Replay files use cmd/tracegen's text format (instr addr size R|W),
// or the classic Dinero format (label hex-address) with -dinero.
// (Before the observability work this flag was called -trace; it was
// renamed so -trace means the same thing on every CLI.)
//
// -trace writes a Chrome trace_event JSON profile of the run (one
// "sim_feature" span per replayed feature, laned by worker slot) —
// load it at chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/obs"
	"tradeoff/internal/simjob"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

func main() {
	var (
		program = flag.String("program", "nasa7", "workload model: nasa7, swm256, wave5, ear, doduc, hydro2d")
		tfile   = flag.String("replay", "", "replay a trace file instead of a workload model (tracegen format, or Dinero with -dinero)")
		dinero  = flag.Bool("dinero", false, "treat -trace as classic Dinero format (label hex-address)")
		refs    = flag.Int("refs", 400_000, "memory references to replay")
		seed    = flag.Uint64("seed", 1, "trace seed")
		size    = flag.Int("size", 8<<10, "cache size in bytes")
		line    = flag.Int("line", 32, "line size in bytes")
		assoc   = flag.Int("assoc", 2, "associativity (0 = fully associative)")
		write   = flag.String("write", "allocate", "write-miss policy: allocate or around")
		levels  = flag.String("levels", "", `deeper cache levels below L1, "size:assoc:line,..." (profiling mode)`)
		feature = flag.String("feature", "", "stalling feature(s) to measure: one name, a comma list, or \"all\" (empty = profile only)")
		beta    = flag.Int64("beta", 10, "memory cycle time per bus transfer")
		bus     = flag.Int("bus", 4, "bus width in bytes")
		wdepth  = flag.Int("wbuf", 0, "write buffer depth (0 = none)")
		workers = flag.Int("workers", 0, "worker pool size for multi-feature replay (0 = all CPUs)")
		tpath   = flag.String("trace", "", "write a Chrome trace_event JSON profile of the run")
	)
	flag.Parse()
	if err := run(input{program: *program, traceFile: *tfile, dinero: *dinero},
		*refs, *seed, *size, *line, *assoc, *write, *levels, *feature, *beta, *bus, *wdepth, *workers, *tpath); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

// input selects the reference stream: a built-in workload model or a
// trace file (native or Dinero format).
type input struct {
	program   string
	traceFile string
	dinero    bool
}

// load produces up to nrefs references from the selected input.
func (in input) load(nrefs int, seed uint64) ([]trace.Ref, error) {
	if in.traceFile == "" {
		src, err := trace.NewProgram(in.program, seed)
		if err != nil {
			return nil, err
		}
		return trace.Collect(src, nrefs), nil
	}
	f, err := os.Open(in.traceFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var refs []trace.Ref
	if in.dinero {
		refs, err = trace.ParseDinero(f)
	} else {
		refs, err = trace.Parse(f)
	}
	if err != nil {
		return nil, err
	}
	if len(refs) > nrefs {
		refs = refs[:nrefs]
	}
	return refs, nil
}

func (in input) name() string {
	if in.traceFile != "" {
		return in.traceFile
	}
	return in.program
}

func run(in input, nrefs int, seed uint64, size, line, assoc int, write, levels, feature string, beta int64, bus, wdepth, workers int, tracePath string) error {
	var wp cache.WriteMissPolicy
	switch write {
	case "allocate":
		wp = cache.WriteAllocate
	case "around":
		wp = cache.WriteAround
	default:
		return fmt.Errorf("unknown write policy %q", write)
	}
	ccfg := cache.Config{Size: size, LineSize: line, Assoc: assoc, WriteMiss: wp}
	refs, err := in.load(nrefs, seed)
	if err != nil {
		return err
	}

	if levels != "" {
		if feature != "" {
			return fmt.Errorf("-levels is a profiling mode; drop -feature (the stall features model an L1-only system)")
		}
		deeper, err := parseLevels(levels)
		if err != nil {
			return err
		}
		return runHierarchy(in, ccfg, deeper, refs)
	}

	ctx := context.Background()
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	writeTrace := func() error {
		if tracer == nil {
			return nil
		}
		return tracer.WriteFile(tracePath)
	}

	if feature == "" {
		c, err := cache.New(ccfg)
		if err != nil {
			return err
		}
		p := cache.Measure(c, refs)
		fmt.Printf("input:      %s (%d refs, %d instructions)\n", in.name(), p.Refs, p.E)
		fmt.Printf("cache:      %d bytes, %dB lines, %d-way, %s\n", size, line, assoc, wp)
		fmt.Printf("hit ratio:  %.4f\n", p.HitRatio)
		fmt.Printf("R:          %d bytes (Λm via Eq.1 = %d)\n", p.R, p.Misses)
		fmt.Printf("W:          %d write-around misses\n", p.W)
		fmt.Printf("alpha:      %.3f (paper's analytic default: 0.5)\n", p.Alpha)
		return writeTrace() // empty but well-formed: no replay pool ran
	}

	feats, err := parseFeatures(feature)
	if err != nil {
		return err
	}
	cfgs := make([]stall.Config, len(feats))
	for i, f := range feats {
		cfgs[i] = stall.Config{
			Cache:            ccfg,
			Memory:           memory.Config{BetaM: beta, BusWidth: bus},
			Feature:          f,
			WriteBufferDepth: wdepth,
		}
	}
	results, err := simjob.RunRefs(ctx, refs, cfgs, workers)
	if err != nil {
		return err
	}
	if err := writeTrace(); err != nil {
		return err
	}

	if len(feats) == 1 {
		feat, res := feats[0], results[0]
		fmt.Printf("input:        %s (%d refs, %d instructions)\n", in.name(), res.Refs, res.E)
		fmt.Printf("feature:      %s, beta_m=%d, D=%d, write buffer depth %d\n", feat, beta, bus, wdepth)
		fmt.Printf("cycles:       %d (base %d)\n", res.Cycles, res.BaseCycles)
		fmt.Printf("fill stall:   %d cycles over %d misses\n", res.FillStall, res.Misses)
		fmt.Printf("flush stall:  %d cycles (hidden: %d)\n", res.FlushStall, res.HiddenFlush)
		fmt.Printf("write stall:  %d cycles, buffer-full %d, conflicts %d\n", res.WriteStall, res.BufferFull, res.Conflict)
		fmt.Printf("phi:          %.3f (%.1f%% of L/D = %g)\n", res.Phi, 100*res.PhiFraction, float64(line)/float64(bus))
		fmt.Printf("bus traffic:  %d bytes (%.2f B/ref)\n", res.Traffic, float64(res.Traffic)/float64(res.Refs))
		return nil
	}

	fmt.Printf("input:    %s (%d refs, %d instructions)\n", in.name(), results[0].Refs, results[0].E)
	fmt.Printf("config:   beta_m=%d, D=%d, write buffer depth %d, L/D=%g\n", beta, bus, wdepth, float64(line)/float64(bus))
	fmt.Printf("%-6s %12s %12s %10s %12s %8s %8s\n",
		"feat", "cycles", "fill_stall", "bus_wait", "misses", "phi", "phi%")
	for i, f := range feats {
		res := results[i]
		fmt.Printf("%-6s %12d %12d %10d %12d %8.3f %7.1f%%\n",
			f, res.Cycles, res.FillStall, res.BusWait, res.Misses, res.Phi, 100*res.PhiFraction)
	}
	return nil
}

// parseLevels parses the -levels argument: comma-separated
// size:assoc:line triples, top level first, sizes with an optional
// K or M suffix.
func parseLevels(arg string) ([]cache.Config, error) {
	var cfgs []cache.Config
	for _, spec := range strings.Split(arg, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("level %q: want size:assoc:line", spec)
		}
		size, err := parseSize(parts[0])
		if err != nil {
			return nil, fmt.Errorf("level %q: %w", spec, err)
		}
		assoc, err := strconv.Atoi(parts[1])
		if err != nil || assoc < 0 {
			return nil, fmt.Errorf("level %q: bad associativity %q", spec, parts[1])
		}
		line, err := parseSize(parts[2])
		if err != nil {
			return nil, fmt.Errorf("level %q: %w", spec, err)
		}
		cfgs = append(cfgs, cache.Config{Size: size, LineSize: line, Assoc: assoc})
	}
	return cfgs, nil
}

// parseSize parses a byte count with an optional K or M suffix.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// runHierarchy replays the trace through the N-level hierarchy and
// reports each level's local and global hit ratio — the per-level
// currency the multi-level tradeoff prices.
func runHierarchy(in input, l1 cache.Config, deeper []cache.Config, refs []trace.Ref) error {
	cfgs := append([]cache.Config{l1}, deeper...)
	h, err := cache.NewHierarchy(cfgs...)
	if err != nil {
		return err
	}
	for _, r := range refs {
		h.Access(r.Addr, r.Write)
	}
	s := h.Stats()
	fmt.Printf("input:      %s (%d refs)\n", in.name(), s.Accesses)
	for i, c := range cfgs {
		assoc := "full"
		if c.Assoc > 0 {
			assoc = fmt.Sprintf("%d-way", c.Assoc)
		}
		fmt.Printf("L%d:         %d bytes, %dB lines, %s\n", i+1, c.Size, c.LineSize, assoc)
	}
	for i := range cfgs {
		fmt.Printf("L%d local:   %.4f (%d hits, %d dirty flushes)\n",
			i+1, s.LocalHitRatio(i), s.Levels[i].Hits, s.Levels[i].Flushes)
	}
	fmt.Printf("global:     %.4f (%d memory fills)\n", s.GlobalHitRatio(), s.MemFills)
	return nil
}

// parseFeatures expands the -feature argument: one name, a comma-
// separated list, or "all" for every Table 2 feature.
func parseFeatures(arg string) ([]stall.Feature, error) {
	if arg == "all" {
		return stall.Features(), nil
	}
	var feats []stall.Feature
	for _, name := range strings.Split(arg, ",") {
		f, err := stall.ParseFeature(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		feats = append(feats, f)
	}
	return feats, nil
}
