// Command tradeoffd serves the unified tradeoff methodology over
// HTTP: single-point feature pricing (POST /v1/tradeoff), full
// design-space sweeps (POST /v1/sweep, JSON or CSV), trace-driven
// stall sweeps (POST /v1/stall, JSON or CSV), cost-constrained
// hierarchy searches (POST /v1/optimize, JSON or CSV: every depth
// prefix of the configured level axes competes under an area_budget
// and optional power_budget, returning the budget-feasible designs
// with the delay/area/pins Pareto frontier flagged), a liveness probe
// (GET /healthz) and expvar counters (GET /metrics).
//
// Usage:
//
//	tradeoffd [-addr :8080] [-workers 0] [-cache 256] [-cache-mb 32] [-drain 10s]
//	          [-log-level info] [-pprof] [-xval 0]
//	          [-flight-spans 8192] [-slow-factor 8] [-slow-keep 16]
//	          [-history-interval 10s] [-history-window 1h] [-slo ""]
//
// Sweeps run on the shared engine.Map worker pool and stall grids on
// the internal/simjob replay pool, which materializes each workload
// trace once and shares it across requests; identical requests are
// answered from an LRU bounded by entries and bytes, and concurrent
// identical requests share one evaluation. SIGINT/SIGTERM triggers a graceful
// shutdown: the listener closes immediately, in-flight requests get
// the drain timeout to finish, and a client that disconnects mid-sweep
// cancels its workers via the request context.
//
// Every request gets a correlation ID (honored from X-Request-ID when
// well-formed, generated otherwise), echoed in the response and in the
// key=value access-log line on stderr; -log-level selects verbosity
// (debug, info, warn, error). -pprof exposes net/http/pprof under
// /debug/pprof/ — off by default since the profiles reveal internals.
//
// -xval enables the continuous cross-validation loop: every interval
// one (workload, line size) pair from the rotation is re-validated —
// analytic model vs exact MRC vs a set-associative replay — and the
// resulting error gauges are published on /metrics (expvar "xval",
// Prometheus tradeoffd_xval_* with ?format=prom). Off by default
// (interval 0) since it burns a few milliseconds of CPU per pass.
//
// The always-on observability tier needs no flags: the flight
// recorder keeps the last -flight-spans completed spans (dump a
// window as Chrome trace_event JSON with GET /debug/flight?last=30s;
// -flight-spans -1 disables it), tail-based sampling pins requests
// slower than -slow-factor × their endpoint's rolling p99 (full span
// tree under GET /debug/slow, at most -slow-keep retained), and every
// /metrics series plus the Go runtime gauges is snapshotted each
// -history-interval into in-memory rings holding -history-window
// (served by GET /metrics/history?series=...&window=...; live
// sparkline dashboard at GET /debug/dash). -slo attaches per-endpoint
// objectives, e.g.
//
//	-slo 'sweep:p99<250ms,err<1%;stall:p99<2s'
//
// which publishes rolling 5m/1h error-budget burn rates on /metrics
// (expvar "slo", Prometheus tradeoffd_slo_*) and logs a structured
// warning whenever an objective is burning.
//
// Examples:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/tradeoff -d '{"feature":"bus","hit_ratio":0.95}'
//	go run ./cmd/sweep -example | curl -s -X POST localhost:8080/v1/sweep?format=csv -d @-
//	curl -s -X POST 'localhost:8080/v1/stall?format=csv' -d '{"programs":["nasa7"],"beta_m":[4,10]}'
//	curl -s -X POST localhost:8080/v1/optimize -d '{"cache_kb":[4,8],"line_bytes":[32],
//	  "bus_bits":[32,64],"latency_ns":360,"transfer_ns":60,"cpu_ns":30,
//	  "levels":[{"cache_kb":[64],"latency_ns":90}],"area_budget":2e7}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tradeoff/internal/obs"
	"tradeoff/internal/service"
)

// config is the parsed flag set run() serves from.
type config struct {
	addr  string
	drain time.Duration
	level string
	xval  time.Duration
	slo   string
	opts  service.Options // Logger filled by run
}

func main() {
	var (
		cfg     config
		cacheMB int64
	)
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.opts.Workers, "workers", 0, "sweep worker pool size (0 = all CPUs)")
	flag.IntVar(&cfg.opts.CacheEntries, "cache", 256, "response LRU capacity (entries)")
	flag.Int64Var(&cacheMB, "cache-mb", 32, "response LRU capacity (MiB of response bytes)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain timeout")
	flag.StringVar(&cfg.level, "log-level", "info", "log verbosity: debug, info, warn, error")
	flag.BoolVar(&cfg.opts.Pprof, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.DurationVar(&cfg.xval, "xval", 0, "model cross-validation interval (0 = off)")
	flag.IntVar(&cfg.opts.FlightSpans, "flight-spans", 0, "flight-recorder span ring capacity (0 = default 8192, negative = off)")
	flag.Float64Var(&cfg.opts.SlowFactor, "slow-factor", 0, "pin requests slower than this multiple of their endpoint's rolling p99 (0 = default 8)")
	flag.IntVar(&cfg.opts.SlowKeep, "slow-keep", 0, "slow-request exemplars retained, oldest evicted first (0 = default 16, negative = off)")
	flag.DurationVar(&cfg.opts.HistoryInterval, "history-interval", 0, "metrics-history snapshot cadence (0 = default 10s)")
	flag.DurationVar(&cfg.opts.HistoryWindow, "history-window", 0, "metrics-history retention per series (0 = default 1h)")
	flag.StringVar(&cfg.slo, "slo", "", "per-endpoint objectives, e.g. 'sweep:p99<250ms,err<1%;stall:p99<2s'")
	flag.Parse()
	cfg.opts.CacheBytes = cacheMB << 20
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoffd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	lv, err := obs.ParseLevel(cfg.level)
	if err != nil {
		return err
	}
	if cfg.slo != "" {
		if cfg.opts.SLOs, err = obs.ParseSLOs(cfg.slo); err != nil {
			return err
		}
	}
	logger := obs.NewLogger(os.Stderr, lv)
	cfg.opts.Logger = logger
	svc := service.New(cfg.opts)
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The listener goroutine starts before the signal context exists:
	// its lifetime is managed by srv.Shutdown below, not by a ctx.
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The metrics-history scheduler always runs: the rings are
	// fixed-size, a tick costs microseconds, and /metrics/history,
	// /debug/dash and the SLO burn warnings all read from it.
	go svc.RunHistory(ctx)

	if cfg.xval > 0 {
		logger.Info("cross-validation loop on", "interval", cfg.xval.String())
		go svc.RunXVal(ctx, cfg.xval)
	}

	select {
	case err := <-errc:
		return err // ListenAndServe failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", cfg.drain.String())
	// The signal context is already canceled here; strip its
	// cancellation but keep its values for the drain deadline.
	drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain timeout exceeded: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
