// Command tradeoffd serves the unified tradeoff methodology over
// HTTP: single-point feature pricing (POST /v1/tradeoff), full
// design-space sweeps (POST /v1/sweep, JSON or CSV), trace-driven
// stall sweeps (POST /v1/stall, JSON or CSV), cost-constrained
// hierarchy searches (POST /v1/optimize, JSON or CSV: every depth
// prefix of the configured level axes competes under an area_budget
// and optional power_budget, returning the budget-feasible designs
// with the delay/area/pins Pareto frontier flagged), a liveness probe
// (GET /healthz) and expvar counters (GET /metrics).
//
// Usage:
//
//	tradeoffd [-addr :8080] [-workers 0] [-cache 256] [-cache-mb 32] [-drain 10s]
//	          [-log-level info] [-pprof] [-xval 0]
//
// Sweeps run on the shared engine.Map worker pool and stall grids on
// the internal/simjob replay pool, which materializes each workload
// trace once and shares it across requests; identical requests are
// answered from an LRU bounded by entries and bytes, and concurrent
// identical requests share one evaluation. SIGINT/SIGTERM triggers a graceful
// shutdown: the listener closes immediately, in-flight requests get
// the drain timeout to finish, and a client that disconnects mid-sweep
// cancels its workers via the request context.
//
// Every request gets a correlation ID (honored from X-Request-ID when
// well-formed, generated otherwise), echoed in the response and in the
// key=value access-log line on stderr; -log-level selects verbosity
// (debug, info, warn, error). -pprof exposes net/http/pprof under
// /debug/pprof/ — off by default since the profiles reveal internals.
//
// -xval enables the continuous cross-validation loop: every interval
// one (workload, line size) pair from the rotation is re-validated —
// analytic model vs exact MRC vs a set-associative replay — and the
// resulting error gauges are published on /metrics (expvar "xval",
// Prometheus tradeoffd_xval_* with ?format=prom). Off by default
// (interval 0) since it burns a few milliseconds of CPU per pass.
//
// Examples:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/tradeoff -d '{"feature":"bus","hit_ratio":0.95}'
//	go run ./cmd/sweep -example | curl -s -X POST localhost:8080/v1/sweep?format=csv -d @-
//	curl -s -X POST 'localhost:8080/v1/stall?format=csv' -d '{"programs":["nasa7"],"beta_m":[4,10]}'
//	curl -s -X POST localhost:8080/v1/optimize -d '{"cache_kb":[4,8],"line_bytes":[32],
//	  "bus_bits":[32,64],"latency_ns":360,"transfer_ns":60,"cpu_ns":30,
//	  "levels":[{"cache_kb":[64],"latency_ns":90}],"area_budget":2e7}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tradeoff/internal/obs"
	"tradeoff/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = all CPUs)")
		entries = flag.Int("cache", 256, "response LRU capacity (entries)")
		cacheMB = flag.Int64("cache-mb", 32, "response LRU capacity (MiB of response bytes)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		level   = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		pprof   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		xval    = flag.Duration("xval", 0, "model cross-validation interval (0 = off)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *entries, *cacheMB<<20, *drain, *level, *pprof, *xval); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoffd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, entries int, cacheBytes int64, drain time.Duration, level string, pprof bool, xval time.Duration) error {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, lv)
	svc := service.New(service.Options{
		Workers: workers, CacheEntries: entries, CacheBytes: cacheBytes,
		Logger: logger, Pprof: pprof,
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The listener goroutine starts before the signal context exists:
	// its lifetime is managed by srv.Shutdown below, not by a ctx.
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if xval > 0 {
		logger.Info("cross-validation loop on", "interval", xval.String())
		go svc.RunXVal(ctx, xval)
	}

	select {
	case err := <-errc:
		return err // ListenAndServe failed before any signal
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", drain.String())
	// The signal context is already canceled here; strip its
	// cancellation but keep its values for the drain deadline.
	drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain timeout exceeded: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
