package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(names ...string) Document {
	d := Document{Schema: Schema}
	for i, n := range names {
		d.Benchmarks = append(d.Benchmarks, Result{Name: n, Iterations: 1, NsPerOp: float64(100 * (i + 1))})
	}
	return d
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	base, cur := doc("a", "b"), doc("a", "b")
	cur.Benchmarks[0].NsPerOp *= 1.2 // under 1.25x: fine
	var sb strings.Builder
	if err := diff(&sb, base, cur, 1.25); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "1.20x") {
		t.Fatalf("diff output lacks the ratio:\n%s", sb.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	base, cur := doc("a"), doc("a")
	cur.Benchmarks[0].NsPerOp *= 2
	var sb strings.Builder
	err := diff(&sb, base, cur, 1.25)
	if err == nil {
		t.Fatalf("2x regression passed:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "a") {
		t.Fatalf("error does not name the benchmark: %v", err)
	}
}

func TestDiffToleratesAsymmetricSuites(t *testing.T) {
	// New benchmarks without a baseline and removed ones report but
	// never fail, so suite growth doesn't invalidate old baselines.
	var sb strings.Builder
	if err := diff(&sb, doc("old"), doc("new"), 1.25); err != nil {
		t.Fatalf("asymmetric suites failed: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "no baseline") || !strings.Contains(out, "only in baseline") {
		t.Fatalf("asymmetry not reported:\n%s", out)
	}
}

func TestReadBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte(`{"schema":"tradeoff-bench/v1","benchmarks":[{"name":"x","iterations":3,"ns_per_op":42}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 1 || d.Benchmarks[0].NsPerOp != 42 {
		t.Fatalf("decoded %+v", d)
	}
	if err := os.WriteFile(path, []byte(`{"schema":"tradeoff-bench/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := readBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

// TestBaselineCommitted pins the repo-root baseline: it must parse,
// carry the current schema, and cover the registered suite so
// `benchjson -compare BENCH_sweep.json` diffs every benchmark.
func TestBaselineCommitted(t *testing.T) {
	d, err := readBaseline("../../BENCH_sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, r := range d.Benchmarks {
		have[r.Name] = true
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("baseline %s has empty measurement %+v", r.Name, r)
		}
	}
	for _, bm := range benchmarks {
		if !have[bm.name] {
			t.Errorf("committed baseline lacks %s; run `make bench-record`", bm.name)
		}
	}
}
