// Command benchjson measures the repo's headline benchmarks with
// testing.Benchmark and writes them as a stable JSON document, so a
// checked-in baseline (BENCH_sweep.json at the repo root) can ride
// along with the code and CI can diff against it without parsing
// `go test -bench` text output.
//
// Usage:
//
//	benchjson -o BENCH_sweep.json        # record a baseline
//	benchjson -compare BENCH_sweep.json  # re-measure and diff
//
// The schema is versioned ("tradeoff-bench/v1") and additive: one
// entry per benchmark with iterations, ns/op, bytes/op and allocs/op.
// -compare exits non-zero when any benchmark regresses by more than
// -threshold (default 1.25×) over the baseline's ns/op; CI runs the
// comparison non-blocking (continue-on-error), like bench-smoke, so a
// slow runner flags but cannot block a merge.
//
// `make bench-record` regenerates the baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"tradeoff/internal/mrc"
	"tradeoff/internal/obs"
	"tradeoff/internal/simjob"
	"tradeoff/internal/sweep"
	"tradeoff/internal/trace"
)

// Schema is the document's version tag; bump only on breaking shape
// changes, never for added benchmarks.
const Schema = "tradeoff-bench/v1"

// Document is the file benchjson writes and compares.
type Document struct {
	Schema     string   `json:"schema"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// sweep64 is the 64-point grid bench_test.go's sweep benchmarks use:
// 8 cache sizes × 4 line sizes × 2 bus widths, where re-simulation
// pays 64 trace passes and the MRC sources pay 4.
func sweep64(source string) sweep.Config {
	return sweep.Config{
		CacheKB:   []int{1, 2, 4, 8, 16, 32, 64, 128},
		LineBytes: []int{16, 32, 64, 128},
		BusBits:   []int{32, 64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		SimRefs: 20_000, HitSource: source,
	}
}

func benchSweep(source string) func(b *testing.B) {
	cfg := sweep64(source)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ds, err := sweep.Run(context.Background(), cfg, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(ds) != 64 {
				b.Fatalf("designs = %d, want 64", len(ds))
			}
		}
	}
}

// benchmarks is the recorded suite, in file order. Names are part of
// the baseline document, so renaming one orphans its baseline entry.
var benchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"sweep_sim_64pt", benchSweep("sim:ear")},
	{"sweep_mrc_64pt", benchSweep("mrc:ear")},
	{"sweep_mrc_sampled_64pt", benchSweep("mrc~:ear")},
	{"sweep_model_64pt", benchSweep("an:ear")},
	{"optimize_mrc_40pt", func(b *testing.B) {
		// The cost-constrained hierarchy search: 40 design points
		// across three depths (flat, two-level, three-level) on the
		// exact-MRC surface, budget-filtered and Pareto-marked.
		cfg := sweep.OptimizeConfig{
			Config: sweep.Config{
				CacheKB: []int{4, 8}, LineBytes: []int{16, 32}, BusBits: []int{32, 64},
				LatencyNS: 360, TransferNS: 60, CPUNS: 30,
				SimRefs: 20_000, HitSource: "mrc:ear",
				Levels: []sweep.LevelAxes{
					{CacheKB: []int{32, 64}, LatencyNS: 90},
					{CacheKB: []int{256}, LatencyNS: 180},
				},
			},
			AreaBudget: 2e7,
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sweep.Optimize(context.Background(), cfg, 0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Total != 40 {
				b.Fatalf("total = %d, want 40", res.Total)
			}
		}
	}},
	{"mrc_pass_20k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := mrc.ProfileSource(trace.MustWorkload("ear", 1), 20_000, 64)
			if err != nil {
				b.Fatal(err)
			}
			if c.Refs != 20_000 {
				b.Fatalf("refs = %d, want 20000", c.Refs)
			}
		}
	}},
	{"stall_grid", func(b *testing.B) {
		g := simjob.Grid{Refs: 20_000, Features: []string{"BL", "BNL3"}, BetaM: []int64{2, 8}}
		r := simjob.NewRunner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.RunGrid(context.Background(), g, 0); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"span_ring_record", func(b *testing.B) {
		// The flight recorder's per-span cost — the overhead every
		// completed span pays on the request path.
		r := obs.NewSpanRing(8192)
		rec := obs.SpanRecord{Name: "bench", Start: time.Now(), Dur: time.Millisecond, TID: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Record(rec)
		}
	}},
	{"snapshot_tick", func(b *testing.B) {
		// One metrics-history snapshot cycle at production scale: the
		// runtime collector plus ~20 histogram-derived series.
		h := obs.NewHistory(10*time.Second, time.Hour)
		obs.RegisterRuntimeSeries(h)
		for i := 0; i < 20; i++ {
			hist := obs.NewHistogram(fmt.Sprintf("bench_hist_%d", i))
			hist.Observe(time.Millisecond)
			h.RegisterHistogram(hist)
		}
		now := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now = now.Add(10 * time.Second)
			h.Tick(now)
		}
	}},
}

func main() {
	var (
		out       = flag.String("o", "", "write measurements to this JSON file")
		compare   = flag.String("compare", "", "re-measure and diff against this baseline JSON")
		threshold = flag.Float64("threshold", 1.25, "ns/op regression ratio that fails -compare")
	)
	flag.Parse()
	if (*out == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "usage: benchjson -o out.json | -compare baseline.json")
		os.Exit(2)
	}
	if err := run(*out, *compare, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, compare string, threshold float64) error {
	doc := measure()
	if out != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), out)
		return nil
	}
	base, err := readBaseline(compare)
	if err != nil {
		return err
	}
	return diff(os.Stdout, base, doc, threshold)
}

func measure() Document {
	doc := Document{Schema: Schema}
	for _, bm := range benchmarks {
		r := testing.Benchmark(bm.fn)
		doc.Benchmarks = append(doc.Benchmarks, Result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "benchjson: %-24s %d iterations, %.0f ns/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N))
	}
	return doc
}

func readBaseline(path string) (Document, error) {
	var doc Document
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != Schema {
		return doc, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, Schema)
	}
	return doc, nil
}

// diff prints a per-benchmark comparison and errors when any current
// measurement exceeds threshold × its baseline ns/op. Benchmarks
// present on only one side are reported but never fail the check, so
// adding a benchmark does not break an older baseline.
func diff(w io.Writer, base, cur Document, threshold float64) error {
	baseline := map[string]Result{}
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	var sb strings.Builder
	var regressed []string
	for _, r := range cur.Benchmarks {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-24s %.0f ns/op (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		mark := "ok"
		if ratio > threshold {
			mark = "REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(&sb, "%-24s %.0f ns/op vs %.0f baseline (%.2fx) %s\n",
			r.Name, r.NsPerOp, b.NsPerOp, ratio, mark)
		delete(baseline, r.Name)
	}
	removed := make([]string, 0, len(baseline))
	for name := range baseline {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(&sb, "%-24s only in baseline (benchmark removed?)\n", name)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.2fx: %v", len(regressed), threshold, regressed)
	}
	return nil
}
