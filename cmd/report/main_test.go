package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/experiments"
)

func TestRunWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "REPORT.md")
	if err := run(path, "limits", experiments.Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"# Reproduction report", "## E12", "### limits", "```text"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "r.md"), "bogus", experiments.Options{Fast: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunGroupsByID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "REPORT.md")
	if err := run(path, "figure6", experiments.Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// figure6 yields several artifacts under one E8 heading.
	if got := strings.Count(string(data), "\n## E8\n"); got != 1 {
		t.Fatalf("E8 heading appears %d times, want 1", got)
	}
	if got := strings.Count(string(data), "### figure6"); got < 4 {
		t.Fatalf("only %d figure6 artifacts in report", got)
	}
}
