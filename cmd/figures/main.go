// Command figures regenerates every table and figure of the paper's
// evaluation (or a named subset) as ASCII renderings and CSV data.
//
// Usage:
//
//	figures [-out dir] [-experiment name] [-fast] [-seed n] [-workers 0] [-print]
//	        [-trace out.json]
//
// Experiments are named after the paper artifact they reproduce
// (table2, table3, figure1 ... figure6, example1, ranking, crossover,
// limits); "all" runs everything. Outputs land in -out as
// <name>.txt and <name>.csv.
//
// -trace writes a Chrome trace_event JSON profile of the run (one
// "experiment" span per runner, laned by worker slot) — load it at
// chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tradeoff/internal/experiments"
	"tradeoff/internal/obs"
)

func main() {
	var (
		out     = flag.String("out", "out", "output directory for .txt and .csv artifacts")
		name    = flag.String("experiment", "all", "experiment to run (see DESIGN.md §3), or 'all'")
		fast    = flag.Bool("fast", false, "smaller traces and sparser sweeps")
		seed    = flag.Uint64("seed", 0, "trace seed (0 = package default)")
		workers = flag.Int("workers", 0, "trace-replay worker pool size per measurement (0 = all CPUs)")
		print   = flag.Bool("print", true, "print rendered artifacts to stdout")
		list    = flag.Bool("list", false, "list experiments and exit")
		svg     = flag.Bool("svg", true, "also write .svg renderings of charts")
		html    = flag.Bool("html", true, "also write an index.html artifact browser")
		tpath   = flag.String("trace", "", "write a Chrome trace_event JSON profile of the run")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Name)
		}
		return
	}
	opts := outputs{dir: *out, print: *print, svg: *svg, html: *html, trace: *tpath}
	if err := run(opts, *name, experiments.Options{Fast: *fast, Seed: *seed, Workers: *workers}); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// outputs selects what run writes.
type outputs struct {
	dir   string
	print bool
	svg   bool
	html  bool
	trace string // Chrome trace_event JSON profile path ("" = off)
}

func run(out outputs, name string, opts experiments.Options) error {
	ctx := context.Background()
	var tracer *obs.Tracer
	if out.trace != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	arts, err := experiments.RunContext(ctx, name, opts)
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.WriteFile(out.trace); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(out.dir, 0o755); err != nil {
		return err
	}
	for _, a := range arts {
		text := a.Render()
		if out.print {
			fmt.Printf("== %s (%s) ==\n%s\n", a.Name, a.ID, text)
		}
		if err := os.WriteFile(filepath.Join(out.dir, a.Name+".txt"), []byte(text), 0o644); err != nil {
			return err
		}
		if err := a.SaveCSV(filepath.Join(out.dir, a.Name+".csv")); err != nil {
			return err
		}
		if out.svg {
			if svg := a.SVG(); svg != "" {
				if err := os.WriteFile(filepath.Join(out.dir, a.Name+".svg"), []byte(svg), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if out.html {
		f, err := os.Create(filepath.Join(out.dir, "index.html"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteHTMLIndex(f, arts); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "figures: wrote %d artifacts to %s\n", len(arts), out.dir)
	return nil
}
