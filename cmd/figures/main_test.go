package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/experiments"
)

// TestRunWritesTrace checks -trace: one "experiment" span per runner.
func TestRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(outputs{dir: dir, trace: tracePath}, "limits", experiments.Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace not a JSON event array: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("trace spans = %d, want 1 (one experiment ran)", len(events))
	}
	if events[0].Name != "experiment" || events[0].Ph != "X" || events[0].Args["name"] != "limits" {
		t.Fatalf("unexpected event %+v", events[0])
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run(outputs{dir: dir, html: true}, "table2", experiments.Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "table2.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "full stalling") {
		t.Fatalf("table2.txt content wrong:\n%s", txt)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Fatal("table2.csv not written")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(outputs{dir: t.TempDir()}, "bogus", experiments.Options{Fast: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCreatesOutDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := run(outputs{dir: dir}, "limits", experiments.Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "limits.txt")); err != nil {
		t.Fatal("nested out dir not created")
	}
}

func TestRunWritesSVGAndHTML(t *testing.T) {
	dir := t.TempDir()
	if err := run(outputs{dir: dir, svg: true, html: true}, "figure2", experiments.Options{Fast: true}); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "figure2_hr98.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<polyline") {
		t.Fatal("svg has no polylines")
	}
	html, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<svg") || !strings.Contains(string(html), "E4") {
		t.Fatal("index.html missing inline svg or experiment heading")
	}
}
