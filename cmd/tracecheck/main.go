// Command tracecheck validates a Chrome trace_event JSON file — both
// kinds tradeoff tools emit:
//
//   - complete-event traces: arrays of "X" events with non-negative
//     timestamps and durations, as cmd/sweep, cmd/cachesim and
//     cmd/figures write with -trace, and
//   - flight dumps: arrays of balanced "B"/"E" begin/end pairs, as
//     tradeoffd's always-on recorder serves from GET /debug/flight.
//     Every lane (pid, tid) must be monotonic in ts, every B must have
//     a matching same-name E (properly nested), and a queue_wait_us
//     arg, when present, must be non-negative.
//
// It is the load-bearing half of `make trace-smoke` and
// `make flight-smoke` — CI checks that the exported profiles actually
// load.
//
// Usage:
//
//	tracecheck [-min 1] trace.json
//
// -min fails the check when the trace holds fewer spans, catching the
// silently-empty-profile regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	minSpans := flag.Int("min", 1, "minimum span count the trace must hold")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min N] trace.json")
		os.Exit(2)
	}
	n, err := check(flag.Arg(0), *minSpans)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok (%d spans)\n", flag.Arg(0), n)
}

// event carries the trace_event fields the viewers require.
type event struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	TS   *float64           `json:"ts"`
	Dur  *float64           `json:"dur"`
	PID  *int               `json:"pid"`
	TID  *int               `json:"tid"`
	Args map[string]float64 `json:"-"`

	// RawArgs defers arg decoding: args are free-form, and only the
	// numeric ones are checked.
	RawArgs map[string]json.RawMessage `json:"args"`
}

// check validates the file and returns the span count. The first
// event's phase decides the dialect: "X" complete-event traces and
// "B"/"E" flight dumps are both valid, mixing them is not.
func check(path string, minSpans int) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, fmt.Errorf("%s: not a trace_event JSON array: %w", path, err)
	}
	flight := len(events) > 0 && events[0].Ph != "X"
	var n int
	if flight {
		n, err = checkFlight(path, events)
	} else {
		n, err = checkComplete(path, events)
	}
	if err != nil {
		return 0, err
	}
	if n < minSpans {
		return 0, fmt.Errorf("%s: %d spans, want at least %d", path, n, minSpans)
	}
	return n, nil
}

// checkComplete validates an all-"X" trace and returns its span count.
func checkComplete(path string, events []event) (int, error) {
	for i, ev := range events {
		switch {
		case ev.Name == "":
			return 0, fmt.Errorf("%s: event %d has no name", path, i)
		case ev.Ph != "X":
			return 0, fmt.Errorf("%s: event %d (%s) has phase %q, want complete event \"X\"", path, i, ev.Name, ev.Ph)
		case ev.TS == nil || *ev.TS < 0:
			return 0, fmt.Errorf("%s: event %d (%s) has a missing or negative ts", path, i, ev.Name)
		case ev.Dur == nil || *ev.Dur < 0:
			return 0, fmt.Errorf("%s: event %d (%s) has a missing or negative dur", path, i, ev.Name)
		case ev.PID == nil || ev.TID == nil:
			return 0, fmt.Errorf("%s: event %d (%s) lacks pid/tid lanes", path, i, ev.Name)
		}
	}
	return len(events), nil
}

// lane identifies one trace row.
type lane struct{ pid, tid int }

// openSpan is one unmatched B event during flight validation.
type openSpan struct {
	name string
	idx  int
}

// checkFlight validates a B/E flight dump: per-lane monotonic
// timestamps, properly nested same-name B/E pairs with nothing left
// open, and non-negative queue_wait_us args. Returns the span (B
// event) count.
func checkFlight(path string, events []event) (int, error) {
	lastTS := map[lane]float64{}
	stacks := map[lane][]openSpan{}
	spans := 0
	for i, ev := range events {
		if ev.Name == "" {
			return 0, fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.TS == nil || *ev.TS < 0 {
			return 0, fmt.Errorf("%s: event %d (%s) has a missing or negative ts", path, i, ev.Name)
		}
		if ev.PID == nil || ev.TID == nil {
			return 0, fmt.Errorf("%s: event %d (%s) lacks pid/tid lanes", path, i, ev.Name)
		}
		ln := lane{*ev.PID, *ev.TID}
		if prev, seen := lastTS[ln]; seen && *ev.TS < prev {
			return 0, fmt.Errorf("%s: event %d (%s) goes back in time on lane %d/%d: ts %v after %v",
				path, i, ev.Name, ln.pid, ln.tid, *ev.TS, prev)
		}
		lastTS[ln] = *ev.TS
		if raw, ok := ev.RawArgs["queue_wait_us"]; ok {
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil || v < 0 {
				return 0, fmt.Errorf("%s: event %d (%s) has a non-numeric or negative queue_wait_us %s", path, i, ev.Name, raw)
			}
		}
		switch ev.Ph {
		case "B":
			stacks[ln] = append(stacks[ln], openSpan{name: ev.Name, idx: i})
			spans++
		case "E":
			st := stacks[ln]
			if len(st) == 0 {
				return 0, fmt.Errorf("%s: event %d (%s) ends a span that never began on lane %d/%d", path, i, ev.Name, ln.pid, ln.tid)
			}
			top := st[len(st)-1]
			if top.name != ev.Name {
				return 0, fmt.Errorf("%s: event %d ends %q but lane %d/%d's innermost open span is %q (event %d); B/E pairs must nest",
					path, i, ev.Name, ln.pid, ln.tid, top.name, top.idx)
			}
			stacks[ln] = st[:len(st)-1]
		default:
			return 0, fmt.Errorf("%s: event %d (%s) has phase %q, want \"B\" or \"E\" in a flight dump", path, i, ev.Name, ev.Ph)
		}
	}
	for ln, st := range stacks {
		if len(st) > 0 {
			top := st[len(st)-1]
			return 0, fmt.Errorf("%s: span %q (event %d) on lane %d/%d never ends; %d B events lack an E",
				path, top.name, top.idx, ln.pid, ln.tid, len(st))
		}
	}
	return spans, nil
}
