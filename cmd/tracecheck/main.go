// Command tracecheck validates a Chrome trace_event JSON file of the
// kind cmd/sweep, cmd/cachesim and cmd/figures write with -trace: a
// JSON array of complete ("X") events with non-negative timestamps and
// durations. It is the load-bearing half of `make trace-smoke` — a CI
// check that the exported profile actually loads.
//
// Usage:
//
//	tracecheck [-min 1] trace.json
//
// -min fails the check when the trace holds fewer spans, catching the
// silently-empty-profile regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	minSpans := flag.Int("min", 1, "minimum span count the trace must hold")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min N] trace.json")
		os.Exit(2)
	}
	n, err := check(flag.Arg(0), *minSpans)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok (%d spans)\n", flag.Arg(0), n)
}

// event carries the trace_event fields the viewers require.
type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	PID  *int     `json:"pid"`
	TID  *int     `json:"tid"`
}

// check validates the file and returns the span count.
func check(path string, minSpans int) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, fmt.Errorf("%s: not a trace_event JSON array: %w", path, err)
	}
	for i, ev := range events {
		switch {
		case ev.Name == "":
			return 0, fmt.Errorf("%s: event %d has no name", path, i)
		case ev.Ph != "X":
			return 0, fmt.Errorf("%s: event %d (%s) has phase %q, want complete event \"X\"", path, i, ev.Name, ev.Ph)
		case ev.TS == nil || *ev.TS < 0:
			return 0, fmt.Errorf("%s: event %d (%s) has a missing or negative ts", path, i, ev.Name)
		case ev.Dur == nil || *ev.Dur < 0:
			return 0, fmt.Errorf("%s: event %d (%s) has a missing or negative dur", path, i, ev.Name)
		case ev.PID == nil || ev.TID == nil:
			return 0, fmt.Errorf("%s: event %d (%s) lacks pid/tid lanes", path, i, ev.Name)
		}
	}
	if len(events) < minSpans {
		return 0, fmt.Errorf("%s: %d spans, want at least %d", path, len(events), minSpans)
	}
	return len(events), nil
}
