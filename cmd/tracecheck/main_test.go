package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAcceptsValidTrace(t *testing.T) {
	p := write(t, `[
{"name":"sweep_point","ph":"X","ts":0,"dur":12,"pid":1,"tid":0},
{"name":"sweep_point","ph":"X","ts":5.5,"dur":3,"pid":1,"tid":1}
]`)
	n, err := check(p, 2)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestCheckRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"not an array": `{"name":"x"}`,
		"no name":      `[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]`,
		"bad phase":    `[{"name":"a","ph":"B","ts":0,"dur":1,"pid":1,"tid":0}]`,
		"no ts":        `[{"name":"a","ph":"X","dur":1,"pid":1,"tid":0}]`,
		"negative dur": `[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]`,
		"no lanes":     `[{"name":"a","ph":"X","ts":0,"dur":1}]`,
	}
	for label, body := range cases {
		if _, err := check(write(t, body), 0); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	if _, err := check(write(t, `[]`), 1); err == nil {
		t.Error("empty trace passed -min 1")
	}
	if _, err := check(filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCheckAcceptsValidFlightDump(t *testing.T) {
	// Two lanes; lane 0 has a nested child and a queue_wait_us arg.
	p := write(t, `[
{"name":"request","ph":"B","ts":0,"pid":1,"tid":0,"args":{"lane":0}},
{"name":"eval","ph":"B","ts":2,"pid":1,"tid":0,"args":{"queue_wait_us":1.5}},
{"name":"request","ph":"B","ts":3,"pid":1,"tid":1},
{"name":"eval","ph":"E","ts":8,"pid":1,"tid":0},
{"name":"request","ph":"E","ts":9,"pid":1,"tid":0},
{"name":"request","ph":"E","ts":12,"pid":1,"tid":1}
]`)
	n, err := check(p, 3)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestCheckRejectsBadFlightDumps(t *testing.T) {
	cases := map[string]string{
		"unbalanced B": `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":0}]`,
		"E without B":  `[{"name":"a","ph":"E","ts":0,"pid":1,"tid":0}]`,
		"mismatched nesting": `[
{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
{"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
{"name":"a","ph":"E","ts":2,"pid":1,"tid":0},
{"name":"b","ph":"E","ts":3,"pid":1,"tid":0}
]`,
		"time goes backward in lane": `[
{"name":"a","ph":"B","ts":5,"pid":1,"tid":0},
{"name":"a","ph":"E","ts":3,"pid":1,"tid":0}
]`,
		"negative queue_wait_us": `[
{"name":"a","ph":"B","ts":0,"pid":1,"tid":0,"args":{"queue_wait_us":-2}},
{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}
]`,
		"mixed dialects": `[
{"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":0},
{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}
]`,
		"no lanes in flight": `[{"name":"a","ph":"B","ts":0}]`,
	}
	for label, body := range cases {
		if _, err := check(write(t, body), 0); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	// Monotonicity is per lane: interleaved lanes may cross in ts.
	p := write(t, `[
{"name":"a","ph":"B","ts":5,"pid":1,"tid":0},
{"name":"b","ph":"B","ts":2,"pid":1,"tid":1},
{"name":"a","ph":"E","ts":7,"pid":1,"tid":0},
{"name":"b","ph":"E","ts":9,"pid":1,"tid":1}
]`)
	if _, err := check(p, 2); err != nil {
		t.Fatalf("cross-lane ts ordering rejected: %v", err)
	}
}
