package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAcceptsValidTrace(t *testing.T) {
	p := write(t, `[
{"name":"sweep_point","ph":"X","ts":0,"dur":12,"pid":1,"tid":0},
{"name":"sweep_point","ph":"X","ts":5.5,"dur":3,"pid":1,"tid":1}
]`)
	n, err := check(p, 2)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestCheckRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"not an array": `{"name":"x"}`,
		"no name":      `[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]`,
		"bad phase":    `[{"name":"a","ph":"B","ts":0,"dur":1,"pid":1,"tid":0}]`,
		"no ts":        `[{"name":"a","ph":"X","dur":1,"pid":1,"tid":0}]`,
		"negative dur": `[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]`,
		"no lanes":     `[{"name":"a","ph":"X","ts":0,"dur":1}]`,
	}
	for label, body := range cases {
		if _, err := check(write(t, body), 0); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
	if _, err := check(write(t, `[]`), 1); err == nil {
		t.Error("empty trace passed -min 1")
	}
	if _, err := check(filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Error("missing file accepted")
	}
}
