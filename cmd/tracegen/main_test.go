package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := run("nasa7", 500, 1, path, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 500 {
		t.Fatalf("trace has %d lines, want 500", len(lines))
	}
	fields := strings.Fields(lines[0])
	if len(fields) != 4 {
		t.Fatalf("line format wrong: %q", lines[0])
	}
	if fields[3] != "R" && fields[3] != "W" {
		t.Fatalf("r/w marker wrong: %q", lines[0])
	}
}

func TestRunUnknownProgram(t *testing.T) {
	if err := run("nope", 10, 1, filepath.Join(t.TempDir(), "x"), false); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run("ear", 10, 1, filepath.Join(t.TempDir(), "no", "such", "dir", "x"), false); err == nil {
		t.Fatal("bad output path accepted")
	}
}
