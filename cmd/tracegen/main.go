// Command tracegen emits synthetic address traces in a simple text
// format (one reference per line: instruction index, hex address, size,
// R/W) and prints summary statistics, so the workload models can be
// inspected or fed to external tools.
//
// Usage:
//
//	tracegen [-program nasa7] [-refs 100000] [-seed 1] [-o file] [-stats]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"tradeoff/internal/trace"
)

func main() {
	var (
		program = flag.String("program", "nasa7", "workload model name")
		nrefs   = flag.Int("refs", 100_000, "references to emit")
		seed    = flag.Uint64("seed", 1, "trace seed")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
		stats   = flag.Bool("stats", false, "print summary statistics to stderr")
	)
	flag.Parse()
	if err := run(*program, *nrefs, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(program string, nrefs int, seed uint64, out string, stats bool) error {
	src, err := trace.NewProgram(program, seed)
	if err != nil {
		return err
	}
	refs := trace.Collect(src, nrefs)

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for _, r := range refs {
		rw := 'R'
		if r.Write {
			rw = 'W'
		}
		fmt.Fprintf(bw, "%d %#x %d %c\n", r.Instr, r.Addr, r.Size, rw)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if stats {
		s := trace.Summarize(refs)
		fmt.Fprintf(os.Stderr, "refs=%d instructions=%d refs/instr=%.3f writes=%.1f%% unique-32B-lines=%d same-line=%.1f%%\n",
			s.Refs, s.Instructions, s.RefPerInstr, 100*s.WriteFrac, s.UniqueLines, 100*s.SameLineFrac)
	}
	return nil
}
