// Command sweep explores a memory-system design space from a JSON
// configuration and emits one CSV row per design: hit ratio, mean
// memory delay per reference, chip area (rbe), package pins, and
// whether the design is Pareto-efficient in (delay, area, pins).
//
// Usage:
//
//	sweep -config space.json [-o designs.csv] [-workers N] [-trace out.json]
//	sweep -example          # print a commented example configuration
//
// Hit ratios come from the calibrated design-target surface ("model"),
// from cache simulation of a named workload ("sim:<name>", e.g.
// "sim:zipf" or "sim:nasa7"), or from a single-pass miss-ratio curve
// of that workload ("mrc:<name>" exact, "mrc~:<name>" SHARDS-sampled;
// see internal/mrc): one reuse-distance pass per line size answers
// every cache size in the grid, so big grids cost O(refs + points)
// instead of O(refs × points). "mrc_rate" and "mrc_budget" tune the
// sampled variant.
//
// The sweep itself lives in internal/sweep and runs on a worker pool
// (default runtime.NumCPU(); -workers 1 forces a serial sweep). Output
// ordering is deterministic regardless of parallelism. The same engine
// backs the tradeoffd HTTP service.
//
// -trace writes a Chrome trace_event JSON profile of the run (one
// "sweep_point" span per evaluated design, laned by worker slot, plus
// one "mrc_pass" span per trace pass under the mrc sources) — load it
// at chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"tradeoff/internal/obs"
	"tradeoff/internal/sweep"
)

func main() {
	var (
		configPath = flag.String("config", "", "JSON design-space configuration")
		out        = flag.String("o", "-", "output CSV ('-' = stdout)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = serial)")
		example    = flag.Bool("example", false, "print an example configuration and exit")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON profile of the run")
	)
	flag.Parse()
	if *example {
		fmt.Println(sweep.ExampleConfig)
		return
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "sweep: -config is required (see -example)")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *configPath, *out, *workers, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, configPath, outPath string, workers int, tracePath string) error {
	data, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	cfg, err := sweep.ParseConfig(data)
	if err != nil {
		return fmt.Errorf("%s: %w", configPath, err)
	}

	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	designs, err := sweep.Run(ctx, cfg, workers)
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.WriteFile(tracePath); err != nil {
			return err
		}
	}

	var w io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteCSV(w, designs)
}
