// Command sweep explores a memory-system design space from a JSON
// configuration and emits one CSV row per design: hit ratio, mean
// memory delay per reference, chip area (rbe), package pins, and
// whether the design is Pareto-efficient in (delay, area, pins).
//
// Usage:
//
//	sweep -config space.json [-o designs.csv]
//	sweep -example          # print a commented example configuration
//
// Hit ratios come either from the calibrated design-target surface
// ("model") or from cache simulation of a named workload ("sim:<name>",
// e.g. "sim:zipf" or "sim:nasa7").
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tradeoff/internal/area"
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/missratio"
	"tradeoff/internal/trace"
)

// SpaceConfig is the JSON schema of a design-space sweep.
type SpaceConfig struct {
	CacheKB    []int   `json:"cache_kb"`     // cache sizes in KiB
	LineBytes  []int   `json:"line_bytes"`   // line sizes
	BusBits    []int   `json:"bus_bits"`     // external data bus widths in bits
	Assoc      int     `json:"assoc"`        // associativity (default 2)
	LatencyNS  float64 `json:"latency_ns"`   // memory access latency
	TransferNS float64 `json:"transfer_ns"`  // one bus transfer, any width
	CPUNS      float64 `json:"cpu_ns"`       // processor cycle time
	AddrBits   int     `json:"addr_bits"`    // address bus width (default 32)
	CtrlPins   int     `json:"control_pins"` // control pin allowance (default 40)
	HitSource  string  `json:"hit_source"`   // "model" or "sim:<workload>"
	SimRefs    int     `json:"sim_refs"`     // references per simulated point (default 200000)
	Seed       uint64  `json:"seed"`
}

func (c *SpaceConfig) setDefaults() {
	if c.Assoc == 0 {
		c.Assoc = 2
	}
	if c.AddrBits == 0 {
		c.AddrBits = 32
	}
	if c.CtrlPins == 0 {
		c.CtrlPins = 40
	}
	if c.HitSource == "" {
		c.HitSource = "model"
	}
	if c.SimRefs == 0 {
		c.SimRefs = 200_000
	}
	if c.Seed == 0 {
		c.Seed = 1994
	}
}

func (c *SpaceConfig) validate() error {
	switch {
	case len(c.CacheKB) == 0 || len(c.LineBytes) == 0 || len(c.BusBits) == 0:
		return fmt.Errorf("sweep: cache_kb, line_bytes and bus_bits must be non-empty")
	case c.LatencyNS <= 0 || c.TransferNS <= 0 || c.CPUNS <= 0:
		return fmt.Errorf("sweep: latency_ns, transfer_ns and cpu_ns must be positive")
	}
	if c.HitSource != "model" && !strings.HasPrefix(c.HitSource, "sim:") {
		return fmt.Errorf("sweep: hit_source %q, want \"model\" or \"sim:<workload>\"", c.HitSource)
	}
	return nil
}

const exampleConfig = `{
  "cache_kb":    [4, 8, 16, 32, 64],
  "line_bytes":  [16, 32, 64],
  "bus_bits":    [32, 64],
  "assoc":       2,
  "latency_ns":  360,
  "transfer_ns": 60,
  "cpu_ns":      30,
  "hit_source":  "model"
}`

func main() {
	var (
		configPath = flag.String("config", "", "JSON design-space configuration")
		out        = flag.String("o", "-", "output CSV ('-' = stdout)")
		example    = flag.Bool("example", false, "print an example configuration and exit")
	)
	flag.Parse()
	if *example {
		fmt.Println(exampleConfig)
		return
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "sweep: -config is required (see -example)")
		os.Exit(2)
	}
	if err := run(*configPath, *out); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type design struct {
	cacheKB, line, busBits int
	hitRatio, delay        float64
	areaRBE                float64
	pins                   int
	pareto                 bool
}

func run(configPath, outPath string) error {
	data, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg SpaceConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", configPath, err)
	}
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}

	designs, err := sweep(cfg)
	if err != nil {
		return err
	}
	markPareto(designs)

	var w io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeCSV(w, designs)
}

// hitFunc returns the hit-ratio source selected by the config.
func hitFunc(cfg SpaceConfig) (func(sizeBytes, line int) (float64, error), error) {
	if cfg.HitSource == "model" {
		m := missratio.DefaultModel()
		return func(size, line int) (float64, error) {
			return 1 - m.MissRatio(size, line), nil
		}, nil
	}
	name := strings.TrimPrefix(cfg.HitSource, "sim:")
	return func(size, line int) (float64, error) {
		var src trace.Source
		if name == "zipf" {
			src = trace.ZipfReuse(trace.ZipfReuseConfig{
				Seed: cfg.Seed, Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3})
		} else {
			var err error
			src, err = trace.NewProgram(name, cfg.Seed)
			if err != nil {
				return 0, err
			}
		}
		c, err := cache.New(cache.Config{Size: size, LineSize: line, Assoc: cfg.Assoc})
		if err != nil {
			return 0, err
		}
		return cache.MeasureSource(c, src, cfg.SimRefs).HitRatio, nil
	}, nil
}

func sweep(cfg SpaceConfig) ([]*design, error) {
	hit, err := hitFunc(cfg)
	if err != nil {
		return nil, err
	}
	var out []*design
	for _, kb := range cfg.CacheKB {
		for _, line := range cfg.LineBytes {
			for _, busBits := range cfg.BusBits {
				d := busBits / 8
				if line < 2*d {
					continue
				}
				hr, err := hit(kb<<10, line)
				if err != nil {
					return nil, err
				}
				c := 1 + cfg.LatencyNS/cfg.CPUNS
				beta := cfg.TransferNS / cfg.CPUNS
				delay := core.MeanDelayPerRef(hr, c, beta, float64(line), float64(d))
				rbe, err := area.RBE(area.CacheGeometry{
					Size: kb << 10, LineSize: line, Assoc: cfg.Assoc, AddrBits: cfg.AddrBits})
				if err != nil {
					return nil, err
				}
				pins := area.Pins{DataBits: busBits, AddrBits: cfg.AddrBits, Control: cfg.CtrlPins}
				out = append(out, &design{
					cacheKB: kb, line: line, busBits: busBits,
					hitRatio: hr, delay: delay, areaRBE: rbe, pins: pins.Total(),
				})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty design space (every line < 2D?)")
	}
	return out, nil
}

// markPareto flags designs not dominated in (delay, area, pins).
func markPareto(ds []*design) {
	for _, a := range ds {
		a.pareto = true
		for _, b := range ds {
			if b == a {
				continue
			}
			if b.delay <= a.delay && b.areaRBE <= a.areaRBE && b.pins <= a.pins &&
				(b.delay < a.delay || b.areaRBE < a.areaRBE || b.pins < a.pins) {
				a.pareto = false
				break
			}
		}
	}
}

func writeCSV(w io.Writer, ds []*design) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cache_kb", "line_bytes", "bus_bits", "hit_ratio", "delay_per_ref", "area_rbe", "pins", "pareto"}); err != nil {
		return err
	}
	for _, d := range ds {
		rec := []string{
			strconv.Itoa(d.cacheKB), strconv.Itoa(d.line), strconv.Itoa(d.busBits),
			strconv.FormatFloat(d.hitRatio, 'f', 5, 64),
			strconv.FormatFloat(d.delay, 'f', 4, 64),
			strconv.FormatFloat(d.areaRBE, 'f', 0, 64),
			strconv.Itoa(d.pins),
			strconv.FormatBool(d.pareto),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
