package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/sweep"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "space.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModelSweep(t *testing.T) {
	cfg := writeConfig(t, sweep.ExampleConfig)
	out := filepath.Join(t.TempDir(), "designs.csv")
	if err := run(context.Background(), cfg, out, 0, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasPrefix(lines[0], "cache_kb,line_bytes,bus_bits") {
		t.Fatalf("header: %q", lines[0])
	}
	// 5 sizes × 3 lines × 2 buses; the 16B line with a 64-bit bus is
	// exactly L = 2D and stays in: 30 designs.
	if len(lines)-1 != 30 {
		t.Fatalf("designs = %d, want 30", len(lines)-1)
	}
	pareto := 0
	for _, l := range lines[1:] {
		if strings.HasSuffix(l, ",true") {
			pareto++
		}
	}
	if pareto == 0 || pareto == len(lines)-1 {
		t.Fatalf("pareto count %d of %d implausible", pareto, len(lines)-1)
	}
}

// TestRunWritesTrace pins the acceptance criterion: -trace on the
// default grid produces a well-formed trace_event JSON array with one
// span per evaluated design point.
func TestRunWritesTrace(t *testing.T) {
	cfg := writeConfig(t, sweep.ExampleConfig)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(context.Background(), cfg, filepath.Join(dir, "d.csv"), 0, tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	// The example grid evaluates 30 designs (see TestRunModelSweep).
	if len(events) != 30 {
		t.Fatalf("trace spans = %d, want 30 (one per evaluated point)", len(events))
	}
	for _, ev := range events {
		if ev.Name != "sweep_point" || ev.Ph != "X" {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
}

func TestRunSimSweep(t *testing.T) {
	cfg := writeConfig(t, `{
		"cache_kb": [8, 32], "line_bytes": [32], "bus_bits": [32],
		"latency_ns": 360, "transfer_ns": 60, "cpu_ns": 30,
		"hit_source": "sim:zipf", "sim_refs": 30000
	}`)
	out := filepath.Join(t.TempDir(), "d.csv")
	if err := run(context.Background(), cfg, out, 0, ""); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines)-1 != 2 {
		t.Fatalf("designs = %d, want 2", len(lines)-1)
	}
	// Bigger cache ⇒ higher hit ratio in column 4.
	f := func(line string) string { return strings.Split(line, ",")[3] }
	if f(lines[1]) >= f(lines[2]) {
		t.Fatalf("hit ratios not increasing with size: %v vs %v", f(lines[1]), f(lines[2]))
	}
}

// TestRunMRCSweepTrace drives the "mrc:" hit source through the CLI
// with -trace, asserting the export shows one mrc_pass per line size —
// the user-visible proof an MRC sweep replaced per-point re-simulation
// with single passes.
func TestRunMRCSweepTrace(t *testing.T) {
	cfg := writeConfig(t, `{
		"cache_kb": [1, 2, 4, 8, 16, 32, 64, 128], "line_bytes": [16, 32, 64, 128],
		"bus_bits": [32, 64],
		"latency_ns": 360, "transfer_ns": 60, "cpu_ns": 30,
		"hit_source": "mrc:ear", "sim_refs": 20000
	}`)
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv")
	tracePath := filepath.Join(dir, "trace.json")
	if err := run(context.Background(), cfg, out, 0, tracePath); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if n := len(strings.Split(strings.TrimSpace(string(data)), "\n")) - 1; n != 64 {
		t.Fatalf("designs = %d, want 64", n)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Name]++
	}
	if counts["sweep_point"] != 64 {
		t.Fatalf("sweep_point spans = %d, want 64", counts["sweep_point"])
	}
	if counts["mrc_pass"] != 4 {
		t.Fatalf("mrc_pass spans = %d for 64 points, want 4 (one per line size)", counts["mrc_pass"])
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	cases := []string{
		`{`, // malformed JSON
		`{"cache_kb": [], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 0, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1, "hit_source": "psychic"}`,
		`{"cache_kb": [8], "line_bytes": [16], "bus_bits": [256], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1}`, // empty after 2D filter
	}
	for i, body := range cases {
		cfg := writeConfig(t, body)
		if err := run(context.Background(), cfg, filepath.Join(t.TempDir(), "x.csv"), 0, ""); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := run(context.Background(), filepath.Join(t.TempDir(), "missing.json"), "-", 0, ""); err == nil {
		t.Error("missing config accepted")
	}
}

func TestRunSimUnknownWorkload(t *testing.T) {
	cfg := writeConfig(t, `{
		"cache_kb": [8], "line_bytes": [32], "bus_bits": [32],
		"latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1,
		"hit_source": "sim:gcc"
	}`)
	if err := run(context.Background(), cfg, filepath.Join(t.TempDir(), "x.csv"), 0, ""); err == nil {
		t.Fatal("unknown simulated workload accepted")
	}
}
