// Command tradeoff prices a single architectural feature in cache hit
// ratio at a chosen design point — the unified tradeoff methodology as
// a calculator.
//
// Usage:
//
//	tradeoff -feature bus|stall|wbuf|pipe [-hr 0.95] [-alpha 0.5]
//	         [-l 32] [-d 4] [-beta 10] [-phi 1] [-q 2]
//
// Examples:
//
//	tradeoff -feature bus -hr 0.98 -l 32 -beta 10
//	    hit ratio a doubled 64-bit bus is worth over 32-bit at 98%
//	tradeoff -feature pipe -q 2 -l 32 -beta 8
//	    hit ratio a pipelined memory system (q=2) is worth
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tradeoff/internal/core"
)

func main() {
	var (
		feature = flag.String("feature", "", "bus, stall, wbuf or pipe")
		hr      = flag.Float64("hr", 0.95, "base system hit ratio")
		alpha   = flag.Float64("alpha", 0.5, "cache line flush ratio")
		l       = flag.Float64("l", 32, "cache line size in bytes")
		d       = flag.Float64("d", 4, "external data-bus width in bytes")
		beta    = flag.Float64("beta", 10, "memory cycle time per D-byte transfer (clocks)")
		phi     = flag.Float64("phi", 1, "stalling factor for -feature stall (1..L/D)")
		q       = flag.Float64("q", 2, "pipeline readiness interval for -feature pipe")
	)
	flag.Parse()

	spec, err := parseFeature(*feature, *phi, *q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, spec, *hr, *alpha, *l, *d, *beta, *q); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
}

// run evaluates the tradeoff and writes the report to w. The report is
// assembled in memory so the only fallible write is the final one,
// whose error reaches the exit status.
func run(w io.Writer, spec core.FeatureSpec, hr, alpha, l, d, beta, q float64) error {
	tr, err := core.FeatureTradeoff(spec, hr, alpha, l, d, beta)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "feature:            %s\n", tr.Feature)
	fmt.Fprintf(&b, "design point:       L=%g D=%g beta_m=%g alpha=%g\n", l, d, beta, alpha)
	fmt.Fprintf(&b, "miss-count ratio r: %.4f\n", tr.R)
	fmt.Fprintf(&b, "base hit ratio:     %.4f (s = %.2f)\n", tr.BaseHR, tr.S)
	fmt.Fprintf(&b, "hit ratio traded:   %.4f (%.2f%%)\n", tr.DeltaHR, 100*tr.DeltaHR)
	fmt.Fprintf(&b, "equivalent hit:     %.4f\n", tr.NewHR)
	if !tr.Valid {
		fmt.Fprintln(&b, "warning: HR2 <= 0 — outside the model's physical range (Eq. 6)")
	}
	if spec.Feature == core.FeaturePipelinedMemory {
		if x, err := core.PipelineCrossover(q, l, d); err == nil {
			fmt.Fprintf(&b, "crossover vs bus:   beta_m >= %.2f\n", x)
		}
	}
	_, err = io.WriteString(w, b.String())
	return err
}

func parseFeature(name string, phi, q float64) (core.FeatureSpec, error) {
	switch name {
	case "bus":
		return core.FeatureSpec{Feature: core.FeatureDoubleBus}, nil
	case "stall":
		return core.FeatureSpec{Feature: core.FeaturePartialStall, Phi: phi}, nil
	case "wbuf":
		return core.FeatureSpec{Feature: core.FeatureWriteBuffers}, nil
	case "pipe":
		return core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: q}, nil
	case "":
		return core.FeatureSpec{}, fmt.Errorf("missing -feature")
	default:
		return core.FeatureSpec{}, fmt.Errorf("unknown feature %q (want bus, stall, wbuf or pipe)", name)
	}
}
