package main

import (
	"strings"
	"testing"

	"tradeoff/internal/core"
)

func TestParseFeature(t *testing.T) {
	cases := []struct {
		name string
		want core.Feature
	}{
		{"bus", core.FeatureDoubleBus},
		{"stall", core.FeaturePartialStall},
		{"wbuf", core.FeatureWriteBuffers},
		{"pipe", core.FeaturePipelinedMemory},
	}
	for _, tc := range cases {
		spec, err := parseFeature(tc.name, 2, 2)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if spec.Feature != tc.want {
			t.Fatalf("%s parsed to %v", tc.name, spec.Feature)
		}
	}
	if spec, _ := parseFeature("stall", 3.5, 2); spec.Phi != 3.5 {
		t.Fatalf("stall phi not threaded: %+v", spec)
	}
	if spec, _ := parseFeature("pipe", 0, 4); spec.Q != 4 {
		t.Fatalf("pipe q not threaded: %+v", spec)
	}
	if _, err := parseFeature("", 0, 0); err == nil {
		t.Fatal("empty feature accepted")
	}
	if _, err := parseFeature("warp", 0, 0); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestRunReport(t *testing.T) {
	var b strings.Builder
	spec := core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: 2}
	if err := run(&b, spec, 0.95, 0.5, 32, 4, 10, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pipelined memory", "miss-count ratio r: 3.4000", "crossover vs bus"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunInvalidWarning(t *testing.T) {
	var b strings.Builder
	// Base HR 0.5 with a huge r drives HR2 below zero: warning expected.
	spec := core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: 2}
	if err := run(&b, spec, 0.5, 1.0, 128, 4, 40, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "warning") {
		t.Fatalf("no validity warning:\n%s", b.String())
	}
}

func TestRunError(t *testing.T) {
	var b strings.Builder
	if err := run(&b, core.FeatureSpec{Feature: core.FeatureDoubleBus}, 0.95, 0.5, 4, 4, 10, 2); err == nil {
		t.Fatal("L < 2D accepted")
	}
}
