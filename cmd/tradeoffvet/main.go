// Tradeoffvet is the repo's static-analysis multichecker: five
// analyzers enforcing the paper's parameter domains, float-comparison
// discipline, context propagation, error handling and metric hygiene
// over every non-test package. It is self-contained — analyzers are
// built on the stdlib go/ast+go/types stack (internal/analysis/lint),
// with dependency types resolved from `go list -export` data, so no
// external modules are required.
//
// Usage:
//
//	tradeoffvet [-list] [packages]
//
// Packages default to ./... resolved from the current directory.
// Findings print as file:line:col: message (analyzer); the exit status
// is 1 when findings exist, 2 on a load or internal error. Suppress a
// finding with a `//lint:ignore <analyzer> <reason>` directive on or
// directly above its line.
package main

import (
	"flag"
	"fmt"
	"os"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/load"
	"tradeoff/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	flags := flag.NewFlagSet("tradeoffvet", flag.ExitOnError)
	list := flags.Bool("list", false, "list the analyzers and exit")
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tradeoffvet [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the tradeoff static-analysis suite (default packages: ./...).\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	exit := 0
	for _, pkg := range pkgs {
		findings, err := lint.Run(pkg, suite.Analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tradeoffvet: %s: %v\n", pkg.ImportPath, err)
			exit = 2
		}
		for _, f := range findings {
			fmt.Println(f)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}
