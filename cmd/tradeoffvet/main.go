// Tradeoffvet is the repo's static-analysis multichecker: nine
// analyzers enforcing the paper's parameter domains, float-comparison
// discipline, context propagation, error handling, metric hygiene,
// span lifecycle, locking discipline, deterministic output order and
// hot-path allocation budgets over every non-test package. It is
// self-contained — analyzers are built on the stdlib go/ast+go/types
// stack (internal/analysis/lint), the flow-sensitive ones on the CFG
// and solvers in internal/analysis/dataflow, with dependency types
// resolved from `go list -export` data, so no external modules are
// required.
//
// Usage:
//
//	tradeoffvet [-list] [-format text|json] [packages]
//
// Packages default to ./... resolved from the current directory.
// With -format text (the default) findings print as
// file:line:col: message (analyzer); with -format json each finding
// is one JSON object per line — {"analyzer","file","line","col",
// "message"} — for machine consumers such as CI annotators. The exit
// status is 1 when findings exist, 2 on a load or internal error.
// Suppress a finding with a `//lint:ignore <analyzer> <reason>`
// directive on or directly above its line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/load"
	"tradeoff/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -format json wire shape, one object per line.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("tradeoffvet", flag.ExitOnError)
	list := flags.Bool("list", false, "list the analyzers and exit")
	format := flags.String("format", "text", "output format: text or json")
	flags.Usage = func() {
		_, _ = fmt.Fprintf(stderr, "usage: tradeoffvet [-list] [-format text|json] [packages]\n\n")
		_, _ = fmt.Fprintf(stderr, "Runs the tradeoff static-analysis suite (default packages: ./...).\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		_, _ = fmt.Fprintf(stderr, "tradeoffvet: unknown format %q (want text or json)\n", *format)
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers {
			_, _ = fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		_, _ = fmt.Fprintln(stderr, err)
		return 2
	}

	enc := json.NewEncoder(stdout)
	exit := 0
	for _, pkg := range pkgs {
		findings, err := lint.Run(pkg, suite.Analyzers)
		if err != nil {
			_, _ = fmt.Fprintf(stderr, "tradeoffvet: %s: %v\n", pkg.ImportPath, err)
			exit = 2
		}
		for _, f := range findings {
			if *format == "json" {
				if err := enc.Encode(jsonFinding{
					Analyzer: f.Analyzer,
					File:     f.Pos.Filename,
					Line:     f.Pos.Line,
					Col:      f.Pos.Column,
					Message:  f.Message,
				}); err != nil {
					_, _ = fmt.Fprintf(stderr, "tradeoffvet: encoding finding: %v\n", err)
					return 2
				}
			} else {
				_, _ = fmt.Fprintln(stdout, f)
			}
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}
