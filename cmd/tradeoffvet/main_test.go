package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tradeoff/internal/analysis/suite"
)

func TestListShowsAllAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(suite.Analyzers) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(suite.Analyzers), out.String())
	}
	for i, a := range suite.Analyzers {
		if !strings.HasPrefix(lines[i], a.Name) {
			t.Errorf("-list line %d = %q, want analyzer %q", i, lines[i], a.Name)
		}
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "yaml"}, &out, &errb); code != 2 {
		t.Fatalf("run(-format yaml) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr = %q, want an unknown-format error", errb.String())
	}
}

// TestJSONFindings runs the real suite over a scratch module with one
// known defect and checks the -format json wire shape.
func TestJSONFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module scratch\n\ngo 1.22\n")
	writeFile(t, dir, "a.go", `package scratch

// Matches reports whether two model quantities agree.
func Matches(a, b float64) bool { return a == b }
`)
	chdir(t, dir)

	var out, errb bytes.Buffer
	code := run([]string{"-format", "json", "."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run = %d, want 1 (findings); stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	n := 0
	for dec.More() {
		var f jsonFinding
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("line %d: not one JSON object per line: %v\n%s", n, err, out.String())
		}
		n++
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Col == 0 || f.Message == "" {
			t.Errorf("finding %d has empty fields: %+v", n, f)
		}
		if f.Analyzer == "floatcmp" && !strings.HasSuffix(f.File, "a.go") {
			t.Errorf("floatcmp finding in %s, want a.go", f.File)
		}
	}
	if n == 0 {
		t.Fatalf("no findings decoded; stdout: %s", out.String())
	}
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}
