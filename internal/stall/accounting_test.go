package stall

import (
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
)

// TestBusWaitNotDoubleCounted is the regression test for the bus-busy
// accounting bug: the onFill bus-busy branch advances the replay clock,
// so its charge must land in the clock-advancing BusWait counter.
// Charging it to FlushStall — which result() re-adds to the clock as a
// purely additive term — counted the same cycles twice in Cycles.
//
// The branch is driven directly (white box) because it needs a fill
// scheduled on a still-busy bus.
func TestBusWaitNotDoubleCounted(t *testing.T) {
	mem := memory.MustNew(memory.Config{BetaM: 10, BusWidth: 4})
	e := engine{
		cfg: Config{
			Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
			Memory:  memory.Config{BetaM: 10, BusWidth: 4},
			Feature: BNL1,
		},
		cache: cache.MustNew(cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2}),
		mem:   mem,
		L:     32,
		D:     4,
	}
	// One instruction executed, bus reserved for 40 more cycles by
	// earlier traffic: the blocking fill waits 40 cycles for the bus,
	// then βm = 10 for its critical word.
	e.cur, e.res.E, e.started, e.busBusyUntil = 1, 1, true, 41
	out := e.cache.Access(0x1000, false)
	e.onFill(trace.Ref{Instr: 0, Addr: 0x1000, Size: 4}, out)
	res := e.result()

	if res.BusWait != 40 {
		t.Fatalf("bus wait %d, want 40", res.BusWait)
	}
	if res.FlushStall != 0 {
		t.Fatalf("bus-busy wait leaked into FlushStall: %d", res.FlushStall)
	}
	// Exactness: 1 base cycle + 40 bus wait + 10 critical-word stall.
	if want := int64(1 + 40 + 10); res.Cycles != want {
		t.Fatalf("cycles %d, want %d (bus wait double-counted?)", res.Cycles, want)
	}
	if sum := res.BaseCycles + res.FillStall + res.BusWait + res.FlushStall + res.WriteStall + res.BufferFull + res.Conflict; res.Cycles != sum {
		t.Fatalf("cycles %d != decomposition %d", res.Cycles, sum)
	}
}

// TestEmptyTraceZeroResult is the regression test for the phantom
// instruction: a zero-reference replay used to report E = 1 and
// BaseCycles = 1.
func TestEmptyTraceZeroResult(t *testing.T) {
	for _, refs := range [][]trace.Ref{nil, {}} {
		res, err := Run(fig1Config(FS, 10), refs)
		if err != nil {
			t.Fatal(err)
		}
		if res != (Result{}) {
			t.Fatalf("empty trace produced non-zero result: %+v", res)
		}
	}
}

// TestHighAddressOffsets is the regression test for the sign-truncated
// line offset: int(r.Addr) % L is negative for addresses with the top
// int bit set, which fed ChunkReady a negative chunk and produced
// arrival times before the fill started. Offsets within a line depend
// only on the low address bits, so a trace shifted to the top of the
// address space must measure exactly like its low-address twin.
func TestHighAddressOffsets(t *testing.T) {
	const hi = uint64(1) << 63
	lo := refs(
		[3]uint64{0, 0x1000, 0},      // miss, critical chunk 0
		[3]uint64{2, 0x1000 + 28, 0}, // same line, last chunk: not yet arrived
		[3]uint64{40, 0x2000 + 12, 1},
		[3]uint64{44, 0x2000 + 16, 0},
	)
	shifted := make([]trace.Ref, len(lo))
	for i, r := range lo {
		r.Addr += hi
		shifted[i] = r
	}
	for _, order := range []memory.FillOrder{memory.RequestedFirst, memory.Sequential} {
		for _, f := range Features() {
			cfg := fig1Config(f, 10)
			cfg.Memory.Order = order
			a, err := Run(cfg, lo)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg, shifted)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%v/%v: high-address result differs from low-address twin:\nlow  %+v\nhigh %+v", f, order, a, b)
			}
			if b.FillStall < 0 || b.Cycles < b.BaseCycles {
				t.Fatalf("%v/%v: negative accounting at high addresses: %+v", f, order, b)
			}
		}
	}
}
