package stall

import (
	"math"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
)

func TestNBMultipleMSHRsReduceStall(t *testing.T) {
	// Two back-to-back misses to different lines: with one MSHR the
	// second miss waits for the first fill; with two MSHRs it only
	// waits for the bus.
	tr := refs(
		[3]uint64{0, 0x1000, 0},
		[3]uint64{2, 0x4000, 0},
	)
	one := fig1Config(NB, 10)
	one.MSHRs = 1
	two := fig1Config(NB, 10)
	two.MSHRs = 2
	r1, err := Run(one, tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(two, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FillStall >= r1.FillStall {
		t.Fatalf("2 MSHRs stall %d not below 1 MSHR stall %d", r2.FillStall, r1.FillStall)
	}
	if r2.FillStall != 0 {
		t.Fatalf("2 MSHRs: misses still stalled %d cycles", r2.FillStall)
	}
}

func TestNBMSHRTouchWaitsForBusSerializedFill(t *testing.T) {
	// With 2 MSHRs the second miss proceeds, but its line still fills
	// AFTER the first on the shared non-pipelined bus; touching it
	// shortly after must stall until the serialized arrival.
	tr := refs(
		[3]uint64{0, 0x1000, 0},     // miss A: fill [1, 81]
		[3]uint64{2, 0x4000, 0},     // miss B: fill [81, 161] (bus busy)
		[3]uint64{4, 0x4000 + 4, 0}, // touch B early
	)
	cfg := fig1Config(NB, 10)
	cfg.MSHRs = 2
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// B's fill starts when the bus frees at 81; its second chunk (the
	// touched word is chunk 1) arrives at 81+2*10 = 101. The touch
	// issues at cycle 5, so the stall is 96.
	if res.FillStall != 96 {
		t.Fatalf("touch stall = %d, want 96", res.FillStall)
	}
}

func TestMSHRsIgnoredForBlockingFeatures(t *testing.T) {
	// MSHRs must not change BL/BNL behaviour.
	tr := trace.Collect(trace.MustProgram(trace.Swm256, 3), 30000)
	for _, f := range []Feature{BL, BNL1, BNL3} {
		a := fig1Config(f, 10)
		b := fig1Config(f, 10)
		b.MSHRs = 8
		ra, err := Run(a, tr)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Run(b, tr)
		if err != nil {
			t.Fatal(err)
		}
		if ra.FillStall != rb.FillStall || ra.Cycles != rb.Cycles {
			t.Fatalf("%v: MSHRs changed blocking behaviour", f)
		}
	}
}

func TestPipelinedMemoryMatchesEq9(t *testing.T) {
	// Validation of Eq. (9) against the engine: a full-stalling cache
	// on a pipelined memory must stall exactly βp = βm + q(L/D−1) per
	// miss, so the measured per-miss fill stall equals βp.
	const (
		betaM = 10
		q     = 2
	)
	cfg := Config{
		Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
		Memory:  memory.Config{BetaM: betaM, BusWidth: 4, Pipelined: true, Q: q},
		Feature: FS,
	}
	tr := trace.Collect(trace.MustProgram(trace.Nasa7, 5), 50000)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	perMiss := float64(res.FillStall) / float64(res.Misses)
	want := float64(betaM + q*(8-1))
	if math.Abs(perMiss-want) > 1e-9 {
		t.Fatalf("pipelined FS per-miss stall %.3f, want βp = %g", perMiss, want)
	}
	// And the speedup over non-pipelined FS matches (L/D)βm / βp.
	np := cfg
	np.Memory = memory.Config{BetaM: betaM, BusWidth: 4}
	resNP, err := Run(np, tr)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(resNP.FillStall) / float64(res.FillStall)
	if math.Abs(ratio-80.0/24) > 1e-9 {
		t.Fatalf("fill-stall ratio %.4f, want %g", ratio, 80.0/24)
	}
}

func TestSequentialFillOrderStallsMore(t *testing.T) {
	// Ablation: with sequential chunk delivery the requested word
	// arrives later on average, so BNL3's measured stall cannot be
	// smaller than under requested-word-first delivery.
	tr := trace.Collect(trace.MustProgram(trace.Swm256, 9), 50000)
	rf := fig1Config(BNL3, 10)
	sq := fig1Config(BNL3, 10)
	sq.Memory.Order = memory.Sequential
	a, err := Run(rf, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sq, tr)
	if err != nil {
		t.Fatal(err)
	}
	if b.FillStall < a.FillStall {
		t.Fatalf("sequential fill stalled %d < requested-first %d", b.FillStall, a.FillStall)
	}
}
