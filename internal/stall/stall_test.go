package stall

import (
	"math"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
)

// fig1Config is the paper's Figure 1 design point: 8 KB two-way
// write-allocate cache, 32-byte lines, 4-byte bus.
func fig1Config(feature Feature, betaM int64) Config {
	return Config{
		Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteMiss: cache.WriteAllocate, Replacement: cache.LRU},
		Memory:  memory.Config{BetaM: betaM, BusWidth: 4},
		Feature: feature,
	}
}

// refs builds a hand-written trace: tuples of (instr, addr, write).
func refs(t ...[3]uint64) []trace.Ref {
	out := make([]trace.Ref, len(t))
	for i, x := range t {
		out[i] = trace.Ref{Instr: x[0], Addr: x[1], Size: 4, Write: x[2] == 1}
	}
	return out
}

func TestFSPhiIsExactlyLOverD(t *testing.T) {
	// Property of Eq. (2): a full-stalling cache has φ = L/D exactly,
	// for any trace and any βm.
	for _, betaM := range []int64{2, 5, 20} {
		tr := trace.Collect(trace.MustProgram(trace.Swm256, 1), 50000)
		res, err := Run(fig1Config(FS, betaM), tr)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Phi, 32.0/4.0; math.Abs(got-want) > 1e-9 {
			t.Fatalf("βm=%d: FS φ = %v, want exactly %v", betaM, got, want)
		}
		if math.Abs(res.PhiFraction-1) > 1e-9 {
			t.Fatalf("FS φ fraction = %v, want 1", res.PhiFraction)
		}
	}
}

func TestSingleMissCriticalWordStall(t *testing.T) {
	// One miss, no second access: BL/BNL/NB resume on the critical
	// word, so the fill stall is exactly βm (φ contribution 1).
	for _, f := range []Feature{BL, BNL1, BNL2, BNL3} {
		res, err := Run(fig1Config(f, 10), refs([3]uint64{0, 0x1000, 0}))
		if err != nil {
			t.Fatal(err)
		}
		if res.FillStall != 10 {
			t.Fatalf("%v: fill stall %d, want 10 (one βm)", f, res.FillStall)
		}
		if res.Phi != 1 {
			t.Fatalf("%v: φ = %v, want 1", f, res.Phi)
		}
	}
}

func TestNBMissDoesNotStall(t *testing.T) {
	res, err := Run(fig1Config(NB, 10), refs([3]uint64{0, 0x1000, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if res.FillStall != 0 {
		t.Fatalf("NB single miss stalled %d cycles, want 0", res.FillStall)
	}
	if res.Phi != 0 {
		t.Fatalf("NB φ = %v, want 0 (Table 2 minimum)", res.Phi)
	}
}

func TestBLStallsAnyAccessDuringFill(t *testing.T) {
	// Miss at instr 0 on line A; hit to an unrelated (pre-filled) line
	// B two instructions later must wait for the whole fill under BL.
	//
	// Timeline (βm=10, L/D=8): miss issues at cycle 1 (after 1 instr),
	// fill completes 80 cycles later. CPU resumes at critical +10.
	// Second access at +2 instructions stalls until fill completion.
	tr := refs(
		[3]uint64{0, 0x2000, 0},   // prefill line B (fill long done by instr 100)
		[3]uint64{100, 0x1000, 0}, // miss on line A
		[3]uint64{102, 0x2000, 0}, // hit on B during A's fill: BL stalls
	)
	bl, err := Run(fig1Config(BL, 10), tr)
	if err != nil {
		t.Fatal(err)
	}
	bnl1, err := Run(fig1Config(BNL1, 10), tr)
	if err != nil {
		t.Fatal(err)
	}
	if bl.FillStall <= bnl1.FillStall {
		t.Fatalf("BL stall %d not above BNL1 stall %d for other-line hit", bl.FillStall, bnl1.FillStall)
	}
	// BNL1 must not add stall beyond the two critical-word waits.
	if bnl1.FillStall != 2*10 {
		t.Fatalf("BNL1 stall %d, want 20 (two critical words)", bnl1.FillStall)
	}
	// BL second-access stall: fill complete - (resume+2 instr).
	// fill starts when miss issues; complete = start + 80; CPU resumed
	// at start+10, ran 2 instructions, so waits 80-10-2 = 68 extra.
	if want := int64(10 + 68 + 10); bl.FillStall != want {
		t.Fatalf("BL stall %d, want %d", bl.FillStall, want)
	}
}

func TestBNL1SameLineSecondAccessEq8(t *testing.T) {
	// Eq. (8): a second access to the missing line ΔC instructions
	// after resumption stalls max{(L/D−1)βm − ΔC, 0}.
	const betaM = 10
	const dc = 13
	tr := refs(
		[3]uint64{0, 0x1000, 0},      // miss; resume after βm
		[3]uint64{dc, 0x1000 + 4, 0}, // same line, ΔC instructions later
	)
	res, err := Run(fig1Config(BNL1, betaM), tr)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(betaM) + (8-1)*betaM - dc // critical + Eq.(8) term
	if res.FillStall != want {
		t.Fatalf("BNL1 fill stall %d, want %d", res.FillStall, want)
	}
	// Far-away second access: no extra stall.
	tr2 := refs(
		[3]uint64{0, 0x1000, 0},
		[3]uint64{200, 0x1000 + 4, 0},
	)
	res2, err := Run(fig1Config(BNL1, betaM), tr2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FillStall != betaM {
		t.Fatalf("distant second access stalled: %d, want %d", res2.FillStall, betaM)
	}
}

func TestBNL2ArrivedPartProceeds(t *testing.T) {
	// Critical word is chunk 0. A quick second access to chunk 0 (already
	// arrived) proceeds under BNL2 but a not-yet-arrived chunk stalls to
	// fill completion.
	const betaM = 10
	arrived := refs(
		[3]uint64{0, 0x1000, 0},     // miss, critical chunk 0
		[3]uint64{2, 0x1000 + 2, 0}, // same chunk: arrived already
	)
	res, err := Run(fig1Config(BNL2, betaM), arrived)
	if err != nil {
		t.Fatal(err)
	}
	if res.FillStall != betaM {
		t.Fatalf("BNL2 stall on arrived chunk: %d, want %d", res.FillStall, betaM)
	}
	notArrived := refs(
		[3]uint64{0, 0x1000, 0},
		[3]uint64{2, 0x1000 + 28, 0}, // last chunk: not arrived
	)
	res2, err := Run(fig1Config(BNL2, betaM), notArrived)
	if err != nil {
		t.Fatal(err)
	}
	// BNL2 stalls until the ENTIRE line is fetched.
	// Resume at 10; 2 instructions; wait (8*10 - 10 - 2) = 68 more.
	if want := int64(betaM + 68); res2.FillStall != want {
		t.Fatalf("BNL2 stall on pending chunk: %d, want %d", res2.FillStall, want)
	}
}

func TestBNL3WaitsOnlyForItsWord(t *testing.T) {
	const betaM = 10
	tr := refs(
		[3]uint64{0, 0x1000, 0},
		[3]uint64{2, 0x1000 + 4, 0}, // chunk 1: second to arrive
	)
	res, err := Run(fig1Config(BNL3, betaM), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 1 arrives at fillStart+2βm; CPU arrives at fillStart+βm+2.
	// Extra wait = 2βm − βm − 2 = 8.
	if want := int64(betaM + 8); res.FillStall != want {
		t.Fatalf("BNL3 stall %d, want %d", res.FillStall, want)
	}
}

func TestSecondMissWaitsForOutstandingFill(t *testing.T) {
	// Two back-to-back misses: the second waits for the first fill to
	// complete under all partially-stalling features (§4.2).
	const betaM = 10
	tr := refs(
		[3]uint64{0, 0x1000, 0},
		[3]uint64{2, 0x4000, 0},
	)
	for _, f := range []Feature{BL, BNL1, BNL2, BNL3, NB} {
		res, err := Run(fig1Config(f, betaM), tr)
		if err != nil {
			t.Fatal(err)
		}
		// First: critical wait βm (except NB: 0). Second: waits until
		// first completes (80−10−2 = 68 after resume; NB: 80-0-2... the
		// NB CPU continued at fill start, so waits 78), plus its own
		// critical wait βm (except NB).
		var want int64
		switch f {
		case NB:
			want = 78
		default:
			want = betaM + 68 + betaM
		}
		if res.FillStall != want {
			t.Fatalf("%v: stall %d, want %d", f, res.FillStall, want)
		}
	}
}

func TestFlushStallWithoutBuffer(t *testing.T) {
	// Direct-mapped 64-byte cache (2 lines): dirty a line, then force
	// its eviction. Without write buffers the CPU pays (L/D)βm for the
	// flush (the α(R/D)βm term of Eq. (2)).
	cfg := Config{
		Cache:   cache.Config{Size: 64, LineSize: 32, Assoc: 1},
		Memory:  memory.Config{BetaM: 10, BusWidth: 4},
		Feature: FS,
	}
	tr := refs(
		[3]uint64{0, 0, 1},  // write-allocate fill, line now dirty
		[3]uint64{5, 64, 0}, // conflicting read: fill + flush
	)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(8 * 10); res.FlushStall != want {
		t.Fatalf("flush stall %d, want %d", res.FlushStall, want)
	}
	if res.HiddenFlush != 0 {
		t.Fatalf("hidden flush %d without a buffer", res.HiddenFlush)
	}
}

func TestWriteBufferHidesFlush(t *testing.T) {
	cfg := Config{
		Cache:            cache.Config{Size: 64, LineSize: 32, Assoc: 1},
		Memory:           memory.Config{BetaM: 10, BusWidth: 4},
		Feature:          FS,
		WriteBufferDepth: 4,
	}
	tr := refs(
		[3]uint64{0, 0, 1},
		[3]uint64{5, 64, 0},
	)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlushStall != 0 {
		t.Fatalf("flush stall %d with buffer, want 0", res.FlushStall)
	}
	if want := int64(80); res.HiddenFlush != want {
		t.Fatalf("hidden flush %d, want %d", res.HiddenFlush, want)
	}
	// Total time must be lower than the unbuffered run.
	unbuf := cfg
	unbuf.WriteBufferDepth = 0
	res2, err := Run(unbuf, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= res2.Cycles {
		t.Fatalf("buffered run %d cycles not faster than unbuffered %d", res.Cycles, res2.Cycles)
	}
}

func TestWriteAroundStallNoBuffer(t *testing.T) {
	cfg := fig1Config(FS, 10)
	cfg.Cache.WriteMiss = cache.WriteAround
	tr := refs([3]uint64{0, 0x1000, 1}) // write miss: bypass, one βm
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteStall != 10 {
		t.Fatalf("write-around stall %d, want 10", res.WriteStall)
	}
	if res.Misses != 0 {
		t.Fatalf("write-around counted %d fills", res.Misses)
	}
}

func TestWriteAroundBufferedNoStall(t *testing.T) {
	cfg := fig1Config(FS, 10)
	cfg.Cache.WriteMiss = cache.WriteAround
	cfg.WriteBufferDepth = 2
	tr := refs([3]uint64{0, 0x1000, 1})
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteStall != 0 || res.HiddenFlush != 10 {
		t.Fatalf("buffered write-around: writeStall=%d hidden=%d", res.WriteStall, res.HiddenFlush)
	}
}

func TestBufferFullStalls(t *testing.T) {
	cfg := fig1Config(FS, 10)
	cfg.Cache.WriteMiss = cache.WriteAround
	cfg.WriteBufferDepth = 1
	// Two immediate write-around stores: the second finds the buffer
	// full and waits for the first to drain.
	tr := refs(
		[3]uint64{0, 0x1000, 1},
		[3]uint64{1, 0x2000, 1},
	)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferFull == 0 {
		t.Fatal("depth-1 buffer never reported full")
	}
}

func TestReadConflictWithBufferedWrite(t *testing.T) {
	cfg := fig1Config(FS, 10)
	cfg.Cache.WriteMiss = cache.WriteAround
	cfg.WriteBufferDepth = 4
	// Buffer a store to line X, then immediately read-miss line X:
	// the fill must wait for the buffered store to drain.
	tr := refs(
		[3]uint64{0, 0x1000, 1},
		[3]uint64{1, 0x1000, 0},
	)
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict == 0 {
		t.Fatal("read of a buffered line reported no conflict stall")
	}
}

func TestRejectsNonMonotonicTrace(t *testing.T) {
	tr := refs(
		[3]uint64{5, 0x1000, 0},
		[3]uint64{5, 0x2000, 0},
	)
	if _, err := Run(fig1Config(FS, 4), tr); err == nil {
		t.Fatal("duplicate instruction index accepted")
	}
}

func TestRejectsBadConfigs(t *testing.T) {
	cfg := fig1Config(FS, 4)
	cfg.Cache.Size = 3
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("bad cache config accepted")
	}
	cfg = fig1Config(FS, 4)
	cfg.Memory.BusWidth = 5
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("bad memory config accepted")
	}
}

func TestPhiOrderingAcrossFeatures(t *testing.T) {
	// On a real workload the features must order by stall severity:
	// NB ≤ BNL3 ≤ BNL2 ≤ BNL1 ≤ BL ≤ FS = L/D, with all partially
	// stalling φ ≥ 1 (Table 2 bounds).
	tr := trace.Collect(trace.MustProgram(trace.Swm256, 3), 100000)
	phi := map[Feature]float64{}
	for _, f := range Features() {
		res, err := Run(fig1Config(f, 10), tr)
		if err != nil {
			t.Fatal(err)
		}
		phi[f] = res.Phi
	}
	order := Features() // FS, BL, BNL1, BNL2, BNL3, NB
	for i := 1; i < len(order); i++ {
		hi, lo := order[i-1], order[i]
		if phi[lo] > phi[hi]+1e-9 {
			t.Fatalf("φ(%v)=%.3f exceeds φ(%v)=%.3f", lo, phi[lo], hi, phi[hi])
		}
	}
	for _, f := range PartialFeatures() {
		if phi[f] < 1 {
			t.Fatalf("φ(%v)=%.3f below Table 2 minimum of 1", f, phi[f])
		}
		if phi[f] > 8+1e-9 {
			t.Fatalf("φ(%v)=%.3f above Table 2 maximum L/D=8", f, phi[f])
		}
	}
	if phi[NB] < 0 {
		t.Fatalf("φ(NB)=%.3f negative", phi[NB])
	}
}

func TestPhiGrowsWithMemoryCycle(t *testing.T) {
	// Figure 1: "a longer memory latency has more stalling occurrences"
	// — the φ fraction for BNL1 must not shrink as βm grows.
	tr := trace.Collect(trace.MustProgram(trace.Nasa7, 2), 100000)
	var prev float64 = -1
	for _, betaM := range []int64{2, 10, 30} {
		res, err := Run(fig1Config(BNL1, betaM), tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.PhiFraction < prev-0.02 { // small tolerance for sampling noise
			t.Fatalf("βm=%d: BNL1 φ fraction %.3f fell below previous %.3f", betaM, res.PhiFraction, prev)
		}
		prev = res.PhiFraction
	}
}

func TestAverageOverPrograms(t *testing.T) {
	per, avg, err := AverageOverPrograms(fig1Config(BNL3, 10), trace.Programs(), 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 6 {
		t.Fatalf("%d programs measured, want 6", len(per))
	}
	var sum float64
	for _, r := range per {
		sum += r.Phi
	}
	if want := sum / 6; math.Abs(avg.Phi-want) > 1e-9 {
		t.Fatalf("avg φ %.4f, want %.4f", avg.Phi, want)
	}
}

func TestAverageOverProgramsErrors(t *testing.T) {
	if _, _, err := AverageOverPrograms(fig1Config(FS, 4), []string{"bogus"}, 10, 1); err == nil {
		t.Fatal("unknown program accepted")
	}
	if _, _, err := AverageOverPrograms(fig1Config(FS, 4), nil, 10, 1); err == nil {
		t.Fatal("empty program list accepted")
	}
}

func TestFeatureString(t *testing.T) {
	want := map[Feature]string{FS: "FS", BL: "BL", BNL1: "BNL1", BNL2: "BNL2", BNL3: "BNL3", NB: "NB"}
	for f, s := range want {
		if f.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(f), f.String(), s)
		}
	}
	if Feature(42).String() != "Feature(42)" {
		t.Fatal("unknown feature String wrong")
	}
}

func TestCyclesDecomposition(t *testing.T) {
	// Total cycles == base instruction cycles + all exposed stalls.
	tr := trace.Collect(trace.MustProgram(trace.Hydro2D, 4), 50000)
	for _, f := range Features() {
		res, err := Run(fig1Config(f, 10), tr)
		if err != nil {
			t.Fatal(err)
		}
		sum := res.BaseCycles + res.FillStall + res.BusWait + res.FlushStall + res.WriteStall + res.BufferFull + res.Conflict
		if res.Cycles != sum {
			t.Fatalf("%v: cycles %d != decomposition %d", f, res.Cycles, sum)
		}
	}
}

func TestRunWarmExcludesWarmup(t *testing.T) {
	cfg := fig1Config(BNL1, 10)
	c := cache.MustNew(cfg.Cache)
	warm := trace.Collect(trace.MustProgram(trace.Ear, 9), 50000)
	for _, r := range warm {
		c.Access(r.Addr, r.Write)
	}
	c.ResetStats()
	res, err := RunWarm(cfg, c, trace.Collect(trace.MustProgram(trace.Ear, 9), 50000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("warm run measured no misses at all")
	}
}

func TestRunWarmRejectsMismatchedLineSize(t *testing.T) {
	cfg := fig1Config(FS, 4)
	c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 2})
	if _, err := RunWarm(cfg, c, nil); err == nil {
		t.Fatal("mismatched line size accepted")
	}
}
