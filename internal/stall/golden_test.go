package stall

import (
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
)

// TestGoldenDecomposition pins φ and the full Result decomposition of
// every Table 2 feature on a fixed-seed nasa7 trace through the
// Figure 1 geometry (8KB 2-way write-allocate, L=32, D=4, βm=10; NB
// with 4 MSHRs). The values were produced by the engine after the
// cycle-accounting fixes (bus-wait double count, empty-trace phantom
// instruction, sign-truncated line offsets) and lock them in: any
// change to replay arithmetic must either reproduce these numbers or
// consciously re-pin them.
func TestGoldenDecomposition(t *testing.T) {
	want := map[Feature]Result{
		FS:   {Refs: 20000, Misses: 7458, E: 59091, Cycles: 925731, BaseCycles: 59091, FillStall: 596640, FlushStall: 270000, Phi: 8, PhiFraction: 1, Traffic: 346656},
		BL:   {Refs: 20000, Misses: 7458, E: 59091, Cycles: 903835, BaseCycles: 59091, FillStall: 574744, FlushStall: 270000, Phi: 7.706409224993296, PhiFraction: 0.963301153124162, Traffic: 346656},
		BNL1: {Refs: 20000, Misses: 7458, E: 59091, Cycles: 892830, BaseCycles: 59091, FillStall: 563739, FlushStall: 270000, Phi: 7.558849557522124, PhiFraction: 0.9448561946902655, Traffic: 346656},
		BNL2: {Refs: 20000, Misses: 7458, E: 59091, Cycles: 892632, BaseCycles: 59091, FillStall: 563541, FlushStall: 270000, Phi: 7.556194690265487, PhiFraction: 0.9445243362831859, Traffic: 346656},
		BNL3: {Refs: 20000, Misses: 7458, E: 59091, Cycles: 870337, BaseCycles: 59091, FillStall: 541246, FlushStall: 270000, Phi: 7.257253955484044, PhiFraction: 0.9071567444355055, Traffic: 346656},
		NB:   {Refs: 20000, Misses: 7458, E: 59091, Cycles: 869098, BaseCycles: 59091, FillStall: 540007, FlushStall: 270000, Phi: 7.240640922499329, PhiFraction: 0.9050801153124162, Traffic: 346656},
	}
	refs := trace.Collect(trace.MustProgram("nasa7", 1994), 20_000)
	for _, f := range Features() {
		cfg := Config{
			Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteMiss: cache.WriteAllocate, Replacement: cache.LRU},
			Memory:  memory.Config{BetaM: 10, BusWidth: 4},
			Feature: f,
		}
		if f == NB {
			cfg.MSHRs = 4
		}
		got, err := Run(cfg, refs)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if got != want[f] {
			t.Errorf("%v decomposition drifted:\ngot  %+v\nwant %+v", f, got, want[f])
		}
	}
}
