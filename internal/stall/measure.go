package stall

import (
	"fmt"

	"tradeoff/internal/trace"
)

// RunSource replays up to n references drawn from src. See Run.
func RunSource(cfg Config, src trace.Source, n int) (Result, error) {
	return Run(cfg, trace.Collect(src, n))
}

// AverageOverPrograms measures the stalling factor for each named
// program model (refsPer references each, seeded with seed) and returns
// the per-program results plus their unweighted average — the way the
// paper's Figure 1 averages six SPEC92 programs.
func AverageOverPrograms(cfg Config, names []string, refsPer int, seed uint64) (perProgram map[string]Result, avg Result, err error) {
	if unknown := trace.ValidNames(names); len(unknown) > 0 {
		return nil, Result{}, fmt.Errorf("stall: unknown programs %v", unknown)
	}
	if len(names) == 0 {
		return nil, Result{}, fmt.Errorf("stall: no programs given")
	}
	perProgram = make(map[string]Result, len(names))
	var sumPhi, sumFrac float64
	for _, name := range names {
		src, err := trace.NewProgram(name, seed)
		if err != nil {
			return nil, Result{}, err
		}
		res, err := RunSource(cfg, src, refsPer)
		if err != nil {
			return nil, Result{}, fmt.Errorf("stall: program %s: %w", name, err)
		}
		perProgram[name] = res
		sumPhi += res.Phi
		sumFrac += res.PhiFraction
		avg.Refs += res.Refs
		avg.Misses += res.Misses
		avg.E += res.E
		avg.Cycles += res.Cycles
		avg.BaseCycles += res.BaseCycles
		avg.FillStall += res.FillStall
		avg.FlushStall += res.FlushStall
		avg.WriteStall += res.WriteStall
		avg.HiddenFlush += res.HiddenFlush
		avg.BufferFull += res.BufferFull
		avg.Conflict += res.Conflict
	}
	avg.Phi = sumPhi / float64(len(names))
	avg.PhiFraction = sumFrac / float64(len(names))
	return perProgram, avg, nil
}
