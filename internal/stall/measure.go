package stall

import (
	"fmt"

	"tradeoff/internal/trace"
)

// RunSource replays up to n references drawn from src. See Run.
func RunSource(cfg Config, src trace.Source, n int) (Result, error) {
	return Run(cfg, trace.Collect(src, n))
}

// AverageResults aggregates per-program results — given in the same
// order as names — the way the paper's Figure 1 averages six SPEC92
// programs: event counters sum, while Phi and PhiFraction average
// unweighted, accumulated in names order so callers that parallelize
// the measurements (internal/simjob consumers) reproduce the serial
// float arithmetic exactly.
func AverageResults(names []string, results []Result) (perProgram map[string]Result, avg Result) {
	perProgram = make(map[string]Result, len(names))
	var sumPhi, sumFrac float64
	for i, name := range names {
		res := results[i]
		perProgram[name] = res
		sumPhi += res.Phi
		sumFrac += res.PhiFraction
		avg.Refs += res.Refs
		avg.Misses += res.Misses
		avg.E += res.E
		avg.Cycles += res.Cycles
		avg.BaseCycles += res.BaseCycles
		avg.FillStall += res.FillStall
		avg.BusWait += res.BusWait
		avg.FlushStall += res.FlushStall
		avg.WriteStall += res.WriteStall
		avg.HiddenFlush += res.HiddenFlush
		avg.BufferFull += res.BufferFull
		avg.Conflict += res.Conflict
	}
	if len(names) > 0 {
		avg.Phi = sumPhi / float64(len(names))
		avg.PhiFraction = sumFrac / float64(len(names))
	}
	return perProgram, avg
}

// AverageOverPrograms measures the stalling factor for each named
// program model (refsPer references each, seeded with seed) and returns
// the per-program results plus their unweighted average — see
// AverageResults for the aggregation contract.
func AverageOverPrograms(cfg Config, names []string, refsPer int, seed uint64) (perProgram map[string]Result, avg Result, err error) {
	if unknown := trace.ValidNames(names); len(unknown) > 0 {
		return nil, Result{}, fmt.Errorf("stall: unknown programs %v", unknown)
	}
	if len(names) == 0 {
		return nil, Result{}, fmt.Errorf("stall: no programs given")
	}
	results := make([]Result, len(names))
	for i, name := range names {
		src, err := trace.NewProgram(name, seed)
		if err != nil {
			return nil, Result{}, err
		}
		res, err := RunSource(cfg, src, refsPer)
		if err != nil {
			return nil, Result{}, fmt.Errorf("stall: program %s: %w", name, err)
		}
		results[i] = res
	}
	perProgram, avg = AverageResults(names, results)
	return perProgram, avg, nil
}
