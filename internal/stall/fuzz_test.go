package stall

import (
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
)

// FuzzReplayAccounting drives the replay engine over fuzzer-chosen
// design points and traces, asserting the accounting invariants the
// bugfixes restored: Cycles ≥ BaseCycles, φ ∈ [0, L/D], every stall
// counter non-negative, and Cycles exactly equal to BaseCycles plus
// the six stall terms.
func FuzzReplayAccounting(f *testing.F) {
	f.Add(uint64(1994), uint8(0), int64(10), uint8(0), uint8(1), uint8(3), uint8(0), uint16(2000))
	f.Add(uint64(7), uint8(3), int64(2), uint8(2), uint8(2), uint8(1), uint8(4), uint16(500))
	f.Add(uint64(123457), uint8(5), int64(50), uint8(3), uint8(3), uint8(4), uint8(2), uint16(3000))
	f.Add(uint64(42), uint8(1), int64(1), uint8(1), uint8(0), uint8(0), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, featIdx uint8, betaM int64, busIdx, lineShift, sizeShift, wdepth uint8, nrefs uint16) {
		features := Features()
		feature := features[int(featIdx)%len(features)]
		buses := []int{4, 8, 16, 32}
		bus := buses[int(busIdx)%len(buses)]
		line := 1 << (4 + int(lineShift)%4)  // 16..128 bytes
		size := 1 << (10 + int(sizeShift)%5) // 1..16 KiB
		if line < bus {
			line = bus
		}
		betaM = 1 + (betaM%100+100)%100
		cfg := Config{
			Cache:            cache.Config{Size: size, LineSize: line, Assoc: 2, WriteMiss: cache.WriteAllocate, Replacement: cache.LRU},
			Memory:           memory.Config{BetaM: betaM, BusWidth: bus},
			Feature:          feature,
			WriteBufferDepth: int(wdepth) % 9,
			MSHRs:            int(seed % 5),
		}
		programs := trace.Programs()
		src, err := trace.NewProgram(programs[int(seed)%len(programs)], seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, trace.Collect(src, int(nrefs)%5000))
		if err != nil {
			t.Fatal(err)
		}

		if res.Cycles < res.BaseCycles {
			t.Fatalf("%v: Cycles %d < BaseCycles %d", feature, res.Cycles, res.BaseCycles)
		}
		if maxPhi := float64(line) / float64(bus); res.Phi < 0 || res.Phi > maxPhi {
			t.Fatalf("%v: Phi %v outside [0, L/D=%v]", feature, res.Phi, maxPhi)
		}
		if res.PhiFraction < 0 || res.PhiFraction > 1 {
			t.Fatalf("%v: PhiFraction %v outside [0, 1]", feature, res.PhiFraction)
		}
		for name, v := range map[string]int64{
			"FillStall": res.FillStall, "BusWait": res.BusWait,
			"FlushStall": res.FlushStall, "WriteStall": res.WriteStall,
			"HiddenFlush": res.HiddenFlush, "BufferFull": res.BufferFull,
			"Conflict": res.Conflict,
		} {
			if v < 0 {
				t.Fatalf("%v: negative %s = %d", feature, name, v)
			}
		}
		sum := res.BaseCycles + res.FillStall + res.BusWait + res.FlushStall +
			res.WriteStall + res.BufferFull + res.Conflict
		if res.Cycles != sum {
			t.Fatalf("%v: Cycles %d != decomposition sum %d (%+v)", feature, res.Cycles, sum, res)
		}
		if res.Refs == 0 && res != (Result{}) {
			t.Fatalf("%v: empty replay produced non-zero result %+v", feature, res)
		}
	})
}
