package stall

import (
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
)

// TestEq2PredictsEngineCycles cross-validates the analytic model
// against the cycle-level engine: for a full-stalling cache without
// write buffers, Eq. (2) evaluated on the measured application profile
// must reproduce the engine's cycle count exactly, up to the known
// accounting difference — Eq. (2) gives a missing load/store no base
// cycle (its entire cost is φβm), while the engine's one-cycle-per-
// instruction base includes it, so X_engine = X_eq2 + Λm.
func TestEq2PredictsEngineCycles(t *testing.T) {
	for _, prog := range trace.Programs() {
		for _, betaM := range []int64{2, 10} {
			refs := trace.Collect(trace.MustProgram(prog, 77), 60000)

			// Measure the application profile with an identical cache.
			c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2})
			profile := cache.Measure(c, refs)

			res, err := Run(Config{
				Cache:   cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
				Memory:  memory.Config{BetaM: betaM, BusWidth: 4},
				Feature: FS,
			}, refs)
			if err != nil {
				t.Fatal(err)
			}

			p := core.Params{
				E:     float64(profile.E),
				R:     float64(profile.R),
				W:     float64(profile.W),
				Alpha: profile.Alpha,
				Phi:   8, // FS: L/D
				D:     4,
				L:     32,
				BetaM: float64(betaM),
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: measured profile invalid: %v", prog, err)
			}
			predicted := core.ExecutionTime(p) + p.Misses()
			if got := float64(res.Cycles); got != predicted {
				t.Fatalf("%s βm=%d: engine %.0f cycles, Eq.(2)+Λm predicts %.0f (Δ=%.0f)",
					prog, betaM, got, predicted, got-predicted)
			}
		}
	}
}

// TestEq2PredictsBufferedCycles repeats the cross-validation for the
// ideal write-buffer variant: with a deep buffer and no exposed
// write stalls, the engine must land on ExecutionTimeWithBuffers + Λm.
func TestEq2PredictsBufferedCycles(t *testing.T) {
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: 3, Lines: 65536, Theta: 1.5, WriteFrac: 0.3,
	}), 60000)
	c := cache.MustNew(cache.Config{Size: 32 << 10, LineSize: 32, Assoc: 2})
	profile := cache.Measure(c, refs)

	res, err := Run(Config{
		Cache:            cache.Config{Size: 32 << 10, LineSize: 32, Assoc: 2},
		Memory:           memory.Config{BetaM: 2, BusWidth: 4},
		Feature:          FS,
		WriteBufferDepth: 64,
	}, refs)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		E: float64(profile.E), R: float64(profile.R), W: float64(profile.W),
		Alpha: profile.Alpha, Phi: 8, D: 4, L: 32, BetaM: 2,
	}
	predicted := core.ExecutionTimeWithBuffers(p) + p.Misses()
	// The ideal-buffer model hides everything; the engine may still
	// expose residual buffer-full or conflict stalls. They must be the
	// only difference.
	residual := float64(res.BufferFull + res.Conflict)
	if got := float64(res.Cycles); got != predicted+residual {
		t.Fatalf("engine %.0f cycles, ideal-buffer Eq.(2)+Λm+residual predicts %.0f",
			got, predicted+residual)
	}
	// And the residual must be small at this design point (the §4.3
	// "appropriate memory cycle time" regime).
	if residual > 0.05*predicted {
		t.Fatalf("residual %.0f exceeds 5%% of predicted %.0f", residual, predicted)
	}
}
