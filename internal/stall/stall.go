// Package stall measures processor stalling factors by cycle-level
// trace replay.
//
// The paper (Chen & Somani, ISCA '94, §3.2 and §4.2) distinguishes how a
// cache stalls the processor during a line fill:
//
//	FS    full stalling: wait for the whole line (φ = L/D)
//	BL    bus-locked: resume on the requested word, but any load/store
//	      during the rest of the fill waits for fill completion
//	BNL1  bus-not-locked: only accesses to the line being filled (or a
//	      new miss) wait for fill completion
//	BNL2  like BNL1, but an access to an already-arrived part of the
//	      line proceeds; otherwise it waits for full completion
//	BNL3  an access waits only until the word it needs arrives
//	NB    non-blocking: the missing access itself does not stall; later
//	      touches of the missing line wait for their word (φ ≥ 0)
//
// The stalling factor φ (Table 2, Eq. (8)) normalizes the measured
// fill-induced stall per miss by the memory cycle time βm, so that the
// execution-time model's read-miss term is (R/L)·φ·βm. A full-stalling
// cache yields φ = L/D exactly; Figure 1 reports φ/(L/D) percentages for
// the partially-stalling features, averaged over six SPEC92 programs.
//
// Per the paper's simulation assumptions (§4.2), instructions are
// single-cycle apart from memory stalls, and the instruction cache is
// effectively infinite.
package stall

import (
	"errors"
	"fmt"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/trace"
	"tradeoff/internal/wbuf"
)

// Feature identifies a processor stalling feature (Table 2).
type Feature int

const (
	FS Feature = iota
	BL
	BNL1
	BNL2
	BNL3
	NB
)

// Features lists all stalling features in Table 2 order.
func Features() []Feature { return []Feature{FS, BL, BNL1, BNL2, BNL3, NB} }

// PartialFeatures lists the partially-stalling features Figure 1 plots.
func PartialFeatures() []Feature { return []Feature{BL, BNL1, BNL2, BNL3} }

func (f Feature) String() string {
	switch f {
	case FS:
		return "FS"
	case BL:
		return "BL"
	case BNL1:
		return "BNL1"
	case BNL2:
		return "BNL2"
	case BNL3:
		return "BNL3"
	case NB:
		return "NB"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// ParseFeature maps a Table 2 feature name (FS, BL, BNL1, BNL2, BNL3,
// NB) onto its Feature, rejecting unknown names.
func ParseFeature(s string) (Feature, error) {
	for _, f := range Features() {
		if s == f.String() {
			return f, nil
		}
	}
	return 0, fmt.Errorf("stall: unknown stalling feature %q (want FS, BL, BNL1, BNL2, BNL3 or NB)", s)
}

// Config describes one stall-measurement design point.
type Config struct {
	Cache   cache.Config  // cache geometry and policies
	Memory  memory.Config // bus width D and memory cycle βm (and pipelining)
	Feature Feature       // stalling feature under test

	// WriteBufferDepth selects flush handling. 0 models no write
	// buffers: the CPU stalls (L/D)·βm per dirty-line flush and βm per
	// write-around store, exactly the α(R/D)βm and W·βm terms of
	// Eq. (2). A positive depth models read-bypassing write buffers of
	// that depth: flushes are posted after the fill and drain in bus
	// idle time; the CPU stalls only when the buffer is full or a read
	// miss conflicts with a buffered line.
	WriteBufferDepth int

	// MSHRs is the number of outstanding misses a non-blocking (NB)
	// cache supports — the paper's "mechanism for supporting multiple
	// load/store miss" (§5.3). 0 means 1. Ignored for the other
	// features, which block on their single outstanding fill; note the
	// non-pipelined bus still serializes overlapping fills.
	MSHRs int
}

// Result reports the measured timing decomposition of a replay.
//
// Two kinds of stall counter appear below. Clock-advancing counters
// (FillStall, BusWait, BufferFull, Conflict) moved the replay clock as
// they were charged, so they shift the timing of everything that
// follows. Additive counters (FlushStall, WriteStall) model the
// paper's purely additive Eq. (2) terms: they are accumulated without
// advancing the clock — so unrelated write traffic cannot perturb the
// fill-stall (φ) measurement — and are added to the clock once, at the
// end. Cycles is exactly BaseCycles plus all six stall counters.
type Result struct {
	Refs   uint64 `json:"refs"`   // memory references replayed
	Misses uint64 `json:"misses"` // load/store misses that fetched a line (Λm under write-allocate)
	E      uint64 `json:"e"`      // dynamic instruction count

	Cycles     int64 `json:"cycles"`      // total execution cycles X
	BaseCycles int64 `json:"base_cycles"` // cycles with a perfect memory system (one per instruction)

	FillStall   int64 `json:"fill_stall"`   // cycles stalled on line fills, incl. second-access stalls
	BusWait     int64 `json:"bus_wait"`     // cycles a blocking miss waited for the busy bus before its fill began
	FlushStall  int64 `json:"flush_stall"`  // cycles stalled on dirty-line copy-backs (exposed, additive)
	WriteStall  int64 `json:"write_stall"`  // cycles stalled on write-around stores (exposed, additive)
	HiddenFlush int64 `json:"hidden_flush"` // flush cycles absorbed by the write buffer
	BufferFull  int64 `json:"buffer_full"`  // cycles stalled because the write buffer was full
	Conflict    int64 `json:"conflict"`     // cycles stalled on read-after-buffered-write conflicts

	Phi         float64 `json:"phi"`          // stalling factor: FillStall / (Misses · βm)
	PhiFraction float64 `json:"phi_fraction"` // Phi normalized by its maximum L/D (Figure 1's y-axis)

	Traffic uint64 `json:"traffic"` // processor-memory bus traffic in bytes (fills, flushes, stores)
}

var errInstrOrder = errors.New("stall: trace instruction indices must be strictly increasing")

// Run replays refs through the configured cache/memory system and
// measures the stall decomposition. The cache is created fresh; use
// RunWarm to keep a warmed cache.
func Run(cfg Config, refs []trace.Ref) (Result, error) {
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return Result{}, err
	}
	return RunWarm(cfg, c, refs)
}

// RunWarm is Run with a caller-supplied (possibly pre-warmed) cache.
// The cache configuration must match cfg.Cache in line size.
func RunWarm(cfg Config, c *cache.Cache, refs []trace.Ref) (Result, error) {
	mem, err := memory.New(cfg.Memory)
	if err != nil {
		return Result{}, err
	}
	if c.Config().LineSize != cfg.Cache.LineSize {
		return Result{}, fmt.Errorf("stall: cache line size %d != config %d", c.Config().LineSize, cfg.Cache.LineSize)
	}
	e := engine{
		cfg:   cfg,
		cache: c,
		mem:   mem,
		L:     cfg.Cache.LineSize,
		D:     cfg.Memory.BusWidth,
	}
	if cfg.WriteBufferDepth > 0 {
		e.buf = wbuf.New(cfg.WriteBufferDepth)
	}
	if err := e.replay(refs); err != nil {
		return Result{}, err
	}
	return e.result(), nil
}

// engine holds the replay state.
type engine struct {
	cfg   Config
	cache *cache.Cache
	mem   *memory.Model
	L, D  int

	cur       int64 // current cycle
	lastInstr uint64
	started   bool

	fills []memory.Fill // outstanding fills, oldest first (len > 1 only for NB with MSHRs > 1)

	busBusyUntil int64 // bus reserved by the in-flight fill (and sync flushes)

	// Read-bypassing write buffer (nil when WriteBufferDepth == 0).
	buf *wbuf.Buffer

	res Result
}

// replay processes the trace. One iteration per reference: this loop
// is the simulator's entire runtime.
//
//perf:hot
func (e *engine) replay(refs []trace.Ref) error {
	for i, r := range refs {
		if e.started && r.Instr <= e.lastInstr {
			//lint:ignore hotalloc cold path: boxing happens once, on the malformed trace that aborts the replay
			return fmt.Errorf("%w (ref %d: %d after %d)", errInstrOrder, i, r.Instr, e.lastInstr)
		}
		// Instruction progress: one cycle per instruction since the
		// previous reference (the referencing instruction included).
		if !e.started {
			e.cur += int64(r.Instr) + 1
			e.started = true
		} else {
			e.cur += int64(r.Instr - e.lastInstr)
		}
		e.lastInstr = r.Instr
		e.retire()

		out := e.cache.Access(r.Addr, r.Write)
		switch {
		case out.Hit:
			e.onHit(r)
		case out.Bypassed:
			e.onWriteAround(r)
		default:
			e.onFill(r, out)
		}
		if out.Through {
			e.onThrough(r)
		}
		e.res.Refs++
	}
	// An empty trace executed nothing: leave E (and hence BaseCycles)
	// zero rather than claiming one phantom instruction.
	if e.started {
		e.res.E = e.lastInstr + 1
	}
	return nil
}

// retire drops outstanding fills that have completed by the current
// cycle, preserving age order. Runs once per reference.
//
//perf:hot
func (e *engine) retire() {
	n := 0
	for _, f := range e.fills {
		if e.cur < f.Complete() {
			e.fills[n] = f
			n++
		}
	}
	e.fills = e.fills[:n]
}

// mshrs returns the outstanding-miss capacity for the configuration.
func (e *engine) mshrs() int {
	if e.cfg.Feature == NB && e.cfg.MSHRs > 1 {
		return e.cfg.MSHRs
	}
	return 1
}

// stallFill advances time to at (if in the future) and charges the wait
// to fill stalls.
func (e *engine) stallFill(at int64) {
	if at > e.cur {
		e.res.FillStall += at - e.cur
		e.cur = at
	}
}

// onHit applies the feature-specific stall rules for an access that hit
// in the cache while a fill may be outstanding (§3.2). Runs once per
// hitting reference.
//
//perf:hot
func (e *engine) onHit(r trace.Ref) {
	if len(e.fills) == 0 {
		return
	}
	if e.cfg.Feature == BL {
		// Cache locked: every load/store waits for fill completion.
		e.stallFill(e.fills[0].Complete())
		e.retire()
		return
	}
	// Find the (at most one) outstanding fill of this line.
	var fill memory.Fill
	sameLine := false
	for _, f := range e.fills {
		if f.Line == r.Line(e.L) {
			fill, sameLine = f, true
			break
		}
	}
	if !sameLine {
		return
	}
	switch e.cfg.Feature {
	case FS:
		// Unreachable: FS never leaves a fill outstanding.
	case BNL1:
		e.stallFill(fill.Complete())
	case BNL2:
		if e.cur < fill.ByteReady(int(r.Addr%uint64(e.L)), e.D) {
			e.stallFill(fill.Complete())
		}
	case BNL3, NB:
		e.stallFill(fill.ByteReady(int(r.Addr%uint64(e.L)), e.D))
	}
	e.retire()
}

// onWriteAround handles a write-around store, which uses the external
// bus for one memory cycle (the W·βm term of Eq. (2)).
func (e *engine) onWriteAround(r trace.Ref) {
	if e.cfg.Feature == BL && len(e.fills) > 0 {
		e.stallFill(e.fills[0].Complete())
		e.retire()
	}
	betaM := e.cfg.Memory.BetaM
	if e.cfg.WriteBufferDepth > 0 {
		e.postWrite(r.Line(e.L), betaM)
		return
	}
	// Without buffers the store costs one memory cycle (the W·βm term
	// of Eq. (2)). The paper's model treats this as purely additive to
	// the execution time, so it is accumulated without advancing the
	// replay clock — advancing it would let unrelated write traffic
	// mask the fill stalls that define φ.
	e.res.WriteStall += betaM
}

// onThrough charges the bus cost of a write-through store: one memory
// cycle, buffered when write buffers are configured, otherwise
// accumulated additively like the write-around term.
func (e *engine) onThrough(r trace.Ref) {
	betaM := e.cfg.Memory.BetaM
	if e.cfg.WriteBufferDepth > 0 {
		e.postWrite(r.Line(e.L), betaM)
		return
	}
	e.res.WriteStall += betaM
}

// onFill handles a miss that fetches a line.
func (e *engine) onFill(r trace.Ref, out cache.Outcome) {
	// A new miss while the outstanding-miss capacity is exhausted waits
	// for the oldest line to arrive completely (all partially-stalling
	// features; §4.2: "the new miss is stalled until the previous
	// missed line is brought into the cache"). NB with spare MSHRs
	// proceeds without stalling.
	if len(e.fills) >= e.mshrs() {
		e.stallFill(e.fills[0].Complete())
		e.retire()
	}

	// Read-after-write conflict: the line being fetched must not be
	// sitting in the write buffer (stale memory copy).
	e.drainConflicts(out.FillLine)

	fillStart := e.cur
	if e.busBusyUntil > fillStart {
		// Bus still moving earlier data (an in-progress buffered flush
		// transfer, or — under NB with spare MSHRs — a previous fill).
		// Blocking features park the processor on the bus wait; a
		// non-blocking cache just schedules the fill for when the bus
		// frees and keeps executing. This wait advances the replay
		// clock, so it must be charged to the clock-advancing BusWait
		// counter — the additive FlushStall total is re-added to the
		// clock by result(), and charging it here would count the same
		// cycles twice.
		fillStart = e.busBusyUntil
		if e.cfg.Feature != NB {
			e.res.BusWait += fillStart - e.cur
			e.cur = fillStart
		}
	}

	critical := int(r.Addr%uint64(e.L)) / e.D
	fill := e.mem.NewFill(fillStart, out.FillLine, e.L, critical)
	e.fills = append(e.fills, fill)
	e.busBusyUntil = fill.Complete()

	// The processor waits for the requested word (FS: the whole line).
	switch e.cfg.Feature {
	case FS:
		e.stallFill(fill.Complete())
		e.fills = e.fills[:len(e.fills)-1]
	case NB:
		// Non-blocking: the missing access itself does not stall.
	default:
		e.stallFill(fill.CriticalReady())
	}

	// Dirty-victim flush, posted after the missing line is filled
	// (§5.3). Without write buffers the CPU pays (L/D)·βm for it — the
	// α(R/D)βm term of Eq. (2) — accumulated additively, like the
	// write-around term above, so flush traffic does not perturb the
	// fill-stall (φ) measurement. With buffers it drains in bus idle
	// time and is hidden unless the buffer overruns.
	if out.Writeback {
		flushTime := e.mem.LineTime(e.L)
		if e.cfg.WriteBufferDepth > 0 {
			e.postWrite(victimToken(out.FillLine), flushTime)
		} else {
			e.res.FlushStall += flushTime
		}
	}
}

// victimToken derives a pseudo-identifier for a flushed victim line.
// The cache does not report the victim's address, so conflicts are
// tracked approximately; fills to the same line index as a buffered
// entry trigger the conflict path. Using the filled line's index is a
// conservative stand-in that preserves buffer-occupancy behaviour.
func victimToken(fillLine uint64) uint64 { return fillLine ^ 0x8000_0000_0000_0000 }

// postWrite queues a write of duration dur on the write buffer,
// charging any full-buffer wait. Buffered cycles count as hidden
// unless later exposed via BufferFull or Conflict stalls.
func (e *engine) postWrite(line uint64, dur int64) {
	stall := e.buf.Post(e.cur, e.busBusyUntil, line, dur)
	e.res.BufferFull += stall
	e.cur += stall
	e.res.HiddenFlush += dur
}

// drainConflicts forces buffered entries for line to drain before a
// fill of that line may start.
func (e *engine) drainConflicts(line uint64) {
	if e.buf == nil {
		return
	}
	stall := e.buf.ConflictWait(e.cur, e.busBusyUntil, line)
	e.res.Conflict += stall
	e.cur += stall
}

// result finalizes the measurement. FlushStall and WriteStall are the
// additive charges (see onFill/onWriteAround) that never advanced the
// replay clock, so the total cycle count adds them here exactly once;
// every other stall counter (FillStall, BusWait, BufferFull, Conflict)
// already advanced e.cur during the replay.
func (e *engine) result() Result {
	r := e.res
	r.Misses = e.cache.Stats().Fills
	r.Traffic = e.cache.Stats().Traffic(e.L, e.D)
	r.Cycles = e.cur + r.FlushStall + r.WriteStall
	r.BaseCycles = int64(r.E)
	betaM := e.cfg.Memory.BetaM
	if r.Misses > 0 && betaM > 0 {
		r.Phi = float64(r.FillStall) / (float64(r.Misses) * float64(betaM))
	}
	if maxPhi := float64(e.L) / float64(e.D); maxPhi > 0 {
		r.PhiFraction = r.Phi / maxPhi
	}
	return r
}
