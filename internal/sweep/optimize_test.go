package sweep

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func optCfg() OptimizeConfig {
	return OptimizeConfig{
		Config: Config{
			CacheKB: []int{4, 8}, LineBytes: []int{16, 32}, BusBits: []int{32, 64},
			LatencyNS: 360, TransferNS: 60, CPUNS: 30,
			Levels: []LevelAxes{
				{CacheKB: []int{32, 64}, LatencyNS: 90},
				{CacheKB: []int{256}, LatencyNS: 180},
			},
		},
		AreaBudget: 2e7,
	}
}

func TestOptimizeSearchesAllDepths(t *testing.T) {
	res, err := Optimize(context.Background(), optCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != len(res.Designs) || res.Total < res.Feasible {
		t.Fatalf("inconsistent counts: %+v", res)
	}
	depths := map[int]bool{}
	pareto := 0
	for _, d := range res.Designs {
		depths[len(d.Levels)+1] = true
		if d.Pareto {
			pareto++
		}
		if d.PowerProxy <= 0 {
			t.Fatalf("design without power proxy: %+v", d)
		}
		if d.AreaRBE > 2e7 {
			t.Fatalf("design over the area budget: %+v", d)
		}
	}
	// The generous budget keeps designs from every depth prefix in
	// play: flat, two-level and three-level.
	if !depths[1] || !depths[2] || !depths[3] {
		t.Fatalf("depths searched = %v, want {1,2,3}", depths)
	}
	if pareto == 0 {
		t.Fatal("no Pareto frontier flagged")
	}
}

func TestOptimizeAreaBudgetBinds(t *testing.T) {
	cfg := optCfg()
	loose, err := Optimize(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A budget below any three-level design's area: deep hierarchies
	// must drop out, totals stay the same.
	cfg.AreaBudget = 1e6
	tight, err := Optimize(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Total != loose.Total {
		t.Fatalf("budget changed enumeration: %d vs %d", tight.Total, loose.Total)
	}
	if tight.Feasible >= loose.Feasible {
		t.Fatalf("tight budget kept %d of %d designs", tight.Feasible, loose.Feasible)
	}
	for _, d := range tight.Designs {
		if len(d.Levels) == 2 {
			t.Fatalf("three-level design under a 1e6 rbe budget: %+v", d)
		}
	}
}

func TestOptimizePowerBudgetBinds(t *testing.T) {
	cfg := optCfg()
	loose, err := Optimize(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	minP, maxP := math.Inf(1), 0.0
	for _, d := range loose.Designs {
		minP = math.Min(minP, d.PowerProxy)
		maxP = math.Max(maxP, d.PowerProxy)
	}
	if minP >= maxP {
		t.Fatalf("degenerate power spread [%g, %g]", minP, maxP)
	}
	cfg.PowerBudget = (minP + maxP) / 2
	mid, err := Optimize(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Feasible == 0 || mid.Feasible >= loose.Feasible {
		t.Fatalf("power budget kept %d of %d designs", mid.Feasible, loose.Feasible)
	}
	for _, d := range mid.Designs {
		if d.PowerProxy > cfg.PowerBudget {
			t.Fatalf("design over the power budget: %+v", d)
		}
	}
}

func TestOptimizeMaxLevels(t *testing.T) {
	cfg := optCfg()
	cfg.MaxLevels = 2
	res, err := Optimize(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Designs {
		if len(d.Levels) > 1 {
			t.Fatalf("design deeper than max_levels=2: %+v", d)
		}
	}
}

func TestOptimizeLineModeOptimal(t *testing.T) {
	cfg := optCfg()
	cfg.LineMode = LineModeOptimal
	res, err := Optimize(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := Optimize(context.Background(), optCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total >= enum.Total {
		t.Fatalf("optimal line mode did not shrink the space: %d vs %d", res.Total, enum.Total)
	}
	// One line per (size, bus): no two designs may share (size, bus,
	// depth, deeper levels) with different lines.
	seen := map[string]int{}
	for _, d := range res.Designs {
		key := fmt.Sprintf("%d|%d|%s", d.CacheKB, d.BusBits, levelsCell(d.Levels))
		if prev, ok := seen[key]; ok && prev != d.LineBytes {
			t.Fatalf("two lines (%d, %d) for one (size, bus, levels) choice", prev, d.LineBytes)
		}
		seen[key] = d.LineBytes
	}
	// The chosen line must actually minimize delay among the flat
	// candidates with the same (size, bus).
	for _, d := range res.Designs {
		if len(d.Levels) > 0 {
			continue
		}
		for _, e := range enum.Designs {
			if len(e.Levels) == 0 && e.CacheKB == d.CacheKB && e.BusBits == d.BusBits && e.Delay < d.Delay-1e-12 {
				t.Fatalf("line %d beaten by line %d at %dK/%d-bit", d.LineBytes, e.LineBytes, d.CacheKB, d.BusBits)
			}
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*OptimizeConfig)
	}{
		{"missing area budget", func(c *OptimizeConfig) { c.AreaBudget = 0 }},
		{"negative power budget", func(c *OptimizeConfig) { c.PowerBudget = -1 }},
		{"bad line mode", func(c *OptimizeConfig) { c.LineMode = "best" }},
		{"bad max levels", func(c *OptimizeConfig) { c.MaxLevels = -2 }},
		{"bad inner config", func(c *OptimizeConfig) { c.CacheKB = nil }},
	} {
		cfg := optCfg()
		tc.mutate(&cfg)
		cfg.SetDefaults()
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestOptimizeCheckLimits(t *testing.T) {
	cfg := optCfg()
	cfg.SetDefaults()
	// Depth sums: flat 8 + two-level 8·2 + three-level 8·2·1 = 40.
	if err := cfg.CheckLimits(Limits{MaxPoints: 40}); err != nil {
		t.Fatalf("40-point space failed a 40-point limit: %v", err)
	}
	if err := cfg.CheckLimits(Limits{MaxPoints: 39}); err == nil {
		t.Fatal("40-point space passed a 39-point limit")
	}
	if err := cfg.CheckLimits(Limits{MaxCacheKB: 128}); err == nil {
		t.Fatal("256 KiB level passed a 128 KiB limit")
	}
}

func TestOptimizeParseAndCanonical(t *testing.T) {
	cfg, err := ParseOptimizeConfig([]byte(`{
		"cache_kb": [4, 8], "line_bytes": [32], "bus_bits": [64],
		"latency_ns": 360, "transfer_ns": 60, "cpu_ns": 30,
		"levels": [{"cache_kb": [64], "latency_ns": 90}],
		"area_budget": 5e6
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxLevels != 2 || cfg.LineMode != LineModeEnumerate {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	a, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	spelled := cfg
	spelled.LineMode = LineModeEnumerate
	b, err := spelled.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical keys differ:\n%s\n%s", a, b)
	}
	if _, err := ParseOptimizeConfig([]byte(`{"cache_kb": [4]}`)); err == nil {
		t.Fatal("invalid optimize config accepted")
	}
}

func TestOptimizeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := optCfg()
	cfg.HitSource = "sim:ear"
	cfg.SimRefs = 200_000
	start := time.Now()
	if _, err := Optimize(ctx, cfg, 0); err == nil {
		t.Fatal("cancelled optimize returned no error")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled optimize still took %v", took)
	}
}

func TestOptimizeCSV(t *testing.T) {
	res, err := Optimize(context.Background(), optCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOptimizeCSV(&buf, res.Designs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cache_kb,line_bytes,bus_bits,levels,hit_ratio,global_hit_ratio,hit_source,delay_per_ref,area_rbe,pins,power_proxy,pareto" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != len(res.Designs)+1 {
		t.Fatalf("%d rows for %d designs", len(lines)-1, len(res.Designs))
	}
}

// BenchmarkOptimize measures the full cost-constrained search on the
// exact-MRC surface: 40 design points across three hierarchy depths,
// curves built once per line size.
func BenchmarkOptimize(b *testing.B) {
	cfg := optCfg()
	cfg.HitSource = "mrc:ear"
	cfg.SimRefs = 20_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Optimize(context.Background(), cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total != 40 {
			b.Fatalf("total = %d, want 40", res.Total)
		}
	}
}
