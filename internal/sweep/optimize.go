package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"tradeoff/internal/engine"
	"tradeoff/internal/linesize"
	"tradeoff/internal/obs"
)

// Line-size search modes for Optimize. LineModeEnumerate keeps every
// line_bytes candidate as its own design point; LineModeOptimal picks
// one line per (cache size, bus width) with the paper's §5.4 optimal-
// line criterion (linesize.MeanDelayOptimal over the configured hit
// source) before the hierarchy axes expand the space.
const (
	LineModeEnumerate = "enumerate"
	LineModeOptimal   = "optimal"
)

// OptimizeConfig is the JSON schema of a cost-constrained design-space
// search: the sweep axes (hierarchy levels included), budgets, and the
// line-size mode. The search enumerates every depth prefix of the
// level axes — L1 alone, L1+L2, L1+L2+L3, … — so shallow and deep
// hierarchies compete in the same frontier under the same budget.
type OptimizeConfig struct {
	Config

	// AreaBudget is the maximum total cache area in rbe (required).
	AreaBudget float64 `json:"area_budget"`
	// PowerBudget caps the per-reference access-energy proxy
	// (Design.PowerProxy); 0 means unconstrained.
	PowerBudget float64 `json:"power_budget,omitempty"`
	// MaxLevels caps the hierarchy depth searched (default: all the
	// configured levels).
	MaxLevels int `json:"max_levels,omitempty"`
	// LineMode is "enumerate" (default) or "optimal".
	LineMode string `json:"line_mode,omitempty"`
}

// SetDefaults fills zero-valued optional fields with their defaults.
func (c *OptimizeConfig) SetDefaults() {
	c.Config.SetDefaults()
	if c.MaxLevels == 0 {
		c.MaxLevels = 1 + len(c.Levels)
	}
	if c.LineMode == "" {
		c.LineMode = LineModeEnumerate
	}
}

// Validate reports configurations outside the search's domain. It
// assumes SetDefaults has run.
func (c *OptimizeConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	switch {
	case c.AreaBudget <= 0:
		return fmt.Errorf("sweep: area_budget = %g, want > 0", c.AreaBudget)
	case c.PowerBudget < 0:
		return fmt.Errorf("sweep: power_budget = %g, want >= 0", c.PowerBudget)
	case c.MaxLevels < 1:
		return fmt.Errorf("sweep: max_levels = %d, want >= 1", c.MaxLevels)
	}
	switch c.LineMode {
	case LineModeEnumerate, LineModeOptimal:
	default:
		return fmt.Errorf("sweep: line_mode %q, want %q or %q", c.LineMode, LineModeEnumerate, LineModeOptimal)
	}
	return nil
}

// depth returns the number of hierarchy depths searched.
func (c *OptimizeConfig) depth() int {
	if c.MaxLevels < 1+len(c.Levels) {
		return c.MaxLevels
	}
	return 1 + len(c.Levels)
}

// CheckLimits bounds the search like Config.CheckLimits bounds a
// sweep, summing the design points over every depth prefix.
func (c *OptimizeConfig) CheckLimits(lim Limits) error {
	flat := len(c.CacheKB) * len(c.LineBytes) * len(c.BusBits)
	total, mult := 0, 1
	for depth := 0; depth < c.depth(); depth++ {
		if depth > 0 {
			lv := c.Levels[depth-1]
			lines := len(lv.LineBytes)
			if lines == 0 {
				lines = 1
			}
			mult *= len(lv.CacheKB) * lines
		}
		total += flat * mult
	}
	if lim.MaxPoints > 0 && total > lim.MaxPoints {
		return fmt.Errorf("sweep: %d design points exceeds the limit of %d", total, lim.MaxPoints)
	}
	sizeOnly := lim
	sizeOnly.MaxPoints = 0
	return c.Config.CheckLimits(sizeOnly)
}

// ParseOptimizeConfig decodes a JSON optimize configuration, applies
// defaults and validates it — the single entry point for CLI and
// service, like ParseConfig.
func ParseOptimizeConfig(data []byte) (OptimizeConfig, error) {
	var cfg OptimizeConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return OptimizeConfig{}, fmt.Errorf("sweep: parsing optimize config: %w", err)
	}
	cfg.SetDefaults()
	if err := cfg.Validate(); err != nil {
		return OptimizeConfig{}, err
	}
	return cfg, nil
}

// Canonical returns the canonicalized JSON encoding with defaults
// applied — the optimize endpoint's memoization key.
func (c OptimizeConfig) Canonical() ([]byte, error) {
	c.SetDefaults()
	return json.Marshal(c)
}

// OptimizeResult is a completed search: every budget-feasible design
// (Pareto flags set over the feasible set) plus the enumeration counts
// the filtering consumed.
type OptimizeResult struct {
	Total    int      // design points enumerated across all depths
	Feasible int      // points within the budgets (== len(Designs))
	Designs  []Design // feasible designs, Pareto-marked, deterministic order
}

// Optimize searches the joint (hierarchy depth, cache sizes, line
// sizes, bus width) space under the configured budgets and returns
// the feasible designs with the (delay, area, pins) Pareto frontier
// flagged. Like Run it is deterministic, ctx-cancellable and pooled.
func Optimize(ctx context.Context, cfg OptimizeConfig, workers int) (OptimizeResult, error) {
	return OptimizeCaches(ctx, cfg, workers, Caches{})
}

// OptimizeCaches is Optimize with caller-owned memoization state (see
// Caches); the tradeoffd service shares its curve and model caches and
// the simjob trace seam across requests this way.
func OptimizeCaches(ctx context.Context, cfg OptimizeConfig, workers int, caches Caches) (OptimizeResult, error) {
	cfg.SetDefaults()
	if err := cfg.Validate(); err != nil {
		return OptimizeResult{}, err
	}
	hit, source, err := hitFunc(cfg.Config, caches)
	if err != nil {
		return OptimizeResult{}, err
	}
	points, err := optimizePoints(ctx, cfg, hit)
	if err != nil {
		return OptimizeResult{}, err
	}
	if len(points) == 0 {
		return OptimizeResult{}, fmt.Errorf("sweep: empty optimize space (every line < 2D, or no monotone hierarchy?)")
	}

	ctx = obs.WithSpanName(ctx, "optimize_point")
	all, err := engine.Map(ctx, points, workers, func(ctx context.Context, p point) (Design, error) {
		if s := obs.CurrentSpan(ctx); s != nil {
			s.SetArg("cache_kb", p.cacheKB)
			s.SetArg("levels", len(p.levels)+1)
		}
		var d Design
		var err error
		if len(p.levels) > 0 {
			d, err = evaluateHierarchy(ctx, cfg.Config, caches, hit, source, p)
		} else {
			d, err = evaluate(ctx, cfg.Config, hit, source, p)
		}
		if err != nil {
			return Design{}, err
		}
		d.PowerProxy = powerProxy(d)
		return d, nil
	})
	if err != nil {
		return OptimizeResult{}, err
	}

	feasible := make([]Design, 0, len(all))
	for _, d := range all {
		if d.AreaRBE > cfg.AreaBudget {
			continue
		}
		if cfg.PowerBudget > 0 && d.PowerProxy > cfg.PowerBudget {
			continue
		}
		d.Pareto = false
		feasible = append(feasible, d)
	}
	MarkPareto(feasible)
	return OptimizeResult{Total: len(all), Feasible: len(feasible), Designs: feasible}, nil
}

// optimizePoints enumerates the search space: every depth prefix of
// the level axes, with the L1 line either enumerated or fixed per
// (cache size, bus width) by the optimal-line criterion.
func optimizePoints(ctx context.Context, cfg OptimizeConfig, hit hitRatioFunc) ([]point, error) {
	depths := cfg.depth()
	if cfg.LineMode == LineModeEnumerate {
		var points []point
		for depth := 0; depth < depths; depth++ {
			sub := cfg.Config
			sub.Levels = cfg.Levels[:depth]
			points = append(points, enumerate(sub)...)
		}
		return points, nil
	}
	// LineModeOptimal: one L1 line per (size, bus), chosen by the
	// §5.4 mean-delay criterion over the configured hit source.
	var points []point
	for _, kb := range cfg.CacheKB {
		for _, bus := range cfg.BusBits {
			line, ok, err := optimalLine(ctx, cfg.Config, hit, kb, bus)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			sub := cfg.Config
			sub.CacheKB, sub.LineBytes, sub.BusBits = []int{kb}, []int{line}, []int{bus}
			for depth := 0; depth < depths; depth++ {
				sub.Levels = cfg.Levels[:depth]
				points = append(points, enumerate(sub)...)
			}
		}
	}
	return points, nil
}

// optimalLine picks the best L1 line for one (size, bus) pair among
// the config's line_bytes candidates that satisfy line >= 2D, via
// linesize.MeanDelayOptimal on the hit source. ok is false when no
// candidate fits the bus.
func optimalLine(ctx context.Context, cfg Config, hit hitRatioFunc, kb, busBits int) (int, bool, error) {
	d := busBits / 8
	candidates := make([]int, 0, len(cfg.LineBytes))
	for _, l := range cfg.LineBytes {
		if l >= 2*d {
			candidates = append(candidates, l)
		}
	}
	sort.Ints(candidates)
	switch len(candidates) {
	case 0:
		return 0, false, nil
	case 1:
		return candidates[0], true, nil
	}
	s := &hitSurface{ctx: ctx, hit: hit}
	// NSPerByte = TransferNS/D makes linesize's normalized timing
	// (c = 1 + λβ, penalty β·L/D) coincide with the sweep's
	// (c = 1 + LatencyNS/CPUNS, β = TransferNS/CPUNS).
	best, err := linesize.MeanDelayOptimal(s, linesize.Config{
		CacheSize: kb << 10,
		BusWidth:  d,
		LatencyNS: cfg.LatencyNS,
		NSPerByte: cfg.TransferNS / float64(d),
		Lines:     candidates,
	}, cfg.TransferNS/cfg.CPUNS)
	if err != nil {
		return 0, false, err
	}
	if s.err != nil {
		return 0, false, s.err
	}
	return best, true, nil
}

// hitSurface adapts a hitRatioFunc to the missratio.Surface interface
// linesize selects over, capturing the first underlying error (the
// interface has no error channel).
type hitSurface struct {
	ctx context.Context
	hit hitRatioFunc
	err error
}

func (s *hitSurface) MissRatio(size, line int) float64 {
	hr, err := s.hit(s.ctx, size, line)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return 1
	}
	return 1 - hr
}

// powerProxy computes the per-reference access-energy proxy of a
// design: each level's sqrt(rbe) access energy (area.AccessEnergy)
// weighted by the rate at which demand probes reach it — every
// reference probes L1, only the compounded miss stream probes deeper.
// Off-chip energy is out of scope; the budget constrains the on-chip
// hierarchy.
func powerProxy(d Design) float64 {
	l1 := d.AreaRBE
	for _, l := range d.Levels {
		l1 -= l.AreaRBE
	}
	e := math.Sqrt(l1)
	rate := 1 - d.HitRatio
	for _, l := range d.Levels {
		e += rate * math.Sqrt(l.AreaRBE)
		rate *= 1 - l.LocalHitRatio
	}
	return e
}

// WriteOptimizeCSV emits the search's CSV: the sweep columns plus the
// power proxy and the deeper levels, one row per feasible design.
func WriteOptimizeCSV(w io.Writer, ds []Design) error {
	header := []string{"cache_kb", "line_bytes", "bus_bits", "levels", "hit_ratio", "global_hit_ratio",
		"hit_source", "delay_per_ref", "area_rbe", "pins", "power_proxy", "pareto"}
	return engine.WriteCSV(w, header, len(ds), func(i int) []string {
		d := &ds[i]
		global := d.GlobalHitRatio
		if len(d.Levels) == 0 {
			global = d.HitRatio
		}
		return []string{
			strconv.Itoa(d.CacheKB), strconv.Itoa(d.LineBytes), strconv.Itoa(d.BusBits),
			levelsCell(d.Levels),
			strconv.FormatFloat(d.HitRatio, 'f', 5, 64),
			strconv.FormatFloat(global, 'f', 5, 64),
			d.HitSource,
			strconv.FormatFloat(d.Delay, 'f', 4, 64),
			strconv.FormatFloat(d.AreaRBE, 'f', 0, 64),
			strconv.Itoa(d.Pins),
			strconv.FormatFloat(d.PowerProxy, 'f', 2, 64),
			strconv.FormatBool(d.Pareto),
		}
	})
}
