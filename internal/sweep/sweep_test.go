package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

// goldenExample runs the -example config at the given pool size and
// returns the CSV bytes.
func goldenExample(t *testing.T, workers int) []byte {
	t.Helper()
	cfg, err := ParseConfig([]byte(ExampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Run(context.Background(), cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenExample pins the engine to the byte-exact CSV the original
// serial cmd/sweep emitted for the -example config
// (testdata/example_golden.csv, captured before the parallel rewrite),
// at several pool sizes: parallelism must not change a single byte.
func TestGoldenExample(t *testing.T) {
	want, err := os.ReadFile("testdata/example_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got := goldenExample(t, workers)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: CSV differs from the serial golden output\ngot:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
}

// TestParallelMatchesSerialSim repeats the determinism check on the
// simulated hit-ratio path, whose per-point work is heavy enough that
// workers genuinely interleave.
func TestParallelMatchesSerialSim(t *testing.T) {
	cfg := Config{
		CacheKB: []int{4, 8, 16}, LineBytes: []int{16, 32}, BusBits: []int{32, 64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		HitSource: "sim:zipf", SimRefs: 5000,
	}
	run := func(workers int) []byte {
		ds, err := Run(context.Background(), cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel sim sweep differs from serial:\n%s\nvs\n%s", parallel, serial)
	}
}

func TestRunCancelled(t *testing.T) {
	cfg, err := ParseConfig([]byte(ExampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg, 2); err != context.Canceled {
		t.Fatalf("Run on a cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []string{
		`{`,
		`{"cache_kb": [], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 0, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1, "hit_source": "psychic"}`,
		`{"cache_kb": [-8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [0], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [12], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1, "sim_refs": -1}`,
		`{"cache_kb": [8], "line_bytes": [32], "bus_bits": [32], "latency_ns": 1, "transfer_ns": 1, "cpu_ns": 1, "addr_bits": 4096}`,
	}
	for i, body := range cases {
		if _, err := ParseConfig([]byte(body)); err == nil {
			t.Errorf("case %d: bad config accepted: %s", i, body)
		}
	}
}

// TestValidateHitSourceSuffix is the regression test for the bare-
// prefix bug: "mrc:", "mrc~:", "sim:" and "an:" with an empty or
// unknown workload suffix used to pass Validate (the check was a
// plain HasPrefix) and only fail deep inside the run. They must now
// be rejected up front, with an error that names the known workloads.
func TestValidateHitSourceSuffix(t *testing.T) {
	base := `{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":1,"transfer_ns":1,"cpu_ns":1,"hit_source":%q}`
	for _, src := range []string{"mrc:", "mrc~:", "sim:", "an:", "mrc:gcc", "mrc~:gcc", "sim:gcc", "an:gcc"} {
		_, err := ParseConfig([]byte(fmt.Sprintf(base, src)))
		if err == nil {
			t.Errorf("hit_source %q accepted, want a validation error", src)
			continue
		}
		if !strings.Contains(err.Error(), "ear") || !strings.Contains(err.Error(), "zipf") {
			t.Errorf("hit_source %q: error %q does not name the known workloads", src, err)
		}
	}
	for _, src := range []string{"model", "sim:zipf", "mrc:ear", "mrc~:nasa7", "an:hydro2d"} {
		if _, err := ParseConfig([]byte(fmt.Sprintf(base, src))); err != nil {
			t.Errorf("hit_source %q rejected: %v", src, err)
		}
	}
}

// TestValidateMode pins the mode enum and its default.
func TestValidateMode(t *testing.T) {
	base := `{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":1,"transfer_ns":1,"cpu_ns":1,"mode":%q}`
	for _, m := range []string{ModeExact, ModeModel, ModeAuto} {
		if _, err := ParseConfig([]byte(fmt.Sprintf(base, m))); err != nil {
			t.Errorf("mode %q rejected: %v", m, err)
		}
	}
	for _, m := range []string{"fast", "EXACT", "analytic"} {
		if _, err := ParseConfig([]byte(fmt.Sprintf(base, m))); err == nil {
			t.Errorf("mode %q accepted", m)
		}
	}
	cfg, err := ParseConfig([]byte(`{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":1,"transfer_ns":1,"cpu_ns":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != ModeExact {
		t.Errorf("default mode = %q, want %q", cfg.Mode, ModeExact)
	}
}

// TestEffectiveHitSource pins the mode → source decision rule.
func TestEffectiveHitSource(t *testing.T) {
	cases := []struct {
		mode, src, want string
		wantErr         bool
	}{
		{ModeExact, "sim:ear", "sim:ear", false},
		{ModeExact, "an:ear", "an:ear", false},
		{ModeModel, "sim:ear", "an:ear", false},
		{ModeModel, "mrc:zipf", "an:zipf", false},
		{ModeModel, "mrc~:nasa7", "an:nasa7", false},
		{ModeModel, "an:doduc", "an:doduc", false},
		{ModeModel, "model", "model", false}, // calibrated surface: nothing to re-price
		{ModeAuto, "mrc:hydro2d", "an:hydro2d", false},
		{ModeAuto, "model", "model", false},
	}
	for _, c := range cases {
		cfg := Config{Mode: c.mode, HitSource: c.src}
		got, err := cfg.EffectiveHitSource()
		if (err != nil) != c.wantErr {
			t.Errorf("mode %q src %q: err = %v, wantErr %v", c.mode, c.src, err, c.wantErr)
			continue
		}
		if got != c.want {
			t.Errorf("mode %q src %q: got %q, want %q", c.mode, c.src, got, c.want)
		}
	}
}

// TestModeModelMatchesAnalytic proves the mode knob is pure routing:
// a mode=model sweep over sim:ear is design-for-design identical to
// an explicit an:ear sweep, and every point records the analytic
// source it was actually priced with.
func TestModeModelMatchesAnalytic(t *testing.T) {
	base := Config{
		CacheKB: []int{4, 16, 64}, LineBytes: []int{16, 64}, BusBits: []int{32},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30, SimRefs: 50_000,
	}
	viaMode := base
	viaMode.HitSource, viaMode.Mode = "sim:ear", ModeModel
	explicit := base
	explicit.HitSource = "an:ear"
	a, err := Run(context.Background(), viaMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), explicit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("design counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("design %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].HitSource != "an:ear" {
			t.Errorf("design %d records hit_source %q, want \"an:ear\"", i, a[i].HitSource)
		}
	}
}

func TestCheckLimits(t *testing.T) {
	cfg, err := ParseConfig([]byte(ExampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.CheckLimits(DefaultLimits); err != nil {
		t.Fatalf("example config exceeds default limits: %v", err)
	}
	if err := cfg.CheckLimits(Limits{MaxPoints: 4}); err == nil {
		t.Error("30-point space passed a 4-point limit")
	}
	if err := cfg.CheckLimits(Limits{MaxCacheKB: 32}); err == nil {
		t.Error("64 KiB cache passed a 32 KiB limit")
	}
	big := cfg
	big.SimRefs = 10_000_000
	if err := big.CheckLimits(DefaultLimits); err == nil {
		t.Error("10M sim_refs passed the default limit")
	}
}

func TestCanonicalIgnoresFieldOrderAndDefaults(t *testing.T) {
	a, err := ParseConfig([]byte(`{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":360,"transfer_ns":60,"cpu_ns":30}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseConfig([]byte(`{"cpu_ns":30,"transfer_ns":60,"latency_ns":360,"bus_bits":[32],"line_bytes":[32],"cache_kb":[8],"assoc":2,"hit_source":"model","seed":1994}`))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical keys differ:\n%s\nvs\n%s", ca, cb)
	}
}

func TestParetoCount(t *testing.T) {
	ds := []Design{
		{Delay: 1, AreaRBE: 2, Pins: 3},
		{Delay: 2, AreaRBE: 3, Pins: 4}, // dominated by the first
		{Delay: 0.5, AreaRBE: 5, Pins: 3},
	}
	MarkPareto(ds)
	if !ds[0].Pareto || ds[1].Pareto || !ds[2].Pareto {
		t.Fatalf("pareto flags = %v %v %v", ds[0].Pareto, ds[1].Pareto, ds[2].Pareto)
	}
	if n := ParetoCount(ds); n != 2 {
		t.Fatalf("ParetoCount = %d, want 2", n)
	}
}
