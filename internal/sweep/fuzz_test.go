package sweep

import (
	"testing"

	"tradeoff/internal/trace"
)

// FuzzSpaceConfig fuzzes the JSON config parser/validator the HTTP
// service feeds untrusted payloads into: whatever the bytes, parsing
// must never panic, and any config it accepts must survive
// canonicalization and re-parsing (the memoization key path).
func FuzzSpaceConfig(f *testing.F) {
	f.Add([]byte(ExampleConfig))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":1,"transfer_ns":1,"cpu_ns":1,"hit_source":"sim:zipf"}`))
	f.Add([]byte(`{"cache_kb":[-1],"line_bytes":[1e9],"bus_bits":[7]}`))
	f.Add([]byte(`{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":-1,"transfer_ns":0,"cpu_ns":1e308,"seed":18446744073709551615}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		// Accepted configs are fully defaulted and in-domain: any
		// prefixed hit source names a known workload, and the mode
		// knob is one of the three enum values.
		if cfg.HitSource != "model" {
			_, name, ok := SourceWorkload(cfg.HitSource)
			if !ok || len(trace.ValidWorkloads([]string{name})) > 0 {
				t.Fatalf("accepted config has hit_source %q", cfg.HitSource)
			}
		}
		if cfg.Mode != ModeExact && cfg.Mode != ModeModel && cfg.Mode != ModeAuto {
			t.Fatalf("accepted config has mode %q", cfg.Mode)
		}
		if cfg.Assoc < 0 || cfg.SimRefs < 0 || cfg.AddrBits <= 0 {
			t.Fatalf("accepted config out of domain: %+v", cfg)
		}
		// The canonical key round-trips through the parser unchanged.
		key, err := cfg.Canonical()
		if err != nil {
			t.Fatalf("canonicalizing accepted config: %v", err)
		}
		cfg2, err := ParseConfig(key)
		if err != nil {
			t.Fatalf("re-parsing canonical key: %v\nkey: %s", err, key)
		}
		key2, err := cfg2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(key) != string(key2) {
			t.Fatalf("canonical key not a fixed point:\n%s\nvs\n%s", key, key2)
		}
	})
}
