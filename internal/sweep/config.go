// Package sweep is the design-space sweep engine: it enumerates a
// cache-size × line-size × bus-width space from a Config, evaluates
// each design's hit ratio (analytic model, cache simulation, or a
// single-pass miss-ratio curve — internal/mrc), mean memory delay per
// reference, chip area (rbe) and package pins, and flags the
// Pareto-efficient designs in (delay, area, pins).
//
// The engine is shared by the sweep CLI (cmd/sweep) and the evaluation
// service (internal/service, cmd/tradeoffd). Evaluation runs on a
// bounded worker pool sized by Workers (default runtime.NumCPU());
// output ordering is deterministic — identical to a serial sweep —
// regardless of worker completion order.
package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"tradeoff/internal/model"
	"tradeoff/internal/mrc"
	"tradeoff/internal/trace"
)

// Config is the JSON schema of a design-space sweep. The zero value of
// every optional field selects its documented default via SetDefaults.
type Config struct {
	CacheKB    []int   `json:"cache_kb"`     // cache sizes in KiB
	LineBytes  []int   `json:"line_bytes"`   // line sizes
	BusBits    []int   `json:"bus_bits"`     // external data bus widths in bits
	Assoc      int     `json:"assoc"`        // associativity (default 2)
	LatencyNS  float64 `json:"latency_ns"`   // memory access latency
	TransferNS float64 `json:"transfer_ns"`  // one bus transfer, any width
	CPUNS      float64 `json:"cpu_ns"`       // processor cycle time
	AddrBits   int     `json:"addr_bits"`    // address bus width (default 32)
	CtrlPins   int     `json:"control_pins"` // control pin allowance (default 40)
	HitSource  string  `json:"hit_source"`   // "model", "an:", "sim:", "mrc:" or "mrc~:<workload>"
	Mode       string  `json:"mode"`         // "exact", "model" or "auto" (default "exact")
	SimRefs    int     `json:"sim_refs"`     // references per simulated point (default 200000)
	Seed       uint64  `json:"seed"`
	MRCRate    float64 `json:"mrc_rate"`   // mrc~: initial sampling rate (default 0.1)
	MRCBudget  int     `json:"mrc_budget"` // mrc~: max tracked blocks (default 8192)

	// Levels adds cache levels below the first: entry i describes
	// level i+2's axes (the top-level CacheKB/LineBytes/BusBits axes
	// describe L1). Empty means the classic single-level sweep; the
	// field is omitted from canonical keys then, so existing flat
	// configs memoize — and golden-test — identically.
	Levels []LevelAxes `json:"levels,omitempty"`
}

// LevelAxes is one additional cache level's slice of the design space.
// Combinations that break hierarchy monotonicity (a level smaller than
// the one above it, or with a shorter line) are skipped at enumeration
// rather than rejected, so coarse per-level axes compose freely.
type LevelAxes struct {
	CacheKB   []int `json:"cache_kb"`             // level capacities in KiB
	LineBytes []int `json:"line_bytes,omitempty"` // empty: inherit the line above
	Assoc     int   `json:"assoc,omitempty"`      // 0: inherit the top-level assoc
	// LatencyNS is the level's access latency; it must be positive,
	// non-decreasing with depth, and at most the memory latency_ns
	// (deeper must not be faster than shallower, and no cache level
	// slower than memory itself).
	LatencyNS float64 `json:"latency_ns"`
}

// Evaluation modes: how the mode knob reinterprets hit_source.
// ModeExact prices hit_source exactly as written. ModeModel re-prices
// any workload-bearing source ("sim:", "mrc:", "mrc~:") with the
// closed-form analytic tier (internal/model) and errors if the
// workload is not covered. ModeAuto does the same but falls back to
// the written source instead of erroring — the "answer fast when you
// can, answer right when you must" knob.
const (
	ModeExact = "exact"
	ModeModel = "model"
	ModeAuto  = "auto"
)

// hitSourcePrefixes are the workload-bearing hit-source forms, in
// match order ("mrc~:" before "mrc:" so CutPrefix cannot mis-split).
var hitSourcePrefixes = []string{"an:", "sim:", "mrc~:", "mrc:"}

// SourceWorkload splits a hit source into its prefix and workload
// name. The bare "model" source (the calibrated miss-ratio surface)
// carries no workload: ok is false.
func SourceWorkload(hitSource string) (prefix, workload string, ok bool) {
	for _, p := range hitSourcePrefixes {
		if name, found := strings.CutPrefix(hitSource, p); found {
			return p, name, true
		}
	}
	return "", "", false
}

// validateHitSource rejects malformed hit sources at validation time.
// Every prefixed source must name a known workload: a bare prefix
// ("mrc:") or an unknown name used to pass Validate and only fail
// deep inside the run, after the service had already admitted and
// memoized the request.
func validateHitSource(hitSource string) error {
	if hitSource == "model" {
		return nil
	}
	prefix, name, ok := SourceWorkload(hitSource)
	if !ok {
		return fmt.Errorf("sweep: hit_source %q, want \"model\", \"an:\", \"sim:\", \"mrc:\" or \"mrc~:<workload>\"", hitSource)
	}
	if name == "" {
		return fmt.Errorf("sweep: hit_source %q names no workload: %q must be followed by one of %s",
			hitSource, prefix, strings.Join(trace.Workloads(), ", "))
	}
	if unknown := trace.ValidWorkloads([]string{name}); len(unknown) > 0 {
		return fmt.Errorf("sweep: hit_source %q: unknown workload %q, want one of %s",
			hitSource, name, strings.Join(trace.Workloads(), ", "))
	}
	return nil
}

// EffectiveHitSource resolves the Mode knob against HitSource and
// returns the source the engine actually prices. ModeExact (and the
// already-analytic "an:"/"model" sources) pass through; ModeModel
// maps "sim:w"/"mrc:w"/"mrc~:w" to "an:w" when the analytic tier
// covers w and errors otherwise; ModeAuto falls back to the written
// source instead of erroring. It assumes SetDefaults has run.
func (c Config) EffectiveHitSource() (string, error) {
	if c.Mode == "" || c.Mode == ModeExact {
		return c.HitSource, nil
	}
	prefix, name, ok := SourceWorkload(c.HitSource)
	if !ok || prefix == "an:" {
		return c.HitSource, nil // no workload to re-price, or already analytic
	}
	if model.Covered(name) {
		return "an:" + name, nil
	}
	if c.Mode == ModeAuto {
		return c.HitSource, nil
	}
	return "", fmt.Errorf("sweep: mode %q: no analytic model covers workload %q (hit_source %q); use mode %q to fall back",
		ModeModel, name, c.HitSource, ModeAuto)
}

// ExampleConfig is a commented-out-free example configuration, printed
// by `sweep -example` and used by the golden tests.
const ExampleConfig = `{
  "cache_kb":    [4, 8, 16, 32, 64],
  "line_bytes":  [16, 32, 64],
  "bus_bits":    [32, 64],
  "assoc":       2,
  "latency_ns":  360,
  "transfer_ns": 60,
  "cpu_ns":      30,
  "hit_source":  "model"
}`

// SetDefaults fills zero-valued optional fields with their defaults.
func (c *Config) SetDefaults() {
	if c.Assoc == 0 {
		c.Assoc = 2
	}
	if c.AddrBits == 0 {
		c.AddrBits = 32
	}
	if c.CtrlPins == 0 {
		c.CtrlPins = 40
	}
	if c.HitSource == "" {
		c.HitSource = "model"
	}
	if c.Mode == "" {
		c.Mode = ModeExact
	}
	if c.SimRefs == 0 {
		c.SimRefs = 200_000
	}
	if c.Seed == 0 {
		c.Seed = 1994
	}
	def := mrc.DefaultSampler()
	if c.MRCRate == 0 {
		c.MRCRate = def.Rate
	}
	if c.MRCBudget == 0 {
		c.MRCBudget = def.Budget
	}
	for i := range c.Levels {
		if c.Levels[i].Assoc == 0 {
			c.Levels[i].Assoc = c.Assoc
		}
	}
}

// Validate reports configurations outside the engine's domain. It
// assumes SetDefaults has run.
func (c *Config) Validate() error {
	switch {
	case len(c.CacheKB) == 0 || len(c.LineBytes) == 0 || len(c.BusBits) == 0:
		return fmt.Errorf("sweep: cache_kb, line_bytes and bus_bits must be non-empty")
	case c.LatencyNS <= 0 || c.TransferNS <= 0 || c.CPUNS <= 0:
		return fmt.Errorf("sweep: latency_ns, transfer_ns and cpu_ns must be positive")
	case c.Assoc < 0:
		return fmt.Errorf("sweep: assoc = %d, want >= 0", c.Assoc)
	case c.AddrBits <= 0 || c.AddrBits > 128:
		return fmt.Errorf("sweep: addr_bits = %d, want in (0, 128]", c.AddrBits)
	case c.CtrlPins < 0:
		return fmt.Errorf("sweep: control_pins = %d, want >= 0", c.CtrlPins)
	case c.SimRefs < 0:
		return fmt.Errorf("sweep: sim_refs = %d, want >= 0", c.SimRefs)
	}
	for _, kb := range c.CacheKB {
		if kb <= 0 {
			return fmt.Errorf("sweep: cache_kb entry %d, want > 0", kb)
		}
	}
	for _, l := range c.LineBytes {
		if l <= 0 {
			return fmt.Errorf("sweep: line_bytes entry %d, want > 0", l)
		}
	}
	for _, b := range c.BusBits {
		if b <= 0 || b%8 != 0 {
			return fmt.Errorf("sweep: bus_bits entry %d, want a positive multiple of 8", b)
		}
	}
	if err := validateHitSource(c.HitSource); err != nil {
		return err
	}
	switch c.Mode {
	case ModeExact, ModeModel, ModeAuto:
	default:
		return fmt.Errorf("sweep: mode %q, want %q, %q or %q", c.Mode, ModeExact, ModeModel, ModeAuto)
	}
	if err := (mrc.SamplerConfig{Rate: c.MRCRate, Budget: c.MRCBudget}).Validate(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	prevLatency := 0.0
	for i, lv := range c.Levels {
		if len(lv.CacheKB) == 0 {
			return fmt.Errorf("sweep: levels[%d].cache_kb must be non-empty", i)
		}
		for _, kb := range lv.CacheKB {
			if kb <= 0 {
				return fmt.Errorf("sweep: levels[%d].cache_kb entry %d, want > 0", i, kb)
			}
		}
		for _, l := range lv.LineBytes {
			if l <= 0 {
				return fmt.Errorf("sweep: levels[%d].line_bytes entry %d, want > 0", i, l)
			}
		}
		if lv.Assoc < 0 {
			return fmt.Errorf("sweep: levels[%d].assoc = %d, want >= 0", i, lv.Assoc)
		}
		if lv.LatencyNS <= 0 || lv.LatencyNS < prevLatency || lv.LatencyNS > c.LatencyNS {
			return fmt.Errorf("sweep: levels[%d].latency_ns = %g, want positive, non-decreasing with depth, and at most latency_ns = %g",
				i, lv.LatencyNS, c.LatencyNS)
		}
		prevLatency = lv.LatencyNS
	}
	return nil
}

// Limits bounds the work a single sweep may request — the service
// applies these to untrusted payloads so a request cannot allocate an
// absurd simulated cache or monopolize the pool. Zero fields mean
// "no limit" for that dimension.
type Limits struct {
	MaxPoints  int // design points after enumeration
	MaxCacheKB int // largest simulated cache, KiB
	MaxSimRefs int // simulated references per point
}

// DefaultLimits is what the service enforces unless configured
// otherwise: generous for interactive use, stingy for abuse.
var DefaultLimits = Limits{MaxPoints: 4096, MaxCacheKB: 1 << 16, MaxSimRefs: 5_000_000}

// CheckLimits reports whether the configuration fits within lim.
// It assumes SetDefaults has run.
func (c *Config) CheckLimits(lim Limits) error {
	n := len(c.CacheKB) * len(c.LineBytes) * len(c.BusBits)
	for _, lv := range c.Levels {
		lines := len(lv.LineBytes)
		if lines == 0 {
			lines = 1 // inherited line: one choice per combination
		}
		n *= len(lv.CacheKB) * lines
	}
	if lim.MaxPoints > 0 && n > lim.MaxPoints {
		return fmt.Errorf("sweep: %d design points exceeds the limit of %d", n, lim.MaxPoints)
	}
	if lim.MaxCacheKB > 0 {
		for _, kb := range c.CacheKB {
			if kb > lim.MaxCacheKB {
				return fmt.Errorf("sweep: cache_kb %d exceeds the limit of %d", kb, lim.MaxCacheKB)
			}
		}
		for i, lv := range c.Levels {
			for _, kb := range lv.CacheKB {
				if kb > lim.MaxCacheKB {
					return fmt.Errorf("sweep: levels[%d].cache_kb %d exceeds the limit of %d", i, kb, lim.MaxCacheKB)
				}
			}
		}
	}
	if lim.MaxSimRefs > 0 && c.SimRefs > lim.MaxSimRefs {
		return fmt.Errorf("sweep: sim_refs %d exceeds the limit of %d", c.SimRefs, lim.MaxSimRefs)
	}
	return nil
}

// ParseConfig decodes a JSON sweep configuration, applies defaults and
// validates it. This is the single entry point both the CLI and the
// HTTP service use, so their parameter-domain checks cannot drift.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("sweep: parsing config: %w", err)
	}
	cfg.SetDefaults()
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Canonical returns the canonicalized JSON encoding of the config with
// defaults applied — a deterministic memoization key: two requests that
// differ only in field order, whitespace, or spelled-out defaults
// canonicalize identically.
func (c Config) Canonical() ([]byte, error) {
	c.SetDefaults()
	return json.Marshal(c)
}
