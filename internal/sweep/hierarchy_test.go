package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/trace"
)

func hierCfg(source string) Config {
	return Config{
		CacheKB: []int{4, 8}, LineBytes: []int{32}, BusBits: []int{64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		HitSource: source, SimRefs: 50_000,
		Levels: []LevelAxes{
			{CacheKB: []int{32, 64}, LatencyNS: 90},
			{CacheKB: []int{256}, LatencyNS: 180},
		},
	}
}

func TestHierarchySweepEnumeration(t *testing.T) {
	cfg := hierCfg("model")
	ds, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 L1 sizes × 2 L2 sizes × 1 L3 size, all monotone: 4 points.
	if len(ds) != 4 {
		t.Fatalf("designs = %d, want 4", len(ds))
	}
	for _, d := range ds {
		if len(d.Levels) != 2 {
			t.Fatalf("design %+v: %d deeper levels, want 2", d, len(d.Levels))
		}
		// Inherited line size.
		if d.Levels[0].LineBytes != d.LineBytes || d.Levels[1].LineBytes != d.LineBytes {
			t.Fatalf("levels did not inherit the L1 line: %+v", d)
		}
		// Monotone capacities.
		if d.Levels[0].CacheKB <= d.CacheKB || d.Levels[1].CacheKB <= d.Levels[0].CacheKB {
			t.Fatalf("non-monotone hierarchy enumerated: %+v", d)
		}
		// Area sums the levels.
		sum := d.Levels[0].AreaRBE + d.Levels[1].AreaRBE
		if d.AreaRBE <= sum || d.Levels[0].AreaRBE <= 0 {
			t.Fatalf("area %g not above deeper levels' %g: %+v", d.AreaRBE, sum, d)
		}
		if d.GlobalHitRatio < d.HitRatio {
			t.Fatalf("global hit ratio below L1's: %+v", d)
		}
	}
}

func TestHierarchySweepMonotonicitySkips(t *testing.T) {
	// An L2 axis that includes sizes at or below L1's: those combos
	// vanish instead of erroring.
	cfg := Config{
		CacheKB: []int{8}, LineBytes: []int{32}, BusBits: []int{64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		Levels: []LevelAxes{{CacheKB: []int{4, 8, 64}, LatencyNS: 90}},
	}
	ds, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Levels[0].CacheKB != 64 {
		t.Fatalf("expected only the 64K L2 to survive, got %+v", ds)
	}
	// All-skipped is an empty-space error, like the line < 2D case.
	cfg.Levels[0].CacheKB = []int{4, 8}
	if _, err := Run(context.Background(), cfg, 0); err == nil {
		t.Fatal("fully non-monotone space did not error")
	}
}

func TestHierarchySweepBeatsFlat(t *testing.T) {
	// Adding levels can only reduce mean delay at equal L1: every
	// hierarchy design must beat (or tie) the flat design with the
	// same L1 and bus, and costs strictly more area.
	hier := hierCfg("mrc:ear")
	flat := hier
	flat.Levels = nil
	hd, err := Run(context.Background(), hier, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := Run(context.Background(), flat, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hd {
		for _, f := range fd {
			if h.CacheKB != f.CacheKB || h.LineBytes != f.LineBytes || h.BusBits != f.BusBits {
				continue
			}
			if h.Delay > f.Delay+1e-9 {
				t.Errorf("hierarchy %+v slower than flat %+v", h, f)
			}
			if h.AreaRBE <= f.AreaRBE {
				t.Errorf("hierarchy %+v not larger than flat %+v", h, f)
			}
			if h.HitRatio != f.HitRatio {
				t.Errorf("L1 hit ratio drifted: %g vs flat %g", h.HitRatio, f.HitRatio)
			}
		}
	}
}

func TestHierarchySweepWorth(t *testing.T) {
	// The stack property makes a strictly bigger level catch some of
	// the miss stream on the ear curve, so each level's worth must be
	// positive, and the local ratios must be consistent with the
	// global: g = 1 − Π(1 − local_i).
	ds, err := Run(context.Background(), hierCfg("an:ear"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		miss := 1 - d.HitRatio
		for _, l := range d.Levels {
			if l.WorthHR <= 0 {
				t.Errorf("level %+v of %+v priced non-positive", l, d)
			}
			if l.LocalHitRatio < 0 || l.LocalHitRatio > 1 {
				t.Errorf("local hit ratio out of range: %+v", l)
			}
			miss *= 1 - l.LocalHitRatio
		}
		if g := 1 - miss; g < d.GlobalHitRatio-1e-9 || g > d.GlobalHitRatio+1e-9 {
			t.Errorf("global hit ratio %g inconsistent with locals (%g): %+v", d.GlobalHitRatio, g, d)
		}
	}
}

func TestHierarchySweepMeasured(t *testing.T) {
	// The sim: source must replay an actual cache.Hierarchy — compare
	// one design point against a direct replay.
	cfg := Config{
		CacheKB: []int{4}, LineBytes: []int{32}, BusBits: []int{64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
		HitSource: "sim:ear", SimRefs: 30_000,
		Levels: []LevelAxes{{CacheKB: []int{64}, Assoc: 4, LatencyNS: 90}},
	}
	ds, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("designs = %d, want 1", len(ds))
	}
	h, err := cache.NewHierarchy(
		cache.Config{Size: 4 << 10, LineSize: 32, Assoc: 2},
		cache.Config{Size: 64 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.Collect(trace.MustWorkload("ear", 1994), 30_000) {
		h.Access(r.Addr, r.Write)
	}
	s := h.Stats()
	if ds[0].HitRatio != s.L1HitRatio() || ds[0].Levels[0].LocalHitRatio != s.L2LocalHitRatio() {
		t.Fatalf("measured sweep %+v disagrees with direct replay %+v", ds[0], s)
	}
	// The Measure seam overrides the private replay.
	called := false
	ds2, err := RunCaches(context.Background(), cfg, 0, Caches{
		Measure: func(ctx context.Context, workload string, seed uint64, refs int, levels []cache.Config) (cache.HierarchyStats, error) {
			called = true
			if workload != "ear" || seed != 1994 || refs != 30_000 || len(levels) != 2 {
				t.Errorf("measure called with (%q, %d, %d, %d levels)", workload, seed, refs, len(levels))
			}
			return replayHierarchy(ctx, workload, seed, refs, levels)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("Caches.Measure not used")
	}
	if ds2[0].HitRatio != ds[0].HitRatio {
		t.Fatal("Measure seam changed the result")
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	base := hierCfg("model")
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty level cache_kb", func(c *Config) { c.Levels[0].CacheKB = nil }},
		{"non-positive level cache_kb", func(c *Config) { c.Levels[0].CacheKB = []int{0} }},
		{"non-positive level line", func(c *Config) { c.Levels[0].LineBytes = []int{-16} }},
		{"negative level assoc", func(c *Config) { c.Levels[0].Assoc = -1 }},
		{"zero level latency", func(c *Config) { c.Levels[0].LatencyNS = 0 }},
		{"decreasing latency", func(c *Config) { c.Levels[1].LatencyNS = 45 }},
		{"level slower than memory", func(c *Config) { c.Levels[1].LatencyNS = 1000 }},
	} {
		cfg := base
		cfg.Levels = append([]LevelAxes(nil), base.Levels...)
		tc.mutate(&cfg)
		cfg.SetDefaults()
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestHierarchyCheckLimits(t *testing.T) {
	cfg := hierCfg("model")
	cfg.SetDefaults()
	// 2 × 1 × 1 × (2×1) × (1×1) = 4 enumerated upper bound.
	if err := cfg.CheckLimits(Limits{MaxPoints: 4}); err != nil {
		t.Fatalf("4-point hierarchy space failed a 4-point limit: %v", err)
	}
	if err := cfg.CheckLimits(Limits{MaxPoints: 3}); err == nil {
		t.Fatal("4-point hierarchy space passed a 3-point limit")
	}
	if err := cfg.CheckLimits(Limits{MaxCacheKB: 128}); err == nil {
		t.Fatal("256 KiB level passed a 128 KiB limit")
	}
}

func TestHierarchyCSV(t *testing.T) {
	ds, err := Run(context.Background(), hierCfg("model"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasSuffix(lines[0], ",levels") {
		t.Fatalf("hierarchy CSV header missing levels column: %q", lines[0])
	}
	if !strings.Contains(lines[1], ",32:32/256:32") && !strings.Contains(lines[1], ",64:32/256:32") {
		t.Fatalf("levels cell missing: %q", lines[1])
	}
	// Flat output keeps the original header, byte for byte.
	flat := hierCfg("model")
	flat.Levels = nil
	fds, err := Run(context.Background(), flat, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteCSV(&buf, fds); err != nil {
		t.Fatal(err)
	}
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; got != "cache_kb,line_bytes,bus_bits,hit_ratio,hit_source,delay_per_ref,area_rbe,pins,pareto" {
		t.Fatalf("flat CSV header changed: %q", got)
	}
}

func TestHierarchyCanonicalStability(t *testing.T) {
	// A flat config's canonical key must not mention levels at all —
	// pre-refactor memo keys and goldens depend on it.
	flat := Config{
		CacheKB: []int{4}, LineBytes: []int{32}, BusBits: []int{64},
		LatencyNS: 360, TransferNS: 60, CPUNS: 30,
	}
	key, err := flat.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(key, []byte("levels")) {
		t.Fatalf("flat canonical key mentions levels: %s", key)
	}
	hier := hierCfg("model")
	hkey, err := hier.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(hkey, []byte(`"levels"`)) {
		t.Fatalf("hierarchy canonical key missing levels: %s", hkey)
	}
}
