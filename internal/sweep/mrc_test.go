package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"tradeoff/internal/mrc"
	"tradeoff/internal/obs"
	"tradeoff/internal/trace"
)

// mrcGrid is the 64-point grid (8 cache sizes × 4 line sizes × 2 bus
// widths, no point filtered since every line spans two transfers of
// either bus) shared by the single-pass and accuracy tests — the same
// grid BenchmarkSweepMRC and BenchmarkSweepSim race on.
func mrcGrid(source string) Config {
	return Config{
		CacheKB:    []int{1, 2, 4, 8, 16, 32, 64, 128},
		LineBytes:  []int{16, 32, 64, 128},
		BusBits:    []int{32, 64},
		LatencyNS:  360,
		TransferNS: 60,
		CPUNS:      30,
		HitSource:  source,
		SimRefs:    20000,
	}
}

// TestMRCSweepSinglePass is the acceptance demonstration: an
// MRC-backed sweep over a 64-point grid pays exactly one trace pass
// per line size, shown by counting mrc_pass spans in the trace export.
func TestMRCSweepSinglePass(t *testing.T) {
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	cfg := mrcGrid("mrc:ear")
	ds, err := Run(ctx, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 64 {
		t.Fatalf("grid produced %d designs, want 64", len(ds))
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	passes := 0
	for _, ev := range events {
		if ev.Name == "mrc_pass" {
			passes++
		}
	}
	if want := len(cfg.LineBytes); passes != want {
		t.Fatalf("%d mrc_pass spans for %d designs, want exactly %d (one per line size)",
			passes, len(ds), want)
	}
}

// TestMRCSweepMatchesSimWithinEpsilon compares the MRC-backed sweep's
// hit ratios against the re-simulation sweep on the same grid. Both
// use assoc 2 (the default), so the MRC side goes through Smith's
// correction; the bound mirrors the mrc package's tolerance harness.
func TestMRCSweepMatchesSimWithinEpsilon(t *testing.T) {
	const eps = 0.20
	mrcDs, err := Run(context.Background(), mrcGrid("mrc:ear"), 0)
	if err != nil {
		t.Fatal(err)
	}
	simDs, err := Run(context.Background(), mrcGrid("sim:ear"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrcDs) != len(simDs) {
		t.Fatalf("mrc sweep has %d designs, sim sweep %d", len(mrcDs), len(simDs))
	}
	for i := range mrcDs {
		m, s := mrcDs[i], simDs[i]
		if m.CacheKB != s.CacheKB || m.LineBytes != s.LineBytes || m.BusBits != s.BusBits {
			t.Fatalf("design %d mismatch: %+v vs %+v", i, m, s)
		}
		if d := math.Abs(m.HitRatio - s.HitRatio); d > eps {
			t.Errorf("cache=%dKB line=%d: mrc hit ratio %v, sim %v (diff %g > %g)",
				m.CacheKB, m.LineBytes, m.HitRatio, s.HitRatio, d, eps)
		}
	}
}

// TestMRCSampledSweepRuns exercises the "mrc~:" source end to end and
// checks it against the exact MRC sweep.
func TestMRCSampledSweepRuns(t *testing.T) {
	exact, err := Run(context.Background(), mrcGrid("mrc:ear"), 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(context.Background(), mrcGrid("mrc~:ear"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != len(exact) {
		t.Fatalf("sampled sweep has %d designs, exact %d", len(sampled), len(exact))
	}
	for i := range sampled {
		if d := math.Abs(sampled[i].HitRatio - exact[i].HitRatio); d > 0.10 {
			t.Errorf("cache=%dKB line=%d: sampled %v, exact %v (diff %g)",
				sampled[i].CacheKB, sampled[i].LineBytes, sampled[i].HitRatio, exact[i].HitRatio, d)
		}
	}
}

// TestRunCurvesSharesCache proves curves survive across sweeps when
// the caller owns the cache: the second sweep performs zero passes.
func TestRunCurvesSharesCache(t *testing.T) {
	curves := mrc.NewCurveCache(0, 0)
	if _, err := RunCurves(context.Background(), mrcGrid("mrc:ear"), 0, curves); err != nil {
		t.Fatal(err)
	}
	n := curves.Len()
	if n != 4 {
		t.Fatalf("first sweep cached %d curves, want 4 (one per line size)", n)
	}
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	if _, err := RunCurves(ctx, mrcGrid("mrc:ear"), 0, curves); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("mrc_pass")) {
		t.Fatal("second sweep over a shared curve cache re-profiled a trace")
	}
}

// TestMRCZipfWorkload covers the zipf workload name through the mrc
// source, and the sim:zipf path through trace.NewWorkload.
func TestMRCZipfWorkload(t *testing.T) {
	cfg := mrcGrid("mrc:" + trace.Zipf)
	cfg.CacheKB = []int{4, 16}
	cfg.LineBytes = []int{32}
	cfg.BusBits = []int{32}
	ds, err := Run(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("got %d designs, want 2", len(ds))
	}
	if ds[0].HitRatio <= 0 || ds[0].HitRatio >= 1 {
		t.Fatalf("zipf hit ratio %v outside (0, 1)", ds[0].HitRatio)
	}
	if ds[1].HitRatio < ds[0].HitRatio {
		t.Fatalf("hit ratio fell with cache size: %v then %v", ds[0].HitRatio, ds[1].HitRatio)
	}
}

// TestValidateMRCSources pins the new hit_source grammar and sampler
// domain checks.
func TestValidateMRCSources(t *testing.T) {
	for _, src := range []string{"mrc:ear", "mrc~:ear", "mrc:zipf", "mrc~:nasa7"} {
		cfg := mrcGrid(src)
		cfg.SetDefaults()
		if err := cfg.Validate(); err != nil {
			t.Errorf("hit_source %q rejected: %v", src, err)
		}
	}
	bad := mrcGrid("mrc~:ear")
	bad.MRCRate = 1.5
	bad.SetDefaults()
	if err := bad.Validate(); err == nil {
		t.Error("mrc_rate 1.5 accepted")
	}
	bad = mrcGrid("mrc~:ear")
	bad.MRCBudget = -1
	bad.SetDefaults()
	if err := bad.Validate(); err == nil {
		t.Error("mrc_budget -1 accepted")
	}
	// An unknown workload surfaces at evaluation, like sim:'s behavior.
	if _, err := Run(context.Background(), mrcGrid("mrc:mystery"), 0); err == nil {
		t.Error("mrc:mystery sweep succeeded")
	}
}
