package sweep

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tradeoff/internal/area"
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/engine"
	"tradeoff/internal/missratio"
	"tradeoff/internal/model"
	"tradeoff/internal/mrc"
	"tradeoff/internal/obs"
	"tradeoff/internal/trace"
)

// Design is one evaluated point of the space: the knobs, the measured
// or modeled hit ratio, and the three cost/performance axes of the
// §5.2 study.
type Design struct {
	CacheKB   int     `json:"cache_kb"`
	LineBytes int     `json:"line_bytes"`
	BusBits   int     `json:"bus_bits"`
	HitRatio  float64 `json:"hit_ratio"`
	HitSource string  `json:"hit_source"` // the pricer that produced HitRatio, after Mode resolution
	Delay     float64 `json:"delay_per_ref"`
	AreaRBE   float64 `json:"area_rbe"`
	Pins      int     `json:"pins"`
	Pareto    bool    `json:"pareto"`
}

// point is one enumerated (cache, line, bus) combination awaiting
// evaluation.
type point struct {
	cacheKB, line, busBits int
}

// Run evaluates the whole design space on the shared engine.Map pool
// and returns the designs in enumeration order (cache size outermost,
// bus width innermost) with Pareto flags set — byte-for-byte the order
// a serial sweep produces. workers <= 0 selects runtime.NumCPU(). The
// context cancels in-flight evaluation: a disconnected HTTP client or
// an interrupted CLI stops the pool early with ctx.Err().
func Run(ctx context.Context, cfg Config, workers int) ([]Design, error) {
	return RunCurves(ctx, cfg, workers, nil)
}

// RunCurves is Run with a caller-owned miss-ratio-curve cache backing
// the "mrc:"/"mrc~:" hit sources, so curves survive across sweeps (the
// tradeoffd service holds one for its lifetime). A nil cache is fine —
// an mrc sweep then profiles into a private cache, still paying
// exactly one trace pass per (workload, line size) within that sweep.
func RunCurves(ctx context.Context, cfg Config, workers int, curves *mrc.CurveCache) ([]Design, error) {
	return RunCaches(ctx, cfg, workers, Caches{Curves: curves})
}

// Caches holds the caller-owned memoization state a sweep may share
// across requests: exact miss-ratio curves ("mrc:"/"mrc~:") and
// analytic curves ("an:", and "sim:"/"mrc:" re-priced by the mode
// knob). Either field may be nil; the sweep then uses a private cache
// scoped to the one run.
type Caches struct {
	Curves *mrc.CurveCache
	Models *model.Cache
}

// RunCaches is RunCurves generalized to every curve-backed hit source.
func RunCaches(ctx context.Context, cfg Config, workers int, caches Caches) ([]Design, error) {
	cfg.SetDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hit, source, err := hitFunc(cfg, caches)
	if err != nil {
		return nil, err
	}

	var points []point
	for _, kb := range cfg.CacheKB {
		for _, line := range cfg.LineBytes {
			for _, busBits := range cfg.BusBits {
				if line < 2*(busBits/8) {
					continue // a line must span at least two bus transfers
				}
				points = append(points, point{kb, line, busBits})
			}
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty design space (every line < 2D?)")
	}

	ctx = obs.WithSpanName(ctx, "sweep_point")
	out, err := engine.Map(ctx, points, workers, func(ctx context.Context, p point) (Design, error) {
		if s := obs.CurrentSpan(ctx); s != nil {
			s.SetArg("cache_kb", p.cacheKB)
			s.SetArg("line", p.line)
			s.SetArg("bus_bits", p.busBits)
		}
		return evaluate(ctx, cfg, hit, source, p)
	})
	if err != nil {
		return nil, err
	}
	MarkPareto(out)
	return out, nil
}

// evaluate prices one design point: hit ratio from the configured
// source, Eq. (2)-style mean delay per reference, rbe area and pins.
func evaluate(ctx context.Context, cfg Config, hit hitRatioFunc, source string, p point) (Design, error) {
	d := p.busBits / 8
	hr, err := hit(ctx, p.cacheKB<<10, p.line)
	if err != nil {
		return Design{}, err
	}
	c := 1 + cfg.LatencyNS/cfg.CPUNS
	beta := cfg.TransferNS / cfg.CPUNS
	delay := core.MeanDelayPerRef(hr, c, beta, float64(p.line), float64(d))
	rbe, err := area.RBE(area.CacheGeometry{
		Size: p.cacheKB << 10, LineSize: p.line, Assoc: cfg.Assoc, AddrBits: cfg.AddrBits})
	if err != nil {
		return Design{}, err
	}
	pins := area.Pins{DataBits: p.busBits, AddrBits: cfg.AddrBits, Control: cfg.CtrlPins}
	return Design{
		CacheKB: p.cacheKB, LineBytes: p.line, BusBits: p.busBits,
		HitRatio: hr, HitSource: source, Delay: delay, AreaRBE: rbe, Pins: pins.Total(),
	}, nil
}

// hitRatioFunc prices the hit ratio of a (size, line) cache. The
// context carries the worker's span, so curve passes nest under their
// sweep_point in a -trace export.
type hitRatioFunc func(ctx context.Context, sizeBytes, line int) (float64, error)

// mrcSource splits an "mrc:<workload>" or "mrc~:<workload>" hit source
// into its workload name and sampling flag.
func mrcSource(hitSource string) (name string, sampled, ok bool) {
	if name, ok = strings.CutPrefix(hitSource, "mrc~:"); ok {
		return name, true, true
	}
	name, ok = strings.CutPrefix(hitSource, "mrc:")
	return name, false, ok
}

// hitFunc returns the hit-ratio source selected by the config after
// Mode resolution, along with the effective source string recorded on
// every Design: the calibrated design-target surface ("model"), the
// closed-form analytic curve ("an:<name>", internal/model), cache
// simulation of a named workload ("sim:<name>"), or a single-pass
// miss-ratio curve ("mrc:<name>" exact, "mrc~:<name>" SHARDS-sampled).
// Simulated sources build a private trace and cache per call; curve
// sources share one memoized curve per (workload, line size) through
// caches. Either way the returned function is safe for concurrent use
// by the pool.
func hitFunc(cfg Config, caches Caches) (hitRatioFunc, string, error) {
	source, err := cfg.EffectiveHitSource()
	if err != nil {
		return nil, "", err
	}
	if source == "model" {
		m := missratio.DefaultModel()
		return func(_ context.Context, size, line int) (float64, error) {
			return 1 - m.MissRatio(size, line), nil
		}, source, nil
	}
	if name, ok := strings.CutPrefix(source, "an:"); ok {
		models := caches.Models
		if models == nil {
			models = model.NewCache(0, 0)
		}
		spec := model.Spec{Workload: name, Seed: cfg.Seed, Refs: cfg.SimRefs}
		return func(ctx context.Context, size, line int) (float64, error) {
			s := spec
			s.LineSize = line
			c, _, err := models.Get(ctx, s)
			if err != nil {
				return 0, err
			}
			return c.HitRatioAssoc(size, cfg.Assoc), nil
		}, source, nil
	}
	if name, sampled, ok := mrcSource(source); ok {
		curves := caches.Curves
		if curves == nil {
			curves = mrc.NewCurveCache(0, 0)
		}
		spec := mrc.Spec{Workload: name, Seed: cfg.Seed, Refs: cfg.SimRefs, Sampled: sampled}
		if sampled {
			spec.Sampler = mrc.SamplerConfig{Rate: cfg.MRCRate, Budget: cfg.MRCBudget}
		}
		return func(ctx context.Context, size, line int) (float64, error) {
			s := spec
			s.LineSize = line
			c, _, err := curves.Get(ctx, s)
			if err != nil {
				return 0, err
			}
			return c.HitRatioAssoc(size, cfg.Assoc), nil
		}, source, nil
	}
	name := strings.TrimPrefix(source, "sim:")
	return func(_ context.Context, size, line int) (float64, error) {
		src, err := trace.NewWorkload(name, cfg.Seed)
		if err != nil {
			return 0, err
		}
		c, err := cache.New(cache.Config{Size: size, LineSize: line, Assoc: cfg.Assoc})
		if err != nil {
			return 0, err
		}
		return cache.MeasureSource(c, src, cfg.SimRefs).HitRatio, nil
	}, source, nil
}

// MarkPareto flags designs not dominated in (delay, area, pins).
func MarkPareto(ds []Design) {
	for i := range ds {
		a := &ds[i]
		a.Pareto = true
		for j := range ds {
			if i == j {
				continue
			}
			b := &ds[j]
			if b.Delay <= a.Delay && b.AreaRBE <= a.AreaRBE && b.Pins <= a.Pins &&
				(b.Delay < a.Delay || b.AreaRBE < a.AreaRBE || b.Pins < a.Pins) {
				a.Pareto = false
				break
			}
		}
	}
}

// ParetoCount returns the number of Pareto-efficient designs.
func ParetoCount(ds []Design) int {
	n := 0
	for i := range ds {
		if ds[i].Pareto {
			n++
		}
	}
	return n
}

// WriteCSV emits the sweep's canonical CSV: one row per design in
// slice order, with the exact column set and float formatting the
// original serial cmd/sweep produced.
func WriteCSV(w io.Writer, ds []Design) error {
	header := []string{"cache_kb", "line_bytes", "bus_bits", "hit_ratio", "hit_source", "delay_per_ref", "area_rbe", "pins", "pareto"}
	return engine.WriteCSV(w, header, len(ds), func(i int) []string {
		d := &ds[i]
		return []string{
			strconv.Itoa(d.CacheKB), strconv.Itoa(d.LineBytes), strconv.Itoa(d.BusBits),
			strconv.FormatFloat(d.HitRatio, 'f', 5, 64),
			d.HitSource,
			strconv.FormatFloat(d.Delay, 'f', 4, 64),
			strconv.FormatFloat(d.AreaRBE, 'f', 0, 64),
			strconv.Itoa(d.Pins),
			strconv.FormatBool(d.Pareto),
		}
	})
}
