package sweep

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tradeoff/internal/area"
	"tradeoff/internal/cache"
	"tradeoff/internal/core"
	"tradeoff/internal/engine"
	"tradeoff/internal/missratio"
	"tradeoff/internal/model"
	"tradeoff/internal/mrc"
	"tradeoff/internal/obs"
	"tradeoff/internal/trace"
)

// Design is one evaluated point of the space: the knobs, the measured
// or modeled hit ratio, and the three cost/performance axes of the
// §5.2 study. CacheKB/LineBytes/HitRatio always describe the first
// level; for hierarchies Levels carries the deeper levels, AreaRBE
// sums every level, and Delay is the N-level mean memory delay.
type Design struct {
	CacheKB   int     `json:"cache_kb"`
	LineBytes int     `json:"line_bytes"`
	BusBits   int     `json:"bus_bits"`
	HitRatio  float64 `json:"hit_ratio"`
	HitSource string  `json:"hit_source"` // the pricer that produced HitRatio, after Mode resolution
	Delay     float64 `json:"delay_per_ref"`
	AreaRBE   float64 `json:"area_rbe"`
	Pins      int     `json:"pins"`
	Pareto    bool    `json:"pareto"`

	// Hierarchy-only fields; omitted (and zero) on flat sweeps so
	// existing JSON responses and memo keys are byte-identical.
	Levels         []LevelDesign `json:"levels,omitempty"`
	GlobalHitRatio float64       `json:"global_hit_ratio,omitempty"`
	PowerProxy     float64       `json:"power_proxy,omitempty"` // per-reference access-energy proxy (optimize only)
}

// LevelDesign is one level below the first in an evaluated hierarchy.
type LevelDesign struct {
	CacheKB       int     `json:"cache_kb"`
	LineBytes     int     `json:"line_bytes"`
	LocalHitRatio float64 `json:"local_hit_ratio"`
	// WorthHR is the level priced in the paper's currency: the
	// equivalent first-level hit-ratio increase that would match
	// adding this level (core.PriceLevel). Negative means the level
	// hurts at this design point.
	WorthHR float64 `json:"worth_hr"`
	AreaRBE float64 `json:"area_rbe"`
}

// point is one enumerated (cache, line, bus[, deeper levels])
// combination awaiting evaluation.
type point struct {
	cacheKB, line, busBits int
	levels                 []levelPoint // levels 2..N, monotone in size and line
}

// levelPoint is one deeper level's resolved (capacity, line) choice.
type levelPoint struct {
	kb, line int
}

// Run evaluates the whole design space on the shared engine.Map pool
// and returns the designs in enumeration order (cache size outermost,
// bus width innermost) with Pareto flags set — byte-for-byte the order
// a serial sweep produces. workers <= 0 selects runtime.NumCPU(). The
// context cancels in-flight evaluation: a disconnected HTTP client or
// an interrupted CLI stops the pool early with ctx.Err().
func Run(ctx context.Context, cfg Config, workers int) ([]Design, error) {
	return RunCurves(ctx, cfg, workers, nil)
}

// RunCurves is Run with a caller-owned miss-ratio-curve cache backing
// the "mrc:"/"mrc~:" hit sources, so curves survive across sweeps (the
// tradeoffd service holds one for its lifetime). A nil cache is fine —
// an mrc sweep then profiles into a private cache, still paying
// exactly one trace pass per (workload, line size) within that sweep.
func RunCurves(ctx context.Context, cfg Config, workers int, curves *mrc.CurveCache) ([]Design, error) {
	return RunCaches(ctx, cfg, workers, Caches{Curves: curves})
}

// Caches holds the caller-owned memoization state a sweep may share
// across requests: exact miss-ratio curves ("mrc:"/"mrc~:") and
// analytic curves ("an:", and "sim:"/"mrc:" re-priced by the mode
// knob). Any field may be nil; the sweep then uses a private cache
// (or a private trace replay, for Measure) scoped to the one run.
type Caches struct {
	Curves *mrc.CurveCache
	Models *model.Cache
	// Measure replays a workload through an N-level hierarchy for
	// "sim:" sweeps with levels. simjob wires its memoized trace
	// cache in here; sweep cannot import simjob (simjob imports
	// sweep), so the seam is a function value.
	Measure MeasureFunc
}

// MeasureFunc measures an N-level hierarchy's stats by replaying refs
// references of the named workload (seeded deterministically) through
// the level configs, top first.
type MeasureFunc func(ctx context.Context, workload string, seed uint64, refs int, levels []cache.Config) (cache.HierarchyStats, error)

// RunCaches is RunCurves generalized to every curve-backed hit source.
func RunCaches(ctx context.Context, cfg Config, workers int, caches Caches) ([]Design, error) {
	cfg.SetDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hit, source, err := hitFunc(cfg, caches)
	if err != nil {
		return nil, err
	}

	points := enumerate(cfg)
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: empty design space (every line < 2D, or no monotone hierarchy?)")
	}

	ctx = obs.WithSpanName(ctx, "sweep_point")
	out, err := engine.Map(ctx, points, workers, func(ctx context.Context, p point) (Design, error) {
		if s := obs.CurrentSpan(ctx); s != nil {
			s.SetArg("cache_kb", p.cacheKB)
			s.SetArg("line", p.line)
			s.SetArg("bus_bits", p.busBits)
		}
		if len(p.levels) > 0 {
			return evaluateHierarchy(ctx, cfg, caches, hit, source, p)
		}
		return evaluate(ctx, cfg, hit, source, p)
	})
	if err != nil {
		return nil, err
	}
	MarkPareto(out)
	return out, nil
}

// enumerate expands the config's axes into design points in
// deterministic order: cache size outermost, bus width innermost, then
// each deeper level's (capacity, line) axes. Hierarchy combinations
// must grow monotonically — each level strictly larger than the one
// above, lines non-decreasing — everything else is skipped.
func enumerate(cfg Config) []point {
	var points []point
	for _, kb := range cfg.CacheKB {
		for _, line := range cfg.LineBytes {
			for _, busBits := range cfg.BusBits {
				if line < 2*(busBits/8) {
					continue // a line must span at least two bus transfers
				}
				points = extendLevels(points, cfg, point{cacheKB: kb, line: line, busBits: busBits}, 0)
			}
		}
	}
	return points
}

// extendLevels recursively appends every monotone completion of p with
// the axes of cfg.Levels[depth:].
func extendLevels(points []point, cfg Config, p point, depth int) []point {
	if depth == len(cfg.Levels) {
		return append(points, p)
	}
	prevKB, prevLine := p.cacheKB, p.line
	if depth > 0 {
		prev := p.levels[depth-1]
		prevKB, prevLine = prev.kb, prev.line
	}
	lines := cfg.Levels[depth].LineBytes
	if len(lines) == 0 {
		lines = []int{prevLine} // inherit the line above
	}
	for _, kb := range cfg.Levels[depth].CacheKB {
		if kb <= prevKB {
			continue
		}
		for _, line := range lines {
			if line < prevLine {
				continue
			}
			next := p
			next.levels = append(p.levels[:depth:depth], levelPoint{kb: kb, line: line})
			points = extendLevels(points, cfg, next, depth+1)
		}
	}
	return points
}

// evaluate prices one design point: hit ratio from the configured
// source, Eq. (2)-style mean delay per reference, rbe area and pins.
func evaluate(ctx context.Context, cfg Config, hit hitRatioFunc, source string, p point) (Design, error) {
	d := p.busBits / 8
	hr, err := hit(ctx, p.cacheKB<<10, p.line)
	if err != nil {
		return Design{}, err
	}
	c := 1 + cfg.LatencyNS/cfg.CPUNS
	beta := cfg.TransferNS / cfg.CPUNS
	delay := core.MeanDelayPerRef(hr, c, beta, float64(p.line), float64(d))
	rbe, err := area.RBE(area.CacheGeometry{
		Size: p.cacheKB << 10, LineSize: p.line, Assoc: cfg.Assoc, AddrBits: cfg.AddrBits})
	if err != nil {
		return Design{}, err
	}
	pins := area.Pins{DataBits: p.busBits, AddrBits: cfg.AddrBits, Control: cfg.CtrlPins}
	return Design{
		CacheKB: p.cacheKB, LineBytes: p.line, BusBits: p.busBits,
		HitRatio: hr, HitSource: source, Delay: delay, AreaRBE: rbe, Pins: pins.Total(),
	}, nil
}

// evaluateHierarchy prices one N-level design point. Local hit ratios
// come from a real hierarchy replay for "sim:" sources and from the
// LRU stack property for curve sources: a level of capacity S_i has
// global hit ratio C(S_i) on the same curve, so its local ratio over
// the miss stream above is (C(S_i) − C(S_{i−1})) / (1 − C(S_{i−1})).
// Delay is core.HierarchyDelay with the memory line fill priced at
// the last level's line size; area sums every level's rbe.
func evaluateHierarchy(ctx context.Context, cfg Config, caches Caches, hit hitRatioFunc, source string, p point) (Design, error) {
	d := p.busBits / 8
	c := 1 + cfg.LatencyNS/cfg.CPUNS
	beta := cfg.TransferNS / cfg.CPUNS
	lastLine := p.levels[len(p.levels)-1].line
	tMem := c + float64(lastLine)/float64(d)*beta

	var locals []float64
	var global float64
	var err error
	if name, ok := strings.CutPrefix(source, "sim:"); ok {
		locals, global, err = measuredLocals(ctx, cfg, caches, name, p)
	} else {
		locals, global, err = curveLocals(ctx, hit, p)
	}
	if err != nil {
		return Design{}, err
	}

	specs := make([]core.LevelSpec, len(locals))
	specs[0] = core.LevelSpec{HitRatio: clampRatio(locals[0], 1-1e-12), Time: 1}
	for i := range p.levels {
		specs[i+1] = core.LevelSpec{
			HitRatio: clampRatio(locals[i+1], 1),
			Time:     1 + cfg.Levels[i].LatencyNS/cfg.CPUNS,
		}
	}
	delay, err := core.HierarchyDelay(specs, tMem)
	if err != nil {
		return Design{}, err
	}

	geom := func(kb, line, assoc int) area.CacheGeometry {
		return area.CacheGeometry{Size: kb << 10, LineSize: line, Assoc: assoc, AddrBits: cfg.AddrBits}
	}
	rbe, err := area.RBE(geom(p.cacheKB, p.line, cfg.Assoc))
	if err != nil {
		return Design{}, err
	}
	levels := make([]LevelDesign, len(p.levels))
	total := rbe
	for i, lp := range p.levels {
		lr, err := area.RBE(geom(lp.kb, lp.line, cfg.Levels[i].Assoc))
		if err != nil {
			return Design{}, err
		}
		total += lr
		// The level's worth in equivalent first-level hit ratio: both
		// delays mapped onto the single-level scale h + (1−h)·tMem
		// differ by (base − with)/(tMem − 1), the PriceLevel currency
		// (signed, so a hurtful level prices negative instead of
		// failing the sweep).
		without := append(append([]core.LevelSpec(nil), specs[:i+1]...), specs[i+2:]...)
		base, err := core.HierarchyDelay(without, tMem)
		if err != nil {
			return Design{}, err
		}
		levels[i] = LevelDesign{
			CacheKB: lp.kb, LineBytes: lp.line,
			LocalHitRatio: specs[i+1].HitRatio,
			WorthHR:       (base - delay) / (tMem - 1),
			AreaRBE:       lr,
		}
	}

	pins := area.Pins{DataBits: p.busBits, AddrBits: cfg.AddrBits, Control: cfg.CtrlPins}
	return Design{
		CacheKB: p.cacheKB, LineBytes: p.line, BusBits: p.busBits,
		HitRatio: specs[0].HitRatio, HitSource: source, Delay: delay,
		AreaRBE: total, Pins: pins.Total(),
		Levels: levels, GlobalHitRatio: global,
	}, nil
}

// measuredLocals replays the workload through a real N-level hierarchy
// (via the shared simjob seam when wired, else a private trace).
func measuredLocals(ctx context.Context, cfg Config, caches Caches, workload string, p point) ([]float64, float64, error) {
	cfgs := make([]cache.Config, 0, len(p.levels)+1)
	cfgs = append(cfgs, cache.Config{Size: p.cacheKB << 10, LineSize: p.line, Assoc: cfg.Assoc})
	for i, lp := range p.levels {
		cfgs = append(cfgs, cache.Config{Size: lp.kb << 10, LineSize: lp.line, Assoc: cfg.Levels[i].Assoc})
	}
	measure := caches.Measure
	if measure == nil {
		measure = replayHierarchy
	}
	stats, err := measure(ctx, workload, cfg.Seed, cfg.SimRefs, cfgs)
	if err != nil {
		return nil, 0, err
	}
	return stats.LocalHitRatios(), stats.GlobalHitRatio(), nil
}

// replayHierarchy is the private-trace MeasureFunc fallback.
func replayHierarchy(_ context.Context, workload string, seed uint64, refs int, levels []cache.Config) (cache.HierarchyStats, error) {
	src, err := trace.NewWorkload(workload, seed)
	if err != nil {
		return cache.HierarchyStats{}, err
	}
	h, err := cache.NewHierarchy(levels...)
	if err != nil {
		return cache.HierarchyStats{}, err
	}
	for i := 0; i < refs; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		h.Access(r.Addr, r.Write)
	}
	return h.Stats(), nil
}

// curveLocals prices every level off the configured hit-ratio curve
// via the LRU stack property.
func curveLocals(ctx context.Context, hit hitRatioFunc, p point) ([]float64, float64, error) {
	locals := make([]float64, 0, len(p.levels)+1)
	g, err := hit(ctx, p.cacheKB<<10, p.line)
	if err != nil {
		return nil, 0, err
	}
	g = clampRatio(g, 1)
	locals = append(locals, g)
	for _, lp := range p.levels {
		gi, err := hit(ctx, lp.kb<<10, lp.line)
		if err != nil {
			return nil, 0, err
		}
		gi = clampRatio(gi, 1)
		local := 0.0
		if gi > g && g < 1 {
			local = (gi - g) / (1 - g)
			g = gi
		}
		locals = append(locals, local)
	}
	return locals, g, nil
}

// clampRatio confines a measured or modeled ratio to [0, hi], guarding
// the delay model's domain against curve noise at the boundaries.
func clampRatio(v, hi float64) float64 {
	if !(v > 0) { // also catches NaN
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// hitRatioFunc prices the hit ratio of a (size, line) cache. The
// context carries the worker's span, so curve passes nest under their
// sweep_point in a -trace export.
type hitRatioFunc func(ctx context.Context, sizeBytes, line int) (float64, error)

// mrcSource splits an "mrc:<workload>" or "mrc~:<workload>" hit source
// into its workload name and sampling flag.
func mrcSource(hitSource string) (name string, sampled, ok bool) {
	if name, ok = strings.CutPrefix(hitSource, "mrc~:"); ok {
		return name, true, true
	}
	name, ok = strings.CutPrefix(hitSource, "mrc:")
	return name, false, ok
}

// hitFunc returns the hit-ratio source selected by the config after
// Mode resolution, along with the effective source string recorded on
// every Design: the calibrated design-target surface ("model"), the
// closed-form analytic curve ("an:<name>", internal/model), cache
// simulation of a named workload ("sim:<name>"), or a single-pass
// miss-ratio curve ("mrc:<name>" exact, "mrc~:<name>" SHARDS-sampled).
// Simulated sources build a private trace and cache per call; curve
// sources share one memoized curve per (workload, line size) through
// caches. Either way the returned function is safe for concurrent use
// by the pool.
func hitFunc(cfg Config, caches Caches) (hitRatioFunc, string, error) {
	source, err := cfg.EffectiveHitSource()
	if err != nil {
		return nil, "", err
	}
	if source == "model" {
		m := missratio.DefaultModel()
		return func(_ context.Context, size, line int) (float64, error) {
			return 1 - m.MissRatio(size, line), nil
		}, source, nil
	}
	if name, ok := strings.CutPrefix(source, "an:"); ok {
		models := caches.Models
		if models == nil {
			models = model.NewCache(0, 0)
		}
		spec := model.Spec{Workload: name, Seed: cfg.Seed, Refs: cfg.SimRefs}
		return func(ctx context.Context, size, line int) (float64, error) {
			s := spec
			s.LineSize = line
			c, _, err := models.Get(ctx, s)
			if err != nil {
				return 0, err
			}
			return c.HitRatioAssoc(size, cfg.Assoc), nil
		}, source, nil
	}
	if name, sampled, ok := mrcSource(source); ok {
		curves := caches.Curves
		if curves == nil {
			curves = mrc.NewCurveCache(0, 0)
		}
		spec := mrc.Spec{Workload: name, Seed: cfg.Seed, Refs: cfg.SimRefs, Sampled: sampled}
		if sampled {
			spec.Sampler = mrc.SamplerConfig{Rate: cfg.MRCRate, Budget: cfg.MRCBudget}
		}
		return func(ctx context.Context, size, line int) (float64, error) {
			s := spec
			s.LineSize = line
			c, _, err := curves.Get(ctx, s)
			if err != nil {
				return 0, err
			}
			return c.HitRatioAssoc(size, cfg.Assoc), nil
		}, source, nil
	}
	name := strings.TrimPrefix(source, "sim:")
	return func(_ context.Context, size, line int) (float64, error) {
		src, err := trace.NewWorkload(name, cfg.Seed)
		if err != nil {
			return 0, err
		}
		c, err := cache.New(cache.Config{Size: size, LineSize: line, Assoc: cfg.Assoc})
		if err != nil {
			return 0, err
		}
		return cache.MeasureSource(c, src, cfg.SimRefs).HitRatio, nil
	}, source, nil
}

// MarkPareto flags designs not dominated in (delay, area, pins).
func MarkPareto(ds []Design) {
	for i := range ds {
		a := &ds[i]
		a.Pareto = true
		for j := range ds {
			if i == j {
				continue
			}
			b := &ds[j]
			if b.Delay <= a.Delay && b.AreaRBE <= a.AreaRBE && b.Pins <= a.Pins &&
				(b.Delay < a.Delay || b.AreaRBE < a.AreaRBE || b.Pins < a.Pins) {
				a.Pareto = false
				break
			}
		}
	}
}

// ParetoCount returns the number of Pareto-efficient designs.
func ParetoCount(ds []Design) int {
	n := 0
	for i := range ds {
		if ds[i].Pareto {
			n++
		}
	}
	return n
}

// WriteCSV emits the sweep's canonical CSV: one row per design in
// slice order, with the exact column set and float formatting the
// original serial cmd/sweep produced. Hierarchy sweeps append one
// "levels" column ("kb:line/kb:line", levels 2..N); flat sweeps keep
// the original byte-identical shape.
func WriteCSV(w io.Writer, ds []Design) error {
	header := []string{"cache_kb", "line_bytes", "bus_bits", "hit_ratio", "hit_source", "delay_per_ref", "area_rbe", "pins", "pareto"}
	hierarchical := false
	for i := range ds {
		if len(ds[i].Levels) > 0 {
			hierarchical = true
			header = append(header, "levels")
			break
		}
	}
	return engine.WriteCSV(w, header, len(ds), func(i int) []string {
		d := &ds[i]
		row := []string{
			strconv.Itoa(d.CacheKB), strconv.Itoa(d.LineBytes), strconv.Itoa(d.BusBits),
			strconv.FormatFloat(d.HitRatio, 'f', 5, 64),
			d.HitSource,
			strconv.FormatFloat(d.Delay, 'f', 4, 64),
			strconv.FormatFloat(d.AreaRBE, 'f', 0, 64),
			strconv.Itoa(d.Pins),
			strconv.FormatBool(d.Pareto),
		}
		if hierarchical {
			row = append(row, levelsCell(d.Levels))
		}
		return row
	})
}

// levelsCell encodes a design's deeper levels for the CSV: one
// "kb:line" pair per level, slash-separated, empty for flat designs.
func levelsCell(levels []LevelDesign) string {
	parts := make([]string, len(levels))
	for i, l := range levels {
		parts[i] = strconv.Itoa(l.CacheKB) + ":" + strconv.Itoa(l.LineBytes)
	}
	return strings.Join(parts, "/")
}
