package wbuf

import (
	"testing"
	"testing/quick"
)

func TestNewClampsDepth(t *testing.T) {
	if New(0).Depth() != 1 || New(-5).Depth() != 1 {
		t.Fatal("non-positive depth not clamped to 1")
	}
	if New(8).Depth() != 8 {
		t.Fatal("depth not preserved")
	}
}

func TestPostNoStallWhenEmpty(t *testing.T) {
	b := New(2)
	if stall := b.Post(100, 0, 7, 40); stall != 0 {
		t.Fatalf("empty buffer post stalled %d", stall)
	}
	if got := b.Len(100, 0); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestEntriesDrainOverTime(t *testing.T) {
	b := New(2)
	b.Post(0, 0, 1, 10) // drains at 10 on an idle bus
	if got := b.Len(5, 0); got != 1 {
		t.Fatalf("Len mid-drain = %d, want 1", got)
	}
	if got := b.Len(10, 0); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
}

func TestBusReservationDelaysDrain(t *testing.T) {
	b := New(2)
	b.Post(0, 50, 1, 10) // bus busy with a fill until 50
	if got := b.Len(49, 50); got != 1 {
		t.Fatalf("entry drained during fill: Len = %d", got)
	}
	if got := b.Len(60, 50); got != 0 {
		t.Fatalf("entry not drained after fill: Len = %d", got)
	}
}

func TestFullBufferStalls(t *testing.T) {
	b := New(1)
	b.Post(0, 0, 1, 10)
	stall := b.Post(2, 0, 2, 10) // head drains at 10: wait 8
	if stall != 8 {
		t.Fatalf("full stall = %d, want 8", stall)
	}
	if got := b.Stats().FullStalls; got != 8 {
		t.Fatalf("FullStalls = %d, want 8", got)
	}
}

func TestConflictWait(t *testing.T) {
	b := New(4)
	b.Post(0, 0, 42, 10)
	if stall := b.ConflictWait(3, 0, 42); stall != 7 {
		t.Fatalf("conflict stall = %d, want 7", stall)
	}
	if got := b.Stats().Conflicts; got != 1 {
		t.Fatalf("Conflicts = %d, want 1", got)
	}
	// No conflict for another line.
	b.Post(20, 0, 9, 10)
	if stall := b.ConflictWait(21, 0, 8); stall != 0 {
		t.Fatalf("non-conflicting wait = %d, want 0", stall)
	}
}

func TestConflictWaitEmptyBuffer(t *testing.T) {
	b := New(4)
	if stall := b.ConflictWait(5, 0, 1); stall != 0 {
		t.Fatalf("empty conflict wait = %d", stall)
	}
}

func TestHiddenFractionIdealWhenUnused(t *testing.T) {
	if got := New(4).HiddenFraction(); got != 1 {
		t.Fatalf("unused HiddenFraction = %v, want 1", got)
	}
}

func TestHiddenFractionDegradesWhenOverrun(t *testing.T) {
	deep := New(16)
	shallow := New(1)
	// Post a burst of back-to-back flushes.
	for i := int64(0); i < 8; i++ {
		deep.Post(i, 0, uint64(i), 20)
		shallow.Post(i, 0, uint64(i), 20)
	}
	if d, s := deep.HiddenFraction(), shallow.HiddenFraction(); d <= s {
		t.Fatalf("deep buffer hides %.2f, shallow %.2f; want deep > shallow", d, s)
	}
	if shallow.HiddenFraction() >= 1 {
		t.Fatal("overrun shallow buffer reported fully hidden")
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := New(2)
	b.Post(0, 0, 1, 5)
	b.Post(0, 0, 2, 5)
	s := b.Stats()
	if s.Posted != 2 || s.PostedTime != 10 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFIFOOrderProperty(t *testing.T) {
	// Property: posts never return negative stalls, and Len never
	// exceeds depth.
	f := func(durs []uint8, depth uint8) bool {
		d := int(depth%6) + 1
		b := New(d)
		now := int64(0)
		for i, u := range durs {
			stall := b.Post(now, 0, uint64(i), int64(u%30)+1)
			if stall < 0 {
				return false
			}
			now += stall + 1
			if b.Len(now, 0) > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHiddenFractionNeverNegative(t *testing.T) {
	f := func(durs []uint8) bool {
		b := New(1)
		for i, u := range durs {
			b.Post(int64(i), 0, uint64(i), int64(u)+1)
		}
		h := b.HiddenFraction()
		return h >= 0 && h <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
