// Package wbuf models read-bypassing write buffers.
//
// A write buffer (Chen & Somani §4.3) queues cache flushes and
// write-around stores so the processor does not wait for them; the
// entries drain to memory in bus idle time, and read misses bypass the
// queued writes. The buffer exposes latency to the processor in exactly
// two cases:
//
//   - the buffer is full when a new write is posted (the CPU waits for
//     the oldest entry's transfer to finish), and
//   - a read miss targets a line with a queued write (the fill must
//     wait for that entry to drain, or it would fetch stale memory).
//
// With an appropriate memory cycle time the paper treats the buffers as
// hiding flush latency completely; this model quantifies how close a
// finite-depth buffer gets to that ideal.
//
// Time is the caller's cycle counter. The buffer does not own a clock;
// every method takes `now` (the current cycle) and `busBusyUntil` (the
// cycle until which the bus is reserved by fills), because fills always
// preempt queued writes under read bypassing.
package wbuf

// Buffer is a FIFO read-bypassing write buffer. The zero value is an
// unusable zero-depth buffer; construct with New.
type Buffer struct {
	depth   int
	entries []entry

	// Counters for effectiveness reporting.
	posted      uint64
	postedTime  int64
	fullStalls  int64
	conflictOps uint64
}

type entry struct {
	line    uint64
	postAt  int64
	dur     int64
	drainAt int64 // recomputed by schedule
}

// New returns a buffer holding up to depth queued writes. depth < 1 is
// treated as 1.
func New(depth int) *Buffer {
	if depth < 1 {
		depth = 1
	}
	return &Buffer{depth: depth}
}

// Depth returns the buffer capacity.
func (b *Buffer) Depth() int { return b.depth }

// Len returns the number of entries still queued or in flight at now.
func (b *Buffer) Len(now, busBusyUntil int64) int {
	b.compact(now, busBusyUntil)
	return len(b.entries)
}

// schedule recomputes drain-completion times: FIFO service after the
// bus reservation, each entry starting no earlier than its post time.
func (b *Buffer) schedule(busBusyUntil int64) {
	t := busBusyUntil
	for i := range b.entries {
		if b.entries[i].postAt > t {
			t = b.entries[i].postAt
		}
		t += b.entries[i].dur
		b.entries[i].drainAt = t
	}
}

// compact drops entries whose transfers finished by now.
func (b *Buffer) compact(now, busBusyUntil int64) {
	b.schedule(busBusyUntil)
	n := 0
	for i := range b.entries {
		if b.entries[i].drainAt > now {
			b.entries[n] = b.entries[i]
			n++
		}
	}
	b.entries = b.entries[:n]
}

// Post queues a write of line taking dur bus cycles, returning the
// number of cycles the CPU must stall because the buffer was full
// (zero when a slot is free).
func (b *Buffer) Post(now, busBusyUntil int64, line uint64, dur int64) (stall int64) {
	b.compact(now, busBusyUntil)
	if len(b.entries) >= b.depth {
		if head := b.entries[0]; head.drainAt > now {
			stall = head.drainAt - now
			now = head.drainAt
		}
		b.compact(now, busBusyUntil)
		b.fullStalls += stall
	}
	b.entries = append(b.entries, entry{line: line, postAt: now, dur: dur})
	b.schedule(busBusyUntil)
	b.posted++
	b.postedTime += dur
	return stall
}

// ConflictWait returns the cycles a read miss of line must wait for
// queued writes of the same line to drain, advancing internal state as
// if the caller waited.
func (b *Buffer) ConflictWait(now, busBusyUntil int64, line uint64) (stall int64) {
	b.compact(now, busBusyUntil)
	if len(b.entries) == 0 {
		return 0
	}
	t := now
	for i := range b.entries {
		if b.entries[i].line == line && b.entries[i].drainAt > t {
			t = b.entries[i].drainAt
		}
	}
	stall = t - now
	if stall > 0 {
		b.conflictOps++
		b.compact(t, busBusyUntil)
	}
	return stall
}

// Stats reports the buffer's cumulative effectiveness.
type Stats struct {
	Posted     uint64 // writes accepted
	PostedTime int64  // total bus cycles of accepted writes
	FullStalls int64  // CPU cycles exposed by buffer-full waits
	Conflicts  uint64 // read misses that hit a queued write
}

// Stats returns the accumulated counters.
func (b *Buffer) Stats() Stats {
	return Stats{Posted: b.posted, PostedTime: b.postedTime, FullStalls: b.fullStalls, Conflicts: b.conflictOps}
}

// HiddenFraction returns the fraction of posted write time that was not
// exposed through full-buffer stalls: 1 means the paper's ideal
// "completely hidden" flushes. Returns 1 for an unused buffer.
func (b *Buffer) HiddenFraction() float64 {
	if b.postedTime == 0 {
		return 1
	}
	f := 1 - float64(b.fullStalls)/float64(b.postedTime)
	if f < 0 {
		return 0
	}
	return f
}
