package mrc

import (
	"math"
	"testing"

	"tradeoff/internal/trace"
)

// edgeCurve profiles a real workload so the edge-case pins exercise a
// histogram with realistic distance spread, not a toy.
func edgeCurve(t *testing.T) *Curve {
	t.Helper()
	src := trace.MustWorkload(trace.Ear, 1994)
	c, err := ProfileSource(src, 20_000, 32)
	if err != nil {
		t.Fatalf("ProfileSource: %v", err)
	}
	return c
}

// TestCurveEdgeCases pins the integer edge-case contract of
// Curve.HitRatio/HitRatioAssoc stated in their doc comments. These
// are the geometries the simulator rejects outright
// (cache.Config.Validate), so the curve's generalization is the only
// defined semantics — and the analytic model tier inherits it by
// construction (model curves are *mrc.Curve too).
func TestCurveEdgeCases(t *testing.T) {
	c := edgeCurve(t)
	const L = 32 // profiled line size

	t.Run("below one line is all misses", func(t *testing.T) {
		for _, size := range []int{0, 1, L - 1, -L} {
			if hr := c.HitRatio(size); hr != 0 {
				t.Errorf("HitRatio(%d) = %v, want 0 (cache holds no whole line)", size, hr)
			}
			if hr := c.HitRatioAssoc(size, 2); hr != 0 {
				t.Errorf("HitRatioAssoc(%d, 2) = %v, want 0", size, hr)
			}
		}
	})

	t.Run("non-multiple sizes floor to whole lines", func(t *testing.T) {
		for _, size := range []int{L + 1, 3*L - 1, 100, 4097, 12*L + L/2} {
			want := c.HitRatio((size / L) * L)
			if got := c.HitRatio(size); got != want {
				t.Errorf("HitRatio(%d) = %v, want %v (= HitRatio(%d))", size, got, want, (size/L)*L)
			}
		}
		// Flooring is monotone: a partial line never raises the ratio.
		if a, b := c.HitRatio(4*L+L-1), c.HitRatio(5*L); a > b {
			t.Errorf("HitRatio(4 lines + partial) = %v > HitRatio(5 lines) = %v", a, b)
		}
	})

	t.Run("assoc at or above lines degenerates to fully associative", func(t *testing.T) {
		for _, tc := range []struct{ lines, assoc int }{
			{4, 4}, {4, 5}, {4, 100}, {1, 2}, {64, 64},
		} {
			size := tc.lines * L
			want := c.HitRatio(size)
			if got := c.HitRatioAssoc(size, tc.assoc); got != want {
				t.Errorf("HitRatioAssoc(%d lines, assoc %d) = %v, want HitRatio = %v",
					tc.lines, tc.assoc, got, want)
			}
		}
	})

	t.Run("non-dividing assoc prices floor(lines/assoc) sets", func(t *testing.T) {
		// 8 lines at 3-way → 2 sets → identical to a 6-line 3-way cache.
		for _, tc := range []struct{ lines, assoc, effLines int }{
			{8, 3, 6}, {16, 5, 15}, {9, 2, 8}, {100, 48, 96},
		} {
			got := c.HitRatioAssoc(tc.lines*L, tc.assoc)
			want := c.HitRatioAssoc(tc.effLines*L, tc.assoc)
			if got != want {
				t.Errorf("HitRatioAssoc(%d lines, %d-way) = %v, want %v (the %d-line cache)",
					tc.lines, tc.assoc, got, want, tc.effLines)
			}
		}
	})

	t.Run("assoc estimates stay near [0, fully associative]", func(t *testing.T) {
		// Smith's correction is not bounded above by the
		// fully-associative ratio: a reference at distance d ≥ lines
		// misses the fully-associative cache by definition, but the
		// binomial still gives it P[Bin(d, 1/S) < A] > 0 of landing in
		// a lucky set. The excess is the binomial tail mass, tiny for
		// realistic histograms; pin it under a named bound instead of
		// pretending monotonicity the model does not have.
		const epsSmithTail = 0.005
		for _, lines := range []int{2, 4, 8, 64, 512} {
			for _, assoc := range []int{1, 2, 3, 4} {
				hr := c.HitRatioAssoc(lines*L, assoc)
				full := c.HitRatio(lines * L)
				if hr < 0 || hr > full+epsSmithTail {
					t.Errorf("HitRatioAssoc(%d lines, %d-way) = %v outside [0, %v+%v]",
						lines, assoc, hr, full, epsSmithTail)
				}
			}
		}
	})
}

// TestCurveEdgeCasesEmpty pins the zero-reference behavior: every
// query answers 0 rather than NaN.
func TestCurveEdgeCasesEmpty(t *testing.T) {
	c, err := ProfileRefs(nil, 32)
	if err != nil {
		t.Fatalf("ProfileRefs(nil): %v", err)
	}
	for _, size := range []int{0, 16, 32, 4096} {
		if hr := c.HitRatio(size); hr != 0 {
			t.Errorf("empty curve HitRatio(%d) = %v, want 0", size, hr)
		}
		if hr := c.HitRatioAssoc(size, 2); hr != 0 {
			t.Errorf("empty curve HitRatioAssoc(%d, 2) = %v, want 0", size, hr)
		}
	}
}

// TestNewAnalyticCurve covers the analytic constructor: domain checks
// and that the resulting curve evaluates the histogram with the same
// semantics as a profiled one.
func TestNewAnalyticCurve(t *testing.T) {
	hist := map[uint64]float64{0: 50, 3: 30}
	c, err := NewAnalyticCurve(32, 100, 20, hist, 20)
	if err != nil {
		t.Fatalf("NewAnalyticCurve: %v", err)
	}
	for _, tc := range []struct {
		size int
		want float64
	}{
		{0, 0},        // below one line
		{31, 0},       // still below one line
		{32, 0.5},     // 1 line: d=0 hits only
		{3 * 32, 0.5}, // 3 lines: d=3 still misses
		{4 * 32, 0.8}, // 4 lines: d=0 and d=3 hit
		{4*32 + 7, 0.8},
		{1 << 20, 0.8}, // cold misses never hit
	} {
		if got := c.HitRatio(tc.size); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("HitRatio(%d) = %v, want %v", tc.size, got, tc.want)
		}
	}
	if got := c.MissRatio(4 * 32); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MissRatio = %v, want 0.2", got)
	}
	if c.ColdMisses() != 20 || c.MaxDistance() != 3 {
		t.Errorf("ColdMisses %v MaxDistance %d, want 20 and 3", c.ColdMisses(), c.MaxDistance())
	}

	for _, tc := range []struct {
		name string
		line int
		refs uint64
		hist map[uint64]float64
		cold float64
	}{
		{"line size not power of two", 48, 100, hist, 0},
		{"line size zero", 0, 100, hist, 0},
		{"zero refs", 32, 0, hist, 0},
		{"negative weight", 32, 100, map[uint64]float64{1: -4}, 10},
		{"NaN weight", 32, 100, map[uint64]float64{1: math.NaN()}, 10},
		{"infinite cold", 32, 100, hist, math.Inf(1)},
		{"negative cold", 32, 100, hist, -1},
		{"empty histogram and no cold", 32, 100, nil, 0},
	} {
		if _, err := NewAnalyticCurve(tc.line, tc.refs, 10, tc.hist, tc.cold); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}
