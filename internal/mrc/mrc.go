// Package mrc builds miss-ratio curves from a single trace pass.
//
// A design-space sweep that prices hit ratios by simulation replays
// the whole trace once per (cache size, line size) point, so a grid
// costs O(points × refs). This package replaces that re-simulation
// with reuse-distance profiling: Mattson's stack algorithm (Mattson,
// Gecsei, Slutz & Traiger, 1970) observes that under LRU a reference
// hits in every cache of at least d+1 lines, where d is the number of
// distinct blocks touched since the previous access to the same block
// (its stack distance). One pass over the trace therefore yields a
// Curve answering HitRatio(cacheSize) for *all* cache sizes at once,
// and a grid costs O(refs + points).
//
// Three layers:
//
//   - Profiler measures exact stack distances. The classic algorithm
//     walks an LRU stack (O(refs × stackDepth)); here an
//     order-statistic index — a Fenwick tree over access-time slots,
//     periodically renumbered so it never grows past twice the live
//     block count — answers each distance in O(log uniqueBlocks), so
//     one pass is O(refs × log uniqueBlocks).
//
//   - SampledProfiler approximates the same curve by SHARDS-style
//     spatial hashing (Waldspurger et al., FAST '15): only blocks
//     whose hash falls under a threshold are tracked, distances and
//     counts are rescaled by the sampling rate, and a fixed tracking
//     budget adaptively lowers the threshold, bounding memory however
//     large the trace's working set is.
//
//   - Curve evaluates the resulting histogram: HitRatio gives the
//     exact fully-associative LRU hit ratio (bit-for-bit what
//     internal/cache measures for Assoc 0, LRU, write-allocate);
//     HitRatioAssoc applies Smith's binomial set-mapping correction so
//     the same histogram approximates direct-mapped and set-associative
//     geometries within a documented tolerance (DESIGN.md §5.6).
//
// The sweep engine consumes curves through CurveCache, which memoizes
// one profiled Curve per (workload, line size) spec on an engine.Memo
// and opens one "mrc_pass" span per actual trace pass, so a -trace
// export shows exactly how many passes a sweep paid for.
package mrc

import (
	"fmt"
	"math"
	"sort"
)

// Curve is a miss-ratio curve: the reuse-distance histogram of one
// trace at one block (line) size, reduced to cumulative form so hit
// ratios for arbitrary cache sizes are O(log distances) lookups.
//
// Distances are in blocks. For sampled curves the histogram holds
// rescaled estimates and Rate records the final sampling rate; for
// exact curves every weight is an integer count and Rate is 1.
type Curve struct {
	LineSize int     // block size in bytes the trace was profiled at
	Refs     uint64  // references profiled (sampled or not)
	Blocks   int     // distinct blocks tracked when profiling ended
	Sampled  bool    // built by a SampledProfiler
	Rate     float64 // final sampling rate T/P (1 for exact curves)

	dist   []uint64  // ascending stack distances with non-zero weight
	weight []float64 // estimated reference count at each distance
	cum    []float64 // cum[i] = weight[0] + … + weight[i]
	coldW  float64   // weighted cold (first-touch) references
	totalW float64   // weighted total references (== float64(Refs))
}

// newCurve reduces a distance→weight histogram to cumulative form.
func newCurve(lineSize int, refs uint64, blocks int, sampled bool, rate float64,
	hist map[uint64]float64, cold float64) *Curve {
	c := &Curve{
		LineSize: lineSize, Refs: refs, Blocks: blocks,
		Sampled: sampled, Rate: rate, coldW: cold,
	}
	c.dist = make([]uint64, 0, len(hist))
	for d := range hist {
		c.dist = append(c.dist, d)
	}
	sort.Slice(c.dist, func(i, j int) bool { return c.dist[i] < c.dist[j] })
	c.weight = make([]float64, len(c.dist))
	c.cum = make([]float64, len(c.dist))
	sum := 0.0
	for i, d := range c.dist {
		c.weight[i] = hist[d]
		sum += hist[d]
		c.cum[i] = sum
	}
	c.totalW = sum + cold
	return c
}

// rescale multiplies every weight by f — the SHARDS_adj correction
// that pins the estimated reference total to the observed one.
func (c *Curve) rescale(f float64) {
	for i := range c.weight {
		c.weight[i] *= f
		c.cum[i] *= f
	}
	c.coldW *= f
	c.totalW *= f
}

// hitWeight returns the weighted count of references with stack
// distance strictly below lines — the references that hit in a
// fully-associative LRU cache of that many lines.
func (c *Curve) hitWeight(lines int) float64 {
	if lines <= 0 {
		return 0
	}
	i := sort.Search(len(c.dist), func(i int) bool { return c.dist[i] >= uint64(lines) })
	if i == 0 {
		return 0
	}
	return c.cum[i-1]
}

// HitRatio returns the hit ratio of a fully-associative LRU cache of
// cacheSize bytes. For exact curves this is bit-for-bit the ratio
// internal/cache measures for the same trace (Assoc 0, LRU,
// write-allocate): hit counts are integers and the final division is
// the same float64(hits)/float64(refs) the simulator performs. An
// empty curve returns 0, matching cache.Stats.HitRatio.
//
// Edge-case contract (pinned by TestCurveEdgeCases, honored by
// analytic curves too): cacheSize is floored to whole lines, so a
// size that is not a multiple of LineSize prices the largest
// realizable cache below it — cacheSize < LineSize holds zero lines
// and returns 0. The simulator rejects such geometries outright
// (cache.Config.Validate wants power-of-two Size ≥ LineSize); the
// curve generalizes them instead of erroring so sweeps can price
// arbitrary byte budgets, and agrees with the simulator exactly on
// every geometry the simulator accepts.
func (c *Curve) HitRatio(cacheSize int) float64 {
	if c.Refs == 0 || c.totalW <= 0 {
		return 0
	}
	return c.hitWeight(cacheSize/c.LineSize) / c.totalW
}

// MissRatio returns 1 − HitRatio for a non-empty curve, else 0.
func (c *Curve) MissRatio(cacheSize int) float64 {
	if c.Refs == 0 {
		return 0
	}
	return 1 - c.HitRatio(cacheSize)
}

// HitRatioAssoc returns the estimated hit ratio of a set-associative
// LRU cache of cacheSize bytes with assoc ways (0 = fully
// associative). It applies Smith's binomial set-mapping model (Smith,
// 1978): a reference at stack distance d hits an A-way cache of S
// sets when fewer than A of its d intervening distinct blocks map to
// the same set, each independently with probability 1/S. The model is
// exact for one set and approximate otherwise; DESIGN.md §5.6 states
// the tolerance the tests pin.
//
// Edge-case contract (pinned by TestCurveEdgeCases): assoc ≥ lines
// degenerates to the fully-associative HitRatio (the simulator
// rejects assoc > lines; the curve clamps). When assoc does not
// divide lines — another geometry the simulator rejects — the curve
// prices the largest realizable cache: S = floor(lines/assoc) sets,
// identical to evaluating a cache of S·assoc lines.
func (c *Curve) HitRatioAssoc(cacheSize, assoc int) float64 {
	if c.Refs == 0 || c.totalW <= 0 {
		return 0
	}
	lines := cacheSize / c.LineSize
	if assoc <= 0 || lines <= assoc {
		return c.HitRatio(cacheSize)
	}
	sets := lines / assoc
	if sets <= 1 {
		return c.HitRatio(cacheSize)
	}
	p := 1 / float64(sets)
	hits := 0.0
	for i, d := range c.dist {
		hits += c.weight[i] * hitProb(d, assoc, p)
	}
	return hits / c.totalW
}

// hitProb is P[Binomial(d, p) ≤ assoc−1]: the probability that fewer
// than assoc of the d intervening distinct blocks land in the
// reference's set. Terms are accumulated iteratively from
// (1−p)^d — stable for the p ≤ 1/2 this package produces (sets ≥ 2).
func hitProb(d uint64, assoc int, p float64) float64 {
	if d < uint64(assoc) {
		return 1
	}
	term := math.Exp(float64(d) * math.Log1p(-p))
	sum := term
	for j := 1; j < assoc; j++ {
		term *= (float64(d) - float64(j-1)) / float64(j) * p / (1 - p)
		sum += term
	}
	return math.Min(1, sum)
}

// ColdMisses returns the (weighted) count of first-touch references —
// misses at every cache size.
func (c *Curve) ColdMisses() float64 { return c.coldW }

// MaxDistance returns the largest observed stack distance in blocks,
// or 0 when every reference was cold. Caches larger than
// (MaxDistance+1) lines cannot miss except compulsorily.
func (c *Curve) MaxDistance() uint64 {
	if len(c.dist) == 0 {
		return 0
	}
	return c.dist[len(c.dist)-1]
}

// MemoryBytes estimates the curve's resident size for byte-bounded
// memoization (mrc.CurveCache and model.Cache both size entries
// with it).
func (c *Curve) MemoryBytes() int64 {
	return int64(len(c.dist))*24 + 128
}

// validLineSize reports lineSize is a positive power of two.
func validLineSize(lineSize int) error {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return fmt.Errorf("mrc: line size %d is not a positive power of two", lineSize)
	}
	return nil
}

// log2 returns floor(log2(v)) for v ≥ 1.
func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
