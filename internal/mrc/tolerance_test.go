package mrc

import (
	"math"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/trace"
)

// The epsilon policy of DESIGN.md §5.6, pinned here over every Table-3
// workload (the six SPEC92 programs) plus zipf:
//
//   - the exact curve equals the fully-associative LRU simulator
//     bit-for-bit (no epsilon at all);
//   - SHARDS-sampled curves stay within epsSampled of the exact curve
//     on the six programs; zipf's θ=1.5 popularity puts ≈40% of all
//     references on one block, so whether that block falls in the 10%
//     spatial sample dominates the curve — it is pinned separately, at
//     cache sizes of ≥64 lines, within epsSampledZipf;
//   - Smith-corrected set-associative estimates stay within epsAssoc
//     of a simulator with the same geometry, except swm256, whose
//     2 KiB row stride (256 cols × 8 B) aliases power-of-two set
//     indexing — the exact violation of the correction's
//     uniform-mapping assumption — and gets epsAssocStencil.
const (
	epsSampled      = 0.06
	epsSampledZipf  = 0.08
	epsAssoc        = 0.20
	epsAssocStencil = 0.40
	minSampledLines = 64
)

// isNearBy reports |got − want| ≤ eps — an absolute bound, which for
// ratios in [0, 1] is also a relative one.
func isNearBy(got, want, eps float64) bool {
	return math.Abs(got-want) <= eps
}

const (
	tolRefs = 20000
	tolSeed = 1994
)

var tolSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}

// simHitRatio replays refs through one cache geometry.
func simHitRatio(t *testing.T, refs []trace.Ref, size, line, assoc int) float64 {
	t.Helper()
	c, err := cache.New(cache.Config{Size: size, LineSize: line, Assoc: assoc})
	if err != nil {
		t.Fatal(err)
	}
	return cache.Measure(c, refs).HitRatio
}

// TestExactMatchesSimulatorBitForBit is the exactness half of the
// harness: for fully-associative LRU write-allocate geometries the
// Mattson curve and the simulator are the same computation, so their
// float64 hit ratios must be identical — not close, identical.
func TestExactMatchesSimulatorBitForBit(t *testing.T) {
	for _, name := range trace.Workloads() {
		refs := trace.Collect(trace.MustWorkload(name, tolSeed), tolRefs)
		for _, line := range []int{16, 64} {
			curve, err := ProfileRefs(refs, line)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range tolSizes {
				got := curve.HitRatio(size)
				want := simHitRatio(t, refs, size, line, 0)
				if got != want {
					t.Errorf("%s line=%d size=%d: MRC %v, simulator %v (diff %g)",
						name, line, size, got, want, got-want)
				}
			}
		}
	}
}

// TestSampledWithinEpsilon pins the SHARDS path: the default sampler's
// estimate stays within epsSampled of the exact curve on every Table-3
// program, and within epsSampledZipf on zipf at ≥minSampledLines-line
// caches (below which its mass concentration dominates — see the
// policy block above).
func TestSampledWithinEpsilon(t *testing.T) {
	for _, name := range trace.Workloads() {
		refs := trace.Collect(trace.MustWorkload(name, tolSeed), tolRefs)
		eps := epsSampled
		if name == trace.Zipf {
			eps = epsSampledZipf
		}
		for _, line := range []int{16, 64} {
			exact, err := ProfileRefs(refs, line)
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := ProfileSampledRefs(refs, line, DefaultSampler())
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range tolSizes {
				if name == trace.Zipf && size/line < minSampledLines {
					continue
				}
				got, want := sampled.HitRatio(size), exact.HitRatio(size)
				if !isNearBy(got, want, eps) {
					t.Errorf("%s line=%d size=%d: sampled %v, exact %v (diff %g > %g)",
						name, line, size, got, want, math.Abs(got-want), eps)
				}
			}
		}
	}
}

// TestAssocCorrectionWithinEpsilon pins Smith's binomial set-mapping
// correction against simulators of the same set-associative geometry.
func TestAssocCorrectionWithinEpsilon(t *testing.T) {
	for _, name := range trace.Workloads() {
		refs := trace.Collect(trace.MustWorkload(name, tolSeed), tolRefs)
		const line = 64
		curve, err := ProfileRefs(refs, line)
		if err != nil {
			t.Fatal(err)
		}
		eps := epsAssoc
		if name == trace.Swm256 {
			eps = epsAssocStencil
		}
		for _, assoc := range []int{1, 2, 4} {
			for _, size := range tolSizes {
				got := curve.HitRatioAssoc(size, assoc)
				want := simHitRatio(t, refs, size, line, assoc)
				if !isNearBy(got, want, eps) {
					t.Errorf("%s assoc=%d size=%d: corrected %v, simulator %v (diff %g > %g)",
						name, assoc, size, got, want, math.Abs(got-want), eps)
				}
			}
		}
	}
}
