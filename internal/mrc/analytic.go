package mrc

import (
	"fmt"
	"math"
)

// NewAnalyticCurve builds a Curve directly from a reuse-distance
// histogram computed in closed form (internal/model derives one from
// workload parameters without a trace pass), rather than profiled
// from references. hist maps stack distance (in lines of lineSize
// bytes) to estimated reference count; cold is the estimated
// first-touch (compulsory miss) count. refs is the reference count
// the histogram models and blocks the estimated distinct lines.
//
// The returned curve answers HitRatio/HitRatioAssoc with exactly the
// same evaluation semantics as a profiled curve — integer-floor lines
// computation, Smith set-mapping correction — so analytic and exact
// tiers cannot drift in how a (size, assoc) query is interpreted.
// Rate is 1 and Sampled is false: the weights are model estimates,
// not rescaled samples.
func NewAnalyticCurve(lineSize int, refs uint64, blocks int, hist map[uint64]float64, cold float64) (*Curve, error) {
	if err := validLineSize(lineSize); err != nil {
		return nil, err
	}
	if refs == 0 {
		return nil, fmt.Errorf("mrc: analytic curve models zero references")
	}
	if cold < 0 || math.IsNaN(cold) || math.IsInf(cold, 0) {
		return nil, fmt.Errorf("mrc: analytic cold weight %v, want finite and >= 0", cold)
	}
	total := cold
	for d, w := range hist {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("mrc: analytic weight %v at distance %d, want finite and >= 0", w, d)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("mrc: analytic histogram is empty")
	}
	return newCurve(lineSize, refs, blocks, false, 1, hist, cold), nil
}
