package mrc

import (
	"context"
	"fmt"

	"tradeoff/internal/engine"
	"tradeoff/internal/obs"
	"tradeoff/internal/trace"
)

// Spec identifies one miss-ratio curve: a named workload profiled at
// one line size for a bounded number of references, exactly or via
// SHARDS sampling. Equal specs yield equal curves, which is what makes
// the CurveCache memoization sound.
type Spec struct {
	Workload string // one of trace.Workloads()
	Seed     uint64 // workload generator seed
	Refs     int    // references to profile (must be positive)
	LineSize int    // block size in bytes (positive power of two)
	Sampled  bool   // SHARDS sampling instead of the exact profiler
	Sampler  SamplerConfig
}

// Validate reports specs outside the profiler's domain. The sampler
// config is only checked when Sampled is set.
func (s Spec) Validate() error {
	if unknown := trace.ValidWorkloads([]string{s.Workload}); len(unknown) > 0 {
		return fmt.Errorf("mrc: unknown workload %q (want one of %v)", s.Workload, trace.Workloads())
	}
	if s.Refs < 1 {
		return fmt.Errorf("mrc: spec refs %d, want >= 1", s.Refs)
	}
	if err := validLineSize(s.LineSize); err != nil {
		return err
	}
	if s.Sampled {
		return s.Sampler.Validate()
	}
	return nil
}

// key is the memoization key: every field that changes the curve.
func (s Spec) key() string {
	if s.Sampled {
		return fmt.Sprintf("%s|%d|%d|%d|~%g|%d",
			s.Workload, s.Seed, s.Refs, s.LineSize, s.Sampler.Rate, s.Sampler.Budget)
	}
	return fmt.Sprintf("%s|%d|%d|%d", s.Workload, s.Seed, s.Refs, s.LineSize)
}

// Profile performs the single trace pass the spec describes and
// returns its curve. Each call streams the workload afresh — this is
// the expensive step CurveCache exists to run once — and opens one
// "mrc_pass" span, so a -trace export counts exactly the passes paid
// for.
func (s Spec) Profile(ctx context.Context) (*Curve, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "mrc_pass")
	span.SetArg("workload", s.Workload)
	span.SetArg("line_size", s.LineSize)
	span.SetArg("refs", s.Refs)
	span.SetArg("sampled", s.Sampled)
	defer span.End()
	src, err := trace.NewWorkload(s.Workload, s.Seed)
	if err != nil {
		return nil, err
	}
	if s.Sampled {
		return ProfileSampledSource(src, s.Refs, s.LineSize, s.Sampler)
	}
	return ProfileSource(src, s.Refs, s.LineSize)
}

// CurveCache memoizes curves by Spec on an engine.Memo, so a sweep —
// or concurrent sweeps sharing one cache — pays one trace pass per
// distinct (workload, line size) spec, with singleflight collapsing
// concurrent requests for the same spec.
type CurveCache struct {
	memo *engine.Memo[*Curve]
}

// NewCurveCache returns a cache bounded to maxEntries curves and
// maxBytes of resident curve data; bounds <= 0 are unlimited, matching
// engine.NewMemo.
func NewCurveCache(maxEntries int, maxBytes int64) *CurveCache {
	return &CurveCache{memo: engine.NewMemo(maxEntries, maxBytes, (*Curve).MemoryBytes)}
}

// Get returns the curve for spec, profiling it on first use. The
// boolean reports whether the curve was shared (memo hit or joined
// flight) rather than profiled by this call.
func (cc *CurveCache) Get(ctx context.Context, spec Spec) (*Curve, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	return cc.memo.Do(ctx, spec.key(), spec.Profile)
}

// Len returns the number of cached curves.
func (cc *CurveCache) Len() int { return cc.memo.Len() }
