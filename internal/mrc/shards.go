package mrc

import (
	"container/heap"
	"fmt"
	"math"

	"tradeoff/internal/trace"
)

// shardsModulus is P, the spatial-hash modulus: a block is sampled
// when hash(block) mod P < T, giving sampling rate R = T/P. 2²⁴
// distinct thresholds is far finer than any rate this package needs.
const shardsModulus = 1 << 24

// SamplerConfig tunes a SampledProfiler. The domains are enforced by
// Validate and by the paramdomain analyzer: Rate ∈ (0, 1] and
// Budget ≥ 1 — a zero value is an invalid config, not a default; use
// DefaultSampler for the documented starting point.
type SamplerConfig struct {
	// Rate is the initial sampling rate T/P: the expected fraction of
	// distinct blocks (and so of references) the profiler tracks.
	Rate float64 `json:"rate"`
	// Budget is s_max, the maximum number of concurrently tracked
	// blocks. When the working set at the current rate exceeds it, the
	// threshold drops (evicting the highest-hash blocks) so memory
	// stays bounded on any trace.
	Budget int `json:"budget"`
}

// DefaultSampler is the rate/budget pair the sweep engine defaults
// to: 10% sampling resolves the 10⁴–10⁵-block working sets of the
// bundled workloads well inside the documented tolerance, and an 8Ki
// budget caps the index at roughly the size of one 256 KiB cache's
// tag store.
func DefaultSampler() SamplerConfig {
	return SamplerConfig{Rate: 0.1, Budget: 8 << 10}
}

// Validate reports configurations outside the sampler's domain.
func (c SamplerConfig) Validate() error {
	if c.Rate <= 0 || c.Rate > 1 || math.IsNaN(c.Rate) {
		return fmt.Errorf("mrc: sampler rate %g outside its domain (0, 1]", c.Rate)
	}
	if c.Budget < 1 {
		return fmt.Errorf("mrc: sampler budget %d, want >= 1", c.Budget)
	}
	return nil
}

// hashEntry is one tracked block and its spatial hash.
type hashEntry struct {
	hash  uint64
	block uint64
}

// hashHeap is a max-heap on hash, so the next block to evict when the
// budget is exceeded — the highest-hash one — is always on top.
type hashHeap []hashEntry

func (h hashHeap) Len() int           { return len(h) }
func (h hashHeap) Less(i, j int) bool { return h[i].hash > h[j].hash }
func (h hashHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hashHeap) Push(x any)        { *h = append(*h, x.(hashEntry)) }
func (h *hashHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// SampledProfiler approximates a reuse-distance profile by SHARDS
// spatial hashing: only blocks hashing under the threshold are
// tracked, each sampled reference contributes weight P/T to the
// histogram at distance d·P/T (d measured over sampled blocks), and
// exceeding the budget lowers the threshold by evicting the
// highest-hash blocks. Curve applies the SHARDS_adj correction,
// rescaling the estimated totals onto the observed reference count.
// Not safe for concurrent use.
type SampledProfiler struct {
	lineShift uint
	lineSize  int
	threshold uint64 // T: track blocks with hash < T
	budget    int
	tree      *stackTree
	tracked   hashHeap
	hist      map[uint64]float64 // scaled distance → weight
	cold      float64
	refs      uint64
	sampled   uint64
}

// NewSampledProfiler returns a SHARDS profiler at the given block
// (line) size — a positive power of two — and sampler config.
func NewSampledProfiler(lineSize int, cfg SamplerConfig) (*SampledProfiler, error) {
	if err := validLineSize(lineSize); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := uint64(math.Ceil(cfg.Rate * shardsModulus))
	if t == 0 {
		t = 1
	}
	return &SampledProfiler{
		lineShift: log2(uint64(lineSize)),
		lineSize:  lineSize,
		threshold: t,
		budget:    cfg.Budget,
		tree:      newStackTree(),
		hist:      make(map[uint64]float64),
	}, nil
}

// hashBlock is the 64-bit finalizer of MurmurHash3 — a cheap
// statistically uniform spatial hash, the property SHARDS sampling
// rests on.
func hashBlock(b uint64) uint64 {
	b ^= b >> 33
	b *= 0xff51afd7ed558ccd
	b ^= b >> 33
	b *= 0xc4ceb9fe1a85ec53
	b ^= b >> 33
	return b
}

// Rate returns the current sampling rate T/P, which only decreases as
// the budget forces threshold drops.
func (p *SampledProfiler) Rate() float64 {
	return float64(p.threshold) / shardsModulus
}

// Access records one reference, tracking it only when its block
// hashes under the current threshold.
func (p *SampledProfiler) Access(addr uint64) {
	p.refs++
	block := addr >> p.lineShift
	h := hashBlock(block) & (shardsModulus - 1)
	if h >= p.threshold {
		return
	}
	p.sampled++
	w := float64(shardsModulus) / float64(p.threshold)
	d := p.tree.access(block)
	if d < 0 {
		p.cold += w
		heap.Push(&p.tracked, hashEntry{hash: h, block: block})
		if p.tree.blocks() > p.budget {
			p.evict()
		}
		return
	}
	p.hist[uint64(float64(d)*w)] += w
}

// evict lowers the threshold to the highest tracked hash, forgetting
// every block at or above it, until the budget holds again. Future
// references to evicted blocks hash over the new threshold, so they
// are consistently ignored rather than re-sampled as cold.
func (p *SampledProfiler) evict() {
	for p.tree.blocks() > p.budget && p.tracked.Len() > 0 {
		top := heap.Pop(&p.tracked).(hashEntry)
		p.threshold = top.hash
		p.tree.remove(top.block)
		for p.tracked.Len() > 0 && p.tracked[0].hash >= p.threshold {
			p.tree.remove(heap.Pop(&p.tracked).(hashEntry).block)
		}
	}
}

// Curve reduces the sampled profile into an estimated miss-ratio
// curve, rescaled (SHARDS_adj) so the weighted reference total equals
// the number of references actually seen.
func (p *SampledProfiler) Curve() *Curve {
	hist := make(map[uint64]float64, len(p.hist))
	for d, w := range p.hist {
		hist[d] = w
	}
	c := newCurve(p.lineSize, p.refs, p.tree.blocks(), true, p.Rate(), hist, p.cold)
	if c.totalW > 0 && p.refs > 0 {
		c.rescale(float64(p.refs) / c.totalW)
	}
	return c
}

// SampledRefs returns how many references fell under the spatial-hash
// threshold — the work the profiler actually did.
func (p *SampledProfiler) SampledRefs() uint64 { return p.sampled }

// ProfileSampledRefs builds the SHARDS curve of a materialized trace.
func ProfileSampledRefs(refs []trace.Ref, lineSize int, cfg SamplerConfig) (*Curve, error) {
	p, err := NewSampledProfiler(lineSize, cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		p.Access(r.Addr)
	}
	return p.Curve(), nil
}

// ProfileSampledSource streams up to n references from src through a
// SHARDS profiler.
func ProfileSampledSource(src trace.Source, n, lineSize int, cfg SamplerConfig) (*Curve, error) {
	p, err := NewSampledProfiler(lineSize, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		p.Access(r.Addr)
	}
	return p.Curve(), nil
}
