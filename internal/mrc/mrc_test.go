package mrc

import (
	"context"
	"math"
	"testing"

	"tradeoff/internal/trace"
)

// bruteDistance is the textbook O(refs × stackDepth) LRU stack, the
// oracle for stackTree.
type bruteStack struct {
	stack []uint64
}

func (b *bruteStack) access(block uint64) int {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if b.stack[i] == block {
			d := len(b.stack) - 1 - i
			b.stack = append(b.stack[:i], b.stack[i+1:]...)
			b.stack = append(b.stack, block)
			return d
		}
	}
	b.stack = append(b.stack, block)
	return -1
}

func (b *bruteStack) remove(block uint64) {
	for i, x := range b.stack {
		if x == block {
			b.stack = append(b.stack[:i], b.stack[i+1:]...)
			return
		}
	}
}

func TestStackTreeMatchesBruteForce(t *testing.T) {
	tree := newStackTree()
	brute := &bruteStack{}
	rng := uint64(0x9E3779B97F4A7C15)
	// Enough accesses over enough blocks to force several renumber
	// compactions of the initial 1<<10-slot array.
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		block := rng % 700
		got, want := tree.access(block), brute.access(block)
		if got != want {
			t.Fatalf("access %d (block %d): stackTree distance %d, brute force %d", i, block, got, want)
		}
		if rng%31 == 0 {
			victim := rng % 700
			tree.remove(victim)
			brute.remove(victim)
		}
		if tree.blocks() != len(brute.stack) {
			t.Fatalf("access %d: stackTree tracks %d blocks, brute force %d", i, tree.blocks(), len(brute.stack))
		}
	}
}

func TestProfilerSmallTrace(t *testing.T) {
	// a b c a b c: 3 cold misses, then 3 references at distance 2.
	p, err := NewProfiler(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []uint64{0, 1, 2, 0, 1, 2} {
		p.Access(b * 64)
	}
	c := p.Curve()
	if c.Refs != 6 || c.Blocks != 3 {
		t.Fatalf("Refs=%d Blocks=%d, want 6 and 3", c.Refs, c.Blocks)
	}
	if got := c.ColdMisses(); got != 3 {
		t.Fatalf("ColdMisses=%g, want 3", got)
	}
	if got := c.MaxDistance(); got != 2 {
		t.Fatalf("MaxDistance=%d, want 2", got)
	}
	// 2 lines: distance 2 misses. 3 lines: distance 2 hits.
	if got := c.HitRatio(2 * 64); got != 0 {
		t.Fatalf("HitRatio(2 lines)=%g, want 0", got)
	}
	if got, want := c.HitRatio(3*64), 0.5; got != want {
		t.Fatalf("HitRatio(3 lines)=%g, want %g", got, want)
	}
	if got, want := c.MissRatio(3*64), 0.5; got != want {
		t.Fatalf("MissRatio(3 lines)=%g, want %g", got, want)
	}
}

func TestCurveMonotone(t *testing.T) {
	c, err := ProfileSource(trace.MustWorkload(trace.Ear, 1), 30000, 32)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for size := 32; size <= 1<<20; size *= 2 {
		hr := c.HitRatio(size)
		if hr < prev {
			t.Fatalf("HitRatio not monotone: %g at %d bytes after %g", hr, size, prev)
		}
		if hr < 0 || hr > 1 {
			t.Fatalf("HitRatio(%d)=%g outside [0,1]", size, hr)
		}
		prev = hr
	}
	// A cache bigger than every observed distance only misses cold.
	huge := int(c.MaxDistance()+2) * 32 * 2
	want := 1 - c.ColdMisses()/float64(c.Refs)
	if got := c.HitRatio(huge); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HitRatio(huge)=%g, want 1-cold/refs=%g", got, want)
	}
}

func TestEmptyCurve(t *testing.T) {
	p, err := NewProfiler(64)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Curve()
	if got := c.HitRatio(1 << 20); got != 0 {
		t.Fatalf("empty curve HitRatio=%g, want 0 (matching cache.Stats)", got)
	}
	if got := c.MissRatio(1 << 20); got != 0 {
		t.Fatalf("empty curve MissRatio=%g, want 0", got)
	}
}

func TestNewProfilerRejectsBadLineSize(t *testing.T) {
	for _, bad := range []int{0, -8, 24, 100} {
		if _, err := NewProfiler(bad); err == nil {
			t.Errorf("NewProfiler(%d): want error", bad)
		}
		if _, err := NewSampledProfiler(bad, DefaultSampler()); err == nil {
			t.Errorf("NewSampledProfiler(%d): want error", bad)
		}
	}
}

func TestSamplerConfigValidate(t *testing.T) {
	cases := []struct {
		cfg SamplerConfig
		ok  bool
	}{
		{SamplerConfig{Rate: 0.1, Budget: 1}, true},
		{SamplerConfig{Rate: 1, Budget: 1 << 20}, true},
		{SamplerConfig{Rate: 0, Budget: 100}, false},
		{SamplerConfig{Rate: -0.5, Budget: 100}, false},
		{SamplerConfig{Rate: 1.5, Budget: 100}, false},
		{SamplerConfig{Rate: math.NaN(), Budget: 100}, false},
		{SamplerConfig{Rate: 0.5, Budget: 0}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("Validate(%+v): unexpected error %v", tc.cfg, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Validate(%+v): want error", tc.cfg)
		}
	}
	if err := DefaultSampler().Validate(); err != nil {
		t.Errorf("DefaultSampler invalid: %v", err)
	}
}

func TestSampledRateOneMatchesExact(t *testing.T) {
	// At rate 1 with an unconstrained budget every block is tracked
	// with weight 1, so the SHARDS curve degenerates to the exact one.
	const refs, line = 20000, 64
	exact, err := ProfileSource(trace.MustWorkload(trace.Swm256, 7), refs, line)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := ProfileSampledSource(trace.MustWorkload(trace.Swm256, 7), refs, line,
		SamplerConfig{Rate: 1, Budget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for size := line; size <= 1<<20; size *= 2 {
		if g, w := sampled.HitRatio(size), exact.HitRatio(size); g != w {
			t.Fatalf("rate-1 sampled HitRatio(%d)=%g, exact %g", size, g, w)
		}
	}
	if sampled.Blocks != exact.Blocks || sampled.Refs != exact.Refs {
		t.Fatalf("rate-1 sampled Blocks/Refs %d/%d, exact %d/%d",
			sampled.Blocks, sampled.Refs, exact.Blocks, exact.Refs)
	}
}

func TestSampledBudgetBoundsTracking(t *testing.T) {
	const budget = 128
	p, err := NewSampledProfiler(64, SamplerConfig{Rate: 1, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	// Touch far more distinct blocks than the budget allows.
	for b := uint64(0); b < 64*budget; b++ {
		p.Access(b * 64)
		if got := p.tree.blocks(); got > budget {
			t.Fatalf("tracked %d blocks, budget %d", got, budget)
		}
	}
	if r := p.Rate(); r >= 1 {
		t.Fatalf("rate %g did not adapt below the initial 1", r)
	}
	c := p.Curve()
	if !c.Sampled {
		t.Fatal("curve not marked sampled")
	}
	// SHARDS_adj pins the weighted total to the observed references.
	if math.Abs(c.totalW-float64(c.Refs)) > 1e-6*float64(c.Refs) {
		t.Fatalf("rescaled total %g, want %d", c.totalW, c.Refs)
	}
}

func TestHitProb(t *testing.T) {
	if got := hitProb(3, 4, 0.25); got != 1 {
		t.Fatalf("hitProb(d<assoc)=%g, want 1", got)
	}
	// d=2, assoc=1, p=0.5: hit iff both intervening blocks avoid the
	// set: 0.25.
	if got, want := hitProb(2, 1, 0.5), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("hitProb(2,1,0.5)=%g, want %g", got, want)
	}
	// Monotone: deeper distances cannot raise the hit probability.
	prev := 1.0
	for d := uint64(0); d < 200; d += 7 {
		got := hitProb(d, 4, 1.0/16)
		if got > prev+1e-12 {
			t.Fatalf("hitProb not monotone at d=%d: %g after %g", d, got, prev)
		}
		if got < 0 || got > 1 {
			t.Fatalf("hitProb(%d)=%g outside [0,1]", d, got)
		}
		prev = got
	}
}

func TestHitRatioAssocFallsBackToExact(t *testing.T) {
	c, err := ProfileSource(trace.MustWorkload(trace.Ear, 3), 20000, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1 << 12, 1 << 14, 1 << 16} {
		if g, w := c.HitRatioAssoc(size, 0), c.HitRatio(size); g != w {
			t.Fatalf("HitRatioAssoc(%d, 0)=%g, want exact %g", size, g, w)
		}
		// One set (assoc == lines) is fully associative.
		if g, w := c.HitRatioAssoc(size, size/64), c.HitRatio(size); g != w {
			t.Fatalf("HitRatioAssoc(%d, lines)=%g, want exact %g", size, g, w)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Workload: trace.Ear, Refs: 1000, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Workload: "mystery", Refs: 1000, LineSize: 64},
		{Workload: trace.Ear, Refs: 0, LineSize: 64},
		{Workload: trace.Ear, Refs: 1000, LineSize: 48},
		{Workload: trace.Ear, Refs: 1000, LineSize: 64, Sampled: true},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", s)
		}
	}
}

func TestSpecKeyDistinguishes(t *testing.T) {
	base := Spec{Workload: trace.Ear, Seed: 1, Refs: 1000, LineSize: 64}
	variants := []Spec{
		{Workload: trace.Doduc, Seed: 1, Refs: 1000, LineSize: 64},
		{Workload: trace.Ear, Seed: 2, Refs: 1000, LineSize: 64},
		{Workload: trace.Ear, Seed: 1, Refs: 2000, LineSize: 64},
		{Workload: trace.Ear, Seed: 1, Refs: 1000, LineSize: 32},
		{Workload: trace.Ear, Seed: 1, Refs: 1000, LineSize: 64, Sampled: true, Sampler: DefaultSampler()},
	}
	seen := map[string]bool{base.key(): true}
	for _, v := range variants {
		if seen[v.key()] {
			t.Errorf("spec %+v collides with an earlier key %q", v, v.key())
		}
		seen[v.key()] = true
	}
}

func TestCurveCacheMemoizes(t *testing.T) {
	cc := NewCurveCache(0, 0)
	spec := Spec{Workload: trace.Ear, Seed: 1, Refs: 5000, LineSize: 64}
	c1, shared, err := cc.Get(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if shared {
		t.Fatal("first Get reported shared")
	}
	c2, shared, err := cc.Get(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !shared {
		t.Fatal("second Get did not hit the memo")
	}
	if c1 != c2 {
		t.Fatal("memo returned a different curve")
	}
	if cc.Len() != 1 {
		t.Fatalf("cache holds %d curves, want 1", cc.Len())
	}
	if _, _, err := cc.Get(context.Background(), Spec{Workload: "nope", Refs: 1, LineSize: 64}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
