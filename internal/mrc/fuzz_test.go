package mrc

import (
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/trace"
)

// FuzzMRCMatchesSimulator drives fuzzer-chosen traces and geometries
// through both the exact Mattson profiler and the cache simulator,
// asserting the hit ratios are equal bit-for-bit for fully-associative
// LRU write-allocate caches — the exactness domain DESIGN.md §5.6
// documents. Traces come from the named workload generators or, in one
// mode, raw splitmix64 addresses confined to a small region so reuse
// is frequent.
func FuzzMRCMatchesSimulator(f *testing.F) {
	f.Add(uint64(1994), uint16(2000), uint8(2), uint8(3), uint8(0))
	f.Add(uint64(7), uint16(500), uint8(0), uint8(0), uint8(3))
	f.Add(uint64(42), uint16(4000), uint8(3), uint8(4), uint8(7))
	f.Add(uint64(123457), uint16(1), uint8(1), uint8(2), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, nrefs uint16, lineShift, sizeShift, workIdx uint8) {
		line := 1 << (4 + int(lineShift)%4)  // 16..128 bytes
		size := 1 << (10 + int(sizeShift)%5) // 1..16 KiB
		n := int(nrefs) % 5000

		workloads := trace.Workloads()
		var refs []trace.Ref
		if mode := int(workIdx) % (len(workloads) + 1); mode < len(workloads) {
			refs = trace.Collect(trace.MustWorkload(workloads[mode], seed), n)
		} else {
			// Raw splitmix64 addresses over a 256-block region.
			refs = make([]trace.Ref, n)
			s := seed
			for i := range refs {
				s += 0x9E3779B97F4A7C15
				z := s
				z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
				z = (z ^ (z >> 27)) * 0x94D049BB133111EB
				z ^= z >> 31
				refs[i] = trace.Ref{Addr: (z % 256) * uint64(line), Write: z&1 == 0}
			}
		}

		curve, err := ProfileRefs(refs, line)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cache.New(cache.Config{Size: size, LineSize: line, Assoc: 0})
		if err != nil {
			t.Fatal(err)
		}
		got, want := curve.HitRatio(size), cache.Measure(c, refs).HitRatio
		if got != want {
			t.Fatalf("line=%d size=%d refs=%d: MRC %v, simulator %v", line, size, len(refs), got, want)
		}
	})
}
