package mrc

import (
	"tradeoff/internal/trace"
)

// stackTree is the order-statistic index behind both profilers: an
// implicit LRU stack of tracked blocks whose stack-distance queries
// run in O(log n). Each tracked block occupies one access-time slot;
// a Fenwick (binary indexed) tree counts live slots, so the number of
// distinct blocks touched since a given slot is one prefix-sum query.
// Slots are consumed left to right; when they run out the live slots
// are renumbered — and the array doubled only while more than half
// its slots are live — so the index stays O(uniqueBlocks) in memory
// and O(log uniqueBlocks) per access ("scaled tree"), not
// O(log refs).
type stackTree struct {
	tree  []int          // Fenwick counts over slots 1..len(tree)-1
	slots []uint64       // slot → the block holding it (where occ)
	occ   []bool         // slot → currently live
	next  int            // next unused slot (1-based)
	live  int            // tracked blocks (live slots)
	last  map[uint64]int // block → its most recent slot
}

func newStackTree() *stackTree {
	const n = 1 << 10
	return &stackTree{
		tree:  make([]int, n),
		slots: make([]uint64, n),
		occ:   make([]bool, n),
		next:  1,
		last:  make(map[uint64]int),
	}
}

func (t *stackTree) add(pos, delta int) {
	for ; pos < len(t.tree); pos += pos & -pos {
		t.tree[pos] += delta
	}
}

func (t *stackTree) prefix(pos int) int {
	s := 0
	for ; pos > 0; pos -= pos & -pos {
		s += t.tree[pos]
	}
	return s
}

// access moves block to the top of the LRU stack and returns the
// stack distance it was found at: 0 when no other block intervened
// since its previous access, −1 when the block was never seen.
func (t *stackTree) access(block uint64) int {
	d := -1
	if p, ok := t.last[block]; ok {
		// Live blocks in slots after p are exactly the distinct blocks
		// accessed since block's previous access. The occupancy bit must
		// drop too: renumber compacts by scanning occ, so a stale bit
		// would resurrect the cleared slot. (The last entry is simply
		// overwritten below.)
		d = t.live - t.prefix(p)
		t.add(p, -1)
		t.occ[p] = false
		t.live--
	}
	if t.next >= len(t.tree) {
		t.renumber()
	}
	t.add(t.next, 1)
	t.slots[t.next] = block
	t.occ[t.next] = true
	t.live++
	t.last[block] = t.next
	t.next++
	return d
}

// remove forgets block entirely (SHARDS threshold eviction).
func (t *stackTree) remove(block uint64) {
	if p, ok := t.last[block]; ok {
		t.add(p, -1)
		t.occ[p] = false
		t.live--
		delete(t.last, block)
	}
}

// blocks returns the number of tracked blocks.
func (t *stackTree) blocks() int { return len(t.last) }

// renumber compacts live slots to 1..live preserving their order,
// doubling the slot array only when more than half of it is live. One
// ascending scan of the occupancy bits keeps the order without
// sorting, and the Fenwick tree over a prefix of all-ones is filled
// node by node in closed form, so the whole rebuild is O(size) —
// amortized O(1) per access over the ≥ size/2 accesses that consumed
// the slots.
func (t *stackTree) renumber() {
	size := len(t.tree)
	for size < 2*(t.live+1) {
		size *= 2
	}
	slots := make([]uint64, size)
	occ := make([]bool, size)
	n := 1
	for p := 1; p < t.next; p++ {
		if !t.occ[p] {
			continue
		}
		slots[n], occ[n] = t.slots[p], true
		t.last[slots[n]] = n
		n++
	}
	t.next = n
	t.live = n - 1
	t.slots, t.occ = slots, occ
	// Fenwick node q covers (q − lowbit(q), q]; with slots 1..live all
	// holding 1, its sum is the overlap of that range with [1, live].
	tree := make([]int, size)
	for q := 1; q < size; q++ {
		lo, hi := q-q&-q, q
		if hi > t.live {
			hi = t.live
		}
		if hi > lo {
			tree[q] = hi - lo
		}
	}
	t.tree = tree
}

// Profiler measures exact reuse distances: Mattson's stack algorithm
// over block addresses, one stackTree query per reference. Feed it
// references with Access (or a whole Source with ProfileSource) and
// finish with Curve. A Profiler is not safe for concurrent use.
type Profiler struct {
	lineShift uint
	lineSize  int
	tree      *stackTree
	hist      []uint64 // hist[d] = references with stack distance d
	cold      uint64
	refs      uint64
}

// NewProfiler returns an exact profiler at the given block (line)
// size, which must be a positive power of two.
func NewProfiler(lineSize int) (*Profiler, error) {
	if err := validLineSize(lineSize); err != nil {
		return nil, err
	}
	return &Profiler{
		lineShift: log2(uint64(lineSize)),
		lineSize:  lineSize,
		tree:      newStackTree(),
	}, nil
}

// Access records one reference. Loads and stores are profiled alike:
// under write-allocate both promote their block to the top of the LRU
// stack, which is what makes the curve match the simulator exactly.
// Runs once per reference: the profiler's entire runtime.
//
//perf:hot
func (p *Profiler) Access(addr uint64) {
	p.refs++
	d := p.tree.access(addr >> p.lineShift)
	if d < 0 {
		p.cold++
		return
	}
	for d >= len(p.hist) {
		//lint:ignore hotalloc amortized growth: the histogram doubles O(log maxDepth) times over the whole trace, not per access
		p.hist = append(p.hist, make([]uint64, len(p.hist)+64)...)
	}
	p.hist[d]++
}

// Curve reduces the profile so far into an exact miss-ratio curve.
// The profiler can keep accumulating afterwards; each call snapshots.
func (p *Profiler) Curve() *Curve {
	hist := make(map[uint64]float64, len(p.hist))
	for d, n := range p.hist {
		if n != 0 {
			hist[uint64(d)] = float64(n)
		}
	}
	return newCurve(p.lineSize, p.refs, p.tree.blocks(), false, 1, hist, float64(p.cold))
}

// ProfileRefs builds the exact curve of a materialized trace at one
// line size.
//
//perf:hot
func ProfileRefs(refs []trace.Ref, lineSize int) (*Curve, error) {
	p, err := NewProfiler(lineSize)
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		p.Access(r.Addr)
	}
	return p.Curve(), nil
}

// ProfileSource streams up to n references from src through an exact
// profiler — no trace materialization, O(uniqueBlocks) memory.
//
//perf:hot
func ProfileSource(src trace.Source, n, lineSize int) (*Curve, error) {
	p, err := NewProfiler(lineSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		p.Access(r.Addr)
	}
	return p.Curve(), nil
}
