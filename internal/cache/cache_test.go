package cache

import (
	"testing"
	"testing/quick"

	"tradeoff/internal/trace"
)

func cfg8K() Config {
	return Config{Size: 8 << 10, LineSize: 32, Assoc: 2, WriteMiss: WriteAllocate, Replacement: LRU}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid 8K 2-way", cfg8K(), true},
		{"valid direct-mapped", Config{Size: 1024, LineSize: 16, Assoc: 1}, true},
		{"valid fully associative", Config{Size: 1024, LineSize: 16, Assoc: 0}, true},
		{"size not power of two", Config{Size: 1000, LineSize: 16, Assoc: 1}, false},
		{"zero size", Config{Size: 0, LineSize: 16, Assoc: 1}, false},
		{"line not power of two", Config{Size: 1024, LineSize: 24, Assoc: 1}, false},
		{"line bigger than cache", Config{Size: 64, LineSize: 128, Assoc: 1}, false},
		{"negative assoc", Config{Size: 1024, LineSize: 16, Assoc: -1}, false},
		{"assoc exceeds lines", Config{Size: 64, LineSize: 32, Assoc: 4}, false},
		{"lines not divisible by assoc", Config{Size: 512, LineSize: 32, Assoc: 3}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{Size: 3}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{Size: 3})
}

func TestSets(t *testing.T) {
	if got := cfg8K().Sets(); got != 128 {
		t.Fatalf("8K/32B/2-way sets = %d, want 128", got)
	}
	full := Config{Size: 1024, LineSize: 32, Assoc: 0}
	if got := full.Sets(); got != 1 {
		t.Fatalf("fully associative sets = %d, want 1", got)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(cfg8K())
	out := c.Access(0x1000, false)
	if out.Hit || !out.Fill {
		t.Fatalf("first access: %+v, want miss+fill", out)
	}
	out = c.Access(0x1000, false)
	if !out.Hit {
		t.Fatalf("second access: %+v, want hit", out)
	}
	// Same line, different word: still a hit.
	out = c.Access(0x101F, false)
	if !out.Hit {
		t.Fatalf("same-line access: %+v, want hit", out)
	}
	// Next line: miss.
	out = c.Access(0x1020, false)
	if out.Hit {
		t.Fatalf("next-line access: %+v, want miss", out)
	}
}

func TestWriteAllocateFetchesLine(t *testing.T) {
	c := MustNew(cfg8K())
	out := c.Access(0x2000, true)
	if out.Hit || !out.Fill || out.Bypassed {
		t.Fatalf("write miss under write-allocate: %+v, want fill", out)
	}
	if !c.Dirty(0x2000) {
		t.Fatal("written line not dirty")
	}
	s := c.Stats()
	if s.WriteMiss != 1 || s.Fills != 1 || s.Bypasses != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestWriteAroundBypasses(t *testing.T) {
	cfg := cfg8K()
	cfg.WriteMiss = WriteAround
	c := MustNew(cfg)
	out := c.Access(0x2000, true)
	if !out.Bypassed || out.Fill {
		t.Fatalf("write miss under write-around: %+v, want bypass without fill", out)
	}
	if c.Contains(0x2000) {
		t.Fatal("write-around allocated a line")
	}
	// A write hit must still update in place.
	c.Access(0x3000, false) // fill via read
	out = c.Access(0x3000, true)
	if !out.Hit {
		t.Fatalf("write hit: %+v", out)
	}
	if !c.Dirty(0x3000) {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// Direct-mapped, 2 lines, line 32B: addresses 0 and 64 conflict.
	c := MustNew(Config{Size: 64, LineSize: 32, Assoc: 1})
	c.Access(0, true) // dirty line 0 (set 0)
	out := c.Access(64, false)
	if !out.Fill || !out.Writeback {
		t.Fatalf("conflicting fill over dirty line: %+v, want writeback", out)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
	// Evicting a clean line must not write back.
	out = c.Access(128, false)
	if out.Writeback {
		t.Fatalf("clean eviction wrote back: %+v", out)
	}
}

func TestLRUReplacement(t *testing.T) {
	// One set, 2 ways (fully associative 2-line cache).
	c := MustNew(Config{Size: 64, LineSize: 32, Assoc: 0, Replacement: LRU})
	c.Access(0, false)   // A
	c.Access(100, false) // B (line 3)
	c.Access(0, false)   // touch A: B is now LRU
	c.Access(200, false) // C evicts B
	if !c.Contains(0) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Contains(100) {
		t.Fatal("LRU kept the least recently used line")
	}
}

func TestFIFOReplacement(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 32, Assoc: 0, Replacement: FIFO})
	c.Access(0, false)   // A first in
	c.Access(100, false) // B
	c.Access(0, false)   // touching A must NOT save it under FIFO
	c.Access(200, false) // C evicts A (first in)
	if c.Contains(0) {
		t.Fatal("FIFO kept the first-in line after a touch")
	}
	if !c.Contains(100) {
		t.Fatal("FIFO evicted the wrong line")
	}
}

func TestRandomReplacementStaysInSet(t *testing.T) {
	c := MustNew(Config{Size: 128, LineSize: 32, Assoc: 2, Replacement: Random, Seed: 7})
	// Fill both ways of set 0 (lines 0 and 2 map to set 0 of 2 sets).
	c.Access(0, false)
	c.Access(128, false)
	c.Access(256, false) // forces a random eviction in set 0
	// Exactly one of the two originals survives.
	a, b := c.Contains(0), c.Contains(128)
	if a == b {
		t.Fatalf("random eviction: contains(0)=%v contains(128)=%v, want exactly one", a, b)
	}
	if !c.Contains(256) {
		t.Fatal("newly filled line missing")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := MustNew(cfg8K())
	c.Access(0, false) // read miss
	c.Access(0, false) // read hit
	c.Access(0, true)  // write hit
	c.Access(64, true) // write miss (allocate)
	c.Access(128, false)
	s := c.Stats()
	if s.Reads != 3 || s.Writes != 2 {
		t.Fatalf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.ReadHits != 1 || s.WriteHits != 1 || s.ReadMiss != 2 || s.WriteMiss != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Accesses() != 5 || s.Hits() != 2 || s.Misses() != 3 {
		t.Fatalf("derived stats wrong: %+v", s)
	}
	if hr := s.HitRatio(); hr != 0.4 {
		t.Fatalf("hit ratio %v, want 0.4", hr)
	}
	if mr := s.MissRatio(); mr != 0.6 {
		t.Fatalf("miss ratio %v, want 0.6", mr)
	}
}

func TestEmptyStatsRatios(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.MissRatio() != 0 || s.FlushRatio() != 0 {
		t.Fatalf("empty stats ratios non-zero: %+v", s)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := MustNew(cfg8K())
	c.Access(0x500, false)
	c.ResetStats()
	if got := c.Stats().Accesses(); got != 0 {
		t.Fatalf("stats not cleared: %d accesses", got)
	}
	if !c.Contains(0x500) {
		t.Fatal("ResetStats dropped cache contents")
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := MustNew(cfg8K())
	c.Access(0x500, true)
	c.Reset()
	if c.Contains(0x500) || c.ValidLines() != 0 || c.Stats().Accesses() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestFlushAll(t *testing.T) {
	c := MustNew(cfg8K())
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	n := c.FlushAll()
	if n != 2 {
		t.Fatalf("FlushAll flushed %d lines, want 2", n)
	}
	if c.ValidLines() != 0 {
		t.Fatal("FlushAll left valid lines")
	}
	if got := c.Stats().Writebacks; got != 2 {
		t.Fatalf("writebacks after FlushAll = %d, want 2", got)
	}
}

func TestHitRatioGrowsWithCacheSize(t *testing.T) {
	refs := trace.Collect(trace.MustProgram(trace.Doduc, 3), 200000)
	points, err := SweepSizes(cfg8K(), []int{1 << 10, 8 << 10, 64 << 10}, refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Profile.HitRatio < points[i-1].Profile.HitRatio {
			t.Fatalf("hit ratio fell when growing cache: %v then %v",
				points[i-1].Profile.HitRatio, points[i].Profile.HitRatio)
		}
	}
	// doduc's pointer-chase pool exceeds 64K, so the ceiling is modest.
	if points[2].Profile.HitRatio < 0.7 {
		t.Fatalf("64K cache hit ratio %.3f unexpectedly low", points[2].Profile.HitRatio)
	}
}

func TestLargerLinesHelpSequential(t *testing.T) {
	// For a unit-stride sweep, larger lines must cut the miss ratio
	// roughly in proportion (the premise of the paper's §5.4).
	refs := trace.Collect(trace.Sequential(trace.SequentialConfig{
		Seed: 1, Base: 0, Length: 1 << 20, Stride: 8, ElemSize: 8}), 100000)
	points, err := SweepLineSizes(Config{Size: 8 << 10, Assoc: 2}, []int{8, 16, 32, 64}, refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1].Profile, points[i].Profile
		if cur.HitRatio <= prev.HitRatio {
			t.Fatalf("line %d hit ratio %.4f not above line %d's %.4f",
				points[i].Config.LineSize, cur.HitRatio, points[i-1].Config.LineSize, prev.HitRatio)
		}
	}
}

func TestMeasureProfile(t *testing.T) {
	c := MustNew(cfg8K())
	refs := trace.Collect(trace.MustProgram(trace.Swm256, 5), 100000)
	p := Measure(c, refs)
	if p.E == 0 || p.Refs != 100000 {
		t.Fatalf("profile E=%d refs=%d", p.E, p.Refs)
	}
	if p.R == 0 || p.R%32 != 0 {
		t.Fatalf("R = %d, want positive multiple of line size", p.R)
	}
	if p.W != 0 {
		t.Fatalf("W = %d under write-allocate, want 0", p.W)
	}
	if p.HitRatio <= 0.5 || p.HitRatio >= 1 {
		t.Fatalf("hit ratio %.3f out of plausible range", p.HitRatio)
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		t.Fatalf("alpha %.3f out of [0,1]", p.Alpha)
	}
	// Eq. (1): Λm = R/L + W under write-allocate.
	if want := p.R/32 + p.W; p.Misses != want {
		t.Fatalf("Λm = %d, want R/L + W = %d", p.Misses, want)
	}
}

func TestMeasureEmptyTrace(t *testing.T) {
	c := MustNew(cfg8K())
	p := Measure(c, nil)
	if p.E != 0 || p.R != 0 || p.Refs != 0 {
		t.Fatalf("empty trace profile: %+v", p)
	}
}

func TestMeasureSource(t *testing.T) {
	c := MustNew(cfg8K())
	p := MeasureSource(c, trace.MustProgram(trace.Ear, 1), 50000)
	if p.Refs != 50000 {
		t.Fatalf("refs = %d, want 50000", p.Refs)
	}
}

func TestWriteAroundWCount(t *testing.T) {
	cfg := cfg8K()
	cfg.WriteMiss = WriteAround
	c := MustNew(cfg)
	refs := trace.Collect(trace.MustProgram(trace.Doduc, 2), 100000)
	p := Measure(c, refs)
	if p.W == 0 {
		t.Fatal("write-around run recorded no bypassed writes")
	}
	if want := p.R/32 + p.W; p.Misses != want {
		t.Fatalf("Λm = %d, want R/L + W = %d (Eq. 1)", p.Misses, want)
	}
}

func TestSweepRejectsBadLineSize(t *testing.T) {
	if _, err := SweepLineSizes(cfg8K(), []int{24}, nil); err == nil {
		t.Fatal("SweepLineSizes accepted non-power-of-two line")
	}
	if _, err := SweepSizes(cfg8K(), []int{1000}, nil); err == nil {
		t.Fatal("SweepSizes accepted non-power-of-two size")
	}
}

func TestPolicyStrings(t *testing.T) {
	if WriteAllocate.String() != "write-allocate" || WriteAround.String() != "write-around" {
		t.Fatal("WriteMissPolicy.String wrong")
	}
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Fatal("Replacement.String wrong")
	}
	if WriteMissPolicy(9).String() == "" || Replacement(9).String() == "" {
		t.Fatal("unknown enum String empty")
	}
}

func TestAccessInvariantsQuick(t *testing.T) {
	// Property: for any access sequence, hits+misses == accesses,
	// fills >= writebacks is NOT required, but writebacks <= fills holds
	// because a writeback only happens on a fill in this design; and a
	// second access to the same address under write-allocate always hits.
	f := func(addrs []uint16, writes []bool) bool {
		c := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 2})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
			if !c.Contains(uint64(a)) {
				return false // write-allocate must leave the line resident
			}
		}
		s := c.Stats()
		return s.Hits()+s.Misses() == s.Accesses() && s.Writebacks <= s.Fills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidLinesNeverExceedCapacity(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(Config{Size: 512, LineSize: 32, Assoc: 4})
		for _, a := range addrs {
			c.Access(uint64(a), false)
		}
		return c.ValidLines() <= 512/32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEq1MissAccountingQuick(t *testing.T) {
	// Property (Eq. 1): under write-allocate Λm == Fills; under
	// write-around Λm == Fills + Bypasses.
	f := func(addrs []uint16, writes []bool, around bool) bool {
		cfg := Config{Size: 1 << 10, LineSize: 16, Assoc: 2}
		if around {
			cfg.WriteMiss = WriteAround
		}
		c := MustNew(cfg)
		for i, a := range addrs {
			c.Access(uint64(a), i < len(writes) && writes[i])
		}
		s := c.Stats()
		return s.Misses() == s.Fills+s.Bypasses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThroughHit(t *testing.T) {
	cfg := cfg8K()
	cfg.Write = WriteThrough
	c := MustNew(cfg)
	c.Access(0x100, false) // fill clean
	out := c.Access(0x100, true)
	if !out.Hit || !out.Through {
		t.Fatalf("write-through hit: %+v", out)
	}
	if c.Dirty(0x100) {
		t.Fatal("write-through marked the line dirty")
	}
	if got := c.Stats().Throughs; got != 1 {
		t.Fatalf("throughs = %d, want 1", got)
	}
}

func TestWriteThroughAllocateMiss(t *testing.T) {
	cfg := cfg8K()
	cfg.Write = WriteThrough
	c := MustNew(cfg)
	out := c.Access(0x200, true)
	if !out.Fill || !out.Through {
		t.Fatalf("write-through allocate miss: %+v", out)
	}
	if c.Dirty(0x200) {
		t.Fatal("write-through allocated a dirty line")
	}
}

func TestWriteThroughNeverWritesBack(t *testing.T) {
	cfg := Config{Size: 64, LineSize: 32, Assoc: 1, Write: WriteThrough}
	c := MustNew(cfg)
	c.Access(0, true)
	out := c.Access(64, false) // conflicting fill over the written line
	if out.Writeback {
		t.Fatalf("write-through evicted with writeback: %+v", out)
	}
	if got := c.Stats().Writebacks; got != 0 {
		t.Fatalf("writebacks = %d, want 0", got)
	}
}

func TestTrafficAccounting(t *testing.T) {
	c := MustNew(Config{Size: 64, LineSize: 32, Assoc: 1})
	c.Access(0, true)   // fill 32B
	c.Access(64, false) // fill 32B + writeback 32B
	if got := c.Stats().Traffic(32, 4); got != 96 {
		t.Fatalf("write-back traffic = %d, want 96", got)
	}
	wt := MustNew(Config{Size: 64, LineSize: 32, Assoc: 1, Write: WriteThrough})
	wt.Access(0, true)   // fill 32 + through 4
	wt.Access(0, true)   // through 4
	wt.Access(64, false) // fill 32, no writeback
	if got := wt.Stats().Traffic(32, 4); got != 72 {
		t.Fatalf("write-through traffic = %d, want 72", got)
	}
}

func TestWriteThroughVsWriteBackTrafficCrossover(t *testing.T) {
	// The classic Goodman-style result: which write policy moves less
	// bus traffic depends on stores-per-dirty-line vs L/D. A
	// high-reuse workload re-writes cached lines (write-back coalesces
	// them into one flush); a streaming workload dirties each line a
	// few times before eviction (write-through's word-sized stores win).
	traffic := func(refs []trace.Ref, size int, wp WritePolicy) uint64 {
		c := MustNew(Config{Size: size, LineSize: 32, Assoc: 2, Write: wp})
		for _, r := range refs {
			c.Access(r.Addr, r.Write)
		}
		return c.Stats().Traffic(32, 4)
	}
	reuse := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: 7, Lines: 65536, Theta: 1.5, WriteFrac: 0.3}), 100000)
	if wb, wt := traffic(reuse, 32<<10, WriteBack), traffic(reuse, 32<<10, WriteThrough); wb >= wt {
		t.Fatalf("high-reuse: write-back traffic %d not below write-through %d", wb, wt)
	}
	stream := trace.Collect(trace.MustProgram(trace.Swm256, 13), 100000)
	if wb, wt := traffic(stream, 8<<10, WriteBack), traffic(stream, 8<<10, WriteThrough); wt >= wb {
		t.Fatalf("streaming: write-through traffic %d not below write-back %d", wt, wb)
	}
}

func TestWritePolicyString(t *testing.T) {
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Fatal("WritePolicy strings wrong")
	}
	if WritePolicy(5).String() != "WritePolicy(5)" {
		t.Fatal("unknown WritePolicy string wrong")
	}
}

func TestPrefetchNextLine(t *testing.T) {
	cfg := cfg8K()
	cfg.Prefetch = true
	c := MustNew(cfg)
	out := c.Access(0x1000, false) // miss: fills 0x1000 line and prefetches 0x1020
	if !out.Fill {
		t.Fatalf("demand miss outcome: %+v", out)
	}
	if !c.Contains(0x1020) {
		t.Fatal("next line not prefetched")
	}
	// Demand use of the prefetched line: a hit that counts PrefetchHits.
	out = c.Access(0x1020, false)
	if !out.Hit {
		t.Fatalf("prefetched line access: %+v, want hit", out)
	}
	s := c.Stats()
	if s.PrefetchFills != 1 || s.PrefetchHits != 1 {
		t.Fatalf("prefetch stats %+v", s)
	}
	// Re-access must not count another prefetch hit.
	c.Access(0x1020, false)
	if got := c.Stats().PrefetchHits; got != 1 {
		t.Fatalf("prefetch hits = %d after reuse, want 1", got)
	}
}

func TestPrefetchDoesNotCascade(t *testing.T) {
	cfg := cfg8K()
	cfg.Prefetch = true
	c := MustNew(cfg)
	c.Access(0x1000, false)
	if c.Contains(0x1040) {
		t.Fatal("prefetch cascaded to line+2")
	}
}

func TestPrefetchAlreadyResidentIsFree(t *testing.T) {
	cfg := cfg8K()
	cfg.Prefetch = true
	c := MustNew(cfg)
	c.Access(0x1020, false) // residentize the would-be prefetch target
	before := c.Stats().PrefetchFills
	c.Access(0x1000, false) // miss; its prefetch target is already there
	if got := c.Stats().PrefetchFills - before; got != 0 {
		t.Fatalf("prefetch fills delta = %d, want 0 (target already resident)", got)
	}
}

func TestPrefetchCutsSequentialMisses(t *testing.T) {
	// On a unit-stride sweep, next-line prefetch must roughly halve
	// demand misses (every other line arrives speculatively).
	refs := trace.Collect(trace.Sequential(trace.SequentialConfig{
		Seed: 1, Base: 0, Length: 1 << 20, Stride: 8, ElemSize: 8}), 100000)
	plain := MustNew(cfg8K())
	cfgP := cfg8K()
	cfgP.Prefetch = true
	pf := MustNew(cfgP)
	for _, r := range refs {
		plain.Access(r.Addr, r.Write)
		pf.Access(r.Addr, r.Write)
	}
	mPlain, mPf := plain.Stats().Misses(), pf.Stats().Misses()
	if mPf >= mPlain {
		t.Fatalf("prefetch did not cut misses: %d vs %d", mPf, mPlain)
	}
	ratio := float64(mPf) / float64(mPlain)
	if ratio > 0.65 {
		t.Fatalf("prefetch cut misses only to %.2f of baseline, want ≈0.5 on unit stride", ratio)
	}
	// Traffic must not drop: speculative lines still cross the bus.
	if pf.Stats().Traffic(32, 4) < plain.Stats().Traffic(32, 4) {
		t.Fatal("prefetch reduced traffic, which is impossible")
	}
}

func TestPrefetchPollutionOnRandomWorkload(t *testing.T) {
	// On a low-spatial-locality workload, next-line prefetch wastes
	// traffic: prefetch fills arrive but few are used.
	refs := trace.Collect(trace.WorkingSet(trace.WorkingSetConfig{
		Seed: 2, Base: 0, SetBytes: 256 << 10, HeapBytes: 1 << 22, Migrate: 0.001, ElemSize: 8}), 80000)
	cfgP := cfg8K()
	cfgP.Prefetch = true
	c := MustNew(cfgP)
	for _, r := range refs {
		c.Access(r.Addr, r.Write)
	}
	s := c.Stats()
	if s.PrefetchFills == 0 {
		t.Fatal("no prefetches issued")
	}
	accuracy := float64(s.PrefetchHits) / float64(s.PrefetchFills)
	if accuracy > 0.5 {
		t.Fatalf("prefetch accuracy %.2f on a random workload — generator locality too strong", accuracy)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := MustNew(Config{Size: 4 << 10, LineSize: 32, Assoc: 2})
	for i := 0; i < 500; i++ {
		c.Access(uint64(i)*64, i%3 == 0)
	}
	before := c.Stats()
	cl := c.Clone()
	if cl.Stats() != before {
		t.Fatalf("clone stats %+v, want %+v", cl.Stats(), before)
	}
	if cl.ValidLines() != c.ValidLines() {
		t.Fatalf("clone holds %d lines, original %d", cl.ValidLines(), c.ValidLines())
	}
	// Mutating the clone must not leak into the original (shared
	// backing array would).
	for i := 0; i < 500; i++ {
		cl.Access(uint64(i)*64+1<<20, true)
	}
	if c.Stats() != before {
		t.Fatalf("original stats changed after clone accesses: %+v", c.Stats())
	}
	if c.Contains(1 << 20) {
		t.Fatal("clone fill leaked a line into the original")
	}
	// And the clone replays identically to the original from here on.
	a, b := c.Clone(), c.Clone()
	for i := 0; i < 200; i++ {
		oa := a.Access(uint64(i)*96, i%2 == 0)
		ob := b.Access(uint64(i)*96, i%2 == 0)
		if oa != ob {
			t.Fatalf("clones diverged at access %d: %+v vs %+v", i, oa, ob)
		}
	}
}
