package cache

import "fmt"

// SectorCache implements sector (sub-block) placement: one address tag
// covers a whole sector, but data validity is tracked per sub-block
// and misses fetch only the referenced sub-block. Alpert & Flynn (the
// paper's reference [6]) advocate large lines because they amortize
// tag storage; sector caches get that amortization without the large
// fill traffic — at the cost of giving up the spatial-prefetch effect
// whole-line fills provide. The sector experiment (E27) measures all
// three sides.
type SectorCache struct {
	sectorSize int // bytes per sector (one tag)
	subSize    int // bytes per sub-block (one valid+dirty bit)
	subsPer    int
	sets       [][]sector
	setLo      uint64
	clock      uint64
	stats      SectorStats
}

type sector struct {
	tag   uint64
	valid bool
	stamp uint64
	sub   []subBlock
}

type subBlock struct {
	valid bool
	dirty bool
}

// SectorStats counts the sector cache's events.
type SectorStats struct {
	Accesses   uint64
	Hits       uint64 // tag and sub-block both present
	SubMisses  uint64 // tag present, sub-block absent (partial fill)
	SectorMiss uint64 // tag absent (sector replaced, one sub-block filled)
	SubFills   uint64 // sub-blocks fetched from memory
	SubFlushes uint64 // dirty sub-blocks written back
}

// HitRatio returns hits over accesses.
func (s SectorStats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Traffic returns bus traffic in bytes: sub-block fills plus dirty
// sub-block writebacks, each subSize bytes.
func (s SectorStats) Traffic(subSize int) uint64 {
	return (s.SubFills + s.SubFlushes) * uint64(subSize)
}

// NewSector builds a sector cache of size bytes with sectorSize-byte
// sectors divided into subSize-byte sub-blocks, assoc ways (0 = fully
// associative). All sizes must be powers of two.
func NewSector(size, sectorSize, subSize, assoc int) (*SectorCache, error) {
	switch {
	case size <= 0 || size&(size-1) != 0:
		return nil, fmt.Errorf("cache: sector cache size %d not a power of two", size)
	case sectorSize <= 0 || sectorSize&(sectorSize-1) != 0:
		return nil, fmt.Errorf("cache: sector size %d not a power of two", sectorSize)
	case subSize <= 0 || subSize&(subSize-1) != 0 || subSize > sectorSize:
		return nil, fmt.Errorf("cache: sub-block size %d invalid for sector %d", subSize, sectorSize)
	case sectorSize > size:
		return nil, fmt.Errorf("cache: sector %d exceeds cache %d", sectorSize, size)
	}
	sectors := size / sectorSize
	if assoc == 0 {
		assoc = sectors
	}
	if assoc < 0 || assoc > sectors || sectors%assoc != 0 {
		return nil, fmt.Errorf("cache: associativity %d invalid for %d sectors", assoc, sectors)
	}
	nsets := sectors / assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: sector set count %d not a power of two", nsets)
	}
	c := &SectorCache{
		sectorSize: sectorSize,
		subSize:    subSize,
		subsPer:    sectorSize / subSize,
		sets:       make([][]sector, nsets),
		setLo:      log2(uint64(nsets)),
	}
	for i := range c.sets {
		ways := make([]sector, assoc)
		for w := range ways {
			ways[w].sub = make([]subBlock, c.subsPer)
		}
		c.sets[i] = ways
	}
	return c, nil
}

// Stats returns the accumulated counters.
func (c *SectorCache) Stats() SectorStats { return c.stats }

// Access performs one reference.
func (c *SectorCache) Access(addr uint64, write bool) {
	c.clock++
	c.stats.Accesses++
	sectorIdx := addr / uint64(c.sectorSize)
	set := sectorIdx & ((1 << c.setLo) - 1)
	tag := sectorIdx >> c.setLo
	sub := int(addr%uint64(c.sectorSize)) / c.subSize
	ways := c.sets[set]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].stamp = c.clock
			if ways[i].sub[sub].valid {
				c.stats.Hits++
			} else {
				c.stats.SubMisses++
				c.stats.SubFills++
				ways[i].sub[sub].valid = true
			}
			if write {
				ways[i].sub[sub].dirty = true
			}
			return
		}
	}

	// Sector miss: replace the LRU sector, flush its dirty sub-blocks,
	// fill only the referenced sub-block.
	c.stats.SectorMiss++
	v, min := 0, ^uint64(0)
	for i := range ways {
		if !ways[i].valid {
			v = i
			break
		}
		if ways[i].stamp < min {
			v, min = i, ways[i].stamp
		}
	}
	if ways[v].valid {
		for _, sb := range ways[v].sub {
			if sb.valid && sb.dirty {
				c.stats.SubFlushes++
			}
		}
	}
	ways[v].tag = tag
	ways[v].valid = true
	ways[v].stamp = c.clock
	for i := range ways[v].sub {
		ways[v].sub[i] = subBlock{}
	}
	ways[v].sub[sub] = subBlock{valid: true, dirty: write}
	c.stats.SubFills++
}

// TagCount returns the number of address tags the cache stores — the
// quantity sector placement shrinks relative to a small-line cache.
func (c *SectorCache) TagCount() int {
	n := 0
	for _, set := range c.sets {
		n += len(set)
	}
	return n
}
