// Package cache implements a set-associative CPU cache simulator.
//
// It supports the design points the paper's model covers: write-back
// caches with either write-allocate or write-around (no-allocate) write
// miss handling (§3.1 of Chen & Somani, ISCA '94), LRU/FIFO/random
// replacement, and arbitrary power-of-two geometry. The simulator counts
// the quantities the analytic model is parameterized by: the bytes read
// on misses (R), the write-around miss count (W), and the flush ratio α
// (bytes of dirty lines copied back per byte fetched).
package cache

import (
	"errors"
	"fmt"
)

// WriteMissPolicy selects how write misses are handled (§3.1).
type WriteMissPolicy int

const (
	// WriteAllocate fetches the missing line before performing the
	// write; write misses then count toward R and W is zero.
	WriteAllocate WriteMissPolicy = iota
	// WriteAround sends the write directly to memory without allocating
	// a line; write misses count toward W, not R.
	WriteAround
)

func (p WriteMissPolicy) String() string {
	switch p {
	case WriteAllocate:
		return "write-allocate"
	case WriteAround:
		return "write-around"
	default:
		return fmt.Sprintf("WriteMissPolicy(%d)", int(p))
	}
}

// WritePolicy selects how write hits reach memory.
type WritePolicy int

const (
	// WriteBack marks the line dirty and copies it back on eviction
	// (the paper's on-chip data cache, §3.1 assumption 1).
	WriteBack WritePolicy = iota
	// WriteThrough sends every store to memory immediately; lines are
	// never dirty and evictions never flush. Goodman's classic
	// traffic comparison ([1] in the paper) contrasts the two.
	WriteThrough
)

func (p WritePolicy) String() string {
	switch p {
	case WriteBack:
		return "write-back"
	case WriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(p))
	}
}

// Replacement selects the victim-choice policy within a set.
type Replacement int

const (
	LRU Replacement = iota
	FIFO
	Random
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes a cache geometry and its policies.
type Config struct {
	Size        int             // total capacity in bytes (power of two)
	LineSize    int             // line size in bytes (power of two)
	Assoc       int             // ways per set; 0 means fully associative
	Write       WritePolicy     // write-back (default) or write-through
	WriteMiss   WriteMissPolicy // write-allocate or write-around
	Replacement Replacement     // LRU, FIFO or Random
	Seed        uint64          // seed for Random replacement

	// Prefetch enables next-line prefetch-on-miss: every demand fill
	// also fetches the sequentially next line if absent. The paper
	// (§3.3, citing its refs [8][9]) folds prefetching into the model
	// by shrinking R to the misses whose penalty is not hidden; the
	// simulator measures exactly that shrinkage (and the traffic cost).
	Prefetch bool
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.Size&(c.Size-1) != 0:
		return fmt.Errorf("cache: size %d is not a positive power of two", c.Size)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineSize)
	case c.LineSize > c.Size:
		return fmt.Errorf("cache: line size %d exceeds cache size %d", c.LineSize, c.Size)
	case c.Assoc < 0:
		return fmt.Errorf("cache: negative associativity %d", c.Assoc)
	}
	lines := c.Size / c.LineSize
	assoc := c.Assoc
	if assoc == 0 {
		assoc = lines
	}
	if assoc > lines {
		return fmt.Errorf("cache: associativity %d exceeds %d lines", assoc, lines)
	}
	if lines%assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	lines := c.Size / c.LineSize
	assoc := c.Assoc
	if assoc == 0 {
		assoc = lines
	}
	return lines / assoc
}

// ErrNotPowerOfTwo is returned by helpers that require power-of-two sizes.
var ErrNotPowerOfTwo = errors.New("cache: value is not a power of two")

// Outcome describes what a single access did. Fill and Writeback carry
// the information the memory-timing and stall models need.
type Outcome struct {
	Hit       bool   // the reference hit in the cache
	Fill      bool   // a line fill from memory was started
	FillLine  uint64 // line index fetched (valid when Fill)
	Writeback bool   // a dirty victim line was copied back (flushed)
	Bypassed  bool   // a write-around store went straight to memory
	Through   bool   // a write-through store also went to memory

	Evicted      bool   // a valid line was displaced by the fill
	EvictedLine  uint64 // line index of the displaced line (valid when Evicted)
	EvictedDirty bool   // whether the displaced line was dirty
}

// Stats accumulates event counts over a run. All byte quantities follow
// the paper's Table 1 definitions.
type Stats struct {
	Reads      uint64 // load references
	Writes     uint64 // store references
	ReadHits   uint64
	WriteHits  uint64
	ReadMiss   uint64
	WriteMiss  uint64
	Fills      uint64 // lines fetched from memory on demand misses
	Writebacks uint64 // dirty lines copied back
	Bypasses   uint64 // write-around stores sent to memory
	Throughs   uint64 // write-through stores sent to memory

	PrefetchFills uint64 // lines fetched speculatively by next-line prefetch
	PrefetchHits  uint64 // demand accesses that hit a prefetched, not-yet-used line
}

// Traffic returns the processor-memory bus traffic in bytes for the
// run: line fills and copy-backs move whole lines; write-around and
// write-through stores move one bus transfer each. The paper's §2
// warns that optimizing this number alone "may not produce a
// cost-effective system" — the traffic experiment (E21) quantifies
// the divergence from the delay optimum.
func (s Stats) Traffic(lineSize, busWidth int) uint64 {
	return (s.Fills+s.PrefetchFills+s.Writebacks)*uint64(lineSize) +
		(s.Bypasses+s.Throughs)*uint64(busWidth)
}

// Accesses returns the total number of references.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Hits returns the total number of hits.
func (s Stats) Hits() uint64 { return s.ReadHits + s.WriteHits }

// Misses returns Λm, the number of load/store instructions that miss
// (Eq. (1) of the paper: R/L + W for write-around; R/L for
// write-allocate, where write misses read a line and are part of R).
func (s Stats) Misses() uint64 { return s.ReadMiss + s.WriteMiss }

// HitRatio returns hits over accesses, or 0 for an empty run.
func (s Stats) HitRatio() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Accesses())
}

// MissRatio returns 1 - HitRatio for a non-empty run, else 0.
func (s Stats) MissRatio() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return 1 - s.HitRatio()
}

// FlushRatio returns α, the ratio of dirty-line bytes copied back to
// line bytes fetched (both in units of lines, so line size cancels).
// The paper assumes α = 0.5 in its analytic studies; the simulator
// measures it.
func (s Stats) FlushRatio() float64 {
	if s.Fills == 0 {
		return 0
	}
	return float64(s.Writebacks) / float64(s.Fills)
}

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	// prefetched marks a speculatively fetched line that no demand
	// access has used yet.
	prefetched bool
	// stamp orders lines for LRU (last-use time) or FIFO (fill time).
	stamp uint64
}

// Cache is a set-associative cache simulator. It is not safe for
// concurrent use. Construct with New.
type Cache struct {
	cfg    Config
	sets   [][]line
	setLo  uint64 // log2(sets)
	lineLo uint64 // log2(lineSize)
	clock  uint64
	rng    uint64 // xorshift state for Random replacement
	stats  Stats
}

// New constructs a cache from cfg, returning an error if the
// configuration is invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	assoc := (cfg.Size / cfg.LineSize) / sets
	c := &Cache{
		cfg:    cfg,
		sets:   make([][]line, sets),
		setLo:  log2(uint64(sets)),
		lineLo: log2(uint64(cfg.LineSize)),
		rng:    cfg.Seed | 1,
	}
	backing := make([]line, sets*assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return c, nil
}

// MustNew is New but panics on error, for tests and benchmarks with
// constant configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func log2(v uint64) uint64 {
	var n uint64
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Clone returns a deep copy of the cache: geometry, line contents,
// replacement state and statistics. Accesses to the clone never touch
// the original, so one warmed cache can seed many concurrent replays.
func (c *Cache) Clone() *Cache {
	sets := len(c.sets)
	assoc := 0
	if sets > 0 {
		assoc = len(c.sets[0])
	}
	n := &Cache{
		cfg:    c.cfg,
		sets:   make([][]line, sets),
		setLo:  c.setLo,
		lineLo: c.lineLo,
		clock:  c.clock,
		rng:    c.rng,
		stats:  c.stats,
	}
	backing := make([]line, sets*assoc)
	for i := range n.sets {
		copy(backing[i*assoc:(i+1)*assoc], c.sets[i])
		n.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return n
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters without touching cache contents, so a
// warm-up phase can be excluded from measurement.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// lineIndex returns the global line index (addr / lineSize).
func (c *Cache) lineIndex(addr uint64) uint64 { return addr >> c.lineLo }

// split returns the set index and tag for an address.
func (c *Cache) split(addr uint64) (set, tag uint64) {
	l := c.lineIndex(addr)
	return l & ((1 << c.setLo) - 1), l >> c.setLo
}

// Access performs one reference and returns its outcome. write selects
// store vs load. Accesses are processed in one pass: lookup, then on a
// miss the policy-dependent allocate/victimize/bypass sequence.
func (c *Cache) Access(addr uint64, write bool) Outcome {
	c.clock++
	set, tag := c.split(addr)
	ways := c.sets[set]

	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}

	// Lookup.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if c.cfg.Replacement == LRU {
				ways[i].stamp = c.clock
			}
			if ways[i].prefetched {
				ways[i].prefetched = false
				c.stats.PrefetchHits++
			}
			if write {
				c.stats.WriteHits++
				if c.cfg.Write == WriteThrough {
					c.stats.Throughs++
					return Outcome{Hit: true, Through: true}
				}
				ways[i].dirty = true
			} else {
				c.stats.ReadHits++
			}
			return Outcome{Hit: true}
		}
	}

	// Miss.
	if write {
		c.stats.WriteMiss++
		if c.cfg.WriteMiss == WriteAround {
			c.stats.Bypasses++
			return Outcome{Bypassed: true}
		}
	} else {
		c.stats.ReadMiss++
	}

	// Allocate: pick a victim way.
	v := c.victim(ways)
	out := Outcome{Fill: true, FillLine: c.lineIndex(addr)}
	if ways[v].valid {
		out.Evicted = true
		out.EvictedLine = ways[v].tag<<c.setLo | set
		out.EvictedDirty = ways[v].dirty
	}
	if ways[v].valid && ways[v].dirty {
		out.Writeback = true
		c.stats.Writebacks++
	}
	dirty := write
	if c.cfg.Write == WriteThrough {
		// The store's data also goes to memory; the line stays clean.
		dirty = false
		if write {
			out.Through = true
			c.stats.Throughs++
		}
	}
	ways[v] = line{tag: tag, valid: true, dirty: dirty, stamp: c.clock}
	c.stats.Fills++

	if c.cfg.Prefetch {
		c.prefetchNext(c.lineIndex(addr) + 1)
	}
	return out
}

// prefetchNext speculatively fills lineIdx if absent, as next-line
// prefetch-on-miss does. Prefetch fills never cascade.
func (c *Cache) prefetchNext(lineIdx uint64) {
	set := lineIdx & ((1 << c.setLo) - 1)
	tag := lineIdx >> c.setLo
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return // already resident
		}
	}
	v := c.victim(ways)
	if ways[v].valid && ways[v].dirty {
		c.stats.Writebacks++
	}
	ways[v] = line{tag: tag, valid: true, prefetched: true, stamp: c.clock}
	c.stats.PrefetchFills++
}

// victim returns the way index to replace in set ways: an invalid way if
// one exists, else per the replacement policy.
func (c *Cache) victim(ways []line) int {
	for i := range ways {
		if !ways[i].valid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case Random:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return int(c.rng % uint64(len(ways)))
	default: // LRU and FIFO both evict the oldest stamp.
		v, min := 0, ways[0].stamp
		for i := 1; i < len(ways); i++ {
			if ways[i].stamp < min {
				v, min = i, ways[i].stamp
			}
		}
		return v
	}
}

// Contains reports whether the line holding addr is present (no state
// update, no statistics).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.split(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Dirty reports whether the line holding addr is present and dirty.
func (c *Cache) Dirty(addr uint64) bool {
	set, tag := c.split(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return w.dirty
		}
	}
	return false
}

// FlushAll writes back every dirty line and invalidates the cache,
// returning the number of lines flushed. Statistics are preserved and
// the flushes are counted as writebacks.
func (c *Cache) FlushAll() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				n++
				c.stats.Writebacks++
			}
			set[i] = line{}
		}
	}
	return n
}

// ValidLines returns the number of valid lines currently resident.
func (c *Cache) ValidLines() int {
	n := 0
	for _, set := range c.sets {
		for _, w := range set {
			if w.valid {
				n++
			}
		}
	}
	return n
}
