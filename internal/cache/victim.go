package cache

import "fmt"

// VictimCache couples a main cache with a small fully-associative
// victim buffer (Jouppi, ISCA 1990 — reference [7] of the paper):
// lines displaced from the main cache land in the buffer, and a
// main-cache miss that hits the buffer swaps the line back without a
// memory fill. It removes most conflict misses of a direct-mapped
// cache at a fraction of the area of doubling associativity — another
// feature the hit-ratio currency can price.
type VictimCache struct {
	main   *Cache
	victim []victimLine
	stats  VictimStats
	clock  uint64
}

type victimLine struct {
	line  uint64
	dirty bool
	valid bool
	stamp uint64
}

// VictimStats counts victim-buffer events.
type VictimStats struct {
	SwapHits  uint64 // main-cache misses satisfied by the buffer
	Inserts   uint64 // displaced lines captured by the buffer
	DirtyOut  uint64 // buffer evictions that wrote back to memory
	Evictions uint64 // buffer entries pushed out

	// bookkeepingWrites counts internal dirty-restoration touches that
	// must be excluded from combined statistics.
	bookkeepingWrites uint64
}

// CombinedStats summarizes the two-level structure as one cache:
// swap hits count as hits (they cost a swap, not a memory fill).
type CombinedStats struct {
	Accesses   uint64
	Hits       uint64 // main hits + swap hits
	Misses     uint64 // true memory fills (plus write-around bypasses)
	HitRatio   float64
	Writebacks uint64 // writes to memory from the buffer
}

// NewVictim wraps a main cache configuration with an entries-deep
// victim buffer. entries must be in 1..64 (Jouppi evaluated 1-15).
func NewVictim(cfg Config, entries int) (*VictimCache, error) {
	if entries <= 0 || entries > 64 {
		return nil, fmt.Errorf("cache: victim buffer entries %d, want 1..64", entries)
	}
	main, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &VictimCache{main: main, victim: make([]victimLine, entries)}, nil
}

// Main returns the wrapped main cache.
func (v *VictimCache) Main() *Cache { return v.main }

// VictimStats returns the buffer's counters.
func (v *VictimCache) VictimStats() VictimStats { return v.stats }

// Access performs one reference through the two-level structure. The
// returned outcome reflects memory-visible behaviour: a swap hit has
// Hit=true and Fill=false, and displaced lines only write back to
// memory when they fall out of the buffer dirty.
func (v *VictimCache) Access(addr uint64, write bool) Outcome {
	v.clock++
	line := addr / uint64(v.main.Config().LineSize)

	if v.main.Contains(addr) {
		return v.main.Access(addr, write)
	}
	swapIdx := v.find(line)
	out := v.main.Access(addr, write)
	if out.Bypassed {
		// Write-around store: no allocation happened; the buffered
		// copy (if any) is now stale and must be dropped.
		if swapIdx >= 0 {
			v.victim[swapIdx].valid = false
		}
		return out
	}
	// A fill occurred in the main cache. Capture its victim.
	if out.Evicted {
		v.insert(out.EvictedLine, out.EvictedDirty)
		// The buffer absorbed the victim; memory sees no writeback now.
		out.Writeback = false
		out.Evicted = false
	}
	if swapIdx >= 0 {
		// The line came from the buffer, not memory: a swap, not a fill.
		v.stats.SwapHits++
		if v.victim[swapIdx].dirty && !write {
			// Preserve the dirty state the buffer was holding.
			v.main.Access(addr, true)
			v.stats.bookkeepingWrites++
		}
		v.victim[swapIdx].valid = false
		out.Hit = true
		out.Fill = false
	}
	return out
}

// find returns the buffer slot holding line, or -1.
func (v *VictimCache) find(line uint64) int {
	for i := range v.victim {
		if v.victim[i].valid && v.victim[i].line == line {
			return i
		}
	}
	return -1
}

// insert places a displaced line into the buffer, evicting LRU.
func (v *VictimCache) insert(line uint64, dirty bool) {
	v.stats.Inserts++
	slot, oldest := -1, ^uint64(0)
	for i := range v.victim {
		if !v.victim[i].valid {
			slot = i
			break
		}
		if v.victim[i].stamp < oldest {
			slot, oldest = i, v.victim[i].stamp
		}
	}
	if v.victim[slot].valid {
		v.stats.Evictions++
		if v.victim[slot].dirty {
			v.stats.DirtyOut++
		}
	}
	v.victim[slot] = victimLine{line: line, dirty: dirty, valid: true, stamp: v.clock}
}

// Combined returns the memory-visible statistics of the two-level
// structure.
func (v *VictimCache) Combined() CombinedStats {
	m := v.main.Stats()
	accesses := m.Accesses() - v.stats.bookkeepingWrites
	hits := m.Hits() - v.stats.bookkeepingWrites + v.stats.SwapHits
	misses := m.Misses() - v.stats.SwapHits
	cs := CombinedStats{
		Accesses:   accesses,
		Hits:       hits,
		Misses:     misses,
		Writebacks: v.stats.DirtyOut,
	}
	if accesses > 0 {
		cs.HitRatio = float64(hits) / float64(accesses)
	}
	return cs
}
