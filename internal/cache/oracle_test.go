package cache

import (
	"tradeoff/internal/trace"

	"testing"
	"testing/quick"
)

// oracle is an independent, obviously-correct reference model of a
// set-associative LRU write-back cache, used to property-test the
// production simulator. It trades efficiency for clarity: sets are
// slices ordered most-recently-used first.
type oracle struct {
	lineSize int
	sets     [][]oracleLine
	assoc    int
}

type oracleLine struct {
	line  uint64
	dirty bool
}

func newOracle(size, lineSize, assoc int) *oracle {
	lines := size / lineSize
	if assoc == 0 {
		assoc = lines
	}
	return &oracle{
		lineSize: lineSize,
		sets:     make([][]oracleLine, lines/assoc),
		assoc:    assoc,
	}
}

// access performs one reference and reports (hit, writeback).
func (o *oracle) access(addr uint64, write bool) (hit, writeback bool) {
	line := addr / uint64(o.lineSize)
	set := int(line % uint64(len(o.sets)))
	s := o.sets[set]
	for i := range s {
		if s[i].line == line {
			entry := s[i]
			if write {
				entry.dirty = true
			}
			// Move to front (most recently used).
			copy(s[1:i+1], s[:i])
			s[0] = entry
			return true, false
		}
	}
	// Miss: allocate at front, evicting the LRU tail if full.
	entry := oracleLine{line: line, dirty: write}
	if len(s) < o.assoc {
		s = append([]oracleLine{entry}, s...)
	} else {
		writeback = s[len(s)-1].dirty
		copy(s[1:], s[:len(s)-1])
		s[0] = entry
	}
	o.sets[set] = s
	return false, writeback
}

func (o *oracle) contains(addr uint64) bool {
	line := addr / uint64(o.lineSize)
	set := int(line % uint64(len(o.sets)))
	for _, e := range o.sets[set] {
		if e.line == line {
			return true
		}
	}
	return false
}

// TestCacheMatchesOracle replays random reference sequences through
// both the production cache and the oracle, demanding identical hit,
// writeback and residency behaviour at every step.
func TestCacheMatchesOracle(t *testing.T) {
	geoms := []Config{
		{Size: 512, LineSize: 32, Assoc: 1},
		{Size: 512, LineSize: 32, Assoc: 2},
		{Size: 1024, LineSize: 16, Assoc: 4},
		{Size: 256, LineSize: 32, Assoc: 0}, // fully associative
	}
	for _, cfg := range geoms {
		cfg := cfg
		f := func(addrs []uint16, writes []bool) bool {
			c := MustNew(cfg)
			o := newOracle(cfg.Size, cfg.LineSize, cfg.Assoc)
			for i, a := range addrs {
				w := i < len(writes) && writes[i]
				got := c.Access(uint64(a), w)
				hit, wb := o.access(uint64(a), w)
				if got.Hit != hit || got.Writeback != wb {
					return false
				}
				if c.Contains(uint64(a)) != o.contains(uint64(a)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

// TestCacheMatchesOracleOnPrograms runs the oracle comparison over
// real workload-model traces, where set pressure and reuse patterns
// differ from uniform-random addresses.
func TestCacheMatchesOracleOnPrograms(t *testing.T) {
	cfg := Config{Size: 2 << 10, LineSize: 32, Assoc: 2}
	c := MustNew(cfg)
	o := newOracle(cfg.Size, cfg.LineSize, cfg.Assoc)
	refs := collectProgram(t, 40000)
	for i, r := range refs {
		got := c.Access(r.addr, r.write)
		hit, wb := o.access(r.addr, r.write)
		if got.Hit != hit || got.Writeback != wb {
			t.Fatalf("ref %d (%#x write=%v): cache (hit=%v wb=%v) vs oracle (hit=%v wb=%v)",
				i, r.addr, r.write, got.Hit, got.Writeback, hit, wb)
		}
	}
}

// twoLevelOracle is a verbatim transcription of the pre-refactor
// two-level Hierarchy.Access over two production caches, kept as the
// reference the N=2 generalized hierarchy must match bit-for-bit.
type twoLevelOracle struct {
	l1, l2 *Cache
	stats  twoLevelStats
}

// twoLevelStats mirrors the pre-refactor HierarchyStats field set.
type twoLevelStats struct {
	Accesses  uint64
	L1Hits    uint64
	L2Hits    uint64
	MemFills  uint64
	L1Flushes uint64
	L2Flushes uint64
}

func (o *twoLevelOracle) access(addr uint64, write bool) {
	o.stats.Accesses++
	out := o.l1.Access(addr, write)
	if out.Hit {
		o.stats.L1Hits++
		return
	}
	if out.Writeback {
		o.stats.L1Flushes++
		victimAddr := out.EvictedLine * uint64(o.l1.Config().LineSize)
		if wb := o.l2.Access(victimAddr, true); wb.Writeback {
			o.stats.L2Flushes++
		}
	}
	if out.Bypassed {
		if wb := o.l2.Access(addr, true); wb.Writeback {
			o.stats.L2Flushes++
		}
		return
	}
	l2out := o.l2.Access(addr, write)
	if l2out.Hit {
		o.stats.L2Hits++
		return
	}
	o.stats.MemFills++
	if l2out.Writeback {
		o.stats.L2Flushes++
	}
}

// TestHierarchyTwoLevelMatchesOracle pins the N-level refactor to the
// pre-refactor two-level behavior: identical counters and identical
// per-level cache state after every kind of traffic, across write
// policies (including the write-around bypass path).
func TestHierarchyTwoLevelMatchesOracle(t *testing.T) {
	configs := [][2]Config{
		{
			{Size: 512, LineSize: 32, Assoc: 1},
			{Size: 4 << 10, LineSize: 32, Assoc: 4},
		},
		{
			{Size: 512, LineSize: 16, Assoc: 2, WriteMiss: WriteAround},
			{Size: 2 << 10, LineSize: 32, Assoc: 2},
		},
		{
			{Size: 256, LineSize: 32, Assoc: 0, Write: WriteThrough},
			{Size: 2 << 10, LineSize: 64, Assoc: 4},
		},
	}
	refs := collectProgram(t, 40000)
	for _, cfgs := range configs {
		h, err := NewHierarchy(cfgs[0], cfgs[1])
		if err != nil {
			t.Fatalf("%+v: %v", cfgs, err)
		}
		o := &twoLevelOracle{l1: MustNew(cfgs[0]), l2: MustNew(cfgs[1])}
		for _, r := range refs {
			h.Access(r.addr, r.write)
			o.access(r.addr, r.write)
		}
		s := h.Stats()
		got := twoLevelStats{
			Accesses:  s.Accesses,
			L1Hits:    s.Levels[0].Hits,
			L2Hits:    s.Levels[1].Hits,
			MemFills:  s.MemFills,
			L1Flushes: s.Levels[0].Flushes,
			L2Flushes: s.Levels[1].Flushes,
		}
		if got != o.stats {
			t.Errorf("%+v:\n  N=2 stats %+v\n  oracle    %+v", cfgs, got, o.stats)
		}
		// Legacy ratio accessors must agree with the pre-refactor
		// definitions computed from the oracle's counters.
		if want := float64(o.stats.L1Hits) / float64(o.stats.Accesses); s.L1HitRatio() != want {
			t.Errorf("%+v: L1HitRatio %v, oracle %v", cfgs, s.L1HitRatio(), want)
		}
		if probes := o.stats.L2Hits + o.stats.MemFills; probes > 0 {
			if want := float64(o.stats.L2Hits) / float64(probes); s.L2LocalHitRatio() != want {
				t.Errorf("%+v: L2LocalHitRatio %v, oracle %v", cfgs, s.L2LocalHitRatio(), want)
			}
		}
		// Residency must match level by level too.
		for _, r := range refs[:512] {
			if h.L1().Contains(r.addr) != o.l1.Contains(r.addr) || h.L2().Contains(r.addr) != o.l2.Contains(r.addr) {
				t.Fatalf("%+v: residency of %#x diverged", cfgs, r.addr)
			}
		}
	}
}

// TestHierarchyOneLevelMatchesBareCache pins the degenerate N=1 case:
// a single-level hierarchy is a bare Cache with a counter veneer —
// same hits, same state, and every miss a memory fill.
func TestHierarchyOneLevelMatchesBareCache(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 1 << 10, LineSize: 32, Assoc: 2},
		{Size: 512, LineSize: 16, Assoc: 1, WriteMiss: WriteAround},
	} {
		h, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := MustNew(cfg)
		refs := collectProgram(t, 40000)
		var hits, misses, flushes uint64
		for _, r := range refs {
			h.Access(r.addr, r.write)
			out := c.Access(r.addr, r.write)
			if out.Hit {
				hits++
			} else {
				misses++
			}
			if out.Writeback {
				flushes++
			}
		}
		s := h.Stats()
		if s.Accesses != uint64(len(refs)) || s.Levels[0].Hits != hits || s.MemFills != misses || s.Levels[0].Flushes != flushes {
			t.Fatalf("%+v: one-level stats %+v vs bare cache hits=%d misses=%d flushes=%d",
				cfg, s, hits, misses, flushes)
		}
		for _, r := range refs[:512] {
			if h.L1().Contains(r.addr) != c.Contains(r.addr) {
				t.Fatalf("%+v: residency of %#x diverged from bare cache", cfg, r.addr)
			}
		}
	}
}

type simpleRef struct {
	addr  uint64
	write bool
}

// collectProgram grabs a workload-model trace in the oracle's reduced
// reference form.
func collectProgram(t *testing.T, n int) []simpleRef {
	t.Helper()
	full := trace.Collect(trace.MustProgram(trace.Wave5, 17), n)
	refs := make([]simpleRef, len(full))
	for i, r := range full {
		refs[i] = simpleRef{addr: r.Addr, write: r.Write}
	}
	return refs
}
