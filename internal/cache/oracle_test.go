package cache

import (
	"tradeoff/internal/trace"

	"testing"
	"testing/quick"
)

// oracle is an independent, obviously-correct reference model of a
// set-associative LRU write-back cache, used to property-test the
// production simulator. It trades efficiency for clarity: sets are
// slices ordered most-recently-used first.
type oracle struct {
	lineSize int
	sets     [][]oracleLine
	assoc    int
}

type oracleLine struct {
	line  uint64
	dirty bool
}

func newOracle(size, lineSize, assoc int) *oracle {
	lines := size / lineSize
	if assoc == 0 {
		assoc = lines
	}
	return &oracle{
		lineSize: lineSize,
		sets:     make([][]oracleLine, lines/assoc),
		assoc:    assoc,
	}
}

// access performs one reference and reports (hit, writeback).
func (o *oracle) access(addr uint64, write bool) (hit, writeback bool) {
	line := addr / uint64(o.lineSize)
	set := int(line % uint64(len(o.sets)))
	s := o.sets[set]
	for i := range s {
		if s[i].line == line {
			entry := s[i]
			if write {
				entry.dirty = true
			}
			// Move to front (most recently used).
			copy(s[1:i+1], s[:i])
			s[0] = entry
			return true, false
		}
	}
	// Miss: allocate at front, evicting the LRU tail if full.
	entry := oracleLine{line: line, dirty: write}
	if len(s) < o.assoc {
		s = append([]oracleLine{entry}, s...)
	} else {
		writeback = s[len(s)-1].dirty
		copy(s[1:], s[:len(s)-1])
		s[0] = entry
	}
	o.sets[set] = s
	return false, writeback
}

func (o *oracle) contains(addr uint64) bool {
	line := addr / uint64(o.lineSize)
	set := int(line % uint64(len(o.sets)))
	for _, e := range o.sets[set] {
		if e.line == line {
			return true
		}
	}
	return false
}

// TestCacheMatchesOracle replays random reference sequences through
// both the production cache and the oracle, demanding identical hit,
// writeback and residency behaviour at every step.
func TestCacheMatchesOracle(t *testing.T) {
	geoms := []Config{
		{Size: 512, LineSize: 32, Assoc: 1},
		{Size: 512, LineSize: 32, Assoc: 2},
		{Size: 1024, LineSize: 16, Assoc: 4},
		{Size: 256, LineSize: 32, Assoc: 0}, // fully associative
	}
	for _, cfg := range geoms {
		cfg := cfg
		f := func(addrs []uint16, writes []bool) bool {
			c := MustNew(cfg)
			o := newOracle(cfg.Size, cfg.LineSize, cfg.Assoc)
			for i, a := range addrs {
				w := i < len(writes) && writes[i]
				got := c.Access(uint64(a), w)
				hit, wb := o.access(uint64(a), w)
				if got.Hit != hit || got.Writeback != wb {
					return false
				}
				if c.Contains(uint64(a)) != o.contains(uint64(a)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}

// TestCacheMatchesOracleOnPrograms runs the oracle comparison over
// real workload-model traces, where set pressure and reuse patterns
// differ from uniform-random addresses.
func TestCacheMatchesOracleOnPrograms(t *testing.T) {
	cfg := Config{Size: 2 << 10, LineSize: 32, Assoc: 2}
	c := MustNew(cfg)
	o := newOracle(cfg.Size, cfg.LineSize, cfg.Assoc)
	refs := collectProgram(t, 40000)
	for i, r := range refs {
		got := c.Access(r.addr, r.write)
		hit, wb := o.access(r.addr, r.write)
		if got.Hit != hit || got.Writeback != wb {
			t.Fatalf("ref %d (%#x write=%v): cache (hit=%v wb=%v) vs oracle (hit=%v wb=%v)",
				i, r.addr, r.write, got.Hit, got.Writeback, hit, wb)
		}
	}
}

type simpleRef struct {
	addr  uint64
	write bool
}

// collectProgram grabs a workload-model trace in the oracle's reduced
// reference form.
func collectProgram(t *testing.T, n int) []simpleRef {
	t.Helper()
	full := trace.Collect(trace.MustProgram(trace.Wave5, 17), n)
	refs := make([]simpleRef, len(full))
	for i, r := range full {
		refs[i] = simpleRef{addr: r.Addr, write: r.Write}
	}
	return refs
}
