package cache

import "fmt"

// Hierarchy is a two-level cache: an on-chip L1 backed by a (typically
// off-chip) L2. L1 misses probe the L2; only L2 misses reach memory.
// The 1994 methodology predates ubiquitous L2s, but the mean-memory-
// delay currency extends to them directly (see core.TwoLevelDelay);
// this simulator supplies the measured hit ratios that model needs.
//
// Inclusion is not enforced (the common board-level L2 of the era was
// non-inclusive); L1 writebacks are installed into the L2.
type Hierarchy struct {
	l1, l2 *Cache
	stats  HierarchyStats
}

// HierarchyStats counts the two-level structure's events.
type HierarchyStats struct {
	Accesses  uint64
	L1Hits    uint64
	L2Hits    uint64 // L1 misses that hit in L2
	MemFills  uint64 // L1 misses that missed L2 too
	L1Flushes uint64 // dirty L1 victims (installed into L2)
	L2Flushes uint64 // dirty L2 victims (written to memory)
}

// L1HitRatio returns L1 hits over accesses.
func (s HierarchyStats) L1HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits) / float64(s.Accesses)
}

// L2LocalHitRatio returns the L2's hit ratio over the L1 miss stream.
func (s HierarchyStats) L2LocalHitRatio() float64 {
	probes := s.L2Hits + s.MemFills
	if probes == 0 {
		return 0
	}
	return float64(s.L2Hits) / float64(probes)
}

// GlobalHitRatio returns the fraction of accesses served without
// touching memory.
func (s HierarchyStats) GlobalHitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits+s.L2Hits) / float64(s.Accesses)
}

// NewHierarchy builds a two-level cache. The L2 line size must be at
// least the L1's (whole L1 lines must fit L2 lines).
func NewHierarchy(l1cfg, l2cfg Config) (*Hierarchy, error) {
	if l2cfg.LineSize < l1cfg.LineSize {
		return nil, fmt.Errorf("cache: L2 line %d smaller than L1 line %d", l2cfg.LineSize, l1cfg.LineSize)
	}
	if l2cfg.Size < l1cfg.Size {
		return nil, fmt.Errorf("cache: L2 size %d smaller than L1 size %d", l2cfg.Size, l1cfg.Size)
	}
	l1, err := New(l1cfg)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := New(l2cfg)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{l1: l1, l2: l2}, nil
}

// L1 returns the first-level cache.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Stats returns the hierarchy's counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

// Access performs one reference through both levels.
func (h *Hierarchy) Access(addr uint64, write bool) {
	h.stats.Accesses++
	out := h.l1.Access(addr, write)
	if out.Hit {
		h.stats.L1Hits++
		return
	}
	if out.Writeback {
		// Dirty L1 victim: install into L2 (write-allocate there).
		h.stats.L1Flushes++
		victimAddr := out.EvictedLine * uint64(h.l1.Config().LineSize)
		if wb := h.l2.Access(victimAddr, true); wb.Writeback {
			h.stats.L2Flushes++
		}
	}
	if out.Bypassed {
		// Write-around store at L1 goes to L2 (and beyond) as a write.
		if wb := h.l2.Access(addr, true); wb.Writeback {
			h.stats.L2Flushes++
		}
		return
	}
	// L1 fill: probe L2.
	l2out := h.l2.Access(addr, write)
	if l2out.Hit {
		h.stats.L2Hits++
		return
	}
	h.stats.MemFills++
	if l2out.Writeback {
		h.stats.L2Flushes++
	}
}
