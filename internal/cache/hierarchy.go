package cache

import "fmt"

// Hierarchy is an N-level cache: an on-chip L1 backed by progressively
// larger (typically off-chip) lower levels; only last-level misses
// reach memory. The 1994 methodology predates ubiquitous L2s, but the
// mean-memory-delay currency extends to any depth directly (see
// core.HierarchyDelay); this simulator supplies the measured local hit
// ratios that model needs.
//
// Inclusion is not enforced (the common board-level L2 of the era was
// non-inclusive); dirty victims of level i are installed into level
// i+1, and the last level's dirty victims are written to memory.
type Hierarchy struct {
	levels []*Cache
	stats  HierarchyStats
}

// LevelStats counts one level's events on the hierarchy's demand path.
// A level's internal cache.Stats additionally counts victim installs
// and forwarded writes; LevelStats counts only what the delay model
// prices.
type LevelStats struct {
	Hits    uint64 // demand probes that hit at this level
	Flushes uint64 // dirty victims written to the next level (or memory)
}

// HierarchyStats counts the N-level structure's events. Every demand
// access terminates in exactly one Levels[i].Hits or MemFills (except
// write-around stores bypassing an inner level, which are forwarded
// down as pure writes and terminate unaccounted, as the two-level
// simulator always did).
type HierarchyStats struct {
	Accesses uint64
	Levels   []LevelStats
	MemFills uint64 // last-level misses served by memory
}

// LocalHitRatio returns level i's hit ratio over the demand-probe
// stream that reaches it. Level 0's denominator is all accesses
// (including write-around stores that bypass it); deeper levels see
// only demand probes — hits at or below plus memory fills — matching
// how the two-level simulator always defined its L2 local ratio.
func (s HierarchyStats) LocalHitRatio(i int) float64 {
	if i < 0 || i >= len(s.Levels) {
		return 0
	}
	probes := s.Accesses
	if i > 0 {
		probes = s.MemFills
		for j := i; j < len(s.Levels); j++ {
			probes += s.Levels[j].Hits
		}
	}
	if probes == 0 {
		return 0
	}
	return float64(s.Levels[i].Hits) / float64(probes)
}

// GlobalHitRatio returns the fraction of accesses served without
// touching memory.
func (s HierarchyStats) GlobalHitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	var hits uint64
	for _, l := range s.Levels {
		hits += l.Hits
	}
	return float64(hits) / float64(s.Accesses)
}

// LocalHitRatios returns every level's local hit ratio, the vector
// core.HierarchyDelay consumes.
func (s HierarchyStats) LocalHitRatios() []float64 {
	out := make([]float64, len(s.Levels))
	for i := range s.Levels {
		out[i] = s.LocalHitRatio(i)
	}
	return out
}

// L1HitRatio returns the first level's hit ratio over all accesses —
// the two-level view's legacy name for LocalHitRatio(0).
func (s HierarchyStats) L1HitRatio() float64 { return s.LocalHitRatio(0) }

// L2LocalHitRatio returns the second level's hit ratio over the L1
// miss stream — the legacy name for LocalHitRatio(1).
func (s HierarchyStats) L2LocalHitRatio() float64 { return s.LocalHitRatio(1) }

// NewHierarchy builds an N-level cache from top (L1) to bottom. At
// least one level is required; each level's line size and capacity
// must be at least its predecessor's (whole upper lines must fit
// lower lines).
func NewHierarchy(cfgs ...Config) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{
		levels: make([]*Cache, 0, len(cfgs)),
		stats:  HierarchyStats{Levels: make([]LevelStats, len(cfgs))},
	}
	for i, cfg := range cfgs {
		if i > 0 {
			prev := cfgs[i-1]
			if cfg.LineSize < prev.LineSize {
				return nil, fmt.Errorf("cache: L%d line %d smaller than L%d line %d", i+1, cfg.LineSize, i, prev.LineSize)
			}
			if cfg.Size < prev.Size {
				return nil, fmt.Errorf("cache: L%d size %d smaller than L%d size %d", i+1, cfg.Size, i, prev.Size)
			}
		}
		c, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("L%d: %w", i+1, err)
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// Depth returns the number of levels.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// Level returns the i-th cache, 0-indexed from L1.
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// L1 returns the first-level cache.
func (h *Hierarchy) L1() *Cache { return h.levels[0] }

// L2 returns the second-level cache (the hierarchy must be at least
// two levels deep).
func (h *Hierarchy) L2() *Cache { return h.levels[1] }

// Stats returns the hierarchy's counters.
func (h *Hierarchy) Stats() HierarchyStats {
	s := h.stats
	s.Levels = append([]LevelStats(nil), h.stats.Levels...)
	return s
}

// Access performs one reference through the hierarchy.
func (h *Hierarchy) Access(addr uint64, write bool) {
	h.stats.Accesses++
	h.probe(0, addr, write)
}

// probe runs the demand path at level i: a hit terminates there; a
// miss installs any dirty victim one level down and recurses (or
// counts a memory fill at the bottom). A write-around store bypassing
// an inner level is forwarded down as a pure write; at the last level
// it goes to memory and counts as a fill there, exactly as the
// two-level simulator accounted it.
func (h *Hierarchy) probe(i int, addr uint64, write bool) {
	out := h.levels[i].Access(addr, write)
	if out.Hit {
		h.stats.Levels[i].Hits++
		return
	}
	if out.Writeback {
		h.stats.Levels[i].Flushes++
		h.install(i+1, h.victimAddr(i, out))
	}
	if out.Bypassed && i < len(h.levels)-1 {
		h.install(i+1, addr)
		return
	}
	if i == len(h.levels)-1 {
		h.stats.MemFills++
		return
	}
	h.probe(i+1, addr, write)
}

// install writes a victim (or forwarded store) into level i. Installs
// cascade: evicting a dirty line at level i installs that victim into
// level i+1; past the last level the write goes to memory, which the
// flush counter above already recorded.
func (h *Hierarchy) install(i int, addr uint64) {
	if i >= len(h.levels) {
		return
	}
	out := h.levels[i].Access(addr, true)
	if out.Writeback {
		h.stats.Levels[i].Flushes++
		h.install(i+1, h.victimAddr(i, out))
	}
	if out.Bypassed {
		h.install(i+1, addr)
	}
}

// victimAddr reconstructs the byte address of level i's evicted line.
func (h *Hierarchy) victimAddr(i int, out Outcome) uint64 {
	return out.EvictedLine * uint64(h.levels[i].Config().LineSize)
}
