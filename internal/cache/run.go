package cache

import (
	"fmt"

	"tradeoff/internal/trace"
)

// AppProfile is the application characterization {E, R, W, α} of the
// paper's Table 1, as measured by running a trace through a cache. It is
// the bridge between the simulation substrate and the analytic model in
// internal/core.
type AppProfile struct {
	E        uint64  // instructions executed
	R        uint64  // data bytes read in full bus width on read misses (includes write-miss fetches under write-allocate)
	W        uint64  // write-around miss stores using the external bus
	Alpha    float64 // flush ratio: dirty bytes copied back / R
	HitRatio float64 // data-cache hit ratio over the run
	Misses   uint64  // Λm, load/store instructions that miss
	Refs     uint64  // total load/store references
}

// Measure replays refs through c and derives the paper's application
// parameters. The final instruction count E is taken from the last
// reference's instruction index. The cache is not reset first, so
// callers can warm it up beforehand and ResetStats to exclude warm-up.
func Measure(c *Cache, refs []trace.Ref) AppProfile {
	for _, r := range refs {
		c.Access(r.Addr, r.Write)
	}
	s := c.Stats()
	var p AppProfile
	if len(refs) > 0 {
		p.E = refs[len(refs)-1].Instr + 1
	}
	L := uint64(c.Config().LineSize)
	p.R = s.Fills * L
	p.W = s.Bypasses
	p.Alpha = s.FlushRatio()
	p.HitRatio = s.HitRatio()
	p.Misses = s.Misses()
	p.Refs = s.Accesses()
	return p
}

// MeasureSource replays up to n references from src. See Measure.
func MeasureSource(c *Cache, src trace.Source, n int) AppProfile {
	return Measure(c, trace.Collect(src, n))
}

// SweepPoint is one (config, result) pair from a parameter sweep.
type SweepPoint struct {
	Config  Config
	Profile AppProfile
}

// SweepLineSizes replays the same trace through caches that differ only
// in line size and returns one point per size. It is the data source for
// line-size/hit-ratio studies (§5.4 of the paper): given a fixed cache
// size, larger lines typically raise the hit ratio up to a pollution
// point.
func SweepLineSizes(base Config, lineSizes []int, refs []trace.Ref) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(lineSizes))
	for _, ls := range lineSizes {
		cfg := base
		cfg.LineSize = ls
		c, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("line size %d: %w", ls, err)
		}
		points = append(points, SweepPoint{Config: cfg, Profile: Measure(c, refs)})
	}
	return points, nil
}

// SweepSizes replays the same trace through caches that differ only in
// total capacity and returns one point per size. It supports Example 1
// style cache-size/hit-ratio relationships.
func SweepSizes(base Config, sizes []int, refs []trace.Ref) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(sizes))
	for _, sz := range sizes {
		cfg := base
		cfg.Size = sz
		c, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("cache size %d: %w", sz, err)
		}
		points = append(points, SweepPoint{Config: cfg, Profile: Measure(c, refs)})
	}
	return points, nil
}
