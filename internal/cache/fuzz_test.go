package cache

import "testing"

// FuzzCacheAccess drives the production cache and the oracle with a
// byte-string-encoded access sequence, demanding identical behaviour
// and structural invariants. Run longer with:
//
//	go test -fuzz=FuzzCacheAccess ./internal/cache
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{0x00, 0x20, 0x40, 0x00, 0x81, 0xFF})
	f.Add([]byte("sequential-ish input exercising several sets"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{Size: 512, LineSize: 32, Assoc: 2}
		c := MustNew(cfg)
		o := newOracle(cfg.Size, cfg.LineSize, cfg.Assoc)
		for i := 0; i+1 < len(data); i += 2 {
			addr := uint64(data[i]) << 3 // spread across sets
			write := data[i+1]&1 == 1
			got := c.Access(addr, write)
			hit, wb := o.access(addr, write)
			if got.Hit != hit || got.Writeback != wb {
				t.Fatalf("step %d: cache (hit=%v wb=%v) != oracle (hit=%v wb=%v)",
					i/2, got.Hit, got.Writeback, hit, wb)
			}
			if got.Hit == got.Fill && !got.Bypassed {
				t.Fatalf("step %d: hit and fill both %v", i/2, got.Hit)
			}
		}
		if c.ValidLines() > cfg.Size/cfg.LineSize {
			t.Fatal("more valid lines than capacity")
		}
		s := c.Stats()
		if s.Hits()+s.Misses() != s.Accesses() {
			t.Fatal("hits + misses != accesses")
		}
	})
}

// FuzzSectorCache checks the sector cache's counting invariants under
// arbitrary access sequences.
func FuzzSectorCache(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 100, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := NewSector(512, 64, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(data); i += 2 {
			c.Access(uint64(data[i])<<2, data[i+1]&1 == 1)
		}
		s := c.Stats()
		if s.Hits+s.SubMisses+s.SectorMiss != s.Accesses {
			t.Fatalf("outcome counts %d+%d+%d != accesses %d",
				s.Hits, s.SubMisses, s.SectorMiss, s.Accesses)
		}
		if s.SubFills != s.SubMisses+s.SectorMiss {
			t.Fatalf("fills %d != sub misses %d + sector misses %d",
				s.SubFills, s.SubMisses, s.SectorMiss)
		}
	})
}
