package cache

import (
	"testing"

	"tradeoff/internal/trace"
)

func TestNewSectorValidation(t *testing.T) {
	if _, err := NewSector(8<<10, 64, 8, 2); err != nil {
		t.Fatalf("valid sector cache rejected: %v", err)
	}
	bad := [][4]int{
		{1000, 64, 8, 2},    // size not power of two
		{8 << 10, 63, 8, 2}, // sector not power of two
		{8 << 10, 64, 0, 2}, // zero sub-block
		{8 << 10, 8, 16, 2}, // sub-block larger than sector
		{32, 64, 8, 1},      // sector larger than cache
		{8 << 10, 64, 8, 3}, // sectors not divisible by assoc
	}
	for i, b := range bad {
		if _, err := NewSector(b[0], b[1], b[2], b[3]); err == nil {
			t.Errorf("bad sector config %d accepted: %v", i, b)
		}
	}
}

func TestSectorSubBlockFlow(t *testing.T) {
	c, err := NewSector(1<<10, 64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false) // sector miss: one sub-block filled
	s := c.Stats()
	if s.SectorMiss != 1 || s.SubFills != 1 {
		t.Fatalf("cold access stats %+v", s)
	}
	c.Access(4, false) // same sub-block: hit
	if got := c.Stats().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	c.Access(8, false) // same sector, next sub-block: sub-miss, partial fill
	s = c.Stats()
	if s.SubMisses != 1 || s.SubFills != 2 {
		t.Fatalf("sub-miss stats %+v", s)
	}
}

func TestSectorDirtyFlushOnlyDirtySubBlocks(t *testing.T) {
	// Direct-mapped one-sector cache: force a replacement and count
	// flushed sub-blocks.
	c, err := NewSector(64, 64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true)   // sub 0 dirty
	c.Access(8, false)  // sub 1 clean
	c.Access(16, true)  // sub 2 dirty
	c.Access(64, false) // conflicting sector: replace
	if got := c.Stats().SubFlushes; got != 2 {
		t.Fatalf("sub flushes = %d, want only the 2 dirty sub-blocks", got)
	}
}

func TestSectorTagAmortization(t *testing.T) {
	// A 64-byte-sector cache stores 8x fewer tags than an 8-byte-line
	// conventional cache of the same size.
	sc, err := NewSector(8<<10, 64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sc.TagCount(), (8<<10)/64; got != want {
		t.Fatalf("sector tags = %d, want %d", got, want)
	}
	conventional := (8 << 10) / 8
	if sc.TagCount()*8 != conventional {
		t.Fatalf("amortization factor wrong: %d vs %d", sc.TagCount(), conventional)
	}
}

func TestSectorVsConventionalTradeoffs(t *testing.T) {
	// The three-way structural comparison on a spatial-locality
	// workload: a sector cache (64B sector, 8B sub-block) must have
	// traffic no higher than a 64B-line conventional cache, and a hit
	// ratio no higher than it (no spatial prefetch from whole-line
	// fills).
	refs := trace.Collect(trace.MustProgram(trace.Swm256, 31), 150000)

	sc, err := NewSector(8<<10, 64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	big := MustNew(Config{Size: 8 << 10, LineSize: 64, Assoc: 2})
	for _, r := range refs {
		sc.Access(r.Addr, r.Write)
		big.Access(r.Addr, r.Write)
	}
	scTraffic := sc.Stats().Traffic(8)
	bigTraffic := big.Stats().Traffic(64, 4)
	if scTraffic >= bigTraffic {
		t.Fatalf("sector traffic %d not below 64B-line traffic %d", scTraffic, bigTraffic)
	}
	if sc.Stats().HitRatio() > big.Stats().HitRatio() {
		t.Fatalf("sector hit ratio %.4f above whole-line %.4f — sub-block fills cannot prefetch",
			sc.Stats().HitRatio(), big.Stats().HitRatio())
	}
}

func TestSectorLRUWithinSet(t *testing.T) {
	// 2 sectors fully associative: LRU replacement among sectors.
	c, err := NewSector(128, 64, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false)   // sector A
	c.Access(128, false) // sector B
	c.Access(0, false)   // touch A
	c.Access(256, false) // sector C replaces B (LRU)
	c.Access(0, false)   // A still resident: hit
	s := c.Stats()
	if s.Hits != 2 {
		t.Fatalf("hits = %d, want 2 (A touched twice)", s.Hits)
	}
	if s.SectorMiss != 3 {
		t.Fatalf("sector misses = %d, want 3 (A, B, C)", s.SectorMiss)
	}
}
