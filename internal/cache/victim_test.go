package cache

import (
	"testing"

	"tradeoff/internal/trace"
)

func TestNewVictimValidation(t *testing.T) {
	cfg := Config{Size: 1 << 10, LineSize: 32, Assoc: 1}
	if _, err := NewVictim(cfg, 0); err == nil {
		t.Fatal("zero entries accepted")
	}
	if _, err := NewVictim(cfg, 100); err == nil {
		t.Fatal("oversized buffer accepted")
	}
	if _, err := NewVictim(Config{Size: 3}, 4); err == nil {
		t.Fatal("bad main cache accepted")
	}
}

func TestVictimSwapHit(t *testing.T) {
	// Direct-mapped 2-line cache: addresses 0 and 64 conflict in set 0.
	v, err := NewVictim(Config{Size: 64, LineSize: 32, Assoc: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	v.Access(0, false)  // fill A
	v.Access(64, false) // fill B, displaces A into the buffer
	out := v.Access(0, false)
	if !out.Hit || out.Fill {
		t.Fatalf("conflicting re-reference: %+v, want swap hit", out)
	}
	if got := v.VictimStats().SwapHits; got != 1 {
		t.Fatalf("swap hits = %d, want 1", got)
	}
}

func TestVictimEvictedLineIdentity(t *testing.T) {
	// The Outcome must carry the true line index of the victim.
	c := MustNew(Config{Size: 64, LineSize: 32, Assoc: 1})
	c.Access(0, true)
	out := c.Access(64, false)
	if !out.Evicted || out.EvictedLine != 0 || !out.EvictedDirty {
		t.Fatalf("eviction outcome %+v, want dirty line 0", out)
	}
}

func TestVictimPreservesDirtyData(t *testing.T) {
	v, err := NewVictim(Config{Size: 64, LineSize: 32, Assoc: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	v.Access(0, true)   // dirty A
	v.Access(64, false) // displace dirty A into the buffer
	v.Access(0, false)  // swap back: A must return dirty
	if !v.Main().Dirty(0) {
		t.Fatal("dirty state lost through the victim buffer")
	}
	// No memory writeback happened anywhere in this sequence.
	if got := v.Combined().Writebacks; got != 0 {
		t.Fatalf("combined writebacks = %d, want 0", got)
	}
}

func TestVictimDirtyFallsOutToMemory(t *testing.T) {
	v, err := NewVictim(Config{Size: 64, LineSize: 32, Assoc: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v.Access(0, true)    // dirty A
	v.Access(64, false)  // A -> buffer (dirty)
	v.Access(128, false) // B displaced -> buffer, A falls out dirty
	if got := v.VictimStats().DirtyOut; got != 1 {
		t.Fatalf("dirty buffer evictions = %d, want 1", got)
	}
}

func TestVictimCombinedAccounting(t *testing.T) {
	v, err := NewVictim(Config{Size: 64, LineSize: 32, Assoc: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	v.Access(0, false)
	v.Access(64, false)
	v.Access(0, false) // swap hit
	cs := v.Combined()
	if cs.Accesses != 3 || cs.Hits != 1 || cs.Misses != 2 {
		t.Fatalf("combined %+v, want 3 accesses, 1 hit, 2 misses", cs)
	}
}

func TestVictimBufferRemovesConflictMisses(t *testing.T) {
	// The Jouppi result, qualitatively: a direct-mapped cache plus a
	// 4-entry victim buffer recovers most of the hit-ratio gap to a
	// 2-way cache of the same size.
	refs := trace.Collect(trace.MustProgram(trace.Ear, 5), 150000)

	dm := MustNew(Config{Size: 8 << 10, LineSize: 32, Assoc: 1})
	twoWay := MustNew(Config{Size: 8 << 10, LineSize: 32, Assoc: 2})
	vc, err := NewVictim(Config{Size: 8 << 10, LineSize: 32, Assoc: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		dm.Access(r.Addr, r.Write)
		twoWay.Access(r.Addr, r.Write)
		vc.Access(r.Addr, r.Write)
	}
	hrDM := dm.Stats().HitRatio()
	hr2W := twoWay.Stats().HitRatio()
	hrVC := vc.Combined().HitRatio
	if hrVC <= hrDM {
		t.Fatalf("victim buffer did not help: DM %.4f, DM+victim %.4f", hrDM, hrVC)
	}
	if hr2W > hrDM { // only meaningful when associativity helps at all
		recovered := (hrVC - hrDM) / (hr2W - hrDM)
		if recovered < 0.3 {
			t.Fatalf("victim buffer recovered only %.0f%% of the 2-way gap (DM %.4f, +victim %.4f, 2-way %.4f)",
				100*recovered, hrDM, hrVC, hr2W)
		}
	}
}

func TestVictimWriteAroundInvalidatesBuffer(t *testing.T) {
	cfg := Config{Size: 64, LineSize: 32, Assoc: 1, WriteMiss: WriteAround}
	v, err := NewVictim(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	v.Access(0, false)  // fill A
	v.Access(64, false) // displace A into buffer
	v.Access(0, true)   // write-around store to A: stale buffer copy dropped
	out := v.Access(0, false)
	if out.Hit {
		t.Fatalf("stale buffered line served after write-around store: %+v", out)
	}
}
