package cache

import (
	"testing"

	"tradeoff/internal/trace"
)

func h8_64() *Hierarchy {
	h, err := NewHierarchy(
		Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
		Config{Size: 64 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		panic(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(
		Config{Size: 8 << 10, LineSize: 64, Assoc: 2},
		Config{Size: 64 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("L2 line smaller than L1 accepted")
	}
	if _, err := NewHierarchy(
		Config{Size: 64 << 10, LineSize: 32, Assoc: 2},
		Config{Size: 8 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("L2 smaller than L1 accepted")
	}
	if _, err := NewHierarchy(Config{Size: 3}, Config{Size: 64 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewHierarchy(Config{Size: 1 << 10, LineSize: 32, Assoc: 2}, Config{Size: 2 << 10, LineSize: 32, Assoc: 3}); err == nil {
		t.Fatal("bad L2 accepted")
	}
}

func TestHierarchyBasicFlow(t *testing.T) {
	h := h8_64()
	h.Access(0x1000, false) // cold: misses both, fills both
	s := h.Stats()
	if s.MemFills != 1 || s.L1Hits != 0 || s.L2Hits != 0 {
		t.Fatalf("cold access stats %+v", s)
	}
	h.Access(0x1000, false) // L1 hit
	if got := h.Stats().L1Hits; got != 1 {
		t.Fatalf("L1 hits = %d, want 1", got)
	}
}

func TestHierarchyL2CatchesL1Conflicts(t *testing.T) {
	// Two addresses that conflict in the small L1 but coexist in the
	// bigger L2: after warm-up, re-references are L2 hits, not memory
	// fills. Use a tiny direct-mapped L1 to force the conflict.
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1},
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, false)
	h.Access(64, false) // evicts 0 from L1; both now in L2
	h.Access(0, false)  // L1 miss, L2 hit
	s := h.Stats()
	if s.L2Hits != 1 {
		t.Fatalf("L2 hits = %d, want 1: %+v", s.L2Hits, s)
	}
	if s.MemFills != 2 {
		t.Fatalf("memory fills = %d, want 2 cold fills only", s.MemFills)
	}
}

func TestHierarchyDirtyVictimInstalledInL2(t *testing.T) {
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1},
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, true)   // dirty line 0 in L1
	h.Access(64, false) // evicts dirty 0 → installed in L2
	if got := h.Stats().L1Flushes; got != 1 {
		t.Fatalf("L1 flushes = %d, want 1", got)
	}
	if !h.L2().Dirty(0) {
		t.Fatal("L1 victim not dirty in L2")
	}
	// Re-reading 0 must hit L2, with the data (dirtiness) preserved.
	h.Access(0, false)
	if got := h.Stats().L2Hits; got != 1 {
		t.Fatalf("L2 hits = %d, want 1", got)
	}
}

func TestHierarchyRatios(t *testing.T) {
	h := h8_64()
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: 3, Lines: 65536, Theta: 1.5, WriteFrac: 0.3}), 200000)
	for _, r := range refs {
		h.Access(r.Addr, r.Write)
	}
	s := h.Stats()
	if s.L1HitRatio() < 0.85 || s.L1HitRatio() > 0.97 {
		t.Fatalf("L1 hit ratio %.3f out of expected band", s.L1HitRatio())
	}
	if s.L2LocalHitRatio() <= 0.3 {
		t.Fatalf("L2 local hit ratio %.3f too low to be useful", s.L2LocalHitRatio())
	}
	if g := s.GlobalHitRatio(); g <= s.L1HitRatio() {
		t.Fatalf("global hit ratio %.3f not above L1's %.3f", g, s.L1HitRatio())
	}
	// Conservation: every access is exactly one of the three outcomes.
	if s.L1Hits+s.L2Hits+s.MemFills != s.Accesses {
		t.Fatalf("outcome counts do not add up: %+v", s)
	}
}

func TestHierarchyStatsEmpty(t *testing.T) {
	var s HierarchyStats
	if s.L1HitRatio() != 0 || s.L2LocalHitRatio() != 0 || s.GlobalHitRatio() != 0 {
		t.Fatal("empty hierarchy ratios non-zero")
	}
}

func TestHierarchyWriteAroundL1(t *testing.T) {
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1, WriteMiss: WriteAround},
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x100, true) // L1 write-around: goes to L2 as a write
	if h.L1().Contains(0x100) {
		t.Fatal("write-around allocated in L1")
	}
	if !h.L2().Contains(0x100) {
		t.Fatal("write-around store not installed in L2")
	}
}
