package cache

import (
	"testing"

	"tradeoff/internal/trace"
)

func h8_64() *Hierarchy {
	h, err := NewHierarchy(
		Config{Size: 8 << 10, LineSize: 32, Assoc: 2},
		Config{Size: 64 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		panic(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(
		Config{Size: 8 << 10, LineSize: 64, Assoc: 2},
		Config{Size: 64 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("L2 line smaller than L1 accepted")
	}
	if _, err := NewHierarchy(
		Config{Size: 64 << 10, LineSize: 32, Assoc: 2},
		Config{Size: 8 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("L2 smaller than L1 accepted")
	}
	if _, err := NewHierarchy(Config{Size: 3}, Config{Size: 64 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewHierarchy(Config{Size: 1 << 10, LineSize: 32, Assoc: 2}, Config{Size: 2 << 10, LineSize: 32, Assoc: 3}); err == nil {
		t.Fatal("bad L2 accepted")
	}
	// Monotonicity is enforced between adjacent levels, anywhere in the
	// stack, not just L1→L2.
	if _, err := NewHierarchy(
		Config{Size: 1 << 10, LineSize: 32, Assoc: 2},
		Config{Size: 8 << 10, LineSize: 64, Assoc: 4},
		Config{Size: 64 << 10, LineSize: 32, Assoc: 4}); err == nil {
		t.Fatal("L3 line smaller than L2 accepted")
	}
}

func TestHierarchyBasicFlow(t *testing.T) {
	h := h8_64()
	h.Access(0x1000, false) // cold: misses both, fills both
	s := h.Stats()
	if s.MemFills != 1 || s.Levels[0].Hits != 0 || s.Levels[1].Hits != 0 {
		t.Fatalf("cold access stats %+v", s)
	}
	h.Access(0x1000, false) // L1 hit
	if got := h.Stats().Levels[0].Hits; got != 1 {
		t.Fatalf("L1 hits = %d, want 1", got)
	}
}

func TestHierarchyL2CatchesL1Conflicts(t *testing.T) {
	// Two addresses that conflict in the small L1 but coexist in the
	// bigger L2: after warm-up, re-references are L2 hits, not memory
	// fills. Use a tiny direct-mapped L1 to force the conflict.
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1},
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, false)
	h.Access(64, false) // evicts 0 from L1; both now in L2
	h.Access(0, false)  // L1 miss, L2 hit
	s := h.Stats()
	if s.Levels[1].Hits != 1 {
		t.Fatalf("L2 hits = %d, want 1: %+v", s.Levels[1].Hits, s)
	}
	if s.MemFills != 2 {
		t.Fatalf("memory fills = %d, want 2 cold fills only", s.MemFills)
	}
}

func TestHierarchyDirtyVictimInstalledInL2(t *testing.T) {
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1},
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, true)   // dirty line 0 in L1
	h.Access(64, false) // evicts dirty 0 → installed in L2
	if got := h.Stats().Levels[0].Flushes; got != 1 {
		t.Fatalf("L1 flushes = %d, want 1", got)
	}
	if !h.L2().Dirty(0) {
		t.Fatal("L1 victim not dirty in L2")
	}
	// Re-reading 0 must hit L2, with the data (dirtiness) preserved.
	h.Access(0, false)
	if got := h.Stats().Levels[1].Hits; got != 1 {
		t.Fatalf("L2 hits = %d, want 1", got)
	}
}

func TestHierarchyRatios(t *testing.T) {
	h := h8_64()
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: 3, Lines: 65536, Theta: 1.5, WriteFrac: 0.3}), 200000)
	for _, r := range refs {
		h.Access(r.Addr, r.Write)
	}
	s := h.Stats()
	if s.L1HitRatio() < 0.85 || s.L1HitRatio() > 0.97 {
		t.Fatalf("L1 hit ratio %.3f out of expected band", s.L1HitRatio())
	}
	if s.L2LocalHitRatio() <= 0.3 {
		t.Fatalf("L2 local hit ratio %.3f too low to be useful", s.L2LocalHitRatio())
	}
	if g := s.GlobalHitRatio(); g <= s.L1HitRatio() {
		t.Fatalf("global hit ratio %.3f not above L1's %.3f", g, s.L1HitRatio())
	}
	// Conservation: every access is exactly one of the three outcomes.
	if s.Levels[0].Hits+s.Levels[1].Hits+s.MemFills != s.Accesses {
		t.Fatalf("outcome counts do not add up: %+v", s)
	}
	// The legacy two-level accessors are views over the general ones.
	if s.L1HitRatio() != s.LocalHitRatio(0) || s.L2LocalHitRatio() != s.LocalHitRatio(1) {
		t.Fatal("legacy ratio accessors disagree with LocalHitRatio")
	}
	if hrs := s.LocalHitRatios(); len(hrs) != 2 || hrs[0] != s.LocalHitRatio(0) || hrs[1] != s.LocalHitRatio(1) {
		t.Fatalf("LocalHitRatios() = %v inconsistent", hrs)
	}
}

func TestHierarchyStatsEmpty(t *testing.T) {
	var s HierarchyStats
	if s.L1HitRatio() != 0 || s.L2LocalHitRatio() != 0 || s.GlobalHitRatio() != 0 {
		t.Fatal("empty hierarchy ratios non-zero")
	}
	if s.LocalHitRatio(-1) != 0 || s.LocalHitRatio(5) != 0 {
		t.Fatal("out-of-range level ratio non-zero")
	}
}

func TestHierarchyWriteAroundL1(t *testing.T) {
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1, WriteMiss: WriteAround},
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x100, true) // L1 write-around: goes to L2 as a write
	if h.L1().Contains(0x100) {
		t.Fatal("write-around allocated in L1")
	}
	if !h.L2().Contains(0x100) {
		t.Fatal("write-around store not installed in L2")
	}
}

func TestHierarchyThreeLevels(t *testing.T) {
	// A capacity ladder: addresses evicted from L1 and L2 are still
	// caught by a large L3, so after warm-up a working set bigger than
	// L2 but smaller than L3 produces L3 hits, not memory fills.
	h, err := NewHierarchy(
		Config{Size: 64, LineSize: 32, Assoc: 1},
		Config{Size: 128, LineSize: 32, Assoc: 2},
		Config{Size: 64 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 3 {
		t.Fatalf("Depth() = %d, want 3", h.Depth())
	}
	// 16 distinct lines: way beyond L1 (2 lines) and L2 (4 lines),
	// comfortably inside L3. Two full passes: pass one is cold fills,
	// pass two must be all L3 hits.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 16; i++ {
			h.Access(i*32, false)
		}
	}
	s := h.Stats()
	if s.MemFills != 16 {
		t.Fatalf("memory fills = %d, want 16 cold fills only: %+v", s.MemFills, s)
	}
	if s.Levels[2].Hits == 0 {
		t.Fatalf("no L3 hits: %+v", s)
	}
	var hits uint64
	for _, l := range s.Levels {
		hits += l.Hits
	}
	if hits+s.MemFills != s.Accesses {
		t.Fatalf("outcome counts do not add up: %+v", s)
	}
}

func TestHierarchyDirtyVictimCascade(t *testing.T) {
	// A dirty victim evicted from L1 installs into L2; when L2 in turn
	// evicts a dirty line, that victim cascades into L3.
	h, err := NewHierarchy(
		Config{Size: 32, LineSize: 32, Assoc: 1}, // 1 line
		Config{Size: 64, LineSize: 32, Assoc: 1}, // 2 lines, direct-mapped
		Config{Size: 4 << 10, LineSize: 32, Assoc: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses 0, 128 and 0x200 all map to L2 set 0 (2-set
	// direct-mapped); dirtying them in turn through L1 forces L2 to
	// evict dirty lines, which must cascade into L3.
	h.Access(0, true)     // dirty 0 everywhere (demand write fills all levels)
	h.Access(128, true)   // L1 victim 0 → L2; L2's demand fill of 128 evicts dirty 0 → L3
	h.Access(0x200, true) // L1 victim 128 → L2; L2's fill of 0x200 evicts dirty 128 → L3
	s := h.Stats()
	if s.Levels[0].Flushes != 2 {
		t.Fatalf("L1 flushes = %d, want 2: %+v", s.Levels[0].Flushes, s)
	}
	if s.Levels[1].Flushes != 2 {
		t.Fatalf("L2 flushes = %d, want 2: %+v", s.Levels[1].Flushes, s)
	}
	if !h.Level(2).Dirty(0) {
		t.Fatal("cascaded L2 victim not dirty in L3")
	}
}
