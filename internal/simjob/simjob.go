// Package simjob is the parallel orchestrator for trace-driven stall
// measurements — the simulation-side sibling of the analytic sweep
// engine in internal/sweep.
//
// A Runner materializes each named workload trace once into a shared
// read-only []trace.Ref (memoized by (program, seed, refs)), fans
// (feature × cache × memory × write-buffer) design points out across
// the shared engine.Map pool, and returns results in enumeration
// order, so parallel output is byte-identical to a serial replay.
// Optionally it keeps one warmed cache per (trace, geometry) and
// clones it per measurement, so cold-start misses are paid once
// instead of per design point.
//
// The consumers are cmd/figures and cmd/cachesim (via their -workers
// flags) and the tradeoffd service's POST /v1/stall endpoint.
package simjob

import (
	"context"
	"fmt"
	"sync/atomic"

	"tradeoff/internal/cache"
	"tradeoff/internal/engine"
	"tradeoff/internal/model"
	"tradeoff/internal/obs"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// TraceSpec names a synthetic workload trace: which workload model
// (a program or "zipf"), which seed, how many references. Equal specs
// materialize identical traces, which is what makes the spec a safe
// memoization key.
type TraceSpec struct {
	Program string `json:"program"`
	Seed    uint64 `json:"seed"`
	Refs    int    `json:"refs"`
}

// Materialize generates the trace the spec names.
func (s TraceSpec) Materialize() ([]trace.Ref, error) {
	src, err := trace.NewWorkload(s.Program, s.Seed)
	if err != nil {
		return nil, err
	}
	return trace.Collect(src, s.Refs), nil
}

// key is the spec's engine.Memo key.
func (s TraceSpec) key() string {
	return fmt.Sprintf("%s|%d|%d", s.Program, s.Seed, s.Refs)
}

// TraceCache memoizes materialized traces by spec on an unbounded
// engine.Memo; its singleflight makes concurrent first requests for
// the same spec generate it exactly once. The cached slices are shared
// read-only across every replay that uses them; callers must not
// mutate what Get returns.
type TraceCache struct {
	memo      *engine.Memo[[]trace.Ref]
	generated atomic.Int64
}

// NewTraceCache returns an empty trace cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{memo: engine.NewMemo[[]trace.Ref](0, 0, nil)}
}

// Get returns the memoized trace for spec, materializing it on first
// use. Concurrent callers for the same spec share one generation.
func (tc *TraceCache) Get(ctx context.Context, spec TraceSpec) ([]trace.Ref, error) {
	refs, _, err := tc.memo.Do(ctx, spec.key(), func(context.Context) ([]trace.Ref, error) {
		tc.generated.Add(1)
		return spec.Materialize()
	})
	return refs, err
}

// Generated returns how many distinct traces have been materialized —
// the observability hook the memoization tests (and metrics) read.
func (tc *TraceCache) Generated() int64 { return tc.generated.Load() }

// Job is one design point to measure: a workload trace replayed under
// one stall configuration.
type Job struct {
	Trace TraceSpec
	Cfg   stall.Config
}

// Options tunes a Run.
type Options struct {
	// Workers bounds the pool; <= 0 selects runtime.NumCPU().
	Workers int

	// Warm replays each trace once through a fresh cache per distinct
	// (trace, cache geometry), memoizes that warmed state, and clones
	// it for every measurement sharing the geometry. Results then
	// exclude cold-start misses, so they differ from (but are exactly
	// as deterministic as) the default cold replay.
	Warm bool
}

// Runner owns the shared memoization state — materialized traces and
// warmed caches — across any number of Run calls. A single Runner is
// safe for concurrent use; the tradeoffd service holds one for its
// whole lifetime so traces survive across requests.
type Runner struct {
	traces *TraceCache
	warm   *engine.Memo[*cache.Cache]
	models *model.Cache // analytic curves for the grid's model tier
}

// NewRunner returns a Runner with empty caches.
func NewRunner() *Runner {
	return &Runner{
		traces: NewTraceCache(),
		warm:   engine.NewMemo[*cache.Cache](0, 0, nil),
		models: model.NewCache(64, 16<<20),
	}
}

// Traces exposes the runner's trace cache (for metrics and tests).
func (r *Runner) Traces() *TraceCache { return r.traces }

// warmClone returns a clone of the warmed cache for (spec, geometry),
// warming it on first use by streaming the trace through a fresh cache
// and resetting its statistics. Concurrent first requests share one
// warm-up via the memo's singleflight.
func (r *Runner) warmClone(ctx context.Context, spec TraceSpec, cc cache.Config, refs []trace.Ref) (*cache.Cache, error) {
	key := fmt.Sprintf("%s|%+v", spec.key(), cc)
	c, _, err := r.warm.Do(ctx, key, func(context.Context) (*cache.Cache, error) {
		c, err := cache.New(cc)
		if err != nil {
			return nil, err
		}
		for _, ref := range refs {
			c.Access(ref.Addr, ref.Write)
		}
		c.ResetStats()
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return c.Clone(), nil
}

// measure replays one job, through a warmed clone when opts.Warm.
func (r *Runner) measure(ctx context.Context, job Job, opts Options) (stall.Result, error) {
	refs, err := r.traces.Get(ctx, job.Trace)
	if err != nil {
		return stall.Result{}, err
	}
	if opts.Warm {
		c, err := r.warmClone(ctx, job.Trace, job.Cfg.Cache, refs)
		if err != nil {
			return stall.Result{}, err
		}
		return stall.RunWarm(job.Cfg, c, refs)
	}
	return stall.Run(job.Cfg, refs)
}

// MeasureHierarchy replays refs references of the named workload
// through an N-level cache.Hierarchy built from levels (top first) and
// returns its stats. The trace is served by the runner's memoized
// TraceCache, so a hierarchy sweep over many geometries of one
// workload materializes the trace once — this is the sweep.Caches
// .Measure seam the tradeoffd service wires in for "sim:" hierarchy
// sweeps.
func (r *Runner) MeasureHierarchy(ctx context.Context, workload string, seed uint64, refs int, levels []cache.Config) (cache.HierarchyStats, error) {
	trc, err := r.traces.Get(ctx, TraceSpec{Program: workload, Seed: seed, Refs: refs})
	if err != nil {
		return cache.HierarchyStats{}, err
	}
	h, err := cache.NewHierarchy(levels...)
	if err != nil {
		return cache.HierarchyStats{}, err
	}
	for i, ref := range trc {
		// The replay is single-threaded; honor cancellation on long
		// traces without paying a channel read per reference.
		if i&0x3fff == 0 && ctx.Err() != nil {
			return cache.HierarchyStats{}, ctx.Err()
		}
		h.Access(ref.Addr, ref.Write)
	}
	return h.Stats(), nil
}

// Run measures every job on the shared engine.Map pool and returns
// results indexed like jobs — deterministic regardless of worker count
// or completion order. The context cancels in-flight work: a
// disconnected HTTP client or an interrupted CLI stops the pool early
// with ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job, opts Options) ([]stall.Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("simjob: no jobs")
	}
	ctx = obs.WithSpanName(ctx, "sim_job")
	return engine.Map(ctx, jobs, opts.Workers, func(ctx context.Context, job Job) (stall.Result, error) {
		if s := obs.CurrentSpan(ctx); s != nil {
			s.SetArg("program", job.Trace.Program)
			s.SetArg("feature", job.Cfg.Feature.String())
		}
		return r.measure(ctx, job, opts)
	})
}

// RunRefs measures one caller-supplied trace under each configuration
// on the shared pool — the cmd/cachesim path, where the trace comes
// from a file or a one-off generator rather than a named program. The
// refs slice is shared read-only across workers.
func RunRefs(ctx context.Context, refs []trace.Ref, cfgs []stall.Config, workers int) ([]stall.Result, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("simjob: no configurations")
	}
	ctx = obs.WithSpanName(ctx, "sim_feature")
	return engine.Map(ctx, cfgs, workers, func(ctx context.Context, cfg stall.Config) (stall.Result, error) {
		if s := obs.CurrentSpan(ctx); s != nil {
			s.SetArg("feature", cfg.Feature.String())
		}
		return stall.Run(cfg, refs)
	})
}
