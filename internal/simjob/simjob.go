// Package simjob is the parallel orchestrator for trace-driven stall
// measurements — the simulation-side sibling of the analytic sweep
// engine in internal/sweep.
//
// A Runner materializes each named workload trace once into a shared
// read-only []trace.Ref (memoized by (program, seed, refs)), fans
// (feature × cache × memory × write-buffer) design points out across a
// bounded worker pool, and returns results in enumeration order — the
// same slot-indexed pattern as sweep.Run, so parallel output is
// byte-identical to a serial replay. Optionally it keeps one warmed
// cache per (trace, geometry) and clones it per measurement, so
// cold-start misses are paid once instead of per design point.
//
// The consumers are cmd/figures and cmd/cachesim (via their -workers
// flags) and the tradeoffd service's POST /v1/stall endpoint.
package simjob

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tradeoff/internal/cache"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// TraceSpec names a synthetic workload trace: which program model,
// which seed, how many references. Equal specs materialize identical
// traces, which is what makes the spec a safe memoization key.
type TraceSpec struct {
	Program string `json:"program"`
	Seed    uint64 `json:"seed"`
	Refs    int    `json:"refs"`
}

// Materialize generates the trace the spec names.
func (s TraceSpec) Materialize() ([]trace.Ref, error) {
	src, err := trace.NewProgram(s.Program, s.Seed)
	if err != nil {
		return nil, err
	}
	return trace.Collect(src, s.Refs), nil
}

// traceEntry is one memoized trace; once makes concurrent first
// requests for the same spec generate it exactly once.
type traceEntry struct {
	once sync.Once
	refs []trace.Ref
	err  error
}

// TraceCache memoizes materialized traces by spec. The cached slices
// are shared read-only across every replay that uses them; callers
// must not mutate what Get returns.
type TraceCache struct {
	mu        sync.Mutex
	entries   map[TraceSpec]*traceEntry
	generated atomic.Int64
}

// NewTraceCache returns an empty trace cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[TraceSpec]*traceEntry)}
}

// Get returns the memoized trace for spec, materializing it on first
// use. Concurrent callers for the same spec share one generation.
func (tc *TraceCache) Get(spec TraceSpec) ([]trace.Ref, error) {
	tc.mu.Lock()
	e, ok := tc.entries[spec]
	if !ok {
		e = &traceEntry{}
		tc.entries[spec] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() {
		tc.generated.Add(1)
		e.refs, e.err = spec.Materialize()
	})
	return e.refs, e.err
}

// Generated returns how many distinct traces have been materialized —
// the observability hook the memoization tests (and metrics) read.
func (tc *TraceCache) Generated() int64 { return tc.generated.Load() }

// Job is one design point to measure: a workload trace replayed under
// one stall configuration.
type Job struct {
	Trace TraceSpec
	Cfg   stall.Config
}

// Options tunes a Run.
type Options struct {
	// Workers bounds the pool; <= 0 selects runtime.NumCPU().
	Workers int

	// Warm replays each trace once through a fresh cache per distinct
	// (trace, cache geometry), memoizes that warmed state, and clones
	// it for every measurement sharing the geometry. Results then
	// exclude cold-start misses, so they differ from (but are exactly
	// as deterministic as) the default cold replay.
	Warm bool
}

// warmKey identifies one warmed cache: same trace, same geometry.
// cache.Config is comparable, so the pair indexes a map directly.
type warmKey struct {
	spec TraceSpec
	cc   cache.Config
}

// warmEntry is one memoized warmed cache; clones are taken under once
// protection having completed.
type warmEntry struct {
	once sync.Once
	c    *cache.Cache
	err  error
}

// Runner owns the shared memoization state — materialized traces and
// warmed caches — across any number of Run calls. A single Runner is
// safe for concurrent use; the tradeoffd service holds one for its
// whole lifetime so traces survive across requests.
type Runner struct {
	traces *TraceCache

	warmMu sync.Mutex
	warm   map[warmKey]*warmEntry
}

// NewRunner returns a Runner with empty caches.
func NewRunner() *Runner {
	return &Runner{traces: NewTraceCache(), warm: make(map[warmKey]*warmEntry)}
}

// Traces exposes the runner's trace cache (for metrics and tests).
func (r *Runner) Traces() *TraceCache { return r.traces }

// warmClone returns a clone of the warmed cache for (spec, geometry),
// warming it on first use by streaming the trace through a fresh cache
// and resetting its statistics.
func (r *Runner) warmClone(spec TraceSpec, cc cache.Config, refs []trace.Ref) (*cache.Cache, error) {
	key := warmKey{spec: spec, cc: cc}
	r.warmMu.Lock()
	e, ok := r.warm[key]
	if !ok {
		e = &warmEntry{}
		r.warm[key] = e
	}
	r.warmMu.Unlock()
	e.once.Do(func() {
		c, err := cache.New(cc)
		if err != nil {
			e.err = err
			return
		}
		for _, ref := range refs {
			c.Access(ref.Addr, ref.Write)
		}
		c.ResetStats()
		e.c = c
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.c.Clone(), nil
}

// measure replays one job, through a warmed clone when opts.Warm.
func (r *Runner) measure(job Job, opts Options) (stall.Result, error) {
	refs, err := r.traces.Get(job.Trace)
	if err != nil {
		return stall.Result{}, err
	}
	if opts.Warm {
		c, err := r.warmClone(job.Trace, job.Cfg.Cache, refs)
		if err != nil {
			return stall.Result{}, err
		}
		return stall.RunWarm(job.Cfg, c, refs)
	}
	return stall.Run(job.Cfg, refs)
}

// Run measures every job on a bounded worker pool and returns results
// indexed like jobs — deterministic regardless of worker count or
// completion order. The context cancels in-flight work: a disconnected
// HTTP client or an interrupted CLI stops the pool early with
// ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job, opts Options) ([]stall.Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("simjob: no jobs")
	}
	out := make([]stall.Result, len(jobs))
	err := pool(ctx, len(jobs), opts.Workers, func(i int) error {
		res, err := r.measure(jobs[i], opts)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunRefs measures one caller-supplied trace under each configuration
// on a bounded worker pool — the cmd/cachesim path, where the trace
// comes from a file or a one-off generator rather than a named
// program. The refs slice is shared read-only across workers.
func RunRefs(ctx context.Context, refs []trace.Ref, cfgs []stall.Config, workers int) ([]stall.Result, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("simjob: no configurations")
	}
	out := make([]stall.Result, len(cfgs))
	err := pool(ctx, len(cfgs), workers, func(i int) error {
		res, err := stall.Run(cfgs[i], refs)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pool runs work(0..n-1) on a bounded worker pool. Workers pull
// indices from a channel and the caller's work writes into slot i, so
// completion order never affects output order — the same slot-indexed
// pattern as sweep.Run.
func pool(ctx context.Context, n, workers int, work func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				if err := work(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
