package simjob

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"tradeoff/internal/cache"
	"tradeoff/internal/engine"
	"tradeoff/internal/memory"
	"tradeoff/internal/model"
	"tradeoff/internal/stall"
	"tradeoff/internal/sweep"
	"tradeoff/internal/trace"
)

// Grid is the JSON schema of a trace-driven stall sweep: which
// workloads to replay and which design dimensions to cross. The zero
// value of every optional field selects its documented default via
// SetDefaults. It is the wire format of POST /v1/stall, mirroring how
// sweep.Config parameterizes /v1/sweep.
type Grid struct {
	Programs []string `json:"programs"` // workload models, programs or "zipf" (default the six programs)
	Refs     int      `json:"refs"`     // references per trace (default 30000)
	Seed     uint64   `json:"seed"`     // trace seed (default 1994)

	Features   []string `json:"features"`    // stalling features (default all of Table 2)
	CacheKB    []int    `json:"cache_kb"`    // cache sizes in KiB (default [8])
	LineBytes  []int    `json:"line_bytes"`  // line sizes (default [32])
	BusBytes   []int    `json:"bus_bytes"`   // external bus widths D in bytes (default [4])
	BetaM      []int64  `json:"beta_m"`      // memory cycle times (default [10])
	WbufDepths []int    `json:"wbuf_depths"` // write-buffer depths, 0 = none (default [0])

	Assoc     int    `json:"assoc"`      // associativity (default 2; "full" is not expressible)
	WriteMiss string `json:"write_miss"` // "allocate" (default) or "around"
	Pipelined bool   `json:"pipelined"`  // pipelined memory (Eq. (9))
	Q         int64  `json:"q"`          // readiness interval when pipelined
	MSHRs     int    `json:"mshrs"`      // outstanding misses for NB (0 means 1)

	Warm bool `json:"warm"` // measure from a warmed cache (see Options.Warm)

	// Mode selects the evaluation tier, mirroring sweep.Config.Mode:
	// "exact" (default) replays every point cycle by cycle; "model"
	// answers every point from the analytic tier (internal/model,
	// first-order stall arithmetic — see model.EstimateStall for the
	// documented accuracy budget) and errors if a program is not
	// covered; "auto" uses the model where covered and falls back to
	// replay otherwise.
	Mode string `json:"mode"`
}

// ExampleGrid is the example payload `tradeoffd` documents for
// POST /v1/stall, also exercised by the golden tests.
const ExampleGrid = `{
  "programs":   ["nasa7", "ear"],
  "refs":       20000,
  "features":   ["FS", "BL", "BNL1", "BNL2", "BNL3", "NB"],
  "cache_kb":   [8],
  "line_bytes": [32],
  "bus_bytes":  [4],
  "beta_m":     [4, 10]
}`

// SetDefaults fills zero-valued optional fields with their defaults.
func (g *Grid) SetDefaults() {
	if len(g.Programs) == 0 {
		g.Programs = trace.Programs()
	}
	if g.Refs == 0 {
		g.Refs = 30_000
	}
	if g.Seed == 0 {
		g.Seed = 1994
	}
	if len(g.Features) == 0 {
		g.Features = make([]string, 0, len(stall.Features()))
		for _, f := range stall.Features() {
			g.Features = append(g.Features, f.String())
		}
	}
	if len(g.CacheKB) == 0 {
		g.CacheKB = []int{8}
	}
	if len(g.LineBytes) == 0 {
		g.LineBytes = []int{32}
	}
	if len(g.BusBytes) == 0 {
		g.BusBytes = []int{4}
	}
	if len(g.BetaM) == 0 {
		g.BetaM = []int64{10}
	}
	if len(g.WbufDepths) == 0 {
		g.WbufDepths = []int{0}
	}
	if g.Assoc == 0 {
		g.Assoc = 2
	}
	if g.WriteMiss == "" {
		g.WriteMiss = "allocate"
	}
	if g.Mode == "" {
		g.Mode = sweep.ModeExact
	}
}

// Validate reports grids outside the engine's domain. It assumes
// SetDefaults has run. Per-point cache/memory validity (power-of-two
// geometry, legal bus widths) is checked when the point's configs are
// built, so the errors carry the exact offending combination.
func (g *Grid) Validate() error {
	if unknown := trace.ValidWorkloads(g.Programs); len(unknown) > 0 {
		return fmt.Errorf("simjob: unknown programs %v", unknown)
	}
	for _, name := range g.Features {
		if _, err := stall.ParseFeature(name); err != nil {
			return err
		}
	}
	switch {
	case g.Refs < 0:
		return fmt.Errorf("simjob: refs = %d, want >= 0", g.Refs)
	case g.Assoc < 0:
		return fmt.Errorf("simjob: assoc = %d, want >= 0", g.Assoc)
	case g.MSHRs < 0:
		return fmt.Errorf("simjob: mshrs = %d, want >= 0", g.MSHRs)
	case g.Pipelined && g.Q < 1:
		return fmt.Errorf("simjob: pipelined with q = %d, want >= 1", g.Q)
	}
	if g.WriteMiss != "allocate" && g.WriteMiss != "around" {
		return fmt.Errorf("simjob: write_miss %q, want \"allocate\" or \"around\"", g.WriteMiss)
	}
	switch g.Mode {
	case sweep.ModeExact, sweep.ModeModel, sweep.ModeAuto:
	default:
		return fmt.Errorf("simjob: mode %q, want %q, %q or %q", g.Mode, sweep.ModeExact, sweep.ModeModel, sweep.ModeAuto)
	}
	for _, d := range g.WbufDepths {
		if d < 0 {
			return fmt.Errorf("simjob: wbuf_depths entry %d, want >= 0", d)
		}
	}
	return nil
}

// Point is one enumerated design point of a grid.
type Point struct {
	Program   string `json:"program"`
	Feature   string `json:"feature"`
	CacheKB   int    `json:"cache_kb"`
	LineBytes int    `json:"line_bytes"`
	BusBytes  int    `json:"bus_bytes"`
	BetaM     int64  `json:"beta_m"`
	WbufDepth int    `json:"wbuf_depth"`
}

// PointResult pairs a design point with its measured (or modeled)
// decomposition. Source records the tier that produced it after Mode
// resolution: "replay" for a cycle-level replay, "an:<program>" for
// the analytic estimate.
type PointResult struct {
	Point
	Source string       `json:"source"`
	Result stall.Result `json:"result"`
}

// Enumerate lists the grid's design points in canonical order —
// program outermost, then feature, cache size, line size, bus width,
// βm, write-buffer depth innermost. Combinations where the line does
// not span at least one bus transfer, or exceeds the cache, are
// skipped (they describe no buildable cache); every other invalid
// combination surfaces as an error at measurement time.
func (g *Grid) Enumerate() []Point {
	var pts []Point
	for _, prog := range g.Programs {
		for _, feat := range g.Features {
			for _, kb := range g.CacheKB {
				for _, line := range g.LineBytes {
					for _, bus := range g.BusBytes {
						if line < bus || line > kb<<10 {
							continue
						}
						for _, betaM := range g.BetaM {
							for _, depth := range g.WbufDepths {
								pts = append(pts, Point{
									Program: prog, Feature: feat,
									CacheKB: kb, LineBytes: line, BusBytes: bus,
									BetaM: betaM, WbufDepth: depth,
								})
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// job builds the measurement job for one point.
func (g *Grid) job(p Point) (Job, error) {
	f, err := stall.ParseFeature(p.Feature)
	if err != nil {
		return Job{}, err
	}
	wm := cache.WriteAllocate
	if g.WriteMiss == "around" {
		wm = cache.WriteAround
	}
	return Job{
		Trace: TraceSpec{Program: p.Program, Seed: g.Seed, Refs: g.Refs},
		Cfg: stall.Config{
			Cache: cache.Config{
				Size: p.CacheKB << 10, LineSize: p.LineBytes,
				Assoc: g.Assoc, WriteMiss: wm, Replacement: cache.LRU,
			},
			Memory: memory.Config{
				BetaM: p.BetaM, BusWidth: p.BusBytes,
				Pipelined: g.Pipelined, Q: g.Q,
			},
			Feature:          f,
			WriteBufferDepth: p.WbufDepth,
			MSHRs:            g.MSHRs,
		},
	}, nil
}

// RunGrid enumerates the grid and evaluates every point, returning
// results in enumeration order. Mode routes each point: replay points
// run on the runner's pool; analytic points (mode "model", or "auto"
// over a covered program) are priced inline by model.EstimateStall —
// microseconds per point, so they need no pool at all.
func (r *Runner) RunGrid(ctx context.Context, g Grid, workers int) ([]PointResult, error) {
	g.SetDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	pts := g.Enumerate()
	if len(pts) == 0 {
		return nil, fmt.Errorf("simjob: empty design grid (every line < D or > cache?)")
	}
	analytic := make([]bool, len(pts))
	if g.Mode != sweep.ModeExact {
		for i, p := range pts {
			if model.Covered(p.Program) {
				analytic[i] = true
			} else if g.Mode == sweep.ModeModel {
				return nil, fmt.Errorf("simjob: mode %q: no analytic model covers program %q; use mode %q to fall back",
					sweep.ModeModel, p.Program, sweep.ModeAuto)
			}
		}
	}

	out := make([]PointResult, len(pts))
	var jobs []Job
	var jobIdx []int
	for i, p := range pts {
		if analytic[i] {
			f, err := stall.ParseFeature(p.Feature)
			if err != nil {
				return nil, err
			}
			res, err := model.EstimateStall(ctx, model.StallSpec{
				Workload: p.Program, Seed: g.Seed, Refs: g.Refs,
				CacheKB: p.CacheKB, LineBytes: p.LineBytes, BusBytes: p.BusBytes,
				BetaM: p.BetaM, Assoc: g.Assoc, Feature: f,
				Pipelined: g.Pipelined, Q: g.Q,
				WriteMiss: g.WriteMiss, WbufDepth: p.WbufDepth,
			}, r.models)
			if err != nil {
				return nil, err
			}
			out[i] = PointResult{Point: p, Source: "an:" + p.Program, Result: res}
			continue
		}
		j, err := g.job(p)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
		jobIdx = append(jobIdx, i)
	}
	if len(jobs) > 0 {
		results, err := r.Run(ctx, jobs, Options{Workers: workers, Warm: g.Warm})
		if err != nil {
			return nil, err
		}
		for k, i := range jobIdx {
			out[i] = PointResult{Point: pts[i], Source: "replay", Result: results[k]}
		}
	}
	return out, nil
}

// Limits bounds the work a single grid may request — the service
// applies these to untrusted payloads. Zero fields mean "no limit".
type Limits struct {
	MaxPoints  int // design points after enumeration
	MaxRefs    int // references per trace
	MaxCacheKB int // largest simulated cache, KiB
}

// DefaultLimits is what the service enforces unless configured
// otherwise. Replays cost far more than the analytic sweep's point
// evaluations, so the point budget is tighter than sweep's.
var DefaultLimits = Limits{MaxPoints: 1024, MaxRefs: 2_000_000, MaxCacheKB: 1 << 14}

// CheckLimits reports whether the grid fits within lim. It assumes
// SetDefaults has run.
func (g *Grid) CheckLimits(lim Limits) error {
	if n := len(g.Enumerate()); lim.MaxPoints > 0 && n > lim.MaxPoints {
		return fmt.Errorf("simjob: %d design points exceeds the limit of %d", n, lim.MaxPoints)
	}
	if lim.MaxRefs > 0 && g.Refs > lim.MaxRefs {
		return fmt.Errorf("simjob: refs %d exceeds the limit of %d", g.Refs, lim.MaxRefs)
	}
	if lim.MaxCacheKB > 0 {
		for _, kb := range g.CacheKB {
			if kb > lim.MaxCacheKB {
				return fmt.Errorf("simjob: cache_kb %d exceeds the limit of %d", kb, lim.MaxCacheKB)
			}
		}
	}
	return nil
}

// ParseGrid decodes a JSON grid, applies defaults and validates it —
// the single entry point the CLI and the HTTP service share, so their
// parameter-domain checks cannot drift.
func ParseGrid(data []byte) (Grid, error) {
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return Grid{}, fmt.Errorf("simjob: parsing grid: %w", err)
	}
	g.SetDefaults()
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// Canonical returns the canonicalized JSON encoding of the grid with
// defaults applied — a deterministic memoization key: two requests
// that differ only in field order, whitespace, or spelled-out defaults
// canonicalize identically.
func (g Grid) Canonical() ([]byte, error) {
	g.SetDefaults()
	return json.Marshal(g)
}

// WriteCSV emits one row per point result in slice order, carrying the
// full Result decomposition.
func WriteCSV(w io.Writer, rs []PointResult) error {
	header := []string{
		"program", "feature", "cache_kb", "line_bytes", "bus_bytes", "beta_m", "wbuf_depth", "source",
		"refs", "misses", "e", "cycles", "base_cycles",
		"fill_stall", "bus_wait", "flush_stall", "write_stall", "hidden_flush", "buffer_full", "conflict",
		"phi", "phi_fraction", "traffic",
	}
	return engine.WriteCSV(w, header, len(rs), func(i int) []string {
		r := &rs[i]
		return []string{
			r.Program, r.Feature,
			strconv.Itoa(r.CacheKB), strconv.Itoa(r.LineBytes), strconv.Itoa(r.BusBytes),
			strconv.FormatInt(r.BetaM, 10), strconv.Itoa(r.WbufDepth),
			r.Source,
			strconv.FormatUint(r.Result.Refs, 10),
			strconv.FormatUint(r.Result.Misses, 10),
			strconv.FormatUint(r.Result.E, 10),
			strconv.FormatInt(r.Result.Cycles, 10),
			strconv.FormatInt(r.Result.BaseCycles, 10),
			strconv.FormatInt(r.Result.FillStall, 10),
			strconv.FormatInt(r.Result.BusWait, 10),
			strconv.FormatInt(r.Result.FlushStall, 10),
			strconv.FormatInt(r.Result.WriteStall, 10),
			strconv.FormatInt(r.Result.HiddenFlush, 10),
			strconv.FormatInt(r.Result.BufferFull, 10),
			strconv.FormatInt(r.Result.Conflict, 10),
			strconv.FormatFloat(r.Result.Phi, 'f', 6, 64),
			strconv.FormatFloat(r.Result.PhiFraction, 'f', 6, 64),
			strconv.FormatUint(r.Result.Traffic, 10),
		}
	})
}
