package simjob

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/model"
	"tradeoff/internal/stall"
	"tradeoff/internal/sweep"
	"tradeoff/internal/trace"
)

// testGrid is a small multi-dimension grid: 2 programs × 6 features ×
// 2 βm = 24 points on one 8KiB/32B/4B geometry.
func testGrid() Grid {
	return Grid{
		Programs: []string{"nasa7", "ear"},
		Refs:     5_000,
		Features: []string{"FS", "BL", "BNL1", "BNL2", "BNL3", "NB"},
		BetaM:    []int64{4, 10},
	}
}

// serialGrid replays the grid the pre-simjob way: one cold replay per
// point, in enumeration order, no pool, no memoization.
func serialGrid(t *testing.T, g Grid) []PointResult {
	t.Helper()
	g.SetDefaults()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pts := g.Enumerate()
	out := make([]PointResult, len(pts))
	for i, p := range pts {
		job, err := g.job(p)
		if err != nil {
			t.Fatal(err)
		}
		refs, err := job.Trace.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		res, err := stall.Run(job.Cfg, refs)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = PointResult{Point: p, Source: "replay", Result: res}
	}
	return out
}

// TestParallelMatchesSerialByteIdentical is the golden test of the
// acceptance criteria: the pool's output, serialized both as JSON and
// as CSV, must be byte-identical to a serial replay — for any worker
// count.
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	g := testGrid()
	want := serialGrid(t, g)
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := WriteCSV(&wantCSV, want); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 8} {
		got, err := NewRunner().RunGrid(context.Background(), g, workers)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("workers=%d: parallel JSON differs from serial replay", workers)
		}
		var gotCSV bytes.Buffer
		if err := WriteCSV(&gotCSV, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
			t.Fatalf("workers=%d: parallel CSV differs from serial replay", workers)
		}
	}
}

// TestTraceMemoized pins the tentpole's memoization contract: a grid
// touching two programs materializes exactly two traces, however many
// design points replay them, and a second grid on the same runner
// re-materializes nothing.
func TestTraceMemoized(t *testing.T) {
	r := NewRunner()
	g := testGrid()
	if _, err := r.RunGrid(context.Background(), g, 8); err != nil {
		t.Fatal(err)
	}
	if got := r.Traces().Generated(); got != 2 {
		t.Fatalf("generated %d traces for a 2-program grid, want 2", got)
	}
	g.BetaM = []int64{6} // different design points, same traces
	if _, err := r.RunGrid(context.Background(), g, 8); err != nil {
		t.Fatal(err)
	}
	if got := r.Traces().Generated(); got != 2 {
		t.Fatalf("second grid re-materialized traces: generated = %d, want 2", got)
	}
}

// TestWarmDeterministic checks the warmed-cache path: results differ
// from the cold replay (the warm state removes cold-start misses) but
// are identical across runs and worker counts.
func TestWarmDeterministic(t *testing.T) {
	g := testGrid()
	g.Warm = true

	first, err := NewRunner().RunGrid(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := NewRunner().RunGrid(context.Background(), g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("warm replay not deterministic at point %d:\n%+v\n%+v", i, first[i], again[i])
		}
	}

	cold := serialGrid(t, testGrid())
	differs := false
	for i := range first {
		if first[i].Result.Misses != cold[i].Result.Misses {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("warmed replay produced identical miss counts to cold replay on every point")
	}
}

// TestRunCancellation checks a cancelled context stops the pool and
// surfaces the context error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner().RunGrid(ctx, testGrid(), 4)
	if err == nil {
		t.Fatal("cancelled grid run returned no error")
	}
	if ctx.Err() == nil || err.Error() != ctx.Err().Error() {
		t.Fatalf("err = %v, want %v", err, ctx.Err())
	}
}

// TestRunBadJob checks a failing job cancels the pool and reports the
// underlying error.
func TestRunBadJob(t *testing.T) {
	r := NewRunner()
	jobs := []Job{{
		Trace: TraceSpec{Program: "no-such-program", Seed: 1, Refs: 10},
	}}
	if _, err := r.Run(context.Background(), jobs, Options{Workers: 2}); err == nil {
		t.Fatal("unknown program produced no error")
	}
}

// TestRunRefsMatchesDirect checks the caller-supplied-trace path gives
// exactly what stall.Run gives, in configuration order.
func TestRunRefsMatchesDirect(t *testing.T) {
	refs := trace.Collect(trace.MustProgram("doduc", 7), 4_000)
	var cfgs []stall.Config
	g := Grid{}
	g.SetDefaults()
	for _, p := range g.Enumerate()[:6] {
		job, err := g.job(p)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, job.Cfg)
	}
	got, err := RunRefs(context.Background(), refs, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := stall.Run(cfg, refs)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("cfg %d: pooled result differs from direct stall.Run:\n%+v\n%+v", i, got[i], want)
		}
	}
}

// TestParseGridRejectsBadInput spot-checks the domain validation the
// service relies on.
func TestParseGridRejectsBadInput(t *testing.T) {
	bad := []string{
		`{"programs": ["not-a-program"]}`,
		`{"features": ["FSX"]}`,
		`{"write_miss": "write-back"}`,
		`{"refs": -1}`,
		`{"wbuf_depths": [-2]}`,
		`{"pipelined": true}`,
		`not json`,
	}
	for _, in := range bad {
		if _, err := ParseGrid([]byte(in)); err == nil {
			t.Fatalf("ParseGrid(%s) accepted bad input", in)
		}
	}
	if _, err := ParseGrid([]byte(ExampleGrid)); err != nil {
		t.Fatalf("ParseGrid(ExampleGrid): %v", err)
	}
}

// TestCheckLimits exercises the service's abuse bounds.
func TestCheckLimits(t *testing.T) {
	g := testGrid()
	g.SetDefaults()
	if err := g.CheckLimits(DefaultLimits); err != nil {
		t.Fatalf("test grid exceeds default limits: %v", err)
	}
	if err := g.CheckLimits(Limits{MaxPoints: 3}); err == nil {
		t.Fatal("24-point grid passed MaxPoints=3")
	}
	if err := g.CheckLimits(Limits{MaxRefs: 100}); err == nil {
		t.Fatal("5000-ref grid passed MaxRefs=100")
	}
	if err := g.CheckLimits(Limits{MaxCacheKB: 4}); err == nil {
		t.Fatal("8KiB grid passed MaxCacheKB=4")
	}
}

// TestCanonicalStable checks the memoization key is insensitive to
// spelled-out defaults.
func TestCanonicalStable(t *testing.T) {
	var implicit Grid
	explicit := Grid{Refs: 30_000, Seed: 1994, Assoc: 2, WriteMiss: "allocate"}
	a, err := implicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical keys differ:\n%s\n%s", a, b)
	}
}

// TestGridModeModel pins the stall grid's mode knob: mode "model"
// prices every point from the analytic tier (stamped "an:<program>",
// byte-identical to calling model.EstimateStall directly), "auto"
// resolves the same way while every named program is covered, and
// an unknown mode is rejected at validation.
func TestGridModeModel(t *testing.T) {
	g := testGrid()
	g.Mode = sweep.ModeModel
	r := NewRunner()
	got, err := r.RunGrid(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	gd := g
	gd.SetDefaults()
	for _, pr := range got {
		if want := "an:" + pr.Program; pr.Source != want {
			t.Fatalf("mode=model point source = %q, want %q", pr.Source, want)
		}
		f, err := stall.ParseFeature(pr.Feature)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := model.EstimateStall(context.Background(), model.StallSpec{
			Workload: pr.Program, Seed: gd.Seed, Refs: gd.Refs,
			CacheKB: pr.CacheKB, LineBytes: pr.LineBytes, BusBytes: pr.BusBytes,
			BetaM: pr.BetaM, Assoc: gd.Assoc, Feature: f,
			WriteMiss: gd.WriteMiss, WbufDepth: pr.WbufDepth,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Result != direct {
			t.Fatalf("mode=model point %+v differs from direct EstimateStall:\n%+v\nvs\n%+v", pr.Point, pr.Result, direct)
		}
	}

	g.Mode = sweep.ModeAuto
	auto, err := r.RunGrid(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range auto {
		if auto[i] != got[i] {
			t.Fatalf("mode=auto point %d differs from mode=model (all programs are covered)", i)
		}
	}
	if r.Traces().Generated() != 0 {
		t.Fatalf("analytic modes materialized %d traces, want 0", r.Traces().Generated())
	}

	g.Mode = "approximate"
	if _, err := r.RunGrid(context.Background(), g, 4); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestMeasureHierarchy checks the sweep.Caches.Measure seam: the
// runner's hierarchy replay must equal a direct cache.NewHierarchy
// replay of the same trace, and repeated calls must share one
// materialized trace.
func TestMeasureHierarchy(t *testing.T) {
	levels := []cache.Config{
		{Size: 4 << 10, LineSize: 32, Assoc: 2},
		{Size: 64 << 10, LineSize: 32, Assoc: 4},
		{Size: 256 << 10, LineSize: 64, Assoc: 8},
	}
	r := NewRunner()
	got, err := r.MeasureHierarchy(context.Background(), "ear", 1994, 30_000, levels)
	if err != nil {
		t.Fatal(err)
	}

	h, err := cache.NewHierarchy(levels...)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := TraceSpec{Program: "ear", Seed: 1994, Refs: 30_000}.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		h.Access(ref.Addr, ref.Write)
	}
	if want := h.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MeasureHierarchy = %+v, direct replay = %+v", got, want)
	}

	// A second measurement of a different geometry on the same workload
	// reuses the memoized trace.
	if _, err := r.MeasureHierarchy(context.Background(), "ear", 1994, 30_000, levels[:2]); err != nil {
		t.Fatal(err)
	}
	if n := r.Traces().Generated(); n != 1 {
		t.Fatalf("two measurements materialized %d traces, want 1", n)
	}

	// Invalid hierarchies and dead contexts surface errors.
	if _, err := r.MeasureHierarchy(context.Background(), "ear", 1994, 1_000, nil); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.MeasureHierarchy(ctx, "ear", 7, 1_000, levels); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
