package simjob

import (
	"context"
	"testing"
)

// benchGrid is a realistic Figure 1-shaped workload: six programs ×
// four partial features × three βm values on one geometry.
func benchGrid() Grid {
	return Grid{
		Refs:     20_000,
		Features: []string{"BL", "BNL1", "BNL2", "BNL3"},
		BetaM:    []int64{2, 8, 16},
	}
}

func BenchmarkStallSweepSerial(b *testing.B) {
	g := benchGrid()
	r := NewRunner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunGrid(context.Background(), g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStallSweepParallel(b *testing.B) {
	g := benchGrid()
	r := NewRunner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunGrid(context.Background(), g, 0); err != nil {
			b.Fatal(err)
		}
	}
}
