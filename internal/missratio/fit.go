package missratio

import (
	"fmt"
	"math"
)

// Fit calibrates a parametric Model against an empirical Table (for
// example one measured by the cache simulator), minimizing the mean
// squared error of log miss ratios over the table's points. It bridges
// the two Surface implementations: sweep a workload once, fit, and the
// resulting closed form extrapolates to geometries the sweep never
// ran.
//
// The search is a coarse-to-fine grid over (γ, σ, k) with A solved in
// closed form at each candidate (the log-space MSE is linear in
// log A). It is deliberately simple — the model has three shape
// parameters and well-behaved curvature, so a grid beats a fragile
// gradient method.
func Fit(t *Table) (Model, error) {
	if t == nil || t.Len() < 4 {
		return Model{}, fmt.Errorf("missratio: need at least 4 points to fit, have %d", lenOrZero(t))
	}
	type point struct {
		size, line int
		logMR      float64
	}
	var pts []point
	sizes := make(map[int]bool)
	lines := make(map[int]bool)
	for _, size := range t.Sizes() {
		sizes[size] = true
		for _, line := range t.Lines(size) {
			lines[line] = true
			mr, _ := t.Lookup(size, line)
			if mr <= 0 || mr > 1 {
				return Model{}, fmt.Errorf("missratio: unfittable miss ratio %g at (%d, %d)", mr, size, line)
			}
			pts = append(pts, point{size, line, math.Log(mr)})
		}
	}
	// A table varying along only one axis leaves the other axis's shape
	// parameters unconstrained: one cache size cannot pin γ, one line
	// size cannot pin σ — the grid search would still "converge", to
	// whatever corner of the (γ, σ, k) box happens to minimize noise,
	// and the model would extrapolate garbage along the unseen axis.
	if len(sizes) < 2 {
		return Model{}, fmt.Errorf("missratio: all %d points share cache size %d; need at least 2 distinct cache sizes to constrain gamma", len(pts), t.Sizes()[0])
	}
	if len(lines) < 2 {
		return Model{}, fmt.Errorf("missratio: all %d points share one line size; need at least 2 distinct line sizes to constrain sigma", len(pts))
	}

	const c0 = 16 << 10
	// shape returns log of the model's shape factor (without A) and
	// solves the optimal log A for the candidate.
	evaluate := func(gamma, sigma, k float64) (logA, mse float64) {
		ref := math.Pow(32, -sigma) + k*32/float64(c0)
		var sum float64
		shapes := make([]float64, len(pts))
		for i, p := range pts {
			s := math.Pow(float64(p.size)/c0, -gamma) *
				(math.Pow(float64(p.line), -sigma) + k*float64(p.line)/float64(p.size)) / ref
			shapes[i] = math.Log(s)
			sum += p.logMR - shapes[i]
		}
		logA = sum / float64(len(pts))
		for i, p := range pts {
			d := p.logMR - (logA + shapes[i])
			mse += d * d
		}
		return logA, mse / float64(len(pts))
	}

	best := Model{C0: c0}
	bestMSE := math.Inf(1)
	// Coarse-to-fine grid refinement.
	gLo, gHi := 0.05, 0.8
	sLo, sHi := 0.2, 1.2
	kLo, kHi := 0.1, 10.0
	for pass := 0; pass < 4; pass++ {
		const steps = 8
		gStep := (gHi - gLo) / steps
		sStep := (sHi - sLo) / steps
		kStep := (kHi - kLo) / steps
		var bg, bs, bk float64
		for g := gLo; g <= gHi+1e-12; g += gStep {
			for s := sLo; s <= sHi+1e-12; s += sStep {
				for k := kLo; k <= kHi+1e-12; k += kStep {
					logA, mse := evaluate(g, s, k)
					if mse < bestMSE {
						bestMSE = mse
						bg, bs, bk = g, s, k
						best = Model{A: math.Exp(logA), C0: c0, Gamma: g, Sigma: s, K: k}
					}
				}
			}
		}
		// Zoom around the winner.
		gLo, gHi = math.Max(0.01, bg-gStep), bg+gStep
		sLo, sHi = math.Max(0.05, bs-sStep), bs+sStep
		kLo, kHi = math.Max(0.01, bk-kStep), bk+kStep
	}
	if math.IsInf(bestMSE, 1) {
		return Model{}, fmt.Errorf("missratio: fit did not converge")
	}
	return best, nil
}

// FitError returns the root-mean-square error of log miss ratios of a
// model against a table — the quantity Fit minimizes.
func FitError(m Model, t *Table) (float64, error) {
	if t == nil || t.Len() == 0 {
		return 0, fmt.Errorf("missratio: empty table")
	}
	var sum float64
	n := 0
	for _, size := range t.Sizes() {
		for _, line := range t.Lines(size) {
			mr, _ := t.Lookup(size, line)
			if mr <= 0 {
				return 0, fmt.Errorf("missratio: non-positive miss ratio at (%d, %d)", size, line)
			}
			d := math.Log(mr) - math.Log(m.MissRatio(size, line))
			sum += d * d
			n++
		}
	}
	return math.Sqrt(sum / float64(n)), nil
}

func lenOrZero(t *Table) int {
	if t == nil {
		return 0
	}
	return t.Len()
}
