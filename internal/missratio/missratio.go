// Package missratio supplies miss-ratio surfaces MR(C, L) — miss ratio
// as a function of cache size C and line size L.
//
// The paper's Figure 6 validates the line-size tradeoff (Eq. (19))
// against A. J. Smith's design-target optimal line sizes, which were
// derived from his 1987 design target miss ratio tables. Those tables
// are not redistributable, so this package provides:
//
//   - Model: a parametric design-target-style surface, calibrated so
//     that Smith's own selection criterion (Eq. (16): minimize
//     miss-ratio × miss-penalty) reproduces the optimal line sizes the
//     paper quotes in Figure 6's subcaptions (32 B for a 16 KB cache at
//     D=4, 360 ns + 15 ns/B; 16 B at D=8, 160 ns + 15 ns/B; 64–128 B at
//     D=8, 600 ns + 4 ns/B; 32 B for 8 KB at D=8, 360 ns + 15 ns/B).
//     Because the paper's validation claim is *relative* — Eq. (19)
//     picks the same line as Eq. (16) — any monotone-consistent surface
//     preserves the experiment (DESIGN.md §4, substitution 3).
//
//   - Table: an empirical surface measured from the cache simulator,
//     so the same experiments can run on simulated data (-source=sim).
//
// Both implement the shared Surface interface.
package missratio

import (
	"fmt"
	"math"
	"sort"
)

// Surface is a miss-ratio function over cache geometry.
type Surface interface {
	// MissRatio returns the expected data-cache miss ratio for a cache
	// of size bytes with lineSize-byte lines. Implementations return
	// values in (0, 1].
	MissRatio(size, lineSize int) float64
}

// Model is the calibrated parametric design-target surface:
//
//	MR(C, L) = A · (C/C0)^(−γ) · (L^(−σ) + k·L/C)
//
// The L^(−σ) term captures spatial-locality gains from longer lines
// with diminishing returns (σ < 1); the k·L/C term captures line
// pollution — long lines displace useful data in small caches — giving
// the U-shaped delay curve that makes an optimal line size exist. The
// C^(−γ) power law matches the usual design-target size scaling.
//
// The zero value is not calibrated; use DefaultModel or fill all fields.
type Model struct {
	A     float64 // amplitude: MR scale at the reference geometry
	C0    float64 // reference cache size in bytes
	Gamma float64 // cache-size exponent γ
	Sigma float64 // line-size exponent σ
	K     float64 // pollution coefficient k
}

// DefaultModel returns the surface calibrated against the Figure 6
// subcaption optima (see package comment and missratio_test.go, which
// asserts all four calibration targets).
func DefaultModel() Model {
	return Model{A: 0.040, C0: 16 << 10, Gamma: 0.30, Sigma: 0.70, K: 2.5}
}

// MissRatio implements Surface. Results are clamped to (0, 1].
func (m Model) MissRatio(size, lineSize int) float64 {
	if size <= 0 || lineSize <= 0 {
		return 1
	}
	c, l := float64(size), float64(lineSize)
	// Normalize the shape factor so that MR(C0, 32) == A.
	ref := math.Pow(32, -m.Sigma) + m.K*32/m.C0
	mr := m.A * math.Pow(c/m.C0, -m.Gamma) * (math.Pow(l, -m.Sigma) + m.K*l/c) / ref
	return math.Min(1, math.Max(1e-9, mr))
}

// HitRatio returns 1 − MissRatio.
func (m Model) HitRatio(size, lineSize int) float64 { return 1 - m.MissRatio(size, lineSize) }

// Table is an empirical miss-ratio surface backed by measured points,
// e.g. from cache-simulator sweeps. Lookups require exact (size, line)
// hits; Interp provides log-space interpolation on line size.
type Table struct {
	points map[geom]float64
}

type geom struct{ size, line int }

// NewTable returns an empty table.
func NewTable() *Table { return &Table{points: make(map[geom]float64)} }

// Set records the miss ratio for a geometry.
func (t *Table) Set(size, lineSize int, mr float64) {
	t.points[geom{size, lineSize}] = mr
}

// Len returns the number of recorded points.
func (t *Table) Len() int { return len(t.points) }

// Lookup returns the recorded miss ratio and whether it exists.
func (t *Table) Lookup(size, lineSize int) (float64, bool) {
	mr, ok := t.points[geom{size, lineSize}]
	return mr, ok
}

// MissRatio implements Surface. For a missing geometry it interpolates
// linearly in log2(lineSize) between the nearest recorded lines of the
// same cache size, and panics if no point for that size exists at all —
// a misuse, since tables are built per experiment.
func (t *Table) MissRatio(size, lineSize int) float64 {
	if mr, ok := t.Lookup(size, lineSize); ok {
		return mr
	}
	var lines []int
	for g := range t.points {
		if g.size == size {
			lines = append(lines, g.line)
		}
	}
	if len(lines) == 0 {
		panic(fmt.Sprintf("missratio: no data for cache size %d", size))
	}
	sort.Ints(lines)
	// Clamp outside the measured range.
	if lineSize <= lines[0] {
		return t.points[geom{size, lines[0]}]
	}
	if lineSize >= lines[len(lines)-1] {
		return t.points[geom{size, lines[len(lines)-1]}]
	}
	// Interpolate between the bracketing measured lines.
	i := sort.SearchInts(lines, lineSize)
	lo, hi := lines[i-1], lines[i]
	mrLo, mrHi := t.points[geom{size, lo}], t.points[geom{size, hi}]
	frac := (math.Log2(float64(lineSize)) - math.Log2(float64(lo))) /
		(math.Log2(float64(hi)) - math.Log2(float64(lo)))
	return mrLo + frac*(mrHi-mrLo)
}

// Sizes returns the distinct cache sizes recorded, ascending.
func (t *Table) Sizes() []int {
	seen := map[int]bool{}
	for g := range t.points {
		seen[g.size] = true
	}
	sizes := make([]int, 0, len(seen))
	for s := range seen {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}

// Lines returns the distinct line sizes recorded for a cache size,
// ascending.
func (t *Table) Lines(size int) []int {
	var lines []int
	for g := range t.points {
		if g.size == size {
			lines = append(lines, g.line)
		}
	}
	sort.Ints(lines)
	return lines
}
