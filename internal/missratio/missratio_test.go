package missratio

import (
	"math"
	"testing"
	"testing/quick"

	"tradeoff/internal/cache"
	"tradeoff/internal/trace"
)

func TestModelBasicShape(t *testing.T) {
	m := DefaultModel()
	// Larger caches miss less (same line size).
	if m.MissRatio(32<<10, 32) >= m.MissRatio(8<<10, 32) {
		t.Fatal("miss ratio did not fall with cache size")
	}
	// Growing the line from small sizes helps (spatial locality)...
	if m.MissRatio(16<<10, 32) >= m.MissRatio(16<<10, 8) {
		t.Fatal("miss ratio did not fall from 8B to 32B lines")
	}
	// ...but extreme lines pollute a small cache.
	if m.MissRatio(1<<10, 512) <= m.MissRatio(1<<10, 64) {
		t.Fatal("no pollution penalty for 512B lines in a 1K cache")
	}
}

func TestModelReferencePoint(t *testing.T) {
	m := DefaultModel()
	// By construction MR(C0, 32) == A.
	if got := m.MissRatio(16<<10, 32); math.Abs(got-m.A) > 1e-12 {
		t.Fatalf("MR(C0, 32) = %v, want %v", got, m.A)
	}
}

func TestModelClamps(t *testing.T) {
	m := DefaultModel()
	if m.MissRatio(0, 32) != 1 || m.MissRatio(16<<10, 0) != 1 {
		t.Fatal("degenerate geometry not clamped to 1")
	}
	f := func(sizeExp, lineExp uint8) bool {
		size := 1 << (8 + sizeExp%12)
		line := 4 << (lineExp % 8)
		mr := m.MissRatio(size, line)
		return mr > 0 && mr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelHitRatio(t *testing.T) {
	m := DefaultModel()
	if hr := m.HitRatio(16<<10, 32); math.Abs(hr+m.MissRatio(16<<10, 32)-1) > 1e-12 {
		t.Fatalf("HitRatio+MissRatio != 1: %v", hr)
	}
}

// smithOptimal applies Smith's criterion (Eq. (16) of the paper):
// minimize miss-ratio × miss-penalty, penalty = c' + β·L/D with
// c' = λ·β (latency expressed in bus cycles; see DESIGN.md §4).
func smithOptimal(s Surface, size, busWidth int, lambda float64, lines []int) int {
	best, bestV := 0, math.Inf(1)
	for _, l := range lines {
		v := s.MissRatio(size, l) * (lambda + float64(l)/float64(busWidth))
		if v < bestV {
			best, bestV = l, v
		}
	}
	return best
}

func TestCalibrationMatchesFigure6Subcaptions(t *testing.T) {
	// The four Figure 6 design points and the line sizes Smith's
	// criterion chose in the paper.
	m := DefaultModel()
	lines := []int{8, 16, 32, 64, 128, 256}
	cases := []struct {
		name     string
		size     int
		busWidth int
		lambda   float64 // latency-ns / (ns-per-byte × D): c−1 = λβ
		want     []int   // acceptable optima
	}{
		{"(a) 16K D=4 360ns+15ns/B", 16 << 10, 4, 360.0 / (15 * 4), []int{32}},
		{"(b) 16K D=8 160ns+15ns/B", 16 << 10, 8, 160.0 / (15 * 8), []int{16}},
		{"(c) 16K D=8 600ns+4ns/B", 16 << 10, 8, 600.0 / (4 * 8), []int{64, 128}},
		{"(d) 8K D=8 360ns+15ns/B", 8 << 10, 8, 360.0 / (15 * 8), []int{32}},
	}
	for _, tc := range cases {
		got := smithOptimal(m, tc.size, tc.busWidth, tc.lambda, lines)
		ok := false
		for _, w := range tc.want {
			if got == w {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: Smith-optimal line %d, want one of %v", tc.name, got, tc.want)
		}
	}
}

func TestTableLookupAndLen(t *testing.T) {
	tab := NewTable()
	if tab.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	tab.Set(8<<10, 16, 0.05)
	tab.Set(8<<10, 32, 0.03)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if mr, ok := tab.Lookup(8<<10, 16); !ok || mr != 0.05 {
		t.Fatalf("Lookup = %v,%v", mr, ok)
	}
	if _, ok := tab.Lookup(8<<10, 64); ok {
		t.Fatal("Lookup found a missing point")
	}
}

func TestTableInterpolation(t *testing.T) {
	tab := NewTable()
	tab.Set(8<<10, 16, 0.08)
	tab.Set(8<<10, 64, 0.02)
	// log2 midpoint of 16 and 64 is 32.
	if got := tab.MissRatio(8<<10, 32); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("interpolated MR(32) = %v, want 0.05", got)
	}
	// Clamping outside the range.
	if got := tab.MissRatio(8<<10, 8); got != 0.08 {
		t.Fatalf("MR below range = %v, want clamp to 0.08", got)
	}
	if got := tab.MissRatio(8<<10, 256); got != 0.02 {
		t.Fatalf("MR above range = %v, want clamp to 0.02", got)
	}
}

func TestTablePanicsWithoutSizeData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown cache size")
		}
	}()
	NewTable().MissRatio(4<<10, 32)
}

func TestTableSizesAndLines(t *testing.T) {
	tab := NewTable()
	tab.Set(16<<10, 32, 0.04)
	tab.Set(8<<10, 64, 0.05)
	tab.Set(8<<10, 16, 0.09)
	if s := tab.Sizes(); len(s) != 2 || s[0] != 8<<10 || s[1] != 16<<10 {
		t.Fatalf("Sizes = %v", s)
	}
	if l := tab.Lines(8 << 10); len(l) != 2 || l[0] != 16 || l[1] != 64 {
		t.Fatalf("Lines(8K) = %v", l)
	}
}

func TestSimulatedTableAgreesOnShape(t *testing.T) {
	// Build a Table from the cache simulator and check it shows the
	// same qualitative structure as the parametric model: miss ratio
	// decreasing in line size over the small-line range for a
	// locality-rich workload.
	refs := trace.Collect(trace.MustProgram(trace.Swm256, 11), 150000)
	tab := NewTable()
	for _, ls := range []int{8, 16, 32, 64} {
		c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: ls, Assoc: 2})
		p := cache.Measure(c, refs)
		tab.Set(8<<10, ls, 1-p.HitRatio)
	}
	prev := 2.0
	for _, ls := range []int{8, 16, 32, 64} {
		mr := tab.MissRatio(8<<10, ls)
		if mr >= prev {
			t.Fatalf("simulated MR not decreasing at line %d: %v >= %v", ls, mr, prev)
		}
		prev = mr
	}
}
