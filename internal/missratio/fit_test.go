package missratio

import (
	"math"
	"strings"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/trace"
)

func TestFitRecoversModel(t *testing.T) {
	// Generate a table from a known model; the fit must reproduce its
	// miss ratios closely (parameters may trade off against each other,
	// so compare predictions, not parameters).
	truth := Model{A: 0.035, C0: 16 << 10, Gamma: 0.25, Sigma: 0.65, K: 2.0}
	tab := NewTable()
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		for _, line := range []int{8, 16, 32, 64, 128} {
			tab.Set(size, line, truth.MissRatio(size, line))
		}
	}
	fitted, err := Fit(tab)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := FitError(fitted, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.02 {
		t.Fatalf("fit RMSE (log space) = %.4f, want < 0.02 on self-generated data", rmse)
	}
	// Extrapolation to an unseen geometry stays close.
	want := truth.MissRatio(128<<10, 32)
	got := fitted.MissRatio(128<<10, 32)
	if math.Abs(math.Log(got)-math.Log(want)) > 0.15 {
		t.Fatalf("extrapolated MR %.5f vs truth %.5f", got, want)
	}
}

func TestFitSimulatedData(t *testing.T) {
	// Fit against simulator-measured miss ratios: the closed form must
	// describe the sweep to within a factor-level tolerance and keep
	// the qualitative structure (decreasing in size).
	refs := trace.Collect(trace.ZipfReuse(trace.ZipfReuseConfig{
		Seed: 5, Lines: 65536, Theta: 1.2, WriteFrac: 0.3}), 200000)
	tab := NewTable()
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		for _, line := range []int{16, 32, 64} {
			c := cache.MustNew(cache.Config{Size: size, LineSize: line, Assoc: 2})
			p := cache.Measure(c, refs)
			tab.Set(size, line, 1-p.HitRatio)
		}
	}
	fitted, err := Fit(tab)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := FitError(fitted, tab)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.5 { // within ~65% multiplicative everywhere
		t.Fatalf("fit RMSE %.3f on simulated data too large", rmse)
	}
	if fitted.MissRatio(64<<10, 32) >= fitted.MissRatio(4<<10, 32) {
		t.Fatal("fitted model lost size monotonicity")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	small := NewTable()
	small.Set(8<<10, 32, 0.05)
	if _, err := Fit(small); err == nil {
		t.Fatal("tiny table accepted")
	}
	bad := NewTable()
	bad.Set(8<<10, 8, 0.0)
	bad.Set(8<<10, 16, 0.1)
	bad.Set(8<<10, 32, 0.1)
	bad.Set(8<<10, 64, 0.1)
	if _, err := Fit(bad); err == nil {
		t.Fatal("zero miss ratio accepted")
	}
	if _, err := FitError(DefaultModel(), NewTable()); err == nil {
		t.Fatal("FitError accepted empty table")
	}
	if _, err := FitError(DefaultModel(), bad); err == nil {
		t.Fatal("FitError accepted non-positive entries")
	}
}

// TestFitRejectsDegenerateTables: a table whose points all share one
// cache size leaves γ unconstrained (the size factor is the same
// constant at every point), and one line size leaves σ unconstrained —
// Fit used to silently "converge" to an arbitrary corner of the search
// box. Both shapes must now fail with an error naming the missing axis.
func TestFitRejectsDegenerateTables(t *testing.T) {
	oneSize := NewTable()
	for _, line := range []int{8, 16, 32, 64} {
		oneSize.Set(8<<10, line, 0.1/float64(line))
	}
	if _, err := Fit(oneSize); err == nil {
		t.Fatal("table with a single cache size accepted")
	} else if !strings.Contains(err.Error(), "cache size") {
		t.Fatalf("single-cache-size error does not name the axis: %v", err)
	}

	oneLine := NewTable()
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		oneLine.Set(size, 32, 1.0/float64(size>>10))
	}
	if _, err := Fit(oneLine); err == nil {
		t.Fatal("table with a single line size accepted")
	} else if !strings.Contains(err.Error(), "line size") {
		t.Fatalf("single-line-size error does not name the axis: %v", err)
	}
}
