// Package bus models a shared processor-memory bus with multiple
// masters contending for it.
//
// The paper's related work (Tullsen & Eggers, its reference [10])
// observes that bus-based multiprocessors change the memory-latency
// picture: contention inflates the *effective* memory cycle time each
// processor sees. This package quantifies that inflation so the
// uniprocessor tradeoff model can be reused — feed the measured
// effective βm back into the Table 3 ratios, and the feature rankings
// shift exactly as the paper predicts for "systems that have a
// relatively long memory cycle time" (doubling the bus and write
// buffers lose value; pipelined memory gains).
//
// The model is a cycle-granular round-robin arbiter: each master
// issues transactions (line fills, flushes) drawn from a per-master
// request process; a transaction occupies the bus for its duration;
// queued masters wait. Fairness is round-robin from the last grant.
package bus

import (
	"fmt"
	"sort"
)

// Request is one bus transaction a master wants to perform.
type Request struct {
	Master int   // issuing master, 0-based
	At     int64 // cycle the request is ready
	Dur    int64 // bus cycles the transaction occupies
}

// Grant records a scheduled transaction.
type Grant struct {
	Request
	Start int64 // cycle the bus was granted
	End   int64 // Start + Dur
}

// Wait returns the cycles the request waited for the bus.
func (g Grant) Wait() int64 { return g.Start - g.At }

// Arbiter schedules requests on a single shared bus with round-robin
// fairness among masters that are waiting at the same time.
type Arbiter struct {
	masters int
	free    int64 // cycle the bus becomes free
	last    int   // master granted most recently (for round-robin)

	grants  uint64
	busy    int64
	waitSum int64
	maxWait int64
}

// NewArbiter returns an arbiter for the given number of masters.
func NewArbiter(masters int) (*Arbiter, error) {
	if masters < 1 {
		return nil, fmt.Errorf("bus: masters = %d, want >= 1", masters)
	}
	return &Arbiter{masters: masters, last: masters - 1}, nil
}

// Schedule orders the requests onto the bus and returns the grants in
// start order. Requests may arrive in any order; ties at the same
// ready cycle are broken round-robin after the last granted master.
// Schedule may be called repeatedly; the bus state carries over.
func (a *Arbiter) Schedule(reqs []Request) ([]Grant, error) {
	for _, r := range reqs {
		if r.Master < 0 || r.Master >= a.masters {
			return nil, fmt.Errorf("bus: master %d out of range [0, %d)", r.Master, a.masters)
		}
		if r.Dur <= 0 {
			return nil, fmt.Errorf("bus: non-positive duration %d", r.Dur)
		}
	}
	pending := append([]Request(nil), reqs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].At < pending[j].At })

	grants := make([]Grant, 0, len(pending))
	for len(pending) > 0 {
		// Find the requests ready when the bus frees (or the earliest
		// request if the bus is idle before any arrive).
		now := a.free
		if pending[0].At > now {
			now = pending[0].At
		}
		ready := 0
		for ready < len(pending) && pending[ready].At <= now {
			ready++
		}
		// Round-robin among the ready ones: first master strictly
		// after the last granted, cycling.
		pick := 0
		bestKey := a.masters + 1
		for i := 0; i < ready; i++ {
			key := (pending[i].Master - a.last - 1 + a.masters) % a.masters
			if key < bestKey {
				bestKey, pick = key, i
			}
		}
		r := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		g := Grant{Request: r, Start: now, End: now + r.Dur}
		a.free = g.End
		a.last = r.Master
		a.grants++
		a.busy += r.Dur
		a.waitSum += g.Wait()
		if w := g.Wait(); w > a.maxWait {
			a.maxWait = w
		}
		grants = append(grants, g)
	}
	return grants, nil
}

// Stats summarizes the arbiter's history.
type Stats struct {
	Grants      uint64
	BusyCycles  int64
	MeanWait    float64 // average cycles a transaction waited
	MaxWait     int64
	Utilization float64 // busy cycles / elapsed cycles
}

// Stats returns the cumulative statistics, with utilization computed
// against the bus's last-free cycle.
func (a *Arbiter) Stats() Stats {
	s := Stats{Grants: a.grants, BusyCycles: a.busy, MaxWait: a.maxWait}
	if a.grants > 0 {
		s.MeanWait = float64(a.waitSum) / float64(a.grants)
	}
	if a.free > 0 {
		s.Utilization = float64(a.busy) / float64(a.free)
	}
	return s
}
