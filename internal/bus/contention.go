package bus

import (
	"fmt"

	"tradeoff/internal/trace"
)

// EffectiveBetaM measures the effective memory cycle time a processor
// sees on a bus shared by n identical masters, each running the given
// workload model on its own cache. Every miss generates a line-fill
// transaction of (L/D)·βm bus cycles (flushes add α more traffic,
// folded in by the flushFactor); the arbiter schedules them; the
// effective βm is the nominal βm inflated by the mean queueing delay
// per transfer:
//
//	βm_eff = βm + meanWait / (L/D)
//
// The uniprocessor tradeoff model then applies with βm_eff in place of
// βm — the reuse the package comment describes.
type ContentionResult struct {
	Masters     int
	NominalBeta int64
	MeanWait    float64
	EffBetaM    float64
	Utilization float64
}

// MeasureContention simulates n masters for misses-per-master line
// fills each and returns the effective memory cycle time. interArrival
// is the mean instruction distance between misses for each master
// (from a cache simulation of the workload); lineChunks is L/D.
func MeasureContention(n int, betaM int64, lineChunks int, interArrival float64, missesPerMaster int, seed uint64) (ContentionResult, error) {
	if n < 1 || lineChunks < 1 || missesPerMaster < 1 {
		return ContentionResult{}, fmt.Errorf("bus: bad parameters n=%d chunks=%d misses=%d", n, lineChunks, missesPerMaster)
	}
	if interArrival < 1 {
		return ContentionResult{}, fmt.Errorf("bus: inter-arrival %g, want >= 1", interArrival)
	}
	arb, err := NewArbiter(n)
	if err != nil {
		return ContentionResult{}, err
	}
	dur := int64(lineChunks) * betaM
	rng := trace.NewRNG(seed)

	// Closed loop: each master has at most one outstanding fill — the
	// next miss can only issue after the previous fill returned, as in
	// the uniprocessor stall engine. A master's wait then measures pure
	// cross-master contention, not self-queueing.
	next := make([]int64, n)
	left := make([]int, n)
	for m := range next {
		next[m] = int64(rng.Uint64() % uint64(interArrival))
		left[m] = missesPerMaster
	}
	remaining := n * missesPerMaster
	for remaining > 0 {
		// Issue the earliest-ready request.
		pick := -1
		for m := 0; m < n; m++ {
			if left[m] > 0 && (pick < 0 || next[m] < next[pick]) {
				pick = m
			}
		}
		grants, err := arb.Schedule([]Request{{Master: pick, At: next[pick], Dur: dur}})
		if err != nil {
			return ContentionResult{}, err
		}
		left[pick]--
		remaining--
		next[pick] = grants[0].End + int64(rng.Geometric(interArrival))
	}
	s := arb.Stats()
	return ContentionResult{
		Masters:     n,
		NominalBeta: betaM,
		MeanWait:    s.MeanWait,
		EffBetaM:    float64(betaM) + s.MeanWait/float64(lineChunks),
		Utilization: s.Utilization,
	}, nil
}
