package bus

import (
	"testing"
	"testing/quick"
)

func TestNewArbiterValidation(t *testing.T) {
	if _, err := NewArbiter(0); err == nil {
		t.Fatal("zero masters accepted")
	}
	if _, err := NewArbiter(4); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSingleMaster(t *testing.T) {
	a, _ := NewArbiter(1)
	grants, err := a.Schedule([]Request{
		{Master: 0, At: 0, Dur: 10},
		{Master: 0, At: 5, Dur: 10}, // arrives while the first occupies the bus
		{Master: 0, At: 100, Dur: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0].Start != 0 || grants[0].End != 10 {
		t.Fatalf("grant 0: %+v", grants[0])
	}
	if grants[1].Start != 10 || grants[1].Wait() != 5 {
		t.Fatalf("grant 1: %+v", grants[1])
	}
	if grants[2].Start != 100 || grants[2].Wait() != 0 {
		t.Fatalf("grant 2: %+v", grants[2])
	}
}

func TestScheduleRoundRobinTieBreak(t *testing.T) {
	a, _ := NewArbiter(3)
	// All three ready at cycle 0: round-robin from master 0.
	grants, err := a.Schedule([]Request{
		{Master: 2, At: 0, Dur: 5},
		{Master: 0, At: 0, Dur: 5},
		{Master: 1, At: 0, Dur: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	order := []int{grants[0].Master, grants[1].Master, grants[2].Master}
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want round-robin 0,1,2", order)
	}
}

func TestScheduleRejectsBadRequests(t *testing.T) {
	a, _ := NewArbiter(2)
	if _, err := a.Schedule([]Request{{Master: 5, At: 0, Dur: 1}}); err == nil {
		t.Fatal("out-of-range master accepted")
	}
	if _, err := a.Schedule([]Request{{Master: 0, At: 0, Dur: 0}}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestScheduleNoOverlapProperty(t *testing.T) {
	// Property: grants never overlap, never start before their request
	// is ready, and every request gets exactly one grant.
	f := func(raw []uint16) bool {
		a, _ := NewArbiter(4)
		reqs := make([]Request, 0, len(raw))
		for i, v := range raw {
			reqs = append(reqs, Request{
				Master: i % 4,
				At:     int64(v % 500),
				Dur:    int64(v%7) + 1,
			})
		}
		grants, err := a.Schedule(reqs)
		if err != nil || len(grants) != len(reqs) {
			return false
		}
		var lastEnd int64
		for _, g := range grants {
			if g.Start < g.At || g.Start < lastEnd || g.End != g.Start+g.Dur {
				return false
			}
			lastEnd = g.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	a, _ := NewArbiter(2)
	if _, err := a.Schedule([]Request{
		{Master: 0, At: 0, Dur: 10},
		{Master: 1, At: 0, Dur: 10},
	}); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Grants != 2 || s.BusyCycles != 20 {
		t.Fatalf("stats %+v", s)
	}
	if s.MeanWait != 5 { // second waited 10, first 0
		t.Fatalf("mean wait %v, want 5", s.MeanWait)
	}
	if s.Utilization != 1 {
		t.Fatalf("utilization %v, want 1 (back-to-back)", s.Utilization)
	}
}

func TestContentionInflatesBetaM(t *testing.T) {
	single, err := MeasureContention(1, 10, 8, 400, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := MeasureContention(8, 10, 8, 400, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.EffBetaM > 10.5 {
		t.Fatalf("single master effective βm %.2f, want ≈ nominal 10", single.EffBetaM)
	}
	if crowd.EffBetaM <= single.EffBetaM {
		t.Fatalf("8 masters effective βm %.2f not above single %.2f", crowd.EffBetaM, single.EffBetaM)
	}
	if crowd.Utilization <= single.Utilization {
		t.Fatal("more masters did not raise utilization")
	}
}

func TestContentionMonotoneInMasters(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		r, err := MeasureContention(n, 10, 8, 600, 1000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if r.EffBetaM < prev-0.2 { // small sampling tolerance
			t.Fatalf("effective βm fell at n=%d: %.2f after %.2f", n, r.EffBetaM, prev)
		}
		prev = r.EffBetaM
	}
}

func TestMeasureContentionValidation(t *testing.T) {
	if _, err := MeasureContention(0, 10, 8, 100, 10, 1); err == nil {
		t.Fatal("zero masters accepted")
	}
	if _, err := MeasureContention(2, 10, 0, 100, 10, 1); err == nil {
		t.Fatal("zero chunks accepted")
	}
	if _, err := MeasureContention(2, 10, 8, 0.5, 10, 1); err == nil {
		t.Fatal("sub-cycle inter-arrival accepted")
	}
	if _, err := MeasureContention(2, 10, 8, 100, 0, 1); err == nil {
		t.Fatal("zero misses accepted")
	}
}
