package trace

// IFetchConfig configures an instruction-fetch stream generator.
type IFetchConfig struct {
	Seed      uint64
	Base      uint64  // starting byte address of the code region
	CodeBytes uint64  // size of the code region (default 256 KiB)
	AvgBlock  float64 // mean basic-block length in instructions (default 6)
	LoopFrac  float64 // fraction of taken branches that return to a recent block (default 0.85)
	InstrSize uint8   // bytes per instruction (default 4, the RISC model)
}

// IFetch returns the instruction-fetch reference stream of a RISC
// processor (§3.4 of the paper): one fetch per instruction, sequential
// within basic blocks, with branches that mostly loop back to recently
// executed blocks — which is why instruction-cache hit ratios are
// "usually very high" (§3.4) and the paper can fold instruction fetch
// out of Eq. (2) for single-tasking runs.
//
// The Instr index increments by exactly one per reference, so an
// IFetch stream can be interleaved with a data stream whose Instr
// indices were produced for the same nominal program.
func IFetch(cfg IFetchConfig) Source {
	if cfg.CodeBytes == 0 {
		cfg.CodeBytes = 256 << 10
	}
	if cfg.AvgBlock < 1 {
		cfg.AvgBlock = 6
	}
	if cfg.LoopFrac <= 0 || cfg.LoopFrac > 1 {
		cfg.LoopFrac = 0.85
	}
	if cfg.InstrSize == 0 {
		cfg.InstrSize = 4
	}
	return &ifetch{
		cfg: cfg,
		rng: NewRNG(cfg.Seed),
		pc:  cfg.Base,
	}
}

type ifetch struct {
	cfg    IFetchConfig
	rng    *RNG
	pc     uint64
	instr  uint64
	left   uint64     // instructions remaining in the current block
	recent [32]uint64 // ring of recent block start addresses (loop targets)
	nRec   int

	loopTarget uint64 // back-edge target of the loop being iterated
	loopIter   uint64 // remaining iterations of that loop
}

func (f *ifetch) Next() (Ref, bool) {
	if f.left == 0 {
		f.newBlock()
	}
	r := Ref{Instr: f.instr, Addr: f.pc, Size: f.cfg.InstrSize}
	f.instr++
	f.pc += uint64(f.cfg.InstrSize)
	if f.pc >= f.cfg.Base+f.cfg.CodeBytes {
		f.pc = f.cfg.Base
	}
	f.left--
	return r, true
}

// newBlock takes a branch: usually back to a recent block (a loop,
// biased toward the innermost), sometimes a short forward branch,
// rarely a far call — the mix that gives real instruction streams
// their very high cache hit ratios.
func (f *ifetch) newBlock() {
	f.left = f.rng.Geometric(f.cfg.AvgBlock)
	// Remember where this block starts before branching away from it.
	f.recent[f.nRec%len(f.recent)] = f.pc
	f.nRec++
	if f.loopIter > 0 {
		// Keep iterating the current loop: take its back edge again.
		f.loopIter--
		f.pc = f.loopTarget
		return
	}
	if f.rng.Bool(f.cfg.LoopFrac) {
		// Enter (or re-enter) a loop: pick a recent block as the back-
		// edge target, geometrically biased to the most recent (inner
		// loops iterate most), and stay with it for several iterations.
		depth := int(f.rng.Geometric(3)) - 1
		limit := min(f.nRec, len(f.recent))
		if depth >= limit {
			depth = limit - 1
		}
		idx := (f.nRec - 1 - depth) % len(f.recent)
		f.loopTarget = f.recent[idx]
		f.loopIter = f.rng.Geometric(12)
		f.pc = f.loopTarget
		return
	}
	isize := uint64(f.cfg.InstrSize)
	if f.rng.Bool(0.8) {
		// Short forward branch: skip a few blocks ahead.
		f.pc += (1 + f.rng.Uint64()%64) * isize
		if f.pc >= f.cfg.Base+f.cfg.CodeBytes {
			f.pc = f.cfg.Base
		}
		return
	}
	// Far call/branch to a random instruction-aligned target.
	span := f.cfg.CodeBytes / isize
	f.pc = f.cfg.Base + (f.rng.Uint64()%span)*isize
}

// Interleave merges a data-reference stream with an instruction-fetch
// stream into the access order a unified cache sees: for each
// instruction, the fetch first, then any data reference the
// instruction issues. The data stream's Instr indices drive the pace;
// fetch addresses are consumed one per instruction.
func Interleave(data, fetch Source) Source {
	return &interleave{data: data, fetch: fetch}
}

type interleave struct {
	data      Source
	fetch     Source
	pending   Ref // next data ref waiting for its instruction's fetch
	havePend  bool
	nextInstr uint64 // next instruction index to emit a fetch for
	done      bool
}

func (iv *interleave) Next() (Ref, bool) {
	for {
		if iv.done {
			return Ref{}, false
		}
		if !iv.havePend {
			r, ok := iv.data.Next()
			if !ok {
				iv.done = true
				return Ref{}, false
			}
			iv.pending, iv.havePend = r, true
		}
		if iv.nextInstr <= iv.pending.Instr {
			// Emit the fetch for instruction nextInstr.
			fr, ok := iv.fetch.Next()
			if !ok {
				iv.done = true
				return Ref{}, false
			}
			fr.Instr = iv.nextInstr
			iv.nextInstr++
			return fr, true
		}
		// All fetches up to the pending data ref are out; emit it.
		r := iv.pending
		iv.havePend = false
		return r, true
	}
}
