package trace

import (
	"hash/fnv"
	"testing"
)

// traceDigest hashes a trace so cross-version determinism can be
// pinned: the experiment results in EXPERIMENTS.md are reproducible
// only if the generators emit bit-identical streams for a fixed seed.
func traceDigest(refs []Ref) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, r := range refs {
		put(r.Instr)
		put(r.Addr)
		v := uint64(r.Size)
		if r.Write {
			v |= 1 << 32
		}
		put(v)
	}
	return h.Sum64()
}

// TestGoldenDigests pins the first 20k references of every generator
// family at seed 1994. If an intentional generator change breaks one
// of these, re-run `go test -run TestGoldenDigests -v` and update the
// constant — and re-generate EXPERIMENTS.md numbers, which the change
// invalidates.
func TestGoldenDigests(t *testing.T) {
	const n = 20000
	golden := map[string]uint64{
		"nasa7":   0x2258f3bba6932f2,
		"swm256":  0x76a03e1582319dff,
		"wave5":   0x72559e5573d79d79,
		"ear":     0xc99ff81e43c39690,
		"doduc":   0x3eb8c823f16a8013,
		"hydro2d": 0x55a99519f4db43d,
		"zipf":    0x6d6a4277b9fc0370,
		"ifetch":  0x40d0032dc35f11aa,
	}
	digest := func(name string) uint64 {
		switch name {
		case "zipf":
			return traceDigest(Collect(ZipfReuse(ZipfReuseConfig{Seed: 1994, Lines: 65536, Theta: 1.5, WriteFrac: 0.3}), n))
		case "ifetch":
			return traceDigest(Collect(IFetch(IFetchConfig{Seed: 1994, Base: 0x8000_0000}), n))
		default:
			return traceDigest(Collect(MustProgram(name, 1994), n))
		}
	}
	for name, want := range golden {
		if got := digest(name); got != want {
			t.Errorf("%s: digest %#x, golden %#x — generator output changed; update the golden and re-generate EXPERIMENTS.md", name, got, want)
		}
	}
}
