package trace

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseNativeFormat(t *testing.T) {
	in := `# comment
0 0x1000 4 R
3 0x1004 4 W

7 2048 8 r
`
	refs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("parsed %d refs, want 3", len(refs))
	}
	if refs[0] != (Ref{Instr: 0, Addr: 0x1000, Size: 4}) {
		t.Fatalf("ref 0 = %+v", refs[0])
	}
	if !refs[1].Write || refs[1].Instr != 3 {
		t.Fatalf("ref 1 = %+v", refs[1])
	}
	if refs[2].Addr != 2048 || refs[2].Size != 8 || refs[2].Write {
		t.Fatalf("ref 2 = %+v", refs[2])
	}
}

func TestParseRoundTripsTracegenOutput(t *testing.T) {
	// A generated trace serialized in tracegen's format must parse back
	// identically.
	orig := Collect(MustProgram(Ear, 3), 2000)
	var b strings.Builder
	for _, r := range orig {
		rw := "R"
		if r.Write {
			rw = "W"
		}
		// identical to cmd/tracegen's formatting
		fmt.Fprintf(&b, "%d %#x %d %s\n", r.Instr, r.Addr, r.Size, rw)
	}
	parsed, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(orig))
	}
	for i := range orig {
		if parsed[i] != orig[i] {
			t.Fatalf("ref %d: %+v != %+v", i, parsed[i], orig[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"0 0x10 4",               // missing field
		"x 0x10 4 R",             // bad instr
		"0 zz 4 R",               // bad addr (not hex or dec)
		"0 0x10 0 R",             // zero size
		"0 0x10 4 Q",             // bad kind
		"5 0x10 4 R\n5 0x14 4 R", // non-increasing instr
	}
	for i, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestParseDinero(t *testing.T) {
	in := `0 1000
1 1004
2 400
0 2000
`
	refs, err := ParseDinero(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 {
		t.Fatalf("parsed %d data refs, want 3 (ifetch dropped)", len(refs))
	}
	if refs[0].Addr != 0x1000 {
		t.Fatalf("dinero addresses are hex: got %#x", refs[0].Addr)
	}
	if !refs[1].Write {
		t.Fatal("label 1 not a write")
	}
	// The ifetch advanced the instruction counter between refs 1 and 2.
	if refs[2].Instr != refs[1].Instr+2 {
		t.Fatalf("ifetch did not advance instr: %d after %d", refs[2].Instr, refs[1].Instr)
	}
}

func TestParseDineroErrors(t *testing.T) {
	if _, err := ParseDinero(strings.NewReader("3 1000")); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := ParseDinero(strings.NewReader("0")); err == nil {
		t.Fatal("missing address accepted")
	}
	if _, err := ParseDinero(strings.NewReader("0 zz+")); err == nil {
		t.Fatal("bad address accepted")
	}
}
