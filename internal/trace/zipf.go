package trace

import "math"

// ZipfReuseConfig configures a ZipfReuse generator.
type ZipfReuseConfig struct {
	Seed      uint64
	Base      uint64  // starting byte address of the region
	Lines     int     // number of distinct lines the trace may touch
	LineBytes int     // reuse granularity in bytes (default 32)
	Theta     float64 // popularity skew θ > 0; larger = tighter locality (default 1.0)
	WriteFrac float64
	GapMean   float64
}

// ZipfReuse returns a generator following the independent-reference
// model with Zipf-distributed line popularity: each reference touches
// line i with probability ∝ (i+1)^(−θ), and popular lines are scattered
// across the address space so set-index conflicts behave naturally.
//
// Unlike the loop/stencil generators — whose miss ratios plateau once
// their working set fits — this yields the smooth miss-ratio-vs-size
// curves of general-purpose workloads (Short & Levy's traces in the
// paper's Example 1), where every cache doubling buys a predictable
// hit-ratio increment.
func ZipfReuse(cfg ZipfReuseConfig) Source {
	cfg = cfg.Normalized()
	rng := NewRNG(cfg.Seed)
	// Scatter popularity ranks over the region so that hot lines do not
	// all collide in the same cache sets: rank i maps to line perm[i]
	// via a linear permutation with an odd multiplier.
	mul := rng.Uint64() | 1 | 1
	return &zipfReuse{cfg: cfg, g: gapper{rng: rng, mean: cfg.GapMean}, mul: mul}
}

// Normalized returns the config with generator defaults applied; see
// SequentialConfig.Normalized.
func (cfg ZipfReuseConfig) Normalized() ZipfReuseConfig {
	if cfg.Lines <= 1 {
		cfg.Lines = 32768
	}
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 32
	}
	if cfg.Theta <= 0 {
		cfg.Theta = 1.0
	}
	if cfg.GapMean < 1 {
		cfg.GapMean = 3
	}
	return cfg
}

type zipfReuse struct {
	cfg ZipfReuseConfig
	g   gapper
	mul uint64
}

// sampleRank draws a popularity rank in [1, n] with P(k) ∝ k^(−θ) via
// inverse-CDF sampling of the continuous approximation.
func (z *zipfReuse) sampleRank(n int) int {
	theta := z.cfg.Theta
	u := z.g.rng.Float64()
	var k float64
	if math.Abs(theta-1) < 1e-9 {
		// θ = 1: CDF ∝ ln k.
		k = math.Exp(u * math.Log(float64(n)))
	} else {
		oneMinus := 1 - theta
		nPow := math.Pow(float64(n), oneMinus)
		k = math.Pow(u*(nPow-1)+1, 1/oneMinus)
	}
	d := int(k)
	if d < 1 {
		d = 1
	}
	if d > n {
		d = n
	}
	return d
}

func (z *zipfReuse) Next() (Ref, bool) {
	rank := uint64(z.sampleRank(z.cfg.Lines) - 1)
	lineIdx := (rank * z.mul) % uint64(z.cfg.Lines)
	off := z.g.rng.Uint64() % uint64(z.cfg.LineBytes)
	off &^= 3 // 4-byte aligned accesses
	return Ref{
		Instr: z.g.next(),
		Addr:  z.cfg.Base + lineIdx*uint64(z.cfg.LineBytes) + off,
		Size:  4,
		Write: z.g.rng.Bool(z.cfg.WriteFrac),
	}, true
}
