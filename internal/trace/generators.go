package trace

// This file provides the primitive access-pattern generators from which
// the SPEC92-like program models in programs.go are composed. Each
// generator is an infinite Source; wrap with Limit to bound it.

// gapper advances a shared instruction counter with pseudo-random gaps,
// modeling the non-memory instructions between load/stores.
type gapper struct {
	rng   *RNG
	instr uint64
	mean  float64 // mean instructions per memory reference (>= 1)
}

// next returns the instruction index for the next memory reference.
func (g *gapper) next() uint64 {
	g.instr += g.rng.Geometric(g.mean)
	return g.instr - 1
}

// SequentialConfig configures a Sequential generator.
type SequentialConfig struct {
	Seed      uint64
	Base      uint64  // starting byte address of the array region
	Length    uint64  // array region length in bytes
	Stride    uint64  // bytes between consecutive elements (>= ElemSize)
	ElemSize  uint8   // access size in bytes
	WriteFrac float64 // probability that an access is a store
	GapMean   float64 // mean instructions per reference
}

// Normalized returns the config with every zero-valued optional field
// replaced by the default the generator would apply — the exact
// parameters a Sequential source built from cfg runs with. The
// analytic model tier (internal/model) prices workloads from these
// normalized configs, so the normalization must stay the single
// source of truth for both.
func (cfg SequentialConfig) Normalized() SequentialConfig {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 8
	}
	if cfg.Stride == 0 {
		cfg.Stride = uint64(cfg.ElemSize)
	}
	if cfg.Length == 0 {
		cfg.Length = 1 << 20
	}
	if cfg.GapMean < 1 {
		cfg.GapMean = 3
	}
	return cfg
}

// Sequential returns a generator that sweeps a region repeatedly with a
// fixed stride, the dominant pattern of vectorizable FP codes such as
// nasa7 and swm256. When the sweep reaches the end of the region it
// wraps to the base address (a new outer-loop iteration).
func Sequential(cfg SequentialConfig) Source {
	cfg = cfg.Normalized()
	return &sequential{cfg: cfg, g: gapper{rng: NewRNG(cfg.Seed), mean: cfg.GapMean}}
}

type sequential struct {
	cfg SequentialConfig
	g   gapper
	off uint64
}

func (s *sequential) Next() (Ref, bool) {
	r := Ref{
		Instr: s.g.next(),
		Addr:  s.cfg.Base + s.off,
		Size:  s.cfg.ElemSize,
		Write: s.g.rng.Bool(s.cfg.WriteFrac),
	}
	s.off += s.cfg.Stride
	if s.off >= s.cfg.Length {
		s.off = 0
	}
	return r, true
}

// Stencil2DConfig configures a Stencil2D generator.
type Stencil2DConfig struct {
	Seed      uint64
	Base      uint64  // starting byte address of the grid
	Rows      int     // grid rows
	Cols      int     // grid columns
	ElemSize  uint8   // bytes per grid element
	Points    int     // stencil points read per cell update (e.g. 5)
	WriteBack bool    // whether each update stores the center cell
	GapMean   float64 // mean instructions per reference
}

// Stencil2D returns a generator producing row-major sweeps over a 2-D
// grid where each cell update reads a small neighborhood (north, south,
// east, west, center) and optionally writes the center. This is the
// characteristic pattern of the grid solvers swm256 and hydro2d: strong
// spatial locality along the row plus recurring strided accesses one
// row apart.
func Stencil2D(cfg Stencil2DConfig) Source {
	cfg = cfg.Normalized()
	return &stencil{cfg: cfg, g: gapper{rng: NewRNG(cfg.Seed), mean: cfg.GapMean}, row: 1, col: 1}
}

// Normalized returns the config with generator defaults applied; see
// SequentialConfig.Normalized.
func (cfg Stencil2DConfig) Normalized() Stencil2DConfig {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 8
	}
	if cfg.Rows < 3 {
		cfg.Rows = 3
	}
	if cfg.Cols < 3 {
		cfg.Cols = 3
	}
	if cfg.Points <= 0 {
		cfg.Points = 5
	}
	if cfg.Points > 9 {
		cfg.Points = 9
	}
	if cfg.GapMean < 1 {
		cfg.GapMean = 3
	}
	return cfg
}

type stencil struct {
	cfg      Stencil2DConfig
	g        gapper
	row, col int
	point    int // next stencil point to emit for the current cell
}

func (s *stencil) addr(row, col int) uint64 {
	return s.cfg.Base + uint64(row*s.cfg.Cols+col)*uint64(s.cfg.ElemSize)
}

func (s *stencil) Next() (Ref, bool) {
	// Offsets of up to 9 stencil points, center first so the write-back
	// (emitted after all reads) revisits a just-read line.
	offsets := [9][2]int{{0, 0}, {0, -1}, {0, 1}, {-1, 0}, {1, 0}, {-1, -1}, {-1, 1}, {1, -1}, {1, 1}}
	points := s.cfg.Points
	if points > len(offsets) {
		points = len(offsets)
	}
	total := points
	if s.cfg.WriteBack {
		total++
	}
	var r Ref
	if s.point < points {
		o := offsets[s.point]
		r = Ref{Instr: s.g.next(), Addr: s.addr(s.row+o[0], s.col+o[1]), Size: s.cfg.ElemSize}
	} else {
		r = Ref{Instr: s.g.next(), Addr: s.addr(s.row, s.col), Size: s.cfg.ElemSize, Write: true}
	}
	s.point++
	if s.point >= total {
		s.point = 0
		s.col++
		if s.col >= s.cfg.Cols-1 {
			s.col = 1
			s.row++
			if s.row >= s.cfg.Rows-1 {
				s.row = 1
			}
		}
	}
	return r, true
}

// WorkingSetConfig configures a WorkingSet generator.
type WorkingSetConfig struct {
	Seed      uint64
	Base      uint64  // starting byte address of the heap region
	SetBytes  uint64  // size of the active working set in bytes
	HeapBytes uint64  // size of the whole region the set drifts within
	Migrate   float64 // per-reference probability the set shifts
	ElemSize  uint8
	WriteFrac float64
	GapMean   float64
}

// WorkingSet returns a generator making uniformly random accesses inside
// a working set that occasionally drifts across a larger heap. It models
// scalar, branchy codes with modest spatial locality such as doduc and
// ear. Smaller SetBytes raises temporal locality (higher hit ratio);
// larger SetBytes stresses the cache.
func WorkingSet(cfg WorkingSetConfig) Source {
	cfg = cfg.Normalized()
	return &workingSet{cfg: cfg, g: gapper{rng: NewRNG(cfg.Seed), mean: cfg.GapMean}}
}

// Normalized returns the config with generator defaults applied; see
// SequentialConfig.Normalized.
func (cfg WorkingSetConfig) Normalized() WorkingSetConfig {
	if cfg.ElemSize == 0 {
		cfg.ElemSize = 4
	}
	if cfg.SetBytes == 0 {
		cfg.SetBytes = 16 << 10
	}
	if cfg.HeapBytes < cfg.SetBytes {
		cfg.HeapBytes = cfg.SetBytes * 16
	}
	if cfg.GapMean < 1 {
		cfg.GapMean = 3
	}
	return cfg
}

type workingSet struct {
	cfg   WorkingSetConfig
	g     gapper
	start uint64 // offset of the working set within the heap
}

func (w *workingSet) Next() (Ref, bool) {
	rng := w.g.rng
	if rng.Bool(w.cfg.Migrate) {
		span := w.cfg.HeapBytes - w.cfg.SetBytes
		if span > 0 {
			w.start = rng.Uint64() % span
			w.start &^= uint64(w.cfg.ElemSize) - 1
		}
	}
	off := rng.Uint64() % w.cfg.SetBytes
	off &^= uint64(w.cfg.ElemSize) - 1
	return Ref{
		Instr: w.g.next(),
		Addr:  w.cfg.Base + w.start + off,
		Size:  w.cfg.ElemSize,
		Write: rng.Bool(w.cfg.WriteFrac),
	}, true
}

// PointerChaseConfig configures a PointerChase generator.
type PointerChaseConfig struct {
	Seed     uint64
	Base     uint64 // starting byte address of the node pool
	Nodes    int    // number of list nodes
	NodeSize uint64 // bytes per node (>= 8)
	Fields   int    // extra field reads per node visit
	GapMean  float64
}

// PointerChase returns a generator that walks a pseudo-random cyclic
// permutation of Nodes nodes, reading the link plus Fields payload
// fields of each node. It models irregular gather codes (the scatter
// phases of wave5): almost no spatial reuse across nodes, so nearly
// every node visit begins a fresh line.
func PointerChase(cfg PointerChaseConfig) Source {
	cfg = cfg.Normalized()
	rng := NewRNG(cfg.Seed)
	// Build a random cyclic permutation with Sattolo's algorithm so the
	// walk visits every node before repeating.
	next := make([]int, cfg.Nodes)
	for i := range next {
		next[i] = i
	}
	for i := cfg.Nodes - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	return &pointerChase{cfg: cfg, g: gapper{rng: rng, mean: cfg.GapMean}, next: next}
}

// Normalized returns the config with generator defaults applied; see
// SequentialConfig.Normalized.
func (cfg PointerChaseConfig) Normalized() PointerChaseConfig {
	if cfg.Nodes <= 1 {
		cfg.Nodes = 1024
	}
	if cfg.NodeSize < 8 {
		cfg.NodeSize = 64
	}
	if cfg.GapMean < 1 {
		cfg.GapMean = 3
	}
	return cfg
}

type pointerChase struct {
	cfg   PointerChaseConfig
	g     gapper
	next  []int
	cur   int
	field int // 0 = link read; 1..Fields = payload reads
}

func (p *pointerChase) Next() (Ref, bool) {
	base := p.cfg.Base + uint64(p.cur)*p.cfg.NodeSize
	var r Ref
	if p.field == 0 {
		r = Ref{Instr: p.g.next(), Addr: base, Size: 8}
	} else {
		off := (uint64(p.field) * 8) % p.cfg.NodeSize
		r = Ref{Instr: p.g.next(), Addr: base + off, Size: 8}
	}
	p.field++
	if p.field > p.cfg.Fields {
		p.field = 0
		p.cur = p.next[p.cur]
	}
	return r, true
}

// MixConfig pairs a generator with a selection weight.
type MixConfig struct {
	Source Source
	Weight float64
}

// Mix interleaves several sources, choosing the next source with
// probability proportional to its weight and preserving a single
// non-decreasing instruction index across the blend. Each draw emits a
// burst of burstLen references from the chosen source, modeling phased
// program behaviour. burstLen < 1 is treated as 1.
func Mix(seed uint64, burstLen int, parts ...MixConfig) Source {
	if burstLen < 1 {
		burstLen = 1
	}
	total := 0.0
	for _, p := range parts {
		total += p.Weight
	}
	return &mix{rng: NewRNG(seed), parts: parts, totalW: total, burst: burstLen}
}

type mix struct {
	rng    *RNG
	parts  []MixConfig
	totalW float64
	burst  int

	cur     int
	left    int    // references left in the current burst
	instr   uint64 // unified instruction counter
	lastSub uint64 // last sub-source instruction index (per current part)
}

func (m *mix) Next() (Ref, bool) {
	if len(m.parts) == 0 {
		return Ref{}, false
	}
	if m.left <= 0 {
		x := m.rng.Float64() * m.totalW
		for i, p := range m.parts {
			if x < p.Weight || i == len(m.parts)-1 {
				m.cur = i
				break
			}
			x -= p.Weight
		}
		m.left = m.burst
		m.lastSub = 0
	}
	r, ok := m.parts[m.cur].Source.Next()
	if !ok {
		// Drop the exhausted part and retry with the rest.
		m.parts = append(m.parts[:m.cur], m.parts[m.cur+1:]...)
		m.totalW = 0
		for _, p := range m.parts {
			m.totalW += p.Weight
		}
		m.left = 0
		return m.Next()
	}
	// Re-base the sub-source instruction index onto the unified counter,
	// preserving the sub-source's inter-reference gaps within a burst.
	var gap uint64
	if m.lastSub == 0 || r.Instr <= m.lastSub {
		gap = 1 + m.rng.Uint64()%4
	} else {
		gap = r.Instr - m.lastSub
	}
	m.lastSub = r.Instr
	m.instr += gap
	r.Instr = m.instr - 1
	m.left--
	return r, true
}
