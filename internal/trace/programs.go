package trace

import (
	"fmt"
	"sort"
)

// Program names for the six SPEC92 workload models used by the paper's
// Figure 1 (average stalling factors). See DESIGN.md §4 for why these
// synthetic models substitute for the original traces.
const (
	Nasa7   = "nasa7"   // vectorizable FP kernels: long unit-stride sweeps
	Swm256  = "swm256"  // shallow-water model: 2-D grid stencils
	Wave5   = "wave5"   // particle-in-cell: gather/scatter + field sweeps
	Ear     = "ear"     // ear model: filter chains over modest working sets
	Doduc   = "doduc"   // Monte-Carlo reactor: branchy, poor spatial locality
	Hydro2D = "hydro2d" // Navier-Stokes: 2-D stencils over large grids
)

// Programs lists the six SPEC92-like workload model names in the order
// the paper reports them.
func Programs() []string {
	return []string{Nasa7, Swm256, Wave5, Ear, Doduc, Hydro2D}
}

// NewProgram returns the synthetic workload model for one of the six
// SPEC92 program names, seeded deterministically from seed. It returns
// an error for unknown names. The resulting Source is infinite; bound it
// with Limit. The blend recipes live in SpecFor (spec.go), which both
// this constructor and the analytic model tier read.
func NewProgram(name string, seed uint64) (Source, error) {
	if name == Zipf {
		return nil, fmt.Errorf("trace: unknown program %q (want one of %v)", name, Programs())
	}
	spec, err := SpecFor(name, seed)
	if err != nil {
		return nil, err
	}
	return spec.Source(), nil
}

// MustProgram is NewProgram but panics on an unknown name. It is for
// tests and benchmarks where the name is a compile-time constant.
func MustProgram(name string, seed uint64) Source {
	src, err := NewProgram(name, seed)
	if err != nil {
		panic(err)
	}
	return src
}

// ValidNames reports whether every name in names is a known program,
// returning the sorted list of unknown names otherwise.
func ValidNames(names []string) (unknown []string) {
	known := make(map[string]bool, 6)
	for _, p := range Programs() {
		known[p] = true
	}
	for _, n := range names {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	sort.Strings(unknown)
	return unknown
}
