package trace

import (
	"fmt"
	"sort"
)

// Program names for the six SPEC92 workload models used by the paper's
// Figure 1 (average stalling factors). See DESIGN.md §4 for why these
// synthetic models substitute for the original traces.
const (
	Nasa7   = "nasa7"   // vectorizable FP kernels: long unit-stride sweeps
	Swm256  = "swm256"  // shallow-water model: 2-D grid stencils
	Wave5   = "wave5"   // particle-in-cell: gather/scatter + field sweeps
	Ear     = "ear"     // ear model: filter chains over modest working sets
	Doduc   = "doduc"   // Monte-Carlo reactor: branchy, poor spatial locality
	Hydro2D = "hydro2d" // Navier-Stokes: 2-D stencils over large grids
)

// Programs lists the six SPEC92-like workload model names in the order
// the paper reports them.
func Programs() []string {
	return []string{Nasa7, Swm256, Wave5, Ear, Doduc, Hydro2D}
}

// NewProgram returns the synthetic workload model for one of the six
// SPEC92 program names, seeded deterministically from seed. It returns
// an error for unknown names. The resulting Source is infinite; bound it
// with Limit.
func NewProgram(name string, seed uint64) (Source, error) {
	// Address-space layout: keep regions disjoint so blends do not alias.
	const (
		arrayA = 0x0100_0000
		arrayB = 0x0200_0000
		arrayC = 0x0300_0000
		gridA  = 0x0400_0000
		heap   = 0x0500_0000
		pool   = 0x0600_0000
	)
	switch name {
	case Nasa7:
		// Seven vector kernels: dominant unit-stride double-precision
		// sweeps over arrays far larger than the cache, a secondary
		// strided (column) sweep, and a small scalar working set.
		return Mix(seed, 64,
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 1, Base: arrayA, Length: 1 << 21, Stride: 8, ElemSize: 8, WriteFrac: 0.30, GapMean: 2.8}), Weight: 0.55},
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 2, Base: arrayB, Length: 1 << 21, Stride: 256, ElemSize: 8, WriteFrac: 0.25, GapMean: 3.0}), Weight: 0.20},
			MixConfig{Source: WorkingSet(WorkingSetConfig{Seed: seed + 3, Base: heap, SetBytes: 4 << 10, HeapBytes: 64 << 10, Migrate: 1e-4, ElemSize: 8, WriteFrac: 0.3, GapMean: 3.2}), Weight: 0.25},
		), nil
	case Swm256:
		// Shallow-water: 5-point stencils over a 256x256 grid of
		// doubles, with the center cell written back each update.
		return Mix(seed, 96,
			MixConfig{Source: Stencil2D(Stencil2DConfig{Seed: seed + 1, Base: gridA, Rows: 256, Cols: 256, ElemSize: 8, Points: 5, WriteBack: true, GapMean: 2.6}), Weight: 0.75},
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 2, Base: arrayA, Length: 1 << 20, Stride: 8, ElemSize: 8, WriteFrac: 0.35, GapMean: 2.8}), Weight: 0.25},
		), nil
	case Wave5:
		// Particle-in-cell: field sweeps (sequential) interleaved with
		// particle gather/scatter (pointer-chase over a big pool).
		return Mix(seed, 48,
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 1, Base: arrayA, Length: 1 << 21, Stride: 8, ElemSize: 8, WriteFrac: 0.30, GapMean: 2.8}), Weight: 0.45},
			MixConfig{Source: PointerChase(PointerChaseConfig{Seed: seed + 2, Base: pool, Nodes: 32 << 10, NodeSize: 64, Fields: 3, GapMean: 3.0}), Weight: 0.35},
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 3, Base: arrayB, Length: 1 << 20, Stride: 8, ElemSize: 8, WriteFrac: 0.5, GapMean: 3.0}), Weight: 0.20},
		), nil
	case Ear:
		// Cochlea model: cascaded filters reading short coefficient
		// vectors (high temporal locality) and streaming samples.
		return Mix(seed, 64,
			MixConfig{Source: WorkingSet(WorkingSetConfig{Seed: seed + 1, Base: heap, SetBytes: 12 << 10, HeapBytes: 128 << 10, Migrate: 5e-5, ElemSize: 4, WriteFrac: 0.30, GapMean: 3.4}), Weight: 0.55},
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 2, Base: arrayA, Length: 1 << 19, Stride: 4, ElemSize: 4, WriteFrac: 0.35, GapMean: 3.0}), Weight: 0.45},
		), nil
	case Doduc:
		// Monte-Carlo: dominated by a drifting scalar working set with
		// little spatial structure and frequent writes.
		return Mix(seed, 32,
			MixConfig{Source: WorkingSet(WorkingSetConfig{Seed: seed + 1, Base: heap, SetBytes: 24 << 10, HeapBytes: 512 << 10, Migrate: 2e-4, ElemSize: 8, WriteFrac: 0.35, GapMean: 3.6}), Weight: 0.70},
			MixConfig{Source: PointerChase(PointerChaseConfig{Seed: seed + 2, Base: pool, Nodes: 8 << 10, NodeSize: 96, Fields: 2, GapMean: 3.2}), Weight: 0.30},
		), nil
	case Hydro2D:
		// Navier-Stokes on a grid bigger than swm256's, 9-point stencil.
		return Mix(seed, 96,
			MixConfig{Source: Stencil2D(Stencil2DConfig{Seed: seed + 1, Base: gridA, Rows: 402, Cols: 160, ElemSize: 8, Points: 9, WriteBack: true, GapMean: 2.6}), Weight: 0.70},
			MixConfig{Source: Sequential(SequentialConfig{Seed: seed + 2, Base: arrayC, Length: 1 << 21, Stride: 8, ElemSize: 8, WriteFrac: 0.4, GapMean: 2.8}), Weight: 0.30},
		), nil
	default:
		return nil, fmt.Errorf("trace: unknown program %q (want one of %v)", name, Programs())
	}
}

// MustProgram is NewProgram but panics on an unknown name. It is for
// tests and benchmarks where the name is a compile-time constant.
func MustProgram(name string, seed uint64) Source {
	src, err := NewProgram(name, seed)
	if err != nil {
		panic(err)
	}
	return src
}

// ValidNames reports whether every name in names is a known program,
// returning the sorted list of unknown names otherwise.
func ValidNames(names []string) (unknown []string) {
	known := make(map[string]bool, 6)
	for _, p := range Programs() {
		known[p] = true
	}
	for _, n := range names {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	sort.Strings(unknown)
	return unknown
}
