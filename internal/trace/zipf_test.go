package trace

import (
	"testing"
	"testing/quick"
)

func TestZipfDefaults(t *testing.T) {
	src := ZipfReuse(ZipfReuseConfig{Seed: 1})
	refs := Collect(src, 1000)
	if len(refs) != 1000 {
		t.Fatalf("got %d refs", len(refs))
	}
	for i, r := range refs {
		if r.Size != 4 || r.Addr%4 != 0 {
			t.Fatalf("ref %d: size %d addr %#x, want 4-byte aligned word", i, r.Size, r.Addr)
		}
	}
}

func TestZipfStaysInRegion(t *testing.T) {
	cfg := ZipfReuseConfig{Seed: 3, Base: 0x4000_0000, Lines: 1024, LineBytes: 32}
	refs := Collect(ZipfReuse(cfg), 20000)
	hi := cfg.Base + uint64(cfg.Lines*cfg.LineBytes)
	for i, r := range refs {
		if r.Addr < cfg.Base || r.Addr >= hi {
			t.Fatalf("ref %d addr %#x outside region [%#x, %#x)", i, r.Addr, cfg.Base, hi)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := Collect(ZipfReuse(ZipfReuseConfig{Seed: 9}), 2000)
	b := Collect(ZipfReuse(ZipfReuseConfig{Seed: 9}), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestZipfSkewControlsLocality(t *testing.T) {
	// Higher θ concentrates references on fewer lines.
	distinct := func(theta float64) int {
		refs := Collect(ZipfReuse(ZipfReuseConfig{Seed: 4, Lines: 32768, Theta: theta}), 30000)
		seen := map[uint64]bool{}
		for _, r := range refs {
			seen[r.Line(32)] = true
		}
		return len(seen)
	}
	lo, hi := distinct(1.5), distinct(0.8)
	if lo >= hi {
		t.Fatalf("θ=1.5 touched %d lines, θ=0.8 touched %d; want fewer for higher skew", lo, hi)
	}
}

func TestZipfInstrMonotonic(t *testing.T) {
	refs := Collect(ZipfReuse(ZipfReuseConfig{Seed: 5}), 5000)
	for i := 1; i < len(refs); i++ {
		if refs[i].Instr <= refs[i-1].Instr {
			t.Fatalf("instr not increasing at %d", i)
		}
	}
}

func TestZipfThetaOneBranch(t *testing.T) {
	// θ exactly 1 exercises the logarithmic CDF branch.
	refs := Collect(ZipfReuse(ZipfReuseConfig{Seed: 6, Lines: 4096, Theta: 1.0}), 10000)
	if len(refs) != 10000 {
		t.Fatal("θ=1 generator truncated")
	}
}

func TestZipfRankBoundsQuick(t *testing.T) {
	z := &zipfReuse{cfg: ZipfReuseConfig{Theta: 0.9}, g: gapper{rng: NewRNG(2), mean: 3}}
	f := func(nRaw uint16) bool {
		n := int(nRaw%5000) + 1
		k := z.sampleRank(n)
		return k >= 1 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfWriteFraction(t *testing.T) {
	refs := Collect(ZipfReuse(ZipfReuseConfig{Seed: 8, WriteFrac: 0.3}), 50000)
	s := Summarize(refs)
	if s.WriteFrac < 0.27 || s.WriteFrac > 0.33 {
		t.Fatalf("write fraction %.3f, want ≈0.3", s.WriteFrac)
	}
}
