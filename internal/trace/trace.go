// Package trace generates synthetic memory-address traces.
//
// The paper (Chen & Somani, ISCA '94) measures processor stalling factors
// by trace-driven simulation over six SPEC92 programs (nasa7, swm256,
// wave5, ear, doduc, hydro2d). Those traces are not redistributable, so
// this package provides parameterized workload models that reproduce the
// trace properties the stall-factor experiment actually depends on:
//
//   - the density of load/store instructions in the dynamic instruction
//     stream (which sets the inter-reference instruction distance ΔC used
//     by Eq. (8) of the paper),
//   - spatial locality (how often consecutive references fall on the same
//     cache line, which drives second-access-to-missing-line stalls), and
//   - temporal locality / working-set size (which sets the miss ratio of
//     the 8 KB two-way cache used in Figure 1).
//
// All generators are deterministic: the same seed yields the same trace.
package trace

// Ref is a single data-memory reference in an address trace.
//
// Instr is the index of the dynamic instruction that issues the
// reference. Instruction indices are strictly non-decreasing along a
// trace and may skip values: a gap of k between consecutive references
// models k-1 intervening non-memory instructions, each of which takes
// one processor cycle (assumption 4 of the paper's §3.1).
type Ref struct {
	Instr uint64 // dynamic instruction index issuing this reference
	Addr  uint64 // byte address
	Size  uint8  // access size in bytes (1, 2, 4 or 8)
	Write bool   // true for a store, false for a load
}

// Line returns the cache-line index of the reference for a line size of
// lineSize bytes. lineSize must be a power of two.
func (r Ref) Line(lineSize int) uint64 {
	return r.Addr / uint64(lineSize)
}

// Source is a stream of memory references.
//
// Next returns the next reference in the trace and true, or a zero Ref
// and false when the trace is exhausted. Implementations are not safe
// for concurrent use.
type Source interface {
	Next() (Ref, bool)
}

// Collect drains up to n references from src into a slice. If src ends
// early the shorter trace is returned. A non-positive n collects nothing.
func Collect(src Source, n int) []Ref {
	if n <= 0 {
		return nil
	}
	refs := make([]Ref, 0, n)
	for len(refs) < n {
		r, ok := src.Next()
		if !ok {
			break
		}
		refs = append(refs, r)
	}
	return refs
}

// Stats summarizes a trace. It is produced by Summarize and used by
// tests and the tracegen CLI to sanity-check generated workloads.
type Stats struct {
	Refs         int     // number of memory references
	Instructions uint64  // dynamic instruction count (last Instr + 1)
	Writes       int     // number of stores
	WriteFrac    float64 // Writes / Refs
	RefPerInstr  float64 // Refs / Instructions: the load/store density
	UniqueLines  int     // distinct 32-byte lines touched
	SameLineFrac float64 // fraction of refs on the same 32-byte line as the previous ref
}

// Summarize computes summary statistics for a trace, using a 32-byte
// line for the locality measures (the line size of Figure 1).
func Summarize(refs []Ref) Stats {
	var s Stats
	s.Refs = len(refs)
	if len(refs) == 0 {
		return s
	}
	const line = 32
	lines := make(map[uint64]struct{})
	var prev uint64
	same := 0
	for i, r := range refs {
		if r.Write {
			s.Writes++
		}
		l := r.Line(line)
		lines[l] = struct{}{}
		if i > 0 && l == prev {
			same++
		}
		prev = l
	}
	s.Instructions = refs[len(refs)-1].Instr + 1
	s.WriteFrac = float64(s.Writes) / float64(s.Refs)
	s.RefPerInstr = float64(s.Refs) / float64(s.Instructions)
	s.UniqueLines = len(lines)
	s.SameLineFrac = float64(same) / float64(max(1, s.Refs-1))
	return s
}

// Limit wraps a Source and ends the stream after n references.
func Limit(src Source, n int) Source { return &limited{src: src, left: n} }

type limited struct {
	src  Source
	left int
}

func (l *limited) Next() (Ref, bool) {
	if l.left <= 0 {
		return Ref{}, false
	}
	l.left--
	return l.src.Next()
}

// Concat returns a Source that yields all references of each source in
// turn, rebasing instruction indices so they remain non-decreasing
// across the boundary.
func Concat(srcs ...Source) Source { return &concat{srcs: srcs} }

type concat struct {
	srcs []Source
	base uint64 // instruction-index offset applied to the current source
	last uint64 // last emitted instruction index
}

func (c *concat) Next() (Ref, bool) {
	for len(c.srcs) > 0 {
		r, ok := c.srcs[0].Next()
		if ok {
			r.Instr += c.base
			c.last = r.Instr
			return r, true
		}
		c.srcs = c.srcs[1:]
		c.base = c.last + 1
	}
	return Ref{}, false
}
