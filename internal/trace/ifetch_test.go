package trace

import "testing"

func TestIFetchOneFetchPerInstruction(t *testing.T) {
	refs := Collect(IFetch(IFetchConfig{Seed: 1, Base: 0x8000_0000}), 10000)
	for i, r := range refs {
		if r.Instr != uint64(i) {
			t.Fatalf("ref %d has instr %d, want one fetch per instruction", i, r.Instr)
		}
		if r.Write {
			t.Fatalf("ref %d is a write; fetches are reads", i)
		}
		if r.Size != 4 {
			t.Fatalf("ref %d size %d, want 4", i, r.Size)
		}
	}
}

func TestIFetchStaysInCodeRegion(t *testing.T) {
	cfg := IFetchConfig{Seed: 2, Base: 0x8000_0000, CodeBytes: 64 << 10}
	refs := Collect(IFetch(cfg), 50000)
	for i, r := range refs {
		if r.Addr < cfg.Base || r.Addr >= cfg.Base+cfg.CodeBytes {
			t.Fatalf("ref %d addr %#x outside code region", i, r.Addr)
		}
		if r.Addr%4 != 0 {
			t.Fatalf("ref %d addr %#x not instruction aligned", i, r.Addr)
		}
	}
}

func TestIFetchHighLocality(t *testing.T) {
	// §3.4: "instruction cache hit ratio is usually very high". The
	// stream must show far fewer unique lines than references.
	refs := Collect(IFetch(IFetchConfig{Seed: 3, Base: 0}), 50000)
	s := Summarize(refs)
	if s.UniqueLines > len(refs)/20 {
		t.Fatalf("ifetch touched %d lines in %d refs — locality too weak", s.UniqueLines, len(refs))
	}
	// Sequential flow: most consecutive fetches share a 32-byte line.
	if s.SameLineFrac < 0.5 {
		t.Fatalf("same-line fraction %.3f, want sequential-dominated stream", s.SameLineFrac)
	}
}

func TestIFetchDeterministic(t *testing.T) {
	a := Collect(IFetch(IFetchConfig{Seed: 9}), 2000)
	b := Collect(IFetch(IFetchConfig{Seed: 9}), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestInterleaveOrdering(t *testing.T) {
	data := Limit(Sequential(SequentialConfig{Seed: 1, Base: 0x1000, GapMean: 3}), 100)
	fetch := IFetch(IFetchConfig{Seed: 2, Base: 0x8000_0000})
	refs := Collect(Interleave(data, fetch), 10000)
	if len(refs) == 0 {
		t.Fatal("no interleaved refs")
	}
	var lastInstr uint64
	dataCount := 0
	for i, r := range refs {
		if r.Instr < lastInstr {
			t.Fatalf("ref %d: instr went backwards (%d after %d)", i, r.Instr, lastInstr)
		}
		lastInstr = r.Instr
		if r.Addr < 0x8000_0000 {
			dataCount++
			// A data ref must directly follow its instruction's fetch.
			if i == 0 || refs[i-1].Instr != r.Instr || refs[i-1].Addr < 0x8000_0000 {
				t.Fatalf("ref %d: data ref not preceded by its fetch", i)
			}
		}
	}
	if dataCount != 100 {
		t.Fatalf("interleave emitted %d data refs, want 100", dataCount)
	}
}

func TestInterleaveEndsWithData(t *testing.T) {
	data := Limit(Sequential(SequentialConfig{Seed: 1, Base: 0x1000}), 5)
	fetch := IFetch(IFetchConfig{Seed: 2, Base: 0x8000_0000})
	src := Interleave(data, fetch)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
		if n > 1_000_000 {
			t.Fatal("interleave did not terminate")
		}
	}
	if n < 5 {
		t.Fatalf("only %d refs before exhaustion", n)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted interleave yielded another ref")
	}
}
