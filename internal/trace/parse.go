package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the native text trace format emitted by cmd/tracegen:
// one reference per line,
//
//	<instr> <hex-or-dec address> <size> <R|W>
//
// Blank lines and lines starting with '#' are ignored. Instruction
// indices must be strictly increasing.
func Parse(r io.Reader) ([]Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var refs []Ref
	lineNo := 0
	var lastInstr uint64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 4 (instr addr size R|W)", lineNo, len(fields))
		}
		instr, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad instruction index %q", lineNo, fields[0])
		}
		addr, err := parseAddrBase(fields[1], 10)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		size, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil || size == 0 {
			return nil, fmt.Errorf("trace: line %d: bad size %q", lineNo, fields[2])
		}
		var write bool
		switch fields[3] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad access kind %q, want R or W", lineNo, fields[3])
		}
		if len(refs) > 0 && instr <= lastInstr {
			return nil, fmt.Errorf("trace: line %d: instruction index %d not increasing (previous %d)", lineNo, instr, lastInstr)
		}
		lastInstr = instr
		refs = append(refs, Ref{Instr: instr, Addr: addr, Size: uint8(size), Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return refs, nil
}

// ParseDinero reads the classic Dinero III trace format used by cache
// studies of the paper's era: one reference per line,
//
//	<label> <hex address>
//
// with label 0 = data read, 1 = data write, 2 = instruction fetch.
// Instruction fetches are dropped (this package's data-trace consumers
// model them separately; see IFetch); instruction indices are
// synthesized, with each fetch advancing the instruction counter, so
// inter-reference distances survive the conversion.
func ParseDinero(r io.Reader) ([]Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var refs []Ref
	lineNo := 0
	instr := uint64(0)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: dinero line %d: %d fields, want 2 (label address)", lineNo, len(fields))
		}
		addr, err := parseAddrBase(fields[1], 16)
		if err != nil {
			return nil, fmt.Errorf("trace: dinero line %d: %v", lineNo, err)
		}
		switch fields[0] {
		case "0":
			refs = append(refs, Ref{Instr: instr, Addr: addr, Size: 4})
			instr++
		case "1":
			refs = append(refs, Ref{Instr: instr, Addr: addr, Size: 4, Write: true})
			instr++
		case "2":
			// Instruction fetch: advances time, carries no data ref.
			instr++
		default:
			return nil, fmt.Errorf("trace: dinero line %d: bad label %q, want 0, 1 or 2", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return refs, nil
}

// parseAddrBase parses an address. 0x-prefixed strings are always hex;
// bare strings use the given base (10 for the native format, 16 for
// Dinero, whose addresses are bare hex).
func parseAddrBase(s string, bareBase int) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad address %q", s)
		}
		return v, nil
	}
	v, err := strconv.ParseUint(s, bareBase, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}
