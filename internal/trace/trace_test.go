package trace

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum uint64
	for i := 0; i < n; i++ {
		sum += r.Geometric(4)
	}
	mean := float64(sum) / n
	if mean < 3.2 || mean > 4.8 {
		t.Fatalf("Geometric(4) sample mean = %.2f, want ~4", mean)
	}
}

func TestRNGGeometricMinimumOne(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(0.1); g != 1 {
			t.Fatalf("Geometric(0.1) = %d, want 1", g)
		}
	}
}

func TestRefLine(t *testing.T) {
	r := Ref{Addr: 100}
	if got := r.Line(32); got != 3 {
		t.Fatalf("Line(32) = %d, want 3", got)
	}
	if got := r.Line(8); got != 12 {
		t.Fatalf("Line(8) = %d, want 12", got)
	}
}

func TestSequentialWraps(t *testing.T) {
	src := Sequential(SequentialConfig{Seed: 1, Base: 0x1000, Length: 64, Stride: 8, ElemSize: 8})
	refs := Collect(src, 20)
	if len(refs) != 20 {
		t.Fatalf("got %d refs, want 20", len(refs))
	}
	for i, r := range refs {
		want := uint64(0x1000) + uint64(i%8)*8
		if r.Addr != want {
			t.Fatalf("ref %d: addr %#x, want %#x", i, r.Addr, want)
		}
	}
}

func TestSequentialDefaults(t *testing.T) {
	src := Sequential(SequentialConfig{Seed: 1})
	refs := Collect(src, 10)
	for i, r := range refs {
		if r.Size != 8 {
			t.Fatalf("ref %d: size %d, want default 8", i, r.Size)
		}
	}
}

func TestInstrMonotonic(t *testing.T) {
	for _, name := range Programs() {
		refs := Collect(MustProgram(name, 1), 20000)
		for i := 1; i < len(refs); i++ {
			if refs[i].Instr <= refs[i-1].Instr {
				t.Fatalf("%s: instr not strictly increasing at %d: %d then %d",
					name, i, refs[i-1].Instr, refs[i].Instr)
			}
		}
	}
}

func TestProgramsDeterministic(t *testing.T) {
	for _, name := range Programs() {
		a := Collect(MustProgram(name, 99), 5000)
		b := Collect(MustProgram(name, 99), 5000)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: ref %d differs: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

func TestProgramsDifferBySeed(t *testing.T) {
	a := Collect(MustProgram(Nasa7, 1), 1000)
	b := Collect(MustProgram(Nasa7, 2), 1000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestProgramProfiles(t *testing.T) {
	// Every program model must look like a plausible load/store stream:
	// 20-45% of instructions are memory references, stores are 15-55% of
	// references, and spatial locality spans a wide range across models.
	for _, name := range Programs() {
		refs := Collect(MustProgram(name, 7), 100000)
		s := Summarize(refs)
		if s.RefPerInstr < 0.20 || s.RefPerInstr > 0.45 {
			t.Errorf("%s: refs/instr = %.3f, want in [0.20, 0.45]", name, s.RefPerInstr)
		}
		if s.WriteFrac < 0.10 || s.WriteFrac > 0.55 {
			t.Errorf("%s: write fraction = %.3f, want in [0.10, 0.55]", name, s.WriteFrac)
		}
		if s.UniqueLines < 100 {
			t.Errorf("%s: only %d unique lines touched", name, s.UniqueLines)
		}
	}
}

func TestSpatialLocalityOrdering(t *testing.T) {
	// Unit-stride-heavy nasa7 must show much higher same-line locality
	// than the working-set-dominated doduc.
	nasa := Summarize(Collect(MustProgram(Nasa7, 5), 100000))
	dod := Summarize(Collect(MustProgram(Doduc, 5), 100000))
	if nasa.SameLineFrac <= dod.SameLineFrac {
		t.Fatalf("nasa7 same-line %.3f <= doduc same-line %.3f", nasa.SameLineFrac, dod.SameLineFrac)
	}
}

func TestNewProgramUnknown(t *testing.T) {
	if _, err := NewProgram("gcc", 1); err == nil {
		t.Fatal("NewProgram(gcc) succeeded, want error")
	}
}

func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustProgram did not panic on unknown name")
		}
	}()
	MustProgram("nope", 1)
}

func TestValidNames(t *testing.T) {
	unknown := ValidNames([]string{"nasa7", "zzz", "ear", "aaa"})
	if len(unknown) != 2 || unknown[0] != "aaa" || unknown[1] != "zzz" {
		t.Fatalf("ValidNames = %v, want [aaa zzz]", unknown)
	}
	if got := ValidNames(Programs()); len(got) != 0 {
		t.Fatalf("ValidNames(Programs()) = %v, want empty", got)
	}
}

func TestLimit(t *testing.T) {
	src := Limit(Sequential(SequentialConfig{Seed: 1}), 5)
	refs := Collect(src, 100)
	if len(refs) != 5 {
		t.Fatalf("Limit(5) yielded %d refs", len(refs))
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Limit source yielded past its bound")
	}
}

func TestCollectNonPositive(t *testing.T) {
	if refs := Collect(Sequential(SequentialConfig{Seed: 1}), 0); refs != nil {
		t.Fatalf("Collect(0) = %v, want nil", refs)
	}
	if refs := Collect(Sequential(SequentialConfig{Seed: 1}), -3); refs != nil {
		t.Fatalf("Collect(-3) = %v, want nil", refs)
	}
}

func TestConcatRebasing(t *testing.T) {
	a := Limit(Sequential(SequentialConfig{Seed: 1, Base: 0x1000}), 10)
	b := Limit(Sequential(SequentialConfig{Seed: 2, Base: 0x2000}), 10)
	refs := Collect(Concat(a, b), 100)
	if len(refs) != 20 {
		t.Fatalf("Concat yielded %d refs, want 20", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i].Instr <= refs[i-1].Instr {
			t.Fatalf("Concat instr not increasing at %d", i)
		}
	}
	if refs[10].Addr < 0x2000 {
		t.Fatalf("second source refs missing: addr %#x", refs[10].Addr)
	}
}

func TestStencilAddressesWithinGrid(t *testing.T) {
	cfg := Stencil2DConfig{Seed: 1, Base: 0x4000, Rows: 16, Cols: 16, ElemSize: 8, Points: 5, WriteBack: true}
	refs := Collect(Stencil2D(cfg), 5000)
	lo, hi := uint64(0x4000), uint64(0x4000)+uint64(16*16*8)
	writes := 0
	for i, r := range refs {
		if r.Addr < lo || r.Addr >= hi {
			t.Fatalf("ref %d addr %#x outside grid [%#x,%#x)", i, r.Addr, lo, hi)
		}
		if r.Write {
			writes++
		}
	}
	// One write per 6 refs (5 reads + 1 write).
	frac := float64(writes) / float64(len(refs))
	if frac < 0.12 || frac > 0.22 {
		t.Fatalf("stencil write fraction %.3f, want ~1/6", frac)
	}
}

func TestPointerChaseVisitsAllNodes(t *testing.T) {
	const nodes = 64
	src := PointerChase(PointerChaseConfig{Seed: 3, Base: 0, Nodes: nodes, NodeSize: 64, Fields: 0})
	seen := make(map[uint64]bool)
	for i := 0; i < nodes; i++ {
		r, _ := src.Next()
		seen[r.Addr/64] = true
	}
	if len(seen) != nodes {
		t.Fatalf("pointer chase visited %d/%d nodes in one period", len(seen), nodes)
	}
}

func TestWorkingSetBounds(t *testing.T) {
	cfg := WorkingSetConfig{Seed: 5, Base: 0x9000_0000, SetBytes: 8 << 10, HeapBytes: 1 << 20, Migrate: 0.001, ElemSize: 8}
	refs := Collect(WorkingSet(cfg), 20000)
	for i, r := range refs {
		if r.Addr < cfg.Base || r.Addr >= cfg.Base+cfg.HeapBytes {
			t.Fatalf("ref %d addr %#x outside heap", i, r.Addr)
		}
		if r.Addr%8 != 0 {
			t.Fatalf("ref %d addr %#x not aligned to elem size", i, r.Addr)
		}
	}
}

func TestMixDrainsExhaustedParts(t *testing.T) {
	a := Limit(Sequential(SequentialConfig{Seed: 1, Base: 0x1000}), 5)
	b := Limit(Sequential(SequentialConfig{Seed: 2, Base: 0x2000}), 5)
	src := Mix(1, 2, MixConfig{Source: a, Weight: 1}, MixConfig{Source: b, Weight: 1})
	refs := Collect(src, 100)
	if len(refs) != 10 {
		t.Fatalf("Mix yielded %d refs, want 10 total", len(refs))
	}
}

func TestMixEmpty(t *testing.T) {
	if _, ok := Mix(1, 4).Next(); ok {
		t.Fatal("empty Mix yielded a ref")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Refs != 0 || s.Instructions != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zeros", s)
	}
}

func TestLinePropertyQuick(t *testing.T) {
	// Property: line index is consistent with integer division and two
	// addresses on the same line differ by less than the line size.
	f := func(addr uint64, shift uint8) bool {
		ls := 1 << (3 + shift%6) // 8..256
		r := Ref{Addr: addr}
		return r.Line(ls) == addr/uint64(ls)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricPropertyQuick(t *testing.T) {
	// Property: Geometric always returns at least 1.
	f := func(seed uint64, m uint8) bool {
		r := NewRNG(seed)
		return r.Geometric(float64(m%30)) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
