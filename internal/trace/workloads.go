package trace

import "sort"

// Zipf names the synthetic independent-reference workload accepted
// alongside the six SPEC92-like programs wherever a workload name is
// parsed (sweep hit sources, /v1/stall grids, miss-ratio specs).
const Zipf = "zipf"

// Workloads lists every named workload: the six programs plus "zipf".
func Workloads() []string {
	return append(Programs(), Zipf)
}

// NewWorkload returns the named workload's source, seeded
// deterministically from seed. "zipf" selects the Zipf-popularity
// generator with the parameters the sweep engine has always used for
// its sim:zipf hit source; any other name resolves via NewProgram.
// The resulting Source is infinite; bound it with Limit.
func NewWorkload(name string, seed uint64) (Source, error) {
	spec, err := SpecFor(name, seed)
	if err != nil {
		return nil, err
	}
	return spec.Source(), nil
}

// MustWorkload is NewWorkload but panics on an unknown name, for tests
// and benchmarks where the name is a compile-time constant.
func MustWorkload(name string, seed uint64) Source {
	src, err := NewWorkload(name, seed)
	if err != nil {
		panic(err)
	}
	return src
}

// ValidWorkloads reports whether every name in names is a known
// workload, returning the sorted list of unknown names otherwise.
func ValidWorkloads(names []string) (unknown []string) {
	known := make(map[string]bool, 7)
	for _, w := range Workloads() {
		known[w] = true
	}
	for _, n := range names {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	sort.Strings(unknown)
	return unknown
}
