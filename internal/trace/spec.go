package trace

import "fmt"

// This file is the declarative description of every named workload: a
// Spec lists the primitive generators a workload blends, with the
// exact (normalized) parameters and mix weights the Source runs with.
// NewProgram/NewWorkload construct their generators *from* these
// specs, so the spec layer cannot drift from the traces — and the
// analytic model tier (internal/model) prices workloads from the same
// structs, which is what makes its closed-form curves honest.

// Component kinds, one per primitive generator.
const (
	KindSequential   = "sequential"
	KindStencil2D    = "stencil2d"
	KindWorkingSet   = "workingset"
	KindPointerChase = "pointerchase"
	KindZipf         = "zipf"
)

// Component is one primitive generator inside a workload blend.
// Exactly one of the config pointers is non-nil, matching Kind, and
// its fields are already normalized (defaults applied).
type Component struct {
	Kind   string
	Weight float64 // mix selection weight (1 for single-component specs)

	Seq   *SequentialConfig
	Sten  *Stencil2DConfig
	WS    *WorkingSetConfig
	PC    *PointerChaseConfig
	ZipfC *ZipfReuseConfig
}

// source builds the component's generator.
func (c Component) source() Source {
	switch c.Kind {
	case KindSequential:
		return Sequential(*c.Seq)
	case KindStencil2D:
		return Stencil2D(*c.Sten)
	case KindWorkingSet:
		return WorkingSet(*c.WS)
	case KindPointerChase:
		return PointerChase(*c.PC)
	case KindZipf:
		return ZipfReuse(*c.ZipfC)
	default:
		panic(fmt.Sprintf("trace: component kind %q", c.Kind))
	}
}

// Spec is the full declarative description of a named workload: its
// components and, for multi-component blends, the Mix seed and burst
// length.
type Spec struct {
	Name       string
	Seed       uint64 // Mix selection seed (the workload seed)
	Burst      int    // references per Mix burst (0 for single-component)
	Components []Component
}

// Source materializes the spec into the workload's generator — the
// same construction NewWorkload performs.
func (s Spec) Source() Source {
	if len(s.Components) == 1 {
		return s.Components[0].source()
	}
	parts := make([]MixConfig, len(s.Components))
	for i, c := range s.Components {
		parts[i] = MixConfig{Source: c.source(), Weight: c.Weight}
	}
	return Mix(s.Seed, s.Burst, parts...)
}

// seq, sten, ws, pc wrap a primitive config as a weighted Component
// with defaults applied.
func seq(w float64, cfg SequentialConfig) Component {
	n := cfg.Normalized()
	return Component{Kind: KindSequential, Weight: w, Seq: &n}
}

func sten(w float64, cfg Stencil2DConfig) Component {
	n := cfg.Normalized()
	return Component{Kind: KindStencil2D, Weight: w, Sten: &n}
}

func ws(w float64, cfg WorkingSetConfig) Component {
	n := cfg.Normalized()
	return Component{Kind: KindWorkingSet, Weight: w, WS: &n}
}

func pc(w float64, cfg PointerChaseConfig) Component {
	n := cfg.Normalized()
	return Component{Kind: KindPointerChase, Weight: w, PC: &n}
}

// SpecFor returns the declarative spec of a named workload (the six
// SPEC92-like programs plus "zipf"), seeded deterministically from
// seed. It is the single source of truth NewWorkload builds from.
func SpecFor(name string, seed uint64) (Spec, error) {
	// Address-space layout: keep regions disjoint so blends do not alias.
	const (
		arrayA = 0x0100_0000
		arrayB = 0x0200_0000
		arrayC = 0x0300_0000
		gridA  = 0x0400_0000
		heap   = 0x0500_0000
		pool   = 0x0600_0000
	)
	switch name {
	case Nasa7:
		// Seven vector kernels: dominant unit-stride double-precision
		// sweeps over arrays far larger than the cache, a secondary
		// strided (column) sweep, and a small scalar working set.
		return Spec{Name: name, Seed: seed, Burst: 64, Components: []Component{
			seq(0.55, SequentialConfig{Seed: seed + 1, Base: arrayA, Length: 1 << 21, Stride: 8, ElemSize: 8, WriteFrac: 0.30, GapMean: 2.8}),
			seq(0.20, SequentialConfig{Seed: seed + 2, Base: arrayB, Length: 1 << 21, Stride: 256, ElemSize: 8, WriteFrac: 0.25, GapMean: 3.0}),
			ws(0.25, WorkingSetConfig{Seed: seed + 3, Base: heap, SetBytes: 4 << 10, HeapBytes: 64 << 10, Migrate: 1e-4, ElemSize: 8, WriteFrac: 0.3, GapMean: 3.2}),
		}}, nil
	case Swm256:
		// Shallow-water: 5-point stencils over a 256x256 grid of
		// doubles, with the center cell written back each update.
		return Spec{Name: name, Seed: seed, Burst: 96, Components: []Component{
			sten(0.75, Stencil2DConfig{Seed: seed + 1, Base: gridA, Rows: 256, Cols: 256, ElemSize: 8, Points: 5, WriteBack: true, GapMean: 2.6}),
			seq(0.25, SequentialConfig{Seed: seed + 2, Base: arrayA, Length: 1 << 20, Stride: 8, ElemSize: 8, WriteFrac: 0.35, GapMean: 2.8}),
		}}, nil
	case Wave5:
		// Particle-in-cell: field sweeps (sequential) interleaved with
		// particle gather/scatter (pointer-chase over a big pool).
		return Spec{Name: name, Seed: seed, Burst: 48, Components: []Component{
			seq(0.45, SequentialConfig{Seed: seed + 1, Base: arrayA, Length: 1 << 21, Stride: 8, ElemSize: 8, WriteFrac: 0.30, GapMean: 2.8}),
			pc(0.35, PointerChaseConfig{Seed: seed + 2, Base: pool, Nodes: 32 << 10, NodeSize: 64, Fields: 3, GapMean: 3.0}),
			seq(0.20, SequentialConfig{Seed: seed + 3, Base: arrayB, Length: 1 << 20, Stride: 8, ElemSize: 8, WriteFrac: 0.5, GapMean: 3.0}),
		}}, nil
	case Ear:
		// Cochlea model: cascaded filters reading short coefficient
		// vectors (high temporal locality) and streaming samples.
		return Spec{Name: name, Seed: seed, Burst: 64, Components: []Component{
			ws(0.55, WorkingSetConfig{Seed: seed + 1, Base: heap, SetBytes: 12 << 10, HeapBytes: 128 << 10, Migrate: 5e-5, ElemSize: 4, WriteFrac: 0.30, GapMean: 3.4}),
			seq(0.45, SequentialConfig{Seed: seed + 2, Base: arrayA, Length: 1 << 19, Stride: 4, ElemSize: 4, WriteFrac: 0.35, GapMean: 3.0}),
		}}, nil
	case Doduc:
		// Monte-Carlo: dominated by a drifting scalar working set with
		// little spatial structure and frequent writes.
		return Spec{Name: name, Seed: seed, Burst: 32, Components: []Component{
			ws(0.70, WorkingSetConfig{Seed: seed + 1, Base: heap, SetBytes: 24 << 10, HeapBytes: 512 << 10, Migrate: 2e-4, ElemSize: 8, WriteFrac: 0.35, GapMean: 3.6}),
			pc(0.30, PointerChaseConfig{Seed: seed + 2, Base: pool, Nodes: 8 << 10, NodeSize: 96, Fields: 2, GapMean: 3.2}),
		}}, nil
	case Hydro2D:
		// Navier-Stokes on a grid bigger than swm256's, 9-point stencil.
		return Spec{Name: name, Seed: seed, Burst: 96, Components: []Component{
			sten(0.70, Stencil2DConfig{Seed: seed + 1, Base: gridA, Rows: 402, Cols: 160, ElemSize: 8, Points: 9, WriteBack: true, GapMean: 2.6}),
			seq(0.30, SequentialConfig{Seed: seed + 2, Base: arrayC, Length: 1 << 21, Stride: 8, ElemSize: 8, WriteFrac: 0.4, GapMean: 2.8}),
		}}, nil
	case Zipf:
		z := ZipfReuseConfig{
			Seed: seed, Base: 0x1000_0000, Lines: 65536, Theta: 1.5, WriteFrac: 0.3}.Normalized()
		return Spec{Name: name, Seed: seed, Components: []Component{
			{Kind: KindZipf, Weight: 1, ZipfC: &z},
		}}, nil
	default:
		return Spec{}, fmt.Errorf("trace: unknown program %q (want one of %v)", name, Programs())
	}
}
