package trace

// RNG is a small deterministic pseudo-random number generator
// (xorshift64* by Vigna). It exists so that traces are reproducible
// across runs and platforms without importing math/rand, whose global
// state and version-dependent algorithms would make goldens brittle.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because xorshift requires non-zero state.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with mean
// approximately mean (minimum 1). It is used for inter-reference
// instruction gaps.
func (r *RNG) Geometric(mean float64) uint64 {
	if mean <= 1 {
		return 1
	}
	// Inverse-transform sampling would need math.Log; keep stdlib-light
	// and branch-simple with a Bernoulli loop capped for safety.
	p := 1 / mean
	n := uint64(1)
	for !r.Bool(p) && n < uint64(mean*20) {
		n++
	}
	return n
}
