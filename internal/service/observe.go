// Observability tier 2: the request-info seam behind the wide-event
// access log, the metrics-history series registrations, the SLO
// burn-rate layer, and the /debug/flight, /debug/slow and
// /metrics/history handlers. The always-on middleware half lives in
// service.go (withObs, captureSlow); the live dashboard in dash.go.

package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tradeoff/internal/obs"
)

// reqInfo collects the wide-event access log's per-request dimensions
// as the request moves through the middleware stack: instrument fills
// the endpoint, the endpoint pipeline fills the canonical-key hash and
// memo outcome, and withObs reads everything back at completion. One
// goroutine writes each field before the handler returns, and withObs
// reads only after ServeHTTP returns, so no locking is needed.
type reqInfo struct {
	endpoint string // instrumented route, e.g. "/v1/sweep"
	key      string // canonical-request key hash (fnv64a hex)
	cache    string // response-memo outcome: "hit" or "miss"
}

type reqInfoKeyType struct{}

var reqInfoKey reqInfoKeyType

// withReqInfo threads the request-info collector into the context.
func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey, ri)
}

// reqInfoFrom returns the context's request-info collector, or nil.
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey).(*reqInfo)
	return ri
}

// keyHash condenses a memoization key into the 16-hex-char fnv64a
// digest the access log and exemplars carry: stable across restarts,
// grep-able, and free of request-payload bytes.
func keyHash(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv's Write cannot fail
	var sum [8]byte
	return hex.EncodeToString(h.Sum(sum[:0]))
}

// endpointSeries maps a route onto its history-series prefix:
// "/v1/sweep" → "endpoint_v1_sweep", following the /metrics snake_case
// scheme.
func endpointSeries(route string) string {
	var b strings.Builder
	b.WriteString("endpoint")
	for _, r := range route {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			if !strings.HasSuffix(b.String(), "_") {
				b.WriteByte('_')
			}
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// registerSeries wires every metrics-history series: the Go runtime
// collector, the service-level counters and gauges, the engine
// instruments, and one p50/p99/count/requests/errors group per
// registered endpoint. Runs once in New after the routes (and thus
// the endpoint maps) exist.
func (s *Server) registerSeries() {
	h := s.history
	obs.RegisterRuntimeSeries(h)

	h.Register("requests_total", func() float64 { return float64(s.metrics.requests.Value()) })
	h.Register("errors_total", func() float64 { return float64(s.metrics.errors.Value()) })
	h.Register("in_flight", func() float64 { return float64(s.metrics.inFlight.Value()) })
	h.Register("cache_bytes", func() float64 { return float64(s.cache.Bytes()) })
	h.Register("memo_hit_ratio", func() float64 {
		hits, misses := s.metrics.cacheHits.Value(), s.metrics.cacheMisses.Value()
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})
	h.Register("xval_max_abs_error", func() float64 {
		_, _, samples := s.metrics.xvalSnapshot()
		var max float64
		for _, smp := range samples {
			if smp.MaxAbs > max {
				max = smp.MaxAbs
			}
		}
		return max
	})

	h.RegisterHistogram(s.stats.Eval)
	h.RegisterHistogram(s.stats.QueueWait)
	h.RegisterCounter(s.stats.MemoHit)
	h.RegisterCounter(s.stats.MemoMiss)
	h.RegisterCounter(s.stats.MemoShared)

	// Per-endpoint groups. Routes are fixed at construction, so the
	// duration map is complete by the time this runs; names are
	// computed, which the metricreg analyzer deliberately skips (it
	// checks constant registrations only).
	s.metrics.durationsMu.Lock()
	routes := make([]string, 0, len(s.metrics.durations))
	for name := range s.metrics.durations {
		routes = append(routes, name)
	}
	s.metrics.durationsMu.Unlock()
	for _, route := range routes {
		route := route
		prefix := endpointSeries(route)
		hist := s.metrics.duration(route)
		ep := s.metrics.endpointVars(route)
		h.Register(prefix+"_p50_ns", func() float64 { return float64(hist.Quantile(0.5).Nanoseconds()) })
		h.Register(prefix+"_p99_ns", func() float64 { return float64(hist.Quantile(0.99).Nanoseconds()) })
		h.Register(prefix+"_count", func() float64 { return float64(hist.Count()) })
		h.Register(prefix+"_requests", func() float64 {
			return float64(ep.Get("requests").(*expvar.Int).Value())
		})
		h.Register(prefix+"_errors", func() float64 {
			return float64(ep.Get("errors").(*expvar.Int).Value())
		})
	}
}

// sloWindows are the two burn-rate horizons of the multi-window SRE
// alerting scheme: the 5m window catches fast burns, the 1h window
// slow sustained ones.
var sloWindows = []struct {
	label string
	d     time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// sloStatus is one endpoint objective's live burn-rate state — the
// JSON shape under /metrics "slo" and the source of the
// tradeoffd_slo_* gauges.
type sloStatus struct {
	Endpoint      string  `json:"endpoint"`
	P99TargetNS   int64   `json:"p99_target_ns,omitempty"`
	ErrorBudget   float64 `json:"error_budget,omitempty"`
	LatencyBurn5m float64 `json:"latency_burn_5m"`
	LatencyBurn1h float64 `json:"latency_burn_1h"`
	ErrorBurn5m   float64 `json:"error_burn_5m"`
	ErrorBurn1h   float64 `json:"error_burn_1h"`
	Burning       bool    `json:"burning"`
}

// sloStatuses computes every configured objective's burn rates from
// the history rings at now. Latency burns score the window's worst
// rolling p99 against the target; error burns score the windowed
// error rate (request/error deltas) against the budget. An endpoint
// with too little history burns 0 — absence of evidence is not an
// alert.
func (s *Server) sloStatuses(now time.Time) []sloStatus {
	out := make([]sloStatus, 0, len(s.opts.SLOs))
	for _, slo := range s.opts.SLOs {
		prefix := endpointSeries(slo.Endpoint)
		st := sloStatus{
			Endpoint:    slo.Endpoint,
			P99TargetNS: slo.P99.Nanoseconds(),
			ErrorBudget: slo.ErrRate,
		}
		burns := make([]float64, 0, 4)
		for i, w := range sloWindows {
			since := now.Add(-w.d)
			var latency, errBurn float64
			if slo.P99 > 0 {
				if mx, ok := s.history.Max(prefix+"_p99_ns", since); ok {
					latency = obs.LatencyBurnRate(time.Duration(mx), slo.P99)
				}
			}
			if slo.ErrRate > 0 {
				rf, rl, okR := s.history.Delta(prefix+"_requests", since)
				ef, el, okE := s.history.Delta(prefix+"_errors", since)
				if okR && okE {
					errBurn = obs.ErrorBurnRate(rl.V-rf.V, el.V-ef.V, slo.ErrRate)
				}
			}
			if i == 0 {
				st.LatencyBurn5m, st.ErrorBurn5m = latency, errBurn
			} else {
				st.LatencyBurn1h, st.ErrorBurn1h = latency, errBurn
			}
			burns = append(burns, latency, errBurn)
		}
		for _, b := range burns {
			if b > 1 {
				st.Burning = true
			}
		}
		out = append(out, st)
	}
	return out
}

// sloDoc renders the burn-rate state as the raw JSON value embedded in
// the expvar /metrics document.
func (s *Server) sloDoc(now time.Time) []byte {
	data, err := json.Marshal(s.sloStatuses(now))
	if err != nil {
		return []byte("[]") // sloStatus cannot fail to marshal
	}
	return data
}

// writeSLOProm appends the tradeoffd_slo_* gauge blocks to the
// Prometheus exposition: burn rates labeled by endpoint and window,
// plus each objective's targets and a 0/1 burning flag. Ordering
// follows the configured SLO list, so fixed state renders fixed bytes
// (pinned by a golden test).
func (s *Server) writeSLOProm(buf *bytes.Buffer) {
	sts := s.sloStatuses(time.Now())
	promSLOGauges(buf, sts)
}

// promSLOGauges writes the SLO gauge blocks for the given statuses —
// split from writeSLOProm so the golden test can render fixed
// statuses without a clock.
func promSLOGauges(buf *bytes.Buffer, sts []sloStatus) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	buf.WriteString("# HELP tradeoffd_slo_latency_burn_rate Windowed worst p99 over its SLO target (>1 = out of budget).\n")
	buf.WriteString("# TYPE tradeoffd_slo_latency_burn_rate gauge\n")
	for _, st := range sts {
		if st.P99TargetNS == 0 {
			continue
		}
		fmt.Fprintf(buf, "tradeoffd_slo_latency_burn_rate{endpoint=%q,window=\"5m\"} %s\n", st.Endpoint, f(st.LatencyBurn5m))
		fmt.Fprintf(buf, "tradeoffd_slo_latency_burn_rate{endpoint=%q,window=\"1h\"} %s\n", st.Endpoint, f(st.LatencyBurn1h))
	}
	buf.WriteString("# HELP tradeoffd_slo_error_burn_rate Windowed error rate over the SLO budget (>1 = budget exhausts early).\n")
	buf.WriteString("# TYPE tradeoffd_slo_error_burn_rate gauge\n")
	for _, st := range sts {
		if st.ErrorBudget == 0 {
			continue
		}
		fmt.Fprintf(buf, "tradeoffd_slo_error_burn_rate{endpoint=%q,window=\"5m\"} %s\n", st.Endpoint, f(st.ErrorBurn5m))
		fmt.Fprintf(buf, "tradeoffd_slo_error_burn_rate{endpoint=%q,window=\"1h\"} %s\n", st.Endpoint, f(st.ErrorBurn1h))
	}
	buf.WriteString("# HELP tradeoffd_slo_p99_target_seconds The endpoint's p99 latency objective.\n")
	buf.WriteString("# TYPE tradeoffd_slo_p99_target_seconds gauge\n")
	for _, st := range sts {
		if st.P99TargetNS == 0 {
			continue
		}
		fmt.Fprintf(buf, "tradeoffd_slo_p99_target_seconds{endpoint=%q} %s\n", st.Endpoint, f(float64(st.P99TargetNS)/1e9))
	}
	buf.WriteString("# HELP tradeoffd_slo_error_budget The endpoint's allowed error fraction.\n")
	buf.WriteString("# TYPE tradeoffd_slo_error_budget gauge\n")
	for _, st := range sts {
		if st.ErrorBudget == 0 {
			continue
		}
		fmt.Fprintf(buf, "tradeoffd_slo_error_budget{endpoint=%q} %s\n", st.Endpoint, f(st.ErrorBudget))
	}
	buf.WriteString("# HELP tradeoffd_slo_burning 1 when any burn rate of the endpoint exceeds 1.\n")
	buf.WriteString("# TYPE tradeoffd_slo_burning gauge\n")
	for _, st := range sts {
		v := 0
		if st.Burning {
			v = 1
		}
		fmt.Fprintf(buf, "tradeoffd_slo_burning{endpoint=%q} %d\n", st.Endpoint, v)
	}
}

// RunHistory runs the metrics-history scheduler until ctx is
// cancelled: one snapshot tick immediately (so /metrics/history and
// the dashboard have data from boot), then one per configured
// interval, each followed by the SLO burn check. tradeoffd starts
// this next to RunXVal.
func (s *Server) RunHistory(ctx context.Context) {
	t := time.NewTicker(s.history.Interval())
	defer t.Stop()
	for {
		s.obsTick(time.Now())
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// obsTick runs one observability cycle at now: snapshot every history
// series, then warn (structured, rate-limited by the tick cadence)
// for every objective currently burning.
func (s *Server) obsTick(now time.Time) {
	s.history.Tick(now)
	if len(s.opts.SLOs) == 0 || s.opts.Logger == nil {
		return
	}
	for _, st := range s.sloStatuses(now) {
		if !st.Burning {
			continue
		}
		s.opts.Logger.Warn("slo burning",
			"endpoint", st.Endpoint,
			"latency_burn_5m", fmt.Sprintf("%.2f", st.LatencyBurn5m),
			"latency_burn_1h", fmt.Sprintf("%.2f", st.LatencyBurn1h),
			"error_burn_5m", fmt.Sprintf("%.2f", st.ErrorBurn5m),
			"error_burn_1h", fmt.Sprintf("%.2f", st.ErrorBurn1h),
		)
	}
}

// handleFlight serves GET /debug/flight?last=30s: the flight
// recorder's retained spans from the last window as a Chrome
// trace_event JSON array of balanced B/E pairs (loadable in
// chrome://tracing or Perfetto, checkable by cmd/tracecheck).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.ring == nil {
		httpError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	last := 30 * time.Second
	if q := r.URL.Query().Get("last"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad last %q (want a positive duration like 30s)", q))
			return
		}
		last = d
	}
	w.Header().Set("Content-Type", "application/json")
	// A failed write means the client left mid-dump.
	_ = obs.WriteFlight(w, s.ring.Snapshot(time.Now().Add(-last)), s.epoch)
}

// slowResponse is the GET /debug/slow JSON shape.
type slowResponse struct {
	Captured  int64          `json:"captured"` // total ever captured, incl. evicted
	Kept      int            `json:"kept"`
	Exemplars []obs.Exemplar `json:"exemplars"` // newest first
}

// handleSlow serves GET /debug/slow: the retained tail-based
// exemplars, newest first, each carrying the slow request's full span
// tree and the p99 threshold it tripped.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.exemplars == nil {
		httpError(w, http.StatusNotFound, "exemplar capture disabled")
		return
	}
	ex := s.exemplars.Snapshot()
	if ex == nil {
		ex = []obs.Exemplar{}
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(mustJSON(slowResponse{
		Captured:  s.exemplars.Captured(),
		Kept:      len(ex),
		Exemplars: ex,
	})) // a failed write means the client left
}

// handleHistory serves GET /metrics/history?series=a,b&window=5m: the
// named series' retained samples (all series when the parameter is
// absent) within the window (full retention when absent) as one JSON
// document.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var names []string
	if q := r.URL.Query().Get("series"); q != "" {
		for _, name := range strings.Split(q, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	var since time.Time // zero = full retention
	if q := r.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad window %q (want a positive duration like 5m)", q))
			return
		}
		since = time.Now().Add(-d)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.history.WriteJSON(w, names, since) // a failed write means the client left
}
