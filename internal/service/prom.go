package service

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"tradeoff/internal/obs"
)

// promQuantiles are the summary quantiles every duration histogram
// exposes — the p50/p95/p99 the paper-style accounting wants for its
// own serving path.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// servePrometheus renders the same metric state as the expvar JSON
// document in Prometheus text exposition format (version 0.0.4):
// scalar counters and gauges, per-endpoint labeled counters, and the
// duration histograms as summaries with p50/p95/p99. Output ordering
// is deterministic (endpoints sorted), so a fixed metric state renders
// fixed bytes — pinned by a golden test.
func (m *metrics) servePrometheus(w http.ResponseWriter) {
	var buf bytes.Buffer

	promCounter(&buf, "tradeoffd_requests_total", "Requests accepted across all endpoints.", m.requests.Value())
	promCounter(&buf, "tradeoffd_errors_total", "Responses with status >= 400.", m.errors.Value())
	promCounter(&buf, "tradeoffd_cache_hits", "Response-memo hits (cache or shared flight).", m.cacheHits.Value())
	promCounter(&buf, "tradeoffd_cache_misses", "Response-memo misses.", m.cacheMisses.Value())
	var cacheBytes int64
	if m.cacheBytes != nil {
		cacheBytes = m.cacheBytes()
	}
	promGauge(&buf, "tradeoffd_cache_bytes", "Bytes held by the response memo.", cacheBytes)
	promGauge(&buf, "tradeoffd_in_flight", "Requests currently being served.", m.inFlight.Value())

	// Continuous cross-validation: pass counter plus the latest
	// per-workload hit-ratio error of the analytic model against the
	// exact MRC tier, next to the committed epsilon budget.
	passes, xvalNames, xvalSamples := m.xvalSnapshot()
	promCounter(&buf, "tradeoffd_xval_passes_total", "Cross-validation passes completed by the model-vs-exact loop.", passes)
	for _, g := range []struct {
		name, help string
		get        func(xvalSample) float64
	}{
		{"tradeoffd_xval_max_abs_error", "Largest |model - exact| hit-ratio error of the workload's latest validation pass.", func(s xvalSample) float64 { return s.MaxAbs }},
		{"tradeoffd_xval_mean_abs_error", "Mean |model - exact| hit-ratio error of the workload's latest validation pass.", func(s xvalSample) float64 { return s.MeanAbs }},
		{"tradeoffd_xval_error_budget", "Committed hit-ratio error budget for the workload (model.ErrorBound).", func(s xvalSample) float64 { return s.Budget }},
	} {
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for i, name := range xvalNames {
			fmt.Fprintf(&buf, "%s{workload=%q} %s\n", g.name, name,
				strconv.FormatFloat(g.get(xvalSamples[i]), 'g', -1, 64))
		}
	}

	// Per-endpoint counters, one labeled series per endpoint in sorted
	// order (expvar.Map.Do iterates sorted keys).
	for _, counter := range []string{"requests", "errors", "evaluations"} {
		fmt.Fprintf(&buf, "# TYPE tradeoffd_endpoint_%s counter\n", counter)
		m.endpoints.Do(func(kv expvar.KeyValue) {
			v := kv.Value.(*expvar.Map).Get(counter).(*expvar.Int).Value()
			fmt.Fprintf(&buf, "tradeoffd_endpoint_%s{endpoint=%q} %d\n", counter, kv.Key, v)
		})
	}

	// Request durations: one summary per endpoint.
	m.durationsMu.Lock()
	names := make([]string, 0, len(m.durations))
	for name := range m.durations {
		names = append(names, name)
	}
	hists := make([]*obs.Histogram, len(names))
	sort.Strings(names)
	for i, name := range names {
		hists[i] = m.durations[name]
	}
	m.durationsMu.Unlock()
	buf.WriteString("# HELP tradeoffd_request_duration_seconds Request duration by endpoint.\n")
	buf.WriteString("# TYPE tradeoffd_request_duration_seconds summary\n")
	for i, name := range names {
		promSummarySeries(&buf, "tradeoffd_request_duration_seconds", fmt.Sprintf("endpoint=%q", name), hists[i])
	}

	// Engine-level instruments: where parallel evaluation time goes.
	if st := m.engine; st != nil {
		promHistogramSummary(&buf, st.Eval)
		promHistogramSummary(&buf, st.QueueWait)
		for _, c := range []*obs.Counter{st.MemoHit, st.MemoMiss, st.MemoShared} {
			promCounter(&buf, "tradeoffd_"+c.Name(), "Engine memoization outcome count.", c.Value())
		}
	}

	// SLO burn-rate gauges — appended after every pre-existing block
	// and only when objectives are configured, so the default document
	// stays byte-identical to a server without an SLO layer.
	if m.sloProm != nil {
		m.sloProm(&buf)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes()) // a failed write means the client left
}

// promCounter writes one unlabeled counter with its TYPE header.
func promCounter(buf *bytes.Buffer, name, help string, v int64) {
	fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// promGauge writes one unlabeled gauge with its TYPE header.
func promGauge(buf *bytes.Buffer, name, help string, v int64) {
	fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// promHistogramSummary writes an unlabeled duration histogram as a
// full summary block named after the histogram.
func promHistogramSummary(buf *bytes.Buffer, h *obs.Histogram) {
	name := "tradeoffd_" + h.Name() + "_seconds"
	fmt.Fprintf(buf, "# TYPE %s summary\n", name)
	promSummarySeries(buf, name, "", h)
}

// promSummarySeries writes one summary series (quantiles, _sum,
// _count) for h, labeled with labels when non-empty.
func promSummarySeries(buf *bytes.Buffer, name, labels string, h *obs.Histogram) {
	for _, q := range promQuantiles {
		sep := ""
		if labels != "" {
			sep = ","
		}
		fmt.Fprintf(buf, "%s{%s%squantile=%q} %s\n",
			name, labels, sep, strconv.FormatFloat(q, 'g', -1, 64), promSeconds(h.Quantile(q)))
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, labels, promSeconds(h.Sum()))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, labels, h.Count())
}

// promSeconds formats a duration as Prometheus seconds.
func promSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
