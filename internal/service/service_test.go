package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"tradeoff/internal/core"
	"tradeoff/internal/model"
	"tradeoff/internal/simjob"
	"tradeoff/internal/sweep"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, data
}

func TestTradeoffEndpointMatchesCore(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/tradeoff",
		`{"feature":"bus","hit_ratio":0.95,"alpha":0.5,"l":32,"d":4,"beta_m":10}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got TradeoffResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	want, err := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeatureDoubleBus}, 0.95, 0.5, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.DeltaHR-want.DeltaHR) > 1e-12 || math.Abs(got.MissCountRatio-want.R) > 1e-12 {
		t.Fatalf("endpoint ΔHR=%v r=%v, core ΔHR=%v r=%v", got.DeltaHR, got.MissCountRatio, want.DeltaHR, want.R)
	}
	if !got.Valid || got.Feature != want.Feature.String() {
		t.Fatalf("valid=%v feature=%q", got.Valid, got.Feature)
	}
}

func TestTradeoffDefaultsMirrorCLI(t *testing.T) {
	// An empty body (all defaults) must price like the CLI's default
	// flags: -hr 0.95 -alpha 0.5 -l 32 -d 4 -beta 10.
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/tradeoff", `{"feature":"wbuf"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got TradeoffResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, _ := core.FeatureTradeoff(core.FeatureSpec{Feature: core.FeatureWriteBuffers}, 0.95, 0.5, 32, 4, 10)
	if math.Abs(got.DeltaHR-want.DeltaHR) > 1e-12 {
		t.Fatalf("defaulted ΔHR = %v, want %v", got.DeltaHR, want.DeltaHR)
	}
}

func TestTradeoffPipeExtras(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/tradeoff", `{"feature":"pipe","q":2,"l":32,"d":4,"beta_m":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got TradeoffResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if want := core.BetaP(8, 2, 32, 4); got.BetaP != want {
		t.Fatalf("beta_p = %v, want %v", got.BetaP, want)
	}
	if want, _ := core.PipelineCrossover(2, 32, 4); math.Abs(got.CrossoverBetaM-want) > 1e-12 {
		t.Fatalf("crossover = %v, want %v", got.CrossoverBetaM, want)
	}
	// L = 2D: the crossover is +Inf and must be omitted, not break JSON.
	resp, body = post(t, ts.URL+"/v1/tradeoff", `{"feature":"pipe","l":8,"d":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("L=2D status %d: %s", resp.StatusCode, body)
	}
	got = TradeoffResponse{}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.CrossoverBetaM != 0 {
		t.Fatalf("L=2D crossover = %v, want omitted", got.CrossoverBetaM)
	}
}

func TestTradeoffProfileExecTime(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/tradeoff",
		`{"feature":"bus","profile":{"e":1000000,"r":64000,"w":300}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got TradeoffResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Exec == nil {
		t.Fatal("no exec block despite profile")
	}
	p := core.Params{E: 1e6, R: 64000, W: 300, Alpha: 0.5, D: 4, L: 32, BetaM: 10}.WithFullStall()
	if want := core.ExecutionTime(p); math.Abs(got.Exec.ExecutionCycles-want) > 1e-6 {
		t.Fatalf("execution_cycles = %v, want %v", got.Exec.ExecutionCycles, want)
	}
	if want := p.Misses(); got.Exec.Misses != want {
		t.Fatalf("misses = %v, want %v", got.Exec.Misses, want)
	}
}

func TestTradeoffRejects(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`{`, http.StatusBadRequest},
		{`{"feature":"warp-drive"}`, http.StatusUnprocessableEntity},
		{`{}`, http.StatusUnprocessableEntity},                                   // missing feature
		{`{"feature":"bus","hit_ratio":1.5}`, http.StatusUnprocessableEntity},    // HR out of (0,1)
		{`{"feature":"stall","phi":99}`, http.StatusUnprocessableEntity},         // φ > L/D
		{`{"feature":"bus","l":4,"d":4}`, http.StatusUnprocessableEntity},        // L < 2D
		{`{"feature":"bus","profile":{"e":-1}}`, http.StatusUnprocessableEntity}, // bad profile
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/v1/tradeoff", c.body)
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.body, resp.StatusCode, c.code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tradeoff: status %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpointJSONAndCSV(t *testing.T) {
	s, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/sweep", sweep.ExampleConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SweepResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Count != 30 || len(got.Designs) != 30 {
		t.Fatalf("count = %d (%d designs), want 30", got.Count, len(got.Designs))
	}
	if got.ParetoCount == 0 || got.ParetoCount == got.Count {
		t.Fatalf("pareto_count %d of %d implausible", got.ParetoCount, got.Count)
	}

	// CSV format matches the engine's (and hence the CLI's) golden bytes.
	resp, body = post(t, ts.URL+"/v1/sweep?format=csv", sweep.ExampleConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv content type %q", ct)
	}
	golden, err := os.ReadFile("../sweep/testdata/example_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(golden) {
		t.Fatalf("service CSV differs from the serial golden output:\n%s", body)
	}
	_ = s
}

// TestModeModelEndToEnd drives the mode knob through both HTTP
// endpoints: mode "model" re-prices an exact hit source from the
// analytic tier, the designs/points carry the "an:<workload>" stamp,
// and the responses surface the committed error bound.
func TestModeModelEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	sweepCfg := `{"cache_kb":[8,16],"line_bytes":[32],"bus_bits":[32],
		"latency_ns":360,"transfer_ns":60,"cpu_ns":30,
		"hit_source":"mrc:nasa7","mode":"model"}`
	resp, body := post(t, ts.URL+"/v1/sweep", sweepCfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if want := model.ErrorBound("nasa7"); sr.ErrorBound != want {
		t.Fatalf("sweep error_bound = %v, want %v", sr.ErrorBound, want)
	}
	for _, d := range sr.Designs {
		if d.HitSource != "an:nasa7" {
			t.Fatalf("design hit_source = %q, want an:nasa7", d.HitSource)
		}
	}

	// The exact path must not advertise a bound.
	resp, body = post(t, ts.URL+"/v1/sweep", strings.Replace(sweepCfg, `"model"`, `"exact"`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact sweep status %d: %s", resp.StatusCode, body)
	}
	var exact SweepResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.ErrorBound != 0 {
		t.Fatalf("exact sweep error_bound = %v, want omitted", exact.ErrorBound)
	}

	stallCfg := `{"programs":["nasa7","ear"],"refs":2000,"beta_m":[4],"mode":"model"}`
	resp, body = post(t, ts.URL+"/v1/stall", stallCfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stall status %d: %s", resp.StatusCode, body)
	}
	var st StallResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for _, p := range st.Points {
		if p.Source != "an:"+p.Program {
			t.Fatalf("point source = %q, want an:%s", p.Source, p.Program)
		}
	}
	for _, w := range []string{"nasa7", "ear"} {
		if st.ErrorBounds[w] != model.ErrorBound(w) {
			t.Fatalf("stall error_bounds[%s] = %v, want %v", w, st.ErrorBounds[w], model.ErrorBound(w))
		}
	}
}

func TestSweepMemoized(t *testing.T) {
	s, ts := newTestServer(t)
	before := s.CacheHits()
	resp, _ := post(t, ts.URL+"/v1/sweep", sweep.ExampleConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	// Same space, different field order and whitespace: must hit.
	reordered := `{"cpu_ns":30,"transfer_ns":60,"latency_ns":360,
		"bus_bits":[32,64],"line_bytes":[16,32,64],"cache_kb":[4,8,16,32,64],
		"assoc":2,"hit_source":"model"}`
	resp2, body2 := post(t, ts.URL+"/v1/sweep", reordered)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if s.CacheHits() != before+1 {
		t.Fatalf("cache hits %d, want %d", s.CacheHits(), before+1)
	}
	// The metrics endpoint reports the same counter.
	var m struct {
		CacheHits int64 `json:"cache_hits"`
	}
	respM, bodyM := get(t, ts.URL+"/metrics")
	if respM.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", respM.StatusCode)
	}
	if err := json.Unmarshal(bodyM, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, bodyM)
	}
	if m.CacheHits != s.CacheHits() {
		t.Fatalf("metrics cache_hits = %d, want %d", m.CacheHits, s.CacheHits())
	}
}

func TestSweepRejects(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		url, body string
		code      int
	}{
		{"/v1/sweep", `{`, http.StatusBadRequest},
		{"/v1/sweep", `{"cache_kb":[8],"line_bytes":[32],"bus_bits":[32],"latency_ns":0,"transfer_ns":1,"cpu_ns":1}`, http.StatusBadRequest},
		{"/v1/sweep?format=xml", sweep.ExampleConfig, http.StatusBadRequest},
		// Over the default service limits: a 1 GiB simulated cache.
		{"/v1/sweep", `{"cache_kb":[1048576],"line_bytes":[32],"bus_bits":[32],"latency_ns":360,"transfer_ns":60,"cpu_ns":30,"hit_source":"sim:zipf"}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+c.url, c.body)
		if resp.StatusCode != c.code {
			t.Errorf("%s %s: status %d, want %d (%s)", c.url, c.body, resp.StatusCode, c.code, body)
		}
	}
}

func TestSweepClientDisconnectCancels(t *testing.T) {
	// Drive the handler directly with an already-cancelled request
	// context: the sweep pool must abort and report 499, not 200.
	s := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(sweep.ExampleConfig)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("cancelled sweep status %d, want %d", rec.Code, statusClientClosedRequest)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var data []byte
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestMetricsCountersAdvance(t *testing.T) {
	s, ts := newTestServer(t)
	post(t, ts.URL+"/v1/tradeoff", `{"feature":"bus"}`)
	post(t, ts.URL+"/v1/tradeoff", `{"feature":"nope"}`)
	var m struct {
		Requests  int64 `json:"requests_total"`
		Errors    int64 `json:"errors_total"`
		InFlight  int64 `json:"in_flight"`
		Endpoints map[string]struct {
			Requests     int64 `json:"requests"`
			Errors       int64 `json:"errors"`
			LatencyTotal int64 `json:"latency_us_total"`
		} `json:"endpoints"`
	}
	_, body := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.Requests < 2 || m.Errors < 1 || m.InFlight != 0 {
		t.Fatalf("requests=%d errors=%d in_flight=%d", m.Requests, m.Errors, m.InFlight)
	}
	ep, ok := m.Endpoints["/v1/tradeoff"]
	if !ok || ep.Requests != 2 || ep.Errors != 1 {
		t.Fatalf("endpoint counters: %+v (ok=%v)", ep, ok)
	}
	_ = s
}

// TestCacheByteBound checks the response memo is bounded by bytes, not
// just entries, and that the /metrics document exposes the live
// cache_bytes gauge.
func TestCacheByteBound(t *testing.T) {
	// A byte budget small enough that the (~1.3 KB) sweep CSV golden
	// cannot be cached: the response must still be served, twice, with
	// no hit and without the gauge exceeding the bound.
	s := New(Options{CacheBytes: 512})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts.URL+"/v1/sweep?format=csv", sweep.ExampleConfig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("request %d: X-Cache = %q, want miss (response over the byte budget)", i, got)
		}
	}
	if got := s.cache.Bytes(); got > 512 {
		t.Fatalf("cache bytes = %d exceeds the 512-byte bound", got)
	}

	// The small /v1/tradeoff response fits and is cached; the gauge and
	// the /metrics document both report its footprint.
	if resp, _ := post(t, ts.URL+"/v1/tradeoff", `{"feature":"bus"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("tradeoff status %d", resp.StatusCode)
	}
	if got := s.cache.Bytes(); got <= 0 || got > 512 {
		t.Fatalf("cache bytes = %d, want in (0, 512]", got)
	}
	var m struct {
		CacheBytes int64 `json:"cache_bytes"`
	}
	_, body := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if m.CacheBytes != s.cache.Bytes() {
		t.Fatalf("metrics cache_bytes = %d, want %d", m.CacheBytes, s.cache.Bytes())
	}
}

// TestSweepSingleflight is the dedup acceptance test: N concurrent
// identical /v1/sweep requests must share exactly one engine
// evaluation — the first runs, the rest join its flight (or hit the
// cache if they arrive after it lands), never re-run the sweep.
func TestSweepSingleflight(t *testing.T) {
	s, ts := newTestServer(t)
	// A simulation-backed sweep takes long enough that the requests
	// genuinely overlap.
	cfg := `{"cache_kb":[4,8],"line_bytes":[32],"bus_bits":[32],
		"latency_ns":360,"transfer_ns":60,"cpu_ns":30,
		"hit_source":"sim:zipf","sim_refs":100000}`
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/sweep", cfg)
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d returned different bytes than request 0", i)
		}
	}
	if got := s.metrics.evaluations("/v1/sweep").Value(); got != 1 {
		t.Fatalf("%d concurrent identical sweeps ran %d evaluations, want exactly 1", n, got)
	}
	if hits := s.CacheHits(); hits != n-1 {
		t.Fatalf("cache hits = %d, want %d (every follower shares the one evaluation)", hits, n-1)
	}
}

// stallTestGrid is a small /v1/stall payload: 1 program × 2 features ×
// 2 βm = 4 points.
const stallTestGrid = `{
  "programs":   ["nasa7"],
  "refs":       4000,
  "features":   ["FS", "BNL3"],
  "beta_m":     [4, 10]
}`

func TestStallEndpointMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/stall", stallTestGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got StallResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if got.Count != 4 || len(got.Points) != 4 {
		t.Fatalf("count = %d, points = %d, want 4", got.Count, len(got.Points))
	}
	// The response must match what the engine measures directly, in
	// enumeration order.
	grid, err := simjob.ParseGrid([]byte(stallTestGrid))
	if err != nil {
		t.Fatal(err)
	}
	want, err := simjob.NewRunner().RunGrid(context.Background(), grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Points[i] != want[i] {
			t.Fatalf("point %d differs from direct engine run:\ngot  %+v\nwant %+v", i, got.Points[i], want[i])
		}
	}
	// FS pins φ = L/D exactly; a violation means the endpoint wired the
	// wrong decomposition through.
	for _, p := range got.Points {
		if p.Feature == "FS" && p.Result.PhiFraction != 1 {
			t.Fatalf("FS point measured φ fraction %v, want exactly 1", p.Result.PhiFraction)
		}
	}
}

func TestStallCSV(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/stall?format=csv", stallTestGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/csv") {
		t.Fatalf("content type %q, want text/csv", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 5 { // header + 4 points
		t.Fatalf("%d CSV lines, want 5:\n%s", len(lines), body)
	}
	if !strings.HasPrefix(lines[0], "program,feature,") || !strings.Contains(lines[0], ",bus_wait,") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
}

func TestStallMemoized(t *testing.T) {
	s, ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/stall", stallTestGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	before := s.CacheHits()
	// Same grid, different field order, whitespace and spelled-out
	// defaults: must hit.
	reordered := `{"beta_m":[4,10],"features":["FS","BNL3"],
		"refs":4000,"programs":["nasa7"],"seed":1994,"assoc":2,"write_miss":"allocate"}`
	resp2, body2 := post(t, ts.URL+"/v1/stall", reordered)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if s.CacheHits() != before+1 {
		t.Fatalf("cache hits %d, want %d", s.CacheHits(), before+1)
	}
}

func TestStallRejects(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"programs":["no-such"]}`, http.StatusBadRequest},
		{`{"features":["XX"]}`, http.StatusBadRequest},
		{`{"refs":999999999}`, http.StatusUnprocessableEntity},
		{`{"cache_kb":[1048576]}`, http.StatusUnprocessableEntity},
	} {
		resp, body := post(t, ts.URL+"/v1/stall", tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.status, body)
		}
	}
	resp, _ := get(t, ts.URL+"/v1/stall")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

func TestStallClientDisconnectCancels(t *testing.T) {
	// Drive the handler directly with an already-cancelled request
	// context: the replay pool must abort and report 499, not 200.
	s := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/stall", strings.NewReader(stallTestGrid)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("cancelled stall run status %d, want %d", rec.Code, statusClientClosedRequest)
	}
}

// TestOptimizeEndpoint drives POST /v1/optimize end to end: JSON and
// CSV shapes, response memoization on the canonical config, the
// payload limits, and the 400/422 error split.
func TestOptimizeEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	cfg := `{"cache_kb":[4,8],"line_bytes":[16,32],"bus_bits":[32,64],
		"latency_ns":360,"transfer_ns":60,"cpu_ns":30,"hit_source":"model",
		"levels":[{"cache_kb":[32,64],"latency_ns":90},{"cache_kb":[256],"latency_ns":180}],
		"area_budget":2e7}`
	resp, body := post(t, ts.URL+"/v1/optimize", cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got OptimizeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Feasible != len(got.Designs) || got.Total < got.Feasible || got.ParetoCount == 0 {
		t.Fatalf("implausible optimize response: total=%d feasible=%d pareto=%d designs=%d",
			got.Total, got.Feasible, got.ParetoCount, len(got.Designs))
	}
	three := false
	for _, d := range got.Designs {
		if len(d.Levels) == 2 {
			three = true
		}
		if d.AreaRBE > 2e7 {
			t.Fatalf("design over the area budget: %+v", d)
		}
	}
	if !three {
		t.Fatal("no three-level design in the frontier")
	}

	// A repeated (whitespace-shuffled) request hits the response memo.
	hits := s.CacheHits()
	resp, _ = post(t, ts.URL+"/v1/optimize", strings.ReplaceAll(cfg, "\n\t\t", " "))
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat not served from cache: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if s.CacheHits() != hits+1 {
		t.Fatalf("cache hits %d, want %d", s.CacheHits(), hits+1)
	}

	// CSV carries the optimize header.
	resp, body = post(t, ts.URL+"/v1/optimize?format=csv", cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "cache_kb,line_bytes,bus_bits,levels,") {
		t.Fatalf("csv header: %q", strings.SplitN(string(body), "\n", 2)[0])
	}

	// Missing budget: 400 from decode-time validation.
	resp, _ = post(t, ts.URL+"/v1/optimize", strings.Replace(cfg, `"area_budget":2e7`, `"area_budget":0`, 1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero budget: status %d, want 400", resp.StatusCode)
	}

	// The limits stage sums points across depths: this space is 40.
	tight := New(Options{Limits: sweep.Limits{MaxPoints: 39, MaxCacheKB: 1 << 20, MaxSimRefs: 1 << 20}})
	tts := httptest.NewServer(tight.Handler())
	defer tts.Close()
	resp, body = post(t, tts.URL+"/v1/optimize", cfg)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-limit optimize: status %d (%s), want 422", resp.StatusCode, body)
	}
}

// TestOptimizeEndpointSimSource routes a measured hierarchy search
// through the server's shared simjob runner: the trace must be
// materialized once however many designs replay it.
func TestOptimizeEndpointSimSource(t *testing.T) {
	s, ts := newTestServer(t)
	cfg := `{"cache_kb":[4,8],"line_bytes":[32],"bus_bits":[64],
		"latency_ns":360,"transfer_ns":60,"cpu_ns":30,
		"hit_source":"sim:ear","sim_refs":20000,
		"levels":[{"cache_kb":[64],"latency_ns":90}],
		"area_budget":1e8}`
	resp, body := post(t, ts.URL+"/v1/optimize", cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got OptimizeResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 4 {
		t.Fatalf("total = %d, want 4 (2 flat + 2 two-level)", got.Total)
	}
	if n := s.runner.Traces().Generated(); n != 1 {
		t.Fatalf("measured search materialized %d traces, want 1 shared", n)
	}
}
