package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tradeoff/internal/obs"
)

// obsBase is the fixed clock the deterministic observability tests
// tick with.
var obsBase = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// TestHistoryEndpointGolden pins the /metrics/history JSON bytes for
// a fixed, hand-ticked history state. Only deterministic series are
// requested (the runtime collector's values vary per process).
// Regenerate with -update-golden.
func TestHistoryEndpointGolden(t *testing.T) {
	s := New(Options{HistoryInterval: 10 * time.Second, HistoryWindow: time.Minute})
	s.metrics.requests.Add(5)
	s.metrics.errors.Add(1)
	s.history.Tick(obsBase)
	s.metrics.requests.Add(4)
	s.metrics.errors.Add(1)
	s.history.Tick(obsBase.Add(10 * time.Second))

	rec := httptest.NewRecorder()
	s.handleHistory(rec, httptest.NewRequest(http.MethodGet,
		"/metrics/history?series=requests_total,errors_total,in_flight", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.Bytes()
	if !json.Valid(body) {
		t.Fatalf("invalid JSON:\n%s", body)
	}

	path := filepath.Join("testdata", "history_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update-golden?): %v", err)
	}
	if string(body) != string(want) {
		t.Fatalf("history JSON differs from golden\ngot:\n%s\nwant:\n%s", body, want)
	}
}

func TestHistoryEndpointValidation(t *testing.T) {
	s := New(Options{})
	rec := httptest.NewRecorder()
	s.handleHistory(rec, httptest.NewRequest(http.MethodGet, "/metrics/history?window=banana", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad window: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.handleHistory(rec, httptest.NewRequest(http.MethodPost, "/metrics/history", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", rec.Code)
	}
}

// TestSLOPrometheusGolden pins the tradeoffd_slo_* gauge bytes for a
// fixed burn-rate state. Regenerate with -update-golden.
func TestSLOPrometheusGolden(t *testing.T) {
	sts := []sloStatus{
		{
			Endpoint:      "/v1/sweep",
			P99TargetNS:   (250 * time.Millisecond).Nanoseconds(),
			ErrorBudget:   0.01,
			LatencyBurn5m: 2.5, LatencyBurn1h: 1.25,
			ErrorBurn5m: 0.5, ErrorBurn1h: 0.25,
			Burning: true,
		},
		{
			Endpoint:      "/v1/stall",
			P99TargetNS:   (2 * time.Second).Nanoseconds(),
			LatencyBurn5m: 0.1, LatencyBurn1h: 0.2,
		},
	}
	var buf bytes.Buffer
	promSLOGauges(&buf, sts)
	body := buf.Bytes()

	path := filepath.Join("testdata", "slo_golden.prom")
	if *updateGolden {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update-golden?): %v", err)
	}
	if string(body) != string(want) {
		t.Fatalf("SLO exposition differs from golden\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestSLOLayerLive drives the SLO layer end to end on hand-ticked
// history: an endpoint violating its latency target and error budget
// must report burning on both /metrics formats, while a server
// without SLOs keeps both documents free of any slo key (the
// byte-identity guarantee the Prometheus golden also pins).
func TestSLOLayerLive(t *testing.T) {
	slos, err := obs.ParseSLOs("tradeoff:p99<1ms,err<1%")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{SLOs: slos, HistoryInterval: 10 * time.Second, HistoryWindow: time.Hour})
	// 100 requests, 10 errors (10× the 1% budget), p99 ~16ms (16× the
	// 1ms target) on /v1/tradeoff.
	ep := s.metrics.endpointVars("/v1/tradeoff")
	h := s.metrics.duration("/v1/tradeoff")
	s.history.Tick(obsBase)
	for i := 0; i < 100; i++ {
		h.Observe(16 * time.Millisecond)
	}
	ep.Get("requests").(*expvar.Int).Add(100)
	ep.Get("errors").(*expvar.Int).Add(10)
	s.history.Tick(obsBase.Add(10 * time.Second))
	s.history.Tick(obsBase.Add(20 * time.Second))

	now := obsBase.Add(20 * time.Second)
	sts := s.sloStatuses(now)
	if len(sts) != 1 || sts[0].Endpoint != "/v1/tradeoff" {
		t.Fatalf("statuses = %+v", sts)
	}
	st := sts[0]
	if !st.Burning || st.LatencyBurn5m <= 1 || st.ErrorBurn5m <= 1 {
		t.Fatalf("burning state not detected: %+v", st)
	}
	// 10% errors against a 1% budget burns at 10×.
	if st.ErrorBurn5m < 9.9 || st.ErrorBurn5m > 10.1 {
		t.Fatalf("error burn = %v, want ~10", st.ErrorBurn5m)
	}

	rec := httptest.NewRecorder()
	s.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	prom := rec.Body.String()
	for _, want := range []string{
		`tradeoffd_slo_latency_burn_rate{endpoint="/v1/tradeoff",window="5m"} `,
		`tradeoffd_slo_error_budget{endpoint="/v1/tradeoff"} 0.01`,
		`tradeoffd_slo_burning{endpoint="/v1/tradeoff"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition lacks %q:\n%s", want, prom)
		}
	}

	rec = httptest.NewRecorder()
	s.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var doc struct {
		SLO []sloStatus `json:"slo"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.SLO) != 1 || !doc.SLO[0].Burning {
		t.Fatalf("expvar slo doc = %+v", doc.SLO)
	}

	// No SLOs → no slo key in either document.
	plain := New(Options{})
	rec = httptest.NewRecorder()
	plain.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec.Body.String(), `"slo"`) {
		t.Fatalf("plain server leaks slo key:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	plain.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	if strings.Contains(rec.Body.String(), "tradeoffd_slo_") {
		t.Fatalf("plain server leaks slo gauges:\n%s", rec.Body.String())
	}
}

// TestFlightEndpoint drives real traffic through the middleware and
// checks the dump is a balanced, per-lane-monotonic B/E trace_event
// array holding the request spans.
func TestFlightEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/v1/tradeoff", `{"feature":"bus"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := get(t, ts.URL+"/debug/flight?last=1m")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight status %d: %s", resp.StatusCode, body)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("dump is not a JSON array: %v\n%s", err, body)
	}
	requests := 0
	lastTS := map[int]float64{}
	stacks := map[int][]string{}
	for i, ev := range events {
		if prev, ok := lastTS[ev.TID]; ok && ev.TS < prev {
			t.Fatalf("event %d: lane %d not monotonic", i, ev.TID)
		}
		lastTS[ev.TID] = ev.TS
		switch ev.Ph {
		case "B":
			stacks[ev.TID] = append(stacks[ev.TID], ev.Name)
			if ev.Name == "request" {
				requests++
				if _, ok := ev.Args["request_id"]; !ok {
					t.Errorf("request B event lacks request_id arg: %v", ev.Args)
				}
			}
		case "E":
			st := stacks[ev.TID]
			if len(st) == 0 || st[len(st)-1] != ev.Name {
				t.Fatalf("event %d: unbalanced E %q on lane %d (stack %v)", i, ev.Name, ev.TID, st)
			}
			stacks[ev.TID] = st[:len(st)-1]
		default:
			t.Fatalf("event %d: phase %q", i, ev.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			t.Fatalf("lane %d left open: %v", tid, st)
		}
	}
	if requests != 3 {
		t.Fatalf("dump holds %d request spans, want 3", requests)
	}

	if resp, _ := get(t, ts.URL+"/debug/flight?last=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad last: status %d, want 400", resp.StatusCode)
	}

	off := httptest.NewServer(New(Options{FlightSpans: -1}).Handler())
	t.Cleanup(off.Close)
	if resp, _ := get(t, off.URL+"/debug/flight"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled recorder: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, off.URL+"/debug/slow"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled exemplars: status %d, want 404", resp.StatusCode)
	}
}

// TestSlowExemplarCapture makes the tail threshold trivially low so a
// warm endpoint's next request pins an exemplar, then checks
// /debug/slow serves it with its span tree.
func TestSlowExemplarCapture(t *testing.T) {
	s := New(Options{SlowFactor: 1e-9})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// Warm past slowMinSamples so the rolling p99 is trusted, then one
	// more request over the (absurdly low) threshold.
	for i := 0; i < slowMinSamples+1; i++ {
		resp, _ := get(t, ts.URL+"/healthz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
	}
	if s.exemplars.Captured() == 0 {
		t.Fatal("no exemplar captured past the warmup gate")
	}
	resp, body := get(t, ts.URL+"/debug/slow")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow status %d: %s", resp.StatusCode, body)
	}
	var doc slowResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("slow JSON: %v\n%s", err, body)
	}
	if doc.Captured == 0 || doc.Kept == 0 || len(doc.Exemplars) == 0 {
		t.Fatalf("empty slow doc: %+v", doc)
	}
	ex := doc.Exemplars[0]
	if ex.Endpoint != "/healthz" {
		t.Fatalf("exemplar endpoint %q, want /healthz", ex.Endpoint)
	}
	if ex.DurationUS < 0 || ex.ThresholdUS < 0 {
		t.Fatalf("negative durations: %+v", ex)
	}
	var spans []map[string]any
	if err := json.Unmarshal(ex.Spans, &spans); err != nil || len(spans) == 0 {
		t.Fatalf("exemplar spans invalid (err %v): %s", err, ex.Spans)
	}
}

// TestWideEventLog pins the one-line-per-request access log: every
// dimension known at completion on a single structured line.
func TestWideEventLog(t *testing.T) {
	var buf syncBuffer
	s := New(Options{Logger: obs.NewLogger(&buf, obs.LevelInfo)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, _ := post(t, ts.URL+"/v1/tradeoff", `{"feature":"bus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	line := ""
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.Contains(l, "msg=request") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no access-log line:\n%s", buf.String())
	}
	for _, kv := range []string{
		"method=POST",
		"path=/v1/tradeoff",
		"status=200",
		"duration_us=",
		"bytes=",
		"request_id=",
		"endpoint=/v1/tradeoff",
		"cache=miss",
		"key=",
	} {
		if !strings.Contains(line, kv) {
			t.Errorf("access log line lacks %q:\n%s", kv, line)
		}
	}

	// The key is a 16-hex-char hash, not raw payload bytes.
	fields := strings.Fields(line)
	for _, f := range fields {
		if v, ok := strings.CutPrefix(f, "key="); ok {
			if len(v) != 16 {
				t.Fatalf("key hash %q, want 16 hex chars", v)
			}
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDashServesHTMLAndSSE covers both halves of /debug/dash: the
// self-contained page and the SSE stream, which must deliver a tick
// fanned out by the history scheduler.
func TestDashServesHTMLAndSSE(t *testing.T) {
	s, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/debug/dash")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dash status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "tradeoffd live") || !strings.Contains(string(body), "EventSource") {
		t.Fatalf("dashboard page incomplete:\n%.300s", body)
	}

	sresp, err := http.Get(ts.URL + "/debug/dash?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	// The subscriber registers on connect; tick until the event shows
	// up (the handler subscribes before we can observe it, so a couple
	// of ticks guarantees delivery).
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s.obsTick(time.Now())
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	defer close(done)
	sc := bufio.NewScanner(sresp.Body)
	sawEvent, sawData := false, false
	for sc.Scan() {
		line := sc.Text()
		if line == "event: tick" {
			sawEvent = true
		}
		if strings.HasPrefix(line, "data: ") {
			var snap obs.TickSnapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				t.Fatalf("tick payload: %v\n%s", err, line)
			}
			if _, ok := snap.Values["requests_total"]; !ok {
				t.Fatalf("tick lacks requests_total: %v", snap.Values)
			}
			sawData = true
			break
		}
	}
	if !sawEvent || !sawData {
		t.Fatalf("no tick event on the stream (event=%v data=%v, err=%v)", sawEvent, sawData, sc.Err())
	}
}

// TestDashSSEChurn is the -race test for subscriber churn: clients
// connecting and disconnecting while the tick fan-out runs.
func TestDashSSEChurn(t *testing.T) {
	s, ts := newTestServer(t)
	stop := make(chan struct{})
	var tickers sync.WaitGroup
	tickers.Add(1)
	go func() {
		defer tickers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.obsTick(time.Now())
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/debug/dash?stream=sse")
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 256)
				_, _ = resp.Body.Read(buf) // read a little, then hang up
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	tickers.Wait()
}
