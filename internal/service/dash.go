// The live dashboard: GET /debug/dash serves one self-contained HTML
// page (no external assets, no build step) that backfills its
// sparklines from /metrics/history and then follows the snapshot
// stream at /debug/dash?stream=sse — one Server-Sent Event per
// history tick, fanned out through History.Subscribe.

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleDash serves the dashboard page, or the SSE snapshot stream
// with ?stream=sse. The stream sends one "tick" event per history
// snapshot; a subscriber that cannot keep up misses ticks rather than
// stalling the schedule (History.Tick drops on a full channel), and a
// disconnected client unsubscribes via its request context.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if r.URL.Query().Get("stream") != "sse" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashHTML)) // a failed write means the client left
		return
	}

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return // the writer cannot stream; nothing useful to send
	}

	ch, cancel := s.history.Subscribe(4)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case snap, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(snap)
			if err != nil {
				return // TickSnapshot cannot fail to marshal
			}
			if _, err := fmt.Fprintf(w, "event: tick\ndata: %s\n\n", data); err != nil {
				return // client left
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// dashHTML is the whole dashboard. Kept deliberately dependency-free:
// vanilla JS, canvas sparklines, EventSource. The page backfills 15
// minutes of history, then appends live ticks; derived charts (QPS
// from the requests_total delta) are computed client-side.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>tradeoffd live</title>
<style>
  body { font: 13px/1.4 system-ui, sans-serif; margin: 1.2em; background: #11151a; color: #d6dde6; }
  h1 { font-size: 1.1em; font-weight: 600; margin: 0 0 .2em; }
  #meta { color: #7d8a90; margin-bottom: 1em; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(260px, 1fr)); gap: 10px; }
  .card { background: #1a2129; border: 1px solid #2a333d; border-radius: 6px; padding: 8px 10px; }
  .card h2 { font-size: .78em; font-weight: 500; margin: 0 0 4px; color: #9fb0bf; word-break: break-all; }
  .card .val { font-size: 1.05em; font-variant-numeric: tabular-nums; color: #e8f0f7; }
  .burn { border-color: #a33; }
  canvas { width: 100%; height: 46px; display: block; margin-top: 4px; }
</style>
</head>
<body>
<h1>tradeoffd live</h1>
<div id="meta">flight recorder · metrics history · SLO burn — <span id="status">connecting…</span></div>
<div id="grid"></div>
<script>
"use strict";
const MAXPTS = 180;                   // points kept per sparkline
const series = new Map();             // name -> {card, canvas, val, data: [{t,v}]}
const grid = document.getElementById("grid");
const statusEl = document.getElementById("status");

// Derived charts first so they pin the top row.
const DERIVED = [
  { name: "qps", from: "requests_total", rate: true },
  { name: "error_rate", from: "errors_total", rate: true },
];

function fmt(v) {
  if (!isFinite(v)) return "–";
  const a = Math.abs(v);
  if (a >= 1e9) return (v / 1e9).toFixed(2) + "G";
  if (a >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (a >= 1e3) return (v / 1e3).toFixed(2) + "k";
  if (a > 0 && a < 0.01) return v.toExponential(1);
  return +v.toFixed(3) + "";
}

function card(name) {
  if (series.has(name)) return series.get(name);
  const el = document.createElement("div");
  el.className = "card";
  el.innerHTML = "<h2></h2><div class=val>–</div><canvas></canvas>";
  el.querySelector("h2").textContent = name;
  grid.appendChild(el);
  const s = { el, canvas: el.querySelector("canvas"), val: el.querySelector(".val"), data: [] };
  series.set(name, s);
  return s;
}

function push(name, t, v) {
  const s = card(name);
  s.data.push({ t, v });
  if (s.data.length > MAXPTS) s.data.shift();
  draw(s);
}

function draw(s) {
  const c = s.canvas, ctx = c.getContext("2d");
  c.width = c.clientWidth * devicePixelRatio;
  c.height = c.clientHeight * devicePixelRatio;
  ctx.clearRect(0, 0, c.width, c.height);
  const d = s.data;
  if (!d.length) return;
  s.val.textContent = fmt(d[d.length - 1].v);
  let lo = Infinity, hi = -Infinity;
  for (const p of d) { if (p.v < lo) lo = p.v; if (p.v > hi) hi = p.v; }
  if (hi === lo) { hi += 1; lo -= 1; }
  ctx.strokeStyle = "#5fb4e8";
  ctx.lineWidth = devicePixelRatio;
  ctx.beginPath();
  d.forEach((p, i) => {
    const x = i / Math.max(1, d.length - 1) * (c.width - 2) + 1;
    const y = c.height - 2 - (p.v - lo) / (hi - lo) * (c.height - 4);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}

// Derived rates: per-second delta of a cumulative series.
const lastRaw = new Map();
function derive(t, values) {
  for (const dv of DERIVED) {
    const v = values[dv.from];
    if (v === undefined) continue;
    const prev = lastRaw.get(dv.name);
    lastRaw.set(dv.name, { t, v });
    if (!prev || t <= prev.t) continue;
    push(dv.name, t, Math.max(0, (v - prev.v) / ((t - prev.t) / 1000)));
  }
}

function applyTick(t, values) {
  derive(t, values);
  for (const [name, v] of Object.entries(values)) push(name, t, v);
}

fetch("/metrics/history?window=15m")
  .then(r => r.json())
  .then(doc => {
    // Backfill: replay the history as ticks, oldest first.
    const ticks = new Map(); // t -> values
    for (const [name, samples] of Object.entries(doc.series || {})) {
      for (const p of samples) {
        if (!ticks.has(p.t)) ticks.set(p.t, {});
        ticks.get(p.t)[name] = p.v;
      }
    }
    [...ticks.keys()].sort((a, b) => a - b).forEach(t => applyTick(t, ticks.get(t)));
  })
  .catch(() => {})
  .finally(() => {
    const es = new EventSource("/debug/dash?stream=sse");
    es.onopen = () => { statusEl.textContent = "live"; };
    es.onerror = () => { statusEl.textContent = "reconnecting…"; };
    es.addEventListener("tick", ev => {
      const snap = JSON.parse(ev.data);
      applyTick(snap.t, snap.values);
    });
  });
</script>
</body>
</html>
`
