package service

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The goldens were captured from the pre-refactor handlers (PR 3) and
// pin the exact response bytes of /v1/sweep and /v1/stall in both
// formats. The unified Endpoint pipeline must reproduce them
// byte-for-byte: the refactor is allowed to move code, not output.
//
// Regenerate (only when an output change is intentional) with
//
//	go test ./internal/service -run TestEndpointGoldens -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the endpoint golden files")

// goldenGrid is the /v1/stall golden payload: small enough to replay
// in milliseconds, wide enough to cover two features and two βm.
const goldenGrid = `{
  "programs":   ["nasa7"],
  "refs":       4000,
  "features":   ["FS", "BNL3"],
  "beta_m":     [4, 10]
}`

// goldenSweepConfig exercises both the analytic surface and a
// non-trivial Pareto frontier (the documented example space).
const goldenSweepConfig = `{
  "cache_kb":    [4, 8, 16, 32, 64],
  "line_bytes":  [16, 32, 64],
  "bus_bits":    [32, 64],
  "assoc":       2,
  "latency_ns":  360,
  "transfer_ns": 60,
  "cpu_ns":      30,
  "hit_source":  "model"
}`

// goldenOptimizeConfig pins /v1/optimize: a three-depth search (flat,
// two-level, three-level) on the analytic surface under an area budget
// that keeps every depth in the frontier.
const goldenOptimizeConfig = `{
  "cache_kb":    [4, 8],
  "line_bytes":  [16, 32],
  "bus_bits":    [32, 64],
  "assoc":       2,
  "latency_ns":  360,
  "transfer_ns": 60,
  "cpu_ns":      30,
  "hit_source":  "model",
  "levels": [
    {"cache_kb": [32, 64], "latency_ns": 90},
    {"cache_kb": [256], "latency_ns": 180}
  ],
  "area_budget": 2e7
}`

func TestEndpointGoldens(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, url, body string
	}{
		{"sweep_golden.json", "/v1/sweep", goldenSweepConfig},
		{"sweep_golden.csv", "/v1/sweep?format=csv", goldenSweepConfig},
		{"stall_golden.json", "/v1/stall", goldenGrid},
		{"stall_golden.csv", "/v1/stall?format=csv", goldenGrid},
		{"optimize_golden.json", "/v1/optimize", goldenOptimizeConfig},
		{"optimize_golden.csv", "/v1/optimize?format=csv", goldenOptimizeConfig},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+c.url, c.body)
			if resp.StatusCode != 200 {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			path := filepath.Join("testdata", c.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, body, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (re-run with -update-golden?): %v", err)
			}
			if string(body) != string(want) {
				t.Fatalf("%s: response differs from the pre-refactor golden bytes\ngot:\n%s\nwant:\n%s", c.name, body, want)
			}
		})
	}
}
