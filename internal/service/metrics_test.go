package service

import (
	"context"
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tradeoff/internal/trace"
)

// TestStatusWriterForwardsFlush is the streaming regression test: a
// handler behind instrument must be able to flush through to the
// underlying writer (statusWriter used to swallow http.Flusher).
func TestStatusWriterForwardsFlush(t *testing.T) {
	m := newMetrics()
	h := m.instrument("/stream", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("wrapped writer does not advertise http.Flusher")
		}
		_, _ = w.Write([]byte("chunk"))
		w.(http.Flusher).Flush()
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	// The same must hold for code using http.ResponseController, which
	// follows Unwrap chains to the real writer.
	rec2 := httptest.NewRecorder()
	h2 := m.instrument("/stream2", func(w http.ResponseWriter, r *http.Request) {
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController flush: %v", err)
		}
	})
	h2(rec2, httptest.NewRequest(http.MethodGet, "/stream2", nil))
	if !rec2.Flushed {
		t.Fatal("ResponseController flush did not reach the underlying writer")
	}
}

// TestInstrumentPanicRestoresGauges is the panic regression test: a
// panicking handler must not leak in_flight, must count a 500 and a
// duration sample, and the panic must keep propagating (net/http's
// own recovery owns the connection teardown).
func TestInstrumentPanicRestoresGauges(t *testing.T) {
	m := newMetrics()
	h := m.instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/boom", nil))
	}()
	if recovered != "kaboom" {
		t.Fatalf("panic did not propagate: %v", recovered)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Fatalf("in_flight leaked: %d", got)
	}
	if got := m.errors.Value(); got != 1 {
		t.Fatalf("errors = %d, want 1 (panic counts as 500)", got)
	}
	if got := m.endpointVars("/boom").Get("errors").(*expvar.Int).Value(); got != 1 {
		t.Fatalf("endpoint errors = %d, want 1", got)
	}
	if got := m.duration("/boom").Count(); got != 1 {
		t.Fatalf("duration samples = %d, want 1 (the sample must not be lost)", got)
	}
}

// TestPrometheusGolden pins the Prometheus exposition bytes for a
// fixed metrics state, so the text format cannot drift silently.
// Regenerate with -update-golden (shared with the endpoint goldens).
func TestPrometheusGolden(t *testing.T) {
	s := New(Options{})
	// A fixed, hand-built state: every value below is deterministic, so
	// the rendered bytes are too.
	s.metrics.requests.Add(9)
	s.metrics.errors.Add(2)
	s.metrics.cacheHits.Add(3)
	s.metrics.cacheMisses.Add(4)
	ep := s.metrics.endpointVars("/v1/sweep")
	ep.Get("requests").(*expvar.Int).Add(6)
	ep.Get("errors").(*expvar.Int).Add(1)
	ep.Get("evaluations").(*expvar.Int).Add(5)
	for _, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond,
	} {
		s.metrics.duration("/v1/sweep").Observe(d)
	}
	s.stats.Eval.Observe(3 * time.Millisecond)
	s.stats.Eval.Observe(5 * time.Millisecond)
	s.stats.QueueWait.Observe(250 * time.Microsecond)
	s.stats.MemoHit.Add(7)
	s.stats.MemoMiss.Add(2)
	s.stats.MemoShared.Add(1)
	s.cache.Put("k", cachedResponse{contentType: "t", body: []byte("0123456789")})
	s.metrics.recordXVal("nasa7", xvalSample{LineSize: 32, MaxAbs: 0.0625, MeanAbs: 0.03125, Budget: 0.1, Within: true})
	s.metrics.recordXVal("zipf", xvalSample{LineSize: 64, MaxAbs: 0.015625, MeanAbs: 0.0078125, Budget: 0.04, Within: true})

	rec := httptest.NewRecorder()
	s.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.Bytes()

	path := filepath.Join("testdata", "metrics_golden.prom")
	if *updateGolden {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update-golden?): %v", err)
	}
	if string(body) != string(want) {
		t.Fatalf("prometheus exposition differs from golden\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestXValLoop runs two passes of the continuous cross-validation
// rotation against the live model and MRC tiers, then checks the
// errors surface as labeled gauges in the Prometheus exposition and
// as the "xval" document in the expvar JSON — the acceptance check
// for the model-vs-exact loop.
func TestXValLoop(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	s.xvalPass(ctx, 0)
	s.xvalPass(ctx, 1)

	ws := trace.Workloads()
	rec := httptest.NewRecorder()
	s.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "tradeoffd_xval_passes_total 2") {
		t.Fatalf("pass counter not exported:\n%s", body)
	}
	for _, w := range ws[:2] {
		for _, gauge := range []string{"tradeoffd_xval_max_abs_error", "tradeoffd_xval_mean_abs_error", "tradeoffd_xval_error_budget"} {
			prefix := gauge + `{workload="` + w + `"} `
			if !strings.Contains(body, prefix) {
				t.Errorf("no %s series for %q:\n%s", gauge, w, body)
			}
		}
	}

	rec = httptest.NewRecorder()
	s.metrics.serveHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var doc struct {
		Passes int64                 `json:"xval_passes"`
		XVal   map[string]xvalSample `json:"xval"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Passes != 2 || len(doc.XVal) != 2 {
		t.Fatalf("xval_passes = %d, samples = %d, want 2 and 2", doc.Passes, len(doc.XVal))
	}
	for _, w := range ws[:2] {
		sm, ok := doc.XVal[w]
		if !ok {
			t.Fatalf("no xval sample for %q: %v", w, doc.XVal)
		}
		if !sm.Within || sm.MaxAbs > sm.Budget {
			t.Errorf("%s: live pass over budget: max %.4f budget %.4f", w, sm.MaxAbs, sm.Budget)
		}
		if sm.LineSize != xvalLineSizes[0] {
			t.Errorf("%s: line size %d, want rotation start %d", w, sm.LineSize, xvalLineSizes[0])
		}
	}
}

// TestPrometheusQuantilesNonZero is the acceptance check: after an
// endpoint has served real traffic, its summary must report non-zero
// p50/p95/p99.
func TestPrometheusQuantilesNonZero(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp, _ := post(t, ts.URL+"/v1/tradeoff", `{"feature":"bus"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	resp, body := get(t, ts.URL+"/metrics?format=prom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		prefix := `tradeoffd_request_duration_seconds{endpoint="/v1/tradeoff",quantile="` + q + `"} `
		val := ""
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, prefix) {
				val = strings.TrimPrefix(line, prefix)
			}
		}
		if val == "" {
			t.Fatalf("no %sq series in exposition:\n%s", prefix, body)
		}
		if val == "0" {
			t.Fatalf("p%s is zero after traffic:\n%s", q, body)
		}
	}
	// The engine histograms saw the sweep pool's jobs... for /v1/tradeoff
	// there is no pool, but the memo counters must have advanced.
	if !strings.Contains(string(body), "tradeoffd_engine_memo_hits 2") {
		t.Fatalf("memo hit counter not exported:\n%s", body)
	}
}

// TestMetricsFormatRejected covers the format negotiation of /metrics.
func TestMetricsFormatRejected(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := get(t, ts.URL+"/metrics?format=xml")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentScrapes hammers /metrics (both formats) while real
// requests are in flight; run under -race this pins down the
// lock-free histogram and the counter paths.
func TestConcurrentScrapes(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, _ := post(t, ts.URL+"/v1/tradeoff", `{"feature":"bus"}`)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("tradeoff status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := get(t, ts.URL+"/metrics")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("metrics status %d", resp.StatusCode)
					return
				}
				if !json.Valid(body) {
					t.Errorf("scrape %d returned invalid JSON:\n%s", i, body)
					return
				}
				if resp, _ := get(t, ts.URL+"/metrics?format=prom"); resp.StatusCode != http.StatusOK {
					t.Errorf("prom scrape status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRequestIDs covers the correlation-ID middleware: honored when
// well-formed, regenerated when hostile, always echoed.
func TestRequestIDs(t *testing.T) {
	_, ts := newTestServer(t)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("well-formed id not honored: %q", got)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "bad id with spaces" || len(got) != 16 {
		t.Fatalf("hostile id echoed or not regenerated: %q", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("no generated id on plain request: %q", got)
	}
}

// TestPprofGate checks the profiling endpoints are opt-in.
func TestPprofGate(t *testing.T) {
	off := httptest.NewServer(New(Options{}).Handler())
	t.Cleanup(off.Close)
	resp, _ := get(t, off.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(New(Options{Pprof: true}).Handler())
	t.Cleanup(on.Close)
	resp, body := get(t, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d\n%s", resp.StatusCode, body)
	}
}
