package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// endpoint is one declarative POST route: the five stages every
// evaluation endpoint shares, each mapped onto a fixed HTTP status.
// handle() turns it into the full pipeline
//
//	decode+defaults+validate (400) → limits (422) → format (400) →
//	canonical key (400) → memo+singleflight → run (422, or 499 when
//	the client hung up) → encode JSON|CSV → respond+cache
//
// so registering the next endpoint means filling in this struct, not
// re-writing the pipeline.
type endpoint[Req, Res any] struct {
	// name is the route, e.g. "/v1/sweep"; it namespaces the cache key
	// and the per-endpoint metrics.
	name string
	// decode parses, defaults and validates the request body.
	// Errors report as 400.
	decode func(body []byte) (Req, error)
	// limits bounds untrusted payloads; nil means unlimited.
	// Errors report as 422.
	limits func(req Req) error
	// key canonicalizes the request into a deterministic memoization
	// key: two requests differing only in field order, whitespace or
	// spelled-out defaults share one entry. Errors report as 400.
	key func(req Req) ([]byte, error)
	// run evaluates the request; it sees the request context, so a
	// disconnected client cancels the evaluation (499). Other errors
	// report as 422.
	run func(ctx context.Context, req Req) (Res, error)
	// encodeJSON shapes the JSON response body.
	encodeJSON func(res Res) any
	// encodeCSV writes the CSV form; nil marks a JSON-only endpoint,
	// which ignores format negotiation entirely.
	encodeCSV func(w io.Writer, res Res) error
}

// handle builds the HTTP handler for an endpoint. Responses are
// memoized in the server's byte-bounded LRU keyed by
// (route, format, canonical request); the memo's singleflight makes N
// concurrent identical requests share exactly one evaluation — the
// laggards wait for the first run instead of repeating it.
func handle[Req, Res any](s *Server, ep endpoint[Req, Res]) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		req, err := ep.decode(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if ep.limits != nil {
			if err := ep.limits(req); err != nil {
				httpError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
		}
		format := "json"
		if ep.encodeCSV != nil {
			if format, err = requestFormat(r); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		canon, err := ep.key(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}

		key := ep.name + "|" + format + "|" + string(canon)
		ri := reqInfoFrom(r.Context())
		if ri != nil {
			ri.key = keyHash(key)
		}
		resp, shared, err := s.cache.Do(r.Context(), key, func(ctx context.Context) (cachedResponse, error) {
			s.metrics.evaluations(ep.name).Add(1)
			res, err := ep.run(ctx, req)
			if err != nil {
				return cachedResponse{}, err
			}
			if format == "csv" {
				var buf bytes.Buffer
				if err := ep.encodeCSV(&buf, res); err != nil {
					return cachedResponse{}, err
				}
				return cachedResponse{contentType: "text/csv; charset=utf-8", body: buf.Bytes()}, nil
			}
			return cachedResponse{contentType: "application/json", body: mustJSON(ep.encodeJSON(res))}, nil
		})
		switch {
		case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
			// Client went away; nobody is reading, don't poison counters
			// with a 5xx nor cache a partial result.
			httpError(w, statusClientClosedRequest, "request cancelled")
			return
		case err != nil:
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}

		cacheState := "miss"
		if shared {
			s.metrics.cacheHits.Add(1)
			cacheState = "hit"
		} else {
			s.metrics.cacheMisses.Add(1)
		}
		if ri != nil {
			ri.cache = cacheState
		}
		w.Header().Set("Content-Type", resp.contentType)
		w.Header().Set("X-Cache", cacheState)
		_, _ = w.Write(resp.body) // a failed write means the client left
	}
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was written.
const statusClientClosedRequest = 499

// requestFormat picks the response encoding: ?format=csv|json wins,
// otherwise an Accept: text/csv header, otherwise JSON.
func requestFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "csv", "json":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want json or csv)", f)
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/csv") {
		return "csv", nil
	}
	return "json", nil
}
