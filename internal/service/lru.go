package service

import (
	"container/list"
	"sync"
)

// cachedResponse is one memoized endpoint response: the exact bytes
// and content type to replay on a key match.
type cachedResponse struct {
	contentType string
	body        []byte
}

// lruCache is a size-bounded LRU of canonicalized request → response.
// Endpoint evaluations are pure functions of their inputs, so entries
// never expire — they are only evicted by capacity.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp cachedResponse
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element, capacity)}
}

// get returns the cached response for key, refreshing its recency.
func (c *lruCache) get(key string) (cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cachedResponse{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put stores a response, evicting the least recently used entry when
// over capacity.
func (c *lruCache) put(key string, resp cachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).resp = resp
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
