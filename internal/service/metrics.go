package service

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// metrics holds the server's expvar counters. The vars are per-Server
// (not published to the global expvar registry) so tests and embedders
// can run several servers without name collisions; GET /metrics
// renders them in expvar's JSON format.
type metrics struct {
	requests    expvar.Int // requests accepted, all endpoints
	errors      expvar.Int // responses with status >= 400
	cacheHits   expvar.Int // LRU memoization hits
	cacheMisses expvar.Int // LRU memoization misses
	inFlight    expvar.Int // requests currently being served
	endpoints   expvar.Map // per-endpoint requests/errors/latency
}

func newMetrics() *metrics {
	m := &metrics{}
	m.endpoints.Init()
	return m
}

// endpointVars returns (creating on first use) the per-endpoint
// counter map: requests, errors, latency_us_total.
func (m *metrics) endpointVars(name string) *expvar.Map {
	if v := m.endpoints.Get(name); v != nil {
		return v.(*expvar.Map)
	}
	em := new(expvar.Map).Init()
	em.Set("requests", new(expvar.Int))
	em.Set("errors", new(expvar.Int))
	em.Set("latency_us_total", new(expvar.Int))
	m.endpoints.Set(name, em)
	return m.endpoints.Get(name).(*expvar.Map)
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with request, error, in-flight
// and latency accounting under the given endpoint name.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := m.endpointVars(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Add(1)
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		ep.Get("requests").(*expvar.Int).Add(1)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)

		if sw.status >= 400 {
			m.errors.Add(1)
			ep.Get("errors").(*expvar.Int).Add(1)
		}
		ep.Get("latency_us_total").(*expvar.Int).Add(time.Since(start).Microseconds())
	}
}

// serveHTTP renders every counter as one JSON document, mirroring
// expvar.Handler()'s output format but scoped to this server.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	vars := []struct {
		name string
		v    expvar.Var
	}{
		{"requests_total", &m.requests},
		{"errors_total", &m.errors},
		{"cache_hits", &m.cacheHits},
		{"cache_misses", &m.cacheMisses},
		{"in_flight", &m.inFlight},
		{"endpoints", &m.endpoints},
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n")
	for i, kv := range vars {
		if i > 0 {
			fmt.Fprintf(&buf, ",\n")
		}
		fmt.Fprintf(&buf, "%q: %s", kv.name, kv.v.String())
	}
	fmt.Fprintf(&buf, "\n}\n")
	_, _ = w.Write(buf.Bytes()) // a failed write means the client left
}
