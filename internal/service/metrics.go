package service

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// metrics holds the server's expvar counters. The vars are per-Server
// (not published to the global expvar registry) so tests and embedders
// can run several servers without name collisions; GET /metrics
// renders them in expvar's JSON format.
type metrics struct {
	requests    expvar.Int // requests accepted, all endpoints
	errors      expvar.Int // responses with status >= 400
	cacheHits   expvar.Int // memoization hits (cache or shared flight)
	cacheMisses expvar.Int // memoization misses
	inFlight    expvar.Int // requests currently being served
	endpoints   expvar.Map // per-endpoint requests/errors/latency/durations

	// cacheBytes reads the response memo's live byte total — the gauge
	// behind the byte-bounded LRU. Wired by New.
	cacheBytes func() int64
}

func newMetrics() *metrics {
	m := &metrics{}
	m.endpoints.Init()
	return m
}

// endpointVars returns (creating on first use) the per-endpoint
// counter map: requests, errors, evaluations, latency_us_total and the
// request-duration triple (count / total ns / max ns).
func (m *metrics) endpointVars(name string) *expvar.Map {
	if v := m.endpoints.Get(name); v != nil {
		return v.(*expvar.Map)
	}
	em := new(expvar.Map).Init()
	em.Set("requests", new(expvar.Int))
	em.Set("errors", new(expvar.Int))
	em.Set("evaluations", new(expvar.Int))
	em.Set("latency_us_total", new(expvar.Int))
	em.Set("duration_count", new(expvar.Int))
	em.Set("duration_ns_total", new(expvar.Int))
	em.Set("duration_ns_max", new(maxInt))
	m.endpoints.Set(name, em)
	return m.endpoints.Get(name).(*expvar.Map)
}

// evaluations returns the endpoint's actual-evaluation counter — it
// advances only when an endpoint's run function executes, so
// (requests - evaluations) is the work the memo and its singleflight
// absorbed.
func (m *metrics) evaluations(name string) *expvar.Int {
	return m.endpointVars(name).Get("evaluations").(*expvar.Int)
}

// maxInt is an expvar gauge holding the maximum observed value.
type maxInt struct{ v atomic.Int64 }

// Observe raises the gauge to n if n is the new maximum.
func (m *maxInt) Observe(n int64) {
	for {
		cur := m.v.Load()
		if n <= cur || m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (m *maxInt) String() string { return strconv.FormatInt(m.v.Load(), 10) }

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with request, error, in-flight,
// latency and request-duration accounting under the given endpoint
// name — the one place every route's timing flows through.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := m.endpointVars(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Add(1)
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		ep.Get("requests").(*expvar.Int).Add(1)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)

		if sw.status >= 400 {
			m.errors.Add(1)
			ep.Get("errors").(*expvar.Int).Add(1)
		}
		d := time.Since(start)
		ep.Get("latency_us_total").(*expvar.Int).Add(d.Microseconds())
		ep.Get("duration_count").(*expvar.Int).Add(1)
		ep.Get("duration_ns_total").(*expvar.Int).Add(d.Nanoseconds())
		ep.Get("duration_ns_max").(*maxInt).Observe(d.Nanoseconds())
	}
}

// serveHTTP renders every counter as one JSON document, mirroring
// expvar.Handler()'s output format but scoped to this server.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var cacheBytes expvar.Int
	if m.cacheBytes != nil {
		cacheBytes.Set(m.cacheBytes())
	}
	vars := []struct {
		name string
		v    expvar.Var
	}{
		{"requests_total", &m.requests},
		{"errors_total", &m.errors},
		{"cache_hits", &m.cacheHits},
		{"cache_misses", &m.cacheMisses},
		{"cache_bytes", &cacheBytes},
		{"in_flight", &m.inFlight},
		{"endpoints", &m.endpoints},
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n")
	for i, kv := range vars {
		if i > 0 {
			fmt.Fprintf(&buf, ",\n")
		}
		fmt.Fprintf(&buf, "%q: %s", kv.name, kv.v.String())
	}
	fmt.Fprintf(&buf, "\n}\n")
	_, _ = w.Write(buf.Bytes()) // a failed write means the client left
}
