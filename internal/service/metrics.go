package service

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tradeoff/internal/obs"
)

// metrics holds the server's counters. The vars are per-Server (not
// published to the global expvar registry) so tests and embedders can
// run several servers without name collisions. GET /metrics renders
// them in expvar's JSON format; ?format=prom renders the same state
// as Prometheus text exposition (see prom.go), where the request
// duration histograms additionally report p50/p95/p99.
type metrics struct {
	requests    expvar.Int // requests accepted, all endpoints
	errors      expvar.Int // responses with status >= 400
	cacheHits   expvar.Int // memoization hits (cache or shared flight)
	cacheMisses expvar.Int // memoization misses
	inFlight    expvar.Int // requests currently being served
	endpoints   expvar.Map // per-endpoint requests/errors/latency/durations

	// durations holds one obs histogram per endpoint — the single
	// source for the duration_count / duration_ns_total /
	// duration_ns_max expvar triple (derived views, see histVar) and
	// the Prometheus duration summary with quantiles.
	durationsMu sync.Mutex
	durations   map[string]*obs.Histogram

	// xval is the latest cross-validation sample per workload from the
	// continuous model-vs-exact loop (Server.RunXVal), plus the pass
	// counter; rendered as live error gauges in both formats.
	xvalMu     sync.Mutex
	xval       map[string]xvalSample
	xvalPasses int64

	// engine carries the engine-level instruments (queue wait,
	// evaluation time, memo outcomes); the request middleware threads
	// it into every request context so engine.Map and engine.Memo
	// record into it. Wired by New.
	engine *obs.EngineStats

	// cacheBytes reads the response memo's live byte total — the gauge
	// behind the byte-bounded LRU. Wired by New.
	cacheBytes func() int64

	// sloJSON and sloProm render the SLO layer's burn-rate state into
	// the two /metrics formats. Both are nil unless the server was
	// configured with objectives, which keeps the default output —
	// including the Prometheus golden — byte-identical to a server
	// without an SLO layer. Wired by New.
	sloJSON func() []byte
	sloProm func(*bytes.Buffer)
}

func newMetrics() *metrics {
	m := &metrics{
		durations: make(map[string]*obs.Histogram),
		xval:      make(map[string]xvalSample),
	}
	m.endpoints.Init()
	return m
}

// xvalSample is one workload's latest cross-validation outcome: the
// model's hit-ratio error against the exact MRC tier at the pass's
// line size, next to the committed budget.
type xvalSample struct {
	LineSize int     `json:"line_size"`
	MaxAbs   float64 `json:"max_abs_err"`
	MeanAbs  float64 `json:"mean_abs_err"`
	Budget   float64 `json:"error_budget"`
	Within   bool    `json:"within_budget"`
}

// recordXVal stores the latest sample for a workload and advances the
// pass counter.
func (m *metrics) recordXVal(workload string, s xvalSample) {
	m.xvalMu.Lock()
	defer m.xvalMu.Unlock()
	m.xval[workload] = s
	m.xvalPasses++
}

// xvalSnapshot copies the current cross-validation state: the pass
// count and the samples in sorted workload order.
func (m *metrics) xvalSnapshot() (int64, []string, []xvalSample) {
	m.xvalMu.Lock()
	defer m.xvalMu.Unlock()
	names := make([]string, 0, len(m.xval))
	for name := range m.xval {
		names = append(names, name)
	}
	sort.Strings(names)
	samples := make([]xvalSample, len(names))
	for i, name := range names {
		samples[i] = m.xval[name]
	}
	return m.xvalPasses, names, samples
}

// duration returns (creating on first use) the endpoint's request
// duration histogram.
func (m *metrics) duration(name string) *obs.Histogram {
	m.durationsMu.Lock()
	defer m.durationsMu.Unlock()
	h, ok := m.durations[name]
	if !ok {
		h = obs.NewHistogram("request_duration")
		m.durations[name] = h
	}
	return h
}

// endpointVars returns (creating on first use) the per-endpoint
// counter map: requests, errors and evaluations as counters, plus
// latency_us_total and the request-duration triple (count / total ns
// / max ns) as views derived from the endpoint's duration histogram —
// the same JSON keys the triple always had, now backed by one
// instrument that can also estimate quantiles.
func (m *metrics) endpointVars(name string) *expvar.Map {
	if v := m.endpoints.Get(name); v != nil {
		return v.(*expvar.Map)
	}
	h := m.duration(name)
	em := new(expvar.Map).Init()
	em.Set("requests", new(expvar.Int))
	em.Set("errors", new(expvar.Int))
	em.Set("evaluations", new(expvar.Int))
	em.Set("latency_us_total", histVar{h, func(h *obs.Histogram) int64 { return h.Sum().Microseconds() }})
	em.Set("duration_count", histVar{h, (*obs.Histogram).Count})
	em.Set("duration_ns_total", histVar{h, func(h *obs.Histogram) int64 { return h.Sum().Nanoseconds() }})
	em.Set("duration_ns_max", histVar{h, func(h *obs.Histogram) int64 { return h.Max().Nanoseconds() }})
	m.endpoints.Set(name, em)
	return m.endpoints.Get(name).(*expvar.Map)
}

// evaluations returns the endpoint's actual-evaluation counter — it
// advances only when an endpoint's run function executes, so
// (requests - evaluations) is the work the memo and its singleflight
// absorbed.
func (m *metrics) evaluations(name string) *expvar.Int {
	return m.endpointVars(name).Get("evaluations").(*expvar.Int)
}

// histVar renders one scalar view of a histogram as an expvar.Var, so
// the expvar JSON document keeps its historical duration keys while
// the histogram is the only thing instrument updates.
type histVar struct {
	h *obs.Histogram
	f func(*obs.Histogram) int64
}

func (v histVar) String() string { return strconv.FormatInt(v.f(v.h), 10) }

// rawVar renders pre-marshaled JSON as an expvar.Var, so composite
// documents (the xval sample map) slot into the hand-built doc.
type rawVar []byte

func (v rawVar) String() string { return string(v) }

// statusWriter captures the response status for error accounting
// while keeping the wrapped writer's optional interfaces reachable:
// Unwrap lets http.ResponseController (and through it the net/http
// internals) find Flusher, Hijacker and friends on the underlying
// writer, and Flush forwards directly so streaming handlers behind
// instrument still flush.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64 // response body bytes written (wide-event access log)
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController,
// restoring every optional interface (Flusher, Hijacker, deadlines,
// io.ReaderFrom sendfile paths) the wrapper would otherwise swallow.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush implements http.Flusher by forwarding through
// ResponseController, which follows Unwrap chains; a writer that
// cannot flush makes this a no-op rather than an error.
func (w *statusWriter) Flush() {
	_ = http.NewResponseController(w.ResponseWriter).Flush()
}

// instrument wraps an endpoint handler with request, error, in-flight
// and duration accounting under the given endpoint name — the one
// place every route's timing flows through. A panicking handler does
// not distort the gauges: the deferred accounting restores in_flight,
// counts the request as a 500 and re-panics for the server's own
// recovery.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := m.endpointVars(name)
	dur := m.duration(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Add(1)
		m.inFlight.Add(1)
		ep.Get("requests").(*expvar.Int).Add(1)
		if ri := reqInfoFrom(r.Context()); ri != nil {
			ri.endpoint = name // the wide-event log's endpoint dimension
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			p := recover()
			m.inFlight.Add(-1)
			status := sw.status
			if p != nil {
				status = http.StatusInternalServerError
			}
			if status >= 400 {
				m.errors.Add(1)
				ep.Get("errors").(*expvar.Int).Add(1)
			}
			dur.Observe(time.Since(start))
			if p != nil {
				panic(p)
			}
		}()
		h(sw, r)
	}
}

// serveHTTP renders the counters: expvar-style JSON by default,
// Prometheus text exposition with ?format=prom.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
	case "prom":
		m.servePrometheus(w)
		return
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json or prom)", f), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var cacheBytes expvar.Int
	if m.cacheBytes != nil {
		cacheBytes.Set(m.cacheBytes())
	}
	passes, _, _ := m.xvalSnapshot()
	var xvalPasses expvar.Int
	xvalPasses.Set(passes)
	m.xvalMu.Lock()
	xvalDoc, err := json.Marshal(m.xval) // map keys render sorted
	m.xvalMu.Unlock()
	if err != nil {
		xvalDoc = []byte("{}")
	}
	vars := []struct {
		name string
		v    expvar.Var
	}{
		{"requests_total", &m.requests},
		{"errors_total", &m.errors},
		{"cache_hits", &m.cacheHits},
		{"cache_misses", &m.cacheMisses},
		{"cache_bytes", &cacheBytes},
		{"in_flight", &m.inFlight},
		{"endpoints", &m.endpoints},
		{"xval_passes", &xvalPasses},
		{"xval", rawVar(xvalDoc)},
	}
	if m.sloJSON != nil {
		vars = append(vars, struct {
			name string
			v    expvar.Var
		}{"slo", rawVar(m.sloJSON())})
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n")
	for i, kv := range vars {
		if i > 0 {
			fmt.Fprintf(&buf, ",\n")
		}
		fmt.Fprintf(&buf, "%q: %s", kv.name, kv.v.String())
	}
	fmt.Fprintf(&buf, "\n}\n")
	_, _ = w.Write(buf.Bytes()) // a failed write means the client left
}
