// Package service implements tradeoffd's HTTP API: the unified
// tradeoff methodology (Eqs. 1–9) and the design-space sweep engine
// behind a JSON interface.
//
// Endpoints:
//
//	POST /v1/tradeoff  price one feature at a design point (ΔHR, the
//	                   miss-count/bus-width ratio r, Eq. 9 line-fill
//	                   time, optional Eq. 2 execution time)
//	POST /v1/sweep     full design-space sweep → JSON or CSV; hit
//	                   sources "model", "sim:<workload>", and the
//	                   single-pass miss-ratio curves "mrc:<workload>"
//	                   (exact) / "mrc~:<workload>" (SHARDS-sampled),
//	                   with curves memoized across requests
//	POST /v1/stall     trace-driven stall sweep: replay a workload
//	                   grid and return each point's stall.Result
//	                   decomposition → JSON or CSV
//	POST /v1/optimize  cost-constrained search over the joint
//	                   (hierarchy depth, cache sizes, line sizes, bus
//	                   width) space: every depth prefix of the level
//	                   axes competes under an area_budget (and optional
//	                   power_budget); returns the feasible designs with
//	                   the (delay, area, pins) Pareto frontier flagged
//	                   → JSON or CSV
//	GET  /healthz      liveness probe
//	GET  /metrics      expvar counters: requests, errors, cache
//	                   hits/misses/bytes, in-flight, per-endpoint
//	                   latency and evaluation counts; ?format=prom
//	                   renders the same state as Prometheus text with
//	                   p50/p95/p99 request-duration quantiles
//	GET  /debug/pprof/ net/http/pprof profiling (only with
//	                   Options.Pprof / tradeoffd -pprof)
//
// Every request gets a correlation ID (X-Request-ID honored when
// well-formed, generated otherwise) echoed in the response and in the
// structured access-log line when Options.Logger is set. Request
// contexts carry obs.EngineStats, so the engine pools record
// queue-wait and evaluation time per job into the /metrics
// histograms.
//
// All POST endpoints are pure functions of their payloads and run on
// one generic pipeline (see endpoint.go): decode → defaults →
// validate → limits → canonical key → memo → run → encode. Responses
// are memoized in an engine.Memo LRU bounded by entries AND bytes,
// whose singleflight collapses concurrent identical requests into a
// single evaluation. Request contexts flow into the worker pools: a
// disconnected client cancels its in-flight sweep or replay. The
// server holds one simjob.Runner for its lifetime, so materialized
// workload traces are shared across /v1/stall requests.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"time"

	"tradeoff/internal/core"
	"tradeoff/internal/engine"
	"tradeoff/internal/model"
	"tradeoff/internal/mrc"
	"tradeoff/internal/obs"
	"tradeoff/internal/simjob"
	"tradeoff/internal/sweep"
	"tradeoff/internal/trace"
)

// maxBodyBytes bounds request payloads; a sweep config is a few
// hundred bytes, so 1 MiB is already generous.
const maxBodyBytes = 1 << 20

// Options configures a Server. The zero value is ready for production.
type Options struct {
	// CacheEntries bounds the response LRU's entry count (default 256).
	CacheEntries int
	// CacheBytes bounds the response LRU's total body bytes (default
	// 32 MiB), so a handful of huge CSV sweeps cannot pin megabytes
	// beyond the byte budget however few entries they are.
	CacheBytes int64
	// Workers sizes the sweep pool (default 0 = runtime.NumCPU()).
	Workers int
	// Limits bounds untrusted sweep payloads (zero value =
	// sweep.DefaultLimits).
	Limits sweep.Limits
	// StallLimits bounds untrusted stall-grid payloads (zero value =
	// simjob.DefaultLimits).
	StallLimits simjob.Limits
	// Logger, when non-nil, receives one structured access-log line per
	// request (method, path, status, duration, request ID) and is
	// threaded into request contexts for handlers to use.
	Logger *obs.Logger
	// Pprof registers net/http/pprof's profiling endpoints under
	// /debug/pprof/. Off by default: profiling handlers expose enough
	// internals that they are opt-in (tradeoffd's -pprof flag).
	Pprof bool
	// FlightSpans bounds the always-on flight recorder's span ring
	// (default 8192; negative disables the recorder entirely, which
	// also turns off exemplar capture and /debug/flight).
	FlightSpans int
	// SlowFactor is the tail-sampling threshold: a request slower than
	// SlowFactor × its endpoint's rolling p99 pins its full span tree
	// as an exemplar (default 8; only applies once the endpoint has
	// seen enough traffic for a meaningful p99).
	SlowFactor float64
	// SlowKeep bounds the exemplar store (default 16, oldest evicted
	// first; negative disables capture).
	SlowKeep int
	// HistoryInterval is the metrics-history snapshot cadence (default
	// 10s) and HistoryWindow the retention per series (default 1h);
	// together they size the fixed per-series rings.
	HistoryInterval time.Duration
	HistoryWindow   time.Duration
	// SLOs holds the per-endpoint objectives behind the tradeoffd_slo_*
	// gauges and burn-rate warnings; empty leaves /metrics output
	// byte-identical to a server without an SLO layer.
	SLOs []obs.SLO
}

// cachedResponse is one memoized endpoint response: the exact bytes
// and content type to replay on a key match.
type cachedResponse struct {
	contentType string
	body        []byte
}

// Server is the tradeoffd HTTP service: declarative endpoints over the
// shared evaluation engines plus a response memo and expvar counters.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	cache   *engine.Memo[cachedResponse]
	metrics *metrics
	stats   *obs.EngineStats
	runner  *simjob.Runner
	curves  *mrc.CurveCache
	models  *model.Cache

	// Observability tier 2 (flight recorder, metrics history, SLOs).
	epoch     time.Time     // flight-dump timestamp origin
	ring      *obs.SpanRing // nil when the recorder is disabled
	exemplars *obs.Exemplars
	history   *obs.History
}

// New builds a Server with its routes registered.
func New(opts Options) *Server {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 256
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 32 << 20
	}
	if opts.Limits == (sweep.Limits{}) {
		opts.Limits = sweep.DefaultLimits
	}
	if opts.StallLimits == (simjob.Limits{}) {
		opts.StallLimits = simjob.DefaultLimits
	}
	if opts.FlightSpans == 0 {
		opts.FlightSpans = 8192
	}
	if opts.SlowFactor <= 0 {
		opts.SlowFactor = 8
	}
	if opts.SlowKeep == 0 {
		opts.SlowKeep = 16
	}
	if opts.HistoryInterval <= 0 {
		opts.HistoryInterval = 10 * time.Second
	}
	if opts.HistoryWindow <= 0 {
		opts.HistoryWindow = time.Hour
	}
	s := &Server{
		opts: opts,
		mux:  http.NewServeMux(),
		cache: engine.NewMemo(opts.CacheEntries, opts.CacheBytes, func(r cachedResponse) int64 {
			return int64(len(r.body) + len(r.contentType))
		}),
		metrics: newMetrics(),
		stats:   obs.NewEngineStats(),
		runner:  simjob.NewRunner(),
		// Miss-ratio curves survive across /v1/sweep requests: 64 curves
		// (≈ a few sweeps' worth of line sizes) within 64 MiB.
		curves: mrc.NewCurveCache(64, 64<<20),
		// Analytic model curves are tiny (knot tables); the cache mostly
		// saves the µs-scale rebuild per (workload, line size).
		models: model.NewCache(64, 16<<20),
	}
	s.metrics.cacheBytes = s.cache.Bytes
	s.metrics.engine = s.stats
	s.epoch = time.Now()
	if opts.FlightSpans > 0 {
		s.ring = obs.NewSpanRing(opts.FlightSpans)
		if opts.SlowKeep > 0 {
			s.exemplars = obs.NewExemplars(opts.SlowKeep)
		}
	}
	s.history = obs.NewHistory(opts.HistoryInterval, opts.HistoryWindow)
	s.mux.HandleFunc("/v1/tradeoff", s.metrics.instrument("/v1/tradeoff", handle(s, s.tradeoffEndpoint())))
	s.mux.HandleFunc("/v1/sweep", s.metrics.instrument("/v1/sweep", handle(s, s.sweepEndpoint())))
	s.mux.HandleFunc("/v1/stall", s.metrics.instrument("/v1/stall", handle(s, s.stallEndpoint())))
	s.mux.HandleFunc("/v1/optimize", s.metrics.instrument("/v1/optimize", handle(s, s.optimizeEndpoint())))
	s.mux.HandleFunc("/healthz", s.metrics.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.metrics.serveHTTP)
	// The observability surface itself stays uninstrumented, like
	// /metrics always has: meta-endpoints must not add series to the
	// documents they serve (the Prometheus golden pins that the
	// endpoint set is unchanged), and the dashboard's SSE stream would
	// distort any duration summary it appeared in.
	s.mux.HandleFunc("/metrics/history", s.handleHistory)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	s.mux.HandleFunc("/debug/slow", s.handleSlow)
	s.mux.HandleFunc("/debug/dash", s.handleDash)
	s.registerSeries()
	if len(opts.SLOs) > 0 {
		s.metrics.sloJSON = func() []byte { return s.sloDoc(time.Now()) }
		s.metrics.sloProm = s.writeSLOProm
	}
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the root handler for an http.Server: the route mux
// behind the observability middleware (request IDs, engine stats,
// access logging).
func (s *Server) Handler() http.Handler { return s.withObs(s.mux) }

// requestSpanLimit bounds a single request's locally retained span
// tree: enough for any realistic sweep's span set to render in an
// exemplar, small enough that a pathological request cannot hold
// megabytes hostage. Spans past the limit still tee into the ring.
const requestSpanLimit = 512

// slowMinSamples is how much traffic an endpoint must have seen
// before its rolling p99 is trusted as a tail-sampling threshold; the
// first requests of a cold endpoint are not outliers, just cold.
const slowMinSamples = 32

// withObs is the outermost middleware. It assigns every request a
// correlation ID — honoring a well-formed client X-Request-ID,
// generating one otherwise — echoes it on the response, threads the
// engine instruments (and the configured logger) into the request
// context so the worker pools underneath record queue-wait and
// evaluation time, opens the request's root span on a per-request
// tracer that tees every completed span into the flight-recorder
// ring, applies the tail-based exemplar policy, and emits one
// wide-event access-log line per request when logging is configured —
// every dimension known at completion (endpoint, status, duration,
// response bytes, response-memo outcome, canonical-key hash, request
// ID) on a single line.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)

		ctx := obs.WithRequestID(r.Context(), id)
		ctx = obs.WithEngineStats(ctx, s.stats)
		if s.opts.Logger != nil {
			ctx = obs.WithLogger(ctx, s.opts.Logger)
		}
		ri := &reqInfo{}
		ctx = withReqInfo(ctx, ri)
		var tracer *obs.Tracer
		var span *obs.Span
		if s.ring != nil {
			tracer = obs.NewRequestTracer(s.ring, requestSpanLimit)
			ctx = obs.WithTracer(ctx, tracer)
			ctx, span = obs.StartSpan(ctx, "request")
			span.SetArg("path", r.URL.Path)
			span.SetArg("request_id", id)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			span.SetArg("status", sw.status)
			span.End()
			if tracer != nil {
				s.captureSlow(ri, id, tracer, start, dur)
			}
			if s.opts.Logger != nil {
				kv := []any{
					"method", r.Method,
					"path", r.URL.Path,
					"status", sw.status,
					"duration_us", dur.Microseconds(),
					"bytes", sw.bytes,
					"request_id", id,
				}
				if ri.endpoint != "" {
					kv = append(kv, "endpoint", ri.endpoint)
				}
				if ri.cache != "" {
					kv = append(kv, "cache", ri.cache)
				}
				if ri.key != "" {
					kv = append(kv, "key", ri.key)
				}
				s.opts.Logger.Info("request", kv...)
			}
		}()
		next.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// captureSlow applies the tail-based exemplar policy after a request
// completes: once the endpoint's duration histogram holds enough
// samples for a meaningful p99, a request slower than SlowFactor ×
// that rolling p99 pins its full span tree into the exemplar store.
// The histogram already includes this request (instrument's deferred
// Observe runs before this outer defer), so the very request that
// moves the tail is judged against a tail that has seen it.
func (s *Server) captureSlow(ri *reqInfo, id string, tracer *obs.Tracer, start time.Time, dur time.Duration) {
	if s.exemplars == nil || ri.endpoint == "" {
		return
	}
	h := s.metrics.duration(ri.endpoint)
	if h.Count() < slowMinSamples {
		return
	}
	p99 := h.Quantile(0.99)
	threshold := time.Duration(float64(p99) * s.opts.SlowFactor)
	if p99 <= 0 || dur <= threshold {
		return
	}
	s.exemplars.Add(obs.Exemplar{
		Endpoint:    ri.endpoint,
		RequestID:   id,
		Key:         ri.key,
		Time:        start,
		DurationUS:  dur.Microseconds(),
		P99US:       p99.Microseconds(),
		ThresholdUS: threshold.Microseconds(),
		Spans:       tracer.JSON(),
	})
	if s.opts.Logger != nil {
		s.opts.Logger.Warn("slow request pinned",
			"endpoint", ri.endpoint,
			"duration_us", dur.Microseconds(),
			"p99_us", p99.Microseconds(),
			"threshold_us", threshold.Microseconds(),
			"request_id", id,
		)
	}
}

// CacheHits returns the memoization hit count (for tests and ops).
func (s *Server) CacheHits() int64 { return s.metrics.cacheHits.Value() }

// TradeoffRequest is the POST /v1/tradeoff payload. Omitted fields
// take the same defaults as the tradeoff CLI flags.
type TradeoffRequest struct {
	Feature  string   `json:"feature"`             // bus, stall, wbuf or pipe
	HitRatio *float64 `json:"hit_ratio,omitempty"` // base hit ratio (default 0.95)
	Alpha    *float64 `json:"alpha,omitempty"`     // flush ratio (default 0.5)
	L        *float64 `json:"l,omitempty"`         // line size in bytes (default 32)
	D        *float64 `json:"d,omitempty"`         // bus width in bytes (default 4)
	BetaM    *float64 `json:"beta_m,omitempty"`    // memory cycle time (default 10)
	Phi      *float64 `json:"phi,omitempty"`       // stall: stalling factor (default 1)
	Q        *float64 `json:"q,omitempty"`         // pipe: readiness interval (default 2)
	Issue    *float64 `json:"issue,omitempty"`     // issue width (default 1 = Eq. 6)
	// Profile optionally supplies {E, R, W} so the response can include
	// the absolute Eq. (2) execution time of the base system.
	Profile *ProfileRequest `json:"profile,omitempty"`
}

// ProfileRequest is the optional application profile of Table 1.
type ProfileRequest struct {
	E float64 `json:"e"` // instructions executed
	R float64 `json:"r"` // bytes read on misses
	W float64 `json:"w"` // write-around miss count
}

// setDefaults fills nil fields with the CLI defaults so the canonical
// memoization key is independent of which defaults were spelled out.
func (t *TradeoffRequest) setDefaults() {
	def := func(p **float64, v float64) {
		if *p == nil {
			*p = &v
		}
	}
	def(&t.HitRatio, 0.95)
	def(&t.Alpha, 0.5)
	def(&t.L, 32)
	def(&t.D, 4)
	def(&t.BetaM, 10)
	def(&t.Phi, 1)
	def(&t.Q, 2)
	def(&t.Issue, 1)
}

// featureSpec maps the request's feature name onto the core spec —
// the same four names the tradeoff CLI accepts.
func (t *TradeoffRequest) featureSpec() (core.FeatureSpec, error) {
	switch t.Feature {
	case "bus":
		return core.FeatureSpec{Feature: core.FeatureDoubleBus}, nil
	case "stall":
		return core.FeatureSpec{Feature: core.FeaturePartialStall, Phi: *t.Phi}, nil
	case "wbuf":
		return core.FeatureSpec{Feature: core.FeatureWriteBuffers}, nil
	case "pipe":
		return core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: *t.Q}, nil
	case "":
		return core.FeatureSpec{}, fmt.Errorf("missing feature (want bus, stall, wbuf or pipe)")
	default:
		return core.FeatureSpec{}, fmt.Errorf("unknown feature %q (want bus, stall, wbuf or pipe)", t.Feature)
	}
}

// TradeoffResponse prices the feature: Eq. (6) ΔHR, the Table 3
// miss-count ratio (the bus-width byte ratio for feature "bus"), and
// the pipelined-memory auxiliaries of Eq. (9).
type TradeoffResponse struct {
	Feature            string  `json:"feature"`
	MissCountRatio     float64 `json:"miss_count_ratio"` // r (Eq. 3 / Table 3)
	S                  float64 `json:"s"`                // Λh/Λm of the base system
	BaseHitRatio       float64 `json:"base_hit_ratio"`
	DeltaHR            float64 `json:"delta_hr"`
	EquivalentHitRatio float64 `json:"equivalent_hit_ratio"`
	Valid              bool    `json:"valid"`
	// BetaP is Eq. (9)'s pipelined line-fill time (feature "pipe").
	BetaP float64 `json:"beta_p,omitempty"`
	// CrossoverBetaM is the βm beyond which pipelining out-trades bus
	// doubling; omitted when infinite (L = 2D) or not applicable.
	CrossoverBetaM float64 `json:"crossover_beta_m,omitempty"`
	// Exec carries the Eq. (2) execution time when a profile was given.
	Exec *ExecResponse `json:"exec,omitempty"`
}

// ExecResponse is the absolute Eq. (2) evaluation of the base
// (full-blocking) system on the supplied profile.
type ExecResponse struct {
	ExecutionCycles   float64 `json:"execution_cycles"`    // Eq. (2)
	MemoryDelayCycles float64 `json:"memory_delay_cycles"` // stall terms of Eq. (2)
	Misses            float64 `json:"misses"`              // Λm = R/L + W (Eq. 1)
}

// tradeoffEndpoint registers POST /v1/tradeoff on the shared pipeline.
// Validation happens inside run (featureSpec and the core domain
// checks), so malformed JSON is a 400 and out-of-domain parameters a
// 422 — exactly the pre-pipeline split.
func (s *Server) tradeoffEndpoint() endpoint[TradeoffRequest, TradeoffResponse] {
	return endpoint[TradeoffRequest, TradeoffResponse]{
		name: "/v1/tradeoff",
		decode: func(body []byte) (TradeoffRequest, error) {
			var req TradeoffRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return req, fmt.Errorf("decoding request: %w", err)
			}
			req.setDefaults()
			return req, nil
		},
		key:        func(req TradeoffRequest) ([]byte, error) { return json.Marshal(req) },
		run:        func(_ context.Context, req TradeoffRequest) (TradeoffResponse, error) { return evalTradeoff(req) },
		encodeJSON: func(res TradeoffResponse) any { return res },
	}
}

// evalTradeoff prices one feature request — the pure function behind
// POST /v1/tradeoff.
func evalTradeoff(req TradeoffRequest) (TradeoffResponse, error) {
	spec, err := req.featureSpec()
	if err != nil {
		return TradeoffResponse{}, err
	}
	var tr core.Tradeoff
	if *req.Issue > 1 {
		tr, err = core.MultiIssueTradeoff(spec, *req.HitRatio, *req.Alpha, *req.L, *req.D, *req.BetaM, *req.Issue)
	} else {
		tr, err = core.FeatureTradeoff(spec, *req.HitRatio, *req.Alpha, *req.L, *req.D, *req.BetaM)
	}
	if err != nil {
		return TradeoffResponse{}, err
	}
	resp := TradeoffResponse{
		Feature:            tr.Feature.String(),
		MissCountRatio:     tr.R,
		S:                  tr.S,
		BaseHitRatio:       tr.BaseHR,
		DeltaHR:            tr.DeltaHR,
		EquivalentHitRatio: tr.NewHR,
		Valid:              tr.Valid,
	}
	if spec.Feature == core.FeaturePipelinedMemory {
		resp.BetaP = core.BetaP(*req.BetaM, *req.Q, *req.L, *req.D)
		if x, err := core.PipelineCrossover(*req.Q, *req.L, *req.D); err == nil && !math.IsInf(x, 0) {
			resp.CrossoverBetaM = x
		}
	}
	if req.Profile != nil {
		p := core.Params{
			E: req.Profile.E, R: req.Profile.R, W: req.Profile.W,
			Alpha: *req.Alpha, D: *req.D, L: *req.L, BetaM: *req.BetaM,
		}
		p = p.WithFullStall()
		if err := p.Validate(); err != nil {
			return TradeoffResponse{}, err
		}
		resp.Exec = &ExecResponse{
			ExecutionCycles:   core.ExecutionTime(p),
			MemoryDelayCycles: core.MemoryDelayCycles(p),
			Misses:            p.Misses(),
		}
	}
	return resp, nil
}

// SweepResponse is the JSON shape of POST /v1/sweep. ErrorBound is
// present only when the sweep was answered by the analytic model tier
// (hit source "an:<workload>" after mode resolution): the committed
// maximum absolute hit-ratio error of that workload's model against
// the exact MRC tier (model.ErrorBound).
type SweepResponse struct {
	Count       int            `json:"count"`
	ParetoCount int            `json:"pareto_count"`
	ErrorBound  float64        `json:"error_bound,omitempty"`
	Designs     []sweep.Design `json:"designs"`
}

// caches bundles the server's shared memoization state for the sweep
// engines: miss-ratio curves, analytic models, and the simjob trace
// seam hierarchy sweeps replay "sim:" sources through (one
// materialized trace per workload across all requests).
func (s *Server) caches() sweep.Caches {
	return sweep.Caches{Curves: s.curves, Models: s.models, Measure: s.runner.MeasureHierarchy}
}

// sweepEndpoint registers POST /v1/sweep on the shared pipeline.
func (s *Server) sweepEndpoint() endpoint[sweep.Config, []sweep.Design] {
	return endpoint[sweep.Config, []sweep.Design]{
		name:   "/v1/sweep",
		decode: sweep.ParseConfig,
		limits: func(cfg sweep.Config) error { return cfg.CheckLimits(s.opts.Limits) },
		key:    sweep.Config.Canonical,
		run: func(ctx context.Context, cfg sweep.Config) ([]sweep.Design, error) {
			return sweep.RunCaches(ctx, cfg, s.opts.Workers, s.caches())
		},
		encodeJSON: func(ds []sweep.Design) any {
			resp := SweepResponse{Count: len(ds), ParetoCount: sweep.ParetoCount(ds), Designs: ds}
			if len(ds) > 0 {
				// The effective hit source is uniform across a sweep, so
				// the first design speaks for all of them.
				if _, w, ok := sweep.SourceWorkload(ds[0].HitSource); ok && ds[0].HitSource == "an:"+w {
					resp.ErrorBound = model.ErrorBound(w)
				}
			}
			return resp
		},
		encodeCSV: func(w io.Writer, ds []sweep.Design) error { return sweep.WriteCSV(w, ds) },
	}
}

// StallResponse is the JSON shape of POST /v1/stall. ErrorBounds maps
// each workload that was priced analytically (point source
// "an:<workload>" after mode resolution) to its committed hit-ratio
// error budget — the miss counts behind those points inherit it.
type StallResponse struct {
	Count       int                  `json:"count"`
	ErrorBounds map[string]float64   `json:"error_bounds,omitempty"`
	Points      []simjob.PointResult `json:"points"`
}

// stallEndpoint registers POST /v1/stall on the shared pipeline.
func (s *Server) stallEndpoint() endpoint[simjob.Grid, []simjob.PointResult] {
	return endpoint[simjob.Grid, []simjob.PointResult]{
		name:   "/v1/stall",
		decode: simjob.ParseGrid,
		limits: func(g simjob.Grid) error { return g.CheckLimits(s.opts.StallLimits) },
		key:    simjob.Grid.Canonical,
		run: func(ctx context.Context, g simjob.Grid) ([]simjob.PointResult, error) {
			return s.runner.RunGrid(ctx, g, s.opts.Workers)
		},
		encodeJSON: func(ps []simjob.PointResult) any {
			resp := StallResponse{Count: len(ps), Points: ps}
			for _, p := range ps {
				if p.Source == "an:"+p.Program {
					if resp.ErrorBounds == nil {
						resp.ErrorBounds = make(map[string]float64)
					}
					resp.ErrorBounds[p.Program] = model.ErrorBound(p.Program)
				}
			}
			return resp
		},
		encodeCSV: func(w io.Writer, ps []simjob.PointResult) error { return simjob.WriteCSV(w, ps) },
	}
}

// OptimizeResponse is the JSON shape of POST /v1/optimize. Total
// counts every design point enumerated across all hierarchy depths;
// Feasible counts (and Designs carries) the ones within the budgets,
// with the (delay, area, pins) Pareto frontier flagged. ErrorBound
// carries the analytic tier's committed hit-ratio error when the
// effective hit source is "an:<workload>", like SweepResponse.
type OptimizeResponse struct {
	Total       int            `json:"total"`
	Feasible    int            `json:"feasible"`
	ParetoCount int            `json:"pareto_count"`
	ErrorBound  float64        `json:"error_bound,omitempty"`
	Designs     []sweep.Design `json:"designs"`
}

// optimizeEndpoint registers POST /v1/optimize on the shared pipeline:
// like every POST endpoint it is memoized on the canonical config and
// cancelled by a disconnected client.
func (s *Server) optimizeEndpoint() endpoint[sweep.OptimizeConfig, sweep.OptimizeResult] {
	return endpoint[sweep.OptimizeConfig, sweep.OptimizeResult]{
		name:   "/v1/optimize",
		decode: sweep.ParseOptimizeConfig,
		limits: func(cfg sweep.OptimizeConfig) error { return cfg.CheckLimits(s.opts.Limits) },
		key:    sweep.OptimizeConfig.Canonical,
		run: func(ctx context.Context, cfg sweep.OptimizeConfig) (sweep.OptimizeResult, error) {
			return sweep.OptimizeCaches(ctx, cfg, s.opts.Workers, s.caches())
		},
		encodeJSON: func(res sweep.OptimizeResult) any {
			resp := OptimizeResponse{
				Total:       res.Total,
				Feasible:    res.Feasible,
				ParetoCount: sweep.ParetoCount(res.Designs),
				Designs:     res.Designs,
			}
			if len(res.Designs) > 0 {
				if _, w, ok := sweep.SourceWorkload(res.Designs[0].HitSource); ok && res.Designs[0].HitSource == "an:"+w {
					resp.ErrorBound = model.ErrorBound(w)
				}
			}
			return resp
		},
		encodeCSV: func(w io.Writer, res sweep.OptimizeResult) error { return sweep.WriteOptimizeCSV(w, res.Designs) },
	}
}

// xvalLineSizes is the rotating line-size schedule of the continuous
// cross-validation loop — the paper's Table 3 span.
var xvalLineSizes = []int{16, 32, 64, 128}

// xvalRefs is the trace length of one validation pass: long enough to
// exercise every generator's steady state, short enough that a pass
// costs milliseconds.
const xvalRefs = 30_000

// RunXVal runs the continuous cross-validation loop until ctx is
// cancelled: one pass immediately, then one per interval, rotating
// through every covered workload × Table-3 line size. Each pass
// compares the analytic model against the exact MRC tier (plus a
// set-associative replay leg, inside model.CrossValidate's "xval_pass"
// span) and publishes the errors as live gauges on /metrics. A pass
// failure is recorded and logged, never fatal — the loop is telemetry,
// not control flow. Intervals <= 0 disable the loop.
func (s *Server) RunXVal(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for i := 0; ; i++ {
		s.xvalPass(ctx, i)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// xvalPass runs pass i of the rotation and records its outcome.
func (s *Server) xvalPass(ctx context.Context, i int) {
	ws := trace.Workloads()
	w := ws[i%len(ws)]
	line := xvalLineSizes[(i/len(ws))%len(xvalLineSizes)]
	ctx = obs.WithEngineStats(ctx, s.stats)
	rep, err := model.CrossValidate(ctx, w, 1994, xvalRefs, line, 2, nil)
	if err != nil {
		if s.opts.Logger != nil && ctx.Err() == nil {
			s.opts.Logger.Warn("xval pass failed", "workload", w, "line_size", line, "err", err.Error())
		}
		return
	}
	s.metrics.recordXVal(w, xvalSample{
		LineSize: rep.LineSize,
		MaxAbs:   rep.MaxAbs,
		MeanAbs:  rep.MeanAbs,
		Budget:   rep.Budget,
		Within:   rep.Within,
	})
	if s.opts.Logger != nil && !rep.Within {
		s.opts.Logger.Warn("xval over budget",
			"workload", w, "line_size", line,
			"max_abs_err", fmt.Sprintf("%.4f", rep.MaxAbs),
			"budget", fmt.Sprintf("%.4f", rep.Budget))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n") // a failed write means the client left
}

// mustJSON marshals a response the server itself constructed; a
// failure is a programming error.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg}) // best-effort error body
}
