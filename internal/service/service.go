// Package service implements tradeoffd's HTTP API: the unified
// tradeoff methodology (Eqs. 1–9) and the design-space sweep engine
// behind a JSON interface.
//
// Endpoints:
//
//	POST /v1/tradeoff  price one feature at a design point (ΔHR, the
//	                   miss-count/bus-width ratio r, Eq. 9 line-fill
//	                   time, optional Eq. 2 execution time)
//	POST /v1/sweep     full design-space sweep → JSON or CSV
//	POST /v1/stall     trace-driven stall sweep: replay a workload
//	                   grid and return each point's stall.Result
//	                   decomposition → JSON or CSV
//	GET  /healthz      liveness probe
//	GET  /metrics      expvar counters: requests, errors, cache
//	                   hits/misses, in-flight, per-endpoint latency
//
// All POST endpoints are pure functions of their payloads, so
// responses are memoized in a size-bounded LRU keyed by the
// canonicalized request. Request contexts flow into the worker pools:
// a disconnected client cancels its in-flight sweep or replay. The
// server holds one simjob.Runner for its lifetime, so materialized
// workload traces are shared across /v1/stall requests.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"

	"tradeoff/internal/core"
	"tradeoff/internal/simjob"
	"tradeoff/internal/sweep"
)

// maxBodyBytes bounds request payloads; a sweep config is a few
// hundred bytes, so 1 MiB is already generous.
const maxBodyBytes = 1 << 20

// Options configures a Server. The zero value is ready for production.
type Options struct {
	// CacheEntries bounds the response LRU (default 256).
	CacheEntries int
	// Workers sizes the sweep pool (default 0 = runtime.NumCPU()).
	Workers int
	// Limits bounds untrusted sweep payloads (zero value =
	// sweep.DefaultLimits).
	Limits sweep.Limits
	// StallLimits bounds untrusted stall-grid payloads (zero value =
	// simjob.DefaultLimits).
	StallLimits simjob.Limits
}

// Server is the tradeoffd HTTP service: stateless handlers over the
// shared sweep engine plus a response LRU and expvar counters.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	cache   *lruCache
	metrics *metrics
	runner  *simjob.Runner
}

// New builds a Server with its routes registered.
func New(opts Options) *Server {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 256
	}
	if opts.Limits == (sweep.Limits{}) {
		opts.Limits = sweep.DefaultLimits
	}
	if opts.StallLimits == (simjob.Limits{}) {
		opts.StallLimits = simjob.DefaultLimits
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		cache:   newLRUCache(opts.CacheEntries),
		metrics: newMetrics(),
		runner:  simjob.NewRunner(),
	}
	s.mux.HandleFunc("/v1/tradeoff", s.metrics.instrument("/v1/tradeoff", s.handleTradeoff))
	s.mux.HandleFunc("/v1/sweep", s.metrics.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/stall", s.metrics.instrument("/v1/stall", s.handleStall))
	s.mux.HandleFunc("/healthz", s.metrics.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.metrics.serveHTTP)
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheHits returns the memoization hit count (for tests and ops).
func (s *Server) CacheHits() int64 { return s.metrics.cacheHits.Value() }

// TradeoffRequest is the POST /v1/tradeoff payload. Omitted fields
// take the same defaults as the tradeoff CLI flags.
type TradeoffRequest struct {
	Feature  string   `json:"feature"`             // bus, stall, wbuf or pipe
	HitRatio *float64 `json:"hit_ratio,omitempty"` // base hit ratio (default 0.95)
	Alpha    *float64 `json:"alpha,omitempty"`     // flush ratio (default 0.5)
	L        *float64 `json:"l,omitempty"`         // line size in bytes (default 32)
	D        *float64 `json:"d,omitempty"`         // bus width in bytes (default 4)
	BetaM    *float64 `json:"beta_m,omitempty"`    // memory cycle time (default 10)
	Phi      *float64 `json:"phi,omitempty"`       // stall: stalling factor (default 1)
	Q        *float64 `json:"q,omitempty"`         // pipe: readiness interval (default 2)
	Issue    *float64 `json:"issue,omitempty"`     // issue width (default 1 = Eq. 6)
	// Profile optionally supplies {E, R, W} so the response can include
	// the absolute Eq. (2) execution time of the base system.
	Profile *ProfileRequest `json:"profile,omitempty"`
}

// ProfileRequest is the optional application profile of Table 1.
type ProfileRequest struct {
	E float64 `json:"e"` // instructions executed
	R float64 `json:"r"` // bytes read on misses
	W float64 `json:"w"` // write-around miss count
}

// setDefaults fills nil fields with the CLI defaults so the canonical
// memoization key is independent of which defaults were spelled out.
func (t *TradeoffRequest) setDefaults() {
	def := func(p **float64, v float64) {
		if *p == nil {
			*p = &v
		}
	}
	def(&t.HitRatio, 0.95)
	def(&t.Alpha, 0.5)
	def(&t.L, 32)
	def(&t.D, 4)
	def(&t.BetaM, 10)
	def(&t.Phi, 1)
	def(&t.Q, 2)
	def(&t.Issue, 1)
}

// featureSpec maps the request's feature name onto the core spec —
// the same four names the tradeoff CLI accepts.
func (t *TradeoffRequest) featureSpec() (core.FeatureSpec, error) {
	switch t.Feature {
	case "bus":
		return core.FeatureSpec{Feature: core.FeatureDoubleBus}, nil
	case "stall":
		return core.FeatureSpec{Feature: core.FeaturePartialStall, Phi: *t.Phi}, nil
	case "wbuf":
		return core.FeatureSpec{Feature: core.FeatureWriteBuffers}, nil
	case "pipe":
		return core.FeatureSpec{Feature: core.FeaturePipelinedMemory, Q: *t.Q}, nil
	case "":
		return core.FeatureSpec{}, fmt.Errorf("missing feature (want bus, stall, wbuf or pipe)")
	default:
		return core.FeatureSpec{}, fmt.Errorf("unknown feature %q (want bus, stall, wbuf or pipe)", t.Feature)
	}
}

// TradeoffResponse prices the feature: Eq. (6) ΔHR, the Table 3
// miss-count ratio (the bus-width byte ratio for feature "bus"), and
// the pipelined-memory auxiliaries of Eq. (9).
type TradeoffResponse struct {
	Feature            string  `json:"feature"`
	MissCountRatio     float64 `json:"miss_count_ratio"` // r (Eq. 3 / Table 3)
	S                  float64 `json:"s"`                // Λh/Λm of the base system
	BaseHitRatio       float64 `json:"base_hit_ratio"`
	DeltaHR            float64 `json:"delta_hr"`
	EquivalentHitRatio float64 `json:"equivalent_hit_ratio"`
	Valid              bool    `json:"valid"`
	// BetaP is Eq. (9)'s pipelined line-fill time (feature "pipe").
	BetaP float64 `json:"beta_p,omitempty"`
	// CrossoverBetaM is the βm beyond which pipelining out-trades bus
	// doubling; omitted when infinite (L = 2D) or not applicable.
	CrossoverBetaM float64 `json:"crossover_beta_m,omitempty"`
	// Exec carries the Eq. (2) execution time when a profile was given.
	Exec *ExecResponse `json:"exec,omitempty"`
}

// ExecResponse is the absolute Eq. (2) evaluation of the base
// (full-blocking) system on the supplied profile.
type ExecResponse struct {
	ExecutionCycles   float64 `json:"execution_cycles"`    // Eq. (2)
	MemoryDelayCycles float64 `json:"memory_delay_cycles"` // stall terms of Eq. (2)
	Misses            float64 `json:"misses"`              // Λm = R/L + W (Eq. 1)
}

func (s *Server) handleTradeoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req TradeoffRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.setDefaults()

	key, err := json.Marshal(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.replayCached(w, "tradeoff|"+string(key)) {
		return
	}

	spec, err := req.featureSpec()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	var tr core.Tradeoff
	if *req.Issue > 1 {
		tr, err = core.MultiIssueTradeoff(spec, *req.HitRatio, *req.Alpha, *req.L, *req.D, *req.BetaM, *req.Issue)
	} else {
		tr, err = core.FeatureTradeoff(spec, *req.HitRatio, *req.Alpha, *req.L, *req.D, *req.BetaM)
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := TradeoffResponse{
		Feature:            tr.Feature.String(),
		MissCountRatio:     tr.R,
		S:                  tr.S,
		BaseHitRatio:       tr.BaseHR,
		DeltaHR:            tr.DeltaHR,
		EquivalentHitRatio: tr.NewHR,
		Valid:              tr.Valid,
	}
	if spec.Feature == core.FeaturePipelinedMemory {
		resp.BetaP = core.BetaP(*req.BetaM, *req.Q, *req.L, *req.D)
		if x, err := core.PipelineCrossover(*req.Q, *req.L, *req.D); err == nil && !math.IsInf(x, 0) {
			resp.CrossoverBetaM = x
		}
	}
	if req.Profile != nil {
		p := core.Params{
			E: req.Profile.E, R: req.Profile.R, W: req.Profile.W,
			Alpha: *req.Alpha, D: *req.D, L: *req.L, BetaM: *req.BetaM,
		}
		p = p.WithFullStall()
		if err := p.Validate(); err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		resp.Exec = &ExecResponse{
			ExecutionCycles:   core.ExecutionTime(p),
			MemoryDelayCycles: core.MemoryDelayCycles(p),
			Misses:            p.Misses(),
		}
	}
	s.writeAndCache(w, "tradeoff|"+string(key), "application/json", mustJSON(resp))
}

// SweepResponse is the JSON shape of POST /v1/sweep.
type SweepResponse struct {
	Count       int            `json:"count"`
	ParetoCount int            `json:"pareto_count"`
	Designs     []sweep.Design `json:"designs"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := sweep.ParseConfig(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := cfg.CheckLimits(s.opts.Limits); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	format, err := sweepFormat(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	canon, err := cfg.Canonical()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := "sweep|" + format + "|" + string(canon)
	if s.replayCached(w, key) {
		return
	}

	designs, err := sweep.Run(r.Context(), cfg, s.opts.Workers)
	switch {
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		// Client went away; nobody is reading, don't poison counters
		// with a 5xx nor cache a partial result.
		httpError(w, statusClientClosedRequest, "request cancelled")
		return
	case err != nil:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	if format == "csv" {
		var buf bytes.Buffer
		if err := sweep.WriteCSV(&buf, designs); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.writeAndCache(w, key, "text/csv; charset=utf-8", buf.Bytes())
		return
	}
	resp := SweepResponse{Count: len(designs), ParetoCount: sweep.ParetoCount(designs), Designs: designs}
	s.writeAndCache(w, key, "application/json", mustJSON(resp))
}

// StallResponse is the JSON shape of POST /v1/stall.
type StallResponse struct {
	Count  int                  `json:"count"`
	Points []simjob.PointResult `json:"points"`
}

func (s *Server) handleStall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	grid, err := simjob.ParseGrid(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := grid.CheckLimits(s.opts.StallLimits); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	format, err := sweepFormat(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	canon, err := grid.Canonical()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := "stall|" + format + "|" + string(canon)
	if s.replayCached(w, key) {
		return
	}

	points, err := s.runner.RunGrid(r.Context(), grid, s.opts.Workers)
	switch {
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		// Client went away; nobody is reading, don't poison counters
		// with a 5xx nor cache a partial result.
		httpError(w, statusClientClosedRequest, "request cancelled")
		return
	case err != nil:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	if format == "csv" {
		var buf bytes.Buffer
		if err := simjob.WriteCSV(&buf, points); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.writeAndCache(w, key, "text/csv; charset=utf-8", buf.Bytes())
		return
	}
	resp := StallResponse{Count: len(points), Points: points}
	s.writeAndCache(w, key, "application/json", mustJSON(resp))
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was written.
const statusClientClosedRequest = 499

// sweepFormat picks the response encoding: ?format=csv|json wins,
// otherwise an Accept: text/csv header, otherwise JSON.
func sweepFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "csv", "json":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want json or csv)", f)
	}
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/csv") {
		return "csv", nil
	}
	return "json", nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n") // a failed write means the client left
}

// replayCached serves a memoized response if present, counting the
// hit/miss either way.
func (s *Server) replayCached(w http.ResponseWriter, key string) bool {
	resp, ok := s.cache.get(key)
	if !ok {
		s.metrics.cacheMisses.Add(1)
		return false
	}
	s.metrics.cacheHits.Add(1)
	w.Header().Set("Content-Type", resp.contentType)
	w.Header().Set("X-Cache", "hit")
	_, _ = w.Write(resp.body) // a failed write means the client left
	return true
}

// writeAndCache sends a fresh response and memoizes it.
func (s *Server) writeAndCache(w http.ResponseWriter, key, contentType string, body []byte) {
	s.cache.put(key, cachedResponse{contentType: contentType, body: body})
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Cache", "miss")
	_, _ = w.Write(body) // a failed write means the client left
}

// decodeJSON decodes a bounded request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// mustJSON marshals a response the server itself constructed; a
// failure is a programming error.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg}) // best-effort error body
}
