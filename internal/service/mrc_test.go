package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// mrcSweepBody is a small MRC-backed sweep request; sim_refs stays low
// so the test profiles quickly.
const mrcSweepBody = `{
  "cache_kb":    [4, 8, 16, 32],
  "line_bytes":  [32, 64],
  "bus_bits":    [32],
  "latency_ns":  360,
  "transfer_ns": 60,
  "cpu_ns":      30,
  "sim_refs":    10000,
  "hit_source":  "mrc:ear"
}`

// TestSweepMRCSource drives the "mrc:" hit source through POST
// /v1/sweep: first request computes, second replays from the response
// memo, and the server-lifetime curve cache holds one curve per line
// size.
func TestSweepMRCSource(t *testing.T) {
	s, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/sweep", mrcSweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if sr.Count != 8 {
		t.Fatalf("count %d, want 8", sr.Count)
	}
	for _, d := range sr.Designs {
		if d.HitRatio <= 0 || d.HitRatio >= 1 {
			t.Fatalf("design %+v hit ratio outside (0, 1)", d)
		}
	}
	if got := s.curves.Len(); got != 2 {
		t.Fatalf("curve cache holds %d curves, want 2 (one per line size)", got)
	}
	resp2, _ := post(t, ts.URL+"/v1/sweep", mrcSweepBody)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
}

// TestSweepSampledMRCSource covers the "mrc~:" source and its sampler
// knobs over the wire, including a domain rejection.
func TestSweepSampledMRCSource(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{
	  "cache_kb": [8, 32], "line_bytes": [64], "bus_bits": [32],
	  "latency_ns": 360, "transfer_ns": 60, "cpu_ns": 30,
	  "sim_refs": 10000, "hit_source": "mrc~:doduc",
	  "mrc_rate": 0.25, "mrc_budget": 4096
	}`
	resp, data := post(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	bad := `{
	  "cache_kb": [8], "line_bytes": [64], "bus_bits": [32],
	  "latency_ns": 360, "transfer_ns": 60, "cpu_ns": 30,
	  "hit_source": "mrc~:doduc", "mrc_rate": 7
	}`
	resp, data = post(t, ts.URL+"/v1/sweep", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-domain mrc_rate: status %d, want 400: %s", resp.StatusCode, data)
	}
}
