// Package obs is the repo's dependency-free observability core:
// context-propagated tracing spans exportable as Chrome trace_event
// JSON, lock-cheap log-bucketed latency histograms with quantile
// estimation, a leveled key=value logger, and request-ID plumbing.
//
// The package deliberately depends on nothing but the standard
// library, so every layer — internal/engine, internal/service, the
// CLIs — can instrument itself without import cycles or new
// dependencies. The instrumentation hooks live in the engine (see
// engine.Map and engine.Memo), so any consumer that threads a
// context through the engine gets per-job spans and queue-wait
// accounting for free; consumers that don't install a Tracer pay a
// couple of nil checks per job and nothing else.
//
// Everything flows through the context:
//
//	ctx = obs.WithTracer(ctx, tracer)     // spans (nil-safe when absent)
//	ctx = obs.WithEngineStats(ctx, st)    // engine histograms/counters
//	ctx = obs.WithLogger(ctx, logger)     // structured logging
//	ctx = obs.WithRequestID(ctx, id)      // request correlation
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// ctxKey is the private type for this package's context keys.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	spanNameKey
	engineStatsKey
	loggerKey
	requestIDKey
)

// WithTracer returns a context whose engine jobs and explicit
// StartSpan calls record into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's Tracer, or nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithSpanName overrides the name engine.Map gives its per-item spans
// (default "map"), so a sweep's points trace as "sweep_point" and a
// replay's as "replay_point" without the engine knowing either caller.
func WithSpanName(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, spanNameKey, name)
}

// SpanName returns the context's engine span name, or def.
func SpanName(ctx context.Context, def string) string {
	if n, ok := ctx.Value(spanNameKey).(string); ok && n != "" {
		return n
	}
	return def
}

// CurrentSpan returns the innermost span started on this context, or
// nil. Engine workers use it to let job functions annotate the span
// that wraps them (e.g. naming the experiment an item evaluates).
func CurrentSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// WithEngineStats returns a context whose engine.Map and engine.Memo
// calls record into st's histograms and counters.
func WithEngineStats(ctx context.Context, st *EngineStats) context.Context {
	return context.WithValue(ctx, engineStatsKey, st)
}

// EngineStatsFrom returns the context's EngineStats, or nil.
func EngineStatsFrom(ctx context.Context) *EngineStats {
	st, _ := ctx.Value(engineStatsKey).(*EngineStats)
	return st
}

// WithLogger returns a context carrying l.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's Logger. The zero return is nil,
// which every Logger method accepts as "logging off".
func LoggerFrom(ctx context.Context) *Logger {
	l, _ := ctx.Value(loggerKey).(*Logger)
	return l
}

// WithRequestID returns a context carrying the request's correlation
// ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-digit request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; IDs only
		// correlate log lines, so degrade to a constant rather than die.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied X-Request-ID is
// safe to echo into headers and log lines: 1–64 bytes of
// [A-Za-z0-9._-]. Anything else is replaced with a generated ID so a
// hostile header cannot inject log fields or control characters.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
