package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket boundary maps into its own bucket, and bucketLow is
	// the exact inverse on boundaries.
	for i := 0; i < numBuckets; i++ {
		lo := bucketLow(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, lo, got)
		}
	}
	// Monotone: a larger value never lands in an earlier bucket.
	prev := 0
	for v := int64(0); v < 1<<20; v += 997 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
	}
	// The largest int64 stays in range.
	if idx := bucketIndex(math.MaxInt64); idx >= numBuckets {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want < %d", idx, numBuckets)
	}
}

func TestHistogramCountSumMax(t *testing.T) {
	h := NewHistogram("test_duration")
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Name() != "test_duration" {
		t.Fatalf("name = %q", h.Name())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("test_quantiles")
	// A uniform distribution of 1..1000 µs; the log-linear buckets
	// bound the relative error at 1/2^subBits.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		relErr := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if relErr > 1.0/(1<<subBits)+0.01 {
			t.Errorf("p%.0f = %v, want ≈%v (rel err %.3f)", tc.q*100, got, tc.want, relErr)
		}
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("p100 = %v, want max %v", got, h.Max())
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram("test_empty")
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Observe(-time.Second) // clamps to zero, never panics
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("test_concurrent")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*each+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	if h.Max() != time.Duration(workers*each-1) {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("test_total")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 || c.Name() != "test_total" {
		t.Fatalf("counter = %d (%q)", c.Value(), c.Name())
	}
}
