package obs

import (
	"fmt"
	"testing"
	"time"
)

// TestExemplarsEvictOldestFirst is the regression test for the
// exemplar budget: a burst of captures beyond the budget must keep
// the newest evidence and evict strictly oldest-first.
func TestExemplarsEvictOldestFirst(t *testing.T) {
	x := NewExemplars(3)
	for i := 0; i < 10; i++ {
		x.Add(Exemplar{
			RequestID: fmt.Sprintf("req-%d", i),
			Time:      time.Date(2026, 8, 8, 12, 0, i, 0, time.UTC),
		})
	}
	if got := x.Captured(); got != 10 {
		t.Fatalf("Captured() = %d, want 10", got)
	}
	if got := x.Len(); got != 3 {
		t.Fatalf("Len() = %d, want budget 3", got)
	}
	snap := x.Snapshot()
	want := []string{"req-9", "req-8", "req-7"} // newest first
	for i, id := range want {
		if snap[i].RequestID != id {
			t.Fatalf("snapshot[%d] = %s, want %s (full: %+v)", i, snap[i].RequestID, id, snap)
		}
	}
}

func TestExemplarsMinimumBudget(t *testing.T) {
	x := NewExemplars(0)
	x.Add(Exemplar{RequestID: "a"})
	x.Add(Exemplar{RequestID: "b"})
	if x.Len() != 1 || x.Snapshot()[0].RequestID != "b" {
		t.Fatalf("budget-0 store = %+v, want just the newest", x.Snapshot())
	}
}
