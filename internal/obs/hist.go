package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// subBits sets the histogram's resolution: each power-of-two range is
// split into 2^subBits linear sub-buckets, bounding the relative
// quantile error at 1/2^subBits ≈ 6%.
const subBits = 4

// numBuckets covers every non-negative int64 duration: 16 linear
// buckets below 16ns, then 16 sub-buckets per power of two up to 2^63.
const numBuckets = (64-subBits)<<subBits + 1<<subBits // 976

// Histogram is a lock-free log-linear latency histogram: Observe is a
// handful of atomic adds (no mutex, no allocation), making it cheap
// enough for per-job engine instrumentation, and quantiles are
// estimated from the bucket counts with ≤ ~6% relative error.
//
// Values are durations; negative observations clamp to zero. The name
// identifies the metric in Prometheus exposition and is checked for
// snake_case and per-package uniqueness by the metricreg analyzer.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram named name (snake_case; the
// metricreg analyzer enforces the scheme and flags duplicate
// registrations at build time — there is no runtime registry to
// panic).
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the covering bucket.
// It returns 0 when the histogram is empty. Concurrent Observes make
// the estimate approximate, never invalid.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketLow(i), bucketLow(i+1)
			// Interpolate the rank's position within this bucket.
			frac := float64(rank-seen) / float64(n+1)
			est := float64(lo) + frac*float64(hi-lo)
			if m := h.max.Load(); est > float64(m) {
				est = float64(m) // never report beyond the observed max
			}
			return time.Duration(est)
		}
		seen += n
	}
	return h.Max()
}

// bucketIndex maps a non-negative nanosecond value to its bucket: the
// identity below 2^subBits, then log-linear (HDR-histogram style)
// above.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 1<<subBits {
		return int(u)
	}
	msb := bits.Len64(u) - 1
	shift := msb - subBits
	return (shift+1)<<subBits + int((u>>shift)&(1<<subBits-1))
}

// bucketLow is bucketIndex's inverse: the smallest value landing in
// bucket i.
func bucketLow(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	shift := i>>subBits - 1
	sub := int64(i & (1<<subBits - 1))
	return (1<<subBits + sub) << shift
}

// Counter is a named atomic counter — the obs sibling of expvar.Int
// for code that must stay expvar-free (the engine), with the same
// metricreg-enforced naming scheme.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter returns a zero counter named name (snake_case, checked
// by the metricreg analyzer).
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// EngineStats bundles the engine-level instruments engine.Map and
// engine.Memo record into when a context carries one (see
// WithEngineStats): where each parallel job's time went — waiting for
// a worker slot versus evaluating — and how the memoization layer's
// flights resolved.
type EngineStats struct {
	// Eval observes each Map item's fn execution time.
	Eval *Histogram
	// QueueWait observes each Map item's wait between Map entry and a
	// worker picking it up.
	QueueWait *Histogram
	// MemoHit / MemoMiss / MemoShared count Memo.Do outcomes: served
	// from cache, computed by this call, or shared with another
	// caller's in-flight computation.
	MemoHit    *Counter
	MemoMiss   *Counter
	MemoShared *Counter
}

// NewEngineStats returns an EngineStats with the canonical metric
// names used by the service's Prometheus exposition.
func NewEngineStats() *EngineStats {
	return &EngineStats{
		Eval:       NewHistogram("engine_eval_duration"),
		QueueWait:  NewHistogram("engine_queue_wait_duration"),
		MemoHit:    NewCounter("engine_memo_hits"),
		MemoMiss:   NewCounter("engine_memo_misses"),
		MemoShared: NewCounter("engine_memo_shared_flights"),
	}
}
