package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// t0 is an arbitrary fixed epoch; flight timestamps are relative.
var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func rec(name string, startUS, durUS int64, tid int) SpanRecord {
	return SpanRecord{
		Name:  name,
		Start: t0.Add(time.Duration(startUS) * time.Microsecond),
		Dur:   time.Duration(durUS) * time.Microsecond,
		TID:   tid,
	}
}

func TestSpanRingOverwritesOldest(t *testing.T) {
	r := NewSpanRing(16)
	for i := 0; i < 40; i++ {
		r.Record(rec(fmt.Sprintf("s%d", i), int64(i)*10, 5, 0))
	}
	if got := r.Recorded(); got != 40 {
		t.Fatalf("Recorded() = %d, want 40", got)
	}
	snap := r.Snapshot(time.Time{})
	if len(snap) != 16 {
		t.Fatalf("kept %d spans, want capacity 16", len(snap))
	}
	// Oldest retained is s24: 40 recorded into 16 slots.
	if snap[0].Name != "s24" || snap[15].Name != "s39" {
		t.Fatalf("retained window [%s, %s], want [s24, s39]", snap[0].Name, snap[15].Name)
	}
}

func TestSpanRingSnapshotWindow(t *testing.T) {
	r := NewSpanRing(64)
	r.Record(rec("old", 0, 10, 0))
	r.Record(rec("recent", 100, 10, 0))
	since := t0.Add(50 * time.Microsecond)
	snap := r.Snapshot(since)
	if len(snap) != 1 || snap[0].Name != "recent" {
		t.Fatalf("Snapshot(since) = %+v, want just \"recent\"", snap)
	}
}

func TestSpanRingSnapshotOrder(t *testing.T) {
	r := NewSpanRing(16)
	r.Record(rec("child", 10, 5, 0))
	r.Record(rec("parent", 10, 50, 0))
	r.Record(rec("first", 0, 5, 0))
	snap := r.Snapshot(time.Time{})
	want := []string{"first", "parent", "child"} // start asc, ties longer-first
	for i, name := range want {
		if snap[i].Name != name {
			t.Fatalf("snapshot order %v, want %v", names(snap), want)
		}
	}
}

func names(recs []SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

// flightLaneCheck replays a flight dump the way cmd/tracecheck does:
// per-lane monotonic timestamps and properly nested same-name B/E
// pairs with nothing left open.
func flightLaneCheck(t *testing.T, dump []byte) (spans int) {
	t.Helper()
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(dump, &events); err != nil {
		t.Fatalf("flight dump is not a JSON array: %v\n%s", err, dump)
	}
	lastTS := map[int]float64{}
	stacks := map[int][]string{}
	for i, ev := range events {
		if ev.TS < 0 {
			t.Fatalf("event %d (%s): negative ts %v", i, ev.Name, ev.TS)
		}
		if prev, ok := lastTS[ev.TID]; ok && ev.TS < prev {
			t.Fatalf("event %d (%s): lane %d goes back in time (%v after %v)", i, ev.Name, ev.TID, ev.TS, prev)
		}
		lastTS[ev.TID] = ev.TS
		switch ev.Ph {
		case "B":
			stacks[ev.TID] = append(stacks[ev.TID], ev.Name)
			spans++
		case "E":
			st := stacks[ev.TID]
			if len(st) == 0 || st[len(st)-1] != ev.Name {
				t.Fatalf("event %d: E %q does not match lane %d stack %v", i, ev.Name, ev.TID, st)
			}
			stacks[ev.TID] = st[:len(st)-1]
		default:
			t.Fatalf("event %d (%s): phase %q, want B or E", i, ev.Name, ev.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			t.Fatalf("lane %d left open spans %v", tid, st)
		}
	}
	return spans
}

func TestWriteFlightBalancedAndMonotonic(t *testing.T) {
	r := NewSpanRing(64)
	// Two overlapping "requests" that both recorded on lane 0, each
	// with a nested child — the shape that forces lane re-assignment.
	r.Record(rec("child_a", 10, 20, 0))
	r.Record(rec("request_a", 0, 100, 0))
	r.Record(rec("child_b", 60, 30, 0))
	r.Record(rec("request_b", 50, 100, 0))
	// A span that ends exactly when the next one starts on its lane.
	r.Record(rec("tail_1", 200, 50, 0))
	r.Record(rec("tail_2", 250, 50, 0))

	var buf bytes.Buffer
	if err := WriteFlight(&buf, r.Snapshot(time.Time{}), t0); err != nil {
		t.Fatal(err)
	}
	if got := flightLaneCheck(t, buf.Bytes()); got != 6 {
		t.Fatalf("dump holds %d spans, want 6", got)
	}
}

func TestWriteFlightKeepsOriginalLaneArg(t *testing.T) {
	r := NewSpanRing(16)
	r.Record(rec("s", 0, 10, 7))
	var buf bytes.Buffer
	if err := WriteFlight(&buf, r.Snapshot(time.Time{}), t0); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if lane, ok := events[0].Args["lane"].(float64); !ok || lane != 7 {
		t.Fatalf("B event args = %v, want lane 7", events[0].Args)
	}
}

func TestWriteFlightEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFlight(&buf, nil, t0); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty dump = %q (err %v), want []", buf.Bytes(), err)
	}
}

// TestSpanRingConcurrentRecordAndDump is the -race test for the
// recorder's core claim: writers are never blocked on (or racing
// with) a concurrent dump.
func TestSpanRingConcurrentRecordAndDump(t *testing.T) {
	r := NewSpanRing(128)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(SpanRecord{
					Name:  "span",
					Start: time.Now(),
					Dur:   time.Duration(i%100) * time.Microsecond,
					TID:   w,
					Args:  map[string]any{"i": i},
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for dumping := true; dumping; {
		select {
		case <-done:
			dumping = false
		default:
		}
		var buf bytes.Buffer
		if err := WriteFlight(&buf, r.Snapshot(time.Now().Add(-time.Second)), t0); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded() = %d, want %d", got, writers*perWriter)
	}
}

// TestTracerTeesIntoRing pins the recorder seam: spans completed on a
// request tracer land in the global ring, and the per-request event
// limit drops locally without losing ring records.
func TestTracerTeesIntoRing(t *testing.T) {
	ring := NewSpanRing(64)
	tr := NewRequestTracer(ring, 2)
	for i := 0; i < 5; i++ {
		s := &Span{tracer: tr, name: fmt.Sprintf("s%d", i), start: tr.now()}
		s.End()
	}
	if got := ring.Recorded(); got != 5 {
		t.Fatalf("ring recorded %d spans, want all 5", got)
	}
	if got := tr.Len(); got != 2 {
		t.Fatalf("tracer kept %d events, want limit 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("tracer dropped %d events, want 3", got)
	}
}

func BenchmarkSpanRingRecord(b *testing.B) {
	r := NewSpanRing(8192)
	rec := SpanRecord{Name: "bench", Start: time.Now(), Dur: time.Millisecond, TID: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(rec)
	}
}
