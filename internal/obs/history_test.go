package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistoryTickAndGet(t *testing.T) {
	h := NewHistory(10*time.Second, time.Minute)
	var v float64
	h.Register("test_series", func() float64 { return v })

	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		v = float64(i * 10)
		h.Tick(base.Add(time.Duration(i) * 10 * time.Second))
	}
	samples, ok := h.Get("test_series", time.Time{})
	if !ok || len(samples) != 4 {
		t.Fatalf("Get = %v ok=%v, want 4 samples", samples, ok)
	}
	if samples[3].V != 30 {
		t.Fatalf("last sample %v, want 30", samples[3])
	}
	// Windowed query drops the early samples.
	since := base.Add(15 * time.Second)
	samples, _ = h.Get("test_series", since)
	if len(samples) != 2 || samples[0].V != 20 {
		t.Fatalf("windowed Get = %v, want samples at 20s and 30s", samples)
	}
	if _, ok := h.Get("no_such_series", time.Time{}); ok {
		t.Fatal("unknown series reported ok")
	}
}

func TestHistoryRingWraps(t *testing.T) {
	h := NewHistory(time.Second, 4*time.Second) // capacity 4
	n := 0.0
	h.Register("wrap_series", func() float64 { n++; return n })
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		h.Tick(base.Add(time.Duration(i) * time.Second))
	}
	samples, _ := h.Get("wrap_series", time.Time{})
	if len(samples) != 4 {
		t.Fatalf("kept %d samples, want capacity 4", len(samples))
	}
	// Oldest-first after wrap: values 7,8,9,10.
	for i, want := range []float64{7, 8, 9, 10} {
		if samples[i].V != want {
			t.Fatalf("samples = %v, want values 7..10 in order", samples)
		}
	}
}

func TestHistoryDeltaAndMax(t *testing.T) {
	h := NewHistory(time.Second, time.Minute)
	v := 0.0
	h.Register("counter_total", func() float64 { return v })
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, val := range []float64{5, 9, 100, 40} {
		v = val
		h.Tick(base.Add(time.Duration(i) * time.Second))
	}
	first, last, ok := h.Delta("counter_total", time.Time{})
	if !ok || first.V != 5 || last.V != 40 {
		t.Fatalf("Delta = %v..%v ok=%v, want 5..40", first, last, ok)
	}
	mx, ok := h.Max("counter_total", time.Time{})
	if !ok || mx != 100 {
		t.Fatalf("Max = %v ok=%v, want 100", mx, ok)
	}
	if _, _, ok := h.Delta("counter_total", base.Add(10*time.Second)); ok {
		t.Fatal("Delta on an empty window reported ok")
	}
}

func TestHistorySanitizesNonFinite(t *testing.T) {
	h := NewHistory(time.Second, time.Minute)
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	i := 0
	h.Register("weird_series", func() float64 { v := vals[i%len(vals)]; i++; return v })
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for k := 0; k < 3; k++ {
		h.Tick(base.Add(time.Duration(k) * time.Second))
	}
	samples, _ := h.Get("weird_series", time.Time{})
	for _, s := range samples {
		if s.V != 0 {
			t.Fatalf("non-finite sample leaked: %v", samples)
		}
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf, nil, time.Time{}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteJSON produced invalid JSON: %s", buf.Bytes())
	}
}

func TestHistoryWriteJSONShape(t *testing.T) {
	h := NewHistory(10*time.Second, time.Minute)
	h.Register("series_a", func() float64 { return 1 })
	h.Register("series_b", func() float64 { return 2 })
	h.Tick(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf, []string{"series_a", "missing"}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalMS int64               `json:"interval_ms"`
		Series     map[string][]Sample `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.IntervalMS != 10000 {
		t.Fatalf("interval_ms = %d, want 10000", doc.IntervalMS)
	}
	if len(doc.Series["series_a"]) != 1 || doc.Series["series_a"][0].V != 1 {
		t.Fatalf("series_a = %v", doc.Series["series_a"])
	}
	if got, ok := doc.Series["missing"]; !ok || len(got) != 0 {
		t.Fatalf("missing series = %v ok=%v, want present and empty", got, ok)
	}
	if _, ok := doc.Series["series_b"]; ok {
		t.Fatal("unrequested series_b rendered")
	}
}

func TestHistorySubscribe(t *testing.T) {
	h := NewHistory(time.Second, time.Minute)
	h.Register("sub_series", func() float64 { return 42 })
	ch, cancel := h.Subscribe(2)
	snap := h.Tick(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	got := <-ch
	if got.T != snap.T || got.Values["sub_series"] != 42 {
		t.Fatalf("subscriber got %+v, want %+v", got, snap)
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	cancel() // idempotent: must not close twice (would panic)
}

// TestHistorySubscribeChurn is the -race test for concurrent
// subscribe/unsubscribe while the tick loop fans out.
func TestHistorySubscribeChurn(t *testing.T) {
	h := NewHistory(time.Second, time.Minute)
	h.Register("churn_series", func() float64 { return 1 })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
		for {
			select {
			case <-stop:
				return
			default:
			}
			now = now.Add(time.Second)
			h.Tick(now)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ch, cancel := h.Subscribe(1)
				select { // drain at most one tick; slow subscribers just drop
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	// Concurrent windowed reads against the ticking store.
	for i := 0; i < 200; i++ {
		h.Get("churn_series", time.Time{})
	}
	close(stop)
	wg.Wait()
}

func TestHistoryRegisterHistogramAndCounter(t *testing.T) {
	h := NewHistory(time.Second, time.Minute)
	hist := NewHistogram("reg_test_duration")
	hist.Observe(100 * time.Millisecond)
	c := NewCounter("reg_test_total")
	c.Add(7)
	h.RegisterHistogram(hist)
	h.RegisterCounter(c)
	snap := h.Tick(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if snap.Values["reg_test_duration_count"] != 1 {
		t.Fatalf("histogram count series = %v", snap.Values)
	}
	if snap.Values["reg_test_duration_p99_ns"] <= 0 {
		t.Fatalf("histogram p99 series = %v", snap.Values)
	}
	if snap.Values["reg_test_total"] != 7 {
		t.Fatalf("counter series = %v", snap.Values)
	}
}

func TestRegisterRuntimeSeries(t *testing.T) {
	h := NewHistory(time.Second, time.Minute)
	RegisterRuntimeSeries(h)
	snap := h.Tick(time.Now())
	if snap.Values["runtime_heap_bytes"] <= 0 {
		t.Fatalf("runtime_heap_bytes = %v, want > 0", snap.Values["runtime_heap_bytes"])
	}
	if snap.Values["runtime_goroutines"] < 1 {
		t.Fatalf("runtime_goroutines = %v, want >= 1", snap.Values["runtime_goroutines"])
	}
	for _, name := range []string{"runtime_gc_cycles", "runtime_gc_pause_p99_ns", "runtime_sched_latency_p99_ns"} {
		if _, ok := snap.Values[name]; !ok {
			t.Fatalf("series %s missing from snapshot", name)
		}
	}
}

func BenchmarkSnapshotTick(b *testing.B) {
	h := NewHistory(10*time.Second, time.Hour)
	RegisterRuntimeSeries(h)
	for i := 0; i < 20; i++ {
		hist := NewHistogram(fmt.Sprintf("bench_hist_%d", i))
		hist.Observe(time.Millisecond)
		h.RegisterHistogram(hist)
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(10 * time.Second)
		h.Tick(now)
	}
}
