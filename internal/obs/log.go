package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a flag value onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// Logger writes leveled key=value lines:
//
//	ts=2026-08-06T12:00:00.000Z level=info msg="listening" addr=:8080
//
// Lines below the logger's level are dropped before formatting. A nil
// *Logger is valid and logs nothing, so call sites never need a nil
// check. With derives child loggers carrying bound fields (a request
// ID, a subsystem name) that prefix every line.
type Logger struct {
	mu    *sync.Mutex // shared across With-derived children
	w     io.Writer
	level Level
	bound string           // pre-rendered " k=v k=v" suffix
	now   func() time.Time // test hook; defaults to time.Now
}

// NewLogger returns a Logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, now: time.Now}
}

// With returns a child logger whose lines carry the given key/value
// pairs after the message. Pairs are alternating key, value; a
// trailing odd key gets the value "(missing)".
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	var b strings.Builder
	b.WriteString(l.bound)
	appendPairs(&b, kv)
	child.bound = b.String()
	return &child
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.level }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(l.bound)
	appendPairs(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String()) // logging best-effort by design
}

// appendPairs renders alternating key/value pairs as " k=v".
func appendPairs(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := "(missing)"
		if i+1 < len(kv) {
			val = fmt.Sprint(kv[i+1])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quoteValue(val))
	}
}

// quoteValue quotes a value only when it needs it — spaces, quotes,
// '=' or control characters — keeping the common case grep-friendly.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
