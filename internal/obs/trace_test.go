package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// fixedClock returns a now() hook that advances a fixed step per call,
// making span timestamps deterministic.
func fixedClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		cur := t
		t = t.Add(step)
		return cur
	}
}

func TestSpanRecordsAndExports(t *testing.T) {
	tr := NewTracer()
	tr.now = fixedClock(tr.epoch, time.Millisecond)

	ctx := WithTracer(context.Background(), tr)
	ctx, outer := StartSpan(ctx, "outer")
	outer.SetTID(3)
	outer.SetArg("slot", 3)
	_, inner := StartSpan(ctx, "inner")
	inner.End()
	outer.End()
	outer.End() // double End records once

	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	// inner ended first, so it is recorded first.
	if events[0].Name != "inner" || events[1].Name != "outer" {
		t.Fatalf("names = %q, %q", events[0].Name, events[1].Name)
	}
	// inner inherits outer's lane (set before inner started).
	if events[0].TID != 3 || events[1].TID != 3 {
		t.Fatalf("tids = %d, %d, want 3, 3", events[0].TID, events[1].TID)
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.PID != 1 || ev.Dur < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	if events[1].Args["slot"] != float64(3) {
		t.Fatalf("outer args = %v", events[1].Args)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "nothing")
	if span != nil {
		t.Fatal("span without tracer should be nil")
	}
	// All nil-span methods are safe.
	span.SetTID(1)
	span.SetArg("k", "v")
	span.End()
	if CurrentSpan(ctx) != nil {
		t.Fatal("no span should be attached")
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("%d events, want 0", len(events))
	}
}

func TestSpanNameContext(t *testing.T) {
	ctx := context.Background()
	if got := SpanName(ctx, "map"); got != "map" {
		t.Fatalf("default span name = %q", got)
	}
	ctx = WithSpanName(ctx, "sweep_point")
	if got := SpanName(ctx, "map"); got != "sweep_point" {
		t.Fatalf("span name = %q", got)
	}
}
