package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer collects completed spans and exports them in the Chrome
// trace_event format ("Trace Event Format", the JSON array of "X"
// complete events chrome://tracing and Perfetto load directly).
// Timestamps are microseconds relative to the tracer's creation.
//
// A Tracer is safe for concurrent use; spans from engine.Map workers
// land in one shared event list.
type Tracer struct {
	epoch time.Time
	now   func() time.Time // test hook; defaults to time.Now

	// ring, when set, receives a copy of every completed span — the
	// tee into the always-on flight recorder (see SpanRing).
	ring *SpanRing
	// limit, when > 0, bounds the retained event list; spans completed
	// beyond it still reach the ring but are dropped from events, so a
	// per-request tracer cannot grow without bound on a huge sweep.
	limit int

	mu      sync.Mutex
	events  []traceEvent
	dropped int64
}

// traceEvent is one complete ("ph":"X") trace_event record. pid is
// always 1 — one process — and tid maps onto engine worker slots, so
// a trace renders as one lane per worker with nested spans.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // start, µs since tracer epoch
	Dur  float64        `json:"dur"` // duration, µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.epoch = t.now()
	return t
}

// NewRequestTracer returns the tracer the service installs on every
// request when the flight recorder is on: completed spans tee into
// ring, and at most limit of them (0 = unlimited) are retained
// locally for tail-based exemplar capture.
func NewRequestTracer(ring *SpanRing, limit int) *Tracer {
	t := NewTracer()
	// The tracer is not shared yet, but limit is mutex-guarded at its
	// read sites; taking the uncontended lock here keeps that invariant
	// whole-program (and lockguard-checkable).
	t.mu.Lock()
	t.ring = ring
	t.limit = limit
	t.mu.Unlock()
	return t
}

// Dropped returns how many spans the event limit discarded.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one in-progress traced operation. The zero of the API is a
// nil *Span: every method is a no-op on nil, so callers instrument
// unconditionally and pay nothing when tracing is off.
//
// A Span is owned by the goroutine that started it; SetArg and End
// must not race with each other.
type Span struct {
	tracer *Tracer
	name   string
	tid    int
	start  time.Time
	args   map[string]any
	ended  bool
}

// StartSpan begins a span named name on the context's tracer and
// returns a derived context carrying it, so child spans nest inside
// it (they inherit its lane). Without a tracer it returns ctx and a
// nil span, both safe to use.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{tracer: t, name: name, start: t.now()}
	if parent := CurrentSpan(ctx); parent != nil {
		s.tid = parent.tid
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetTID moves the span onto lane tid — engine.Map pins each worker
// slot to its own lane so traces render one row per worker.
func (s *Span) SetTID(tid int) {
	if s == nil {
		return
	}
	s.tid = tid
}

// SetArg attaches a key/value to the span's trace_event args.
func (s *Span) SetArg(key string, val any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = val
}

// End completes the span and records it. Calling End twice records
// once.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.tracer
	end := t.now()
	ev := traceEvent{
		Name: s.name,
		Ph:   "X",
		TS:   float64(s.start.Sub(t.epoch).Nanoseconds()) / 1e3,
		Dur:  float64(end.Sub(s.start).Nanoseconds()) / 1e3,
		PID:  1,
		TID:  s.tid,
		Args: s.args,
	}
	t.mu.Lock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
	if t.ring != nil {
		t.ring.Record(SpanRecord{Name: s.name, Start: s.start, Dur: end.Sub(s.start), TID: s.tid, Args: s.args})
	}
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the completed spans as a trace_event JSON array,
// one event per line so traces diff readably.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(data, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// JSON returns the completed spans as a trace_event JSON array — the
// payload exemplar capture pins for a slow request.
func (t *Tracer) JSON() []byte {
	var buf bytes.Buffer
	if err := t.WriteJSON(&buf); err != nil {
		return []byte("[]\n") // only a Marshal failure, which traceEvent cannot produce
	}
	return buf.Bytes()
}

// WriteFile writes the trace_event JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
