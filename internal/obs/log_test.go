package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func testLogger(buf *bytes.Buffer, level Level) *Logger {
	l := NewLogger(buf, level)
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	l.now = func() time.Time { return fixed }
	return l
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelInfo)
	l.Info("listening", "addr", ":8080", "workers", 4)
	want := `ts=2026-08-06T12:00:00.000Z level=info msg=listening addr=:8080 workers=4` + "\n"
	if buf.String() != want {
		t.Fatalf("line = %q, want %q", buf.String(), want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelInfo)
	l.Info("two words", "empty", "", "eq", "a=b", "ctl", "a\nb")
	line := buf.String()
	for _, want := range []string{`msg="two words"`, `empty=""`, `eq="a=b"`, `ctl="a\nb"`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLoggerLevelsAndNil(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Fatalf("lines = %q", lines)
	}
	if l.Enabled(LevelDebug) || !l.Enabled(LevelError) {
		t.Fatal("Enabled disagrees with level")
	}

	var nilLogger *Logger
	nilLogger.Info("safe")             // no panic
	nilLogger.With("k", "v").Error("") // With on nil stays nil
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger must be disabled")
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelInfo).With("request_id", "abc123")
	l.Info("access", "status", 200)
	if want := "msg=access request_id=abc123 status=200"; !strings.Contains(buf.String(), want) {
		t.Fatalf("line = %q, want it to contain %q", buf.String(), want)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil || LoggerFrom(ctx) != nil || EngineStatsFrom(ctx) != nil || RequestIDFrom(ctx) != "" {
		t.Fatal("empty context should carry nothing")
	}
	tr, lg, st := NewTracer(), NewLogger(&bytes.Buffer{}, LevelInfo), NewEngineStats()
	ctx = WithTracer(ctx, tr)
	ctx = WithLogger(ctx, lg)
	ctx = WithEngineStats(ctx, st)
	ctx = WithRequestID(ctx, "req1")
	if TracerFrom(ctx) != tr || LoggerFrom(ctx) != lg || EngineStatsFrom(ctx) != st || RequestIDFrom(ctx) != "req1" {
		t.Fatal("context round-trip failed")
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q, %q", a, b)
	}
	if !ValidRequestID(a) || !ValidRequestID("trace-1.2_3") {
		t.Fatal("valid ids rejected")
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", "newline\n", `quote"`} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true", bad)
		}
	}
}
