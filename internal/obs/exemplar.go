package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Exemplar is one retained slow-request outlier: the tail-based
// capture policy pins the request's full span tree (as a trace_event
// JSON array relative to the request start) next to the dimensions
// needed to reproduce it — endpoint, canonical-key hash, request ID —
// and the rolling-p99 threshold it tripped.
type Exemplar struct {
	Endpoint    string          `json:"endpoint"`
	RequestID   string          `json:"request_id,omitempty"`
	Key         string          `json:"key,omitempty"` // canonical-request key hash
	Time        time.Time       `json:"time"`
	DurationUS  int64           `json:"duration_us"`
	P99US       int64           `json:"p99_us"`       // rolling p99 at capture
	ThresholdUS int64           `json:"threshold_us"` // factor × p99
	Spans       json.RawMessage `json:"spans"`
}

// Exemplars is the bounded store behind GET /debug/slow. Add evicts
// oldest-first once the budget is reached, so a burst of outliers
// costs a fixed amount of memory and the newest evidence always wins.
type Exemplars struct {
	mu       sync.Mutex
	max      int
	list     []Exemplar // oldest first
	captured int64
}

// NewExemplars returns a store keeping at most max exemplars
// (minimum 1).
func NewExemplars(max int) *Exemplars {
	if max < 1 {
		max = 1
	}
	return &Exemplars{max: max}
}

// Add retains e, evicting the oldest exemplar when over budget.
func (x *Exemplars) Add(e Exemplar) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.captured++
	if len(x.list) >= x.max {
		n := copy(x.list, x.list[len(x.list)-x.max+1:])
		x.list = x.list[:n]
	}
	x.list = append(x.list, e)
}

// Len returns the number of retained exemplars.
func (x *Exemplars) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.list)
}

// Captured returns the total exemplars ever captured, including the
// evicted ones.
func (x *Exemplars) Captured() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.captured
}

// Snapshot returns the retained exemplars, newest first — the order
// an operator debugging "what just got slow" wants.
func (x *Exemplars) Snapshot() []Exemplar {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Exemplar, len(x.list))
	for i, e := range x.list {
		out[len(x.list)-1-i] = e
	}
	return out
}
