package obs

import (
	"math"
	"runtime/metrics"
)

// runtimeSeries maps each exported history series onto the
// runtime/metrics sample it reads. Heap and goroutine pressure, GC
// pause and scheduler latency tails, and the GC cycle counter are the
// five signals that explain almost every "the service got slow but
// the endpoints look fine" incident.
var runtimeSeries = []struct {
	name   string // history series, snake_case
	metric string // runtime/metrics key
	p99    bool   // true: metric is a histogram, sample its p99
	scale  float64
}{
	{name: "runtime_heap_bytes", metric: "/memory/classes/heap/objects:bytes"},
	{name: "runtime_goroutines", metric: "/sched/goroutines:goroutines"},
	{name: "runtime_gc_cycles", metric: "/gc/cycles/total:gc-cycles"},
	{name: "runtime_gc_pause_p99_ns", metric: "/gc/pauses:seconds", p99: true, scale: 1e9},
	{name: "runtime_sched_latency_p99_ns", metric: "/sched/latencies:seconds", p99: true, scale: 1e9},
}

// RegisterRuntimeSeries registers the Go runtime collector's series on
// h. Each sampler reads exactly one runtime/metrics sample per tick
// (~µs); a metric the running toolchain does not export samples as 0
// rather than failing the tick.
func RegisterRuntimeSeries(h *History) {
	for _, rs := range runtimeSeries {
		rs := rs
		sample := make([]metrics.Sample, 1)
		sample[0].Name = rs.metric
		h.Register(rs.name, func() float64 {
			metrics.Read(sample)
			switch sample[0].Value.Kind() {
			case metrics.KindUint64:
				return float64(sample[0].Value.Uint64())
			case metrics.KindFloat64:
				return sample[0].Value.Float64()
			case metrics.KindFloat64Histogram:
				v := histQuantile(sample[0].Value.Float64Histogram(), 0.99)
				if rs.scale != 0 {
					v *= rs.scale
				}
				return v
			default:
				return 0
			}
		})
	}
}

// histQuantile estimates the q-quantile of a runtime/metrics
// histogram from its bucket counts, interpolating inside the covering
// bucket. Infinite bucket edges clamp to the nearest finite edge.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range h.Counts {
		seen += float64(c)
		if seen >= rank {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				lo = 0
			}
			if math.IsInf(hi, 1) {
				hi = lo
			}
			frac := 1.0
			if c > 0 {
				frac = (rank - (seen - float64(c))) / float64(c)
			}
			return lo + frac*(hi-lo)
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
