package obs

import (
	"testing"
	"time"
)

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("sweep:p99<250ms,err<1%;stall:p99<2s;/healthz:err<0.001")
	if err != nil {
		t.Fatal(err)
	}
	want := []SLO{
		{Endpoint: "/v1/sweep", P99: 250 * time.Millisecond, ErrRate: 0.01},
		{Endpoint: "/v1/stall", P99: 2 * time.Second},
		{Endpoint: "/healthz", ErrRate: 0.001},
	}
	if len(slos) != len(want) {
		t.Fatalf("parsed %d SLOs, want %d: %+v", len(slos), len(want), slos)
	}
	for i := range want {
		if slos[i] != want[i] {
			t.Fatalf("slo %d = %+v, want %+v", i, slos[i], want[i])
		}
	}
}

func TestParseSLOsRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"sweep",                // no objectives separator
		"sweep:",               // empty objectives
		":p99<250ms",           // empty endpoint
		"sweep:p99<banana",     // bad duration
		"sweep:p99<-1s",        // negative target
		"sweep:err<150%",       // rate out of range
		"sweep:err<0",          // zero rate
		"sweep:cpu<50%",        // unknown objective
		"sweep:p99=250ms",      // wrong comparator
		"sweep:p99<1s;;stall:", // empty clause tolerated, bad clause not
	} {
		if _, err := ParseSLOs(spec); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", spec)
		}
	}
	// Pure separators parse to no SLOs, not an error.
	if slos, err := ParseSLOs(" ; "); err != nil || len(slos) != 0 {
		t.Fatalf("ParseSLOs(\" ; \") = %v, %v", slos, err)
	}
}

func TestErrorBurnRate(t *testing.T) {
	// 2% observed errors against a 1% budget burns at 2×.
	if got := ErrorBurnRate(1000, 20, 0.01); got != 2 {
		t.Fatalf("burn = %v, want 2", got)
	}
	// Exactly on budget burns at 1×.
	if got := ErrorBurnRate(1000, 10, 0.01); got != 1 {
		t.Fatalf("burn = %v, want 1", got)
	}
	// No traffic, negative deltas (counter reset) and zero budget burn 0.
	for label, got := range map[string]float64{
		"no requests":    ErrorBurnRate(0, 5, 0.01),
		"negative delta": ErrorBurnRate(100, -5, 0.01),
		"zero budget":    ErrorBurnRate(100, 5, 0),
	} {
		if got != 0 {
			t.Errorf("%s: burn = %v, want 0", label, got)
		}
	}
}

func TestLatencyBurnRate(t *testing.T) {
	if got := LatencyBurnRate(500*time.Millisecond, 250*time.Millisecond); got != 2 {
		t.Fatalf("burn = %v, want 2", got)
	}
	if got := LatencyBurnRate(100*time.Millisecond, 250*time.Millisecond); got != 0.4 {
		t.Fatalf("burn = %v, want 0.4", got)
	}
	if got := LatencyBurnRate(0, 250*time.Millisecond); got != 0 {
		t.Fatalf("no-data burn = %v, want 0", got)
	}
	if got := LatencyBurnRate(100*time.Millisecond, 0); got != 0 {
		t.Fatalf("no-target burn = %v, want 0", got)
	}
}
