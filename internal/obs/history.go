package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Sample is one time-series point: wall-clock milliseconds and value.
type Sample struct {
	T int64   `json:"t"` // unix milliseconds
	V float64 `json:"v"`
}

// seriesRing is one series' fixed-size sample ring plus its sampler.
type seriesRing struct {
	fn      func() float64
	samples []Sample
	next    int
	full    bool
}

func (s *seriesRing) push(sm Sample) {
	if len(s.samples) < cap(s.samples) {
		s.samples = append(s.samples, sm)
	} else {
		s.samples[s.next] = sm
		s.full = true
	}
	s.next++
	if s.next == cap(s.samples) {
		s.next = 0
	}
}

// inOrder returns the retained samples oldest-first.
func (s *seriesRing) inOrder() []Sample {
	if !s.full {
		out := make([]Sample, len(s.samples))
		copy(out, s.samples)
		return out
	}
	out := make([]Sample, 0, len(s.samples))
	out = append(out, s.samples[s.next:]...)
	out = append(out, s.samples[:s.next]...)
	return out
}

// TickSnapshot is one snapshot cycle's output: the tick time and every
// series' sampled value — what SSE dashboard subscribers receive.
type TickSnapshot struct {
	T      int64              `json:"t"` // unix milliseconds
	Values map[string]float64 `json:"values"`
}

// History is the in-process time-series store: named gauge samplers
// registered once, sampled together on every Tick into fixed-size
// per-series rings (capacity = window / interval), and served as JSON
// windows. It answers "what did this process look like ten minutes
// ago" without any external metrics stack.
//
// Series names follow the /metrics snake_case scheme; the metricreg
// analyzer checks constant names passed to Register at build time.
// History is safe for concurrent use.
type History struct {
	interval time.Duration
	capacity int

	mu     sync.Mutex
	order  []string
	series map[string]*seriesRing
	subs   map[int]chan TickSnapshot
	subID  int
	ticks  int64
}

// NewHistory returns a store sampling every interval (default 10s)
// and retaining window (default 1h) of samples per series.
func NewHistory(interval, window time.Duration) *History {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if window < interval {
		window = time.Hour
	}
	capacity := int(window / interval)
	if capacity < 2 {
		capacity = 2
	}
	return &History{
		interval: interval,
		capacity: capacity,
		series:   make(map[string]*seriesRing),
		subs:     make(map[int]chan TickSnapshot),
	}
}

// Interval returns the snapshot cadence.
func (h *History) Interval() time.Duration { return h.interval }

// Register adds (or replaces) the sampler behind the named series.
// Names are constant at call sites by convention so the metricreg
// analyzer can enforce snake_case and uniqueness at build time; a
// replaced sampler keeps the series' retained samples.
func (h *History) Register(name string, fn func() float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sr, ok := h.series[name]; ok {
		sr.fn = fn
		return
	}
	h.series[name] = &seriesRing{fn: fn, samples: make([]Sample, 0, h.capacity)}
	h.order = append(h.order, name)
}

// RegisterCounter samples c's running total under the counter's own
// (metricreg-checked) name.
func (h *History) RegisterCounter(c *Counter) {
	h.Register(c.Name(), func() float64 { return float64(c.Value()) })
}

// RegisterHistogram derives three series from hist: <name>_p50_ns,
// <name>_p99_ns and <name>_count. The quantiles are the histogram's
// rolling estimates at each tick; the count is cumulative, so a
// window's rate is the count delta over the window.
func (h *History) RegisterHistogram(hist *Histogram) {
	h.Register(hist.Name()+"_p50_ns", func() float64 { return float64(hist.Quantile(0.5).Nanoseconds()) })
	h.Register(hist.Name()+"_p99_ns", func() float64 { return float64(hist.Quantile(0.99).Nanoseconds()) })
	h.Register(hist.Name()+"_count", func() float64 { return float64(hist.Count()) })
}

// Names returns the registered series names in registration order.
func (h *History) Names() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.order))
	copy(out, h.order)
	return out
}

// Ticks returns how many snapshot cycles have run.
func (h *History) Ticks() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ticks
}

// Tick samples every registered series at now and fans the snapshot
// out to subscribers. Samplers run under the store lock; they are all
// atomic reads by construction (counters, histogram buckets, expvar
// ints), so a tick costs microseconds. A sampler returning NaN or
// ±Inf records 0 — rings must stay JSON-encodable.
func (h *History) Tick(now time.Time) TickSnapshot {
	h.mu.Lock()
	snap := TickSnapshot{T: now.UnixMilli(), Values: make(map[string]float64, len(h.order))}
	for _, name := range h.order {
		sr := h.series[name]
		v := sr.fn()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		sr.push(Sample{T: snap.T, V: v})
		snap.Values[name] = v
	}
	h.ticks++
	// Fan out under the lock: sends are non-blocking, and cancel
	// deletes a subscriber from the map (also under the lock) before
	// closing its channel, so a channel visible here cannot be closed
	// mid-send.
	for _, ch := range h.subs {
		select {
		case ch <- snap: // slow subscribers drop ticks rather than stall the schedule
		default:
		}
	}
	h.mu.Unlock()
	return snap
}

// Run ticks every interval until ctx is cancelled — the scheduler
// goroutine tradeoffd starts at boot.
func (h *History) Run(ctx context.Context) {
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			h.Tick(now)
		}
	}
}

// Subscribe registers a snapshot listener with the given channel
// buffer and returns the channel plus a cancel function. Cancel is
// idempotent and closes the channel, so SSE handlers can range over
// it.
func (h *History) Subscribe(buf int) (<-chan TickSnapshot, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan TickSnapshot, buf)
	h.mu.Lock()
	id := h.subID
	h.subID++
	h.subs[id] = ch
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		_, live := h.subs[id]
		delete(h.subs, id)
		h.mu.Unlock()
		if live {
			close(ch)
		}
	}
}

// Get returns the retained samples for name at or after since. The
// second return is false for an unregistered series.
func (h *History) Get(name string, since time.Time) ([]Sample, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sr, ok := h.series[name]
	if !ok {
		return nil, false
	}
	all := sr.inOrder()
	cut := since.UnixMilli()
	i := sort.Search(len(all), func(i int) bool { return all[i].T >= cut })
	return all[i:], true
}

// Delta returns the first and last retained samples of name inside
// [since, now]; ok is false when the window holds fewer than two
// samples. Cumulative-counter series turn into windowed rates this
// way: (last.V - first.V) / (last.T - first.T).
func (h *History) Delta(name string, since time.Time) (first, last Sample, ok bool) {
	samples, found := h.Get(name, since)
	if !found || len(samples) < 2 {
		return Sample{}, Sample{}, false
	}
	return samples[0], samples[len(samples)-1], true
}

// Max returns the largest sample value of name inside the window, or
// false when the window is empty.
func (h *History) Max(name string, since time.Time) (float64, bool) {
	samples, found := h.Get(name, since)
	if !found || len(samples) == 0 {
		return 0, false
	}
	max := samples[0].V
	for _, s := range samples[1:] {
		if s.V > max {
			max = s.V
		}
	}
	return max, true
}

// WriteJSON renders the named series (all registered series when
// names is empty) at or after since as one JSON document:
//
//	{"interval_ms":10000,"series":{"heap_bytes":[{"t":...,"v":...},...]}}
//
// Unknown names render as empty arrays rather than erroring, so a
// dashboard polling a series that appears after boot degrades
// gracefully.
func (h *History) WriteJSON(w io.Writer, names []string, since time.Time) error {
	if len(names) == 0 {
		names = h.Names()
	}
	if _, err := fmt.Fprintf(w, "{\n\"interval_ms\": %d,\n\"series\": {", h.interval.Milliseconds()); err != nil {
		return err
	}
	for i, name := range names {
		samples, _ := h.Get(name, since)
		if samples == nil {
			samples = []Sample{}
		}
		data, err := json.Marshal(samples)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "\n%q: %s", name, data); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n}\n")
	return err
}
