package obs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is one endpoint's service-level objectives: a latency target on
// the rolling p99 and/or an allowed error-rate budget. The zero field
// means "no objective on that axis".
type SLO struct {
	Endpoint string        // route, e.g. "/v1/sweep"
	P99      time.Duration // 0 = no latency objective
	ErrRate  float64       // allowed error fraction in (0,1]; 0 = no error objective
}

// ParseSLOs parses tradeoffd's -slo flag grammar: semicolon-separated
// per-endpoint objective lists,
//
//	sweep:p99<250ms,err<1%;stall:p99<2s
//
// where a bare endpoint name maps onto its /v1/ route ("sweep" →
// "/v1/sweep") and a name starting with '/' is used verbatim, so
// "/healthz:p99<5ms" works too. Percentages accept "1%" and bare
// fractions "0.01".
func ParseSLOs(spec string) ([]SLO, error) {
	var out []SLO
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, objs, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("slo %q: want endpoint:objectives (e.g. sweep:p99<250ms,err<1%%)", clause)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("slo %q: empty endpoint", clause)
		}
		slo := SLO{Endpoint: name}
		if !strings.HasPrefix(name, "/") {
			slo.Endpoint = "/v1/" + name
		}
		for _, obj := range strings.Split(objs, ",") {
			obj = strings.TrimSpace(obj)
			kind, val, ok := strings.Cut(obj, "<")
			if !ok {
				return nil, fmt.Errorf("slo %q: objective %q wants metric<bound", clause, obj)
			}
			switch strings.TrimSpace(kind) {
			case "p99":
				d, err := time.ParseDuration(strings.TrimSpace(val))
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("slo %q: bad p99 bound %q", clause, val)
				}
				slo.P99 = d
			case "err":
				r, err := parseRate(strings.TrimSpace(val))
				if err != nil {
					return nil, fmt.Errorf("slo %q: %w", clause, err)
				}
				slo.ErrRate = r
			default:
				return nil, fmt.Errorf("slo %q: unknown objective %q (want p99 or err)", clause, kind)
			}
		}
		if slo.P99 == 0 && slo.ErrRate == 0 {
			return nil, fmt.Errorf("slo %q: no objectives", clause)
		}
		out = append(out, slo)
	}
	return out, nil
}

// parseRate parses "1%" or "0.01" into a fraction in (0, 1].
func parseRate(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad error rate %q", s)
	}
	if pct {
		v /= 100
	}
	if v <= 0 || v > 1 {
		return 0, fmt.Errorf("error rate %q out of (0%%, 100%%]", s)
	}
	return v, nil
}

// ErrorBurnRate converts a windowed (Δrequests, Δerrors) pair and an
// error budget into the standard burn rate: observed error rate over
// allowed error rate. 1.0 means the budget is being consumed exactly
// as fast as the window rolls; >1 means the budget exhausts early —
// the multi-window alerting quantity of the SRE workbook. A window
// with no requests burns nothing.
func ErrorBurnRate(deltaReq, deltaErr, budget float64) float64 {
	if deltaReq <= 0 || budget <= 0 {
		return 0
	}
	rate := deltaErr / deltaReq
	if rate < 0 {
		return 0
	}
	return rate / budget
}

// LatencyBurnRate scores a latency objective: the windowed p99 over
// its target. Dimensionless like the error burn — 1.0 is exactly on
// objective, above it the tail is out of budget.
func LatencyBurnRate(p99 time.Duration, target time.Duration) float64 {
	if target <= 0 || p99 <= 0 {
		return 0
	}
	return float64(p99) / float64(target)
}
