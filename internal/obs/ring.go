package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRecord is one completed span as the flight recorder keeps it:
// absolute wall-clock start (so dumps can be windowed with ?last=30s),
// duration, the lane the tracer assigned, and the span args. Records
// are value types — recording one is a struct copy under a single
// uncontended mutex, cheap enough to leave on for every request.
type SpanRecord struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	TID   int
	Args  map[string]any
}

// End returns the span's completion time.
func (r SpanRecord) End() time.Time { return r.Start.Add(r.Dur) }

// SpanRing is the always-on flight recorder: a bounded ring of the
// most recently completed spans. Record overwrites the oldest entry
// once the ring is full, so memory is fixed at capacity × record size
// no matter how long the process runs; Snapshot copies out the spans
// that ended inside a trailing window for an on-demand dump.
//
// A SpanRing is safe for concurrent use. The critical sections are a
// slot copy (Record) and a linear scan-copy (Snapshot); writers are
// never blocked on JSON encoding or I/O.
type SpanRing struct {
	mu       sync.Mutex
	recs     []SpanRecord
	next     int   // next write slot
	recorded int64 // total Records ever, for drop accounting
}

// NewSpanRing returns a ring holding the last capacity spans
// (minimum 16).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 16 {
		capacity = 16
	}
	return &SpanRing{recs: make([]SpanRecord, 0, capacity)}
}

// Cap returns the ring's fixed capacity.
func (r *SpanRing) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.recs)
}

// Recorded returns the total number of spans ever recorded; recorded
// minus min(recorded, cap) spans have been overwritten.
func (r *SpanRing) Recorded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Record stores one completed span, overwriting the oldest once full.
func (r *SpanRing) Record(rec SpanRecord) {
	r.mu.Lock()
	if len(r.recs) < cap(r.recs) {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.next] = rec
	}
	r.next++
	if r.next == cap(r.recs) {
		r.next = 0
	}
	r.recorded++
	r.mu.Unlock()
}

// Snapshot returns copies of the retained spans that ended at or
// after since, sorted by start time (ties: longer span first, so an
// enclosing span precedes the spans it contains).
func (r *SpanRing) Snapshot(since time.Time) []SpanRecord {
	r.mu.Lock()
	out := make([]SpanRecord, 0, len(r.recs))
	for _, rec := range r.recs {
		if !rec.End().Before(since) {
			out = append(out, rec)
		}
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// flightEvent is one B or E trace_event record of a flight dump.
// Unlike the -trace exporter's complete "X" events, dumps use
// begin/end pairs so validators (cmd/tracecheck) can check balance
// and per-lane monotonicity — exactly the properties a ring that
// overwrites oldest spans could silently lose.
type flightEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // µs since epoch
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// laneSpan is one open span during the flight-dump lane simulation.
type laneSpan struct {
	name string
	end  time.Time
}

// WriteFlight renders records as a Chrome trace_event JSON array of
// balanced B/E pairs with timestamps in µs relative to epoch.
//
// Lanes are re-assigned from scratch: each span goes to the first
// lane where it either nests inside that lane's innermost open span
// or starts after every open span there has ended. Each lane's event
// sequence is therefore properly nested and monotonic by construction
// — concurrent requests that shared recorder lane 0 come out on
// separate dump lanes instead of interleaving. The recorder's
// original lane survives as the "lane" arg on every B event.
//
// records must be sorted by start time with ties broken longer-first
// (Snapshot's order).
func WriteFlight(w io.Writer, recs []SpanRecord, epoch time.Time) error {
	var lanes [][]laneSpan // per-lane stack of open spans
	// Per-lane event sequences are built in simulation order (always
	// monotonic in ts within a lane), then merged by a stable sort on
	// ts — which preserves each lane's internal order.
	perLane := make([][]flightEvent, 0, 4)
	popUntil := func(lane int, t time.Time) {
		st := lanes[lane]
		for len(st) > 0 && !st[len(st)-1].end.After(t) {
			top := st[len(st)-1]
			st = st[:len(st)-1]
			perLane[lane] = append(perLane[lane], flightEvent{
				Name: top.name, Ph: "E", TS: usSince(epoch, top.end), PID: 1, TID: lane,
			})
		}
		lanes[lane] = st
	}
	for _, rec := range recs {
		lane := -1
		for i := range lanes {
			popUntil(i, rec.Start)
			st := lanes[i]
			if len(st) == 0 || !st[len(st)-1].end.Before(rec.End()) {
				lane = i
				break
			}
		}
		if lane == -1 {
			lanes = append(lanes, nil)
			perLane = append(perLane, nil)
			lane = len(lanes) - 1
		}
		args := make(map[string]any, len(rec.Args)+1)
		for k, v := range rec.Args {
			args[k] = v
		}
		args["lane"] = rec.TID
		perLane[lane] = append(perLane[lane], flightEvent{
			Name: rec.Name, Ph: "B", TS: usSince(epoch, rec.Start), PID: 1, TID: lane, Args: args,
		})
		lanes[lane] = append(lanes[lane], laneSpan{name: rec.Name, end: rec.End()})
	}
	for i := range lanes {
		// Close everything still open; the zero time is after any end.
		for len(lanes[i]) > 0 {
			top := lanes[i][len(lanes[i])-1]
			lanes[i] = lanes[i][:len(lanes[i])-1]
			perLane[i] = append(perLane[i], flightEvent{
				Name: top.name, Ph: "E", TS: usSince(epoch, top.end), PID: 1, TID: i,
			})
		}
	}
	var events []flightEvent
	for _, seq := range perLane {
		events = append(events, seq...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(data, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// usSince returns t in microseconds relative to epoch, clamped at 0.
func usSince(epoch, t time.Time) float64 {
	us := float64(t.Sub(epoch).Nanoseconds()) / 1e3
	if us < 0 {
		return 0
	}
	return us
}
