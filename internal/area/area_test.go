package area

import (
	"testing"
	"testing/quick"
)

func g8K() CacheGeometry { return CacheGeometry{Size: 8 << 10, LineSize: 32, Assoc: 2} }

func TestValidate(t *testing.T) {
	if err := g8K().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []CacheGeometry{
		{Size: 0, LineSize: 32},
		{Size: 1024, LineSize: 0},
		{Size: 64, LineSize: 128},
		{Size: 1024, LineSize: 32, Assoc: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d accepted", i)
		}
	}
}

func TestTagBits(t *testing.T) {
	// 8K, 32B lines, 2-way: 256 lines, 128 sets → 32 − 5 − 7 = 20 bits.
	if got := g8K().TagBits(); got != 20 {
		t.Fatalf("tag bits = %d, want 20", got)
	}
	// Fully associative: no index bits → 32 − 5 = 27.
	fa := CacheGeometry{Size: 8 << 10, LineSize: 32, Assoc: 0}
	if got := fa.TagBits(); got != 27 {
		t.Fatalf("fully associative tag bits = %d, want 27", got)
	}
	// Wider addresses widen tags.
	w := g8K()
	w.AddrBits = 40
	if got := w.TagBits(); got != 28 {
		t.Fatalf("40-bit tag bits = %d, want 28", got)
	}
}

func TestRBEGrowsWithSize(t *testing.T) {
	small, err := RBE(g8K())
	if err != nil {
		t.Fatal(err)
	}
	big, err := RBE(CacheGeometry{Size: 32 << 10, LineSize: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("32K rbe %g not above 8K rbe %g", big, small)
	}
	// Area is dominated by data bits, so 4x size ≈ 4x area.
	if ratio := big / small; ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("area ratio %g, want ≈4", ratio)
	}
}

func TestLargerLinesCutOverhead(t *testing.T) {
	// Alpert & Flynn: larger lines amortize tags.
	small := CacheGeometry{Size: 8 << 10, LineSize: 8, Assoc: 2}
	large := CacheGeometry{Size: 8 << 10, LineSize: 64, Assoc: 2}
	oSmall, err := Overhead(small)
	if err != nil {
		t.Fatal(err)
	}
	oLarge, err := Overhead(large)
	if err != nil {
		t.Fatal(err)
	}
	if oLarge >= oSmall {
		t.Fatalf("64B-line overhead %.3f not below 8B-line overhead %.3f", oLarge, oSmall)
	}
	if oSmall < 0.05 {
		t.Fatalf("8B-line overhead %.3f implausibly small", oSmall)
	}
}

func TestRBERejectsBadGeometry(t *testing.T) {
	if _, err := RBE(CacheGeometry{}); err == nil {
		t.Fatal("zero geometry accepted")
	}
	if _, err := Overhead(CacheGeometry{}); err == nil {
		t.Fatal("Overhead accepted zero geometry")
	}
}

func TestPins(t *testing.T) {
	p := Pins{DataBits: 32, AddrBits: 32, Control: 40}
	if p.Total() != 104 {
		t.Fatalf("total pins %d, want 104", p.Total())
	}
	d := p.DoubleBus()
	if d.DataBits != 64 || d.Total() != 136 {
		t.Fatalf("doubled bus pins %+v", d)
	}
	if p.DataBits != 32 {
		t.Fatal("DoubleBus mutated receiver")
	}
}

func TestBusVsCacheExchange(t *testing.T) {
	small := g8K()
	large := CacheGeometry{Size: 32 << 10, LineSize: 32, Assoc: 2}
	ex, err := BusVsCache(small, large, Pins{DataBits: 32, AddrBits: 32, Control: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ex.PinsSaved != 32 {
		t.Fatalf("pins saved = %d, want 32", ex.PinsSaved)
	}
	if ex.DeltaRBE <= 0 || ex.AreaRatio < 3.5 {
		t.Fatalf("exchange %+v implausible", ex)
	}
	if _, err := BusVsCache(large, small, Pins{DataBits: 32}); err == nil {
		t.Fatal("inverted exchange accepted")
	}
	if _, err := BusVsCache(CacheGeometry{}, large, Pins{}); err == nil {
		t.Fatal("bad small geometry accepted")
	}
	if _, err := BusVsCache(small, CacheGeometry{}, Pins{}); err == nil {
		t.Fatal("bad large geometry accepted")
	}
}

func TestRBEMonotoneQuick(t *testing.T) {
	// Property: doubling capacity at fixed line size never shrinks area,
	// and area is always positive.
	f := func(sizeExp, lineExp uint8) bool {
		size := 1 << (10 + sizeExp%8)
		line := 8 << (lineExp % 4)
		a := CacheGeometry{Size: size, LineSize: line, Assoc: 2}
		b := CacheGeometry{Size: size * 2, LineSize: line, Assoc: 2}
		ra, err1 := RBE(a)
		rb, err2 := RBE(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return ra > 0 && rb > ra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessEnergySublinear(t *testing.T) {
	small, err := AccessEnergy(g8K())
	if err != nil {
		t.Fatal(err)
	}
	big, err := AccessEnergy(CacheGeometry{Size: 32 << 10, LineSize: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("32K energy %g not above 8K energy %g", big, small)
	}
	// sqrt scaling: 4x area ≈ 2x access energy, far below linear.
	if ratio := big / small; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("energy ratio %g, want ≈2", ratio)
	}
	if _, err := AccessEnergy(CacheGeometry{Size: -1, LineSize: 32}); err == nil {
		t.Fatal("bad geometry accepted")
	}
}
