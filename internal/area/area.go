// Package area models on-chip cache area and package pin count, the
// two costs §5.2 of the paper trades against each other: "we can
// increase a relatively smaller amount of chip area in the cache memory
// to trade for the processor pin counts and memory data bus width."
//
// The cache area model follows the register-bit-equivalent (rbe)
// accounting of Mulder, Quach & Flynn (IEEE JSSC 1991), the standard
// area model of the paper's era: every storage bit is costed in units
// of a six-transistor register cell, with SRAM data bits cheaper than
// register bits and per-line overhead (tag, status) charged explicitly.
// Absolute calibration is not the point — the *ratios* between
// configurations drive the tradeoff, and those depend only on the bit
// counts.
package area

import (
	"fmt"
	"math"
)

// rbe cost constants (Mulder et al., Table at §III): an SRAM cell costs
// 0.6 rbe; each line also pays a fixed overhead for comparators, drive
// and sense amplifiers folded into a per-bit factor.
const (
	sramBitRBE   = 0.6 // area of one SRAM bit, in register-bit equivalents
	lineOverhead = 6.0 // per-line control overhead (valid, dirty, LRU, drivers), rbe
)

// CacheGeometry describes the storage a cache needs.
type CacheGeometry struct {
	Size     int // data capacity in bytes
	LineSize int // bytes per line
	Assoc    int // ways (0 = fully associative)
	AddrBits int // physical address width (default 32)
}

// Validate reports impossible geometries.
func (g CacheGeometry) Validate() error {
	switch {
	case g.Size <= 0 || g.LineSize <= 0:
		return fmt.Errorf("area: non-positive size (%d) or line (%d)", g.Size, g.LineSize)
	case g.LineSize > g.Size:
		return fmt.Errorf("area: line %d exceeds size %d", g.LineSize, g.Size)
	case g.Assoc < 0:
		return fmt.Errorf("area: negative associativity")
	}
	return nil
}

// Lines returns the number of cache lines.
func (g CacheGeometry) Lines() int { return g.Size / g.LineSize }

// TagBits returns the tag width per line: address bits minus the
// offset and index bits (fully associative caches keep the whole
// line-address as tag).
func (g CacheGeometry) TagBits() int {
	addr := g.AddrBits
	if addr == 0 {
		addr = 32
	}
	offset := int(math.Round(math.Log2(float64(g.LineSize))))
	assoc := g.Assoc
	if assoc == 0 {
		assoc = g.Lines()
	}
	sets := g.Lines() / assoc
	index := 0
	if sets > 1 {
		index = int(math.Round(math.Log2(float64(sets))))
	}
	bits := addr - offset - index
	if bits < 0 {
		bits = 0
	}
	return bits
}

// RBE returns the cache's storage area in register-bit equivalents:
// data bits plus per-line tag and status overhead. Larger lines
// amortize the tag overhead — the Alpert & Flynn cost-effectiveness
// argument the paper cites ([6]).
func RBE(g CacheGeometry) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	lines := float64(g.Lines())
	dataBits := float64(g.Size * 8)
	tagBits := lines * float64(g.TagBits())
	return (dataBits+tagBits)*sramBitRBE + lines*lineOverhead, nil
}

// Overhead returns the fraction of the cache's area spent on tags and
// per-line control rather than data.
func Overhead(g CacheGeometry) (float64, error) {
	total, err := RBE(g)
	if err != nil {
		return 0, err
	}
	data := float64(g.Size*8) * sramBitRBE
	return (total - data) / total, nil
}

// AccessEnergy returns a dimensionless per-access energy proxy for the
// cache: the square root of its rbe area. Wordline/bitline capacitance
// grows with the array's linear dimension, so energy per access scales
// roughly with sqrt(area) — coarse, but like the rbe model itself it
// is the *ratios* between configurations that drive the tradeoff.
// "Cache Hierarchy Optimization" (Yavits et al.) prices hierarchy
// power the same relative way.
func AccessEnergy(g CacheGeometry) (float64, error) {
	r, err := RBE(g)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(r), nil
}

// Pins models the package pins of the processor's external interface:
// data bus, address bus, and a fixed control group. The paper's
// tradeoff moves only the data-bus term.
type Pins struct {
	DataBits int // external data bus width in bits
	AddrBits int // external address bus width in bits
	Control  int // clocks, bus control, interrupts, power approximation
}

// Total returns the pin count.
func (p Pins) Total() int { return p.DataBits + p.AddrBits + p.Control }

// DoubleBus returns the pin configuration with a doubled data bus.
func (p Pins) DoubleBus() Pins {
	q := p
	q.DataBits *= 2
	return q
}

// Exchange quantifies one §5.2 trade: growing the cache from small to
// large (same line size and associativity) instead of doubling a
// dataBits-wide external bus.
type Exchange struct {
	SmallRBE  float64 // area of the small cache
	LargeRBE  float64 // area of the large cache
	DeltaRBE  float64 // additional chip area the big cache costs
	AreaRatio float64 // LargeRBE / SmallRBE
	PinsSaved int     // data pins the narrow bus saves
}

// BusVsCache evaluates the exchange for the given geometries and bus.
func BusVsCache(small, large CacheGeometry, bus Pins) (Exchange, error) {
	s, err := RBE(small)
	if err != nil {
		return Exchange{}, err
	}
	l, err := RBE(large)
	if err != nil {
		return Exchange{}, err
	}
	if l < s {
		return Exchange{}, fmt.Errorf("area: large cache (%g rbe) smaller than small cache (%g rbe)", l, s)
	}
	return Exchange{
		SmallRBE:  s,
		LargeRBE:  l,
		DeltaRBE:  l - s,
		AreaRatio: l / s,
		PinsSaved: bus.DoubleBus().DataBits - bus.DataBits,
	}, nil
}
