// Package stats provides the small statistics toolkit the experiment
// harness uses when aggregating per-program measurements (Figure 1
// averages six SPEC92 programs; reporting their spread shows how much
// of a curve is workload-dependent).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns an error for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if math.IsNaN(x) {
			return Summary{}, fmt.Errorf("stats: NaN in sample")
		}
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values — the usual
// aggregate for speedups. It returns an error if any value is not
// positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: non-positive value %g in geometric mean", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// RelSpread returns (max−min)/mean as a quick dispersion measure, or 0
// for degenerate samples.
func RelSpread(xs []float64) float64 {
	s, err := Summarize(xs)
	if err != nil || s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}
