package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev %.4f, want ≈2.138 (sample)", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %g, want 4.5", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s, err := Summarize([]float64{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 5 {
		t.Fatalf("median %g, want 5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("single-sample summary %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize sorted its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean %g, want 4", g)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestRelSpread(t *testing.T) {
	if got := RelSpread([]float64{8, 10, 12}); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("relspread %g, want 0.4", got)
	}
	if RelSpread(nil) != 0 {
		t.Fatal("empty relspread not 0")
	}
	if RelSpread([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean relspread not 0")
	}
}

func TestSummaryBoundsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep inputs finite and modest so sums cannot overflow —
			// the harness aggregates ratios and cycle counts, not
			// astronomically scaled values.
			if !math.IsNaN(x) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
