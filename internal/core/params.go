// Package core implements the unified architectural tradeoff
// methodology of Chen & Somani (ISCA 1994).
//
// The methodology prices architectural features — external data-bus
// width, processor stalling features, read-bypassing write buffers,
// pipelined memory systems, and cache line size — in a single currency:
// cache hit ratio. Two systems that differ in one feature have the same
// performance exactly when their mean memory delay per reference is
// equal (§4.5); solving that equality yields the hit-ratio difference
// ΔHR the feature is worth, and hence the cache size (chip area) it can
// replace.
//
// The package follows the paper's notation (Table 1):
//
//	D   external data-bus width in bytes
//	L   cache line size in bytes
//	βm  memory cycle time for a D-byte transfer, in CPU clocks
//	E   instructions executed
//	R   bytes read from memory on misses
//	W   write-around miss count
//	α   flush ratio (dirty-line bytes copied back per byte fetched)
//	φ   stalling factor (Table 2): per-miss read stall is φ·βm
//	q   pipelined-memory readiness interval (Eq. 9)
package core

import (
	"fmt"
	"math"
)

// Params characterizes one system design point together with the
// application running on it — the tuple {E, R, W, α, φ} of §3.1 plus
// the hardware parameters {D, L, βm}.
type Params struct {
	E     float64 // instructions executed
	R     float64 // bytes read in full bus width on read misses
	W     float64 // write-around miss instructions using the bus
	Alpha float64 // cache line flush ratio α ∈ [0, 1]
	Phi   float64 // stalling factor φ (L/D for a full-blocking cache)
	D     float64 // external data-bus width in bytes
	L     float64 // cache line size in bytes
	BetaM float64 // memory cycle time βm in clocks per D-byte transfer
}

// Validate reports parameter combinations outside the model's domain.
func (p Params) Validate() error {
	switch {
	case p.E <= 0:
		return fmt.Errorf("core: E = %g, want > 0", p.E)
	case p.R < 0 || p.W < 0:
		return fmt.Errorf("core: negative R (%g) or W (%g)", p.R, p.W)
	case !validAlpha(p.Alpha):
		return fmt.Errorf("core: α = %g, want in [0, 1]", p.Alpha)
	case p.D <= 0 || p.L <= 0:
		return fmt.Errorf("core: non-positive D (%g) or L (%g)", p.D, p.L)
	case p.L < p.D:
		return fmt.Errorf("core: L = %g smaller than D = %g", p.L, p.D)
	case p.BetaM < 1:
		return fmt.Errorf("core: βm = %g, want >= 1", p.BetaM)
	case p.Phi < 0 || p.Phi > p.L/p.D:
		return fmt.Errorf("core: φ = %g outside [0, L/D = %g] (Table 2)", p.Phi, p.L/p.D)
	case p.Misses() > p.E:
		return fmt.Errorf("core: more missing load/stores (%g) than instructions (%g)", p.Misses(), p.E)
	}
	return nil
}

// Misses returns Λm = R/L + W, the number of load/store instructions
// that miss in the data cache (Eq. 1). Under write-allocate W is zero
// and write-miss fetches are part of R.
func (p Params) Misses() float64 { return p.R/p.L + p.W }

// FullStall returns the full-blocking stalling factor L/D, the maximum
// of Table 2.
func (p Params) FullStall() float64 { return p.L / p.D }

// WithFullStall returns a copy of p with φ set to the full-blocking
// value L/D.
func (p Params) WithFullStall() Params {
	p.Phi = p.L / p.D
	return p
}

// SFromHitRatio returns s = Λh/Λm for a data cache with the given hit
// ratio, the quantity Eqs. (4)–(6) are parameterized by: MR = 1/(s+1).
func SFromHitRatio(hr float64) (float64, error) {
	if !validFraction(hr) {
		return 0, fmt.Errorf("core: hit ratio %g, want in (0, 1)", hr)
	}
	return hr / (1 - hr), nil
}

// HitRatioFromS inverts SFromHitRatio: HR = s/(s+1).
func HitRatioFromS(s float64) float64 { return s / (s + 1) }

// validFraction reports whether v is a usable probability-like value.
func validFraction(v float64) bool { return !math.IsNaN(v) && v > 0 && v < 1 }

// validAlpha reports whether v lies in the closed unit interval — the
// domain of the flush ratio α and of local hit ratios, where both
// endpoints are physical (never-dirty and always-dirty caches).
func validAlpha(v float64) bool { return !math.IsNaN(v) && v >= 0 && v <= 1 }

// validHitRatio reports whether v is a usable cache hit ratio: a
// fraction in (0, 1), or exactly zero (a cacheless or cold system).
func validHitRatio(v float64) bool { return v == 0 || validFraction(v) }

// approxEqual reports whether a and b agree to within one part in 1e12
// (absolute near zero). It is the float discipline's alternative to
// exact ==/!= between model quantities, which the floatcmp analyzer
// rejects: two mathematically equal delays routinely differ in their
// last ulp after Eqs. (1)–(19) arithmetic.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
