package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestParamsValidate(t *testing.T) {
	good := Params{E: 1e6, R: 32000, W: 0, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Params)
	}{
		{"zero E", func(p *Params) { p.E = 0 }},
		{"negative R", func(p *Params) { p.R = -1 }},
		{"negative W", func(p *Params) { p.W = -1 }},
		{"alpha above 1", func(p *Params) { p.Alpha = 1.5 }},
		{"zero D", func(p *Params) { p.D = 0 }},
		{"L below D", func(p *Params) { p.L = 2 }},
		{"beta below 1", func(p *Params) { p.BetaM = 0.5 }},
		{"phi above L/D", func(p *Params) { p.Phi = 9 }},
		{"negative phi", func(p *Params) { p.Phi = -1 }},
		{"more misses than instructions", func(p *Params) { p.R = 1e9 }},
	}
	for _, tc := range cases {
		p := good
		tc.mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestMissesEq1(t *testing.T) {
	p := Params{R: 3200, L: 32, W: 17}
	if got := p.Misses(); got != 117 {
		t.Fatalf("Λm = %g, want R/L + W = 117", got)
	}
}

func TestSFromHitRatio(t *testing.T) {
	s, err := SFromHitRatio(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s, 19, 1e-12) {
		t.Fatalf("s(0.95) = %g, want 19", s)
	}
	if !almost(HitRatioFromS(s), 0.95, 1e-12) {
		t.Fatal("HitRatioFromS does not invert")
	}
	for _, bad := range []float64{0, 1, -0.2, 1.5, math.NaN()} {
		if _, err := SFromHitRatio(bad); err == nil {
			t.Errorf("SFromHitRatio(%v) accepted", bad)
		}
	}
}

func TestExecutionTimeEq2ByHand(t *testing.T) {
	// E=1000, R=320 bytes, L=32, D=4, W=5, α=0.5, φ=8 (FS), βm=10.
	// Λm = 10 + 5 = 15.
	// X = (1000−15) + 10·8·10 + 0.5·80·10 + 5·10 = 985 + 800 + 400 + 50.
	p := Params{E: 1000, R: 320, W: 5, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 10}
	if got := ExecutionTime(p); !almost(got, 2235, 1e-9) {
		t.Fatalf("X = %g, want 2235", got)
	}
	if got := MemoryDelayCycles(p); !almost(got, 1250, 1e-9) {
		t.Fatalf("delay cycles = %g, want 1250", got)
	}
}

func TestExecutionTimeWithBuffersDropsWriteTerms(t *testing.T) {
	p := Params{E: 1000, R: 320, W: 5, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 10}
	if got := ExecutionTimeWithBuffers(p); !almost(got, 985+800, 1e-9) {
		t.Fatalf("X with buffers = %g, want 1785", got)
	}
}

func TestExecutionTimePipelinedEq9(t *testing.T) {
	// βp = 10 + 2·7 = 24; X = 985 + 10·24 + 0.5·10·24 + 5·10.
	p := Params{E: 1000, R: 320, W: 5, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 10}
	if got := ExecutionTimePipelined(p, 2); !almost(got, 985+240+120+50, 1e-9) {
		t.Fatalf("pipelined X = %g, want 1395", got)
	}
}

func TestBetaP(t *testing.T) {
	if got := BetaP(10, 2, 32, 4); got != 24 {
		t.Fatalf("βp = %g, want 24", got)
	}
	// L = D: degenerates to βm.
	if got := BetaP(10, 2, 4, 4); got != 10 {
		t.Fatalf("βp(L=D) = %g, want 10", got)
	}
}

func TestBusDoublingLimitCases(t *testing.T) {
	// §4.1 first limit: L = 2D, βm = 2, α = α' = 0.5 ⇒ r = 2.5.
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 2.5, 1e-12) {
		t.Fatalf("r at design limit = %g, want 2.5", r)
	}
	// Second limit: βm → ∞ ⇒ r → 2 (L'Hospital).
	r, err = MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 8, 4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 2, 1e-6) {
		t.Fatalf("r at large βm = %g, want → 2", r)
	}
	if lim := limitRatioLargeBeta(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 8, 4); !almost(lim, 2, 1e-12) {
		t.Fatalf("analytic limit = %g, want 2", lim)
	}
}

func TestHitRatioTradingHeadline(t *testing.T) {
	// "The performance loss due to reducing cache hit ratio from 0.95
	// to 0.9 (= 2·0.95−1) ... can be compensated by doubling the
	// external data bus": with r = 2, HR2 = 2·HR1 − 1.
	tr, err := DeltaHR(0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(tr.NewHR, 0.90, 1e-12) {
		t.Fatalf("HR2 = %g, want 0.90", tr.NewHR)
	}
	if !almost(EquivalentHitRatio(0.95, 2), 0.90, 1e-12) {
		t.Fatal("EquivalentHitRatio identity broken")
	}
	// r = 2.5 ⇒ HR2 = 2.5·HR1 − 1.5.
	tr, err = DeltaHR(0.95, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(tr.NewHR, 0.875, 1e-12) {
		t.Fatalf("HR2 = %g, want 0.875", tr.NewHR)
	}
	if !almost(EquivalentHitRatio(0.98, 2), 0.96, 1e-12) {
		t.Fatal("0.98 → 0.96 example broken")
	}
}

func TestDeltaHRValidityGuard(t *testing.T) {
	// A huge r must flag HR2 <= 0 as non-physical.
	tr, err := DeltaHR(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Valid {
		t.Fatalf("HR2 = %g flagged valid", tr.NewHR)
	}
	if _, err := DeltaHR(0.95, 0); err == nil {
		t.Fatal("r = 0 accepted")
	}
	if _, err := DeltaHR(1.2, 2); err == nil {
		t.Fatal("hit ratio 1.2 accepted")
	}
}

func TestDeltaHRWideBaseEq7(t *testing.T) {
	// §4.1: with L = 2D, βm = 2: r' = 0.4 ⇒ ΔHR = 0.6(1−HR2);
	// large βm: r' = 0.5 ⇒ ΔHR = 0.5(1−HR2).
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeltaHRWideBase(0.9, 1/r)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 0.6*(1-0.9), 1e-12) {
		t.Fatalf("ΔHR = %g, want 0.6·(1−HR)", d)
	}
	d, err = DeltaHRWideBase(0.9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 0.5*(1-0.9), 1e-12) {
		t.Fatalf("ΔHR = %g, want 0.5·(1−HR)", d)
	}
	if _, err := DeltaHRWideBase(0.9, 1.5); err == nil {
		t.Fatal("r' above 1 accepted")
	}
}

func TestMissRatioOfCachesDomain(t *testing.T) {
	if _, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 4, 4, 4); err == nil {
		t.Fatal("L < 2D accepted for bus doubling")
	}
	if _, err := MissRatioOfCaches(FeatureSpec{Feature: FeaturePartialStall, Phi: 0.5}, 0.5, 32, 4, 4); err == nil {
		t.Fatal("φ below 1 accepted")
	}
	if _, err := MissRatioOfCaches(FeatureSpec{Feature: FeaturePipelinedMemory, Q: 0}, 0.5, 32, 4, 4); err == nil {
		t.Fatal("q below 1 accepted")
	}
	if _, err := MissRatioOfCaches(FeatureSpec{Feature: Feature(99)}, 0.5, 32, 4, 4); err == nil {
		t.Fatal("unknown feature accepted")
	}
	if _, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, -0.1, 32, 4, 4); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 32, 4, 0.5); err == nil {
		t.Fatal("βm below 1 accepted")
	}
}

func TestWriteBufferRatioTable3(t *testing.T) {
	// Write buffers: r = ((1+α)(L/D)βm − 1)/((L/D)βm − 1).
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureWriteBuffers}, 0.5, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := (1.5*2*2 - 1) / (2*2 - 1); !almost(r, want, 1e-12) {
		t.Fatalf("write-buffer r = %g, want %g", r, want)
	}
}

func TestPartialStallRatio(t *testing.T) {
	// φ = 1 (best BL/BNL): r = ((L/D+α·L/D)βm−1)/((1+α·L/D)βm−1).
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeaturePartialStall, Phi: 1}, 0.5, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := ((8.0+4)*10 - 1) / ((1.0+4)*10 - 1)
	if !almost(r, want, 1e-12) {
		t.Fatalf("partial-stall r = %g, want %g", r, want)
	}
	// φ = L/D degenerates to the baseline: r = 1.
	r, err = MissRatioOfCaches(FeatureSpec{Feature: FeaturePartialStall, Phi: 8}, 0.5, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Fatalf("φ = L/D gives r = %g, want 1", r)
	}
}

func TestPipelinedRatioMeetsAxisAtQ(t *testing.T) {
	// At βm = q the pipelined system equals the non-pipelined one
	// (βp = q·L/D = (L/D)βm): r = 1, ΔHR = 0 — where the solid lines
	// meet the x-axis in Figures 3–5.
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeaturePipelinedMemory, Q: 2}, 0.5, 32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Fatalf("pipelined r at βm = q: %g, want 1", r)
	}
}

func TestPipelineCrossoverClosedForm(t *testing.T) {
	// §5.3: q = 2, L/D = 8 ⇒ βm* = 2·7/3 ≈ 4.67 ("about five or six").
	x, err := PipelineCrossover(2, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x, 14.0/3, 1e-12) {
		t.Fatalf("crossover = %g, want 14/3", x)
	}
	if x < 4 || x > 6 {
		t.Fatalf("crossover %g outside the paper's five-or-six claim", x)
	}
	// L = 2D: pipelining never overtakes bus doubling (Figure 3).
	x, err = PipelineCrossover(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(x, 1) {
		t.Fatalf("L=2D crossover = %g, want +Inf", x)
	}
	if _, err := PipelineCrossover(2, 4, 4); err == nil {
		t.Fatal("L < 2D accepted")
	}
	if _, err := PipelineCrossover(0.5, 32, 4); err == nil {
		t.Fatal("q < 1 accepted")
	}
}

func TestCrossoverAgreesWithRatios(t *testing.T) {
	// The closed-form crossover must agree with direct comparison of
	// Table 3 ratios for every α and βm.
	x, err := PipelineCrossover(2, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for betaM := 2.0; betaM <= 20; betaM++ {
			beats, err := PipelineBeatsBus(alpha, 32, 4, betaM, 2)
			if err != nil {
				t.Fatal(err)
			}
			if want := betaM >= x; beats != want {
				t.Fatalf("α=%g βm=%g: beats=%v, closed form says %v", alpha, betaM, beats, want)
			}
		}
	}
}

func TestRankFeaturesSection53(t *testing.T) {
	// §5.3 ranking below the crossover: doubling bus > write buffers >
	// BNL, for a wide βm range and both line sizes, φ from Figure 1's
	// high measured values.
	for _, l := range []float64{8, 32} {
		for betaM := 6.0; betaM <= 20; betaM += 2 {
			phi := 0.9 * l / 4 // BNL1-like: 90% of full stalling
			if phi < 1 {
				phi = 1
			}
			ranked, err := RankFeatures(0.95, 0.5, l, 4, betaM, phi, 2)
			if err != nil {
				t.Fatal(err)
			}
			pos := map[Feature]int{}
			for i, tr := range ranked {
				pos[tr.Feature] = i
			}
			if pos[FeatureDoubleBus] > pos[FeatureWriteBuffers] ||
				pos[FeatureWriteBuffers] > pos[FeaturePartialStall] {
				t.Fatalf("L=%g βm=%g: ranking %v violates §5.3", l, betaM, ranked)
			}
		}
	}
}

func TestMeanDelayEquivalence(t *testing.T) {
	// §4.5: when X(D) = X(2D) by construction (R' = r·R), the mean
	// memory delay per data reference is equal in the two systems, and
	// the equality is independent of the non-load/store instruction
	// count. Hold total data references fixed (Λh+Λm = Λ'h+Λ'm).
	const (
		alpha = 0.5
		l     = 32.0
		d     = 4.0
		betaM = 10.0
	)
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, alpha, l, d, betaM)
	if err != nil {
		t.Fatal(err)
	}
	for _, nls := range []float64{0, 1e5, 7e5} {
		refs := 3e5
		base := Params{E: nls + refs, R: 320000, W: 0, Alpha: alpha, Phi: l / d, D: d, L: l, BetaM: betaM}
		wide := Params{E: nls + refs, R: r * 320000, W: 0, Alpha: alpha, Phi: l / (2 * d), D: 2 * d, L: l, BetaM: betaM}
		x1, x2 := ExecutionTime(base), ExecutionTime(wide)
		if !almost(x1, x2, 1e-6*x1) {
			t.Fatalf("NLS=%g: X(D)=%g != X(2D)=%g", nls, x1, x2)
		}
		m1 := MeanMemoryDelay(base, refs)
		m2 := MeanMemoryDelay(wide, refs)
		if !almost(m1, m2, 1e-9*m1) {
			t.Fatalf("NLS=%g: mean delays differ: %g vs %g", nls, m1, m2)
		}
	}
}

func TestMeanMemoryDelayDegenerate(t *testing.T) {
	p := Params{E: 100, R: 3200, L: 32, D: 4, Phi: 8, BetaM: 4}
	if got := MeanMemoryDelay(p, 0); got != 0 {
		t.Fatalf("zero refs delay = %g", got)
	}
	if got := MeanMemoryDelay(p, 50); got != 0 { // fewer refs than misses
		t.Fatalf("inconsistent refs delay = %g", got)
	}
}

func TestFeatureTradeoffEndToEnd(t *testing.T) {
	tr, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.98, 0.5, 32, 4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 upper panel: base 98%, large βm, L=32 ⇒ ΔHR ≈ 2%.
	if !almost(tr.DeltaHR, 0.02, 1e-6) {
		t.Fatalf("ΔHR = %g, want ≈ 0.02", tr.DeltaHR)
	}
	if tr.Feature != FeatureDoubleBus || !tr.Valid {
		t.Fatalf("tradeoff metadata wrong: %+v", tr)
	}
}

func TestFeatureStrings(t *testing.T) {
	for _, f := range Features() {
		if f.String() == "" {
			t.Fatalf("feature %d has empty String", int(f))
		}
	}
	if Feature(42).String() != "Feature(42)" {
		t.Fatal("unknown feature String wrong")
	}
}

func TestDeltaHRPropertyMonotonicInR(t *testing.T) {
	// Property: ΔHR grows with r and shrinks with the base hit ratio's
	// miss ratio; HR1 − ΔHR == HR2 == 1 − r(1−HR1).
	f := func(hrPct, rTenths uint8) bool {
		hr := 0.5 + float64(hrPct%50)/100 // 0.50..0.99
		r := 1 + float64(rTenths%30)/10   // 1.0..3.9
		tr, err := DeltaHR(hr, r)
		if err != nil {
			return false
		}
		return almost(tr.NewHR, EquivalentHitRatio(hr, r), 1e-12) && tr.DeltaHR >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusWidthByteRatioEq3(t *testing.T) {
	// Full-blocking, α = α': must equal the Table 3 double-bus ratio.
	want, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 32, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BusWidthByteRatio(8, 4, 0.5, 0.5, 32, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, want, 1e-12) {
		t.Fatalf("Eq. 3 = %g, Table 3 = %g", got, want)
	}
	if _, err := BusWidthByteRatio(2, 1, 0.5, 0.5, 4, 4, 6); err == nil {
		t.Fatal("L < 2D accepted")
	}
}

func TestExampleOneShortLevy(t *testing.T) {
	// Example 1: 8K at 91% + 64-bit bus ≈ 32K at 95.5% + 32-bit bus.
	// The needed hit ratio must land within half a point of 95.5%.
	eq, err := ExampleOne(ShortLevyHR8K, ShortLevyHR32K, 0.5, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(eq.NeededHR, 0.955, 0.005) {
		t.Fatalf("needed HR = %g, want ≈ 0.955", eq.NeededHR)
	}
	if eq.DeltaHR <= 0 || eq.RInv <= 0 || eq.RInv > 1 {
		t.Fatalf("equivalence internals wrong: %+v", eq)
	}
	if _, err := ExampleOne(1.2, 0.9, 0.5, 32, 4, 10); err == nil {
		t.Fatal("bad hit ratio accepted")
	}
}

func TestTradedHRShrinksWithMemoryCycle(t *testing.T) {
	// §5.1: "as the memory cycle time increases, the traded hit ratio
	// is reduced" (hit ratio becomes more precious).
	var prev = math.Inf(1)
	for betaM := 2.0; betaM <= 20; betaM++ {
		tr, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.98, 0.5, 32, 4, betaM)
		if err != nil {
			t.Fatal(err)
		}
		if tr.DeltaHR > prev+1e-12 {
			t.Fatalf("βm=%g: ΔHR %g rose above %g", betaM, tr.DeltaHR, prev)
		}
		prev = tr.DeltaHR
	}
}

func TestTradedHRSmallerForLargerLines(t *testing.T) {
	// §5.1: with the same base hit ratio, the hit ratio traded for a
	// large line size is smaller than for a small line size.
	small, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.98, 0.5, 8, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	large, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.98, 0.5, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if large.DeltaHR >= small.DeltaHR {
		t.Fatalf("ΔHR(L=32)=%g not below ΔHR(L=8)=%g", large.DeltaHR, small.DeltaHR)
	}
}

func TestFullStallHelpers(t *testing.T) {
	p := Params{E: 1000, R: 320, Alpha: 0.5, D: 4, L: 32, BetaM: 4}
	if got := p.FullStall(); got != 8 {
		t.Fatalf("FullStall = %g, want L/D = 8", got)
	}
	q := p.WithFullStall()
	if q.Phi != 8 {
		t.Fatalf("WithFullStall φ = %g, want 8", q.Phi)
	}
	if p.Phi != 0 {
		t.Fatal("WithFullStall mutated its receiver")
	}
}

func TestLimitRatioLargeBetaAllFeatures(t *testing.T) {
	cases := []struct {
		spec FeatureSpec
		want float64
	}{
		{FeatureSpec{Feature: FeatureDoubleBus}, 2},
		{FeatureSpec{Feature: FeaturePartialStall, Phi: 4}, 12.0 / 8},
		{FeatureSpec{Feature: FeatureWriteBuffers}, 1.5},
		{FeatureSpec{Feature: FeaturePipelinedMemory, Q: 2}, 8},
	}
	for _, tc := range cases {
		if got := limitRatioLargeBeta(tc.spec, 0.5, 32, 4); !almost(got, tc.want, 1e-12) {
			t.Errorf("%v: limit = %g, want %g", tc.spec.Feature, got, tc.want)
		}
	}
	if got := limitRatioLargeBeta(FeatureSpec{Feature: Feature(9)}, 0.5, 32, 4); !math.IsNaN(got) {
		t.Errorf("unknown feature limit = %g, want NaN", got)
	}
}

func TestErrorPropagationThroughWrappers(t *testing.T) {
	// The thin wrappers must surface domain errors from their cores.
	if _, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.95, 0.5, 4, 4, 8); err == nil {
		t.Error("FeatureTradeoff passed L < 2D")
	}
	if _, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 1.5, 0.5, 32, 4, 8); err == nil {
		t.Error("FeatureTradeoff passed bad hit ratio")
	}
	if _, err := MultiIssueTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.95, 0.5, 32, 4, 8, 0); err == nil {
		t.Error("MultiIssueTradeoff passed bad issue width")
	}
	if _, err := MultiIssueTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 2, 0.5, 32, 4, 8, 2); err == nil {
		t.Error("MultiIssueTradeoff passed bad hit ratio")
	}
	if _, err := ProfileTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, WorkloadProfile{R: -1, L: 32}, 0.95, 4, 8); err == nil {
		t.Error("ProfileTradeoff passed bad profile")
	}
	if _, err := ProfileTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, WorkloadProfile{R: 3200, Alpha: 0.5, L: 32}, 1.5, 4, 8); err == nil {
		t.Error("ProfileTradeoff passed bad hit ratio")
	}
	if _, err := PipelineBeatsBus(0.5, 4, 4, 8, 2); err == nil {
		t.Error("PipelineBeatsBus passed L < 2D")
	}
	if _, err := PipelineBeatsBus(0.5, 32, 4, 8, 0); err == nil {
		t.Error("PipelineBeatsBus passed q < 1")
	}
	if _, err := LineMissRatioOfCaches(0.5, 0.5, 5, 2, 32, 16, 4); err == nil {
		t.Error("LineMissRatioOfCaches passed L* <= L0")
	}
	if _, err := DeltaEHR(1.5, 0.5, 0.5, 5, 2, 16, 32, 4); err == nil {
		t.Error("DeltaEHR passed bad hit ratio")
	}
	if _, err := DeltaEHR(0.95, 0.5, 0.5, 5, 2, 32, 16, 4); err == nil {
		t.Error("DeltaEHR passed bad line order")
	}
	if _, err := LargerLineWorthIt(0.01, 1.5, 0.5, 0.5, 5, 2, 16, 32, 4); err == nil {
		t.Error("LargerLineWorthIt passed bad hit ratio")
	}
	if _, err := ReducedDelay(1.5, 0.96, 5, 2, 16, 32, 4); err == nil {
		t.Error("ReducedDelay passed bad hit ratio")
	}
	if _, err := PriceL2(0.9, 0.8, 0.5, 80); err == nil {
		t.Error("PriceL2 passed bad tL2")
	}
}
