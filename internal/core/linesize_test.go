package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFillTime(t *testing.T) {
	if got := FillTime(5, 2, 32, 4); got != 21 {
		t.Fatalf("fill time = %g, want c + (L/D)β = 21", got)
	}
}

func TestLineExecTimeEq11(t *testing.T) {
	// E=1000, R=320, L=32, D=4, W=5, α=0.5, c=5, β=2:
	// X = (1000−10−5) + 10·1.5·21 + 5·7 = 985 + 315 + 35.
	got := LineExecTime(1000, 320, 5, 0.5, 5, 2, 32, 4)
	if !almost(got, 1335, 1e-9) {
		t.Fatalf("Eq. 11 = %g, want 1335", got)
	}
}

func TestLineByteRatioEq13(t *testing.T) {
	// Hand check: L0=16, L*=32, D=4, c=5, β=2, α=α*=0.5.
	// num = 1.5·(5+8)−1 = 18.5; den = 1.5·(5+16)−1 = 30.5.
	// R*/R = 2·18.5/30.5.
	got, err := LineByteRatio(0.5, 0.5, 5, 2, 16, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 18.5 / 30.5; !almost(got, want, 1e-12) {
		t.Fatalf("Eq. 13 = %g, want %g", got, want)
	}
	if _, err := LineByteRatio(0.5, 0.5, 5, 2, 32, 16, 4); err == nil {
		t.Fatal("L* <= L0 accepted")
	}
}

func TestLineMissRatioBelowOne(t *testing.T) {
	// Eq. 14's r < 1: the larger line affords fewer misses.
	f := func(lExp uint8, cRaw, bRaw uint8) bool {
		l0 := float64(int(8) << (lExp % 3)) // 8..32
		lStar := l0 * 2
		c := 1 + float64(cRaw%50)    // 1..50
		beta := 1 + float64(bRaw%10) // 1..10
		r, err := LineMissRatioOfCaches(0.5, 0.5, c, beta, l0, lStar, 4)
		if err != nil {
			return false
		}
		return r > 0 && r < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEHRPositive(t *testing.T) {
	d, err := DeltaEHR(0.95, 0.5, 0.5, 5, 2, 16, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("ΔEHR = %g, want > 0 (Eq. 14)", d)
	}
}

func TestLargerLineWorthItDecision(t *testing.T) {
	need, err := DeltaEHR(0.95, 0.5, 0.5, 5, 2, 16, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := LargerLineWorthIt(need*2, 0.95, 0.5, 0.5, 5, 2, 16, 32, 4)
	if err != nil || !ok {
		t.Fatalf("double the needed gain rejected (err=%v)", err)
	}
	ok, err = LargerLineWorthIt(need/2, 0.95, 0.5, 0.5, 5, 2, 16, 32, 4)
	if err != nil || ok {
		t.Fatalf("half the needed gain accepted (err=%v)", err)
	}
}

func TestMeanDelayPerRefEq15(t *testing.T) {
	// HR=0.9, c=5, β=2, L=32, D=4: 0.9 + 0.1·21 = 3.0.
	if got := MeanDelayPerRef(0.9, 5, 2, 32, 4); !almost(got, 3.0, 1e-12) {
		t.Fatalf("Eq. 15 delay = %g, want 3.0", got)
	}
}

func TestReducedDelayIdentity(t *testing.T) {
	// Eq. (19) must equal the direct mean-delay difference
	// delay(L0) − delay(Li) — the identity that makes the paper's
	// "exactly match with Smith" validation work (§5.4.2).
	f := func(hr0Pct, gainPct, cRaw, bRaw, liExp uint8) bool {
		hr0 := 0.80 + float64(hr0Pct%15)/100
		hrI := hr0 + float64(gainPct%5)/100 // larger line never worse here
		if hrI >= 1 {
			hrI = 0.999
		}
		c := 1 + float64(cRaw%40)
		beta := 1 + float64(bRaw%8)
		l0 := 8.0
		li := l0 * float64(int(2)<<(liExp%4)) // 16..128
		rd, err := ReducedDelay(hr0, hrI, c, beta, l0, li, 4)
		if err != nil {
			return false
		}
		direct := MeanDelayPerRef(hr0, c, beta, l0, 4) - MeanDelayPerRef(hrI, c, beta, li, 4)
		return almost(rd, direct, 1e-9*math.Max(1, math.Abs(direct)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReducedDelaySameLineIsZero(t *testing.T) {
	rd, err := ReducedDelay(0.9, 0.9, 5, 2, 16, 16, 4)
	if err != nil || rd != 0 {
		t.Fatalf("same-line reduced delay = %g (err=%v)", rd, err)
	}
}

func TestReducedDelayNegativeWhenBusTooSlow(t *testing.T) {
	// §5.4.2: with a tiny hit-ratio gain and a slow bus, the larger
	// line's transfer cost dominates and the reduced delay is negative.
	rd, err := ReducedDelay(0.95, 0.9505, 2, 10, 8, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rd >= 0 {
		t.Fatalf("reduced delay = %g, want negative for slow bus", rd)
	}
}
