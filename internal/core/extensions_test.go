package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultiIssueReducesToSingleIssue(t *testing.T) {
	for _, spec := range []FeatureSpec{
		{Feature: FeatureDoubleBus},
		{Feature: FeaturePartialStall, Phi: 2},
		{Feature: FeatureWriteBuffers},
		{Feature: FeaturePipelinedMemory, Q: 2},
	} {
		want, err := MissRatioOfCaches(spec, 0.5, 32, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MissRatioOfCachesMultiIssue(spec, 0.5, 32, 4, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, want, 1e-12) {
			t.Fatalf("%v: issue=1 r=%g, single-issue r=%g", spec.Feature, got, want)
		}
	}
}

func TestMultiIssueConvergesToLargeBetaLimit(t *testing.T) {
	// As issue width grows, the hit cycle a miss displaces vanishes and
	// r approaches the βm→∞ limit of the single-issue model.
	spec := FeatureSpec{Feature: FeatureDoubleBus}
	lim := limitRatioLargeBeta(spec, 0.5, 8, 4) // = 2
	r1, err := MissRatioOfCachesMultiIssue(spec, 0.5, 8, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := MissRatioOfCachesMultiIssue(spec, 0.5, 8, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := MissRatioOfCachesMultiIssue(spec, 0.5, 8, 4, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(r64-lim) < math.Abs(r8-lim) && math.Abs(r8-lim) < math.Abs(r1-lim)) {
		t.Fatalf("r not converging to limit %g: %g, %g, %g", lim, r1, r8, r64)
	}
	if !almost(r64, lim, 0.01) {
		t.Fatalf("issue=64 r=%g, want ≈%g", r64, lim)
	}
}

func TestMultiIssueExecutionTime(t *testing.T) {
	p := Params{E: 1000, R: 320, W: 5, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 10}
	// Single issue must equal Eq. (2).
	x1, err := ExecutionTimeMultiIssue(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x1, ExecutionTime(p), 1e-9) {
		t.Fatalf("issue=1 X=%g != Eq.2 %g", x1, ExecutionTime(p))
	}
	// Issue 2 halves only the non-stalled part: (1000−15)/2 + 1250.
	x2, err := ExecutionTimeMultiIssue(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x2, 985.0/2+1250, 1e-9) {
		t.Fatalf("issue=2 X=%g, want %g", x2, 985.0/2+1250)
	}
	if _, err := ExecutionTimeMultiIssue(p, 0.5); err == nil {
		t.Fatal("issue < 1 accepted")
	}
}

func TestMultiIssueDomainErrors(t *testing.T) {
	bad := []struct {
		name string
		f    func() (float64, error)
	}{
		{"issue<1", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 32, 4, 8, 0.5)
		}},
		{"L<2D", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 4, 4, 8, 2)
		}},
		{"phi<1", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: FeaturePartialStall, Phi: 0}, 0.5, 32, 4, 8, 2)
		}},
		{"q<1", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: FeaturePipelinedMemory}, 0.5, 32, 4, 8, 2)
		}},
		{"unknown", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: Feature(9)}, 0.5, 32, 4, 8, 2)
		}},
		{"alpha", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: FeatureDoubleBus}, 2, 32, 4, 8, 2)
		}},
		{"beta<1", func() (float64, error) {
			return MissRatioOfCachesMultiIssue(FeatureSpec{Feature: FeatureDoubleBus}, 0.5, 32, 4, 0, 2)
		}},
	}
	for _, tc := range bad {
		if _, err := tc.f(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestMultiIssueTradeoffShrinksDeltaHR(t *testing.T) {
	// Wider issue makes hit ratio more precious: ΔHR traded by bus
	// doubling at small βm shrinks toward the large-βm value.
	spec := FeatureSpec{Feature: FeatureDoubleBus}
	t1, err := MultiIssueTradeoff(spec, 0.95, 0.5, 8, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := MultiIssueTradeoff(spec, 0.95, 0.5, 8, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4.DeltaHR >= t1.DeltaHR {
		t.Fatalf("issue=4 ΔHR %g not below issue=1 ΔHR %g", t4.DeltaHR, t1.DeltaHR)
	}
}

func TestProfileReducesToWriteAllocate(t *testing.T) {
	// With W = 0 the profile-based ratio must equal Table 3's exactly,
	// for every feature and a sweep of design points.
	specs := []FeatureSpec{
		{Feature: FeatureDoubleBus},
		{Feature: FeaturePartialStall, Phi: 3},
		{Feature: FeatureWriteBuffers},
		{Feature: FeaturePipelinedMemory, Q: 2},
	}
	for _, spec := range specs {
		for _, betaM := range []float64{2, 5, 10, 20} {
			w := WorkloadProfile{R: 64000, W: 0, Alpha: 0.5, L: 32}
			want, err := MissRatioOfCaches(spec, 0.5, 32, 4, betaM)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MissRatioOfCachesProfile(spec, w, 4, betaM)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(got, want, 1e-9) {
				t.Fatalf("%v βm=%g: profile r=%g, Table 3 r=%g", spec.Feature, betaM, got, want)
			}
		}
	}
}

func TestProfileWriteBuffersGainMoreUnderWriteAround(t *testing.T) {
	// With write-around traffic (W > 0) the read-bypassing buffers hide
	// the W·βm term too, so they trade MORE hit ratio than under
	// write-allocate at the same design point.
	withW := WorkloadProfile{R: 64000, W: 500, Alpha: 0.5, L: 32}
	noW := WorkloadProfile{R: 64000, W: 0, Alpha: 0.5, L: 32}
	spec := FeatureSpec{Feature: FeatureWriteBuffers}
	rW, err := MissRatioOfCachesProfile(spec, withW, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := MissRatioOfCachesProfile(spec, noW, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rW <= r0 {
		t.Fatalf("write-around r=%g not above write-allocate r=%g", rW, r0)
	}
}

func TestProfileBusDoublingInsensitiveToW(t *testing.T) {
	// Bus doubling leaves the W·βm term unchanged on both sides (a
	// <= D-byte store is one memory cycle either way), so W dilutes but
	// never flips the tradeoff; r stays above 1.
	for _, wCount := range []float64{0, 100, 10000} {
		w := WorkloadProfile{R: 64000, W: wCount, Alpha: 0.5, L: 32}
		r, err := MissRatioOfCachesProfile(FeatureSpec{Feature: FeatureDoubleBus}, w, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 1 {
			t.Fatalf("W=%g: r=%g, want > 1", wCount, r)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	good := WorkloadProfile{R: 3200, W: 10, Alpha: 0.5, L: 32}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []WorkloadProfile{
		{R: -1, L: 32},
		{R: 100, W: -1, L: 32},
		{R: 100, Alpha: 2, L: 32},
		{R: 100, L: 0},
		{R: 0, W: 0, L: 32},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
	if _, err := MissRatioOfCachesProfile(FeatureSpec{Feature: FeatureDoubleBus}, WorkloadProfile{R: 100, L: 4, Alpha: 0}, 4, 10); err == nil {
		t.Error("L < 2D accepted")
	}
	if _, err := MissRatioOfCachesProfile(FeatureSpec{Feature: FeatureDoubleBus}, good, 4, 0.5); err == nil {
		t.Error("βm < 1 accepted")
	}
	if _, err := MissRatioOfCachesProfile(FeatureSpec{Feature: Feature(9)}, good, 4, 10); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestProfileTradeoffEndToEnd(t *testing.T) {
	w := WorkloadProfile{R: 64000, W: 200, Alpha: 0.5, L: 32}
	tr, err := ProfileTradeoff(FeatureSpec{Feature: FeatureWriteBuffers}, w, 0.95, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeltaHR <= 0 || !tr.Valid {
		t.Fatalf("tradeoff %+v", tr)
	}
}

func TestICacheExecutionTime(t *testing.T) {
	p := ICacheParams{
		Params: Params{E: 1000, R: 320, W: 0, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 10},
		RI:     640, PhiI: 8,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Data part: 990 + 800 + 400 = 2190; I-part: 20·8·10 = 1600.
	if got := ExecutionTimeWithICache(p); !almost(got, 2190+1600, 1e-9) {
		t.Fatalf("X with I-cache = %g, want 3790", got)
	}
}

func TestICacheValidation(t *testing.T) {
	base := Params{E: 1000, R: 320, Alpha: 0.5, Phi: 8, D: 4, L: 32, BetaM: 10}
	bad := []ICacheParams{
		{Params: base, RI: -1},
		{Params: base, RI: 100, PhiI: 0.5},
		{Params: base, RI: 100, PhiI: 9},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad icache params %d accepted", i)
		}
	}
	ok := ICacheParams{Params: base, RI: 0, PhiI: 0} // no I-misses: φI unused
	if err := ok.Validate(); err != nil {
		t.Errorf("zero-RI params rejected: %v", err)
	}
}

func TestICacheTradeoffMatchesDataCacheAtAlphaZero(t *testing.T) {
	// §4.5: the model applies to instruction caches in the same form.
	// A read-only data stream (α = 0) must price bus doubling
	// identically to the I-cache tradeoff.
	it, err := ICacheTradeoff(0.98, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := FeatureTradeoff(FeatureSpec{Feature: FeatureDoubleBus}, 0.98, 0, 32, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(it.DeltaHR, dt.DeltaHR, 1e-12) {
		t.Fatalf("I-cache ΔHR %g != α=0 data ΔHR %g", it.DeltaHR, dt.DeltaHR)
	}
	if _, err := ICacheTradeoff(0.98, 4, 4, 10); err == nil {
		t.Fatal("L < 2D accepted")
	}
}

func TestProfileScalesLinearlyQuick(t *testing.T) {
	// Property: scaling a profile (R, W) by a constant leaves the
	// miss-count ratio unchanged — the tradeoff depends on the shape of
	// the traffic, not its volume.
	f := func(scaleRaw uint8, wRaw uint16, betaRaw uint8) bool {
		scale := float64(scaleRaw%9) + 1
		w := WorkloadProfile{R: 64000, W: float64(wRaw % 2000), Alpha: 0.5, L: 32}
		ws := WorkloadProfile{R: w.R * scale, W: w.W * scale, Alpha: 0.5, L: 32}
		betaM := float64(betaRaw%30) + 2
		a, err1 := MissRatioOfCachesProfile(FeatureSpec{Feature: FeatureWriteBuffers}, w, 4, betaM)
		b, err2 := MissRatioOfCachesProfile(FeatureSpec{Feature: FeatureWriteBuffers}, ws, 4, betaM)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(a, b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelDelayByHand(t *testing.T) {
	// HR1=0.9, local HR2=0.8, tL2=5, tMem=80:
	// 0.9 + 0.1·(0.8·5 + 0.2·80) = 0.9 + 0.1·20 = 2.9.
	got, err := TwoLevelDelay(0.9, 0.8, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 2.9, 1e-12) {
		t.Fatalf("two-level delay %g, want 2.9", got)
	}
}

func TestTwoLevelDelayDomain(t *testing.T) {
	if _, err := TwoLevelDelay(1.5, 0.8, 5, 80); err == nil {
		t.Fatal("bad hr1 accepted")
	}
	if _, err := TwoLevelDelay(0.9, 1.5, 5, 80); err == nil {
		t.Fatal("bad hr2 accepted")
	}
	if _, err := TwoLevelDelay(0.9, 0.8, 0.5, 80); err == nil {
		t.Fatal("tL2 below 1 accepted")
	}
	if _, err := TwoLevelDelay(0.9, 0.8, 90, 80); err == nil {
		t.Fatal("tMem below tL2 accepted")
	}
}

func TestPriceL2RoundTrip(t *testing.T) {
	// The priced ΔHR must reproduce the two-level delay when applied
	// to a single-level system.
	const (
		hr1, hr2 = 0.9, 0.8
		tL2      = 5.0
		tMem     = 80.0
	)
	w, err := PriceL2(hr1, hr2, tL2, tMem)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Achievable {
		t.Fatal("moderate L2 reported unachievable")
	}
	with, err := TwoLevelDelay(hr1, hr2, tL2, tMem)
	if err != nil {
		t.Fatal(err)
	}
	h := hr1 + w.DeltaHR
	single := h + (1-h)*tMem
	if !almost(single, with, 1e-9) {
		t.Fatalf("equivalent single-level delay %g != two-level %g", single, with)
	}
}

func TestPriceL2ExcellentL2NeedsNearPerfectL1(t *testing.T) {
	// A near-perfect fast L2 behind a mediocre L1 is worth almost the
	// whole miss stream: matching it takes an L1 above 99% where the
	// base was 50%.
	w, err := PriceL2(0.5, 0.999, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Achievable {
		t.Fatalf("finite L2 reported unachievable: %+v", w)
	}
	if equiv := 0.5 + w.DeltaHR; equiv < 0.99 {
		t.Fatalf("equivalent L1 hit ratio %.4f, want > 0.99", equiv)
	}
}

func TestPriceL2GrowsWithLocalHitRatio(t *testing.T) {
	prev := -1.0
	for _, hr2 := range []float64{0.2, 0.5, 0.8} {
		w, err := PriceL2(0.9, hr2, 5, 80)
		if err != nil {
			t.Fatal(err)
		}
		if w.DeltaHR <= prev {
			t.Fatalf("L2 worth not growing with local hit ratio: %g after %g", w.DeltaHR, prev)
		}
		prev = w.DeltaHR
	}
}
