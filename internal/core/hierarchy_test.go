package core

import (
	"testing"
	"testing/quick"
)

func TestHierarchyDelayByHand(t *testing.T) {
	// Three levels: HR 0.9/0.8/0.5, times 1/5/20, tMem=80.
	// D3 = 0.5·20 + 0.5·80 = 50
	// D2 = 0.8·5 + 0.2·50 = 14
	// D1 = 0.9·1 + 0.1·14 = 2.3
	got, err := HierarchyDelay([]LevelSpec{
		{HitRatio: 0.9, Time: 1},
		{HitRatio: 0.8, Time: 5},
		{HitRatio: 0.5, Time: 20},
	}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 2.3, 1e-12) {
		t.Fatalf("three-level delay %g, want 2.3", got)
	}
}

func TestHierarchyDelayMatchesTwoLevel(t *testing.T) {
	// The N=2 case must agree exactly with the original closed form.
	for _, c := range []struct{ hr1, hr2, tL2, tMem float64 }{
		{0.9, 0.8, 5, 80},
		{0.5, 0.999, 2, 100},
		{0, 0.3, 1, 10},
	} {
		want := c.hr1 + (1-c.hr1)*(c.hr2*c.tL2+(1-c.hr2)*c.tMem)
		got, err := TwoLevelDelay(c.hr1, c.hr2, c.tL2, c.tMem)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("TwoLevelDelay(%v) = %g, want %g (bit-exact)", c, got, want)
		}
	}
}

func TestHierarchyDelayDomain(t *testing.T) {
	if _, err := HierarchyDelay(nil, 80); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	if _, err := HierarchyDelay([]LevelSpec{{HitRatio: 1.5, Time: 1}}, 80); err == nil {
		t.Fatal("bad L1 hit ratio accepted")
	}
	if _, err := HierarchyDelay([]LevelSpec{{HitRatio: 0.9, Time: 1}, {HitRatio: 1.5, Time: 5}}, 80); err == nil {
		t.Fatal("bad L2 local hit ratio accepted")
	}
	if _, err := HierarchyDelay([]LevelSpec{{HitRatio: 0.9, Time: 0.5}}, 80); err == nil {
		t.Fatal("sub-unit L1 time accepted")
	}
	if _, err := HierarchyDelay([]LevelSpec{
		{HitRatio: 0.9, Time: 1}, {HitRatio: 0.8, Time: 10}, {HitRatio: 0.5, Time: 5}}, 80); err == nil {
		t.Fatal("non-monotone level times accepted")
	}
	if _, err := HierarchyDelay([]LevelSpec{{HitRatio: 0.9, Time: 1}, {HitRatio: 0.8, Time: 90}}, 80); err == nil {
		t.Fatal("level slower than memory accepted")
	}
}

func TestHierarchyDelayMonotoneInDepth(t *testing.T) {
	// Adding a useful level between L1 and memory can only reduce the
	// mean delay; property-check over random (clamped) specs.
	f := func(hr1, hr2 float64) bool {
		hr1 = clamp01(hr1) * 0.99
		hr2 = clamp01(hr2)
		base, err := HierarchyDelay([]LevelSpec{{HitRatio: hr1, Time: 1}}, 80)
		if err != nil {
			return false
		}
		with, err := HierarchyDelay([]LevelSpec{
			{HitRatio: hr1, Time: 1}, {HitRatio: hr2, Time: 5}}, 80)
		if err != nil {
			return false
		}
		return with <= base+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestPriceLevelMatchesPriceL2(t *testing.T) {
	levels := []LevelSpec{{HitRatio: 0.9, Time: 1}, {HitRatio: 0.8, Time: 5}}
	got, err := PriceLevel(levels, 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PriceL2(0.9, 0.8, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("PriceLevel = %+v, PriceL2 = %+v", got, want)
	}
	// And the classic closed form: h = (tMem − with)/(tMem − 1).
	with, _ := TwoLevelDelay(0.9, 0.8, 5, 80)
	h := (80 - with) / 79
	if !almost(got.DeltaHR, h-0.9, 1e-9) {
		t.Fatalf("DeltaHR %g, want %g", got.DeltaHR, h-0.9)
	}
}

func TestPriceLevelThreeDeep(t *testing.T) {
	levels := []LevelSpec{
		{HitRatio: 0.9, Time: 1},
		{HitRatio: 0.8, Time: 5},
		{HitRatio: 0.5, Time: 20},
	}
	w2, err := PriceLevel(levels, 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := PriceLevel(levels, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Achievable || !w3.Achievable {
		t.Fatalf("finite levels reported unachievable: %+v %+v", w2, w3)
	}
	// The L2 catches 80% of a 10% miss stream at 5 cycles; the L3 only
	// half of the 2% that remains, at 20 cycles. L2 must be worth more.
	if w2.DeltaHR <= w3.DeltaHR {
		t.Fatalf("L2 worth %g not above L3 worth %g", w2.DeltaHR, w3.DeltaHR)
	}
	// Round trip: removing level 2's worth from the equivalent scale
	// must reproduce the with/without delay gap.
	with, _ := HierarchyDelay(levels, 80)
	without, _ := HierarchyDelay(levels[:2], 80)
	if !almost(w3.DeltaHR*(80-1), without-with, 1e-9) {
		t.Fatalf("worth %g·(tMem−1) != delay gap %g", w3.DeltaHR, without-with)
	}
}

func TestPriceLevelDomain(t *testing.T) {
	levels := []LevelSpec{{HitRatio: 0.9, Time: 1}, {HitRatio: 0.8, Time: 5}}
	if _, err := PriceLevel(levels, 0, 80); err == nil {
		t.Fatal("pricing the first level accepted")
	}
	if _, err := PriceLevel(levels, 2, 80); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if _, err := PriceLevel(levels, 1, 1); err == nil {
		t.Fatal("tMem at the unit hit time accepted")
	}
}
