package core

import (
	"fmt"
	"math"
)

// BetaP evaluates Eq. (9), the pipelined memory cycle time for an
// L-byte request:
//
//	βp = βm + q·(L/D − 1)
//
// With L = D it degenerates to βm — pipelining cannot help a
// single-transfer line, which is why the unified-comparison curves
// (Figures 3–5) meet the x-axis at βm = q.
func BetaP(betaM, q, l, d float64) float64 {
	return betaM + q*(l/d-1)
}

// PipelineCrossover returns the memory cycle time βm at which a
// pipelined memory system (readiness q) starts outperforming a doubled
// data bus as a hit-ratio trade (§5.3: "less than about five or six
// clock cycles for q = 2, L > 2D"). The closed form comes from setting
// the two per-miss costs equal:
//
//	(1+α)·βp = (1+α)·(L/2D)·βm  ⇒  βm* = q·(L/D − 1) / (L/2D − 1)
//
// independent of α. For L = 2D the denominator vanishes: pipelining
// never beats bus doubling (Figure 3), reported as +Inf.
func PipelineCrossover(q, l, d float64) (float64, error) {
	if l < 2*d || d <= 0 {
		return 0, fmt.Errorf("core: crossover needs L >= 2D (L=%g, D=%g)", l, d)
	}
	if q < 1 {
		return 0, fmt.Errorf("core: q = %g, want >= 1", q)
	}
	n := l / d
	den := n/2 - 1
	if den <= 0 {
		return math.Inf(1), nil
	}
	return q * (n - 1) / den, nil
}

// PipelineBeatsBus reports whether the pipelined memory trades at least
// as much hit ratio as bus doubling at memory cycle betaM, by direct
// comparison of the Table 3 ratios. It must agree with the closed-form
// crossover; TestCrossoverAgreesWithRatios checks that.
func PipelineBeatsBus(alpha, l, d, betaM, q float64) (bool, error) {
	rPipe, err := MissRatioOfCaches(FeatureSpec{Feature: FeaturePipelinedMemory, Q: q}, alpha, l, d, betaM)
	if err != nil {
		return false, err
	}
	rBus, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, alpha, l, d, betaM)
	if err != nil {
		return false, err
	}
	return rPipe >= rBus, nil
}
