package core

// ExecutionTime evaluates the CPU execution-time model of Eq. (2):
//
//	X = (E − Λm) + (R/L)·φ·βm + α·(R/D)·βm + W·βm
//
// in processor clock cycles. The terms are, in order: one cycle for
// every non-missing instruction (load/store hits included, by the
// pipelining assumption of §3.1), the read-miss stalls, the dirty-line
// flush stalls (no write buffers), and the write-around miss cycles.
func ExecutionTime(p Params) float64 {
	return p.E - p.Misses() +
		(p.R/p.L)*p.Phi*p.BetaM +
		p.Alpha*(p.R/p.D)*p.BetaM +
		p.W*p.BetaM
}

// ExecutionTimeWithBuffers is Eq. (2) with ideal read-bypassing write
// buffers: the flush term α(R/D)βm and the write-around term W·βm are
// completely hidden (§4.3, Table 3).
func ExecutionTimeWithBuffers(p Params) float64 {
	return p.E - p.Misses() + (p.R/p.L)*p.Phi*p.BetaM
}

// ExecutionTimePipelined is Eq. (2) for a pipelined memory system with
// readiness interval q: each full-blocking miss stalls βp = βm +
// q(L/D − 1) cycles (Eq. 9), and each flushed line likewise occupies βp
// (§4.4, Table 3).
func ExecutionTimePipelined(p Params, q float64) float64 {
	bp := BetaP(p.BetaM, q, p.L, p.D)
	return p.E - p.Misses() +
		(p.R/p.L)*bp +
		p.Alpha*(p.R/p.L)*bp +
		p.W*p.BetaM
}

// MemoryDelayCycles returns the total stall cycles of Eq. (2) — the
// read-miss, flush and write-around terms, i.e. X − (E − Λm). In the
// paper's accounting a missing load/store contributes no base cycle;
// its whole cost appears in these stall terms.
func MemoryDelayCycles(p Params) float64 { return ExecutionTime(p) - (p.E - p.Misses()) }

// MeanMemoryDelay returns the mean memory delay time per data memory
// reference (§4.5):
//
//	(φ·(R/L)·βm + α·(R/D)·βm + W·βm + Λh) / (Λh + Λm)
//
// where Λh is derived from the total number of data references. The
// paper proves the tradeoff model equates exactly this quantity between
// two systems, which makes it independent of the non-load/store
// instruction mix; TestMeanDelayEquivalence exercises that identity.
func MeanMemoryDelay(p Params, totalRefs float64) float64 {
	lm := p.Misses()
	lh := totalRefs - lm
	if totalRefs <= 0 || lh < 0 {
		return 0
	}
	stall := (p.R/p.L)*p.Phi*p.BetaM + p.Alpha*(p.R/p.D)*p.BetaM + p.W*p.BetaM
	return (stall + lh) / totalRefs
}
