package core_test

import (
	"fmt"

	"tradeoff/internal/core"
)

// The execution-time model of Eq. (2): a million instructions with a
// 5% data-miss ratio on a full-blocking cache.
func ExampleExecutionTime() {
	p := core.Params{
		E:     1_000_000,
		R:     480_000, // 15k misses × 32-byte lines
		W:     0,
		Alpha: 0.5,
		Phi:   8, // full stalling: L/D
		D:     4,
		L:     32,
		BetaM: 10,
	}
	fmt.Printf("X = %.0f cycles (CPI %.2f)\n", core.ExecutionTime(p), core.ExecutionTime(p)/p.E)
	// Output:
	// X = 2785000 cycles (CPI 2.79)
}

// Eq. (6): the hit ratio bus doubling is worth, from the miss-count
// ratio r of Table 3.
func ExampleDeltaHR() {
	r, err := core.MissRatioOfCaches(core.FeatureSpec{Feature: core.FeatureDoubleBus}, 0.5, 32, 4, 10)
	if err != nil {
		panic(err)
	}
	tr, err := core.DeltaHR(0.95, r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r = %.3f, HR 0.95 -> %.4f\n", tr.R, tr.NewHR)
	// Output:
	// r = 2.017, HR 0.95 -> 0.8992
}

// Eq. (9) and the §5.3 crossover: when pipelined memory overtakes a
// doubled bus.
func ExamplePipelineCrossover() {
	x, err := core.PipelineCrossover(2, 32, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("crossover at beta_m = %.2f\n", x)
	// Output:
	// crossover at beta_m = 4.67
}

// Eq. (14): the hit-ratio gain a 64-byte line must deliver over a
// 16-byte line to break even at c = 5, β = 2.
func ExampleDeltaEHR() {
	need, err := core.DeltaEHR(0.95, 0.5, 0.5, 5, 2, 16, 64, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("needs +%.2f%% hit ratio\n", 100*need)
	// Output:
	// needs +3.30% hit ratio
}

// Pricing a measured write-around workload profile (W > 0): the
// read-bypassing write buffers hide the flushes AND the write-around
// stores, so they trade more hit ratio than under write-allocate.
func ExampleProfileTradeoff() {
	profile := core.WorkloadProfile{R: 640_000, W: 5_000, Alpha: 0.5, L: 32}
	tr, err := core.ProfileTradeoff(core.FeatureSpec{Feature: core.FeatureWriteBuffers}, profile, 0.95, 4, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("write buffers worth %.2f%% hit ratio\n", 100*tr.DeltaHR)
	// Output:
	// write buffers worth 2.70% hit ratio
}

// Pricing a second-level cache in L1 hit ratio.
func ExamplePriceL2() {
	w, err := core.PriceL2(0.90, 0.80, 5, 80)
	if err != nil {
		panic(err)
	}
	fmt.Printf("the L2 is worth %.2f%% of L1 hit ratio\n", 100*w.DeltaHR)
	// Output:
	// the L2 is worth 7.59% of L1 hit ratio
}
