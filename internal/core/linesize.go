package core

import "fmt"

// The line-size tradeoff (§5.4) uses Smith's fill-time model
// c + (L/D)·β: a constant access latency c plus β cycles per D-byte
// transfer. It answers: how much extra hit ratio must a larger line L*
// deliver before it beats a smaller line L0 on mean memory delay?

// FillTime returns c + (L/D)·β, the time to fill an L-byte line.
func FillTime(c, beta, l, d float64) float64 { return c + (l/d)*beta }

// LineExecTime evaluates Eq. (11)/(12): the execution time of a
// full-stalling write-allocate system under the c + (L/D)β fill model,
// with flush ratio alpha and W write-around misses each costing c + β.
func LineExecTime(e, r, w, alpha, c, beta, l, d float64) float64 {
	fill := FillTime(c, beta, l, d)
	return (e - r/l - w) + (r/l)*(1+alpha)*fill + w*(c+beta)
}

// LineByteRatio returns R*/R from Eq. (13): the bytes the larger-line
// system may read for equal execution time,
//
//	R*/R = (L*/L0) · ((1+α)·(c + (L0/D)β) − 1) / ((1+α*)·(c + (L*/D)β) − 1)
func LineByteRatio(alpha0, alphaStar, c, beta, l0, lStar, d float64) (float64, error) {
	if lStar <= l0 {
		return 0, fmt.Errorf("core: L* = %g must exceed L0 = %g", lStar, l0)
	}
	num := (1+alpha0)*FillTime(c, beta, l0, d) - 1
	den := (1+alphaStar)*FillTime(c, beta, lStar, d) - 1
	if num <= 0 || den <= 0 {
		return 0, fmt.Errorf("core: non-positive per-miss cost (num=%g, den=%g)", num, den)
	}
	return (lStar / l0) * num / den, nil
}

// LineMissRatioOfCaches returns r = Λ*/Λ0 = (R*/L*)/(R/L0), the
// miss-count ratio implied by Eq. (13). It is below one: the larger
// line's misses cost more, so fewer are affordable.
func LineMissRatioOfCaches(alpha0, alphaStar, c, beta, l0, lStar, d float64) (float64, error) {
	br, err := LineByteRatio(alpha0, alphaStar, c, beta, l0, lStar, d)
	if err != nil {
		return 0, err
	}
	return br * l0 / lStar, nil
}

// DeltaEHR evaluates Eq. (14): the minimum hit-ratio improvement a
// larger line must provide to match the smaller line's performance,
//
//	ΔEHR = EHR − HR = (1 − r) / (s + 1)
//
// where s comes from the smaller-line system's hit ratio hr0.
func DeltaEHR(hr0, alpha0, alphaStar, c, beta, l0, lStar, d float64) (float64, error) {
	s, err := SFromHitRatio(hr0)
	if err != nil {
		return 0, err
	}
	r, err := LineMissRatioOfCaches(alpha0, alphaStar, c, beta, l0, lStar, d)
	if err != nil {
		return 0, err
	}
	return (1 - r) / (s + 1), nil
}

// LargerLineWorthIt applies §5.4.1's decision rule: given the actual
// hit-ratio gain deltaHR of using L* over L0 (a property of the
// application at fixed cache size), the larger line improves
// performance only if deltaHR exceeds the required ΔEHR of Eq. (14).
func LargerLineWorthIt(deltaHR, hr0, alpha0, alphaStar, c, beta, l0, lStar, d float64) (bool, error) {
	need, err := DeltaEHR(hr0, alpha0, alphaStar, c, beta, l0, lStar, d)
	if err != nil {
		return false, err
	}
	return deltaHR > need, nil
}

// MeanDelayPerRef evaluates Eq. (15)'s per-reference delay for a line
// of size l under the fill model: HR·1 + (1−HR)·(c + (L/D)β). The hit
// cycle time is one, as in the paper.
func MeanDelayPerRef(hr, c, beta, l, d float64) float64 {
	return hr + (1-hr)*FillTime(c, beta, l, d)
}

// ReducedDelay evaluates Eq. (19)'s objective for candidate line li
// against base l0: (ΔMR − ΔEMR)·(c − 1 + (Li/D)β), the memory delay
// per reference saved by choosing li. A negative value means the bus
// is too slow for the larger line to exploit its higher hit ratio.
// hr0 and hrI are the measured hit ratios of the two lines; flush
// ratios are zero here to match Smith's delay criterion (Eq. 15/16).
func ReducedDelay(hr0, hrI, c, beta, l0, li, d float64) (float64, error) {
	if approxEqual(li, l0) {
		return 0, nil
	}
	dEHR, err := DeltaEHR(hr0, 0, 0, c, beta, l0, li, d)
	if err != nil {
		return 0, err
	}
	dHR := hrI - hr0 // = ΔMR, the actual miss-ratio reduction
	return (dHR - dEHR) * (c - 1 + (li/d)*beta), nil
}
