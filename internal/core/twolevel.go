package core

// TwoLevelDelay returns the mean memory delay per reference for an
// L1 + L2 hierarchy under full stalling:
//
//	HR1·1 + (1−HR1)·(HR2local·tL2 + (1−HR2local)·tMem)
//
// where tL2 is the L-byte L2 access time and tMem the memory line-fill
// time (both in cycles), and HR2local is the L2 hit ratio over the L1
// miss stream. It is the N=2 case of HierarchyDelay with a unit L1
// hit time.
func TwoLevelDelay(hr1, hr2local, tL2, tMem float64) (float64, error) {
	return HierarchyDelay([]LevelSpec{
		{HitRatio: hr1, Time: 1},
		{HitRatio: hr2local, Time: tL2},
	}, tMem)
}

// PriceL2 computes the L2's worth in L1 hit ratio. hr1 and hr2local
// are measured (for example by cache.Hierarchy); tL2 and tMem are the
// L2 and memory line-fill times in cycles. It is PriceLevel applied
// to the second level of a two-level stack.
func PriceL2(hr1, hr2local, tL2, tMem float64) (L2Worth, error) {
	return PriceLevel([]LevelSpec{
		{HitRatio: hr1, Time: 1},
		{HitRatio: hr2local, Time: tL2},
	}, 1, tMem)
}
