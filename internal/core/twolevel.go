package core

import "fmt"

// Two-level memory hierarchies extend the mean-memory-delay currency
// naturally: a reference costs one cycle on an L1 hit, the L2 access
// time on an L2 hit, and the full memory fill otherwise. Pricing an L2
// cache in L1 hit ratio — "how much bigger would L1 need to be to
// match adding this L2?" — is then the same equivalence the paper
// applies to its Table 3 features.

// TwoLevelDelay returns the mean memory delay per reference for an
// L1 + L2 hierarchy under full stalling:
//
//	HR1·1 + (1−HR1)·(HR2local·tL2 + (1−HR2local)·tMem)
//
// where tL2 is the L-byte L2 access time and tMem the memory line-fill
// time (both in cycles), and HR2local is the L2 hit ratio over the L1
// miss stream.
func TwoLevelDelay(hr1, hr2local, tL2, tMem float64) (float64, error) {
	if !validHitRatio(hr1) {
		return 0, fmt.Errorf("core: L1 hit ratio %g", hr1)
	}
	if !validAlpha(hr2local) {
		return 0, fmt.Errorf("core: local L2 hit ratio %g", hr2local)
	}
	if tL2 < 1 || tMem < tL2 {
		return 0, fmt.Errorf("core: times tL2=%g, tMem=%g (want 1 <= tL2 <= tMem)", tL2, tMem)
	}
	return hr1 + (1-hr1)*(hr2local*tL2+(1-hr2local)*tMem), nil
}

// L2Worth prices an L2 cache in the methodology's currency: the
// increase in L1 hit ratio that would match adding the L2, at equal
// mean memory delay. Because the L2 access itself costs at least the
// one-cycle hit time, the equivalent hit ratio never exceeds one —
// some (possibly enormous) L1 always matches an L2 in this model;
// Achievable is false only at the degenerate boundary h = 1.
type L2Worth struct {
	DeltaHR    float64 // L1 hit ratio the L2 is worth
	Achievable bool    // false only at the h = 1 boundary (hr1 = 1 inputs)
}

// PriceL2 computes the L2's worth. hr1 and hr2local are measured (for
// example by cache.Hierarchy); tL2 and tMem are the L2 and memory
// line-fill times in cycles.
func PriceL2(hr1, hr2local, tL2, tMem float64) (L2Worth, error) {
	with, err := TwoLevelDelay(hr1, hr2local, tL2, tMem)
	if err != nil {
		return L2Worth{}, err
	}
	// Single-level delay with an improved hit ratio h:
	//   h + (1−h)·tMem = with  ⇒  h = (tMem − with) / (tMem − 1).
	h := (tMem - with) / (tMem - 1)
	if h >= 1 {
		return L2Worth{DeltaHR: 1 - hr1, Achievable: false}, nil
	}
	if h < hr1 {
		// An L2 can only help; a smaller equivalent hit ratio means
		// degenerate inputs (hr2local·tL2 worse than memory).
		return L2Worth{}, fmt.Errorf("core: L2 worth negative (h=%g < hr1=%g)", h, hr1)
	}
	return L2Worth{DeltaHR: h - hr1, Achievable: true}, nil
}
