package core

import (
	"fmt"
	"math"
)

// Feature identifies an architectural feature whose performance the
// methodology prices in hit ratio. The baseline for every feature is a
// full-blocking (FS) cache on a non-pipelined memory system with no
// write buffers (§5.3).
type Feature int

const (
	// FeatureDoubleBus doubles the external data-bus width D → 2D
	// (§4.1). The memory width doubles with it.
	FeatureDoubleBus Feature = iota
	// FeaturePartialStall replaces the full-stalling cache with a
	// partially-stalling one (BL or BNL) of measured stalling factor φ
	// (§4.2).
	FeaturePartialStall
	// FeatureWriteBuffers adds ideal read-bypassing write buffers,
	// hiding the flush term completely (§4.3).
	FeatureWriteBuffers
	// FeaturePipelinedMemory pipelines the memory system with
	// readiness interval q (§4.4, Eq. 9).
	FeaturePipelinedMemory
)

func (f Feature) String() string {
	switch f {
	case FeatureDoubleBus:
		return "doubling bus width"
	case FeaturePartialStall:
		return "partially-stalling cache"
	case FeatureWriteBuffers:
		return "read-bypassing write buffers"
	case FeaturePipelinedMemory:
		return "pipelined memory"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// Features lists the four features of the unified comparison (Table 3).
func Features() []Feature {
	return []Feature{FeatureDoubleBus, FeaturePartialStall, FeatureWriteBuffers, FeaturePipelinedMemory}
}

// FeatureSpec supplies the feature-specific knobs of Table 3.
type FeatureSpec struct {
	Feature Feature
	Phi     float64 // PartialStall: measured stalling factor φ ∈ [1, L/D]
	Q       float64 // PipelinedMemory: readiness interval q ≥ 1
}

// perMissCost returns the bracketed per-miss cost of the execution-time
// model under write-allocate (W = 0): each miss contributes
// (φ + α·L/D)·βm − 1 cycles beyond the one-cycle hit it replaces. The
// −1 is the hit cycle the miss no longer spends as a hit (Eq. 3's form).
func perMissCost(phi, alpha, l, d, betaM float64) float64 {
	return (phi+alpha*l/d)*betaM - 1
}

// MissRatioOfCaches returns r, Table 3's "ratio of cache misses": the
// factor by which the improved system may multiply its miss count
// (equivalently R' = r·R under write-allocate) while matching the
// baseline full-blocking system's execution time. alpha is the flush
// ratio α = α' shared by both systems; l, d, betaM describe the
// baseline. r > 1 means the feature buys hit ratio.
//
// It returns an error when the spec is out of the model's domain.
func MissRatioOfCaches(spec FeatureSpec, alpha, l, d, betaM float64) (float64, error) {
	if l < d || d <= 0 {
		return 0, fmt.Errorf("core: L = %g, D = %g, want L >= D > 0", l, d)
	}
	if betaM < 1 {
		return 0, fmt.Errorf("core: βm = %g, want >= 1", betaM)
	}
	if !validAlpha(alpha) {
		return 0, fmt.Errorf("core: α = %g, want in [0, 1]", alpha)
	}
	base := perMissCost(l/d, alpha, l, d, betaM) // full-blocking baseline
	var improved float64
	switch spec.Feature {
	case FeatureDoubleBus:
		if l < 2*d {
			return 0, fmt.Errorf("core: doubling bus needs L >= 2D (L=%g, D=%g)", l, d)
		}
		// Full stalling on the doubled bus: φ' = L/2D, flush α·L/2D.
		improved = perMissCost(l/(2*d), alpha, l, 2*d, betaM)
	case FeaturePartialStall:
		if spec.Phi < 1 || spec.Phi > l/d {
			return 0, fmt.Errorf("core: φ = %g outside [1, L/D = %g]", spec.Phi, l/d)
		}
		improved = perMissCost(spec.Phi, alpha, l, d, betaM)
	case FeatureWriteBuffers:
		// Flushes completely hidden: α term drops.
		improved = perMissCost(l/d, 0, l, d, betaM)
	case FeaturePipelinedMemory:
		if spec.Q < 1 {
			return 0, fmt.Errorf("core: q = %g, want >= 1", spec.Q)
		}
		// Fill and flush each take βp (Eq. 9) instead of (L/D)βm.
		bp := BetaP(betaM, spec.Q, l, d)
		improved = (1+alpha)*bp - 1
	default:
		return 0, fmt.Errorf("core: unknown feature %v", spec.Feature)
	}
	if improved <= 0 {
		return 0, fmt.Errorf("core: improved per-miss cost %g not positive (βm too small for the model)", improved)
	}
	return base / improved, nil
}

// BusWidthByteRatio returns R'/R for the bus-doubling tradeoff, Eq. (3):
//
//	R'/R = ((φ + α·L/D)·βm − 1) / ((φ' + α'·L/2D)·βm − 1)
//
// for arbitrary stalling factors φ (D system) and φ' (2D system) and
// flush ratios α, α'. Under full blocking and α = α' this equals
// MissRatioOfCaches for FeatureDoubleBus.
func BusWidthByteRatio(phi, phi2, alpha, alpha2, l, d, betaM float64) (float64, error) {
	if l < 2*d || d <= 0 {
		return 0, fmt.Errorf("core: Eq. 3 needs L >= 2D (L=%g, D=%g)", l, d)
	}
	num := (phi+alpha*l/d)*betaM - 1
	den := (phi2+alpha2*l/(2*d))*betaM - 1
	if den <= 0 || num <= 0 {
		return 0, fmt.Errorf("core: per-miss costs must be positive (num=%g, den=%g)", num, den)
	}
	return num / den, nil
}

// limitRatioLargeBeta returns the βm→∞ limit of MissRatioOfCaches for a
// spec, used by the §4.1 limit analysis (L'Hospital): the −1 terms
// vanish and the ratio of the βm coefficients remains.
func limitRatioLargeBeta(spec FeatureSpec, alpha, l, d float64) float64 {
	base := l/d + alpha*l/d
	var improved float64
	switch spec.Feature {
	case FeatureDoubleBus:
		improved = l/(2*d) + alpha*l/(2*d)
	case FeaturePartialStall:
		improved = spec.Phi + alpha*l/d
	case FeatureWriteBuffers:
		improved = l / d
	case FeaturePipelinedMemory:
		// βp/βm → 1 as βm → ∞ with q fixed.
		improved = 1 + alpha
	default:
		return math.NaN()
	}
	return base / improved
}
