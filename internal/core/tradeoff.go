package core

import "fmt"

// Tradeoff is the result of pricing one feature in hit ratio.
type Tradeoff struct {
	Feature Feature
	R       float64 // ratio of cache misses r (Table 3)
	S       float64 // s = Λh/Λm of the base system
	BaseHR  float64 // hit ratio HR1 of the base (featureless) system
	DeltaHR float64 // hit ratio traded: HR1 − HR2 (Eq. 6)
	NewHR   float64 // HR2, the hit ratio the improved system can afford
	Valid   bool    // Eq. 6 is physical only while HR2 > 0
}

// DeltaHR evaluates Eq. (6): the hit-ratio difference between the base
// system (hit ratio baseHR) and an improved system with miss-count
// ratio r that has the same execution time:
//
//	ΔHR = HR1 − HR2 = MR2 − MR1 = (r − 1) / (s + 1)
//
// with s = baseHR/(1−baseHR). Valid is false when the implied HR2
// drops to zero or below ("only valid for the physical system where
// HR2 > 0").
func DeltaHR(baseHR, r float64) (Tradeoff, error) {
	s, err := SFromHitRatio(baseHR)
	if err != nil {
		return Tradeoff{}, err
	}
	if r <= 0 {
		return Tradeoff{}, fmt.Errorf("core: miss-count ratio r = %g, want > 0", r)
	}
	d := (r - 1) / (s + 1)
	t := Tradeoff{R: r, S: s, BaseHR: baseHR, DeltaHR: d, NewHR: baseHR - d}
	t.Valid = t.NewHR > 0
	return t, nil
}

// DeltaHRWideBase evaluates Eq. (7): using the improved (e.g. wide-bus)
// system's hit ratio HR2 as the base, the hit ratio the featureless
// system must add for the same performance:
//
//	ΔHR = (1 − r') / (s + 1)
//
// where r' = R/R' ≤ 1 is the inverse miss-count ratio and s comes from
// HR2. Equivalently ΔHR = (1 − r')·(1 − HR2), the form behind the
// paper's "0.5(1−HR) to 0.6(1−HR)" statements.
func DeltaHRWideBase(wideHR, rInv float64) (float64, error) {
	s, err := SFromHitRatio(wideHR)
	if err != nil {
		return 0, err
	}
	if rInv <= 0 || rInv > 1 {
		return 0, fmt.Errorf("core: inverse ratio r' = %g, want in (0, 1]", rInv)
	}
	return (1 - rInv) / (s + 1), nil
}

// FeatureTradeoff prices a feature against a full-blocking,
// non-pipelined, unbuffered write-allocate base system with hit ratio
// baseHR, combining MissRatioOfCaches (Table 3) and Eq. (6).
func FeatureTradeoff(spec FeatureSpec, baseHR, alpha, l, d, betaM float64) (Tradeoff, error) {
	r, err := MissRatioOfCaches(spec, alpha, l, d, betaM)
	if err != nil {
		return Tradeoff{}, err
	}
	t, err := DeltaHR(baseHR, r)
	if err != nil {
		return Tradeoff{}, err
	}
	t.Feature = spec.Feature
	return t, nil
}

// EquivalentHitRatio returns HR2 = 1 − r·(1 − HR1), the hit ratio at
// which the improved system matches the base system (the identity
// behind "2HR − 1": with r = 2, HR2 = 2·HR1 − 1).
func EquivalentHitRatio(baseHR, r float64) float64 { return 1 - r*(1-baseHR) }

// RankFeatures orders the features of Table 3 by the hit ratio each
// trades at a design point, largest first. φ is the measured stalling
// factor used for FeaturePartialStall and q the readiness interval for
// FeaturePipelinedMemory. It reproduces the §5.3 ranking claim.
func RankFeatures(baseHR, alpha, l, d, betaM, phi, q float64) ([]Tradeoff, error) {
	specs := []FeatureSpec{
		{Feature: FeatureDoubleBus},
		{Feature: FeaturePartialStall, Phi: phi},
		{Feature: FeatureWriteBuffers},
		{Feature: FeaturePipelinedMemory, Q: q},
	}
	out := make([]Tradeoff, 0, len(specs))
	for _, spec := range specs {
		t, err := FeatureTradeoff(spec, baseHR, alpha, l, d, betaM)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	// Insertion sort by DeltaHR descending (four elements).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DeltaHR > out[j-1].DeltaHR; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
