package core

import "fmt"

// Instruction-cache extension (§3.4): instruction misses add
// f·(RI/L)·φI·βm to the CPU execution time, where RI is the
// instruction bytes fetched on misses and φI ≥ 1 the instruction
// fetch stalling factor. §4.5 notes the mean memory delay of an
// instruction (or unified) cache has the same form as a data cache,
// so the whole tradeoff methodology applies to it unchanged — the
// functions below make that concrete and the icache tests verify the
// equivalence numerically.

// ICacheParams extends Params with an instruction-fetch stream.
type ICacheParams struct {
	Params
	RI   float64 // instruction bytes read on I-cache misses
	PhiI float64 // instruction-fetch stalling factor, >= 1 (full blocking: L/D)
}

// Validate extends Params.Validate to the instruction stream.
func (p ICacheParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.RI < 0 {
		return fmt.Errorf("core: negative RI (%g)", p.RI)
	}
	if p.RI > 0 && (p.PhiI < 1 || p.PhiI > p.L/p.D) {
		return fmt.Errorf("core: φI = %g outside [1, L/D = %g]", p.PhiI, p.L/p.D)
	}
	return nil
}

// ExecutionTimeWithICache evaluates Eq. (2) plus the §3.4 instruction
// miss term (RI/L)·φI·βm. Instruction hits overlap execution through
// pipelining and contribute nothing, exactly as in the paper.
func ExecutionTimeWithICache(p ICacheParams) float64 {
	return ExecutionTime(p.Params) + (p.RI/p.L)*p.PhiI*p.BetaM
}

// ICacheTradeoff prices doubling the bus against instruction-cache
// hit ratio: the same Eq. (6) machinery applied to the instruction
// stream (a full-blocking instruction fetch with no flushes — I-caches
// are read-only, so α = 0 and the write-buffer feature is meaningless
// for them).
func ICacheTradeoff(baseHR float64, l, d, betaM float64) (Tradeoff, error) {
	// Read-only stream: α = 0, full stalling fetch.
	num := (l/d)*betaM - 1
	den := (l/(2*d))*betaM - 1
	if l < 2*d {
		return Tradeoff{}, fmt.Errorf("core: doubling bus needs L >= 2D (L=%g, D=%g)", l, d)
	}
	if den <= 0 {
		return Tradeoff{}, fmt.Errorf("core: per-miss cost %g not positive", den)
	}
	t, err := DeltaHR(baseHR, num/den)
	if err != nil {
		return Tradeoff{}, err
	}
	t.Feature = FeatureDoubleBus
	return t, nil
}
