package core

import "fmt"

// Example 1 of the paper (§5.2) uses the Short & Levy (ISCA '88)
// trace-driven hit ratios to argue that cache size and bus width are
// exchangeable: a 64-bit-bus processor with an 8 KB cache matches a
// 32-bit-bus processor with a 32 KB cache. These constants record the
// two scalar facts the example relies on (DESIGN.md §4, substitution 2).
const (
	ShortLevyHR8K  = 0.910 // data-cache hit ratio at 8 KB
	ShortLevyHR32K = 0.955 // data-cache hit ratio at 32 KB
)

// CacheBusEquivalence describes a cache-size-for-bus-width exchange:
// the wide-bus system with the small cache performs like the
// narrow-bus system with the large cache.
type CacheBusEquivalence struct {
	SmallHR   float64 // hit ratio of the small cache (wide bus side)
	NeededHR  float64 // hit ratio the narrow bus needs: SmallHR + ΔHR
	DeltaHR   float64 // Eq. (7) hit ratio traded by bus doubling
	RInv      float64 // inverse miss-count ratio r' = R/R'
	Satisfied bool    // whether the provided large-cache HR meets NeededHR
	LargeHR   float64 // the hit ratio actually provided by the large cache
}

// ExampleOne checks the §5.2 equivalence for a given pair of measured
// hit ratios. smallHR is the hit ratio of the smaller cache (used with
// the doubled bus), largeHR of the larger cache (used with the base
// bus). alpha, l, d, betaM describe the shared design point, with d
// the narrow bus width. The equivalence holds when largeHR covers the
// hit ratio the bus doubling is worth on top of smallHR.
func ExampleOne(smallHR, largeHR, alpha, l, d, betaM float64) (CacheBusEquivalence, error) {
	if !validFraction(smallHR) || !validFraction(largeHR) {
		return CacheBusEquivalence{}, fmt.Errorf("core: hit ratios (%g, %g) must be in (0,1)", smallHR, largeHR)
	}
	// r' = R/R' ≤ 1 viewed from the wide system (Eq. 7's base).
	r, err := MissRatioOfCaches(FeatureSpec{Feature: FeatureDoubleBus}, alpha, l, d, betaM)
	if err != nil {
		return CacheBusEquivalence{}, err
	}
	rInv := 1 / r
	dHR, err := DeltaHRWideBase(smallHR, rInv)
	if err != nil {
		return CacheBusEquivalence{}, err
	}
	eq := CacheBusEquivalence{
		SmallHR:  smallHR,
		NeededHR: smallHR + dHR,
		DeltaHR:  dHR,
		RInv:     rInv,
		LargeHR:  largeHR,
	}
	eq.Satisfied = largeHR >= eq.NeededHR
	return eq, nil
}
