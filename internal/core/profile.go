package core

import "fmt"

// Profile-based tradeoffs generalize Table 3 beyond write-allocate:
// with a write-around cache the application has W > 0 bypassed store
// misses on the bus, and both R and W scale together when the cache
// shrinks (both are miss events). Setting X_base = X_feature(k) with
// {R', W'} = k·{R, W} is linear in k, giving the general miss-count
// ratio
//
//	k = (cost_base − Λm) / (cost_feature − Λm)
//
// where cost is the total memory stall of Eq. (2) for the profile and
// Λm = R/L + W subtracts the hit cycle each miss displaces. With W = 0
// this reduces exactly to MissRatioOfCaches (asserted by
// TestProfileReducesToWriteAllocate).

// WorkloadProfile is the per-application portion of a tradeoff: the
// measured {R, W, α} of Table 1 plus the cache line size they were
// measured at. It is deliberately assignment-compatible with the
// cache simulator's AppProfile fields.
type WorkloadProfile struct {
	R     float64 // bytes read on misses
	W     float64 // write-around store misses
	Alpha float64 // flush ratio
	L     float64 // line size in bytes
}

// Misses returns Λm = R/L + W (Eq. 1).
func (w WorkloadProfile) Misses() float64 { return w.R/w.L + w.W }

// Validate reports out-of-domain profiles.
func (w WorkloadProfile) Validate() error {
	switch {
	case w.R < 0 || w.W < 0:
		return fmt.Errorf("core: negative R (%g) or W (%g)", w.R, w.W)
	case !validAlpha(w.Alpha):
		return fmt.Errorf("core: α = %g, want in [0, 1]", w.Alpha)
	case w.L <= 0:
		return fmt.Errorf("core: line size %g, want > 0", w.L)
	case w.Misses() <= 0:
		return fmt.Errorf("core: profile has no misses")
	}
	return nil
}

// stallCost returns the total memory stall cycles of Eq. (2) for the
// profile under the given feature. The base (featureless) system is a
// full-blocking cache on a non-pipelined bus without write buffers.
func stallCost(spec FeatureSpec, w WorkloadProfile, d, betaM float64) (float64, error) {
	misses := w.R / w.L
	switch spec.Feature {
	case FeatureDoubleBus:
		if w.L < 2*d {
			return 0, fmt.Errorf("core: doubling bus needs L >= 2D (L=%g, D=%g)", w.L, d)
		}
		// Full stalling on 2D; flushes at 2D; a <= D-byte store still
		// takes one memory cycle on the wider bus.
		return misses*(w.L/(2*d))*(1+w.Alpha)*betaM + w.W*betaM, nil
	case FeaturePartialStall:
		if spec.Phi < 1 || spec.Phi > w.L/d {
			return 0, fmt.Errorf("core: φ = %g outside [1, L/D = %g]", spec.Phi, w.L/d)
		}
		return misses*(spec.Phi+w.Alpha*w.L/d)*betaM + w.W*betaM, nil
	case FeatureWriteBuffers:
		// Read-bypassing buffers hide both the flushes and the
		// write-around stores; a buffered store costs its issue slot
		// only, which the k-equation's −Λm term already accounts for.
		return misses * (w.L / d) * betaM, nil
	case FeaturePipelinedMemory:
		if spec.Q < 1 {
			return 0, fmt.Errorf("core: q = %g, want >= 1", spec.Q)
		}
		bp := BetaP(betaM, spec.Q, w.L, d)
		return misses*(1+w.Alpha)*bp + w.W*betaM, nil
	default:
		return 0, fmt.Errorf("core: unknown feature %v", spec.Feature)
	}
}

// baseStallCost is the featureless full-blocking cost of Eq. (2).
func baseStallCost(w WorkloadProfile, d, betaM float64) float64 {
	return (w.R/w.L)*(w.L/d)*(1+w.Alpha)*betaM + w.W*betaM
}

// MissRatioOfCachesProfile returns the general miss-count ratio k for
// a measured workload profile, covering both write-allocate (W = 0)
// and write-around (W > 0) caches.
func MissRatioOfCachesProfile(spec FeatureSpec, w WorkloadProfile, d, betaM float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if d <= 0 || w.L < d {
		return 0, fmt.Errorf("core: L = %g, D = %g, want L >= D > 0", w.L, d)
	}
	if betaM < 1 {
		return 0, fmt.Errorf("core: βm = %g, want >= 1", betaM)
	}
	lm := w.Misses()
	base := baseStallCost(w, d, betaM) - lm
	cost, err := stallCost(spec, w, d, betaM)
	if err != nil {
		return 0, err
	}
	improved := cost - lm
	if base <= 0 || improved <= 0 {
		return 0, fmt.Errorf("core: non-positive net stall (base=%g, improved=%g)", base, improved)
	}
	return base / improved, nil
}

// ProfileTradeoff prices a feature for a measured workload profile at
// base hit ratio baseHR.
func ProfileTradeoff(spec FeatureSpec, w WorkloadProfile, baseHR, d, betaM float64) (Tradeoff, error) {
	r, err := MissRatioOfCachesProfile(spec, w, d, betaM)
	if err != nil {
		return Tradeoff{}, err
	}
	t, err := DeltaHR(baseHR, r)
	if err != nil {
		return Tradeoff{}, err
	}
	t.Feature = spec.Feature
	return t, nil
}
