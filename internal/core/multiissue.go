package core

import "fmt"

// Multiple-instruction-issue extension (the paper's stated future work,
// §6: "We will develop a CPU execution time model for systems where
// the throughput could be more than one instruction per clock cycle").
//
// With an issue width of I instructions per clock, the non-stalled
// portion of Eq. (2) compresses by I while the memory stall terms stay
// in absolute clocks:
//
//	X_I = (E − Λm)/I + (R/L)·φ·βm + α·(R/D)·βm + W·βm
//
// The hit cycle a miss displaces is then worth 1/I instead of 1, so
// every per-miss cost of Table 3 replaces its −1 with −1/I. The
// qualitative consequence, reproduced by the multiissue experiment: as
// I grows, each tradeoff converges to its large-βm limit — memory
// delay dominates sooner, and hit ratio becomes uniformly more
// precious.

// ExecutionTimeMultiIssue evaluates the multi-issue execution time X_I
// for issue width issue ≥ 1.
func ExecutionTimeMultiIssue(p Params, issue float64) (float64, error) {
	if issue < 1 {
		return 0, fmt.Errorf("core: issue width %g, want >= 1", issue)
	}
	return (p.E-p.Misses())/issue +
		(p.R/p.L)*p.Phi*p.BetaM +
		p.Alpha*(p.R/p.D)*p.BetaM +
		p.W*p.BetaM, nil
}

// MissRatioOfCachesMultiIssue is MissRatioOfCaches generalized to an
// issue width: the ratio of cache misses r the improved system may
// afford at equal multi-issue execution time. issue = 1 reproduces the
// single-issue Table 3 exactly.
func MissRatioOfCachesMultiIssue(spec FeatureSpec, alpha, l, d, betaM, issue float64) (float64, error) {
	if issue < 1 {
		return 0, fmt.Errorf("core: issue width %g, want >= 1", issue)
	}
	if l < d || d <= 0 {
		return 0, fmt.Errorf("core: L = %g, D = %g, want L >= D > 0", l, d)
	}
	if betaM < 1 {
		return 0, fmt.Errorf("core: βm = %g, want >= 1", betaM)
	}
	if !validAlpha(alpha) {
		return 0, fmt.Errorf("core: α = %g, want in [0, 1]", alpha)
	}
	hit := 1 / issue
	base := (l/d+alpha*l/d)*betaM - hit
	var improved float64
	switch spec.Feature {
	case FeatureDoubleBus:
		if l < 2*d {
			return 0, fmt.Errorf("core: doubling bus needs L >= 2D (L=%g, D=%g)", l, d)
		}
		improved = (l/(2*d))*(1+alpha)*betaM - hit
	case FeaturePartialStall:
		if spec.Phi < 1 || spec.Phi > l/d {
			return 0, fmt.Errorf("core: φ = %g outside [1, L/D = %g]", spec.Phi, l/d)
		}
		improved = (spec.Phi+alpha*l/d)*betaM - hit
	case FeatureWriteBuffers:
		improved = (l/d)*betaM - hit
	case FeaturePipelinedMemory:
		if spec.Q < 1 {
			return 0, fmt.Errorf("core: q = %g, want >= 1", spec.Q)
		}
		improved = (1+alpha)*BetaP(betaM, spec.Q, l, d) - hit
	default:
		return 0, fmt.Errorf("core: unknown feature %v", spec.Feature)
	}
	if improved <= 0 {
		return 0, fmt.Errorf("core: improved per-miss cost %g not positive", improved)
	}
	return base / improved, nil
}

// MultiIssueTradeoff prices a feature at issue width issue against a
// full-blocking single-bus base system with hit ratio baseHR.
func MultiIssueTradeoff(spec FeatureSpec, baseHR, alpha, l, d, betaM, issue float64) (Tradeoff, error) {
	r, err := MissRatioOfCachesMultiIssue(spec, alpha, l, d, betaM, issue)
	if err != nil {
		return Tradeoff{}, err
	}
	t, err := DeltaHR(baseHR, r)
	if err != nil {
		return Tradeoff{}, err
	}
	t.Feature = spec.Feature
	return t, nil
}
