package core

import "fmt"

// N-level memory hierarchies extend the mean-memory-delay currency the
// same way two-level ones do: a reference costs level i's access time
// when it first hits at level i, and the full memory fill when every
// level misses. Pricing any level in equivalent first-level hit ratio
// — "how much bigger would L1 need to be to match adding this level?"
// — is the same equivalence the paper applies to its Table 3 features.

// LevelSpec describes one cache level for the delay model.
type LevelSpec struct {
	// HitRatio is the level's local hit ratio: hits over the probe
	// stream that reaches it (the miss stream of the levels above).
	HitRatio float64
	// Time is the level's access time in cycles. The first level's is
	// conventionally 1 (the paper's unit hit time).
	Time float64
}

// HierarchyDelay returns the mean memory delay per reference of an
// N-level hierarchy under full stalling:
//
//	D_i = hr_i·t_i + (1−hr_i)·D_{i+1},   D_N = tMem
//
// evaluated from the last level up, so a reference pays the first
// level's time where it hits and the memory line-fill time tMem when
// all levels miss. The first level's hit ratio may be 0 (a cold or
// absent cache); deeper levels accept the full [0, 1] local range.
// Access times must be non-decreasing with depth, within [1, tMem].
func HierarchyDelay(levels []LevelSpec, tMem float64) (float64, error) {
	if len(levels) == 0 {
		return 0, fmt.Errorf("core: hierarchy needs at least one level")
	}
	for i, l := range levels {
		if i == 0 {
			if !validHitRatio(l.HitRatio) {
				return 0, fmt.Errorf("core: L1 hit ratio %g", l.HitRatio)
			}
		} else if !validAlpha(l.HitRatio) {
			return 0, fmt.Errorf("core: local L%d hit ratio %g", i+1, l.HitRatio)
		}
		prev := 1.0
		if i > 0 {
			prev = levels[i-1].Time
		}
		if l.Time < prev || l.Time > tMem {
			return 0, fmt.Errorf("core: L%d time %g (want %g <= t <= tMem=%g)", i+1, l.Time, prev, tMem)
		}
	}
	delay := tMem
	for i := len(levels) - 1; i >= 0; i-- {
		delay = levels[i].HitRatio*levels[i].Time + (1-levels[i].HitRatio)*delay
	}
	return delay, nil
}

// LevelWorth prices a cache level in the methodology's currency: the
// increase in first-level hit ratio that would match adding the level,
// at equal mean memory delay. Because the level's access itself costs
// at least the one-cycle hit time, the equivalent hit ratio never
// exceeds one — some (possibly enormous) L1 always matches it in this
// model; Achievable is false only at the degenerate h = 1 boundary.
type LevelWorth struct {
	DeltaHR    float64 // first-level hit ratio the level is worth
	Achievable bool    // false only at the h = 1 boundary
}

// L2Worth is the two-level name for LevelWorth, kept for callers of
// the original API.
type L2Worth = LevelWorth

// PriceLevel computes what level i (0-indexed; i ≥ 1) is worth in
// equivalent first-level hit ratio. It compares the hierarchy's delay
// with and without level i — deeper levels keep their local hit
// ratios, the usual non-inclusive approximation — and maps both
// delays onto the single-level scale h + (1−h)·tMem:
//
//	h = (tMem − delay) / (tMem − 1)
//
// DeltaHR is the difference of the two equivalent hit ratios.
func PriceLevel(levels []LevelSpec, i int, tMem float64) (LevelWorth, error) {
	if i < 1 || i >= len(levels) {
		return LevelWorth{}, fmt.Errorf("core: cannot price level %d of %d (only levels below the first)", i, len(levels))
	}
	if tMem <= 1 {
		return LevelWorth{}, fmt.Errorf("core: tMem %g must exceed the unit hit time", tMem)
	}
	with, err := HierarchyDelay(levels, tMem)
	if err != nil {
		return LevelWorth{}, err
	}
	without := make([]LevelSpec, 0, len(levels)-1)
	without = append(without, levels[:i]...)
	without = append(without, levels[i+1:]...)
	base, err := HierarchyDelay(without, tMem)
	if err != nil {
		return LevelWorth{}, err
	}
	hWith := (tMem - with) / (tMem - 1)
	hBase := (tMem - base) / (tMem - 1)
	if hWith >= 1 {
		return LevelWorth{DeltaHR: 1 - hBase, Achievable: false}, nil
	}
	if hWith < hBase {
		// An extra level can only help; a smaller equivalent hit ratio
		// means degenerate inputs (the level slower than what's below).
		return LevelWorth{}, fmt.Errorf("core: level %d worth negative (h=%g < base=%g)", i, hWith, hBase)
	}
	return LevelWorth{DeltaHR: hWith - hBase, Achievable: true}, nil
}
