package model

import (
	"context"
	"math"

	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// StallSpec identifies one stall-grid point for analytic pricing —
// the same knobs simjob.Grid enumerates, minus everything that only
// matters to a cycle-level replay.
type StallSpec struct {
	Workload  string
	Seed      uint64
	Refs      int
	CacheKB   int
	LineBytes int
	BusBytes  int
	BetaM     int64
	Assoc     int
	Feature   stall.Feature
	Pipelined bool
	Q         int64
	WriteMiss string // "allocate" (default) or "around"
	WbufDepth int
}

// EstimateStall prices one stall-grid point without replaying a
// trace: the hit ratio comes from the analytic curve, and the stall
// decomposition from first-order timing arithmetic over the memory
// model's fill schedule. cc may be nil (the curve is then built
// privately).
//
// The estimate is deliberately coarser than the hit-ratio tier — it
// is the grid-screening answer, not the measurement:
//
//   - FillStall: per-miss stall by feature. FS waits the whole
//     lineTime (φ = L/D exactly, the paper's Table 2 identity). The
//     partially-stalling features wait βm for the critical chunk and
//     then gamble on the shadow — the lineTime − βm the fill engine
//     stays busy. A later reference blocks inside the shadow if it
//     touches the filling line (probability p0, the consecutive-ref
//     same-line mass derived per generator from the trace spec) or
//     misses itself (probability 1 − h: the refill engine is busy,
//     so the new fill serializes behind the old one — with the
//     streaming workloads' miss rates this, not same-line reuse, is
//     the dominant term). With pBlock the per-reference blocking
//     probability and references arriving every ḡ cycles, a miss
//     eats qB·S of its shadow, where qB = 1 − (1−pBlock)^(shadow/ḡ)
//     is the chance anything blocks during the fill and
//     S = shadow − min(shadow/2, ḡ/pBlock) discounts the expected
//     arrival time. BL always waits out the shadow (next ref blocks
//     unconditionally); BNL1 waits qB·S; BNL2 0.95·qB·S (the needed
//     chunk has sometimes arrived); BNL3 0.8·qB·S (per-word waits);
//     NB qB·(βm + 0.8·S) (nothing waits unless something blocks,
//     then the critical latency is exposed too). The 0.95/0.8
//     factors are calibrated against replay, like the hit-ratio
//     epsilon budgets.
//   - BusWait, BufferFull, Conflict: estimated as zero — they need
//     reference-level timing interleaving this tier abstracts away.
//     (The fill-serialization wait above lands in FillStall, where
//     the replay also books it.)
//   - FlushStall: misses × lineTime × P(victim dirty), with
//     P(dirty) = 1 − (1−wf)^a for write fraction wf and a = 1/(1−h)
//     references per line lifetime. With write buffers the same
//     cycles land in HiddenFlush instead (buffers assumed deep
//     enough — BufferFull is already estimated as zero).
//   - Write-around: write misses bypass the cache (βm each, additive
//     WriteStall), and the fill count drops to the read share.
//
// Validation against replay over the default grid shows φ within
// 0.16·(L/D) absolute and Cycles within the hit-ratio tier's
// miss-count error amplified by the stall share; FS/BL φ are
// near-exact. The measured budgets are documented in DESIGN.md §5.8
// and pinned by TestEstimateStall (epsStallPhi, stallCycleBudget).
func EstimateStall(ctx context.Context, spec StallSpec, cc *Cache) (stall.Result, error) {
	cSpec := Spec{Workload: spec.Workload, Seed: spec.Seed, Refs: spec.Refs, LineSize: spec.LineBytes}
	var curve interface {
		HitRatioAssoc(int, int) float64
	}
	if cc != nil {
		c, _, err := cc.Get(ctx, cSpec)
		if err != nil {
			return stall.Result{}, err
		}
		curve = c
	} else {
		if err := cSpec.Validate(); err != nil {
			return stall.Result{}, err
		}
		c, err := CurveFor(cSpec)
		if err != nil {
			return stall.Result{}, err
		}
		curve = c
	}

	n := float64(spec.Refs)
	size := spec.CacheKB << 10
	h := curve.HitRatioAssoc(size, spec.Assoc)
	tr, err := workloadTraits(spec.Workload, spec.Seed, spec.LineBytes)
	if err != nil {
		return stall.Result{}, err
	}
	gbar, wf := tr.gbar, tr.wf
	if gbar < 1 {
		gbar = 1
	}
	// Same-line touch probability. The Zipf share is conditioned on
	// the miss: misses come from the tail, whose lines are re-touched
	// at roughly the miss rate times the collision mass.
	p0 := tr.p0 + tr.zipfPSame*(1-h)

	// Fill timing from the memory model's schedule (memory.Fill):
	// critical chunk after βm, whole line after lineTime.
	k := spec.LineBytes / spec.BusBytes
	if k < 1 {
		k = 1
	}
	betaM := float64(spec.BetaM)
	lineTime := float64(k) * betaM
	if spec.Pipelined {
		lineTime = betaM + float64(spec.Q)*float64(k-1)
	}
	crit := betaM
	shadow := math.Max(0, lineTime-crit)
	missRate := 1 - h

	// Fill-window blocking: qB = P(any ref blocks during the shadow),
	// S = the shadow share the blocked miss actually waits out.
	pBlock := 1 - (1-p0)*(1-missRate)
	var qB, S float64
	if pBlock > 1e-12 && shadow > 0 {
		m := shadow / gbar // references issued during the shadow
		qB = -math.Expm1(m * math.Log1p(-math.Min(pBlock, 0.999999)))
		S = shadow - math.Min(shadow/2, gbar/pBlock)
	}

	var perMiss float64
	switch spec.Feature {
	case stall.FS:
		perMiss = lineTime
	case stall.BL:
		perMiss = crit + math.Max(0, shadow-gbar)
	case stall.BNL1:
		perMiss = crit + qB*S
	case stall.BNL2:
		perMiss = crit + 0.95*qB*S
	case stall.BNL3:
		perMiss = crit + 0.8*qB*S
	case stall.NB:
		perMiss = qB * (crit + 0.8*S)
	}
	fills := n * missRate
	var writeStall float64
	if spec.WriteMiss == "around" {
		// Write misses bypass: one memory cycle each, additive; only
		// read misses fetch lines.
		writeStall = wf * n * missRate * betaM
		fills = (1 - wf) * n * missRate
	}

	// Dirty-victim flushes: a line written at least once during its
	// a = 1/(1−h) reference lifetime flushes on eviction.
	var dirty float64
	if missRate > 1e-9 && wf > 0 {
		life := math.Min(1/missRate, n)
		dirty = -math.Expm1(life * math.Log1p(-math.Min(wf, 0.999999)))
	}
	flushCycles := fills * dirty * lineTime

	res := stall.Result{
		Refs:       uint64(spec.Refs),
		Misses:     uint64(math.Round(fills)),
		E:          uint64(math.Round(n * gbar)),
		FillStall:  int64(math.Round(fills * perMiss)),
		WriteStall: int64(math.Round(writeStall)),
	}
	res.BaseCycles = int64(res.E)
	if spec.WbufDepth > 0 {
		res.HiddenFlush = int64(math.Round(flushCycles))
	} else {
		res.FlushStall = int64(math.Round(flushCycles))
	}
	res.Cycles = res.BaseCycles + res.FillStall + res.FlushStall + res.WriteStall
	if res.Misses > 0 && spec.BetaM > 0 {
		res.Phi = float64(res.FillStall) / (float64(res.Misses) * betaM)
	}
	if maxPhi := float64(spec.LineBytes) / float64(spec.BusBytes); maxPhi > 0 {
		res.PhiFraction = res.Phi / maxPhi
	}
	res.Traffic = uint64(math.Round(fills*float64(spec.LineBytes) +
		fills*dirty*float64(spec.LineBytes) +
		wf*n*missRate*float64(spec.BusBytes)))
	return res, nil
}

// traits are the stall tier's workload summary statistics.
type traits struct {
	gbar float64 // mean instructions (≈ cycles) between references
	wf   float64 // store fraction
	// p0 is the consecutive-reference same-line probability of the
	// non-Zipf components; zipfPSame is the Zipf components' raw
	// same-unit collision mass (Σ p_i²), which the caller conditions
	// on the miss rate before adding in.
	p0        float64
	zipfPSame float64
}

// workloadTraits derives a named workload's traits from its
// trace.Spec — the same normalized configs the generators run with,
// so the traits cannot drift from the emitted streams. The same-line
// probability p0 is per generator family: a sequential walk revisits
// a line for L/stride consecutive refs, a stencil revisits a row's
// line one window later, a working set re-draws uniformly, a pointer
// chase reads the missed node's other fields.
func workloadTraits(workload string, seed uint64, lineBytes int) (traits, error) {
	spec, err := trace.SpecFor(workload, seed)
	if err != nil {
		return traits{}, err
	}
	L := float64(lineBytes)
	totalW := 0.0
	for _, c := range spec.Components {
		totalW += c.Weight
	}
	if totalW == 0 {
		totalW = 1
	}
	var tr traits
	for _, c := range spec.Components {
		w := c.Weight / totalW
		var g, f, p float64
		switch c.Kind {
		case trace.KindSequential:
			g, f = c.Seq.GapMean, c.Seq.WriteFrac
			p = math.Max(0, 1-float64(c.Seq.Stride)/L)
		case trace.KindStencil2D:
			g = c.Sten.GapMean
			window := float64(c.Sten.Points)
			if c.Sten.WriteBack {
				window++
				f = 1 / window
			}
			// A row's line is revisited at the next column, one
			// window of refs later.
			p = math.Max(0, 1-float64(c.Sten.ElemSize)/L) / window
		case trace.KindWorkingSet:
			g, f = c.WS.GapMean, c.WS.WriteFrac
			p = math.Min(1, L/float64(c.WS.SetBytes))
		case trace.KindPointerChase:
			g = c.PC.GapMean // pointer chases only load
			p = math.Min(1, L/float64(c.PC.NodeSize))
		case trace.KindZipf:
			g, f = c.ZipfC.GapMean, c.ZipfC.WriteFrac
			tr.zipfPSame += w * zipfSameUnitProb(*c.ZipfC)
		}
		tr.gbar += w * g
		tr.wf += w * f
		tr.p0 += w * p
	}
	// Multi-component workloads interleave through trace.Mix, which
	// re-stamps the first reference of each burst with a uniform 1–4
	// instruction gap (mean 2.5).
	if len(spec.Components) > 1 {
		burst := float64(spec.Burst)
		if burst < 1 {
			burst = 1
		}
		tr.gbar = tr.gbar*(burst-1)/burst + 2.5/burst
	}
	return tr, nil
}
