package model

import (
	"context"
	"math"
	"testing"

	"tradeoff/internal/cache"
	"tradeoff/internal/memory"
	"tradeoff/internal/stall"
	"tradeoff/internal/trace"
)

// stallCycleBudget is the committed per-workload budget on the
// relative Cycles error of EstimateStall vs the trace replay, over
// the TestEstimateStall grid (8/32 KiB, βm 4/10, every feature).
// Cycles inherit the hit-ratio tier's miss-count error amplified by
// the stall share, so the budgets track each workload's hit-ratio
// epsilon (xval.go errorBudget): measured worst cases at seed 1994 /
// 30k refs were nasa7 0.24, swm256 0.37, wave5 0.20, ear 0.64,
// doduc 0.17, hydro2d 0.25, zipf 0.72.
var stallCycleBudget = map[string]float64{
	trace.Nasa7:   0.32,
	trace.Swm256:  0.45,
	trace.Wave5:   0.28,
	trace.Ear:     0.75,
	trace.Doduc:   0.25,
	trace.Hydro2D: 0.33,
	trace.Zipf:    0.85,
}

// epsStallPhi bounds |PhiFraction_model − PhiFraction_replay| across
// the whole grid (measured worst 0.159, ear BNL3 at βm=10).
const epsStallPhi = 0.20

// TestEstimateStall pins the analytic stall tier against the replay
// engine over a small feature × geometry grid: φ (normalized to its
// L/D ceiling) must track within epsStallPhi absolute, total Cycles
// within each workload's committed relative budget, and the FS/BL φ
// identities must be near-exact — FS stalls the whole lineTime, so
// its PhiFraction is 1 by construction in both tiers.
func TestEstimateStall(t *testing.T) {
	const refs = 30_000
	const seed = 1994
	sizesKB := []int{8, 32}
	betas := []int64{4, 10}
	if testing.Short() {
		sizesKB = []int{8}
		betas = []int64{4}
	}
	for _, w := range trace.Workloads() {
		w := w
		t.Run(w, func(t *testing.T) {
			t.Parallel()
			src, err := trace.NewWorkload(w, seed)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.Collect(src, refs)
			for _, kb := range sizesKB {
				for _, f := range stall.Features() {
					for _, betaM := range betas {
						got, err := EstimateStall(context.Background(), StallSpec{
							Workload: w, Seed: seed, Refs: refs,
							CacheKB: kb, LineBytes: 32, BusBytes: 4,
							BetaM: betaM, Assoc: 2, Feature: f,
							WriteMiss: "allocate",
						}, nil)
						if err != nil {
							t.Fatal(err)
						}
						want, err := stall.Run(stall.Config{
							Cache:   cache.Config{Size: kb << 10, LineSize: 32, Assoc: 2, Replacement: cache.LRU},
							Memory:  memory.Config{BetaM: betaM, BusWidth: 4},
							Feature: f,
						}, tr)
						if err != nil {
							t.Fatal(err)
						}
						cycErr := math.Abs(float64(got.Cycles-want.Cycles)) / float64(want.Cycles)
						if budget := stallCycleBudget[w]; cycErr > budget {
							t.Errorf("%s %dKB βm=%d: Cycles %d vs replay %d (rel err %.3f > budget %.2f)",
								f, kb, betaM, got.Cycles, want.Cycles, cycErr, budget)
						}
						phiErr := math.Abs(got.PhiFraction - want.PhiFraction)
						if phiErr > epsStallPhi {
							t.Errorf("%s %dKB βm=%d: PhiFraction %.3f vs replay %.3f (|Δ| %.3f > %.2f)",
								f, kb, betaM, got.PhiFraction, want.PhiFraction, phiErr, epsStallPhi)
						}
						if f == stall.FS && math.Abs(got.PhiFraction-1) > 1e-3 {
							t.Errorf("FS %dKB βm=%d: PhiFraction = %.6f, want 1 (to rounding)", kb, betaM, got.PhiFraction)
						}
					}
				}
			}
		})
	}
}

// TestEstimateStallShape pins structural properties that hold for
// every workload regardless of calibration: base cycles track ḡ·n,
// write-around adds WriteStall and sheds fills, and a write buffer
// moves flush cycles from FlushStall to HiddenFlush verbatim.
func TestEstimateStallShape(t *testing.T) {
	base := StallSpec{
		Workload: trace.Ear, Seed: 7, Refs: 50_000,
		CacheKB: 8, LineBytes: 32, BusBytes: 4,
		BetaM: 4, Assoc: 2, Feature: stall.BL,
		WriteMiss: "allocate",
	}
	ctx := context.Background()
	alloc, err := EstimateStall(ctx, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.WriteStall != 0 {
		t.Errorf("allocate: WriteStall = %d, want 0", alloc.WriteStall)
	}
	if alloc.FlushStall <= 0 {
		t.Errorf("allocate: FlushStall = %d, want > 0 (ear writes)", alloc.FlushStall)
	}
	if alloc.HiddenFlush != 0 {
		t.Errorf("allocate: HiddenFlush = %d, want 0 without a write buffer", alloc.HiddenFlush)
	}

	around := base
	around.WriteMiss = "around"
	ar, err := EstimateStall(ctx, around, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ar.WriteStall <= 0 {
		t.Errorf("around: WriteStall = %d, want > 0", ar.WriteStall)
	}
	if ar.Misses >= alloc.Misses {
		t.Errorf("around: fills %d, want fewer than allocate's %d", ar.Misses, alloc.Misses)
	}

	buffered := base
	buffered.WbufDepth = 4
	bf, err := EstimateStall(ctx, buffered, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FlushStall != 0 || bf.HiddenFlush != alloc.FlushStall {
		t.Errorf("wbuf: FlushStall %d / HiddenFlush %d, want 0 / %d",
			bf.FlushStall, bf.HiddenFlush, alloc.FlushStall)
	}

	if _, err := EstimateStall(ctx, StallSpec{Workload: "gcc", Seed: 1, Refs: 1000,
		CacheKB: 8, LineBytes: 32, BusBytes: 4, BetaM: 4, Assoc: 2, Feature: stall.FS}, nil); err == nil {
		t.Error("unknown workload accepted")
	}
}
