package model

import (
	"math"

	"tradeoff/internal/trace"
)

// This file derives one stack-distance histogram per primitive
// generator, directly from the normalized trace configs. Conventions:
// n is the component's reference share; distances are in lines of L
// bytes counting only this component's own lines (regions are
// disjoint, so blending adds foreign lines separately); every
// derivation is documented in DESIGN.md §5.8.

// seqModel prices a strided sweep over a Length-byte region that
// wraps forever (trace.Sequential). Per sweep there are
// N = ceil(Length/Stride) references over U distinct lines: with
// Stride < L each line absorbs a = L/Stride back-to-back touches
// (distance 0), and each line's first touch of a sweep last saw the
// line one whole sweep ago — every other line intervened, distance
// U−1. With Stride ≥ L every access opens a fresh line: a = 1 and
// the distance-0 mass vanishes.
func seqModel(cfg trace.SequentialConfig, lineSize int, n float64) compModel {
	L := float64(lineSize)
	S := float64(cfg.Stride)
	Len := float64(cfg.Length)
	N := math.Ceil(Len / S) // refs per sweep
	U := N                  // distinct lines per sweep
	a := 1.0                // refs per line per sweep
	if S < L {
		U = math.Ceil(Len / L)
		a = N / U
	}
	first := n / a // per-sweep first touches seen in n refs
	cold := math.Min(first, U)
	var m compModel
	m.cold = cold
	m.entries = append(m.entries,
		entry{d: 0, gap: 1, w: n - first},
		entry{d: U - 1, gap: N, w: math.Max(0, first-cold)},
	)
	m.ws = func(refs float64) float64 {
		return math.Min(U, math.Ceil(refs/a))
	}
	return m
}

// wsModel prices uniform references inside a SetBytes working set
// that drifts across HeapBytes with per-reference probability
// Migrate (trace.WorkingSet). Within an epoch the stream is an
// independent-reference model over U = SetBytes/L equiprobable
// lines, whose LRU stack-distance distribution is uniform on
// [0, U−1] by symmetry; the recurrence gap behind distance d is the
// coupon-collector time for d distinct others,
// ln(1−d/U)/ln(1−1/U). Each migration abandons the set: the next
// epoch's W(r) distinct lines are fresh (cold) except for the
// covered/H fraction that happens to overlap ground already touched,
// which reuses at a distance of roughly the lines touched since.
func wsModel(cfg trace.WorkingSetConfig, lineSize int, n float64) compModel {
	L := float64(lineSize)
	U := math.Ceil(float64(cfg.SetBytes) / L)
	H := math.Ceil(float64(cfg.HeapBytes) / L)
	if U < 1 {
		U = 1
	}
	lnq := math.Log1p(-1 / U) // ln(1 − 1/U)
	touched := func(r float64) float64 {
		if U <= 1 {
			return 1
		}
		return U * -math.Expm1(r*lnq) // U(1 − (1−1/U)^r)
	}

	epochs := 1.0
	if cfg.Migrate > 0 {
		epochs += n * cfg.Migrate
	}
	perEpoch := n / epochs
	We := touched(perEpoch)

	var m compModel
	covered := 0.0
	for e := 0; e < int(math.Ceil(epochs)); e++ {
		frac := math.Min(1, epochs-float64(e))
		fresh := frac * We * (1 - covered/H)
		overlap := frac*We - fresh
		m.cold += fresh
		if overlap > 0 {
			// Re-touches of lines from k epochs back (k uniform over
			// the e prior epochs): about (k+1)/2·We distinct lines
			// intervened on average.
			d := math.Min(covered, float64(e+1)/2*We)
			m.entries = append(m.entries, entry{d: d, gap: perEpoch, w: overlap})
		}
		covered += fresh
	}

	gap := func(d float64) float64 {
		if U <= 1 {
			return 1
		}
		return math.Max(1, math.Log1p(-(d+0.5)/U)/lnq)
	}
	m.entries = addUniform(m.entries, U, n-epochs*We, gap)

	m.ws = func(refs float64) float64 {
		w := touched(refs)
		if cfg.Migrate > 0 {
			w += refs * cfg.Migrate * We * (1 - U/H)
		}
		return math.Min(H, w)
	}
	return m
}

// stenModel prices a row-major stencil sweep (trace.Stencil2D). Each
// cell update touches three row-segments — north, center, south
// lines — so within a line-window the t = Points(+writeback) refs
// reuse at distances ≤ 2; the exact within-window mix comes from a
// tiny LRU-stack replay of one update's line-id pattern (replayUpdate).
// The window advances every cl = L/ElemSize updates, opening three
// lines: the new center and north lines were last touched one row
// sweep ago (≈3 row-lines intervened), while the new south line last
// appeared a whole grid sweep ago (≈ the entire grid intervened).
func stenModel(cfg trace.Stencil2DConfig, lineSize int, n float64) compModel {
	L := float64(lineSize)
	E := float64(cfg.ElemSize)
	t := float64(cfg.Points)
	if cfg.WriteBack {
		t++
	}
	cl := math.Max(1, L/E)                           // cells per line
	rowLines := math.Ceil(float64(cfg.Cols) * E / L) // lines per grid row
	G := math.Ceil(float64(cfg.Rows) * float64(cfg.Cols) * E / L)
	Ci := float64(cfg.Cols - 2) // updates per row sweep
	Ri := float64(cfg.Rows - 2) // row sweeps per grid sweep
	refsPerRow := Ci * t
	refsPerSweep := Ri * refsPerRow
	dRow := 3 * rowLines

	wsFn := func(refs float64) float64 {
		u := refs / t // updates
		if u <= Ci {
			return math.Min(G, 3+3*u/cl)
		}
		return math.Min(G, 3*rowLines+(u-Ci)*rowLines/Ci)
	}

	var m compModel
	m.cold = wsFn(n)
	// Window-advance events: one per cl updates, re-opening 2 lines at
	// the row distance and 1 at the grid distance. First-sweep advances
	// are the cold misses already counted above.
	adv := n / t / cl * 3
	steady := math.Max(0, adv-m.cold)
	m.entries = append(m.entries,
		entry{d: dRow, gap: refsPerRow, w: steady * 2 / 3},
		entry{d: G, gap: refsPerSweep, w: steady / 3},
	)
	// Everything else reuses within the current window at the
	// distances the update pattern dictates.
	small := math.Max(0, n-m.cold-steady)
	for d, share := range replayUpdate(cfg) {
		m.entries = append(m.entries, entry{d: float64(d), gap: t / 2, w: small * share})
	}
	m.ws = wsFn
	return m
}

// replayUpdate plays one steady-state cell update through a 3-line
// LRU stack and returns the distribution of within-window stack
// distances: the line-id sequence is the row offsets of the stencil
// points (north/center/south), center first, write-back last —
// exactly the emission order of trace.Stencil2D.
func replayUpdate(cfg trace.Stencil2DConfig) map[int]float64 {
	offsets := [9]int{0, 0, 0, -1, 1, -1, -1, 1, 1} // row offsets, generator order
	var seq []int
	for p := 0; p < cfg.Points; p++ {
		seq = append(seq, offsets[p])
	}
	if cfg.WriteBack {
		seq = append(seq, 0)
	}
	counts := make(map[int]float64)
	var stack []int
	// Two warm-up updates, then count the third (steady state).
	for rep := 0; rep < 3; rep++ {
		for _, line := range seq {
			pos := -1
			for i, l := range stack {
				if l == line {
					pos = i
					break
				}
			}
			if pos >= 0 {
				if rep == 2 {
					counts[pos]++
				}
				stack = append(stack[:pos], stack[pos+1:]...)
			}
			stack = append([]int{line}, stack...)
		}
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	for d := range counts {
		counts[d] /= total
	}
	return counts
}

// pcModel prices a Sattolo-cycle pointer chase (trace.PointerChase):
// v = 1+Fields references per node visit, all landing on the node's
// leading line(s). Alignment is handled exactly by walking one
// lcm(NodeSize, L) period: it yields the fraction of pool lines ever
// touched and how many nodes share each touched line (g). A line
// shared by g randomly-placed nodes is revisited about every
// cycle/g visits, with 1/g of the touched pool intervening.
func pcModel(cfg trace.PointerChaseConfig, lineSize int, n float64) compModel {
	L := uint64(lineSize)
	Z := cfg.NodeSize
	v := float64(1 + cfg.Fields)
	Nv := float64(cfg.Nodes)

	// One alignment period: lcm(Z, L)/Z nodes spanning lcm(Z, L)/L lines.
	g := gcd(Z, L)
	periodNodes := int(L / g)
	if periodNodes > cfg.Nodes {
		periodNodes = cfg.Nodes
	}
	lineRefs := make(map[uint64]float64) // line-in-period → refs per cycle-period
	lineNodes := make(map[uint64]int)    // line-in-period → nodes touching it
	for i := 0; i < periodNodes; i++ {
		base := uint64(i) * Z
		touched := make(map[uint64]int)
		touched[base/L]++ // link read
		for f := 1; f <= cfg.Fields; f++ {
			touched[(base+(uint64(f)*8)%Z)/L]++
		}
		for line, refs := range touched {
			lineRefs[line] += float64(refs)
			lineNodes[line]++
		}
	}
	// Scale the period to the pool.
	scale := Nv / float64(periodNodes)
	Upc := float64(len(lineRefs)) * scale // pool lines ever touched

	visits := n / v
	coverage := math.Min(1, visits/Nv) // fraction of the cycle completed
	var m compModel
	m.cold = Upc * coverage
	// Per full cycle each touched line sees its g visit-groups: the
	// group-leading ref reuses at ≈ Upc/g, the rest within the visit
	// at distance 0 (or 1 for rare straddling nodes — folded into 0).
	groupFirstPerCycle := 0.0
	d0PerCycle := 0.0
	for line, refs := range lineRefs {
		gl := float64(lineNodes[line])
		groupFirstPerCycle += gl * scale
		d0PerCycle += (refs - gl) * scale
	}
	cycles := visits / Nv
	firsts := groupFirstPerCycle * cycles
	steadyFirsts := math.Max(0, firsts-m.cold)
	// Aggregate group-first entries by sharing degree g.
	byG := make(map[int]float64)
	for _, g := range lineNodes {
		byG[g] += float64(g) * scale
	}
	totalG := 0.0
	for _, w := range byG {
		totalG += w
	}
	for g, w := range byG {
		gf := float64(g)
		m.entries = append(m.entries, entry{
			d:   Upc / gf,
			gap: Nv * v / gf,
			w:   steadyFirsts * w / totalG,
		})
	}
	m.entries = append(m.entries, entry{d: 0, gap: 1, w: d0PerCycle * cycles})
	m.ws = func(refs float64) float64 {
		return Upc * math.Min(1, refs/v/Nv)
	}
	return m
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
