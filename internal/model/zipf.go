package model

import (
	"math"

	"tradeoff/internal/trace"
)

// zipfModel prices the independent-reference Zipf stream
// (trace.ZipfReuse) by Che's approximation. The generator draws a
// continuous rank k = (u(n^{1−θ}−1)+1)^{1/(1−θ)} and truncates, so
// unit i has probability p_i = F(i+1) − F(i) under the same
// continuous CDF F — the model integrates the generator's own
// sampling math, not an idealized Zipf pmf. Ranks are bucketed (the
// hot head exactly, the tail geometrically).
//
// Line granularity: the generator's pseudo-random permutation packs
// g = L/32 units per line. In expectation over a random grouping, a
// line stays untouched through a T-reference window with probability
// Π(1−p_i)^T over its units ≈ (1−p_k)^T · φ(T)^{g−1} for the line
// containing unit k, where φ(T) = E_unit[(1−p)^T] — the cohabitants
// are g−1 independent draws from the unit-popularity distribution,
// which preserves the heavy tail the earlier mean-cohabitant
// shortcut flattened. For L < 32, g < 1: each unit splits into 1/g
// sub-lines of popularity p·g with no cohabitants.
//
// For an IRM stream, the stack distance behind a gap of T references
// is D(T) = expected distinct lines touched meanwhile,
// (n/g)(1 − φ(T)^g) (Che's characteristic-time argument, inverted to
// build the histogram rather than solve one cache size). Sweeping T
// over a log grid up to the trace length converts (recurrence mass
// in gap window) → (weight at distance D(T)); the mass beyond the
// trace length is exactly the compulsory-miss mass.
// zipfSameUnitProb is the probability two consecutive references of
// the stream land on the same unit, Σ p_i² under the generator's
// truncated continuous CDF — the collision mass the stall tier uses
// for its same-line touch probability. Bucketed like zipfModel: the
// head ranks exactly, the tail in geometric ranges (Σ p²/cnt per
// bucket, exact when the bucket's units share one popularity).
func zipfSameUnitProb(cfg trace.ZipfReuseConfig) float64 {
	nUnits := cfg.Lines
	theta := cfg.Theta
	var F func(x float64) float64
	if math.Abs(theta-1) < 1e-9 {
		logN := math.Log(float64(nUnits))
		F = func(x float64) float64 { return math.Log(x) / logN }
	} else {
		om := 1 - theta
		nPow := math.Pow(float64(nUnits), om)
		F = func(x float64) float64 { return (math.Pow(x, om) - 1) / (nPow - 1) }
	}
	head := nUnits
	if head > 96 {
		head = 96
	}
	sum := 0.0
	for k := 1; k <= head; k++ {
		p := F(float64(k+1)) - F(float64(k))
		sum += p * p
	}
	for lo := head + 1; lo <= nUnits; {
		hi := int(math.Ceil(float64(lo) * 1.3))
		if hi > nUnits {
			hi = nUnits
		}
		p := F(float64(hi+1)) - F(float64(lo))
		if p > 0 {
			sum += p * p / float64(hi-lo+1)
		}
		lo = hi + 1
	}
	return sum
}

func zipfModel(cfg trace.ZipfReuseConfig, lineSize int, n float64) compModel {
	nUnits := cfg.Lines
	unit := float64(cfg.LineBytes)
	theta := cfg.Theta
	g := float64(lineSize) / unit // units per line (may be < 1)
	if g < 1 {
		g = 1 // sub-line case folds into the g=1 formulas with scaled q
	}
	split := math.Max(1, unit/float64(lineSize)) // sub-lines per unit (L < 32)

	// Continuous CDF of the generator's inverse sampling.
	var F func(x float64) float64
	if math.Abs(theta-1) < 1e-9 {
		logN := math.Log(float64(nUnits))
		F = func(x float64) float64 { return math.Log(x) / logN }
	} else {
		om := 1 - theta
		nPow := math.Pow(float64(nUnits), om)
		F = func(x float64) float64 { return (math.Pow(x, om) - 1) / (nPow - 1) }
	}

	// Rank buckets: exact head, geometric tail. q is the popularity of
	// one (sub-)line slot of a bucket unit; lnq = log1p(−q) is hoisted
	// out of the knot loop.
	type bucket struct {
		p   float64 // total reference probability of the bucket's units
		cnt float64 // units in the bucket
		lnq float64
	}
	var buckets []bucket
	addBucket := func(lo, hi int) {
		cnt := float64(hi - lo + 1)
		p := F(float64(hi+1)) - F(float64(lo))
		if p <= 0 {
			return
		}
		buckets = append(buckets, bucket{p: p, cnt: cnt, lnq: math.Log1p(-p / cnt / split)})
	}
	head := nUnits
	if head > 96 {
		head = 96
	}
	for k := 1; k <= head; k++ {
		addBucket(k, k)
	}
	for lo := head + 1; lo <= nUnits; {
		hi := int(math.Ceil(float64(lo) * 1.3))
		if hi > nUnits {
			hi = nUnits
		}
		addBucket(lo, hi)
		lo = hi + 1
	}

	units := float64(nUnits) * split // (sub-)line slots
	phi := func(T float64) float64 { // E over slots of (1−q)^T
		s := 0.0
		for _, b := range buckets {
			s += b.cnt * split * math.Exp(T*b.lnq)
		}
		return s / units
	}
	dist := func(T float64) float64 { // D(T): distinct lines in a T-ref window
		return units / g * -math.Expm1(g*math.Log(phi(T)))
	}

	var m compModel
	// Log grid of recurrence-gap knots from 1 to the trace length.
	const knots = 72
	lnMax := math.Log(math.Max(2, n))
	prevT := 0.0
	prevPhiG := 1.0 // φ(prevT)^{g−1}
	for i := 1; i <= knots; i++ {
		T := math.Exp(float64(i) / knots * lnMax)
		if T <= prevT {
			continue
		}
		mid := math.Sqrt(math.Max(1, prevT) * T) // geometric midpoint
		d := dist(mid)
		phiG := math.Pow(phi(T), g-1)
		w := 0.0
		for _, b := range buckets {
			// Mass of refs to this bucket whose *line* recurrence gap
			// falls in (prevT, T]: the unit itself and its g−1
			// cohabitants must all be silent for the gap to extend.
			w += n * b.p * (math.Exp(prevT*b.lnq)*prevPhiG - math.Exp(T*b.lnq)*phiG)
		}
		if w > 0 {
			m.entries = append(m.entries, entry{d: d, gap: mid, w: w})
		}
		prevT = T
		prevPhiG = phiG
	}
	// Recurrences longer than the trace are first touches.
	sum := 0.0
	for _, e := range m.entries {
		sum += e.w
	}
	m.cold = math.Max(0, n-sum)
	m.ws = dist
	return m
}
