package model

import (
	"context"
	"fmt"

	"tradeoff/internal/cache"
	"tradeoff/internal/mrc"
	"tradeoff/internal/obs"
	"tradeoff/internal/trace"
)

// Report is the outcome of one cross-validation pass for one
// (workload, line size): the model's absolute hit-ratio error against
// the exact MRC tier over a cache-size grid, and — because exact MRC
// equals the fully-associative simulator bit for bit, making a
// separate replay check redundant there — against a set-associative
// replay, which exercises the Smith-corrected path the sweep engine
// actually serves.
type Report struct {
	Workload string  `json:"workload"`
	LineSize int     `json:"line_size"`
	Refs     int     `json:"refs"`
	Points   int     `json:"points"`
	MaxAbs   float64 `json:"max_abs_err"`       // model vs exact MRC, fully associative
	MeanAbs  float64 `json:"mean_abs_err"`      // model vs exact MRC, fully associative
	MaxAssoc float64 `json:"max_abs_err_assoc"` // model (Smith) vs set-associative replay
	Budget   float64 `json:"error_budget"`      // the committed bound for this workload
	Within   bool    `json:"within_budget"`     // MaxAbs ≤ Budget
}

// DefaultSizes is the cross-validation cache-size grid: every power
// of two from 1 KiB to 64 KiB, the paper's Table 3 span.
func DefaultSizes() []int {
	sizes := make([]int, 0, 7)
	for s := 1 << 10; s <= 64<<10; s <<= 1 {
		sizes = append(sizes, s)
	}
	return sizes
}

// ErrorBound returns the committed maximum absolute hit-ratio error
// of the analytic tier vs. exact MRC for a covered workload — the
// epsilon table of DESIGN.md §5.8, pinned in CI by TestCrossValidate
// and re-measured live by the service's validation loop. Unknown
// workloads return 1 (no guarantee).
//
// The bounds are measured maxima over DefaultSizes × Table-3 line
// sizes {16, 32, 64, 128} across several seeds and trace lengths
// (see errorBudget), rounded up with ≈30% headroom. Loop-nest workloads (sequential/stencil dominated) model
// tightest; doduc's drifting working set and wave5's huge
// pointer-chase distances are the loosest. swm256 carries the known
// stride-aliasing caveat from §5.6 on top of this fully-associative
// bound: its 2 KiB row stride aliases power-of-two set indexing, so
// the Smith-corrected assoc comparison is pinned separately (see
// TestCrossValidateSwm256Aliasing).
func ErrorBound(workload string) float64 {
	if b, ok := errorBudget[workload]; ok {
		return b
	}
	return 1
}

// errorBudget is the committed epsilon table (see ErrorBound).
// Measured worst cases over seeds {7, 1994, 2025} × refs {50k, 100k,
// 200k} × line sizes {16, 32, 64, 128} × DefaultSizes: nasa7 0.076,
// swm256 0.045, wave5 0.005, ear 0.034, doduc 0.078, hydro2d 0.029,
// zipf 0.019.
var errorBudget = map[string]float64{
	trace.Nasa7:   0.10,
	trace.Swm256:  0.07,
	trace.Wave5:   0.02,
	trace.Ear:     0.05,
	trace.Doduc:   0.11,
	trace.Hydro2D: 0.05,
	trace.Zipf:    0.04,
}

// CrossValidate runs one validation pass: it builds the analytic
// curve and the exact MRC curve for (workload, seed, refs, lineSize),
// compares hit ratios over sizes (DefaultSizes when nil), and replays
// an assoc-way simulation at the grid's median size to check the
// Smith-corrected path. Each pass opens an "xval_pass" span so a
// -trace export shows validation work next to serving work.
func CrossValidate(ctx context.Context, workload string, seed uint64, refs, lineSize, assoc int, sizes []int) (Report, error) {
	ctx, span := obs.StartSpan(ctx, "xval_pass")
	defer span.End()
	span.SetArg("workload", workload)
	span.SetArg("line_size", lineSize)

	if len(sizes) == 0 {
		sizes = DefaultSizes()
	}
	an, err := CurveFor(Spec{Workload: workload, Seed: seed, Refs: refs, LineSize: lineSize})
	if err != nil {
		return Report{}, err
	}
	src, err := trace.NewWorkload(workload, seed)
	if err != nil {
		return Report{}, err
	}
	exact, err := mrc.ProfileSource(src, refs, lineSize)
	if err != nil {
		return Report{}, err
	}

	r := Report{Workload: workload, LineSize: lineSize, Refs: refs,
		Points: len(sizes), Budget: ErrorBound(workload)}
	for _, size := range sizes {
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
		diff := an.HitRatio(size) - exact.HitRatio(size)
		if diff < 0 {
			diff = -diff
		}
		if diff > r.MaxAbs {
			r.MaxAbs = diff
		}
		r.MeanAbs += diff / float64(len(sizes))
	}

	// Replay leg: one set-associative simulation at the median size.
	if assoc > 0 {
		size := sizes[len(sizes)/2]
		sim, err := cache.New(cache.Config{Size: size, LineSize: lineSize, Assoc: assoc})
		if err != nil {
			return Report{}, err
		}
		replaySrc, err := trace.NewWorkload(workload, seed)
		if err != nil {
			return Report{}, err
		}
		hr := cache.MeasureSource(sim, replaySrc, refs).HitRatio
		diff := an.HitRatioAssoc(size, assoc) - hr
		if diff < 0 {
			diff = -diff
		}
		r.MaxAssoc = diff
	}

	r.Within = r.MaxAbs <= r.Budget
	span.SetArg("max_abs_err", fmt.Sprintf("%.4f", r.MaxAbs))
	return r, nil
}
