package model

import (
	"context"
	"testing"

	"tradeoff/internal/trace"
)

// xvalRefs keeps the CI pass affordable while staying representative;
// the committed budgets were additionally verified at 100k and 200k
// references (see errorBudget).
const xvalRefs = 50_000

// TestCrossValidate is the committed epsilon table in executable
// form: over every covered workload × the paper's Table-3 line
// sizes, the analytic curve stays within ErrorBound of the exact MRC
// curve at every cache size from 1 KiB to 64 KiB. A failure here
// means either a model regression or a generator change that
// invalidates the closed forms — both are bugs.
func TestCrossValidate(t *testing.T) {
	lineSizes := []int{16, 32, 64, 128}
	if testing.Short() {
		lineSizes = []int{32, 128}
	}
	for _, w := range trace.Workloads() {
		for _, L := range lineSizes {
			w, L := w, L
			t.Run(w+"/"+itoa(L), func(t *testing.T) {
				t.Parallel()
				r, err := CrossValidate(context.Background(), w, 1994, xvalRefs, L, 0, nil)
				if err != nil {
					t.Fatalf("CrossValidate: %v", err)
				}
				if !r.Within {
					t.Errorf("max abs error %.4f exceeds committed budget %.2f (mean %.4f over %d sizes)",
						r.MaxAbs, r.Budget, r.MeanAbs, r.Points)
				}
				if r.MeanAbs > r.MaxAbs {
					t.Errorf("mean %.4f > max %.4f", r.MeanAbs, r.MaxAbs)
				}
			})
		}
	}
}

// TestCrossValidateSwm256Aliasing pins the known swm256
// stride-aliasing case: the stencil's 2 KiB row stride (256 cols ×
// 8 B) aliases power-of-two set indexing, which breaks the Smith
// correction's uniform-mapping assumption for *both* the exact and
// analytic tiers (DESIGN.md §5.6 pins the exact tier at 0.40). The
// analytic Smith path therefore gets the same stencil allowance
// against a real set-associative replay — and the fully-associative
// leg stays within the ordinary budget, proving the divergence is
// the set mapping, not the model.
func TestCrossValidateSwm256Aliasing(t *testing.T) {
	const epsAssocStencil = 0.40 // §5.6 epsilon, shared with internal/mrc
	r, err := CrossValidate(context.Background(), trace.Swm256, 1994, xvalRefs, 32, 2, nil)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if !r.Within {
		t.Errorf("fully-associative leg: max %.4f exceeds budget %.2f", r.MaxAbs, r.Budget)
	}
	if r.MaxAssoc > epsAssocStencil {
		t.Errorf("assoc replay leg: |model − replay| = %.4f exceeds the stencil allowance %.2f",
			r.MaxAssoc, epsAssocStencil)
	}
}

// TestCoveredAndValidate pins the coverage predicate and the spec
// domain.
func TestCoveredAndValidate(t *testing.T) {
	for _, w := range trace.Workloads() {
		if !Covered(w) {
			t.Errorf("Covered(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"", "gcc", "mrc:ear"} {
		if Covered(w) {
			t.Errorf("Covered(%q) = true, want false", w)
		}
	}
	valid := Spec{Workload: trace.Ear, Seed: 1, Refs: 1000, LineSize: 32}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid spec: %v", err)
	}
	for _, s := range []Spec{
		{Workload: "gcc", Seed: 1, Refs: 1000, LineSize: 32},
		{Workload: trace.Ear, Refs: 0, LineSize: 32},
		{Workload: trace.Ear, Refs: -5, LineSize: 32},
		{Workload: trace.Ear, Refs: 1000, LineSize: 48},
		{Workload: trace.Ear, Refs: 1000, LineSize: 0},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error, got nil", s)
		}
	}
}

// TestErrorBoundTable pins that every covered workload has a real
// budget and unknown ones get the no-guarantee bound.
func TestErrorBoundTable(t *testing.T) {
	for _, w := range trace.Workloads() {
		b := ErrorBound(w)
		if b <= 0 || b >= 0.5 {
			t.Errorf("ErrorBound(%q) = %v, want a real budget in (0, 0.5)", w, b)
		}
	}
	if b := ErrorBound("gcc"); b != 1 {
		t.Errorf("ErrorBound(gcc) = %v, want 1", b)
	}
}

// TestCurveForProperties checks structural invariants every analytic
// curve must satisfy: monotone non-decreasing hit ratio in size,
// ratios in [0, 1], and total mass equal to the modeled references.
func TestCurveForProperties(t *testing.T) {
	for _, w := range trace.Workloads() {
		c, err := CurveFor(Spec{Workload: w, Seed: 1994, Refs: 100_000, LineSize: 32})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		prev := -1.0
		for size := 256; size <= 1<<22; size <<= 1 {
			hr := c.HitRatio(size)
			if hr < 0 || hr > 1 {
				t.Errorf("%s: HitRatio(%d) = %v outside [0,1]", w, size, hr)
			}
			if hr < prev {
				t.Errorf("%s: HitRatio(%d) = %v < HitRatio(%d) = %v (not monotone)",
					w, size, hr, size/2, prev)
			}
			prev = hr
		}
		if c.ColdMisses() <= 0 {
			t.Errorf("%s: ColdMisses = %v, want > 0", w, c.ColdMisses())
		}
	}
}

// TestCacheMemoizes pins that a second Get is served from memory.
func TestCacheMemoizes(t *testing.T) {
	cc := NewCache(8, 1<<20)
	spec := Spec{Workload: trace.Ear, Seed: 1994, Refs: 100_000, LineSize: 64}
	c1, shared1, err := cc.Get(context.Background(), spec)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if shared1 {
		t.Errorf("first Get reported shared")
	}
	c2, shared2, err := cc.Get(context.Background(), spec)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !shared2 || c1 != c2 {
		t.Errorf("second Get: shared=%v same=%v, want memo hit", shared2, c1 == c2)
	}
	if _, _, err := cc.Get(context.Background(), Spec{Workload: "gcc", Refs: 1, LineSize: 32}); err == nil {
		t.Errorf("invalid spec: want error")
	}
	if cc.Len() != 1 {
		t.Errorf("Len = %d, want 1", cc.Len())
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// BenchmarkCurveFor measures the closed-form construction cost — the
// model tier's whole marginal cost per (workload, line size), since
// everything downstream is shared with the exact tier.
func BenchmarkCurveFor(b *testing.B) {
	for _, w := range []string{trace.Ear, trace.Nasa7, trace.Zipf} {
		b.Run(w, func(b *testing.B) {
			spec := Spec{Workload: w, Seed: 1994, Refs: 200_000, LineSize: 32}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CurveFor(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
