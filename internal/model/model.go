// Package model is the analytic tier of the hit-ratio stack: it maps
// a named workload (internal/trace) plus its parameters to a
// miss-ratio curve in closed form, with no trace pass at all.
//
// The exact tier (internal/mrc) profiles reuse distances from the
// generated references — O(refs · log blocks) per (workload, line
// size). But the workloads are not arbitrary traces: they are
// parameterized loop nests, stencils, working sets, pointer chases
// and Zipf-popularity streams whose reuse-distance *distributions*
// follow from the parameters, in the spirit of Gysi et al.'s
// analytical model of fully associative caches (polyhedral reuse
// counting for regular loops) and Che's approximation for
// independent-reference streams. This package derives each
// component's stack-distance histogram from trace.Spec — the same
// structs the generators run with — blends components through their
// working-set functions to account for Mix interleaving, and wraps
// the result in an *mrc.Curve via mrc.NewAnalyticCurve. Downstream
// consumers (sweep.RunCurves, /v1/sweep, /v1/stall) therefore price
// designs from analytic curves through exactly the same
// HitRatio/HitRatioAssoc surface as exact curves, in microseconds
// instead of milliseconds.
//
// Every estimate carries a committed error budget: ErrorBound returns
// the per-workload maximum absolute hit-ratio error vs. the exact MRC
// tier, pinned by the cross-validation harness in xval.go (CI) and
// re-measured continuously by the service's rotating validation loop.
// DESIGN.md §5.8 derives the closed forms per generator family.
package model

import (
	"fmt"
	"math"

	"tradeoff/internal/mrc"
	"tradeoff/internal/trace"
)

// Spec names one analytic curve: a covered workload, the seed and
// reference count the estimate models (matching the exact tier's
// trace), and the line size in bytes.
type Spec struct {
	Workload string
	Seed     uint64
	Refs     int
	LineSize int
}

// Validate reports specs outside the model's domain.
func (s Spec) Validate() error {
	if !Covered(s.Workload) {
		return fmt.Errorf("model: workload %q is not covered (covered: %v)", s.Workload, trace.Workloads())
	}
	if s.Refs <= 0 {
		return fmt.Errorf("model: refs = %d, want > 0", s.Refs)
	}
	if s.LineSize <= 0 || s.LineSize&(s.LineSize-1) != 0 {
		return fmt.Errorf("model: line size %d is not a positive power of two", s.LineSize)
	}
	return nil
}

// key is the memoization key for Cache.
func (s Spec) key() string {
	return fmt.Sprintf("%s|%d|%d|%d", s.Workload, s.Seed, s.Refs, s.LineSize)
}

// Covered reports whether the analytic tier can price the named
// workload. All seven named workloads (six SPEC92-like programs plus
// zipf) are covered; the predicate exists so mode=auto has a
// principled fallback rule when future workloads (e.g. replayed
// external traces) arrive without closed forms.
func Covered(workload string) bool {
	return len(trace.ValidWorkloads([]string{workload})) == 0
}

// entry is one mass point of a component's stack-distance histogram,
// before blending: d is the mean reuse distance in lines counting
// only this component's lines, gap the mean number of *component*
// references between the two touches (the blend inflates d by the
// lines other components touch during that gap), and w the estimated
// reference count.
type entry struct {
	d   float64
	gap float64
	w   float64
}

// compModel is one primitive generator's analytic profile at a given
// line size and reference share.
type compModel struct {
	entries []entry
	cold    float64 // first-touch references (== estimated distinct lines)
	// ws is the working-set function: expected distinct lines this
	// component touches in m consecutive references of its own.
	// Blending uses it to price how much a gap of k own-references
	// dilates when other components' bursts interleave.
	ws func(m float64) float64
}

// buildComponent dispatches to the per-generator derivations in
// components.go / zipf.go. n is the component's reference share.
func buildComponent(c trace.Component, lineSize int, n float64) (compModel, error) {
	switch c.Kind {
	case trace.KindSequential:
		return seqModel(*c.Seq, lineSize, n), nil
	case trace.KindStencil2D:
		return stenModel(*c.Sten, lineSize, n), nil
	case trace.KindWorkingSet:
		return wsModel(*c.WS, lineSize, n), nil
	case trace.KindPointerChase:
		return pcModel(*c.PC, lineSize, n), nil
	case trace.KindZipf:
		return zipfModel(*c.ZipfC, lineSize, n), nil
	default:
		return compModel{}, fmt.Errorf("model: no closed form for component kind %q", c.Kind)
	}
}

// CurveFor builds the analytic miss-ratio curve for spec. The
// returned curve is a plain *mrc.Curve: HitRatio, HitRatioAssoc
// (Smith set-mapping correction) and the integer edge-case contract
// all behave exactly as for profiled curves.
func CurveFor(spec Spec) (*mrc.Curve, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ts, err := trace.SpecFor(spec.Workload, spec.Seed)
	if err != nil {
		return nil, err
	}
	n := float64(spec.Refs)

	wsum := 0.0
	for _, c := range ts.Components {
		wsum += c.Weight
	}
	comps := make([]compModel, len(ts.Components))
	weights := make([]float64, len(ts.Components))
	for i, c := range ts.Components {
		weights[i] = c.Weight / wsum
		comps[i], err = buildComponent(c, spec.LineSize, n*weights[i])
		if err != nil {
			return nil, err
		}
	}

	hist := make(map[uint64]float64, 256)
	cold := 0.0
	burst := float64(ts.Burst)
	for i, cm := range comps {
		cold += cm.cold
		for _, e := range cm.entries {
			if e.w <= 0 {
				continue
			}
			// Blend: while this component waits e.gap of its own
			// references, every other component j interleaves about
			// e.gap·w_j/w_i references of its own, pushing W_j(·)
			// distinct foreign lines between the two touches. Gaps
			// shorter than a Mix burst usually complete inside the
			// burst: only a gap/burst fraction crosses a burst
			// boundary and pays the foreign working set at all.
			d := e.d
			for j, other := range comps {
				if j == i {
					continue
				}
				cross := e.gap * weights[j] / weights[i]
				if burst > 1 && e.gap < burst {
					d += (e.gap / burst) * other.ws(burst*weights[j]/weights[i])
				} else {
					d += other.ws(cross)
				}
			}
			hist[uint64(math.Round(d))] += e.w
		}
	}
	blocks := int(math.Round(cold))
	return mrc.NewAnalyticCurve(spec.LineSize, uint64(spec.Refs), blocks, hist, cold)
}

// addUniform appends a histogram mass of total weight w spread
// uniformly over stack distances [0, U): exact entries for the first
// few lines (where small caches live) and geometric buckets beyond,
// so a 16K-line working set costs ~100 entries instead of 16K. gap
// maps a distance to the mean component-references between touches.
func addUniform(entries []entry, U, w float64, gap func(d float64) float64) []entry {
	if U < 1 || w <= 0 {
		return entries
	}
	per := w / U
	exact := math.Min(U, 64)
	for d := 0.0; d < exact; d++ {
		entries = append(entries, entry{d: d, gap: gap(d), w: per})
	}
	lo := exact
	for lo < U {
		hi := math.Min(U, math.Max(lo+1, math.Ceil(lo*1.09)))
		mid := (lo + hi - 1) / 2
		entries = append(entries, entry{d: mid, gap: gap(mid), w: per * (hi - lo)})
		lo = hi
	}
	return entries
}
