package model

import (
	"context"

	"tradeoff/internal/engine"
	"tradeoff/internal/mrc"
)

// Cache memoizes analytic curves per Spec, mirroring mrc.CurveCache:
// a sweep pays one closed-form construction per (workload, line size)
// and the tradeoffd service holds one cache for its lifetime, so
// steady-state model-tier queries never rebuild a curve at all.
// Construction is already microsecond-scale; the memo mainly buys
// singleflight under concurrent identical requests and a byte bound.
type Cache struct {
	memo *engine.Memo[*mrc.Curve]
}

// NewCache returns a Cache bounded by maxEntries curves and maxBytes
// of histogram memory (0 = unbounded for that dimension).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{memo: engine.NewMemo(maxEntries, maxBytes, (*mrc.Curve).MemoryBytes)}
}

// Get returns the analytic curve for spec, building it on first use.
// The boolean reports whether the curve was shared (memo hit or
// joined flight) rather than built by this call.
func (c *Cache) Get(ctx context.Context, spec Spec) (*mrc.Curve, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	return c.memo.Do(ctx, spec.key(), func(context.Context) (*mrc.Curve, error) {
		return CurveFor(spec)
	})
}

// Len returns the number of cached curves.
func (c *Cache) Len() int { return c.memo.Len() }
