// Package lint is a self-contained, dependency-free analogue of
// golang.org/x/tools/go/analysis: an Analyzer inspects one type-checked
// package through a Pass and reports Diagnostics. It exists because the
// paper's correctness rests on invariants the compiler cannot see —
// parameter domains (α ∈ [0,1], βm ≥ 1, L ≥ D > 0), float-comparison
// discipline, context propagation in the service hot paths — and those
// must be machine-checked on every build, with no external module
// downloads required.
//
// Findings can be suppressed with a directive comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line or on the line directly above it.
// The reason is mandatory; a directive without one is reported as a
// diagnostic itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Name must be a unique
// lowercase identifier (it is what //lint:ignore directives reference);
// Doc is a mandatory description whose first line summarizes the check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass connects an Analyzer to the single package it inspects.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// A Finding is a Diagnostic resolved to a position and its analyzer,
// ready for printing or comparison against test expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Target is the minimal view of a loaded package the runner needs;
// load.Package satisfies it.
type Target interface {
	ASTFiles() []*ast.File
	FileSet() *token.FileSet
	TypesPkg() *types.Package
	Info() *types.Info
}

// Run applies every analyzer to the package and returns the surviving
// findings sorted by position, with //lint:ignore directives applied.
// Analyzer errors are returned after all analyzers have run.
func Run(pkg Target, analyzers []*Analyzer) ([]Finding, error) {
	ignores, bad := parseIgnores(pkg.FileSet(), pkg.ASTFiles())
	var findings []Finding
	findings = append(findings, bad...)

	var firstErr error
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.FileSet(),
			Files:     pkg.ASTFiles(),
			Pkg:       pkg.TypesPkg(),
			TypesInfo: pkg.Info(),
		}
		if err := a.Run(pass); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			pos := pkg.FileSet().Position(d.Pos)
			if ignores.match(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, firstErr
}

// ignoreSet records, per file, the lines each analyzer is suppressed on.
type ignoreSet map[string]map[int]map[string]bool // filename → line → analyzer set

func (s ignoreSet) match(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set != nil && (set[analyzer] || set["*"])
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// parseIgnores scans comments for //lint:ignore directives. A directive
// suppresses the named analyzers on its own line and on the following
// line, so both trailing and preceding placements work. Directives with
// no reason are themselves reported.
func parseIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "//lint:ignore directive is missing a reason",
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					for _, name := range strings.Split(m[1], ",") {
						lines[line][name] = true
					}
				}
			}
		}
	}
	return set, bad
}
