package hotalloc_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hottest")
}
