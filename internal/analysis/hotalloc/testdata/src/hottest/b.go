// Negative cases: allocation-free hot loops, pre-sized buffers, and
// untagged functions. Must stay quiet.
// want:none
package hottest

import (
	"fmt"
	"io"
)

// untagged allocates freely: no //perf:hot, no findings.
func untagged(items []int) []*item {
	var out []*item
	for i, v := range items {
		out = append(out, &item{i, v})
	}
	return out
}

// presized appends into preallocated capacity.
//
//perf:hot
func presized(items []int) []int {
	out := make([]int, 0, len(items))
	buf := make([]byte, 0, 256)
	for _, v := range items {
		out = append(out, v)
		buf = append(buf, byte(v))
	}
	return out
}

// alreadyBoxed passes interface-typed values: no new boxing.
//
//perf:hot
func alreadyBoxed(vals []any) {
	for _, v := range vals {
		sink(v)
	}
}

func sink(v any) {}

// valueStructs copies literals into place without heap objects.
//
//perf:hot
func valueStructs(items []int) int {
	n := 0
	for i, v := range items {
		it := item{i, v}
		n += it.k + it.v
	}
	return n
}

// spread forwards a variadic slice without re-boxing its elements.
//
//perf:hot
func spread(w io.Writer, rows [][]any) {
	for _, r := range rows {
		fmt.Fprintln(w, r...)
	}
}

// paramAppend appends to a caller-provided slice: its capacity is the
// caller's business.
//
//perf:hot
func paramAppend(dst []int, items []int) []int {
	for _, v := range items {
		dst = append(dst, v)
	}
	return dst
}
