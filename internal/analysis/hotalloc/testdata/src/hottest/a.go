// Fixtures for the hotalloc analyzer: per-iteration allocations in
// loops of //perf:hot functions.
package hottest

import "fmt"

type item struct{ k, v int }

// process is on the replay hot path.
//
//perf:hot
func process(items []int) []*item {
	var out []*item
	for i, v := range items {
		out = append(out, &item{i, v}) // want `&item literal` `append to out in a //perf:hot loop grows without preallocated capacity`
	}
	return out
}

// hashKeys builds a memo key.
//
//perf:hot
func hashKeys(keys []string) string {
	h := ""
	for _, k := range keys {
		h += k // want `string concatenation in a //perf:hot loop`
	}
	return h
}

//perf:hot
func format(vals []int) []string {
	out := make([]string, 0, len(vals))
	for _, v := range vals {
		out = append(out, fmt.Sprintf("%d", v)) // want `v boxes into an interface argument`
	}
	return out
}

//perf:hot
func buffers(lines []string) int {
	n := 0
	for _, l := range lines {
		b := make([]byte, 0, 64) // want `make in a //perf:hot loop allocates each iteration`
		b = append(b, l...)
		n += len(b)
	}
	return n
}

//perf:hot
func convert(names []string) int {
	n := 0
	for _, name := range names {
		bs := []byte(name) // want `string-to-\[\]byte conversion in a //perf:hot loop`
		n += len(bs)
	}
	return n
}

//perf:hot
func closures(vals []int) int {
	total := 0
	for _, v := range vals {
		f := func() int { return v * 2 } // want `function literal in a //perf:hot loop allocates a closure`
		total += f()
	}
	return total
}

//perf:hot
func mapLit(keys []string) int {
	n := 0
	for _, k := range keys {
		m := map[string]int{} // want `map\[string\]int literal in a //perf:hot loop`
		m[k] = 1
		n += len(m)
	}
	return n
}
