// Package hotalloc flags per-iteration allocation in functions the
// author has declared hot. The stall replay loop and the mrc profiler
// loop execute once per trace reference — hundreds of millions of
// times per sweep — so a single boxed fmt argument or unhoisted
// buffer there dominates the wall-clock the paper's methodology
// depends on measuring, not spending.
//
// The contract is opt-in: only functions whose doc comment carries a
//
//	//perf:hot
//
// directive are checked; everything else may allocate freely. Inside
// a hot function's loops the analyzer reports:
//
//   - make/new calls and &T{}, slice, and map literals (a fresh heap
//     object each iteration — hoist it);
//   - function literals (a closure allocation each iteration);
//   - interface boxing: a concrete value passed where an interface —
//     including a variadic ...any — is expected;
//   - string concatenation and string<->[]byte conversions (each one
//     copies);
//   - appends to a slice whose every reaching definition is a
//     capacity-less declaration outside the loop: the backing array
//     reallocates log(n) times when make(T, 0, n) would do it once.
//     Reaching definitions decide this, so a pre-sized make on any
//     path — or a definition the analyzer cannot size — keeps it
//     quiet.
//
// Value-struct literals are not flagged (they copy into place, no
// heap object), and appends through fields or parameters are the
// caller's business.
package hotalloc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"tradeoff/internal/analysis/dataflow"
	"tradeoff/internal/analysis/lint"
)

// Analyzer is the hotalloc check.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-iteration allocations (make, literals, closures, interface boxing, string copies, unpre-sized appends) in loops of //perf:hot functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHot(fn.Doc) {
				continue
			}
			checkHot(pass, fn)
		}
	}
	return nil
}

// isHot reports whether the doc comment carries //perf:hot.
func isHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//perf:hot") {
			return true
		}
	}
	return false
}

// checkHot analyzes one hot function: reaching definitions over its
// CFG size the appends; the loop walk finds everything else.
func checkHot(pass *lint.Pass, fn *ast.FuncDecl) {
	g := dataflow.New(fn.Body)
	reach := dataflow.SolveReachingDefs(g, pass.TypesInfo, fn.Type, fn.Recv, fn.Body)
	// Outermost loops only: their subtrees include nested loops.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			checkLoop(pass, reach, n, nil)
			return false
		case *ast.RangeStmt:
			checkLoop(pass, reach, n, n.X)
			return false
		}
		return true
	})
}

// checkLoop reports per-iteration allocations inside one loop. skip
// is the range operand, evaluated once, not per iteration.
func checkLoop(pass *lint.Pass, reach *dataflow.ReachingDefs, loop ast.Stmt, skip ast.Expr) {
	childAdds := stringAddOperands(pass, loop)
	ast.Inspect(loop, func(n ast.Node) bool {
		if n == loop || n == nil {
			return true
		}
		if skip != nil && n == skip {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in a //perf:hot loop allocates a closure each iteration; hoist it out of the loop")
			return false
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(n.Pos(), "&%s literal in a //perf:hot loop allocates each iteration; hoist or reuse it", render(lit.Type))
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal in a //perf:hot loop allocates its backing store each iteration; hoist or reuse it", render(n.Type))
				return false
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) && !childAdds[n] {
				pass.Reportf(n.Pos(), "string concatenation in a //perf:hot loop allocates each iteration; use a reused buffer or strings.Builder outside the loop")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation in a //perf:hot loop allocates each iteration; use a reused buffer or strings.Builder outside the loop")
			}
			checkAppend(pass, reach, loop, n)
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// stringAddOperands collects string-add binaries that are operands of
// an enclosing string-add, so a+b+c reports once at the top.
func stringAddOperands(pass *lint.Pass, root ast.Node) map[*ast.BinaryExpr]bool {
	children := map[*ast.BinaryExpr]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD || !isString(pass.TypeOf(bin)) {
			return true
		}
		for _, op := range []ast.Expr{bin.X, bin.Y} {
			if sub, ok := ast.Unparen(op).(*ast.BinaryExpr); ok && sub.Op == token.ADD && isString(pass.TypeOf(sub)) {
				children[sub] = true
			}
		}
		return true
	})
	return children
}

// checkCall handles make/new, string<->[]byte conversions, and
// interface boxing at call boundaries.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	// Type conversion?
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := pass.TypeOf(call), pass.TypeOf(call.Args[0])
		if isString(to) && isByteSlice(from) {
			pass.Reportf(call.Pos(), "[]byte-to-string conversion in a //perf:hot loop copies each iteration")
		}
		if isByteSlice(to) && isString(from) {
			pass.Reportf(call.Pos(), "string-to-[]byte conversion in a //perf:hot loop copies each iteration")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in a //perf:hot loop allocates each iteration; hoist the buffer and reuse it", id.Name)
			}
			return
		}
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "%s boxes into an interface argument in a //perf:hot loop, allocating each iteration", render(arg))
	}
}

// defKind classifies one reaching definition of an append target.
type defKind int

const (
	defSelfAppend defKind = iota // the accumulation itself
	defCapless                   // declared with no capacity
	defSized                     // carries a capacity (or initial elements)
	defUnknown                   // entry def, call result, range binding...
)

// checkAppend flags xs = append(xs, ...) in a loop when every
// reaching definition of xs is a capacity-less declaration outside
// the loop.
func checkAppend(pass *lint.Pass, reach *dataflow.ReachingDefs, loop ast.Stmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" {
		return
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[target]
	if obj == nil || pass.TypesInfo.Uses[lhs] != obj {
		return // xs = append(ys, ...) renames; out of scope
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() || v.Parent() == v.Pkg().Scope() {
		return // fields and globals are not ours to size
	}
	caplessOutside := false
	for _, def := range reach.Reaching(target) {
		switch classifyDef(pass, obj, def) {
		case defSelfAppend:
			// accumulation; keep looking
		case defCapless:
			if def.Node.Pos() >= loop.Pos() && def.Node.End() <= loop.End() {
				return // reset inside the loop: sizing it is a different fix
			}
			caplessOutside = true
		default:
			return // sized somewhere or unknowable: stay quiet
		}
	}
	if caplessOutside {
		pass.Reportf(as.Pos(), "append to %s in a //perf:hot loop grows without preallocated capacity; declare it with make(..., 0, n) before the loop", obj.Name())
	}
}

// classifyDef sizes one definition site.
func classifyDef(pass *lint.Pass, obj types.Object, def dataflow.Def) defKind {
	if def.Node == nil {
		return defUnknown // parameter or named result
	}
	var rhs ast.Expr
	switch n := def.Node.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.Defs[id] != obj && pass.TypesInfo.Uses[id] != obj {
				continue
			}
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else {
				return defUnknown // tuple assignment from a call
			}
		}
	case *ast.ValueSpec:
		if len(n.Values) == 0 {
			return defCapless // var xs []T
		}
		for i, id := range n.Names {
			if pass.TypesInfo.Defs[id] == obj && i < len(n.Values) {
				rhs = n.Values[i]
			}
		}
	default:
		return defUnknown // range binding, ++/--
	}
	if rhs == nil {
		return defUnknown
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if r.Name == "nil" {
			return defCapless
		}
	case *ast.CompositeLit:
		if len(r.Elts) == 0 {
			return defCapless
		}
		return defSized
	case *ast.CallExpr:
		if fid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
			switch fid.Name {
			case "append":
				return defSelfAppend
			case "make":
				if len(r.Args) >= 3 {
					return defSized
				}
				if len(r.Args) == 2 {
					if tv, ok := pass.TypesInfo.Types[r.Args[1]]; ok && tv.Value != nil {
						if n, ok := constant.Int64Val(tv.Value); ok && n == 0 {
							return defCapless // make([]T, 0)
						}
					}
					return defSized
				}
			}
		}
	}
	return defUnknown
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// render prints a compact expression for diagnostics.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	case *ast.ArrayType:
		return "[]" + render(e.Elt)
	case *ast.MapType:
		return "map[" + render(e.Key) + "]" + render(e.Value)
	case *ast.StarExpr:
		return "*" + render(e.X)
	}
	return "value"
}
