package suite_test

import (
	"regexp"
	"strings"
	"testing"

	"tradeoff/internal/analysis/suite"
)

// nameRE is the registration contract: //lint:ignore directives name
// analyzers, so names must be single lowercase identifiers.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// TestRegistration pins the suite's registration contract: every
// analyzer has a lowercase unique name, a doc string whose first line
// summarizes the check, and a Run function.
func TestRegistration(t *testing.T) {
	if len(suite.Analyzers) != 9 {
		t.Fatalf("suite has %d analyzers, want 9 (paramdomain, floatcmp, ctxflow, errdrop, metricreg, spanleak, lockguard, detorder, hotalloc)", len(suite.Analyzers))
	}
	seen := map[string]bool{}
	for _, a := range suite.Analyzers {
		if !nameRE.MatchString(a.Name) {
			t.Errorf("analyzer name %q is not a lowercase identifier", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("analyzer name %q registered more than once", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		} else if first, _, _ := strings.Cut(a.Doc, "\n"); !strings.HasPrefix(first, "flags ") {
			t.Errorf("analyzer %s doc %q: first line should summarize what it flags", a.Name, first)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run function", a.Name)
		}
	}
}
