// Package suite enumerates the tradeoffvet analyzers. cmd/tradeoffvet
// runs exactly this list; the meta-test in suite_test.go pins the
// registration contract (unique lowercase names, mandatory docs) every
// analyzer must honor for //lint:ignore directives and -list output to
// stay unambiguous.
package suite

import (
	"tradeoff/internal/analysis/ctxflow"
	"tradeoff/internal/analysis/detorder"
	"tradeoff/internal/analysis/errdrop"
	"tradeoff/internal/analysis/floatcmp"
	"tradeoff/internal/analysis/hotalloc"
	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/lockguard"
	"tradeoff/internal/analysis/metricreg"
	"tradeoff/internal/analysis/paramdomain"
	"tradeoff/internal/analysis/spanleak"
)

// Analyzers is the full tradeoffvet suite, in the order findings are
// attributed when several fire on one line. The first five are
// AST-local; the last four are flow-sensitive, built on the CFG and
// solvers in internal/analysis/dataflow.
var Analyzers = []*lint.Analyzer{
	paramdomain.Analyzer,
	floatcmp.Analyzer,
	ctxflow.Analyzer,
	errdrop.Analyzer,
	metricreg.Analyzer,
	spanleak.Analyzer,
	lockguard.Analyzer,
	detorder.Analyzer,
	hotalloc.Analyzer,
}
