// Package suite enumerates the tradeoffvet analyzers. cmd/tradeoffvet
// runs exactly this list; the meta-test in suite_test.go pins the
// registration contract (unique lowercase names, mandatory docs) every
// analyzer must honor for //lint:ignore directives and -list output to
// stay unambiguous.
package suite

import (
	"tradeoff/internal/analysis/ctxflow"
	"tradeoff/internal/analysis/errdrop"
	"tradeoff/internal/analysis/floatcmp"
	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/metricreg"
	"tradeoff/internal/analysis/paramdomain"
)

// Analyzers is the full tradeoffvet suite, in the order findings are
// attributed when several fire on one line.
var Analyzers = []*lint.Analyzer{
	paramdomain.Analyzer,
	floatcmp.Analyzer,
	ctxflow.Analyzer,
	errdrop.Analyzer,
	metricreg.Analyzer,
}
