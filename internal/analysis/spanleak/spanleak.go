// Package spanleak verifies — lostcancel-style, on the control-flow
// graph — that every span-like handle opened in a function is closed
// on every path to the function's exit. A leaked obs.Tracer span
// never lands in the trace_event export, so -trace output silently
// undercounts the very passes it exists to count; a leaked histogram
// timer skews the quantiles the paper's serving-path numbers quote.
//
// The handle contract is structural, not a hard-coded list: a call to
// a function or method whose name begins with "Start" that returns a
// value whose (possibly pointer) type has a niladic End method opens
// a handle; that handle must reach a h.End() call — inline on every
// path, or deferred — before the function exits. Handles that escape
// (returned, passed to another call, stored in a field or another
// variable, captured by a closure) transfer the obligation to the
// escapee and are not flagged. Paths that die in a panic or os.Exit
// are vacuously closed, matching x/tools' lostcancel.
//
// Assigning the End-bearing result to the blank identifier is always
// flagged: a handle that was never bound can never be closed.
package spanleak

import (
	"go/ast"
	"go/types"
	"strings"

	"tradeoff/internal/analysis/dataflow"
	"tradeoff/internal/analysis/lint"
	"tradeoff/internal/analysis/typeutil"
)

// Analyzer is the spanleak check.
var Analyzer = &lint.Analyzer{
	Name: "spanleak",
	Doc:  "flags Start*-style handles (obs spans, timers) not closed with End() on every path to the function's exit",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBody(pass, fn.Body)
			}
		}
	}
	return nil
}

// checkBody analyzes one function body and recurses into nested
// function literals (each literal gets its own graph: a handle opened
// inside a closure must close inside that closure or escape from it).
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	g := dataflow.New(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.AssignStmt:
			checkAssign(pass, g, body, n)
		}
		return true
	})
}

// checkAssign inspects one assignment for handle-opening calls.
func checkAssign(pass *lint.Pass, g *dataflow.Graph, body *ast.BlockStmt, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || !isStartCall(pass, call) {
		return
	}
	// Which results carry an End method? Match them to LHS positions.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(assign.Lhs); i++ {
		if !hasEnd(res.At(i).Type()) {
			continue
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok {
			continue // assigned into a field/index: escapes
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(), "handle from %s is discarded; it can never be closed with End()", callName(call))
			continue
		}
		obj := objectOf(pass, id)
		if obj == nil || escapes(pass, body, assign, obj) {
			continue
		}
		endsHandle := func(n ast.Node) bool { return isEndCall(pass, n, obj) }
		if !g.MustReachExit(assign, endsHandle) {
			pass.Reportf(assign.Pos(), "handle %s from %s is not closed with End() on every path to the function's exit; defer %s.End() after opening it", id.Name, callName(call), id.Name)
		}
	}
}

// isStartCall reports whether call opens a handle: its callee's name
// begins with "Start" and some result type carries End().
func isStartCall(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || !strings.HasPrefix(fn.Name(), "Start") {
		return false
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if hasEnd(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// hasEnd reports whether t (or *t) has a niladic End() method.
func hasEnd(t types.Type) bool {
	if t == nil {
		return false
	}
	// For a non-pointer, non-interface type the pointer method set is
	// what a variable of the type can call.
	if _, isPtr := types.Unalias(t).(*types.Pointer); !isPtr && !types.IsInterface(t) {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj().(*types.Func)
		if m.Name() != "End" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return true
		}
	}
	return false
}

// isEndCall reports whether n is a call h.End() whose receiver
// resolves to obj.
func isEndCall(pass *lint.Pass, n ast.Node, obj types.Object) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// objectOf resolves an assigned identifier through Defs (:=) or Uses
// (=).
func objectOf(pass *lint.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// escapes reports whether the handle object is used anywhere in the
// body in a way that transfers the close obligation: as a call
// argument, in a return statement, on the right side of another
// assignment, sent to a channel, or captured by a function literal.
// Method calls on the handle itself (h.SetArg(...), h.End()) do not
// escape.
func escapes(pass *lint.Pass, body *ast.BlockStmt, opening *ast.AssignStmt, obj types.Object) bool {
	anyUse := func(e ast.Node) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if anyUse(n.Body) {
				escaped = true
			}
			return false
		case *ast.CallExpr:
			// Arguments escape; the method receiver does not.
			for _, arg := range n.Args {
				if receiverOnlyUse(pass, arg, obj) {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if receiverOnlyUse(pass, r, obj) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if receiverOnlyUse(pass, n.Value, obj) {
				escaped = true
			}
		case *ast.AssignStmt:
			if n == opening {
				return true
			}
			for _, rhs := range n.Rhs {
				if receiverOnlyUse(pass, rhs, obj) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if receiverOnlyUse(pass, e, obj) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// receiverOnlyUse reports whether e uses obj anywhere outside a
// method-receiver position: `h.M(args)` does not forward the handle,
// but `f(h)`, `x = h`, `ch <- h` and `T{h}` do.
func receiverOnlyUse(pass *lint.Pass, e ast.Node, obj types.Object) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						for _, a := range call.Args {
							walk(a)
						}
						return false // the receiver itself is benign
					}
				}
			}
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	walk(e)
	return found
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
