// Negative cases: span handling idioms that must stay quiet.
// want:none
package spantest

import "context"

func cleanDeferredWithArgs(ctx context.Context, items []int) {
	_, span := StartSpan(ctx, "batch")
	defer span.End()
	for _, it := range items {
		span.SetArg("last", it)
	}
}

func cleanSwitchAllPaths(ctx context.Context, mode int) {
	_, span := StartSpan(ctx, "mode")
	switch mode {
	case 0:
		span.End()
	default:
		span.End()
	}
}

func cleanHandleEscapesToHelper(ctx context.Context) {
	t := StartTimer()
	closeLater(t)
}

func closeLater(t *Timer) { t.End() }

func cleanConstructorNotStart(ctx context.Context) {
	s := NewSpan() // New* carries no obligation under the Start* contract
	_ = s
}

func cleanSelectBothArms(ctx context.Context, ch chan int) {
	t := StartTimer()
	select {
	case <-ch:
		t.End()
	case <-ctx.Done():
		t.End()
	}
}
