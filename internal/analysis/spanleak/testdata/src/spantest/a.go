// Package spantest exercises the spanleak analyzer: Start* calls
// returning End()-bearing handles must close on every path.
package spantest

import "context"

// Span mimics obs.Span: an End()-bearing handle.
type Span struct{ name string }

func (s *Span) End()                   {}
func (s *Span) SetArg(k string, v any) {}

// Timer mimics a histogram timer handle.
type Timer struct{}

func (t *Timer) End() {}

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

func StartTimer() *Timer { return &Timer{} }

// NewSpan does not match the Start* contract: no obligation tracked.
func NewSpan() *Span { return &Span{} }

func use(v any) {}

func okDeferred(ctx context.Context) {
	_, span := StartSpan(ctx, "ok")
	defer span.End()
	use(span.name)
}

func okAllPaths(ctx context.Context, a int) {
	_, span := StartSpan(ctx, "ok")
	if a > 0 {
		span.End()
		return
	}
	span.End()
}

func okStraightLine(ctx context.Context) {
	_, span := StartSpan(ctx, "ok")
	span.SetArg("k", 1)
	span.End()
}

func leakEarlyReturn(ctx context.Context, a int) {
	_, span := StartSpan(ctx, "leak") // want `handle span from StartSpan is not closed with End\(\) on every path`
	if a > 0 {
		return
	}
	span.End()
}

func leakOneBranch(ctx context.Context, a int) {
	timer := StartTimer() // want `handle timer from StartTimer is not closed with End\(\) on every path`
	if a > 0 {
		timer.End()
	}
}

func leakDiscarded(ctx context.Context) {
	ctx, _ = StartSpan(ctx, "discarded") // want `handle from StartSpan is discarded`
	_ = ctx
}

func leakNever(ctx context.Context) {
	timer := StartTimer() // want `handle timer from StartTimer is not closed with End\(\) on every path`
	if timer != nil {
		println("opened")
	}
}

func okPanicPath(ctx context.Context, a int) {
	_, span := StartSpan(ctx, "ok")
	if a > 0 {
		panic("boom")
	}
	span.End()
}

func okEscapesReturn(ctx context.Context) *Timer {
	t := StartTimer()
	return t // obligation transfers to the caller
}

func okEscapesClosure(ctx context.Context) func() {
	t := StartTimer()
	return func() { t.End() }
}

func okLoopCloses(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		t := StartTimer()
		t.End()
	}
}

func leakInsideClosure(ctx context.Context) func() {
	return func() {
		t := StartTimer() // want `handle t from StartTimer is not closed with End\(\) on every path`
		_ = t.name2()
	}
}

func (t *Timer) name2() string { return "" }
