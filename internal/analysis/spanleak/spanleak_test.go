package spanleak_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/spanleak"
)

func TestSpanleak(t *testing.T) {
	analysistest.Run(t, "testdata", spanleak.Analyzer, "spantest")
}
