// Package typeutil holds the small go/types helpers the analyzers
// share: callee resolution and named-type matching that tolerates both
// the real module paths (tradeoff/internal/core) and the short
// fixture paths (core) used by the analysistest corpora.
package typeutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee returns the *types.Func a call statically resolves to, or nil
// for calls through function-typed variables, built-ins and
// conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Deref returns the element type of a pointer, or t itself.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// named returns t's underlying *types.Named after stripping pointers
// and aliases, or nil.
func named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := Deref(types.Unalias(t)).(*types.Named)
	return n
}

// IsNamed reports whether t (or *t) is the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// IsNamedSuffix reports whether t (or *t) is a named type called name
// whose package path's last element is pkgElem — "core" matches both
// tradeoff/internal/core and an analysistest fixture package "core".
func IsNamedSuffix(t types.Type, pkgElem, name string) bool {
	n := named(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != name {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgElem || strings.HasSuffix(path, "/"+pkgElem)
}

// IsFloat reports whether t's core type is float32 or float64.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool { return IsNamed(t, "context", "Context") }

// ReturnsError reports whether sig has an error among its results.
func ReturnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
