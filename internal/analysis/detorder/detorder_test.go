package detorder_test

import (
	"testing"

	"tradeoff/internal/analysis/analysistest"
	"tradeoff/internal/analysis/detorder"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata", detorder.Analyzer, "dettest")
}
